/**
 * @file
 * Regenerates the §6.1 result: running rtl2uspec on the original
 * (BUGGY) multi-V-scale refutes an interface attribution SVA with a
 * counterexample in which an undefined instruction — a store-shaped
 * encoding with funct3 = 3'b111 — updates memory instead of raising
 * an exception. Re-running on the fixed design proves the property.
 */

#include <cstdio>

#include "bench_util.hh"
#include "isa/isa.hh"

using namespace r2u;

int
main()
{
    bench::banner("§6.1 — bug discovery on the original multi-V-scale");

    std::printf("\n--- synthesis on the BUGGY design ---\n");
    auto buggy = bench::synthesizeVscale(true);
    if (buggy.bugs.empty()) {
        std::printf("ERROR: expected the attribution SVA to be "
                    "refuted on the buggy design\n");
        return 1;
    }
    for (const auto &bug : buggy.bugs)
        std::printf("%s\n", bug.c_str());

    // Decode the offending instruction from the trace, like reading
    // the JasperGold counterexample.
    for (const auto &sva : buggy.svas) {
        if (sva.verdict != bmc::Verdict::Refuted ||
            sva.name.find("valid_stores") == std::string::npos)
            continue;
        std::printf("refuted SVA: %s\n  %s\n", sva.name.c_str(),
                    sva.text.c_str());
    }
    std::printf("\nPaper §6.1: \"The counterexample trace featured an "
                "undefined instruction — with an encoding similar to "
                "RISC-V's sw but where the width field has an "
                "undefined value (funct3=3'b111) — updating "
                "memory.\"\n");
    uint32_t sw = isa::encode(isa::parseAsm("sw x1, 0(x2)"));
    uint32_t bad = (sw & ~(7u << 12)) | (7u << 12);
    std::printf("example offending encoding: 0x%08x (%s)\n", bad,
                isa::disasm(isa::decode(bad)).c_str());

    std::printf("\n--- synthesis on the FIXED design ---\n");
    auto fixed = bench::synthesizeVscale(false);
    std::printf("bugs found: %zu (expected 0)\n", fixed.bugs.size());
    int refuted_attrib = 0;
    for (const auto &sva : fixed.svas)
        if (sva.name.find("requests_are_valid") != std::string::npos &&
            sva.verdict != bmc::Verdict::Proven)
            refuted_attrib++;
    std::printf("attribution SVAs proven on fixed design: %s\n",
                refuted_attrib == 0 ? "yes" : "NO");
    return (!buggy.bugs.empty() && fixed.bugs.empty() &&
            refuted_attrib == 0)
               ? 0
               : 1;
}
