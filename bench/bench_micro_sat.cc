/**
 * @file
 * google-benchmark microbenchmarks for the substrate layers: CDCL SAT
 * solving, Tseitin word-op construction + solving, netlist simulation
 * throughput on the multi-V-scale, SC reference enumeration, and µhb
 * solving on a fixed model. These quantify the building blocks whose
 * costs Fig. 5 / Fig. 6 aggregate.
 */

#include <atomic>
#include <mutex>
#include <thread>

#include <benchmark/benchmark.h>

#include "bench_util.hh"
#include "bmc/checker.hh"
#include "check/check.hh"
#include "common/timer.hh"
#include "litmus/litmus.hh"
#include "mcm/sc_ref.hh"
#include "sat/cnf.hh"
#include "sat/share.hh"
#include "sat/simplify.hh"
#include "sim/simulator.hh"
#include "uhb/uhb.hh"
#include "vscale/metadata.hh"
#include "vscale/vscale.hh"

using namespace r2u;

namespace
{

// ------------------------------------------------------------------
// Sliced vscale query corpus: per-SVA-style BMC queries captured as
// CNF snapshots (exportCnf of a COI-sliced PropCtx with the query's
// monitor clauses guarded by its activation literal — the same
// snapshot the engine hands portfolio challengers). Solving one under
// {act} reproduces the query verdict exactly.
// ------------------------------------------------------------------

struct QueryCnf
{
    std::vector<std::vector<sat::Lit>> clauses;
    sat::Lit act; ///< solve under this assumption
    int numVars = 0;
    bool sat = false; ///< reference verdict (default config)
};

constexpr unsigned kCorpusBound = 6;

const std::vector<QueryCnf> &
queryCorpus()
{
    static const std::vector<QueryCnf> corpus = [] {
        auto cfg = bench::formalConfig();
        auto design = vscale::elaborateVscale(cfg);
        auto md = vscale::vscaleMetadata(cfg);
        std::vector<QueryCnf> out;
        for (const auto &core : md.cores) {
            // "the fetch register moves" (reachable -> Sat) and "the
            // fetch PC lands misaligned" (unreachable -> Unsat): the
            // two verdict shapes the synthesizer's membership and
            // attribution queries produce.
            for (int kind = 0; kind < 2; kind++) {
                bmc::PropCtx ctx(*design.netlist, design.signalMap, {},
                                 kCorpusBound);
                ctx.beginQuery();
                sat::Lit bad;
                if (kind == 0) {
                    bad = ctx.cnf().falseLit();
                    for (unsigned f = 1; f < kCorpusBound; f++)
                        bad = ctx.cnf().mkOr(
                            bad, ctx.changedAt(f, core.ifr));
                } else {
                    bad = ctx.eqConst(kCorpusBound - 1, core.imPc, 2);
                }
                ctx.assume(bad);
                QueryCnf q;
                ctx.solver().exportCnf(q.clauses, false);
                q.act = ctx.activation();
                q.numVars = ctx.solver().numVars();
                q.sat = kind == 0;
                out.push_back(std::move(q));
            }
        }
        return out;
    }();
    return corpus;
}

void
loadQuery(sat::Solver &s, const QueryCnf &q,
          const sat::SolverConfig &cfg)
{
    s.setConfig(cfg);
    while (s.numVars() < q.numVars)
        s.newVar();
    for (const auto &c : q.clauses)
        if (!s.addClause(c))
            break;
}

sat::SolverConfig
racerConfig(unsigned r)
{
    sat::SolverConfig cfg;
    if (r == 1) {
        cfg.restart = sat::SolverConfig::Restart::Glucose;
        cfg.lbdReduce = true;
    } else if (r >= 2) {
        cfg.polarity = sat::SolverConfig::Polarity::Rand;
        cfg.seed = 0x9E37 + r;
    }
    return cfg;
}

/**
 * Micro portfolio: race `racers` diversified configs on one snapshot
 * with a shared clause pool; the first definitive verdict interrupts
 * the rest. All racers solve under the same activation assumption, so
 * learnt clauses are implicates of the snapshot and shared unguarded.
 */
sat::Result
racePortfolio(const QueryCnf &q, unsigned racers,
              uint64_t *imported = nullptr)
{
    sat::ClausePool pool(racers);
    std::atomic<bool> stop{false};
    std::mutex mu;
    sat::Result verdict = sat::Result::Unknown;
    uint64_t imported_total = 0;
    std::vector<std::thread> threads;
    for (unsigned r = 0; r < racers; r++) {
        threads.emplace_back([&, r] {
            sat::Solver s;
            loadQuery(s, q, racerConfig(r));
            s.setShare(&pool, r);
            s.setExternalInterrupt(&stop);
            sat::Result res = s.solve({q.act});
            std::lock_guard<std::mutex> lk(mu);
            imported_total += s.stats().sharedImported;
            if (res != sat::Result::Unknown) {
                if (verdict == sat::Result::Unknown)
                    verdict = res;
                stop.store(true, std::memory_order_relaxed);
            }
        });
    }
    for (auto &t : threads)
        t.join();
    if (imported)
        *imported += imported_total;
    return verdict;
}

void
BM_SatPigeonhole(benchmark::State &state)
{
    int pigeons = static_cast<int>(state.range(0));
    int holes = pigeons - 1;
    for (auto _ : state) {
        sat::Solver s;
        std::vector<std::vector<sat::Var>> p(
            pigeons, std::vector<sat::Var>(holes));
        for (int i = 0; i < pigeons; i++)
            for (int j = 0; j < holes; j++)
                p[i][j] = s.newVar();
        for (int i = 0; i < pigeons; i++) {
            std::vector<sat::Lit> c;
            for (int j = 0; j < holes; j++)
                c.push_back(sat::mkLit(p[i][j]));
            s.addClause(c);
        }
        for (int j = 0; j < holes; j++)
            for (int i1 = 0; i1 < pigeons; i1++)
                for (int i2 = i1 + 1; i2 < pigeons; i2++)
                    s.addClause(sat::mkLit(p[i1][j], true),
                                sat::mkLit(p[i2][j], true));
        benchmark::DoNotOptimize(s.solve());
    }
}
BENCHMARK(BM_SatPigeonhole)->Arg(5)->Arg(6)->Arg(7)->Unit(benchmark::kMillisecond);

void
BM_CnfAdderChain(benchmark::State &state)
{
    unsigned width = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        sat::Solver s;
        sat::CnfBuilder cnf(s);
        sat::Word acc = cnf.freshWord(width);
        for (int i = 0; i < 16; i++)
            acc = cnf.mkAddW(acc, cnf.freshWord(width));
        cnf.assertLit(cnf.mkEqW(acc, cnf.constWord(width, 12345)));
        benchmark::DoNotOptimize(s.solve());
    }
}
BENCHMARK(BM_CnfAdderChain)->Arg(8)->Arg(16)->Arg(32);

void
BM_VscaleSimCycles(benchmark::State &state)
{
    vscale::Config cfg = vscale::Config::formal();
    cfg.imemWords = 16;
    vscale::Harness h(cfg);
    litmus::Test mp = litmus::standardSuite()[0];
    h.loadProgram(0, mp.threadAssembly(0));
    h.loadProgram(1, mp.threadAssembly(1));
    h.resetAndRun(1);
    for (auto _ : state)
        h.run(100);
    state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_VscaleSimCycles);

void
BM_ScEnumerate(benchmark::State &state)
{
    auto suite = litmus::standardSuite();
    const litmus::Test &t =
        suite[static_cast<size_t>(state.range(0))];
    for (auto _ : state)
        benchmark::DoNotOptimize(mcm::enumerateSC(t));
}
BENCHMARK(BM_ScEnumerate)->Arg(0)->Arg(5); // mp, iriw

void
BM_UhbCheckTest(benchmark::State &state)
{
    // Hand-written SC model (mirrors the synthesized shape).
    static const char *model_text = R"(
StageName 0 "IF_".
StageName 1 "WB_grp".
StageName 2 "mem_if".
StageName 3 "mem".
StageName 4 "regfile".
MemoryAccessStage "mem_if".
MemoryStage "mem".
Axiom "R_path":
forall microop "i0",
IsAnyRead i0 =>
AddEdges [((i0, IF_), (i0, WB_grp));
          ((i0, IF_), (i0, mem_if));
          ((i0, mem_if), (i0, regfile))].
Axiom "W_path":
forall microop "i0",
IsAnyWrite i0 =>
AddEdges [((i0, IF_), (i0, WB_grp));
          ((i0, IF_), (i0, mem_if));
          ((i0, mem_if), (i0, mem))].
Axiom "PO_fetch":
forall microops "i0", "i1",
SameCore i0 i1 => ProgramOrder i0 i1 =>
AddEdge ((i0, IF_), (i1, IF_)).
Axiom "PO_mem_if":
forall microops "i0", "i1",
SameCore i0 i1 => ProgramOrder i0 i1 =>
AddEdge ((i0, mem_if), (i1, mem_if)).
Axiom "Dataflow_mem":
forall microops "i0", "i1",
IsAnyWrite i0 => IsAnyRead i1 => SamePA i0 i1 => SameData i0 i1 =>
NoWritesInBetween i0 i1 =>
AddEdge ((i0, mem), (i1, regfile)).
)";
    static uspec::Model model = uspec::Model::parse(model_text);
    auto suite = litmus::standardSuite();
    const litmus::Test &t =
        suite[static_cast<size_t>(state.range(0))];
    for (auto _ : state)
        benchmark::DoNotOptimize(check::checkTest(model, t));
}
BENCHMARK(BM_UhbCheckTest)->Arg(0)->Arg(1)->Arg(5);

// Sliced vscale query corpus, inprocessing on (arg 1) vs off (arg 0).
void
BM_SatQueryInprocess(benchmark::State &state)
{
    sat::SolverConfig cfg;
    if (state.range(0) == 0)
        cfg.inprocessPeriod = 0;
    const auto &corpus = queryCorpus();
    for (auto _ : state) {
        for (const auto &q : corpus) {
            sat::Solver s;
            loadQuery(s, q, cfg);
            benchmark::DoNotOptimize(s.solve({q.act}));
        }
    }
}
BENCHMARK(BM_SatQueryInprocess)->Arg(0)->Arg(1)->Unit(
    benchmark::kMillisecond);

// Same corpus with SatELite preprocessing (BVE + subsumption) before
// the solve; the assumption variable is frozen.
void
BM_SatQueryPreprocess(benchmark::State &state)
{
    const auto &corpus = queryCorpus();
    for (auto _ : state) {
        for (const auto &q : corpus) {
            sat::Solver s;
            loadQuery(s, q, sat::SolverConfig{});
            s.preprocess(sat::SimplifyOptions{}, {sat::var(q.act)});
            benchmark::DoNotOptimize(s.solve({q.act}));
        }
    }
}
BENCHMARK(BM_SatQueryPreprocess)->Unit(benchmark::kMillisecond);

// Same corpus raced across N diversified configs with clause sharing.
void
BM_SatQueryPortfolio(benchmark::State &state)
{
    unsigned racers = static_cast<unsigned>(state.range(0));
    const auto &corpus = queryCorpus();
    for (auto _ : state) {
        for (const auto &q : corpus)
            benchmark::DoNotOptimize(racePortfolio(q, racers));
    }
}
BENCHMARK(BM_SatQueryPortfolio)->Arg(2)->Arg(3)->Unit(
    benchmark::kMillisecond);

/**
 * One timed sweep per solver configuration over the corpus, with
 * verdict cross-checks, written to BENCH_sat.json for scripted
 * comparisons across runs (the google-benchmark rows above are for
 * humans; this is for machines).
 */
void
writeSatJson()
{
    const auto &corpus = queryCorpus();
    struct Row
    {
        const char *name;
        double seconds = 0.0;
        bool verdictsAgree = true;
        uint64_t extra = 0;
    };
    Row rows[4] = {{"inprocess_on"},
                   {"inprocess_off"},
                   {"preprocess_bve"},
                   {"portfolio_3"}};

    for (int cfg_i = 0; cfg_i < 4; cfg_i++) {
        Row &row = rows[cfg_i];
        Timer t;
        for (const auto &q : corpus) {
            sat::Result res;
            if (cfg_i == 3) {
                res = racePortfolio(q, 3, &row.extra);
            } else {
                sat::SolverConfig cfg;
                if (cfg_i == 1)
                    cfg.inprocessPeriod = 0;
                sat::Solver s;
                loadQuery(s, q, cfg);
                if (cfg_i == 2) {
                    s.preprocess(sat::SimplifyOptions{},
                                 {sat::var(q.act)});
                    row.extra += s.stats().preprocessVarsEliminated;
                } else if (cfg_i == 0) {
                    // count inprocessing passes below via stats
                }
                res = s.solve({q.act});
                if (cfg_i == 0)
                    row.extra += s.stats().simplifyRuns;
            }
            bool sat_res = res == sat::Result::Sat;
            if (res == sat::Result::Unknown || sat_res != q.sat)
                row.verdictsAgree = false;
        }
        row.seconds = t.seconds();
    }

    std::string json = "{\n";
    json += strfmt("  \"corpus_queries\": %zu,\n", corpus.size());
    json += strfmt("  \"corpus_bound\": %u,\n", kCorpusBound);
    json += strfmt("  \"corpus_vars_mean\": %.0f,\n",
                   [&] {
                       double v = 0;
                       for (const auto &q : corpus)
                           v += q.numVars;
                       return corpus.empty() ? 0.0 : v / corpus.size();
                   }());
    json += "  \"configs\": {\n";
    const char *extra_key[4] = {"inprocess_runs", "unused",
                                "vars_eliminated", "shared_imported"};
    for (int i = 0; i < 4; i++) {
        json += strfmt("    \"%s\": {\"seconds\": %.4f, "
                       "\"verdicts_agree\": %s, \"%s\": %llu}%s\n",
                       rows[i].name, rows[i].seconds,
                       rows[i].verdictsAgree ? "true" : "false",
                       extra_key[i],
                       static_cast<unsigned long long>(rows[i].extra),
                       i + 1 < 4 ? "," : "");
    }
    json += "  }\n}\n";
    writeFile(bench::outPath("BENCH_sat.json"), json);
    std::printf("SAT corpus summary written to %s\n",
                bench::outPath("BENCH_sat.json").c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    writeSatJson();
    return 0;
}
