/**
 * @file
 * google-benchmark microbenchmarks for the substrate layers: CDCL SAT
 * solving, Tseitin word-op construction + solving, netlist simulation
 * throughput on the multi-V-scale, SC reference enumeration, and µhb
 * solving on a fixed model. These quantify the building blocks whose
 * costs Fig. 5 / Fig. 6 aggregate.
 */

#include <benchmark/benchmark.h>

#include "check/check.hh"
#include "litmus/litmus.hh"
#include "mcm/sc_ref.hh"
#include "sat/cnf.hh"
#include "sim/simulator.hh"
#include "uhb/uhb.hh"
#include "vscale/vscale.hh"

using namespace r2u;

namespace
{

void
BM_SatPigeonhole(benchmark::State &state)
{
    int pigeons = static_cast<int>(state.range(0));
    int holes = pigeons - 1;
    for (auto _ : state) {
        sat::Solver s;
        std::vector<std::vector<sat::Var>> p(
            pigeons, std::vector<sat::Var>(holes));
        for (int i = 0; i < pigeons; i++)
            for (int j = 0; j < holes; j++)
                p[i][j] = s.newVar();
        for (int i = 0; i < pigeons; i++) {
            std::vector<sat::Lit> c;
            for (int j = 0; j < holes; j++)
                c.push_back(sat::mkLit(p[i][j]));
            s.addClause(c);
        }
        for (int j = 0; j < holes; j++)
            for (int i1 = 0; i1 < pigeons; i1++)
                for (int i2 = i1 + 1; i2 < pigeons; i2++)
                    s.addClause(sat::mkLit(p[i1][j], true),
                                sat::mkLit(p[i2][j], true));
        benchmark::DoNotOptimize(s.solve());
    }
}
BENCHMARK(BM_SatPigeonhole)->Arg(5)->Arg(6)->Arg(7)->Unit(benchmark::kMillisecond);

void
BM_CnfAdderChain(benchmark::State &state)
{
    unsigned width = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        sat::Solver s;
        sat::CnfBuilder cnf(s);
        sat::Word acc = cnf.freshWord(width);
        for (int i = 0; i < 16; i++)
            acc = cnf.mkAddW(acc, cnf.freshWord(width));
        cnf.assertLit(cnf.mkEqW(acc, cnf.constWord(width, 12345)));
        benchmark::DoNotOptimize(s.solve());
    }
}
BENCHMARK(BM_CnfAdderChain)->Arg(8)->Arg(16)->Arg(32);

void
BM_VscaleSimCycles(benchmark::State &state)
{
    vscale::Config cfg = vscale::Config::formal();
    cfg.imemWords = 16;
    vscale::Harness h(cfg);
    litmus::Test mp = litmus::standardSuite()[0];
    h.loadProgram(0, mp.threadAssembly(0));
    h.loadProgram(1, mp.threadAssembly(1));
    h.resetAndRun(1);
    for (auto _ : state)
        h.run(100);
    state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_VscaleSimCycles);

void
BM_ScEnumerate(benchmark::State &state)
{
    auto suite = litmus::standardSuite();
    const litmus::Test &t =
        suite[static_cast<size_t>(state.range(0))];
    for (auto _ : state)
        benchmark::DoNotOptimize(mcm::enumerateSC(t));
}
BENCHMARK(BM_ScEnumerate)->Arg(0)->Arg(5); // mp, iriw

void
BM_UhbCheckTest(benchmark::State &state)
{
    // Hand-written SC model (mirrors the synthesized shape).
    static const char *model_text = R"(
StageName 0 "IF_".
StageName 1 "WB_grp".
StageName 2 "mem_if".
StageName 3 "mem".
StageName 4 "regfile".
MemoryAccessStage "mem_if".
MemoryStage "mem".
Axiom "R_path":
forall microop "i0",
IsAnyRead i0 =>
AddEdges [((i0, IF_), (i0, WB_grp));
          ((i0, IF_), (i0, mem_if));
          ((i0, mem_if), (i0, regfile))].
Axiom "W_path":
forall microop "i0",
IsAnyWrite i0 =>
AddEdges [((i0, IF_), (i0, WB_grp));
          ((i0, IF_), (i0, mem_if));
          ((i0, mem_if), (i0, mem))].
Axiom "PO_fetch":
forall microops "i0", "i1",
SameCore i0 i1 => ProgramOrder i0 i1 =>
AddEdge ((i0, IF_), (i1, IF_)).
Axiom "PO_mem_if":
forall microops "i0", "i1",
SameCore i0 i1 => ProgramOrder i0 i1 =>
AddEdge ((i0, mem_if), (i1, mem_if)).
Axiom "Dataflow_mem":
forall microops "i0", "i1",
IsAnyWrite i0 => IsAnyRead i1 => SamePA i0 i1 => SameData i0 i1 =>
NoWritesInBetween i0 i1 =>
AddEdge ((i0, mem), (i1, regfile)).
)";
    static uspec::Model model = uspec::Model::parse(model_text);
    auto suite = litmus::standardSuite();
    const litmus::Test &t =
        suite[static_cast<size_t>(state.range(0))];
    for (auto _ : state)
        benchmark::DoNotOptimize(check::checkTest(model, t));
}
BENCHMARK(BM_UhbCheckTest)->Arg(0)->Arg(1)->Arg(5);

} // namespace

BENCHMARK_MAIN();
