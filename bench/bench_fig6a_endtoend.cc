/**
 * @file
 * Regenerates Fig. 6a: per-litmus-test end-to-end verification cost.
 * Left bars — RTLCheck-style whole-design proof per test (model
 * validation + litmus verification in one shot, incomplete proofs
 * flagged). Right bars — rtl2uspec's amortized one-time synthesis
 * cost plus the per-test check on the synthesized model.
 *
 * Absolute numbers differ from the paper (our solver and substrate);
 * the shape to verify is: rtl2uspec's per-test cost is orders of
 * magnitude below the baseline once synthesis is amortized.
 */

#include <cstdio>

#include "bench_util.hh"
#include "check/check.hh"
#include "litmus/litmus.hh"
#include "rtlcheck/rtlcheck.hh"

using namespace r2u;

int
main()
{
    bench::banner("Fig. 6a — end-to-end verification: RTLCheck "
                  "baseline vs rtl2uspec + check");

    auto cfg = bench::formalConfig();
    auto design = vscale::elaborateVscale(cfg);
    auto suite = litmus::standardSuite();
    size_t n = bench::quickMode() ? 12 : suite.size();

    // One-time synthesis, amortized over the evaluated tests.
    auto synth = bench::synthesizeVscale();
    double amortized = synth.totalSeconds / static_cast<double>(n);

    std::printf("\n%-10s %14s %5s %14s %14s\n", "test",
                "rtlcheck (s)", "cmpl", "amort synth (s)",
                "check (ms)");
    double rtl_total = 0, check_total = 0;
    int incomplete = 0, failures = 0;
    for (size_t i = 0; i < n; i++) {
        const litmus::Test &t = suite[i];
        auto rv = rtlcheck::verifyTest(design, cfg, t);
        auto cv = check::checkTest(synth.model, t);
        rtl_total += rv.seconds;
        check_total += cv.ms;
        incomplete += !rv.complete;
        failures += rv.verdict == bmc::Verdict::Refuted;
        failures += !cv.pass;
        std::printf("%-10s %14.3f %5s %14.3f %14.3f\n",
                    t.name.c_str(), rv.seconds,
                    rv.complete ? "yes" : "NO", amortized, cv.ms);
    }

    std::printf("\nSummary over %zu tests:\n", n);
    std::printf("  RTLCheck-style baseline: avg %.3f s/test "
                "(%d incomplete proofs)\n",
                rtl_total / static_cast<double>(n), incomplete);
    std::printf("  rtl2uspec: amortized synthesis %.3f s/test + "
                "check %.3f ms/test\n",
                amortized, check_total / static_cast<double>(n));
    std::printf("  speedup at %zu tests: %.1fx (grows linearly with "
                "suite size)\n",
                n,
                rtl_total / (synth.totalSeconds + check_total / 1e3));
    std::printf("  MCM violations found: %d (the multi-V-scale "
                "implements SC)\n", failures);
    std::printf("\nPaper's shape: RTLCheck avg 5786.63 s/test vs "
                "rtl2uspec 7.33 s amortized + 0.03 s/test.\n");
    return failures == 0 ? 0 : 1;
}
