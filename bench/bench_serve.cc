/**
 * @file
 * Synthesis service latency benchmark (ISSUE 10): an in-process
 * rtl2uspec_serve daemon on a temp socket, measured from the client
 * side. Three figures: the cold first synthesize request (empty state
 * dir, every query solved), repeated warm requests (every verdict
 * replayed from the per-configuration journal — the steady-state cost
 * of re-checking an unchanged design through the service), and the
 * raw ping round-trip (protocol + dispatch floor). Writes
 * BENCH_serve.json.
 */

#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hh"
#include "common/strutil.hh"
#include "common/timer.hh"
#include "serve/client.hh"
#include "serve/json.hh"
#include "serve/server.hh"

using namespace r2u;
using namespace r2u::serve;
namespace fs = std::filesystem;

namespace
{

/** The formal-sized multi-V-scale request (same files/params as the
 *  experiment benches use via vscale::Config::formal()). */
json::Value
synthesizeRequest()
{
    std::string d = std::string(R2U_DESIGN_DIR) + "/";
    json::Value req = json::Value::object();
    req.set("type", json::Value::string("synthesize"));
    req.set("top", json::Value::string("multi_vscale"));
    req.set("meta", json::Value::string(d + "vscale.meta"));
    json::Value files = json::Value::array();
    for (const char *f : {"multi_vscale.v", "vscale_core.v",
                          "vscale_mem.v", "vscale_arbiter.v"})
        files.push(json::Value::string(d + f));
    req.set("files", std::move(files));
    json::Value params = json::Value::object();
    params.set("XLEN", json::Value::number(int64_t{8}));
    params.set("PC_BITS", json::Value::number(int64_t{6}));
    params.set("NREGS", json::Value::number(int64_t{8}));
    params.set("REG_BITS", json::Value::number(int64_t{3}));
    params.set("IMEM_WORDS", json::Value::number(int64_t{16}));
    params.set("IMEM_ABITS", json::Value::number(int64_t{4}));
    req.set("params", std::move(params));
    req.set("jobs", json::Value::number(int64_t{1}));
    return req;
}

} // namespace

int
main()
{
    bench::banner("Synthesis service — request latency through the "
                  "daemon (cold / warm / ping)");

    fs::path tmp = fs::temp_directory_path() / "r2u_bench_serve";
    fs::remove_all(tmp);
    fs::create_directories(tmp);
    std::string sock = (tmp / "d.sock").string();

    ServerOptions opts;
    opts.socketPath = sock;
    opts.stateDir = (tmp / "state").string();
    opts.workers = 2;
    Server server(std::move(opts));
    server.start();
    std::thread daemon([&] { server.serve(); });

    Client client;
    std::string err;
    json::Value req = synthesizeRequest();
    json::Value resp;

    // Cold: empty state dir, every query reaches a solver.
    double cold_ms;
    {
        Timer t;
        if (!client.requestWithRetry(sock, req, resp, &err) ||
            !resp.getBool("ok")) {
            std::fprintf(stderr, "cold request failed: %s\n",
                         err.empty() ? resp.dump().c_str()
                                     : err.c_str());
            server.requestStop();
            daemon.join();
            return 1;
        }
        cold_ms = t.milliseconds();
    }
    std::string model_fnv = resp.getStr("model_fnv");
    std::printf("cold synthesize: %.1f ms (%lld queries solved)\n",
                cold_ms, resp.getInt("cache_misses"));

    // Warm: the per-configuration journal replays every verdict; this
    // is the steady-state cost of re-checking an unchanged design.
    int warm_iters = bench::quickMode() ? 3 : 10;
    std::vector<double> warm;
    long long warm_hits = 0;
    for (int i = 0; i < warm_iters; i++) {
        Timer t;
        if (!client.requestWithRetry(sock, req, resp, &err) ||
            !resp.getBool("ok") ||
            resp.getStr("model_fnv") != model_fnv) {
            std::fprintf(stderr, "warm request %d failed or diverged\n",
                         i);
            server.requestStop();
            daemon.join();
            return 1;
        }
        warm.push_back(t.milliseconds());
        warm_hits = resp.getInt("journal_hits");
    }
    double warm_p50 = bench::percentile(warm, 0.50);
    double warm_p90 = bench::percentile(warm, 0.90);
    std::printf("warm synthesize: p50 %.1f ms, p90 %.1f ms over %d "
                "requests (%lld journal hits each)\n",
                warm_p50, warm_p90, warm_iters, warm_hits);
    std::printf("warm/cold ratio: %.3f\n", warm_p50 / cold_ms);

    // Ping: the protocol + dispatch floor under every request above.
    int ping_iters = bench::quickMode() ? 50 : 500;
    std::vector<double> ping;
    json::Value ping_req = json::Value::object();
    ping_req.set("type", json::Value::string("ping"));
    for (int i = 0; i < ping_iters; i++) {
        Timer t;
        if (!client.requestWithRetry(sock, ping_req, resp, &err)) {
            std::fprintf(stderr, "ping failed: %s\n", err.c_str());
            server.requestStop();
            daemon.join();
            return 1;
        }
        ping.push_back(t.milliseconds());
    }
    double ping_p50 = bench::percentile(ping, 0.50);
    double ping_p99 = bench::percentile(ping, 0.99);
    std::printf("ping round-trip: p50 %.3f ms, p99 %.3f ms over %d "
                "requests\n",
                ping_p50, ping_p99, ping_iters);

    server.requestStop();
    daemon.join();
    fs::remove_all(tmp);

    std::string json = "{\n";
    json += strfmt("  \"cold_synthesize_ms\": %.3f,\n", cold_ms);
    json += strfmt("  \"warm_requests\": %d,\n", warm_iters);
    json += strfmt("  \"warm_synthesize_p50_ms\": %.3f,\n", warm_p50);
    json += strfmt("  \"warm_synthesize_p90_ms\": %.3f,\n", warm_p90);
    json += strfmt("  \"warm_journal_hits\": %lld,\n", warm_hits);
    json += strfmt("  \"warm_over_cold\": %.4f,\n", warm_p50 / cold_ms);
    json += strfmt("  \"ping_requests\": %d,\n", ping_iters);
    json += strfmt("  \"ping_p50_ms\": %.4f,\n", ping_p50);
    json += strfmt("  \"ping_p99_ms\": %.4f,\n", ping_p99);
    json += strfmt("  \"model_fnv\": \"%s\"\n", model_fnv.c_str());
    json += "}\n";
    writeFile(bench::outPath("BENCH_serve.json"), json);
    std::printf("JSON summary written to %s\n",
                bench::outPath("BENCH_serve.json").c_str());
    return 0;
}
