/**
 * @file
 * Shared helpers for the experiment benches: the formal-sized
 * multi-V-scale configuration, one-shot synthesis, output-directory
 * paths, and a quick-mode switch (R2U_QUICK=1 trims litmus sweeps for
 * smoke runs; the default regenerates the full figures).
 */

#ifndef R2U_BENCH_BENCH_UTIL_HH
#define R2U_BENCH_BENCH_UTIL_HH

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/strutil.hh"
#include "rtl2uspec/synthesis.hh"
#include "vscale/metadata.hh"
#include "vscale/vscale.hh"

namespace r2u::bench
{

inline vscale::Config
formalConfig()
{
    vscale::Config cfg = vscale::Config::formal();
    cfg.imemWords = 16;
    return cfg;
}

inline bool
quickMode()
{
    const char *q = std::getenv("R2U_QUICK");
    return q && q[0] == '1';
}

inline std::string
outPath(const std::string &file)
{
    return std::string(R2U_OUTPUT_DIR) + "/" + file;
}

inline void
banner(const std::string &title)
{
    std::printf("\n==== %s ====\n", title.c_str());
}

/** Elaborate + synthesize the (fixed) multi-V-scale once. */
inline rtl2uspec::SynthesisResult
synthesizeVscale(bool buggy = false, unsigned jobs = 0,
                 bool full_unroll = false)
{
    vscale::Config cfg = formalConfig();
    cfg.buggy = buggy;
    auto design = vscale::elaborateVscale(cfg);
    auto md = vscale::vscaleMetadata(cfg);
    rtl2uspec::SynthesisOptions opts;
    opts.jobs = jobs;
    opts.fullUnroll = full_unroll;
    return rtl2uspec::synthesize(design, md, opts);
}

/** Same, but with caller-tweaked options (SAT-config comparisons). */
inline rtl2uspec::SynthesisResult
synthesizeVscaleWith(const rtl2uspec::SynthesisOptions &opts,
                     bool buggy = false)
{
    vscale::Config cfg = formalConfig();
    cfg.buggy = buggy;
    auto design = vscale::elaborateVscale(cfg);
    auto md = vscale::vscaleMetadata(cfg);
    return rtl2uspec::synthesize(design, md, opts);
}

/** Linear-interpolated percentile (p in [0, 1]) of a sample. */
inline double
percentile(std::vector<double> xs, double p)
{
    if (xs.empty())
        return 0.0;
    std::sort(xs.begin(), xs.end());
    double idx = p * static_cast<double>(xs.size() - 1);
    size_t lo = static_cast<size_t>(idx);
    size_t hi = std::min(lo + 1, xs.size() - 1);
    double frac = idx - static_cast<double>(lo);
    return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

} // namespace r2u::bench

#endif // R2U_BENCH_BENCH_UTIL_HH
