/**
 * @file
 * Regenerates Fig. 6b: litmus-test-only verification cost. Left —
 * RTLCheck's optimized variant (litmus verification without model
 * validation; here, the whole-design proof without the completion
 * side-proof). Right — per-test COATCheck-style evaluation on the
 * rtl2uspec-synthesized model (the black bars of Fig. 6a/6b, and the
 * artifact's A.5 per-test millisecond listing ending in "ALL TESTS
 * PASSES").
 */

#include <cstdio>

#include "bench_util.hh"
#include "check/check.hh"
#include "litmus/litmus.hh"
#include "rtlcheck/rtlcheck.hh"

using namespace r2u;

int
main()
{
    bench::banner("Fig. 6b — litmus-only verification: RTLCheck "
                  "(optimized) vs check on the synthesized model");

    auto cfg = bench::formalConfig();
    auto design = vscale::elaborateVscale(cfg);
    auto suite = litmus::standardSuite();
    size_t n = bench::quickMode() ? 12 : suite.size();

    auto synth = bench::synthesizeVscale();

    rtlcheck::Options fast;
    fast.maxSkew = 1; // the optimized variant explores fewer skews

    std::printf("\n%-10s %14s %14s %8s\n", "test", "rtlcheck (s)",
                "check (ms)", "verdict");
    double rtl_total = 0, check_total = 0;
    bool all_pass = true;
    for (size_t i = 0; i < n; i++) {
        const litmus::Test &t = suite[i];
        auto rv = rtlcheck::verifyTest(design, cfg, t, fast);
        auto cv = check::checkTest(synth.model, t);
        rtl_total += rv.seconds;
        check_total += cv.ms;
        bool pass = cv.ok() && rv.verdict == bmc::Verdict::Proven;
        all_pass &= pass;
        std::printf("%-10s %14.3f %14.3f %8s\n", t.name.c_str(),
                    rv.seconds, cv.ms, pass ? "pass" : "FAIL");
    }

    // Artifact A.5 flavor: the per-test ms listing and final line.
    std::printf("\nCOATCheck-style evaluation on the synthesized "
                "model:\n");
    double sum = 0;
    for (size_t i = 0; i < n; i++) {
        auto cv = check::checkTest(synth.model, suite[i]);
        std::printf("%s.test,%f\n", suite[i].name.c_str(), cv.ms);
        sum += cv.ms;
    }
    std::printf("--- %f ms ---\n", sum);
    std::printf("%s\n", all_pass ? "======= ALL TESTS PASSES ======="
                                 : "======= FAILURES DETECTED =======");

    std::printf("\nSummary over %zu tests:\n", n);
    std::printf("  RTLCheck-style (optimized): avg %.3f s/test\n",
                rtl_total / static_cast<double>(n));
    std::printf("  check on synthesized model: avg %.3f ms/test "
                "(paper: 0.03 s avg, <1 s max)\n",
                check_total / static_cast<double>(n));
    return all_pass ? 0 : 1;
}
