/**
 * @file
 * Ablation of the §6.2 structural-HBI relaxation: rtl2uspec normally
 * proves one instruction-agnostic ordering SVA per pipeline stage; if
 * that is disabled, it must evaluate one SVA per (instruction type
 * pair, stage). The paper reports roughly an i² reduction in SVAs
 * from the optimization (i = instruction types). This bench runs the
 * synthesis both ways and compares SVA counts and runtimes for the
 * affected categories.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace r2u;

namespace
{

void
summarize(const char *label, const rtl2uspec::SynthesisResult &r)
{
    int order_svas = 0;
    double order_time = 0;
    for (const auto &sva : r.svas) {
        if (sva.name.rfind("po_order_stage", 0) == 0) {
            order_svas++;
            order_time += sva.seconds;
        }
    }
    std::printf("%-28s stage-order SVAs: %3d  time: %7.3f s  "
                "(total synthesis: %.2f s, %zu SVAs)\n",
                label, order_svas, order_time, r.totalSeconds,
                r.svas.size());
}

} // namespace

int
main()
{
    bench::banner("Ablation — §6.2 relaxed structural HBI "
                  "hypotheses");

    auto cfg = bench::formalConfig();
    auto design = vscale::elaborateVscale(cfg);

    auto md = vscale::vscaleMetadata(cfg);
    md.relaxPairs = true;
    auto relaxed = rtl2uspec::synthesize(design, md);

    md.relaxPairs = false;
    auto per_pair = rtl2uspec::synthesize(design, md);

    std::printf("\n");
    summarize("relaxed (paper default):", relaxed);
    summarize("per instruction pair:", per_pair);

    int i = 2; // instruction types in the model (lw, sw)
    std::printf("\nexpected SVA ratio ~ i^2 = %d (paper §6.2); "
                "both runs must agree on the model:\n", i * i);
    bool same_model =
        relaxed.model.print() == per_pair.model.print();
    std::printf("  models identical: %s\n", same_model ? "yes" : "NO");
    return same_model ? 0 : 1;
}
