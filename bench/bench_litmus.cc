/**
 * @file
 * Litmus campaign engine benchmark: the seed's sequential brute-force
 * checker (per-execution axiom-binding enumeration, no pruning) vs
 * the campaign engine at jobs=1/jobs=4, pruned and exhaustive, over
 * the standard 56-test suite on the hand-written multi-V-scale SC
 * model (designs/vscale_sc.uarch — litmus checking only, no
 * synthesis). Asserts the observable-outcome sets and verdict flags
 * are identical in every configuration and writes BENCH_litmus.json.
 */

#include <cstdio>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hh"
#include "check/campaign.hh"
#include "check/check.hh"
#include "common/strutil.hh"
#include "common/timer.hh"
#include "litmus/litmus.hh"
#include "mcm/sc_ref.hh"
#include "uhb/uhb.hh"
#include "uspec/uspec.hh"

using namespace r2u;

namespace
{

/** Per-test facts every configuration must agree on. */
struct Verdict
{
    std::vector<std::string> outcomes;
    bool pass = false, tight = false;
    bool interestingObservable = false, interestingScAllowed = false;

    bool
    operator==(const Verdict &o) const
    {
        return outcomes == o.outcomes && pass == o.pass &&
               tight == o.tight &&
               interestingObservable == o.interestingObservable &&
               interestingScAllowed == o.interestingScAllowed;
    }
};

/**
 * The seed checker, reproduced: enumerate every candidate execution
 * and call the table-free uhb::solve (which re-enumerates the axiom
 * bindings per execution, as the pre-campaign code did).
 */
Verdict
seedCheck(const uspec::Model &model, const litmus::Test &test)
{
    std::set<mcm::Outcome> sc = mcm::enumerateSC(test);
    Verdict v;
    for (const mcm::Outcome &o : sc)
        v.interestingScAllowed |= o.satisfies(test.interesting);
    std::set<mcm::Outcome> observable;
    check::forEachExecution(test, [&](const uhb::Execution &exec) {
        uhb::SolveResult sr = uhb::solve(model, exec);
        if (!sr.observable)
            return;
        mcm::Outcome out = check::outcomeOf(test, exec);
        observable.insert(out);
        v.interestingObservable |= out.satisfies(test.interesting);
    });
    v.pass = true;
    for (const mcm::Outcome &o : observable) {
        v.outcomes.push_back(o.toString());
        v.pass &= sc.count(o) > 0;
    }
    v.tight = v.pass && observable.size() == sc.size();
    return v;
}

Verdict
verdictOf(const check::TestResult &res)
{
    Verdict v;
    v.outcomes = res.outcomes;
    v.pass = res.pass;
    v.tight = res.tight;
    v.interestingObservable = res.interestingObservable;
    v.interestingScAllowed = res.interestingScAllowed;
    return v;
}

struct Row
{
    std::string name;
    unsigned jobs;
    bool prune;
    double ms = 0;
    long long explored = 0, pruned = 0, branches = 0;
};

/**
 * Coherence stress test: `writers` single-write threads racing on x
 * (distinct values -> writers! coherence orders) plus one thread
 * issuing `reads` loads of x. Execution space = writers! *
 * (writers+1)^reads candidates, but far fewer distinct outcomes —
 * the shape that exercises both the worker pool and outcome pruning.
 */
litmus::Test
cohStress(int writers, int reads)
{
    litmus::Test t;
    t.name = strfmt("stress_coh_w%d_r%d", writers, reads);
    for (int i = 0; i < writers; i++) {
        litmus::Thread th;
        th.ops.push_back({true, "x", i + 1, 0});
        t.threads.push_back(th);
    }
    litmus::Thread reader;
    for (int r = 0; r < reads; r++)
        reader.ops.push_back({false, "x", 0, r});
    t.threads.push_back(reader);
    // New-to-old reordering within the reader: SC-forbidden once
    // coherence pins write 1 before the last write.
    t.interesting.regs = {{writers, 0, writers}, {writers, 1, 1}};
    return t;
}

/** Two racing coherence chains (x and y) plus a two-load observer. */
litmus::Test
mixedStress(int writers)
{
    litmus::Test t;
    t.name = strfmt("stress_mixed_w%d", writers);
    for (int i = 0; i < writers; i++) {
        litmus::Thread th;
        th.ops.push_back({true, "x", i + 1, 0});
        th.ops.push_back({true, "y", i + 1, 0});
        t.threads.push_back(th);
    }
    litmus::Thread reader;
    reader.ops.push_back({false, "x", 0, 0});
    reader.ops.push_back({false, "y", 0, 1});
    t.threads.push_back(reader);
    t.interesting.regs = {{writers, 0, writers}, {writers, 1, 0}};
    return t;
}

/**
 * The benchmark workload: the 56-test standard suite plus scaled
 * stress tests. The standard suite alone finishes in single-digit
 * milliseconds (380 candidates total), so the headline speedups are
 * driven by the stress tests' tens of thousands of candidates.
 */
std::vector<litmus::Test>
benchSuite()
{
    auto suite = litmus::standardSuite();
    if (bench::quickMode()) {
        suite.resize(12);
        suite.push_back(cohStress(4, 2)); //  600 candidates
        suite.push_back(mixedStress(3));  //  576
    } else {
        suite.push_back(cohStress(5, 2)); //   4320 candidates
        suite.push_back(cohStress(6, 2)); //  35280
        suite.push_back(mixedStress(4));  //  14400
    }
    return suite;
}

} // namespace

int
main()
{
    bench::banner("Litmus campaign engine — seed sequential checker "
                  "vs parallel + pruned campaigns");

    uspec::Model model = uspec::Model::parse(
        readFile(std::string(R2U_DESIGN_DIR) + "/vscale_sc.uarch"));
    auto suite = benchSuite();
    size_t n = suite.size();
    unsigned cpus = std::thread::hardware_concurrency();
    std::printf("suite: %zu tests; host CPUs: %u%s\n", n, cpus,
                cpus < 4 ? " (jobs=4 rows cannot beat jobs=1 here; "
                           "their speedup is pruning + the hoisted "
                           "instance table)"
                         : "");

    // Seed baseline.
    std::vector<Verdict> reference(n);
    Row seed{"seed-sequential", 1, false};
    {
        Timer timer;
        for (size_t i = 0; i < n; i++)
            reference[i] = seedCheck(model, suite[i]);
        seed.ms = timer.milliseconds();
    }
    std::printf("\n%-22s %5s %6s %10s %9s %9s\n", "configuration",
                "jobs", "prune", "wall (ms)", "explored", "pruned");
    std::printf("%-22s %5u %6s %10.1f %9s %9s\n", seed.name.c_str(),
                seed.jobs, "off", seed.ms, "-", "-");

    struct Config
    {
        unsigned jobs;
        bool prune;
    };
    const Config configs[] = {
        {1, false}, {1, true}, {4, false}, {4, true}};
    std::vector<Row> rows;
    bool identical = true;
    for (const Config &cfg : configs) {
        check::CampaignOptions opts;
        opts.jobs = cfg.jobs;
        opts.prune = cfg.prune;
        auto res = check::runCampaign(model, suite, opts);
        Row row{strfmt("campaign-j%u-%s", cfg.jobs,
                       cfg.prune ? "pruned" : "exhaustive"),
                cfg.jobs, cfg.prune, res.ms, res.executionsExplored,
                res.executionsPruned, res.branches};
        for (size_t i = 0; i < n; i++) {
            if (!(verdictOf(res.tests[i]) == reference[i])) {
                identical = false;
                std::printf("  MISMATCH vs seed on %s: %s\n",
                            suite[i].name.c_str(),
                            res.tests[i].summary().c_str());
            }
        }
        std::printf("%-22s %5u %6s %10.1f %9lld %9lld\n",
                    row.name.c_str(), row.jobs,
                    row.prune ? "on" : "off", row.ms, row.explored,
                    row.pruned);
        rows.push_back(row);
    }

    double speedup_j4 = seed.ms / rows[3].ms;          // j4 pruned
    double speedup_j4_ex = seed.ms / rows[2].ms;       // j4 exhaustive
    double speedup_prune_j1 = rows[0].ms / rows[1].ms; // at jobs=1
    std::printf("\nspeedup vs seed: jobs=4 pruned %.2fx, jobs=4 "
                "exhaustive %.2fx; pruning alone (jobs=1) %.2fx\n",
                speedup_j4, speedup_j4_ex, speedup_prune_j1);
    std::printf("outcome sets / verdict flags identical in all "
                "configurations: %s\n", identical ? "yes" : "NO");

    std::string json = "{\n";
    json += strfmt("  \"suite_tests\": %zu,\n", n);
    json += strfmt("  \"host_cpus\": %u,\n", cpus);
    json += strfmt("  \"seed_sequential_ms\": %.3f,\n", seed.ms);
    json += "  \"rows\": [\n";
    for (size_t i = 0; i < rows.size(); i++) {
        const Row &r = rows[i];
        json += strfmt("    {\"name\": \"%s\", \"jobs\": %u, "
                       "\"prune\": %s, \"wall_ms\": %.3f, "
                       "\"explored\": %lld, \"pruned\": %lld, "
                       "\"branches\": %lld}%s\n",
                       r.name.c_str(), r.jobs,
                       r.prune ? "true" : "false", r.ms, r.explored,
                       r.pruned, r.branches,
                       i + 1 < rows.size() ? "," : "");
    }
    json += "  ],\n";
    json += strfmt("  \"speedup_jobs4_pruned_vs_seed\": %.3f,\n",
                   speedup_j4);
    json += strfmt("  \"speedup_jobs4_exhaustive_vs_seed\": %.3f,\n",
                   speedup_j4_ex);
    json += strfmt("  \"speedup_pruned_vs_exhaustive_jobs1\": %.3f,\n",
                   speedup_prune_j1);
    json += strfmt("  \"identical_outcomes\": %s\n",
                   identical ? "true" : "false");
    json += "}\n";
    writeFile(bench::outPath("BENCH_litmus.json"), json);
    std::printf("JSON summary written to %s\n",
                bench::outPath("BENCH_litmus.json").c_str());

    return identical ? 0 : 1;
}
