/**
 * @file
 * Regenerates Fig. 5 of the paper: the synthesis-cost breakdown for
 * rtl2uspec on the multi-V-scale — SVA counts, runtimes, runtime/SVA,
 * and HBI hypotheses vs. proven HBIs split into local and global
 * state, per HBI category. Also reports the §5.1-style design-size
 * numbers and the §6.2 headline (one-time synthesis cost), and writes
 * the synthesized model to out/vscale.uarch plus the DFG DOT files.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "bench_util.hh"
#include "common/timer.hh"

using namespace r2u;

int
main(int argc, char **argv)
{
    unsigned jobs = 0; // 0: hardware concurrency
    for (int i = 1; i < argc; i++) {
        if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
            int v = std::atoi(argv[++i]);
            if (v < 1) {
                std::fprintf(stderr,
                             "--jobs expects a positive count\n");
                return 2;
            }
            jobs = static_cast<unsigned>(v);
        } else {
            std::fprintf(stderr,
                         "usage: bench_fig5_synthesis [--jobs N]\n");
            return 2;
        }
    }

    bench::banner("Fig. 5 — rtl2uspec synthesis of a multi-V-scale "
                  "uspec model");

    auto cfg = bench::formalConfig();
    Timer elab_timer;
    auto design = vscale::elaborateVscale(cfg);
    double elab_s = elab_timer.seconds();

    auto st = design.netlist->stats();
    std::printf("\nDesign (cf. paper §5.1):\n");
    std::printf("  four-core multi-V-scale, XLEN=%u, %u-entry dmem, "
                "%u-entry imems\n",
                cfg.xlen, cfg.dmemWords, cfg.imemWords);
    std::printf("  %zu cells (%zu combinational), %zu registers "
                "(%zu flop bits), %zu memories (%zu bits)\n",
                st.cells, st.combCells, st.registers, st.flopBits,
                st.memories, st.memBits);
    std::printf("  Verilog parse + elaborate: %.2f s\n", elab_s);

    auto md = vscale::vscaleMetadata(cfg);
    rtl2uspec::SynthesisOptions synth_opts;
    synth_opts.jobs = jobs;
    auto result = rtl2uspec::synthesize(design, md, synth_opts);

    std::printf("\n%s\n", result.report().c_str());

    std::printf("Per-SVA detail (verdicts as the property verifier "
                "reports them):\n");
    std::printf("  %-34s %-9s %-12s %10s %6s\n", "SVA", "category",
                "verdict", "time (s)", "hyp");
    for (const auto &sva : result.svas) {
        std::printf("  %-34s %-9s %-12s %10.3f %6u\n",
                    sva.name.c_str(), sva.category.c_str(),
                    bmc::verdictName(sva.verdict), sva.seconds,
                    sva.hypotheses);
    }

    std::printf("\nPer-instruction DFG membership (cf. Fig. 3c):\n");
    for (const auto &[instr, nodes] : result.instrNodes) {
        std::printf("  %s: ", instr.c_str());
        for (const auto &n : nodes)
            std::printf("%s ", n.c_str());
        std::printf("\n");
    }

    writeFile(bench::outPath("vscale.uarch"), result.model.print());
    writeFile(bench::outPath("full_design_dfg.dot"), result.fullDfgDot);
    for (const auto &[instr, dot] : result.instrDfgDots)
        writeFile(bench::outPath("dfg_" + instr + ".dot"), dot);

    // Machine-readable summary for scripted comparisons across runs.
    {
        std::string json = "{\n";
        json += strfmt("  \"jobs\": %u,\n", result.jobs);
        json += strfmt("  \"unroll_contexts\": %llu,\n",
                       static_cast<unsigned long long>(
                           result.unrollContexts));
        json += strfmt("  \"svas\": %zu,\n", result.svas.size());
        json += strfmt("  \"static_seconds\": %.3f,\n",
                       result.staticSeconds);
        json += strfmt("  \"proof_seconds\": %.3f,\n",
                       result.proofSeconds);
        json += strfmt("  \"post_seconds\": %.3f,\n",
                       result.postSeconds);
        json += strfmt("  \"total_seconds\": %.3f,\n",
                       result.totalSeconds);
        json += "  \"categories\": {\n";
        bool first = true;
        for (const auto &[cat, cs] : result.stats) {
            if (!first)
                json += ",\n";
            first = false;
            json += strfmt("    \"%s\": {\"svas\": %d, \"seconds\": "
                           "%.3f, \"hyp_local\": %d, \"hyp_global\": "
                           "%d, \"hbi_local\": %d, \"hbi_global\": %d}",
                           cat.c_str(), cs.svas, cs.seconds,
                           cs.hypLocal, cs.hypGlobal, cs.hbiLocal,
                           cs.hbiGlobal);
        }
        json += "\n  }\n}\n";
        writeFile(bench::outPath("BENCH_fig5.json"), json);
        std::printf("  JSON summary written to %s\n",
                    bench::outPath("BENCH_fig5.json").c_str());
    }

    std::printf("\nHeadline (paper: 6.84 min total, 3.34 s/SVA "
                "average on JasperGold):\n");
    std::printf("  synthesized a complete, proven-correct-by-"
                "construction uspec model in %.2f s\n",
                result.totalSeconds);
    std::printf("  (static analysis %.2f s, SVA evaluation %.2f s, "
                "post-processing %.3f s)\n",
                result.staticSeconds, result.proofSeconds,
                result.postSeconds);
    std::printf("  model written to %s\n",
                bench::outPath("vscale.uarch").c_str());
    return 0;
}
