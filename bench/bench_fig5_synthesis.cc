/**
 * @file
 * Regenerates Fig. 5 of the paper: the synthesis-cost breakdown for
 * rtl2uspec on the multi-V-scale — SVA counts, runtimes, runtime/SVA,
 * and HBI hypotheses vs. proven HBIs split into local and global
 * state, per HBI category. Also reports the §5.1-style design-size
 * numbers and the §6.2 headline (one-time synthesis cost), and writes
 * the synthesized model to out/vscale.uarch plus the DFG DOT files.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "bench_util.hh"
#include "common/timer.hh"

using namespace r2u;

int
main(int argc, char **argv)
{
    unsigned jobs = 0; // 0: hardware concurrency
    bool full_unroll = false;
    rtl2uspec::SynthesisOptions budget_opts;
    std::string report_path;
    auto usage = [] {
        std::fprintf(
            stderr,
            "usage: bench_fig5_synthesis [--jobs N] "
            "[--full-unroll]\n"
            "  [--conflict-budget N] [--query-timeout S] "
            "[--total-timeout S]\n"
            "  [--retry-escalation K] [--report FILE] "
            "[--cache DIR]\n"
            "  [--engine bmc|kind|pdr|race]\n");
    };
    for (int i = 1; i < argc; i++) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (++i >= argc)
                fatal("missing argument after '%s'", arg.c_str());
            return argv[i];
        };
        // Numeric values go through the shared whole-token parsers
        // (r2u::parseInt & friends): `--jobs foo` is a usage error
        // (exit 2), not atoi's silent 0 or an uncaught exception.
        try {
            if (arg == "--jobs") {
                int v = parseInt("--jobs", next());
                if (v < 1)
                    fatal("--jobs expects a positive count");
                jobs = static_cast<unsigned>(v);
            } else if (arg == "--full-unroll") {
                full_unroll = true;
            } else if (arg == "--conflict-budget") {
                budget_opts.conflictBudget =
                    parseInt64("--conflict-budget", next());
            } else if (arg == "--query-timeout") {
                budget_opts.queryTimeoutSeconds =
                    parseDouble("--query-timeout", next());
            } else if (arg == "--total-timeout") {
                budget_opts.totalTimeoutSeconds =
                    parseDouble("--total-timeout", next());
            } else if (arg == "--retry-escalation") {
                budget_opts.retryEscalation =
                    parseDouble("--retry-escalation", next());
            } else if (arg == "--report") {
                report_path = next();
            } else if (arg == "--cache") {
                budget_opts.cacheDir = next();
            } else if (arg == "--engine") {
                std::string e = next();
                if (e == "bmc") {
                    budget_opts.engine = bmc::EngineChoice::Bmc;
                } else if (e == "kind") {
                    budget_opts.engine = bmc::EngineChoice::KInduction;
                } else if (e == "pdr") {
                    budget_opts.engine = bmc::EngineChoice::Pdr;
                } else if (e == "race") {
                    budget_opts.engine = bmc::EngineChoice::Race;
                } else {
                    fatal("--engine expects bmc|kind|pdr|race, got "
                          "'%s'", e.c_str());
                }
            } else {
                usage();
                return 2;
            }
        } catch (const FatalError &e) {
            std::fprintf(stderr, "error: %s\n", e.what());
            usage();
            return 2;
        }
    }

    bench::banner("Fig. 5 — rtl2uspec synthesis of a multi-V-scale "
                  "uspec model");

    auto cfg = bench::formalConfig();
    Timer elab_timer;
    auto design = vscale::elaborateVscale(cfg);
    double elab_s = elab_timer.seconds();

    auto st = design.netlist->stats();
    std::printf("\nDesign (cf. paper §5.1):\n");
    std::printf("  four-core multi-V-scale, XLEN=%u, %u-entry dmem, "
                "%u-entry imems\n",
                cfg.xlen, cfg.dmemWords, cfg.imemWords);
    std::printf("  %zu cells (%zu combinational), %zu registers "
                "(%zu flop bits), %zu memories (%zu bits)\n",
                st.cells, st.combCells, st.registers, st.flopBits,
                st.memories, st.memBits);
    std::printf("  Verilog parse + elaborate: %.2f s\n", elab_s);

    auto md = vscale::vscaleMetadata(cfg);
    rtl2uspec::SynthesisOptions synth_opts = budget_opts;
    synth_opts.jobs = jobs;
    synth_opts.fullUnroll = full_unroll;
    auto result = rtl2uspec::synthesize(design, md, synth_opts);

    std::printf("\n%s\n", result.report().c_str());

    std::printf("Per-SVA detail (verdicts as the property verifier "
                "reports them):\n");
    std::printf("  %-34s %-9s %-12s %10s %6s %9s %9s\n", "SVA",
                "category", "verdict", "time (s)", "hyp", "CNF vars",
                "clauses");
    std::vector<double> solve_times;
    for (const auto &sva : result.svas) {
        std::printf("  %-34s %-9s %-12s %10.3f %6u %9zu %9zu\n",
                    sva.name.c_str(), sva.category.c_str(),
                    bmc::verdictName(sva.verdict), sva.seconds,
                    sva.hypotheses, sva.cnfVars, sva.cnfClauses);
        solve_times.push_back(sva.seconds);
    }
    if (result.unknownSvas > 0) {
        std::printf("  %zu SVA(s) undetermined; model degraded "
                    "conservatively (%zu note(s))\n",
                    static_cast<size_t>(result.unknownSvas),
                    result.degraded.size());
    }
    double solve_p50 = bench::percentile(solve_times, 0.50);
    double solve_p95 = bench::percentile(solve_times, 0.95);
    std::printf("  solve time p50 %.3f s, p95 %.3f s; mean CNF "
                "%.0f vars / %.0f clauses (%s)\n",
                solve_p50, solve_p95, result.meanCnfVars,
                result.meanCnfClauses,
                result.fullUnroll ? "full unroll" : "COI-sliced");

    // Trust-but-verify overhead: replay validation rides along inside
    // proofSeconds, so the interesting number is its fraction of the
    // SVA-evaluation wall time (acceptance: < 10%).
    double replay_overhead = result.proofSeconds > 0
                                 ? result.replaySeconds /
                                       result.proofSeconds
                                 : 0.0;
    std::printf("\nVerdict validation (%s):\n",
                result.validateMode.c_str());
    std::printf("  %zu replay(s) %.3f s, %zu proof re-check(s) "
                "%.3f s (%zu inconclusive), %zu mismatch(es), "
                "%zu degraded\n",
                static_cast<size_t>(result.replays),
                result.replaySeconds,
                static_cast<size_t>(result.proofRechecks),
                result.recheckSeconds,
                static_cast<size_t>(result.recheckInconclusive),
                static_cast<size_t>(result.validationMismatches),
                static_cast<size_t>(result.validationFailures));
    std::printf("  replay overhead: %.2f%% of SVA-evaluation wall "
                "time (acceptance < 10%%)\n",
                100.0 * replay_overhead);

    if (result.cacheEnabled)
        std::printf("\nVerdict cache: %zu hit(s), %zu miss(es) "
                    "(%zu invalidated), %zu verdict(s) appended, "
                    "SVA evaluation %.3f s\n",
                    static_cast<size_t>(result.cacheHits),
                    static_cast<size_t>(result.cacheMisses),
                    static_cast<size_t>(result.cacheInvalidations),
                    static_cast<size_t>(result.cacheAppends),
                    result.proofSeconds);

    // Eager-vs-sliced comparison: rerun SVA evaluation in the
    // opposite unroll mode at the same job count.
    auto other = bench::synthesizeVscale(false, jobs, !full_unroll);
    const auto &eager = full_unroll ? result : other;
    const auto &sliced = full_unroll ? other : result;
    std::printf("\nCOI slicing vs full unroll (same %u-worker run):\n",
                result.jobs);
    std::printf("  full unroll: proof %.2f s, %.0f CNF vars/query "
                "mean\n",
                eager.proofSeconds, eager.meanCnfVars);
    std::printf("  COI-sliced:  proof %.2f s, %.0f CNF vars/query "
                "mean\n",
                sliced.proofSeconds, sliced.meanCnfVars);
    std::printf("  speedup %.2fx, CNF var reduction %.2fx, models "
                "%s\n",
                eager.proofSeconds / sliced.proofSeconds,
                eager.meanCnfVars / sliced.meanCnfVars,
                eager.model.print() == sliced.model.print()
                    ? "identical"
                    : "DIFFERENT (BUG)");
    std::printf("  per category (CNF vars/query mean, full unroll -> "
                "sliced):\n");
    for (const auto &[cat, ecs] : eager.stats) {
        auto it = sliced.stats.find(cat);
        if (it == sliced.stats.end() || !ecs.svas || !it->second.svas)
            continue;
        double ev = static_cast<double>(ecs.cnfVarsSum) / ecs.svas;
        double sv = static_cast<double>(it->second.cnfVarsSum) /
                    it->second.svas;
        std::printf("    %-9s %8.0f -> %8.0f (%.2fx)\n", cat.c_str(),
                    ev, sv, ev / sv);
    }

    // SAT-engine configuration rows: the default single-config
    // incremental path vs. portfolio racing and vs. inprocessing
    // disabled, at the same job count. Verdicts and the emitted model
    // must be identical across all three; proof time is the row.
    // The comparison rows must re-solve, not replay — never hand the
    // secondary runs the main run's populated cache.
    rtl2uspec::SynthesisOptions port_opts = synth_opts;
    port_opts.portfolio = true;
    port_opts.cacheDir.clear();
    auto port = bench::synthesizeVscaleWith(port_opts);
    rtl2uspec::SynthesisOptions noinp_opts = synth_opts;
    noinp_opts.inprocess = false;
    noinp_opts.cacheDir.clear();
    auto noinp = bench::synthesizeVscaleWith(noinp_opts);
    bool port_same = port.model.print() == result.model.print();
    bool noinp_same = noinp.model.print() == result.model.print();
    std::printf("\nSAT engine configuration (same %u-worker run):\n",
                result.jobs);
    std::printf("  default:      proof %.2f s (%zu/%zu contexts "
                "warm-seeded, %zu inprocess pass(es))\n",
                result.proofSeconds,
                static_cast<size_t>(result.contextsSeeded),
                static_cast<size_t>(result.unrollContexts),
                static_cast<size_t>(result.inprocessRuns));
    std::printf("  portfolio:    proof %.2f s (%zu race(s), %zu "
                "challenger win(s), %zu clause(s) imported), model "
                "%s\n",
                port.proofSeconds,
                static_cast<size_t>(port.portfolioRaces),
                static_cast<size_t>(port.portfolioChallengerWins),
                static_cast<size_t>(port.sharedImported),
                port_same ? "identical" : "DIFFERENT (BUG)");
    std::printf("  no-inprocess: proof %.2f s, model %s\n",
                noinp.proofSeconds,
                noinp_same ? "identical" : "DIFFERENT (BUG)");

    // Proof-engine comparison: plain incremental BMC vs. the default
    // race (PDR + k-induction challengers). Verdicts and the model
    // must be identical; the race additionally closes frame-local
    // proofs as *unbounded* — generality no bound of plain BMC has.
    rtl2uspec::SynthesisOptions bmc_opts = synth_opts;
    bmc_opts.engine = bmc::EngineChoice::Bmc;
    bmc_opts.cacheDir.clear();
    rtl2uspec::SynthesisOptions race_opts = synth_opts;
    race_opts.engine = bmc::EngineChoice::Race;
    race_opts.cacheDir.clear();
    const bool main_is_race =
        synth_opts.engine == bmc::EngineChoice::Race;
    const bool main_is_bmc =
        synth_opts.engine == bmc::EngineChoice::Bmc;
    auto bmc_run = main_is_bmc ? result
                               : bench::synthesizeVscaleWith(bmc_opts);
    auto race_run = main_is_race
                        ? result
                        : bench::synthesizeVscaleWith(race_opts);
    bool engine_same =
        bmc_run.model.print() == race_run.model.print();
    std::printf("\nProof engine (same %u-worker run):\n", result.jobs);
    std::printf("  bmc:  proof %.2f s\n", bmc_run.proofSeconds);
    std::printf("  race: proof %.2f s (%zu race(s); wins bmc=%zu "
                "kind=%zu pdr=%zu; %zu unbounded proof(s), "
                "%zu PDR frame(s), %zu obligation(s)), model %s\n",
                race_run.proofSeconds,
                static_cast<size_t>(race_run.engineRaces),
                static_cast<size_t>(race_run.bmcWins),
                static_cast<size_t>(race_run.kindWins),
                static_cast<size_t>(race_run.pdrWins),
                static_cast<size_t>(race_run.unboundedProofs),
                static_cast<size_t>(race_run.pdrFrames),
                static_cast<size_t>(race_run.pdrObligations),
                engine_same ? "identical" : "DIFFERENT (BUG)");

    // Worker scaling at race defaults: the paper-scale question is
    // how the full SVA sweep behaves when the host actually has the
    // threads (8- and 16-worker rows, quick mode trims to 8).
    std::vector<unsigned> scale_jobs{8};
    if (!bench::quickMode())
        scale_jobs.push_back(16);
    struct ScaleRow
    {
        unsigned jobs;
        rtl2uspec::SynthesisResult res;
    };
    std::vector<ScaleRow> scale_rows;
    std::printf("\nWorker scaling (engine %s):\n",
                race_run.engineMode.c_str());
    for (unsigned sj : scale_jobs) {
        rtl2uspec::SynthesisOptions sopts = race_opts;
        sopts.jobs = sj;
        auto sres = bench::synthesizeVscaleWith(sopts);
        bool same = sres.model.print() == race_run.model.print();
        std::printf("  %2u workers: proof %.2f s, total %.2f s, "
                    "%zu unbounded proof(s), model %s\n",
                    sj, sres.proofSeconds, sres.totalSeconds,
                    static_cast<size_t>(sres.unboundedProofs),
                    same ? "identical" : "DIFFERENT (BUG)");
        scale_rows.push_back(ScaleRow{sj, std::move(sres)});
    }

    std::printf("\nPer-instruction DFG membership (cf. Fig. 3c):\n");
    for (const auto &[instr, nodes] : result.instrNodes) {
        std::printf("  %s: ", instr.c_str());
        for (const auto &n : nodes)
            std::printf("%s ", n.c_str());
        std::printf("\n");
    }

    writeFile(bench::outPath("vscale.uarch"), result.model.print());
    writeFile(bench::outPath("full_design_dfg.dot"), result.fullDfgDot);
    for (const auto &[instr, dot] : result.instrDfgDots)
        writeFile(bench::outPath("dfg_" + instr + ".dot"), dot);

    // Machine-readable summary for scripted comparisons across runs.
    {
        std::string json = "{\n";
        json += strfmt("  \"jobs\": %u,\n", result.jobs);
        json += strfmt("  \"full_unroll\": %s,\n",
                       result.fullUnroll ? "true" : "false");
        json += strfmt("  \"unroll_contexts\": %llu,\n",
                       static_cast<unsigned long long>(
                           result.unrollContexts));
        json += strfmt("  \"contexts_seeded\": %llu,\n",
                       static_cast<unsigned long long>(
                           result.contextsSeeded));
        json += strfmt("  \"svas\": %zu,\n", result.svas.size());
        json += strfmt("  \"unknown_svas\": %zu,\n",
                       static_cast<size_t>(result.unknownSvas));
        json += strfmt("  \"degraded\": %zu,\n",
                       result.degraded.size());
        json += strfmt("  \"static_seconds\": %.3f,\n",
                       result.staticSeconds);
        json += strfmt("  \"proof_seconds\": %.3f,\n",
                       result.proofSeconds);
        json += strfmt("  \"post_seconds\": %.3f,\n",
                       result.postSeconds);
        json += strfmt("  \"total_seconds\": %.3f,\n",
                       result.totalSeconds);
        json += strfmt("  \"solve_seconds_p50\": %.4f,\n", solve_p50);
        json += strfmt("  \"solve_seconds_p95\": %.4f,\n", solve_p95);
        json += strfmt("  \"cnf_vars_mean\": %.1f,\n",
                       result.meanCnfVars);
        json += strfmt("  \"cnf_clauses_mean\": %.1f,\n",
                       result.meanCnfClauses);
        json += "  \"queries\": [\n";
        for (size_t i = 0; i < result.svas.size(); i++) {
            const auto &sva = result.svas[i];
            json += strfmt("    {\"name\": \"%s\", \"category\": "
                           "\"%s\", \"verdict\": \"%s\", \"source\": "
                           "\"%s\", \"retries\": %u, "
                           "\"seconds\": %.4f, \"cnf_vars\": "
                           "%zu, \"cnf_clauses\": %zu, \"coi_cells\": "
                           "%zu}%s\n",
                           sva.name.c_str(), sva.category.c_str(),
                           bmc::verdictName(sva.verdict),
                           bmc::verdictSourceName(sva.source),
                           sva.retries,
                           sva.seconds, sva.cnfVars, sva.cnfClauses,
                           sva.coiCells,
                           i + 1 < result.svas.size() ? "," : "");
        }
        json += "  ],\n";
        json += "  \"validation\": {\n";
        json += strfmt("    \"mode\": \"%s\",\n",
                       result.validateMode.c_str());
        json += strfmt("    \"replays\": %zu,\n",
                       static_cast<size_t>(result.replays));
        json += strfmt("    \"proof_rechecks\": %zu,\n",
                       static_cast<size_t>(result.proofRechecks));
        json += strfmt("    \"recheck_inconclusive\": %zu,\n",
                       static_cast<size_t>(result.recheckInconclusive));
        json += strfmt("    \"mismatches\": %zu,\n",
                       static_cast<size_t>(
                           result.validationMismatches));
        json += strfmt("    \"validation_failures\": %zu,\n",
                       static_cast<size_t>(result.validationFailures));
        json += strfmt("    \"replay_s\": %.4f,\n",
                       result.replaySeconds);
        json += strfmt("    \"recheck_s\": %.4f,\n",
                       result.recheckSeconds);
        json += strfmt("    \"validate_s\": %.4f,\n",
                       result.validateSeconds);
        json += strfmt("    \"proof_s\": %.4f,\n",
                       result.proofSeconds);
        json += strfmt("    \"replay_overhead_fraction\": %.5f\n",
                       replay_overhead);
        json += "  },\n";
        json += "  \"cache\": {\n";
        json += strfmt("    \"enabled\": %s,\n",
                       result.cacheEnabled ? "true" : "false");
        json += strfmt("    \"hits\": %zu,\n",
                       static_cast<size_t>(result.cacheHits));
        json += strfmt("    \"misses\": %zu,\n",
                       static_cast<size_t>(result.cacheMisses));
        json += strfmt("    \"invalidations\": %zu,\n",
                       static_cast<size_t>(result.cacheInvalidations));
        json += strfmt("    \"appends\": %zu\n",
                       static_cast<size_t>(result.cacheAppends));
        json += "  },\n";
        json += "  \"coi_comparison\": {\n";
        json += strfmt("    \"eager_proof_seconds\": %.3f,\n",
                       eager.proofSeconds);
        json += strfmt("    \"sliced_proof_seconds\": %.3f,\n",
                       sliced.proofSeconds);
        json += strfmt("    \"eager_cnf_vars_mean\": %.1f,\n",
                       eager.meanCnfVars);
        json += strfmt("    \"sliced_cnf_vars_mean\": %.1f,\n",
                       sliced.meanCnfVars);
        json += strfmt("    \"eager_cnf_clauses_mean\": %.1f,\n",
                       eager.meanCnfClauses);
        json += strfmt("    \"sliced_cnf_clauses_mean\": %.1f,\n",
                       sliced.meanCnfClauses);
        json += strfmt("    \"proof_speedup\": %.3f,\n",
                       eager.proofSeconds / sliced.proofSeconds);
        json += strfmt("    \"cnf_var_reduction\": %.3f,\n",
                       eager.meanCnfVars / sliced.meanCnfVars);
        json += strfmt("    \"models_identical\": %s\n",
                       eager.model.print() == sliced.model.print()
                           ? "true"
                           : "false");
        json += "  },\n";
        json += "  \"sat_config\": {\n";
        json += strfmt("    \"default_proof_seconds\": %.3f,\n",
                       result.proofSeconds);
        json += strfmt("    \"portfolio_proof_seconds\": %.3f,\n",
                       port.proofSeconds);
        json += strfmt("    \"no_inprocess_proof_seconds\": %.3f,\n",
                       noinp.proofSeconds);
        json += strfmt("    \"portfolio_races\": %zu,\n",
                       static_cast<size_t>(port.portfolioRaces));
        json += strfmt("    \"portfolio_challenger_wins\": %zu,\n",
                       static_cast<size_t>(
                           port.portfolioChallengerWins));
        json += strfmt("    \"portfolio_shared_imported\": %zu,\n",
                       static_cast<size_t>(port.sharedImported));
        json += strfmt("    \"inprocess_runs\": %zu,\n",
                       static_cast<size_t>(result.inprocessRuns));
        json += strfmt("    \"inprocess_clauses_removed\": %zu,\n",
                       static_cast<size_t>(
                           result.inprocessClausesRemoved));
        json += strfmt("    \"portfolio_model_identical\": %s,\n",
                       port_same ? "true" : "false");
        json += strfmt("    \"no_inprocess_model_identical\": %s\n",
                       noinp_same ? "true" : "false");
        json += "  },\n";
        json += "  \"engine\": {\n";
        json += strfmt("    \"mode\": \"%s\",\n",
                       result.engineMode.c_str());
        json += strfmt("    \"bmc_proof_seconds\": %.3f,\n",
                       bmc_run.proofSeconds);
        json += strfmt("    \"race_proof_seconds\": %.3f,\n",
                       race_run.proofSeconds);
        json += strfmt("    \"races\": %zu,\n",
                       static_cast<size_t>(race_run.engineRaces));
        json += strfmt("    \"bmc_wins\": %zu,\n",
                       static_cast<size_t>(race_run.bmcWins));
        json += strfmt("    \"kind_wins\": %zu,\n",
                       static_cast<size_t>(race_run.kindWins));
        json += strfmt("    \"pdr_wins\": %zu,\n",
                       static_cast<size_t>(race_run.pdrWins));
        json += strfmt("    \"unbounded_proofs\": %zu,\n",
                       static_cast<size_t>(race_run.unboundedProofs));
        json += strfmt("    \"pdr_frames\": %zu,\n",
                       static_cast<size_t>(race_run.pdrFrames));
        json += strfmt("    \"pdr_obligations\": %zu,\n",
                       static_cast<size_t>(race_run.pdrObligations));
        json += strfmt("    \"race_model_identical\": %s\n",
                       engine_same ? "true" : "false");
        json += "  },\n";
        json += "  \"scaling\": [\n";
        for (size_t i = 0; i < scale_rows.size(); i++) {
            const auto &row = scale_rows[i];
            json += strfmt(
                "    {\"jobs\": %u, \"proof_seconds\": %.3f, "
                "\"total_seconds\": %.3f, \"races\": %zu, "
                "\"unbounded_proofs\": %zu, "
                "\"model_identical\": %s}%s\n",
                row.jobs, row.res.proofSeconds, row.res.totalSeconds,
                static_cast<size_t>(row.res.engineRaces),
                static_cast<size_t>(row.res.unboundedProofs),
                row.res.model.print() == race_run.model.print()
                    ? "true"
                    : "false",
                i + 1 < scale_rows.size() ? "," : "");
        }
        json += "  ],\n";
        json += "  \"categories\": {\n";
        bool first = true;
        for (const auto &[cat, cs] : result.stats) {
            if (!first)
                json += ",\n";
            first = false;
            json += strfmt("    \"%s\": {\"svas\": %d, \"seconds\": "
                           "%.3f, \"hyp_local\": %d, \"hyp_global\": "
                           "%d, \"hbi_local\": %d, \"hbi_global\": %d}",
                           cat.c_str(), cs.svas, cs.seconds,
                           cs.hypLocal, cs.hypGlobal, cs.hbiLocal,
                           cs.hbiGlobal);
        }
        json += "\n  }\n}\n";
        writeFile(bench::outPath("BENCH_fig5.json"), json);
        std::printf("  JSON summary written to %s\n",
                    bench::outPath("BENCH_fig5.json").c_str());
    }

    if (!report_path.empty()) {
        writeFile(report_path, result.jsonReport());
        std::printf("  structured run report written to %s\n",
                    report_path.c_str());
    }

    std::printf("\nHeadline (paper: 6.84 min total, 3.34 s/SVA "
                "average on JasperGold):\n");
    if (result.unknownSvas == 0)
        std::printf("  synthesized a complete, proven-correct-by-"
                    "construction uspec model in %.2f s\n",
                    result.totalSeconds);
    else
        std::printf("  synthesized a conservatively DEGRADED uspec "
                    "model in %.2f s (%zu SVA(s) undetermined)\n",
                    result.totalSeconds,
                    static_cast<size_t>(result.unknownSvas));
    std::printf("  (static analysis %.2f s, SVA evaluation %.2f s, "
                "post-processing %.3f s)\n",
                result.staticSeconds, result.proofSeconds,
                result.postSeconds);
    std::printf("  model written to %s\n",
                bench::outPath("vscale.uarch").c_str());
    return 0;
}
