/**
 * @file
 * Regenerates Fig. 1b: the µhb graph for the message-passing (MP)
 * litmus test's forbidden outcome on the rtl2uspec-synthesized
 * multi-V-scale model. The graph must be cyclic — the execution is
 * unobservable, so the design forbids the non-SC outcome. The DOT
 * rendering is written to out/uhb_mp_forbidden.dot, plus an acyclic
 * witness of an allowed outcome for contrast.
 */

#include <cstdio>

#include "bench_util.hh"
#include "check/check.hh"
#include "litmus/litmus.hh"
#include "uhb/uhb.hh"

using namespace r2u;

int
main()
{
    bench::banner("Fig. 1b — µhb graph of MP on the synthesized "
                  "multi-V-scale model");

    auto synth = bench::synthesizeVscale();
    litmus::Test mp = litmus::standardSuite()[0];

    // Forbidden execution: r1 observes the flag write, r2 reads the
    // initial value of the data.
    auto ops = check::microopsOf(mp);
    uhb::Execution exec;
    exec.ops = ops;
    exec.rf = {-2, -2, 1, -1};
    exec.ws[ops[0].addr] = {0};
    exec.ws[ops[1].addr] = {1};
    exec.ops[2].value = 1;
    exec.ops[3].value = 0;

    auto res = uhb::solve(synth.model, exec);
    std::printf("\nforbidden MP outcome (r1=1, r2=0): %s "
                "(%d branches, %zu edges)\n",
                res.observable ? "OBSERVABLE (BUG!)"
                               : "cyclic -> unobservable",
                res.branchesExplored, res.edges);
    std::string dot = res.graph.toDot(synth.model, exec.ops,
                                      "mp_forbidden");
    writeFile(bench::outPath("uhb_mp_forbidden.dot"), dot);
    std::printf("DOT written to %s\n",
                bench::outPath("uhb_mp_forbidden.dot").c_str());

    // Allowed execution for contrast: both reads observe the writes.
    exec.rf = {-2, -2, 1, 0};
    exec.ops[3].value = 1;
    auto ok = uhb::solve(synth.model, exec);
    std::printf("allowed MP outcome (r1=1, r2=1): %s (%zu edges)\n",
                ok.observable ? "acyclic -> observable"
                              : "cyclic (BUG!)",
                ok.edges);
    writeFile(bench::outPath("uhb_mp_allowed.dot"),
              ok.graph.toDot(synth.model, exec.ops, "mp_allowed"));

    std::printf("\nModel rows (StageNames):\n");
    for (size_t i = 0; i < synth.model.stageNames.size(); i++)
        std::printf("  StageName %zu \"%s\"\n", i,
                    synth.model.stageNames[i].c_str());
    return (!res.observable && ok.observable) ? 0 : 1;
}
