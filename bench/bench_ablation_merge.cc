/**
 * @file
 * Ablation of §4.4 node merging: rtl2uspec agglomerates state
 * elements with identical ordering behavior into mgnode_k rows to
 * "improve the efficiency and scalability of µspec model analyses".
 * This bench synthesizes merged and unmerged models and compares µhb
 * row counts, axiom/edge counts, and per-litmus-test check runtimes
 * across the 56-test suite.
 */

#include <cstdio>

#include "bench_util.hh"
#include "check/check.hh"
#include "litmus/litmus.hh"

using namespace r2u;

namespace
{

struct SuiteCost
{
    double ms = 0;
    int executions = 0;
    bool allPass = true;
};

SuiteCost
runSuite(const uspec::Model &model, size_t n)
{
    SuiteCost cost;
    auto suite = litmus::standardSuite();
    for (size_t i = 0; i < n; i++) {
        auto res = check::checkTest(model, suite[i]);
        cost.ms += res.ms;
        cost.executions += res.executionsExplored;
        cost.allPass &= res.pass && !res.interestingObservable;
    }
    return cost;
}

} // namespace

int
main()
{
    bench::banner("Ablation — §4.4 node merging");

    auto cfg = bench::formalConfig();
    auto design = vscale::elaborateVscale(cfg);
    size_t n = bench::quickMode() ? 12 : 56;

    auto md = vscale::vscaleMetadata(cfg);
    md.mergeNodes = true;
    auto merged = rtl2uspec::synthesize(design, md);

    md.mergeNodes = false;
    auto unmerged = rtl2uspec::synthesize(design, md);

    SuiteCost mc = runSuite(merged.model, n);
    SuiteCost uc = runSuite(unmerged.model, n);

    auto edges = [](const uspec::Model &m) {
        size_t total = 0;
        for (const auto &ax : m.axioms)
            for (const auto &alt : ax.edgeAlternatives)
                total += alt.size();
        return total;
    };

    std::printf("\n%-24s %8s %8s %10s %14s %8s\n", "model", "rows",
                "axioms", "edge specs", "suite time(ms)", "pass");
    std::printf("%-24s %8zu %8zu %10zu %14.2f %8s\n", "merged (§4.4)",
                merged.model.stageNames.size(),
                merged.model.axioms.size(), edges(merged.model),
                mc.ms, mc.allPass ? "yes" : "NO");
    std::printf("%-24s %8zu %8zu %10zu %14.2f %8s\n", "unmerged",
                unmerged.model.stageNames.size(),
                unmerged.model.axioms.size(), edges(unmerged.model),
                uc.ms, uc.allPass ? "yes" : "NO");
    std::printf("\nmerging shrinks the µhb graph rows %.1fx and the "
                "check runtime %.2fx over %zu tests\n",
                static_cast<double>(unmerged.model.stageNames.size()) /
                    static_cast<double>(merged.model.stageNames.size()),
                uc.ms / mc.ms, n);
    return (mc.allPass && uc.allPass) ? 0 : 1;
}
