file(REMOVE_RECURSE
  "CMakeFiles/r2u_vscale.dir/metadata.cc.o"
  "CMakeFiles/r2u_vscale.dir/metadata.cc.o.d"
  "CMakeFiles/r2u_vscale.dir/vscale.cc.o"
  "CMakeFiles/r2u_vscale.dir/vscale.cc.o.d"
  "libr2u_vscale.a"
  "libr2u_vscale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/r2u_vscale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
