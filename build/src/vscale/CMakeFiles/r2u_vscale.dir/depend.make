# Empty dependencies file for r2u_vscale.
# This may be replaced when dependencies are built.
