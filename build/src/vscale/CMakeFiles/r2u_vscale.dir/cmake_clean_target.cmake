file(REMOVE_RECURSE
  "libr2u_vscale.a"
)
