# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sat")
subdirs("netlist")
subdirs("verilog")
subdirs("sim")
subdirs("isa")
subdirs("vscale")
subdirs("bmc")
subdirs("sva")
subdirs("dfg")
subdirs("uspec")
subdirs("litmus")
subdirs("mcm")
subdirs("uhb")
subdirs("check")
subdirs("rtl2uspec")
subdirs("rtlcheck")
