# Empty dependencies file for r2u_verilog.
# This may be replaced when dependencies are built.
