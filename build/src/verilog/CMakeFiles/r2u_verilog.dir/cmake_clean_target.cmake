file(REMOVE_RECURSE
  "libr2u_verilog.a"
)
