file(REMOVE_RECURSE
  "CMakeFiles/r2u_verilog.dir/elaborate.cc.o"
  "CMakeFiles/r2u_verilog.dir/elaborate.cc.o.d"
  "CMakeFiles/r2u_verilog.dir/lexer.cc.o"
  "CMakeFiles/r2u_verilog.dir/lexer.cc.o.d"
  "CMakeFiles/r2u_verilog.dir/parser.cc.o"
  "CMakeFiles/r2u_verilog.dir/parser.cc.o.d"
  "libr2u_verilog.a"
  "libr2u_verilog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/r2u_verilog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
