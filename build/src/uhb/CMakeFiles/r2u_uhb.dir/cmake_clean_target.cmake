file(REMOVE_RECURSE
  "libr2u_uhb.a"
)
