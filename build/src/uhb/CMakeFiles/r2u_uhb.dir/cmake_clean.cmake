file(REMOVE_RECURSE
  "CMakeFiles/r2u_uhb.dir/uhb.cc.o"
  "CMakeFiles/r2u_uhb.dir/uhb.cc.o.d"
  "libr2u_uhb.a"
  "libr2u_uhb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/r2u_uhb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
