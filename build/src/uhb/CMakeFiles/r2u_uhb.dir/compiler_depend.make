# Empty compiler generated dependencies file for r2u_uhb.
# This may be replaced when dependencies are built.
