file(REMOVE_RECURSE
  "CMakeFiles/r2u_sat.dir/cnf.cc.o"
  "CMakeFiles/r2u_sat.dir/cnf.cc.o.d"
  "CMakeFiles/r2u_sat.dir/solver.cc.o"
  "CMakeFiles/r2u_sat.dir/solver.cc.o.d"
  "libr2u_sat.a"
  "libr2u_sat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/r2u_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
