file(REMOVE_RECURSE
  "libr2u_sat.a"
)
