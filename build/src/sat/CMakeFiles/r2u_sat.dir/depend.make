# Empty dependencies file for r2u_sat.
# This may be replaced when dependencies are built.
