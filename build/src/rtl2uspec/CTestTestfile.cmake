# CMake generated Testfile for 
# Source directory: /root/repo/src/rtl2uspec
# Build directory: /root/repo/build/src/rtl2uspec
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
