file(REMOVE_RECURSE
  "libr2u_core.a"
)
