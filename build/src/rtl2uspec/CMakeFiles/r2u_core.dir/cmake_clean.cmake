file(REMOVE_RECURSE
  "CMakeFiles/r2u_core.dir/metadata_io.cc.o"
  "CMakeFiles/r2u_core.dir/metadata_io.cc.o.d"
  "CMakeFiles/r2u_core.dir/synthesis.cc.o"
  "CMakeFiles/r2u_core.dir/synthesis.cc.o.d"
  "libr2u_core.a"
  "libr2u_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/r2u_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
