# Empty compiler generated dependencies file for r2u_core.
# This may be replaced when dependencies are built.
