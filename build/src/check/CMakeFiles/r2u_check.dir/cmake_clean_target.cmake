file(REMOVE_RECURSE
  "libr2u_check.a"
)
