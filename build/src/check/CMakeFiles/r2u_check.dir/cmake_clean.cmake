file(REMOVE_RECURSE
  "CMakeFiles/r2u_check.dir/check.cc.o"
  "CMakeFiles/r2u_check.dir/check.cc.o.d"
  "libr2u_check.a"
  "libr2u_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/r2u_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
