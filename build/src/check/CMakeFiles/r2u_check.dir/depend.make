# Empty dependencies file for r2u_check.
# This may be replaced when dependencies are built.
