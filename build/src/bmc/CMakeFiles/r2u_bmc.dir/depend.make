# Empty dependencies file for r2u_bmc.
# This may be replaced when dependencies are built.
