file(REMOVE_RECURSE
  "libr2u_bmc.a"
)
