file(REMOVE_RECURSE
  "CMakeFiles/r2u_bmc.dir/checker.cc.o"
  "CMakeFiles/r2u_bmc.dir/checker.cc.o.d"
  "CMakeFiles/r2u_bmc.dir/unroller.cc.o"
  "CMakeFiles/r2u_bmc.dir/unroller.cc.o.d"
  "libr2u_bmc.a"
  "libr2u_bmc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/r2u_bmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
