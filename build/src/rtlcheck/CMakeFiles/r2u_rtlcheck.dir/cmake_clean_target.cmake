file(REMOVE_RECURSE
  "libr2u_rtlcheck.a"
)
