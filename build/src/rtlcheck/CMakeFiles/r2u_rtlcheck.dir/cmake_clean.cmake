file(REMOVE_RECURSE
  "CMakeFiles/r2u_rtlcheck.dir/rtlcheck.cc.o"
  "CMakeFiles/r2u_rtlcheck.dir/rtlcheck.cc.o.d"
  "libr2u_rtlcheck.a"
  "libr2u_rtlcheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/r2u_rtlcheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
