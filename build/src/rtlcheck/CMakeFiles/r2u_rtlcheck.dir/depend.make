# Empty dependencies file for r2u_rtlcheck.
# This may be replaced when dependencies are built.
