file(REMOVE_RECURSE
  "CMakeFiles/r2u_litmus.dir/litmus.cc.o"
  "CMakeFiles/r2u_litmus.dir/litmus.cc.o.d"
  "libr2u_litmus.a"
  "libr2u_litmus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/r2u_litmus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
