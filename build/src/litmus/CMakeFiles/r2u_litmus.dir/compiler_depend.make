# Empty compiler generated dependencies file for r2u_litmus.
# This may be replaced when dependencies are built.
