file(REMOVE_RECURSE
  "libr2u_litmus.a"
)
