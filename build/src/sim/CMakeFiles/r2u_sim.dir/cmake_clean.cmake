file(REMOVE_RECURSE
  "CMakeFiles/r2u_sim.dir/simulator.cc.o"
  "CMakeFiles/r2u_sim.dir/simulator.cc.o.d"
  "CMakeFiles/r2u_sim.dir/vcd.cc.o"
  "CMakeFiles/r2u_sim.dir/vcd.cc.o.d"
  "libr2u_sim.a"
  "libr2u_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/r2u_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
