# Empty dependencies file for r2u_sim.
# This may be replaced when dependencies are built.
