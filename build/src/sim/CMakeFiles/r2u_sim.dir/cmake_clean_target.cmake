file(REMOVE_RECURSE
  "libr2u_sim.a"
)
