file(REMOVE_RECURSE
  "CMakeFiles/r2u_netlist.dir/netlist.cc.o"
  "CMakeFiles/r2u_netlist.dir/netlist.cc.o.d"
  "libr2u_netlist.a"
  "libr2u_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/r2u_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
