# Empty dependencies file for r2u_netlist.
# This may be replaced when dependencies are built.
