file(REMOVE_RECURSE
  "libr2u_netlist.a"
)
