file(REMOVE_RECURSE
  "CMakeFiles/r2u_uspec.dir/uspec.cc.o"
  "CMakeFiles/r2u_uspec.dir/uspec.cc.o.d"
  "libr2u_uspec.a"
  "libr2u_uspec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/r2u_uspec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
