file(REMOVE_RECURSE
  "libr2u_uspec.a"
)
