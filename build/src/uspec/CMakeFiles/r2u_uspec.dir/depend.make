# Empty dependencies file for r2u_uspec.
# This may be replaced when dependencies are built.
