file(REMOVE_RECURSE
  "libr2u_dfg.a"
)
