file(REMOVE_RECURSE
  "CMakeFiles/r2u_dfg.dir/dfg.cc.o"
  "CMakeFiles/r2u_dfg.dir/dfg.cc.o.d"
  "libr2u_dfg.a"
  "libr2u_dfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/r2u_dfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
