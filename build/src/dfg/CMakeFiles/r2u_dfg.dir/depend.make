# Empty dependencies file for r2u_dfg.
# This may be replaced when dependencies are built.
