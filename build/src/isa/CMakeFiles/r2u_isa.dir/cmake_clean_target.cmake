file(REMOVE_RECURSE
  "libr2u_isa.a"
)
