file(REMOVE_RECURSE
  "CMakeFiles/r2u_isa.dir/isa.cc.o"
  "CMakeFiles/r2u_isa.dir/isa.cc.o.d"
  "libr2u_isa.a"
  "libr2u_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/r2u_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
