# Empty compiler generated dependencies file for r2u_isa.
# This may be replaced when dependencies are built.
