file(REMOVE_RECURSE
  "libr2u_sva.a"
)
