# Empty compiler generated dependencies file for r2u_sva.
# This may be replaced when dependencies are built.
