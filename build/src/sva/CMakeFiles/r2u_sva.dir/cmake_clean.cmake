file(REMOVE_RECURSE
  "CMakeFiles/r2u_sva.dir/monitors.cc.o"
  "CMakeFiles/r2u_sva.dir/monitors.cc.o.d"
  "libr2u_sva.a"
  "libr2u_sva.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/r2u_sva.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
