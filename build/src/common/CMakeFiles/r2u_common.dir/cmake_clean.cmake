file(REMOVE_RECURSE
  "CMakeFiles/r2u_common.dir/bits.cc.o"
  "CMakeFiles/r2u_common.dir/bits.cc.o.d"
  "CMakeFiles/r2u_common.dir/dot.cc.o"
  "CMakeFiles/r2u_common.dir/dot.cc.o.d"
  "CMakeFiles/r2u_common.dir/logging.cc.o"
  "CMakeFiles/r2u_common.dir/logging.cc.o.d"
  "CMakeFiles/r2u_common.dir/strutil.cc.o"
  "CMakeFiles/r2u_common.dir/strutil.cc.o.d"
  "libr2u_common.a"
  "libr2u_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/r2u_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
