file(REMOVE_RECURSE
  "libr2u_common.a"
)
