# Empty dependencies file for r2u_common.
# This may be replaced when dependencies are built.
