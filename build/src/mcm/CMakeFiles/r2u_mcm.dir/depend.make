# Empty dependencies file for r2u_mcm.
# This may be replaced when dependencies are built.
