file(REMOVE_RECURSE
  "libr2u_mcm.a"
)
