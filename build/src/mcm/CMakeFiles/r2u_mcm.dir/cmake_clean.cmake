file(REMOVE_RECURSE
  "CMakeFiles/r2u_mcm.dir/sc_ref.cc.o"
  "CMakeFiles/r2u_mcm.dir/sc_ref.cc.o.d"
  "libr2u_mcm.a"
  "libr2u_mcm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/r2u_mcm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
