# Empty compiler generated dependencies file for test_check_more.
# This may be replaced when dependencies are built.
