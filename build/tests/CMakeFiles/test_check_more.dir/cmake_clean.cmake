file(REMOVE_RECURSE
  "CMakeFiles/test_check_more.dir/test_check_more.cc.o"
  "CMakeFiles/test_check_more.dir/test_check_more.cc.o.d"
  "test_check_more"
  "test_check_more.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_check_more.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
