# Empty dependencies file for test_rtl2uspec.
# This may be replaced when dependencies are built.
