file(REMOVE_RECURSE
  "CMakeFiles/test_rtl2uspec.dir/test_rtl2uspec.cc.o"
  "CMakeFiles/test_rtl2uspec.dir/test_rtl2uspec.cc.o.d"
  "test_rtl2uspec"
  "test_rtl2uspec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rtl2uspec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
