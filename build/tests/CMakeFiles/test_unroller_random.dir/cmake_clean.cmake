file(REMOVE_RECURSE
  "CMakeFiles/test_unroller_random.dir/test_unroller_random.cc.o"
  "CMakeFiles/test_unroller_random.dir/test_unroller_random.cc.o.d"
  "test_unroller_random"
  "test_unroller_random.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_unroller_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
