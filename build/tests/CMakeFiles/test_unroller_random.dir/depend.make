# Empty dependencies file for test_unroller_random.
# This may be replaced when dependencies are built.
