# Empty dependencies file for test_tinycore.
# This may be replaced when dependencies are built.
