file(REMOVE_RECURSE
  "CMakeFiles/test_tinycore.dir/test_tinycore.cc.o"
  "CMakeFiles/test_tinycore.dir/test_tinycore.cc.o.d"
  "test_tinycore"
  "test_tinycore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tinycore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
