# Empty dependencies file for test_metadata_io.
# This may be replaced when dependencies are built.
