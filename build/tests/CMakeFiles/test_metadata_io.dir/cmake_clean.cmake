file(REMOVE_RECURSE
  "CMakeFiles/test_metadata_io.dir/test_metadata_io.cc.o"
  "CMakeFiles/test_metadata_io.dir/test_metadata_io.cc.o.d"
  "test_metadata_io"
  "test_metadata_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_metadata_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
