# Empty dependencies file for test_sva_monitors.
# This may be replaced when dependencies are built.
