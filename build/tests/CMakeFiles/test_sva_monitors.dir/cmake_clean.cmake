file(REMOVE_RECURSE
  "CMakeFiles/test_sva_monitors.dir/test_sva_monitors.cc.o"
  "CMakeFiles/test_sva_monitors.dir/test_sva_monitors.cc.o.d"
  "test_sva_monitors"
  "test_sva_monitors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sva_monitors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
