# Empty dependencies file for test_verilog2.
# This may be replaced when dependencies are built.
