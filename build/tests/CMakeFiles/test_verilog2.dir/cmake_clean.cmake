file(REMOVE_RECURSE
  "CMakeFiles/test_verilog2.dir/test_verilog2.cc.o"
  "CMakeFiles/test_verilog2.dir/test_verilog2.cc.o.d"
  "test_verilog2"
  "test_verilog2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_verilog2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
