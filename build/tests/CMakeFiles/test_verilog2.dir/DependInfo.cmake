
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_verilog2.cc" "tests/CMakeFiles/test_verilog2.dir/test_verilog2.cc.o" "gcc" "tests/CMakeFiles/test_verilog2.dir/test_verilog2.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/verilog/CMakeFiles/r2u_verilog.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/r2u_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/uspec/CMakeFiles/r2u_uspec.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/r2u_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/r2u_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
