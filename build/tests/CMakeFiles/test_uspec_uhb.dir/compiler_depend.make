# Empty compiler generated dependencies file for test_uspec_uhb.
# This may be replaced when dependencies are built.
