file(REMOVE_RECURSE
  "CMakeFiles/test_uspec_uhb.dir/test_uspec_uhb.cc.o"
  "CMakeFiles/test_uspec_uhb.dir/test_uspec_uhb.cc.o.d"
  "test_uspec_uhb"
  "test_uspec_uhb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_uspec_uhb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
