file(REMOVE_RECURSE
  "CMakeFiles/test_induction_vcd.dir/test_induction_vcd.cc.o"
  "CMakeFiles/test_induction_vcd.dir/test_induction_vcd.cc.o.d"
  "test_induction_vcd"
  "test_induction_vcd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_induction_vcd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
