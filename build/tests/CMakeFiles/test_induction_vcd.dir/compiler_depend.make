# Empty compiler generated dependencies file for test_induction_vcd.
# This may be replaced when dependencies are built.
