file(REMOVE_RECURSE
  "CMakeFiles/test_vscale_rtl.dir/test_vscale_rtl.cc.o"
  "CMakeFiles/test_vscale_rtl.dir/test_vscale_rtl.cc.o.d"
  "test_vscale_rtl"
  "test_vscale_rtl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vscale_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
