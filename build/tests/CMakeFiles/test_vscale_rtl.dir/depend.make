# Empty dependencies file for test_vscale_rtl.
# This may be replaced when dependencies are built.
