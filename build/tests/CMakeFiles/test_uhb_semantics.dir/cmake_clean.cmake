file(REMOVE_RECURSE
  "CMakeFiles/test_uhb_semantics.dir/test_uhb_semantics.cc.o"
  "CMakeFiles/test_uhb_semantics.dir/test_uhb_semantics.cc.o.d"
  "test_uhb_semantics"
  "test_uhb_semantics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_uhb_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
