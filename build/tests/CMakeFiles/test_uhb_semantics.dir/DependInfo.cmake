
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_uhb_semantics.cc" "tests/CMakeFiles/test_uhb_semantics.dir/test_uhb_semantics.cc.o" "gcc" "tests/CMakeFiles/test_uhb_semantics.dir/test_uhb_semantics.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/uhb/CMakeFiles/r2u_uhb.dir/DependInfo.cmake"
  "/root/repo/build/src/uspec/CMakeFiles/r2u_uspec.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/r2u_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
