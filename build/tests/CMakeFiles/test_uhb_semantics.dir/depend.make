# Empty dependencies file for test_uhb_semantics.
# This may be replaced when dependencies are built.
