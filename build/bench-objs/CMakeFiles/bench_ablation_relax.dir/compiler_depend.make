# Empty compiler generated dependencies file for bench_ablation_relax.
# This may be replaced when dependencies are built.
