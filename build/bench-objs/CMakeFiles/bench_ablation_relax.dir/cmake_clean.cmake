file(REMOVE_RECURSE
  "../bench/bench_ablation_relax"
  "../bench/bench_ablation_relax.pdb"
  "CMakeFiles/bench_ablation_relax.dir/bench_ablation_relax.cc.o"
  "CMakeFiles/bench_ablation_relax.dir/bench_ablation_relax.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_relax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
