file(REMOVE_RECURSE
  "../bench/bench_micro_sat"
  "../bench/bench_micro_sat.pdb"
  "CMakeFiles/bench_micro_sat.dir/bench_micro_sat.cc.o"
  "CMakeFiles/bench_micro_sat.dir/bench_micro_sat.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
