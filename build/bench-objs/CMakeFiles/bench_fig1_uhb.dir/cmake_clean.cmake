file(REMOVE_RECURSE
  "../bench/bench_fig1_uhb"
  "../bench/bench_fig1_uhb.pdb"
  "CMakeFiles/bench_fig1_uhb.dir/bench_fig1_uhb.cc.o"
  "CMakeFiles/bench_fig1_uhb.dir/bench_fig1_uhb.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_uhb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
