# Empty dependencies file for bench_fig1_uhb.
# This may be replaced when dependencies are built.
