# Empty dependencies file for bench_fig6a_endtoend.
# This may be replaced when dependencies are built.
