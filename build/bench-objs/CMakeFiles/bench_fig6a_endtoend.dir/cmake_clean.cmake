file(REMOVE_RECURSE
  "../bench/bench_fig6a_endtoend"
  "../bench/bench_fig6a_endtoend.pdb"
  "CMakeFiles/bench_fig6a_endtoend.dir/bench_fig6a_endtoend.cc.o"
  "CMakeFiles/bench_fig6a_endtoend.dir/bench_fig6a_endtoend.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6a_endtoend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
