# Empty compiler generated dependencies file for bench_fig6b_litmus.
# This may be replaced when dependencies are built.
