file(REMOVE_RECURSE
  "../bench/bench_fig6b_litmus"
  "../bench/bench_fig6b_litmus.pdb"
  "CMakeFiles/bench_fig6b_litmus.dir/bench_fig6b_litmus.cc.o"
  "CMakeFiles/bench_fig6b_litmus.dir/bench_fig6b_litmus.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6b_litmus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
