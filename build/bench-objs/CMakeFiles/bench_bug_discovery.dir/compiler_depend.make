# Empty compiler generated dependencies file for bench_bug_discovery.
# This may be replaced when dependencies are built.
