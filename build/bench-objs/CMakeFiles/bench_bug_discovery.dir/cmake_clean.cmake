file(REMOVE_RECURSE
  "../bench/bench_bug_discovery"
  "../bench/bench_bug_discovery.pdb"
  "CMakeFiles/bench_bug_discovery.dir/bench_bug_discovery.cc.o"
  "CMakeFiles/bench_bug_discovery.dir/bench_bug_discovery.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bug_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
