file(REMOVE_RECURSE
  "../bench/bench_fig5_synthesis"
  "../bench/bench_fig5_synthesis.pdb"
  "CMakeFiles/bench_fig5_synthesis.dir/bench_fig5_synthesis.cc.o"
  "CMakeFiles/bench_fig5_synthesis.dir/bench_fig5_synthesis.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_synthesis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
