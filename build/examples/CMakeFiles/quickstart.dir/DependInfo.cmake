
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rtl2uspec/CMakeFiles/r2u_core.dir/DependInfo.cmake"
  "/root/repo/build/src/vscale/CMakeFiles/r2u_vscale.dir/DependInfo.cmake"
  "/root/repo/build/src/check/CMakeFiles/r2u_check.dir/DependInfo.cmake"
  "/root/repo/build/src/sva/CMakeFiles/r2u_sva.dir/DependInfo.cmake"
  "/root/repo/build/src/bmc/CMakeFiles/r2u_bmc.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/r2u_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/dfg/CMakeFiles/r2u_dfg.dir/DependInfo.cmake"
  "/root/repo/build/src/verilog/CMakeFiles/r2u_verilog.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/r2u_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/r2u_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/r2u_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/uhb/CMakeFiles/r2u_uhb.dir/DependInfo.cmake"
  "/root/repo/build/src/uspec/CMakeFiles/r2u_uspec.dir/DependInfo.cmake"
  "/root/repo/build/src/mcm/CMakeFiles/r2u_mcm.dir/DependInfo.cmake"
  "/root/repo/build/src/litmus/CMakeFiles/r2u_litmus.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/r2u_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
