# Empty compiler generated dependencies file for explore_rtl.
# This may be replaced when dependencies are built.
