file(REMOVE_RECURSE
  "CMakeFiles/explore_rtl.dir/explore_rtl.cpp.o"
  "CMakeFiles/explore_rtl.dir/explore_rtl.cpp.o.d"
  "explore_rtl"
  "explore_rtl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explore_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
