# Empty compiler generated dependencies file for litmus_campaign.
# This may be replaced when dependencies are built.
