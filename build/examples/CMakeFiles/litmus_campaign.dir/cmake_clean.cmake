file(REMOVE_RECURSE
  "CMakeFiles/litmus_campaign.dir/litmus_campaign.cpp.o"
  "CMakeFiles/litmus_campaign.dir/litmus_campaign.cpp.o.d"
  "litmus_campaign"
  "litmus_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/litmus_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
