# Empty dependencies file for litmus_gen.
# This may be replaced when dependencies are built.
