file(REMOVE_RECURSE
  "CMakeFiles/litmus_gen.dir/litmus_gen_cli.cc.o"
  "CMakeFiles/litmus_gen.dir/litmus_gen_cli.cc.o.d"
  "litmus_gen"
  "litmus_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/litmus_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
