# Empty compiler generated dependencies file for uspec_check.
# This may be replaced when dependencies are built.
