file(REMOVE_RECURSE
  "CMakeFiles/uspec_check.dir/uspec_check_cli.cc.o"
  "CMakeFiles/uspec_check.dir/uspec_check_cli.cc.o.d"
  "uspec_check"
  "uspec_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uspec_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
