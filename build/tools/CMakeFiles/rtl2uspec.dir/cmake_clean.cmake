file(REMOVE_RECURSE
  "CMakeFiles/rtl2uspec.dir/rtl2uspec_cli.cc.o"
  "CMakeFiles/rtl2uspec.dir/rtl2uspec_cli.cc.o.d"
  "rtl2uspec"
  "rtl2uspec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtl2uspec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
