# Empty compiler generated dependencies file for rtl2uspec.
# This may be replaced when dependencies are built.
