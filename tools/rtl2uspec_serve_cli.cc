/**
 * @file
 * The resilient synthesis service driver.
 *
 * Daemon mode — run a supervised rtl2uspec_serve daemon:
 *
 *   rtl2uspec_serve --socket /tmp/r2u.sock --state statedir \
 *                   [--workers N] [--max-queue N] [--chaos SPEC] ...
 *
 * Client mode — send one JSON request and print the JSON response:
 *
 *   rtl2uspec_serve --connect /tmp/r2u.sock \
 *                   --json '{"type":"synthesize","top":...}'
 *
 * SIGTERM/SIGINT begin a graceful drain: stop accepting, let in-flight
 * requests finish (or degrade once --drain-timeout passes), unlink the
 * socket, exit 0. kill -9 is also survivable: verdicts are fsync'd to
 * the --state dir as they land, so a restarted daemon answers
 * re-issued requests warm from its journals and verdict cache.
 */

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>

#include "common/logging.hh"
#include "common/strutil.hh"
#include "serve/client.hh"
#include "serve/server.hh"

namespace
{

using r2u::parseDouble;
using r2u::parseInt;

std::atomic<bool> g_stop{false};

void
onStopSignal(int)
{
    g_stop.store(true);
}

void
usage()
{
    std::fprintf(
        stderr,
        "usage: rtl2uspec_serve --socket PATH [daemon options]\n"
        "       rtl2uspec_serve --connect PATH --json REQUEST\n"
        "daemon options:\n"
        "  --socket PATH        Unix-domain socket to listen on\n"
        "  --state DIR          persistent state dir (verdict cache +\n"
        "                       per-design resume journals); omitting\n"
        "                       it runs fully in-memory\n"
        "  --workers N          heavy-request executor threads "
        "(default 2)\n"
        "  --default-jobs N     engine jobs per request unless the\n"
        "                       request says (default 1)\n"
        "  --max-queue N        admission watermark: heavy requests in\n"
        "                       service beyond which new ones are shed\n"
        "                       with an explicit \"overloaded\" reply\n"
        "                       (default 8)\n"
        "  --mem-limit MB       also shed when resident memory crosses\n"
        "                       MB (default: off)\n"
        "  --request-timeout S  per-request deadline; an overrunning\n"
        "                       request degrades to sound Unknowns\n"
        "                       (default 300, <= 0 disables)\n"
        "  --hang-timeout S     solver heartbeat age that marks a\n"
        "                       context hung and fires an async\n"
        "                       interrupt (default 30, <= 0 disables)\n"
        "  --drain-timeout S    grace for in-flight requests after\n"
        "                       SIGTERM/shutdown (default 30)\n"
        "  --retries N          server-side re-runs of a\n"
        "                       watchdog-interrupted request "
        "(default 1)\n"
        "  --chaos SPEC         arm fault injection, e.g.\n"
        "                       \"stall=1,stall-ms=5000,torn=2,"
        "drop=1\"\n"
        "  --quiet              suppress progress output\n"
        "client options:\n"
        "  --connect PATH       daemon socket to talk to\n"
        "  --json REQUEST      JSON request object ('-' reads stdin)\n"
        "  --attempts N         reconnect/backoff retry budget "
        "(default 5)\n"
        "exit codes: daemon: 0 clean drain, 1 error, 2 usage;\n"
        "            client: 0 ok reply, 1 error reply or transport "
        "failure, 2 usage\n");
}

int
runClient(const std::string &socket_path, const std::string &json_arg,
          unsigned attempts)
{
    using namespace r2u::serve;

    std::string text = json_arg;
    if (text == "-") {
        text.clear();
        char buf[4096];
        size_t n;
        while ((n = std::fread(buf, 1, sizeof(buf), stdin)) > 0)
            text.append(buf, n);
    }
    json::Value req;
    std::string err;
    if (!json::Value::parse(text, req, &err) || !req.isObj()) {
        std::fprintf(stderr, "error: bad --json request: %s\n",
                     err.c_str());
        return 2;
    }
    Client client;
    json::Value resp;
    if (!client.requestWithRetry(socket_path, req, resp, &err,
                                 attempts)) {
        std::fprintf(stderr, "error: %s\n", err.c_str());
        return 1;
    }
    std::printf("%s\n", resp.dump().c_str());
    return resp.getBool("ok") ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace r2u;

    serve::ServerOptions opts;
    serve::ChaosSpec chaos;
    std::string connect_path, json_arg;
    unsigned attempts = 5;
    bool chaos_armed = false;

    for (int i = 1; i < argc; i++) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (++i >= argc)
                fatal("missing argument after '%s'", arg.c_str());
            return argv[i];
        };
        try {
            if (arg == "--socket") {
                opts.socketPath = next();
            } else if (arg == "--state") {
                opts.stateDir = next();
            } else if (arg == "--workers") {
                int n = parseInt("--workers", next());
                if (n < 1)
                    fatal("--workers expects a positive count");
                opts.workers = static_cast<unsigned>(n);
            } else if (arg == "--default-jobs") {
                int n = parseInt("--default-jobs", next());
                if (n < 0)
                    fatal("--default-jobs expects a count >= 0");
                opts.defaultJobs = static_cast<unsigned>(n);
            } else if (arg == "--max-queue") {
                int n = parseInt("--max-queue", next());
                if (n < 1)
                    fatal("--max-queue expects a positive watermark");
                opts.maxQueue = static_cast<unsigned>(n);
            } else if (arg == "--mem-limit") {
                int n = parseInt("--mem-limit", next());
                if (n < 0)
                    fatal("--mem-limit expects MiB >= 0");
                opts.memLimitMb = static_cast<size_t>(n);
            } else if (arg == "--request-timeout") {
                opts.requestSeconds =
                    parseDouble("--request-timeout", next());
            } else if (arg == "--hang-timeout") {
                opts.hangSeconds =
                    parseDouble("--hang-timeout", next());
            } else if (arg == "--drain-timeout") {
                opts.drainSeconds =
                    parseDouble("--drain-timeout", next());
            } else if (arg == "--retries") {
                int n = parseInt("--retries", next());
                if (n < 0)
                    fatal("--retries expects a count >= 0");
                opts.requestRetries = static_cast<unsigned>(n);
            } else if (arg == "--chaos") {
                std::string err;
                if (!serve::ChaosSpec::parse(next(), chaos, &err))
                    fatal("%s", err.c_str());
                chaos_armed = true;
            } else if (arg == "--connect") {
                connect_path = next();
            } else if (arg == "--json") {
                json_arg = next();
            } else if (arg == "--attempts") {
                int n = parseInt("--attempts", next());
                if (n < 1)
                    fatal("--attempts expects a positive count");
                attempts = static_cast<unsigned>(n);
            } else if (arg == "--quiet") {
                setLogVerbosity(0);
            } else if (arg == "--help" || arg == "-h") {
                usage();
                return 0;
            } else {
                fatal("unknown option '%s'", arg.c_str());
            }
        } catch (const FatalError &e) {
            std::fprintf(stderr, "error: %s\n", e.what());
            usage();
            return 2;
        }
    }

    std::signal(SIGPIPE, SIG_IGN);

    if (!connect_path.empty()) {
        if (json_arg.empty()) {
            std::fprintf(stderr,
                         "error: --connect requires --json\n");
            usage();
            return 2;
        }
        return runClient(connect_path, json_arg, attempts);
    }
    if (opts.socketPath.empty()) {
        usage();
        return 2;
    }

    if (chaos_armed)
        opts.chaos = &chaos;
    opts.externalStop = &g_stop;

    struct sigaction sa{};
    sa.sa_handler = onStopSignal;
    sigaction(SIGTERM, &sa, nullptr);
    sigaction(SIGINT, &sa, nullptr);

    try {
        serve::Server server(std::move(opts));
        server.start();
        server.serve();
        return 0;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
