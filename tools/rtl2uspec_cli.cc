/**
 * @file
 * The rtl2uspec command-line driver: Verilog in, µspec model out.
 *
 *   rtl2uspec --top multi_vscale --meta designs/vscale.meta \
 *             [-P XLEN=8 ...] [--out vscale.uarch] [--report] \
 *             [--dfg-dir DIR] design1.v design2.v ...
 *
 * Mirrors the paper artifact's make init / make intra_hbi /
 * make inter_hbi / make uspec pipeline in a single invocation.
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <thread>

#include "bmc/engine.hh"
#include "common/logging.hh"
#include "common/strutil.hh"
#include "rtl2uspec/metadata_io.hh"
#include "rtl2uspec/synthesis.hh"
#include "verilog/elaborate.hh"

namespace
{

// Numeric option parsing (r2u::parseInt64 & friends, shared with the
// benches): the whole token must parse; malformed/partial/overflowing
// values become a fatal() (usage error, exit 2).
using r2u::parseDouble;
using r2u::parseInt;
using r2u::parseInt64;

// SIGINT/SIGTERM land here; a watcher thread turns the flag into an
// async Engine::interrupt(), so the run winds down with sound Unknown
// verdicts, flushes its journal (appends are fsync'd as they land),
// writes what it has, and exits 5 instead of dying mid-solve.
std::atomic<bool> g_stop{false};

void
onStopSignal(int)
{
    g_stop.store(true);
}

void
usage()
{
    std::fprintf(
        stderr,
        "usage: rtl2uspec --top MODULE --meta FILE [options] files.v...\n"
        "  -P NAME=VALUE   top-level parameter override (repeatable)\n"
        "  --out FILE      write the synthesized model (default:\n"
        "                  <top>.uarch)\n"
        "  --table         print the Fig. 5-style synthesis report\n"
        "                  (this was --report before the JSON report\n"
        "                  existed)\n"
        "  --report FILE   write the structured JSON run report\n"
        "                  (per-SVA verdict, verdict source, retries,\n"
        "                  CNF size, solve time)\n"
        "  --svas          list every evaluated SVA and its verdict\n"
        "  --dfg-dir DIR   write full-design and per-instruction DFG\n"
        "                  DOT files into DIR\n"
        "  --bound N       override the BMC bound from the metadata\n"
        "  --jobs N        SVA-evaluation workers (default: hardware\n"
        "                  concurrency; 1 = classic sequential path)\n"
        "  --full-unroll   disable cone-of-influence slicing: bit-blast\n"
        "                  the whole design per unroll (same verdicts,\n"
        "                  bigger CNFs; for differential testing)\n"
        "  --conflict-budget N  per-SVA solver conflict budget\n"
        "                  (overrides the metadata; -1 = unlimited)\n"
        "  --query-timeout S    per-SVA wall-clock deadline, seconds\n"
        "  --total-timeout S    whole-run wall-clock deadline, seconds\n"
        "  --retry-escalation K re-solve budget/deadline Unknowns with\n"
        "                  budgets scaled by K per retry (K > 1\n"
        "                  enables; cheap first pass, escalate)\n"
        "  --max-retries N cap on escalated retries per SVA "
        "(default 3)\n"
        "  --engine E      proof engine per SVA query: bmc | kind |\n"
        "                  pdr | race (default race: PDR and\n"
        "                  k-induction race the incremental BMC solve;\n"
        "                  first definitive verdict wins and\n"
        "                  interrupts the rest. Verdicts and the\n"
        "                  emitted model are identical to --engine\n"
        "                  bmc; the challengers can additionally close\n"
        "                  proofs as unbounded)\n"
        "  --portfolio[=N] race each SVA query across N diversified\n"
        "                  solver configurations (default 3); first\n"
        "                  definitive verdict wins and interrupts the\n"
        "                  rest. Verdicts and the emitted model are\n"
        "                  identical to the single-config path\n"
        "  --share-clauses / --no-share-clauses\n"
        "                  exchange low-LBD learnt clauses between\n"
        "                  portfolio racers at restart boundaries\n"
        "                  (default on when --portfolio)\n"
        "  --no-inprocess  disable CNF pre/inprocessing (bounded\n"
        "                  variable elimination, subsumption,\n"
        "                  self-subsuming resolution) on query CNFs\n"
        "  --validate MODE verdict validation: off | replay | full |\n"
        "                  sample=N (default sample=8: replay every\n"
        "                  counterexample through the reference\n"
        "                  simulator + a fresh pinned monitor solve,\n"
        "                  re-check every Nth proof in a fresh\n"
        "                  non-incremental context; mismatches are\n"
        "                  quarantined and degrade to Unknown)\n"
        "  --journal FILE  crash-safe run journal: validated verdicts\n"
        "                  are appended (fsync'd, checksummed) as they\n"
        "                  land\n"
        "  --resume        resume from --journal FILE: journaled\n"
        "                  verdicts are reused instead of re-solved\n"
        "                  (requires matching design/bound/unroll\n"
        "                  configuration; any --jobs is fine)\n"
        "  --cache DIR     cross-run verdict cache: each SVA query is\n"
        "                  keyed by a content hash of its COI slice,\n"
        "                  property, and bound; re-synthesis re-solves\n"
        "                  only queries whose content changed and\n"
        "                  replays the rest (model is bit-identical;\n"
        "                  --jobs and budgets do not affect the key)\n"
        "  --cex-vcd DIR   dump each refutation's replayed trace as a\n"
        "                  per-query VCD waveform under DIR\n"
        "  --quiet         suppress progress output\n"
        "exit codes: 0 ok, 1/2 errors, 3 design bugs found,\n"
        "            4 degraded synthesis (undetermined SVAs, no "
        "bugs),\n"
        "            5 interrupted (SIGINT/SIGTERM: journal flushed,\n"
        "            partial model still written)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace r2u;

    std::string top, meta_path, out_path, dfg_dir, report_path;
    std::vector<std::string> files;
    std::unordered_map<std::string, int64_t> params;
    bool table = false, list_svas = false;
    int bound_override = -1;
    rtl2uspec::SynthesisOptions synth_opts;

    for (int i = 1; i < argc; i++) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (++i >= argc)
                fatal("missing argument after '%s'", arg.c_str());
            return argv[i];
        };
        try {
            if (arg == "--top") {
                top = next();
            } else if (arg == "--meta") {
                meta_path = next();
            } else if (arg == "--out") {
                out_path = next();
            } else if (arg == "--dfg-dir") {
                dfg_dir = next();
            } else if (arg == "--bound") {
                bound_override = parseInt("--bound", next());
            } else if (arg == "--jobs") {
                int jobs = parseInt("--jobs", next());
                if (jobs < 1)
                    fatal("--jobs expects a positive worker count");
                synth_opts.jobs = static_cast<unsigned>(jobs);
            } else if (arg == "--full-unroll") {
                synth_opts.fullUnroll = true;
            } else if (arg == "--conflict-budget") {
                synth_opts.conflictBudget =
                    parseInt64("--conflict-budget", next());
            } else if (arg == "--query-timeout") {
                synth_opts.queryTimeoutSeconds =
                    parseDouble("--query-timeout", next());
            } else if (arg == "--total-timeout") {
                synth_opts.totalTimeoutSeconds =
                    parseDouble("--total-timeout", next());
            } else if (arg == "--retry-escalation") {
                synth_opts.retryEscalation =
                    parseDouble("--retry-escalation", next());
            } else if (arg == "--max-retries") {
                int n = parseInt("--max-retries", next());
                if (n < 0)
                    fatal("--max-retries expects a count >= 0");
                synth_opts.maxRetries = static_cast<unsigned>(n);
            } else if (arg == "--engine") {
                std::string e = next();
                if (e == "bmc") {
                    synth_opts.engine = bmc::EngineChoice::Bmc;
                } else if (e == "kind") {
                    synth_opts.engine = bmc::EngineChoice::KInduction;
                } else if (e == "pdr") {
                    synth_opts.engine = bmc::EngineChoice::Pdr;
                } else if (e == "race") {
                    synth_opts.engine = bmc::EngineChoice::Race;
                } else {
                    fatal("--engine expects bmc|kind|pdr|race, "
                          "got '%s'", e.c_str());
                }
            } else if (arg == "--portfolio" ||
                       arg.rfind("--portfolio=", 0) == 0) {
                synth_opts.portfolio = true;
                if (arg.size() > 12 && arg[11] == '=') {
                    int n = parseInt("--portfolio=N", arg.substr(12));
                    if (n < 2)
                        fatal("--portfolio=N expects N >= 2 racers");
                    synth_opts.portfolioRacers =
                        static_cast<unsigned>(n);
                }
            } else if (arg == "--share-clauses") {
                synth_opts.shareClauses = true;
            } else if (arg == "--no-share-clauses") {
                synth_opts.shareClauses = false;
            } else if (arg == "--no-inprocess") {
                synth_opts.inprocess = false;
            } else if (arg == "--validate") {
                std::string mode = next();
                if (mode == "off") {
                    synth_opts.validate = bmc::ValidateMode::Off;
                } else if (mode == "replay") {
                    synth_opts.validate = bmc::ValidateMode::Replay;
                } else if (mode == "full") {
                    synth_opts.validate = bmc::ValidateMode::Full;
                } else if (mode.rfind("sample=", 0) == 0) {
                    int n = parseInt("--validate sample=N",
                                     mode.substr(7));
                    if (n < 1)
                        fatal("--validate sample=N expects N >= 1");
                    synth_opts.validate = bmc::ValidateMode::Sample;
                    synth_opts.validateSampleN =
                        static_cast<unsigned>(n);
                } else {
                    fatal("--validate expects off|replay|full|"
                          "sample=N, got '%s'", mode.c_str());
                }
            } else if (arg == "--journal") {
                synth_opts.journalPath = next();
            } else if (arg == "--resume") {
                synth_opts.resumeJournal = true;
            } else if (arg == "--cache") {
                synth_opts.cacheDir = next();
            } else if (arg == "--cex-vcd") {
                synth_opts.cexVcdDir = next();
            } else if (arg == "--table") {
                table = true;
            } else if (arg == "--report") {
                report_path = next();
            } else if (arg == "--svas") {
                list_svas = true;
            } else if (arg == "--quiet") {
                setLogVerbosity(0);
            } else if (arg == "-P") {
                std::string kv = next();
                size_t eq = kv.find('=');
                if (eq == std::string::npos)
                    fatal("-P expects NAME=VALUE");
                params[kv.substr(0, eq)] =
                    parseInt64("-P", kv.substr(eq + 1), 0);
            } else if (arg == "--help" || arg == "-h") {
                usage();
                return 0;
            } else if (!arg.empty() && arg[0] == '-') {
                fatal("unknown option '%s'", arg.c_str());
            } else {
                files.push_back(arg);
            }
        } catch (const FatalError &e) {
            std::fprintf(stderr, "error: %s\n", e.what());
            usage();
            return 2;
        }
    }
    if (top.empty() || meta_path.empty() || files.empty()) {
        usage();
        return 2;
    }
    if (synth_opts.resumeJournal && synth_opts.journalPath.empty()) {
        std::fprintf(stderr, "error: --resume requires --journal\n");
        return 2;
    }

    struct sigaction sa{};
    sa.sa_handler = onStopSignal;
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);

    try {
        rtl2uspec::DesignMetadata md =
            rtl2uspec::loadMetadata(meta_path);
        if (bound_override > 0)
            md.bound = static_cast<unsigned>(bound_override);

        vlog::ElabOptions opts;
        opts.top = top;
        opts.params = params;
        vlog::ElabResult design = vlog::elaborateFiles(files, opts);
        auto st = design.netlist->stats();
        inform("elaborated '%s': %zu cells, %zu registers "
               "(%zu flop bits), %zu memories",
               top.c_str(), st.cells, st.registers, st.flopBits,
               st.memories);

        std::mutex engine_mu;
        bmc::Engine *live_engine = nullptr;
        synth_opts.engineHook = [&](bmc::Engine *engine) {
            std::lock_guard<std::mutex> lock(engine_mu);
            live_engine = engine;
        };
        std::atomic<bool> watcher_done{false};
        std::thread watcher([&] {
            while (!watcher_done.load(std::memory_order_relaxed)) {
                if (g_stop.load(std::memory_order_relaxed)) {
                    std::lock_guard<std::mutex> lock(engine_mu);
                    if (live_engine)
                        live_engine->interrupt();
                    return;
                }
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(50));
            }
        });

        rtl2uspec::SynthesisResult synth;
        try {
            synth = rtl2uspec::synthesize(design, md, synth_opts);
        } catch (...) {
            watcher_done.store(true);
            watcher.join();
            throw;
        }
        watcher_done.store(true);
        watcher.join();

        if (!synth.bugs.empty()) {
            for (const auto &bug : synth.bugs)
                std::fprintf(stderr, "%s\n", bug.c_str());
            std::fprintf(stderr,
                         "synthesis found design bugs; the model was "
                         "still emitted but fix the design first\n");
        }
        if (table)
            std::printf("%s\n", synth.report().c_str());
        if (!report_path.empty()) {
            writeFile(report_path, synth.jsonReport());
            inform("run report written to %s", report_path.c_str());
        }
        if (list_svas) {
            for (const auto &sva : synth.svas)
                std::printf("%-36s %-9s %-12s %-18s %-10s %8.3fs "
                            "%8zu vars %8zu cls %6zu coi\n",
                            sva.name.c_str(), sva.category.c_str(),
                            bmc::verdictName(sva.verdict),
                            bmc::verdictSourceName(sva.source),
                            sva.fromJournal  ? "journal"
                            : sva.fromCache  ? "cache"
                            : sva.validated  ? "validated"
                                             : "-",
                            sva.seconds, sva.cnfVars, sva.cnfClauses,
                            sva.coiCells);
        }
        if (!dfg_dir.empty()) {
            writeFile(dfg_dir + "/full_design_dfg.dot",
                      synth.fullDfgDot);
            for (const auto &[instr, dot] : synth.instrDfgDots)
                writeFile(dfg_dir + "/dfg_" + instr + ".dot", dot);
        }
        std::string out =
            out_path.empty() ? top + ".uarch" : out_path;
        writeFile(out, synth.model.print());
        inform("uspec model written to %s (%zu rows, %zu axioms, "
               "%.1f s)",
               out.c_str(), synth.model.stageNames.size(),
               synth.model.axioms.size(), synth.totalSeconds);
        if (synth.unknownSvas > 0) {
            std::fprintf(stderr,
                         "warning: %zu SVA(s) undetermined; the "
                         "emitted model is conservatively degraded "
                         "(see %% notes in %s)\n",
                         static_cast<size_t>(synth.unknownSvas),
                         out.c_str());
        }
        if (g_stop.load()) {
            std::fprintf(stderr,
                         "interrupted: journaled verdicts are durable "
                         "and the partial model above is sound "
                         "(conservatively weak)\n");
            return 5;
        }
        if (!synth.bugs.empty())
            return 3;
        return synth.unknownSvas > 0 ? 4 : 0;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
