/**
 * @file
 * diy-style litmus test generation on the command line.
 *
 *   litmus_gen --suite DIR            # write the 56-test suite
 *   litmus_gen --cycle "Rfe PodRR Fre PodWW" [--name mp2]
 *   litmus_gen --classify FILE.test   # SC-allowed outcome listing
 */

#include <cstdio>

#include "common/logging.hh"
#include "common/strutil.hh"
#include "litmus/litmus.hh"
#include "mcm/sc_ref.hh"

int
main(int argc, char **argv)
{
    using namespace r2u;

    std::string suite_dir, cycle, name = "generated", classify;
    for (int i = 1; i < argc; i++) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (++i >= argc)
                fatal("missing argument after '%s'", arg.c_str());
            return argv[i];
        };
        try {
            if (arg == "--suite")
                suite_dir = next();
            else if (arg == "--cycle")
                cycle = next();
            else if (arg == "--name")
                name = next();
            else if (arg == "--classify")
                classify = next();
            else {
                std::fprintf(stderr,
                             "usage: litmus_gen (--suite DIR | "
                             "--cycle SPEC [--name N] | "
                             "--classify FILE)\n");
                return 2;
            }
        } catch (const FatalError &e) {
            std::fprintf(stderr, "error: %s\n", e.what());
            return 2;
        }
    }

    try {
        if (!suite_dir.empty()) {
            auto suite = litmus::standardSuite();
            for (const auto &t : suite)
                writeFile(suite_dir + "/" + t.name + ".test",
                          t.print());
            std::printf("wrote %zu tests to %s\n", suite.size(),
                        suite_dir.c_str());
        }
        if (!cycle.empty()) {
            litmus::Test t = litmus::generateFromCycle(name, cycle);
            std::printf("%s", t.print().c_str());
            bool forbidden = !mcm::scAllows(t, t.interesting);
            std::printf("# interesting outcome is %s under SC\n",
                        forbidden ? "FORBIDDEN" : "allowed");
        }
        if (!classify.empty()) {
            litmus::Test t = litmus::Test::parse(readFile(classify));
            auto outcomes = mcm::enumerateSC(t);
            std::printf("%zu SC-allowed outcomes of %s:\n",
                        outcomes.size(), t.name.c_str());
            for (const auto &o : outcomes)
                std::printf("  %s%s\n", o.toString().c_str(),
                            o.satisfies(t.interesting)
                                ? "   <- interesting"
                                : "");
        }
        return 0;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
