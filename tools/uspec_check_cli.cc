/**
 * @file
 * COATCheck-style command line: verify litmus tests against a µspec
 * model (synthesized or hand-written) with the parallel, pruned
 * campaign engine.
 *
 *   uspec_check --model vscale.uarch --suite --jobs 4 --report out.json
 *   uspec_check --model vscale.uarch --test mp.test --dot mp.dot
 *   uspec_check --model vscale.uarch --cycle "Rfe PodRR Fre PodWW"
 */

#include <atomic>
#include <csignal>
#include <cstdio>

#include "check/campaign.hh"
#include "check/check.hh"
#include "common/logging.hh"
#include "common/strutil.hh"
#include "litmus/litmus.hh"
#include "uspec/uspec.hh"

namespace
{

void
usage()
{
    std::fprintf(
        stderr,
        "usage: uspec_check --model FILE.uarch (--suite | --test "
        "FILE.test | --cycle \"SPEC\") [options]\n"
        "  --jobs N        campaign workers (default: hardware\n"
        "                  concurrency; 1 = sequential; verdicts are\n"
        "                  identical at any job count)\n"
        "  --report FILE   write the structured JSON campaign report\n"
        "                  (per-test verdicts, outcome sets,\n"
        "                  explored/pruned counts)\n"
        "  --exhaustive    disable outcome-level pruning (solve every\n"
        "                  candidate execution; same verdicts)\n"
        "  --fail-fast     stop a test at its first observable non-SC\n"
        "                  outcome\n"
        "  --dot FILE      write cyclic-witness DOTs; with several\n"
        "                  tests each gets FILE's stem + _<test>\n"
        "  --dot-test NAME restrict --dot (and its pruning opt-out) to\n"
        "                  test NAME (repeatable)\n"
        "exit codes: 0 all tests ok, 1 failures/errors, 2 usage,\n"
        "            3 interrupted (SIGINT/SIGTERM: partial verdicts\n"
        "            were still reported soundly)\n");
}

// Whole-token integer parse (r2u::parseInt, shared with the benches);
// malformed/overflowing input is a fatal() usage error (exit 2),
// never an uncaught exception.
using r2u::parseInt;

// SIGINT/SIGTERM flip this flag; the campaign engine checks it before
// every candidate solve (CampaignOptions::stop) and comes back with a
// sound partial answer instead of the default instant kill.
std::atomic<bool> g_stop{false};

void
onStopSignal(int)
{
    g_stop.store(true);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace r2u;

    std::string model_path, test_path, cycle, dot_path, report_path;
    bool suite = false;
    check::CampaignOptions opts;
    opts.jobs = 0; // hardware concurrency

    for (int i = 1; i < argc; i++) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (++i >= argc)
                fatal("missing argument after '%s'", arg.c_str());
            return argv[i];
        };
        try {
            if (arg == "--model")
                model_path = next();
            else if (arg == "--test")
                test_path = next();
            else if (arg == "--cycle")
                cycle = next();
            else if (arg == "--dot")
                dot_path = next();
            else if (arg == "--dot-test")
                opts.dotTests.push_back(next());
            else if (arg == "--report")
                report_path = next();
            else if (arg == "--jobs") {
                int jobs = parseInt("--jobs", next());
                if (jobs < 0)
                    fatal("--jobs expects a count >= 0");
                opts.jobs = static_cast<unsigned>(jobs);
            } else if (arg == "--exhaustive")
                opts.prune = false;
            else if (arg == "--fail-fast")
                opts.failFast = true;
            else if (arg == "--suite")
                suite = true;
            else {
                usage();
                return 2;
            }
        } catch (const FatalError &e) {
            std::fprintf(stderr, "error: %s\n", e.what());
            usage();
            return 2;
        }
    }
    if (model_path.empty() || (!suite && test_path.empty() &&
                               cycle.empty())) {
        usage();
        return 2;
    }

    struct sigaction sa{};
    sa.sa_handler = onStopSignal;
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
    opts.stop = &g_stop;

    try {
        uspec::Model model =
            uspec::Model::parse(readFile(model_path));
        std::vector<litmus::Test> tests;
        if (suite) {
            tests = litmus::standardSuite();
        } else if (!test_path.empty()) {
            tests.push_back(litmus::Test::parse(readFile(test_path)));
        } else {
            tests.push_back(
                litmus::generateFromCycle("cycle_test", cycle));
            std::printf("generated test:\n%s\n",
                        tests[0].print().c_str());
        }

        opts.collectDot = !dot_path.empty();
        check::CampaignResult campaign =
            check::runCampaign(model, tests, opts);

        for (const auto &res : campaign.tests) {
            std::printf("%s.test,%f\n", res.name.c_str(), res.ms);
            // A test fails when a non-SC outcome is observable, or
            // when the interesting outcome is observable despite
            // being SC-forbidden. An SC-allowed interesting outcome
            // showing up is correct behavior.
            if (!res.ok()) {
                std::printf("  FAIL: %s\n", res.summary().c_str());
                for (const auto &v : res.violations)
                    std::printf("  observable non-SC outcome: %s\n",
                                v.c_str());
            }
            if (!res.interestingDot.empty()) {
                std::string path =
                    tests.size() == 1
                        ? dot_path
                        : check::dotPathFor(dot_path, res.name);
                writeFile(path, res.interestingDot);
            }
        }
        if (!report_path.empty())
            writeFile(report_path, campaign.jsonReport());
        std::printf("--- %s ---\n", campaign.summary().c_str());
        if (campaign.interrupted) {
            std::fprintf(stderr,
                         "interrupted: verdicts reflect only the "
                         "explored prefix (report written, nothing "
                         "lost)\n");
            return 3;
        }
        std::printf("%s\n",
                    campaign.failures == 0
                        ? "======= ALL TESTS PASS ======="
                        : "======= FAILURES DETECTED =======");
        return campaign.failures == 0 ? 0 : 1;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
