/**
 * @file
 * COATCheck-style command line: verify litmus tests against a µspec
 * model (synthesized or hand-written).
 *
 *   uspec_check --model vscale.uarch --suite
 *   uspec_check --model vscale.uarch --test mp.test --dot mp.dot
 *   uspec_check --model vscale.uarch --cycle "Rfe PodRR Fre PodWW"
 */

#include <cstdio>

#include "check/check.hh"
#include "common/logging.hh"
#include "common/strutil.hh"
#include "litmus/litmus.hh"
#include "uspec/uspec.hh"

namespace
{

void
usage()
{
    std::fprintf(
        stderr,
        "usage: uspec_check --model FILE.uarch (--suite | --test "
        "FILE.test | --cycle \"SPEC\") [--dot FILE]\n");
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace r2u;

    std::string model_path, test_path, cycle, dot_path;
    bool suite = false;

    for (int i = 1; i < argc; i++) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (++i >= argc)
                fatal("missing argument after '%s'", arg.c_str());
            return argv[i];
        };
        try {
            if (arg == "--model")
                model_path = next();
            else if (arg == "--test")
                test_path = next();
            else if (arg == "--cycle")
                cycle = next();
            else if (arg == "--dot")
                dot_path = next();
            else if (arg == "--suite")
                suite = true;
            else {
                usage();
                return 2;
            }
        } catch (const FatalError &e) {
            std::fprintf(stderr, "error: %s\n", e.what());
            return 2;
        }
    }
    if (model_path.empty() || (!suite && test_path.empty() &&
                               cycle.empty())) {
        usage();
        return 2;
    }

    try {
        uspec::Model model =
            uspec::Model::parse(readFile(model_path));
        std::vector<litmus::Test> tests;
        if (suite) {
            tests = litmus::standardSuite();
        } else if (!test_path.empty()) {
            tests.push_back(litmus::Test::parse(readFile(test_path)));
        } else {
            tests.push_back(
                litmus::generateFromCycle("cycle_test", cycle));
            std::printf("generated test:\n%s\n",
                        tests[0].print().c_str());
        }

        check::Options opts;
        opts.collectDot = !dot_path.empty();
        int failures = 0;
        double total_ms = 0;
        for (const auto &t : tests) {
            auto res = check::checkTest(model, t, opts);
            total_ms += res.ms;
            std::printf("%s.test,%f\n", t.name.c_str(), res.ms);
            bool ok = res.pass && !res.interestingObservable;
            if (!ok) {
                failures++;
                std::printf("  FAIL: %s\n", res.summary().c_str());
                for (const auto &v : res.violations)
                    std::printf("  observable non-SC outcome: %s\n",
                                v.c_str());
            }
            if (!dot_path.empty() && !res.interestingDot.empty())
                writeFile(dot_path, res.interestingDot);
        }
        std::printf("--- %f ms ---\n", total_ms);
        std::printf("%s\n",
                    failures == 0
                        ? "======= ALL TESTS PASSES ======="
                        : "======= FAILURES DETECTED =======");
        return failures == 0 ? 0 : 1;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
