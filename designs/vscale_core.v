// vscale_core: a three-stage (IF / DX / WB) in-order RV32I-subset core,
// modeled on the RISC-V V-scale microarchitecture used by the paper's
// multi-V-scale case study.
//
// Stages:
//   IF : PC_IF indexes the (core-private) instruction memory.
//   DX : inst_DX / PC_DX hold the fetched instruction; decode, register
//        read (with WB bypass), ALU, branch resolution, and data-memory
//        request issue all happen here. A memory op stalls in DX until
//        the shared-memory arbiter grants its request.
//   WB : one-cycle-later writeback; loads capture the memory response,
//        stores have already been handed to the pipelined memory.
//
// The BUGGY parameter re-introduces the bug rtl2uspec found in the
// original V-scale (paper §6.1): when BUGGY != 0, any STORE-shaped
// encoding issues a memory write regardless of funct3 validity, so an
// architecturally invalid instruction (e.g. funct3 = 3'b111) can update
// memory instead of raising an exception.
module vscale_core #(
    parameter XLEN = 32,
    parameter PC_BITS = 7,
    parameter NREGS = 32,
    parameter REG_BITS = 5,
    parameter BUGGY = 0
) (
    input clk,
    input reset,
    // Instruction memory interface (word index).
    output wire [PC_BITS-3:0] imem_addr,
    input [31:0] imem_rdata,
    // Data memory request interface (through the arbiter).
    output wire dmem_en,
    output wire dmem_wen,
    output wire [XLEN-1:0] dmem_addr,
    output wire [XLEN-1:0] dmem_wdata,
    input dmem_grant,
    input dmem_resp_valid,
    input [XLEN-1:0] dmem_resp_data
);

    // ------------------------------------------------------------------
    // Pipeline state.
    // ------------------------------------------------------------------
    reg [PC_BITS-1:0] PC_IF;
    reg [31:0] inst_DX;
    reg [PC_BITS-1:0] PC_DX;
    reg inst_valid_DX;

    reg [PC_BITS-1:0] PC_WB;
    reg wb_valid_WB;
    reg reg_write_WB;
    reg [REG_BITS-1:0] reg_dest_WB;
    reg lw_in_WB;
    reg sw_in_WB;
    reg [XLEN-1:0] alu_out_WB;
    reg [XLEN-1:0] wdata_WB;

    reg [XLEN-1:0] regfile [0:NREGS-1];

    // ------------------------------------------------------------------
    // Decode (DX).
    // ------------------------------------------------------------------
    wire [6:0] opcode = inst_DX[6:0];
    wire [2:0] funct3 = inst_DX[14:12];
    wire [6:0] funct7 = inst_DX[31:25];
    wire [4:0] rd = inst_DX[11:7];
    wire [4:0] rs1 = inst_DX[19:15];
    wire [4:0] rs2 = inst_DX[24:20];

    wire [31:0] imm_i32 = {{20{inst_DX[31]}}, inst_DX[31:20]};
    wire [31:0] imm_s32 = {{20{inst_DX[31]}}, inst_DX[31:25],
                           inst_DX[11:7]};
    wire [31:0] imm_b32 = {{19{inst_DX[31]}}, inst_DX[31], inst_DX[7],
                           inst_DX[30:25], inst_DX[11:8], 1'b0};
    wire [31:0] imm_j32 = {{11{inst_DX[31]}}, inst_DX[31],
                           inst_DX[19:12], inst_DX[20], inst_DX[30:21],
                           1'b0};
    wire [31:0] imm_u32 = {inst_DX[31:12], 12'b000000000000};

    wire is_load_shape = opcode == 7'b0000011;
    wire is_store_shape = opcode == 7'b0100011;
    wire is_lw = is_load_shape && (funct3 == 3'b010);
    wire is_sw = is_store_shape && (funct3 == 3'b010);
    wire is_lui = opcode == 7'b0110111;
    wire is_addi = (opcode == 7'b0010011) && (funct3 == 3'b000);
    wire is_alu_reg = (opcode == 7'b0110011) &&
        (((funct3 == 3'b000) && ((funct7 == 7'b0000000) ||
                                 (funct7 == 7'b0100000))) ||
         (((funct3 == 3'b111) || (funct3 == 3'b110) ||
           (funct3 == 3'b100)) && (funct7 == 7'b0000000)));
    wire is_jal = opcode == 7'b1101111;
    wire is_beq = (opcode == 7'b1100011) && (funct3 == 3'b000);
    wire is_bne = (opcode == 7'b1100011) && (funct3 == 3'b001);
    wire is_fence = opcode == 7'b0001111;

    wire is_valid_inst = is_lui || is_addi || is_alu_reg || is_jal ||
        is_beq || is_bne || is_fence || is_lw || is_sw;
    wire writes_reg = is_lui || is_addi || is_alu_reg || is_jal || is_lw;

    // ------------------------------------------------------------------
    // Register read with WB bypass (DX).
    // ------------------------------------------------------------------
    wire [REG_BITS-1:0] rs1_idx = rs1[REG_BITS-1:0];
    wire [REG_BITS-1:0] rs2_idx = rs2[REG_BITS-1:0];
    wire [REG_BITS-1:0] rd_idx = rd[REG_BITS-1:0];

    wire [XLEN-1:0] wb_value = lw_in_WB ? dmem_resp_data : alu_out_WB;
    wire wb_bypass_ok = wb_valid_WB && reg_write_WB;

    wire [XLEN-1:0] rs1_data =
        (wb_bypass_ok && (reg_dest_WB == rs1_idx) && (rs1 != 5'd0))
            ? wb_value : regfile[rs1_idx];
    wire [XLEN-1:0] rs2_data =
        (wb_bypass_ok && (reg_dest_WB == rs2_idx) && (rs2 != 5'd0))
            ? wb_value : regfile[rs2_idx];

    // ------------------------------------------------------------------
    // ALU (DX).
    // ------------------------------------------------------------------
    wire [XLEN-1:0] imm_i = imm_i32[XLEN-1:0];
    wire [XLEN-1:0] imm_s = imm_s32[XLEN-1:0];
    wire [XLEN-1:0] imm_u = imm_u32[XLEN-1:0];

    reg [XLEN-1:0] alu_out;
    always @(*) begin
        alu_out = rs1_data + imm_i;
        if (is_lui)
            alu_out = imm_u;
        if (is_sw)
            alu_out = rs1_data + imm_s;
        if (is_alu_reg) begin
            case (funct3)
                3'b000:
                    alu_out = (funct7 == 7'b0100000)
                        ? (rs1_data - rs2_data)
                        : (rs1_data + rs2_data);
                3'b111: alu_out = rs1_data & rs2_data;
                3'b110: alu_out = rs1_data | rs2_data;
                default: alu_out = rs1_data ^ rs2_data;
            endcase
        end
        if (is_jal)
            alu_out = PC_DX + {{PC_BITS{1'b0}}, 3'b100};
    end

    // ------------------------------------------------------------------
    // Control flow (DX).
    // ------------------------------------------------------------------
    wire branch_taken = inst_valid_DX &&
        ((is_beq && (rs1_data == rs2_data)) ||
         (is_bne && (rs1_data != rs2_data)));
    wire jump_taken = inst_valid_DX && is_jal;
    wire redirect = branch_taken || jump_taken;
    wire [PC_BITS-1:0] branch_target = PC_DX + imm_b32[PC_BITS-1:0];
    wire [PC_BITS-1:0] jump_target = PC_DX + imm_j32[PC_BITS-1:0];
    wire [PC_BITS-1:0] redirect_target =
        jump_taken ? jump_target : branch_target;

    // ------------------------------------------------------------------
    // Data memory request (DX).
    // ------------------------------------------------------------------
    // BUGGY: any store-shaped encoding writes memory (paper §6.1).
    wire sw_req = (BUGGY != 0) ? is_store_shape : is_sw;
    wire mem_req = (sw_req || is_lw) && inst_valid_DX;
    assign dmem_en = mem_req;
    assign dmem_wen = sw_req && inst_valid_DX;
    assign dmem_addr = is_sw ? (rs1_data + imm_s) : (rs1_data + imm_i);
    assign dmem_wdata = rs2_data;

    wire stall = mem_req && !dmem_grant;

    // ------------------------------------------------------------------
    // Fetch.
    // ------------------------------------------------------------------
    assign imem_addr = PC_IF[PC_BITS-1:2];

    always @(posedge clk) begin
        if (reset) begin
            PC_IF <= {PC_BITS{1'b0}};
            inst_DX <= 32'h00000013; // NOP
            PC_DX <= {PC_BITS{1'b0}};
            inst_valid_DX <= 1'b0;
        end else if (!stall) begin
            if (redirect) begin
                PC_IF <= redirect_target;
                inst_DX <= 32'h00000013;
                inst_valid_DX <= 1'b0;
                PC_DX <= PC_IF;
            end else begin
                PC_IF <= PC_IF + {{(PC_BITS-3){1'b0}}, 3'b100};
                inst_DX <= imem_rdata;
                inst_valid_DX <= 1'b1;
                PC_DX <= PC_IF;
            end
        end
    end

    // ------------------------------------------------------------------
    // DX -> WB.
    // ------------------------------------------------------------------
    always @(posedge clk) begin
        if (reset) begin
            PC_WB <= {PC_BITS{1'b0}};
            wb_valid_WB <= 1'b0;
            reg_write_WB <= 1'b0;
            reg_dest_WB <= {REG_BITS{1'b0}};
            lw_in_WB <= 1'b0;
            sw_in_WB <= 1'b0;
            alu_out_WB <= {XLEN{1'b0}};
        end else if (stall) begin
            // The stalled memory op stays in DX; WB gets a bubble.
            wb_valid_WB <= 1'b0;
            reg_write_WB <= 1'b0;
            lw_in_WB <= 1'b0;
            sw_in_WB <= 1'b0;
        end else begin
            PC_WB <= PC_DX;
            wb_valid_WB <= inst_valid_DX && is_valid_inst;
            reg_write_WB <= inst_valid_DX && is_valid_inst &&
                writes_reg && (rd != 5'd0);
            reg_dest_WB <= rd_idx;
            lw_in_WB <= inst_valid_DX && is_lw;
            sw_in_WB <= inst_valid_DX && is_sw;
            alu_out_WB <= alu_out;
        end
    end

    // The store-data staging register is clocked by every memory
    // operation (both lw and sw), mirroring the V-scale (paper Fig. 3).
    always @(posedge clk) begin
        if (!stall && inst_valid_DX && (is_lw || is_sw))
            wdata_WB <= rs2_data;
    end

    // ------------------------------------------------------------------
    // Writeback.
    // ------------------------------------------------------------------
    wire rf_wen = wb_valid_WB && reg_write_WB &&
        (lw_in_WB ? dmem_resp_valid : 1'b1);

    always @(posedge clk) begin
        if (rf_wen)
            regfile[reg_dest_WB] <= wb_value;
    end

endmodule
