// tinycore: a two-stage (IF / EX) in-order RV32I-subset core used by
// the examples to show rtl2uspec generalizes beyond the V-scale.
//
// Everything happens in EX: decode, ALU, branch resolution, memory
// request issue, and register writeback. A store occupies EX until the
// arbiter grants its request; a load additionally waits one more cycle
// for the pipelined memory's response and writes the register file
// from EX. There is no bypass network — with only one instruction past
// fetch at a time, the register file is always up to date.
module tinycore #(
    parameter XLEN = 8,
    parameter PC_BITS = 6,
    parameter NREGS = 8,
    parameter REG_BITS = 3
) (
    input clk,
    input reset,
    output wire [PC_BITS-3:0] imem_addr,
    input [31:0] imem_rdata,
    output wire dmem_en,
    output wire dmem_wen,
    output wire [XLEN-1:0] dmem_addr,
    output wire [XLEN-1:0] dmem_wdata,
    input dmem_grant,
    input dmem_resp_valid,
    input [XLEN-1:0] dmem_resp_data
);

    reg [PC_BITS-1:0] PC_IF;
    reg [31:0] inst_EX;
    reg [PC_BITS-1:0] PC_EX;
    reg valid_EX;
    reg lw_pending; // load issued, waiting for the memory response

    reg [XLEN-1:0] regfile [0:NREGS-1];

    // ------------------------------------------------------------------
    // Decode (EX).
    // ------------------------------------------------------------------
    wire [6:0] opcode = inst_EX[6:0];
    wire [2:0] funct3 = inst_EX[14:12];
    wire [4:0] rd = inst_EX[11:7];
    wire [4:0] rs1 = inst_EX[19:15];
    wire [4:0] rs2 = inst_EX[24:20];

    wire [31:0] imm_i32 = {{20{inst_EX[31]}}, inst_EX[31:20]};
    wire [31:0] imm_s32 = {{20{inst_EX[31]}}, inst_EX[31:25],
                           inst_EX[11:7]};
    wire [31:0] imm_b32 = {{19{inst_EX[31]}}, inst_EX[31], inst_EX[7],
                           inst_EX[30:25], inst_EX[11:8], 1'b0};
    wire [31:0] imm_j32 = {{11{inst_EX[31]}}, inst_EX[31],
                           inst_EX[19:12], inst_EX[20], inst_EX[30:21],
                           1'b0};

    wire is_lw = (opcode == 7'b0000011) && (funct3 == 3'b010);
    wire is_sw = (opcode == 7'b0100011) && (funct3 == 3'b010);
    wire is_addi = (opcode == 7'b0010011) && (funct3 == 3'b000);
    wire is_jal = opcode == 7'b1101111;
    wire is_beq = (opcode == 7'b1100011) && (funct3 == 3'b000);
    wire is_bne = (opcode == 7'b1100011) && (funct3 == 3'b001);

    wire [REG_BITS-1:0] rs1_idx = rs1[REG_BITS-1:0];
    wire [REG_BITS-1:0] rs2_idx = rs2[REG_BITS-1:0];
    wire [REG_BITS-1:0] rd_idx = rd[REG_BITS-1:0];
    wire [XLEN-1:0] rs1_data = regfile[rs1_idx];
    wire [XLEN-1:0] rs2_data = regfile[rs2_idx];

    // ------------------------------------------------------------------
    // Memory request (EX).
    // ------------------------------------------------------------------
    wire mem_op = valid_EX && (is_lw || is_sw) && !lw_pending;
    assign dmem_en = mem_op;
    assign dmem_wen = valid_EX && is_sw && !lw_pending;
    assign dmem_addr = is_sw ? (rs1_data + imm_s32[XLEN-1:0])
                             : (rs1_data + imm_i32[XLEN-1:0]);
    assign dmem_wdata = rs2_data;

    // EX completes this cycle unless a memory op is still in flight.
    wire ex_done = !valid_EX ||
        (is_sw ? dmem_grant :
         (is_lw ? (lw_pending && dmem_resp_valid) : 1'b1));

    // ------------------------------------------------------------------
    // Control flow.
    // ------------------------------------------------------------------
    wire branch_taken = valid_EX && ex_done &&
        ((is_beq && (rs1_data == rs2_data)) ||
         (is_bne && (rs1_data != rs2_data)));
    wire jump_taken = valid_EX && ex_done && is_jal;
    wire redirect = branch_taken || jump_taken;
    wire [PC_BITS-1:0] redirect_target = jump_taken
        ? (PC_EX + imm_j32[PC_BITS-1:0])
        : (PC_EX + imm_b32[PC_BITS-1:0]);

    assign imem_addr = PC_IF[PC_BITS-1:2];

    always @(posedge clk) begin
        if (reset) begin
            PC_IF <= {PC_BITS{1'b0}};
            inst_EX <= 32'h00000013;
            PC_EX <= {PC_BITS{1'b0}};
            valid_EX <= 1'b0;
            lw_pending <= 1'b0;
        end else if (ex_done) begin
            if (redirect) begin
                PC_IF <= redirect_target;
                inst_EX <= 32'h00000013;
                valid_EX <= 1'b0;
                PC_EX <= PC_IF;
            end else begin
                PC_IF <= PC_IF + {{(PC_BITS-3){1'b0}}, 3'b100};
                inst_EX <= imem_rdata;
                valid_EX <= 1'b1;
                PC_EX <= PC_IF;
            end
            lw_pending <= 1'b0;
        end else begin
            if (valid_EX && is_lw && dmem_grant)
                lw_pending <= 1'b1;
        end
    end

    // ------------------------------------------------------------------
    // Register writeback (from EX).
    // ------------------------------------------------------------------
    wire writes_reg = is_addi || is_jal || is_lw;
    wire [XLEN-1:0] wb_value =
        is_lw ? dmem_resp_data :
        (is_jal ? (PC_EX + {{PC_BITS{1'b0}}, 3'b100})
                : (rs1_data + imm_i32[XLEN-1:0]));
    wire rf_wen = valid_EX && ex_done && writes_reg && (rd != 5'd0);

    always @(posedge clk) begin
        if (rf_wen)
            regfile[rd_idx] <= wb_value;
    end

endmodule

// multi_tiny: two tinycores sharing one pipelined data memory through
// the (four-port) round-robin arbiter; ports 2 and 3 are tied off.
module multi_tiny #(
    parameter XLEN = 8,
    parameter PC_BITS = 6,
    parameter NREGS = 8,
    parameter REG_BITS = 3,
    parameter DMEM_WORDS = 8,
    parameter DMEM_ABITS = 3,
    parameter IMEM_WORDS = 16,
    parameter IMEM_ABITS = 4
) (
    input clk,
    input reset
);

    wire en_0, en_1, wen_0, wen_1;
    wire [XLEN-1:0] addr_0, addr_1, wdata_0, wdata_1;
    wire [3:0] grant;
    wire [3:0] req_en = {2'b00, en_1, en_0};
    wire [3:0] req_wen = {2'b00, wen_1, wen_0};
    wire [XLEN-1:0] zero_x = {XLEN{1'b0}};

    wire mem_req_valid, mem_req_wen;
    wire [XLEN-1:0] mem_req_addr, mem_req_wdata;
    wire [1:0] mem_req_core;
    wire resp_valid;
    wire [1:0] resp_core;
    wire [XLEN-1:0] resp_data;

    wire [IMEM_ABITS-1:0] iaddr_0, iaddr_1;
    wire [31:0] irdata_0, irdata_1;

    wire resp_0 = resp_valid && (resp_core == 2'd0);
    wire resp_1 = resp_valid && (resp_core == 2'd1);

    tinycore #(.XLEN(XLEN), .PC_BITS(PC_BITS), .NREGS(NREGS),
               .REG_BITS(REG_BITS)) core_0 (
        .clk(clk), .reset(reset),
        .imem_addr(iaddr_0), .imem_rdata(irdata_0),
        .dmem_en(en_0), .dmem_wen(wen_0), .dmem_addr(addr_0),
        .dmem_wdata(wdata_0), .dmem_grant(grant[0]),
        .dmem_resp_valid(resp_0), .dmem_resp_data(resp_data)
    );
    tinycore #(.XLEN(XLEN), .PC_BITS(PC_BITS), .NREGS(NREGS),
               .REG_BITS(REG_BITS)) core_1 (
        .clk(clk), .reset(reset),
        .imem_addr(iaddr_1), .imem_rdata(irdata_1),
        .dmem_en(en_1), .dmem_wen(wen_1), .dmem_addr(addr_1),
        .dmem_wdata(wdata_1), .dmem_grant(grant[1]),
        .dmem_resp_valid(resp_1), .dmem_resp_data(resp_data)
    );

    vscale_imem #(.IMEM_WORDS(IMEM_WORDS), .ABITS(IMEM_ABITS)) imem_0 (
        .addr(iaddr_0), .rdata(irdata_0)
    );
    vscale_imem #(.IMEM_WORDS(IMEM_WORDS), .ABITS(IMEM_ABITS)) imem_1 (
        .addr(iaddr_1), .rdata(irdata_1)
    );

    vscale_arbiter #(.XLEN(XLEN)) arbiter (
        .clk(clk), .reset(reset),
        .req_en(req_en), .req_wen(req_wen),
        .req_addr0(addr_0), .req_addr1(addr_1),
        .req_addr2(zero_x), .req_addr3(zero_x),
        .req_wdata0(wdata_0), .req_wdata1(wdata_1),
        .req_wdata2(zero_x), .req_wdata3(zero_x),
        .grant(grant),
        .mem_req_valid(mem_req_valid), .mem_req_wen(mem_req_wen),
        .mem_req_addr(mem_req_addr), .mem_req_wdata(mem_req_wdata),
        .mem_req_core(mem_req_core)
    );

    vscale_dmem #(.XLEN(XLEN), .DMEM_WORDS(DMEM_WORDS),
                  .ABITS(DMEM_ABITS)) dmem (
        .clk(clk), .reset(reset),
        .req_valid(mem_req_valid), .req_wen(mem_req_wen),
        .req_addr(mem_req_addr), .req_wdata(mem_req_wdata),
        .req_core(mem_req_core),
        .resp_valid(resp_valid), .resp_core(resp_core),
        .resp_data(resp_data)
    );

endmodule
