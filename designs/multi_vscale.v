// multi_vscale: the four-core multi-V-scale (paper §5.1).
//
// Four three-stage in-order vscale_core instances share a single data
// memory through a round-robin arbiter; each core has a private
// instruction memory. The design implements Sequential Consistency:
// memory order is exactly the arbiter's grant order.
//
// Parameters let the formal configuration shrink the datapath (XLEN)
// and memory depths; litmus-visible behavior is width-independent.
module multi_vscale #(
    parameter XLEN = 32,
    parameter PC_BITS = 7,
    parameter NREGS = 32,
    parameter REG_BITS = 5,
    parameter DMEM_WORDS = 8,
    parameter DMEM_ABITS = 3,
    parameter IMEM_WORDS = 32,
    parameter IMEM_ABITS = 5,
    parameter BUGGY = 0
) (
    input clk,
    input reset
);

    wire [3:0] req_en;
    wire [3:0] req_wen;
    wire [3:0] grant;

    wire en_0, en_1, en_2, en_3;
    wire wen_0, wen_1, wen_2, wen_3;
    wire [XLEN-1:0] addr_0, addr_1, addr_2, addr_3;
    wire [XLEN-1:0] wdata_0, wdata_1, wdata_2, wdata_3;

    assign req_en = {en_3, en_2, en_1, en_0};
    assign req_wen = {wen_3, wen_2, wen_1, wen_0};

    wire mem_req_valid;
    wire mem_req_wen;
    wire [XLEN-1:0] mem_req_addr;
    wire [XLEN-1:0] mem_req_wdata;
    wire [1:0] mem_req_core;
    wire resp_valid;
    wire [1:0] resp_core;
    wire [XLEN-1:0] resp_data;

    wire [IMEM_ABITS-1:0] iaddr_0, iaddr_1, iaddr_2, iaddr_3;
    wire [31:0] irdata_0, irdata_1, irdata_2, irdata_3;

    wire resp_0 = resp_valid && (resp_core == 2'd0);
    wire resp_1 = resp_valid && (resp_core == 2'd1);
    wire resp_2 = resp_valid && (resp_core == 2'd2);
    wire resp_3 = resp_valid && (resp_core == 2'd3);

    vscale_core #(.XLEN(XLEN), .PC_BITS(PC_BITS), .NREGS(NREGS),
                  .REG_BITS(REG_BITS), .BUGGY(BUGGY)) core_0 (
        .clk(clk), .reset(reset),
        .imem_addr(iaddr_0), .imem_rdata(irdata_0),
        .dmem_en(en_0), .dmem_wen(wen_0), .dmem_addr(addr_0),
        .dmem_wdata(wdata_0), .dmem_grant(grant[0]),
        .dmem_resp_valid(resp_0), .dmem_resp_data(resp_data)
    );
    vscale_core #(.XLEN(XLEN), .PC_BITS(PC_BITS), .NREGS(NREGS),
                  .REG_BITS(REG_BITS), .BUGGY(BUGGY)) core_1 (
        .clk(clk), .reset(reset),
        .imem_addr(iaddr_1), .imem_rdata(irdata_1),
        .dmem_en(en_1), .dmem_wen(wen_1), .dmem_addr(addr_1),
        .dmem_wdata(wdata_1), .dmem_grant(grant[1]),
        .dmem_resp_valid(resp_1), .dmem_resp_data(resp_data)
    );
    vscale_core #(.XLEN(XLEN), .PC_BITS(PC_BITS), .NREGS(NREGS),
                  .REG_BITS(REG_BITS), .BUGGY(BUGGY)) core_2 (
        .clk(clk), .reset(reset),
        .imem_addr(iaddr_2), .imem_rdata(irdata_2),
        .dmem_en(en_2), .dmem_wen(wen_2), .dmem_addr(addr_2),
        .dmem_wdata(wdata_2), .dmem_grant(grant[2]),
        .dmem_resp_valid(resp_2), .dmem_resp_data(resp_data)
    );
    vscale_core #(.XLEN(XLEN), .PC_BITS(PC_BITS), .NREGS(NREGS),
                  .REG_BITS(REG_BITS), .BUGGY(BUGGY)) core_3 (
        .clk(clk), .reset(reset),
        .imem_addr(iaddr_3), .imem_rdata(irdata_3),
        .dmem_en(en_3), .dmem_wen(wen_3), .dmem_addr(addr_3),
        .dmem_wdata(wdata_3), .dmem_grant(grant[3]),
        .dmem_resp_valid(resp_3), .dmem_resp_data(resp_data)
    );

    vscale_imem #(.IMEM_WORDS(IMEM_WORDS), .ABITS(IMEM_ABITS)) imem_0 (
        .addr(iaddr_0), .rdata(irdata_0)
    );
    vscale_imem #(.IMEM_WORDS(IMEM_WORDS), .ABITS(IMEM_ABITS)) imem_1 (
        .addr(iaddr_1), .rdata(irdata_1)
    );
    vscale_imem #(.IMEM_WORDS(IMEM_WORDS), .ABITS(IMEM_ABITS)) imem_2 (
        .addr(iaddr_2), .rdata(irdata_2)
    );
    vscale_imem #(.IMEM_WORDS(IMEM_WORDS), .ABITS(IMEM_ABITS)) imem_3 (
        .addr(iaddr_3), .rdata(irdata_3)
    );

    vscale_arbiter #(.XLEN(XLEN)) arbiter (
        .clk(clk), .reset(reset),
        .req_en(req_en), .req_wen(req_wen),
        .req_addr0(addr_0), .req_addr1(addr_1),
        .req_addr2(addr_2), .req_addr3(addr_3),
        .req_wdata0(wdata_0), .req_wdata1(wdata_1),
        .req_wdata2(wdata_2), .req_wdata3(wdata_3),
        .grant(grant),
        .mem_req_valid(mem_req_valid), .mem_req_wen(mem_req_wen),
        .mem_req_addr(mem_req_addr), .mem_req_wdata(mem_req_wdata),
        .mem_req_core(mem_req_core)
    );

    vscale_dmem #(.XLEN(XLEN), .DMEM_WORDS(DMEM_WORDS),
                  .ABITS(DMEM_ABITS)) dmem (
        .clk(clk), .reset(reset),
        .req_valid(mem_req_valid), .req_wen(mem_req_wen),
        .req_addr(mem_req_addr), .req_wdata(mem_req_wdata),
        .req_core(mem_req_core),
        .resp_valid(resp_valid), .resp_core(resp_core),
        .resp_data(resp_data)
    );

endmodule
