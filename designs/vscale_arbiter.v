// vscale_arbiter: round-robin arbiter connecting the four cores to the
// single shared data memory. One request is granted per cycle; all
// other requesting cores stall. Granted requests are tagged with the
// issuing core's id (the 2-bit extension the paper adds to the design,
// §5.1) so the memory's request-tracking logic can attribute them.
module vscale_arbiter #(
    parameter XLEN = 32
) (
    input clk,
    input reset,
    input [3:0] req_en,
    input [3:0] req_wen,
    input [XLEN-1:0] req_addr0,
    input [XLEN-1:0] req_addr1,
    input [XLEN-1:0] req_addr2,
    input [XLEN-1:0] req_addr3,
    input [XLEN-1:0] req_wdata0,
    input [XLEN-1:0] req_wdata1,
    input [XLEN-1:0] req_wdata2,
    input [XLEN-1:0] req_wdata3,
    output wire [3:0] grant,
    output wire mem_req_valid,
    output wire mem_req_wen,
    output wire [XLEN-1:0] mem_req_addr,
    output wire [XLEN-1:0] mem_req_wdata,
    output wire [1:0] mem_req_core
);

    reg [1:0] rr_ptr;

    // Pick the first requester at or after rr_ptr (wrapping).
    reg [1:0] sel;
    reg any_req;
    always @(*) begin
        sel = 2'b00;
        any_req = 1'b0;
        if (req_en[rr_ptr]) begin
            sel = rr_ptr;
            any_req = 1'b1;
        end else if (req_en[rr_ptr + 2'd1]) begin
            sel = rr_ptr + 2'd1;
            any_req = 1'b1;
        end else if (req_en[rr_ptr + 2'd2]) begin
            sel = rr_ptr + 2'd2;
            any_req = 1'b1;
        end else if (req_en[rr_ptr + 2'd3]) begin
            sel = rr_ptr + 2'd3;
            any_req = 1'b1;
        end
    end

    reg [XLEN-1:0] sel_addr;
    reg [XLEN-1:0] sel_wdata;
    always @(*) begin
        case (sel)
            2'd0: begin
                sel_addr = req_addr0;
                sel_wdata = req_wdata0;
            end
            2'd1: begin
                sel_addr = req_addr1;
                sel_wdata = req_wdata1;
            end
            2'd2: begin
                sel_addr = req_addr2;
                sel_wdata = req_wdata2;
            end
            default: begin
                sel_addr = req_addr3;
                sel_wdata = req_wdata3;
            end
        endcase
    end

    assign grant = any_req ? (4'b0001 << sel) : 4'b0000;
    assign mem_req_valid = any_req;
    assign mem_req_wen = any_req && req_wen[sel];
    assign mem_req_addr = sel_addr;
    assign mem_req_wdata = sel_wdata;
    assign mem_req_core = sel;

    // Advance the round-robin pointer past the granted core.
    always @(posedge clk) begin
        if (reset)
            rr_ptr <= 2'b00;
        else if (any_req)
            rr_ptr <= sel + 2'd1;
    end

endmodule
