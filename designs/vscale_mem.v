// vscale_dmem: the single shared data memory behind the arbiter.
//
// Pipelined, single-ported: a granted request is captured into the
// req_*_q registers on one edge; the array is written (stores) or read
// combinationally (loads, response valid the following cycle). This is
// the "split data memory" module of the modified multi-V-scale (paper
// §5.1): requests carry a core-id tag so the request-tracking logic
// can attribute each transaction to its issuing core.
module vscale_dmem #(
    parameter XLEN = 32,
    parameter DMEM_WORDS = 8,
    parameter ABITS = 3
) (
    input clk,
    input reset,
    input req_valid,
    input req_wen,
    input [XLEN-1:0] req_addr,
    input [XLEN-1:0] req_wdata,
    input [1:0] req_core,
    output wire resp_valid,
    output wire [1:0] resp_core,
    output wire [XLEN-1:0] resp_data
);

    reg req_valid_q;
    reg req_wen_q;
    reg [ABITS-1:0] req_addr_q;
    reg [XLEN-1:0] req_wdata_q;
    reg [1:0] req_core_q;

    reg [XLEN-1:0] mem [0:DMEM_WORDS-1];

    // Byte address -> word index.
    wire [ABITS-1:0] word_index = req_addr[ABITS+1:2];

    always @(posedge clk) begin
        if (reset) begin
            req_valid_q <= 1'b0;
            req_wen_q <= 1'b0;
            req_addr_q <= {ABITS{1'b0}};
            req_wdata_q <= {XLEN{1'b0}};
            req_core_q <= 2'b00;
        end else begin
            req_valid_q <= req_valid;
            req_wen_q <= req_wen;
            req_addr_q <= word_index;
            req_wdata_q <= req_wdata;
            req_core_q <= req_core;
        end
    end

    always @(posedge clk) begin
        if (req_valid_q && req_wen_q)
            mem[req_addr_q] <= req_wdata_q;
    end

    assign resp_valid = req_valid_q && !req_wen_q;
    assign resp_core = req_core_q;
    assign resp_data = mem[req_addr_q];

endmodule

// vscale_imem: core-private instruction memory (read-only; contents are
// loaded by the test harness / initial-state constraints).
module vscale_imem #(
    parameter IMEM_WORDS = 32,
    parameter ABITS = 5
) (
    input [ABITS-1:0] addr,
    output wire [31:0] rdata
);

    reg [31:0] mem [0:IMEM_WORDS-1];

    assign rdata = mem[addr];

endmodule
