/**
 * @file
 * Applying rtl2uspec to a different microarchitecture: a two-stage,
 * two-core design (designs/tinycore.v) that shares the V-scale's
 * memory subsystem but has a completely different pipeline. The same
 * library calls — elaborate, describe the metadata, synthesize, check
 * — produce and verify a µspec model with a different shape (one PCR,
 * loads retiring from EX), demonstrating the paper's claim that only
 * modest per-design metadata is needed.
 */

#include <cstdio>

#include "check/check.hh"
#include "litmus/litmus.hh"
#include "rtl2uspec/synthesis.hh"
#include "verilog/elaborate.hh"

int
main()
{
    using namespace r2u;

    // Elaborate the two-core tiny SoC.
    std::string dir = R2U_DESIGN_DIR;
    vlog::ElabOptions opts;
    opts.top = "multi_tiny";
    vlog::ElabResult design = vlog::elaborateFiles(
        {dir + "/tinycore.v", dir + "/vscale_arbiter.v",
         dir + "/vscale_mem.v"},
        opts);
    auto st = design.netlist->stats();
    std::printf("multi_tiny: %zu cells, %zu registers, %zu memories\n",
                st.cells, st.registers, st.memories);

    // Metadata: two cores, a single PCR (IF feeds EX directly).
    rtl2uspec::DesignMetadata md;
    for (unsigned c = 0; c < 2; c++) {
        rtl2uspec::CoreMeta core;
        std::string prefix = "core_" + std::to_string(c) + ".";
        core.prefix = prefix;
        core.ifr = prefix + "inst_EX";
        core.pcrs = {prefix + "PC_EX"};
        core.imPc = prefix + "PC_IF";
        core.reqEn = prefix + "dmem_en";
        core.reqWen = prefix + "dmem_wen";
        md.cores.push_back(std::move(core));
    }
    rtl2uspec::InstrType sw{"sw", 0x0000707f, 0x00002023, false, true};
    rtl2uspec::InstrType lw{"lw", 0x0000707f, 0x00002003, true, false};
    md.instrs = {sw, lw};
    md.remote.memName = "dmem.mem";
    md.remote.grant = "grant";
    md.remote.pipelineRegs = {"dmem.req_valid_q", "dmem.req_wen_q",
                              "dmem.req_addr_q", "dmem.req_wdata_q",
                              "dmem.req_core_q"};
    md.remote.pipeValid = "dmem.req_valid_q";
    md.remote.pipeWen = "dmem.req_wen_q";
    md.remote.pipeCore = "dmem.req_core_q";
    md.exclude = {"arbiter.rr_ptr"};
    md.bound = 16;    // loads occupy EX longer on this pipeline
    md.issueByFrame = 6;

    rtl2uspec::SynthesisResult synth = rtl2uspec::synthesize(design, md);
    std::printf("\nsynthesized model (%zu rows, %zu axioms, %zu SVAs, "
                "%.1f s):\n%s\n",
                synth.model.stageNames.size(),
                synth.model.axioms.size(), synth.svas.size(),
                synth.totalSeconds, synth.model.print().c_str());

    // Two-core litmus tests against the synthesized model.
    int failures = 0;
    for (const char *name : {"mp", "sb", "lb", "corr", "coww", "2+2w"}) {
        for (const auto &t : litmus::standardSuite()) {
            if (t.name != name)
                continue;
            auto res = check::checkTest(synth.model, t);
            std::printf("%s\n", res.summary().c_str());
            failures += !res.pass || res.interestingObservable;
        }
    }
    std::printf("\n%s\n", failures == 0
                              ? "multi_tiny implements SC on these "
                                "tests — model proven from its RTL"
                              : "MCM violations found!");
    return failures;
}
