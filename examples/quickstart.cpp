/**
 * @file
 * Quickstart: the complete rtl2uspec flow in ~50 effective lines.
 *
 *   1. Parse + elaborate the multi-V-scale SystemVerilog-subset RTL.
 *   2. Supply the paper's design metadata (IFR / PCRs / IM_PC,
 *      instruction encodings, request-response interface).
 *   3. Synthesize a µspec model (every HBI proven by the bundled
 *      SAT-based property checker).
 *   4. Verify a litmus test against the synthesized model.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "check/check.hh"
#include "litmus/litmus.hh"
#include "rtl2uspec/synthesis.hh"
#include "vscale/metadata.hh"
#include "vscale/vscale.hh"

int
main()
{
    using namespace r2u;

    // 1. Elaborate the processor RTL (narrow formal configuration:
    //    litmus-visible behavior is identical to the 32-bit build).
    vscale::Config cfg = vscale::Config::formal();
    cfg.imemWords = 16;
    vlog::ElabResult design = vscale::elaborateVscale(cfg);
    auto stats = design.netlist->stats();
    std::printf("elaborated multi_vscale: %zu cells, %zu registers, "
                "%zu memories\n",
                stats.cells, stats.registers, stats.memories);

    // 2. Design metadata (paper §4.2.1 / §4.3.4).
    rtl2uspec::DesignMetadata md = vscale::vscaleMetadata(cfg);

    // 3. Synthesize the µspec model.
    rtl2uspec::SynthesisResult synth = rtl2uspec::synthesize(design, md);
    std::printf("\nsynthesized %zu-axiom model in %.1f s "
                "(%zu SVAs evaluated)\n",
                synth.model.axioms.size(), synth.totalSeconds,
                synth.svas.size());
    std::printf("\n--- synthesized vscale.uarch ---\n%s\n",
                synth.model.print().c_str());

    // 4. Check the classic message-passing litmus test.
    litmus::Test mp = litmus::Test::parse(R"(name mp
thread 0
w x 1
w y 1
thread 1
r y 2
r x 3
interesting 1:x2=1 & 1:x3=0)");
    check::TestResult res = check::checkTest(synth.model, mp);
    std::printf("litmus mp: %s\n", res.summary().c_str());
    std::printf("the forbidden non-SC outcome is %s\n",
                res.interestingObservable ? "OBSERVABLE (MCM bug!)"
                                          : "unobservable — the "
                                            "design preserves SC");
    return res.pass ? 0 : 1;
}
