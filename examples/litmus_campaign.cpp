/**
 * @file
 * A full MCM verification campaign (paper §5.2 / artifact A.5):
 * synthesize the multi-V-scale's µspec model once, then check the
 * whole 56-test suite against it, validating every verdict against
 * the operational SC reference. Also demonstrates the litmus
 * machinery: diy-style generation from a user-supplied critical
 * cycle, text-format round trips, and DOT output for a forbidden
 * execution.
 */

#include <cstdio>

#include "check/check.hh"
#include "common/strutil.hh"
#include "litmus/litmus.hh"
#include "rtl2uspec/synthesis.hh"
#include "vscale/metadata.hh"
#include "vscale/vscale.hh"

int
main()
{
    using namespace r2u;

    vscale::Config cfg = vscale::Config::formal();
    cfg.imemWords = 16;
    auto design = vscale::elaborateVscale(cfg);
    auto synth =
        rtl2uspec::synthesize(design, vscale::vscaleMetadata(cfg));
    std::printf("model synthesized in %.1f s; starting the litmus "
                "campaign\n\n", synth.totalSeconds);

    auto suite = litmus::standardSuite();
    int passed = 0;
    double total_ms = 0;
    for (const auto &t : suite) {
        auto res = check::checkTest(synth.model, t);
        total_ms += res.ms;
        bool ok = res.pass && !res.interestingObservable;
        passed += ok;
        std::printf("%-10s %s  (%2d SC outcomes, %2d observable, "
                    "%6.2f ms)\n",
                    t.name.c_str(), ok ? "PASS" : "FAIL",
                    res.scAllowedOutcomes, res.observableOutcomes,
                    res.ms);
        if (!ok)
            for (const auto &v : res.violations)
                std::printf("    non-SC outcome observable: %s\n",
                            v.c_str());
    }
    std::printf("\n%d/%zu tests passed in %.1f ms total "
                "(%.2f ms per test)\n",
                passed, suite.size(), total_ms,
                total_ms / static_cast<double>(suite.size()));

    // Generate a custom test from a critical cycle and check it too.
    litmus::Test custom = litmus::generateFromCycle(
        "my_cycle", "Rfe PodRR Fre PodWW Wse PodWW");
    std::printf("\ncustom diy-style test from 'Rfe PodRW Fre PodWR "
                "Wse PodWW':\n%s", custom.print().c_str());
    auto res = check::checkTest(synth.model, custom,
                                {.collectDot = true});
    std::printf("%s\n", res.summary().c_str());
    if (!res.interestingDot.empty()) {
        std::string path =
            std::string(R2U_OUTPUT_DIR) + "/uhb_my_cycle.dot";
        writeFile(path, res.interestingDot);
        std::printf("cyclic µhb witness written to %s\n", path.c_str());
    }
    return passed == static_cast<int>(suite.size()) && res.pass ? 0 : 1;
}
