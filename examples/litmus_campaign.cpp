/**
 * @file
 * A full MCM verification campaign (paper §5.2 / artifact A.5):
 * synthesize the multi-V-scale's µspec model once, then check the
 * whole 56-test suite against it with the parallel, pruned campaign
 * engine, validating every verdict against the operational SC
 * reference. Also demonstrates the litmus machinery: diy-style
 * generation from a user-supplied critical cycle, text-format round
 * trips, and DOT output for a forbidden execution.
 */

#include <cstdio>

#include "check/campaign.hh"
#include "check/check.hh"
#include "common/strutil.hh"
#include "litmus/litmus.hh"
#include "rtl2uspec/synthesis.hh"
#include "vscale/metadata.hh"
#include "vscale/vscale.hh"

int
main()
{
    using namespace r2u;

    vscale::Config cfg = vscale::Config::formal();
    cfg.imemWords = 16;
    auto design = vscale::elaborateVscale(cfg);
    auto synth =
        rtl2uspec::synthesize(design, vscale::vscaleMetadata(cfg));
    std::printf("model synthesized in %.1f s; starting the litmus "
                "campaign\n\n", synth.totalSeconds);

    // One campaign call checks the whole suite: candidate executions
    // are grouped by outcome, distributed over the worker pool, and
    // outcomes already proven observable are pruned. Verdicts are
    // identical at any job count, with or without pruning.
    check::CampaignOptions opts;
    opts.jobs = 0; // hardware concurrency
    auto campaign =
        check::runCampaign(synth.model, litmus::standardSuite(), opts);

    int passed = 0;
    for (const auto &res : campaign.tests) {
        // ok() accepts an observable interesting outcome when the SC
        // reference allows that outcome too — seeing it is correct
        // behavior, not a violation.
        passed += res.ok();
        std::printf("%-10s %s  (%2d SC outcomes, %2d observable, "
                    "%3d/%3d executions solved, %6.2f ms)\n",
                    res.name.c_str(), res.ok() ? "PASS" : "FAIL",
                    res.scAllowedOutcomes, res.observableOutcomes,
                    res.executionsExplored, res.executionsTotal,
                    res.ms);
        if (!res.ok())
            for (const auto &v : res.violations)
                std::printf("    non-SC outcome observable: %s\n",
                            v.c_str());
    }
    std::printf("\n%d/%zu tests passed\n%s\n", passed,
                campaign.tests.size(), campaign.summary().c_str());

    // Generate a custom test from a critical cycle and check it too.
    litmus::Test custom = litmus::generateFromCycle(
        "my_cycle", "Rfe PodRR Fre PodWW Wse PodWW");
    std::printf("\ncustom diy-style test from 'Rfe PodRW Fre PodWR "
                "Wse PodWW':\n%s", custom.print().c_str());
    auto res = check::checkTest(synth.model, custom,
                                {.collectDot = true});
    std::printf("%s\n", res.summary().c_str());
    if (!res.interestingDot.empty()) {
        std::string path =
            std::string(R2U_OUTPUT_DIR) + "/uhb_my_cycle.dot";
        writeFile(path, res.interestingDot);
        std::printf("cyclic µhb witness written to %s\n", path.c_str());
    }
    return campaign.failures == 0 && res.pass ? 0 : 1;
}
