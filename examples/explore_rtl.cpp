/**
 * @file
 * The substrate as a standalone toolkit: parse a piece of Verilog,
 * inspect the elaborated netlist, simulate it cycle by cycle, extract
 * its state-element data-flow graph, and prove/refute temporal
 * properties with the bounded model checker — no processor or µspec
 * involved. This is the Verific/Yosys/JasperGold trio the paper's
 * flow builds on, exposed as a C++ API.
 */

#include <cstdio>

#include "bmc/checker.hh"
#include "dfg/dfg.hh"
#include "sim/simulator.hh"
#include "verilog/elaborate.hh"
#include "verilog/parser.hh"

static const char *kGcdRtl = R"(
// A tiny handshake design: computes gcd(a, b) by subtraction.
module gcd #(parameter W = 8) (
    input clk,
    input reset,
    input start,
    input [W-1:0] a_in,
    input [W-1:0] b_in,
    output wire busy,
    output wire [W-1:0] result
);
    reg [W-1:0] a;
    reg [W-1:0] b;
    reg running;
    always @(posedge clk) begin
        if (reset) begin
            running <= 1'b0;
            a <= {W{1'b0}};
            b <= {W{1'b0}};
        end else if (start && !running) begin
            a <= a_in;
            b <= b_in;
            running <= 1'b1;
        end else if (running) begin
            if (a == b)
                running <= 1'b0;
            else if (a < b)
                b <= b - a;
            else
                a <= a - b;
        end
    end
    assign busy = running;
    assign result = a;
endmodule
)";

int
main()
{
    using namespace r2u;

    // Parse + elaborate.
    vlog::Design d = vlog::parseString(kGcdRtl, "gcd.v");
    vlog::ElabOptions opts;
    opts.top = "gcd";
    opts.params["W"] = 8;
    vlog::ElabResult design = vlog::elaborate(d, opts);
    auto st = design.netlist->stats();
    std::printf("gcd netlist: %zu cells, %zu registers (%zu flop "
                "bits)\n", st.cells, st.registers, st.flopBits);

    // Simulate: gcd(48, 18) = 6.
    sim::Simulator sim(*design.netlist);
    sim.setInput("reset", Bits(1, 1));
    sim.setInput("clk", Bits(1, 0));
    sim.setInput("start", Bits(1, 0));
    sim.setInput("a_in", Bits(8, 0));
    sim.setInput("b_in", Bits(8, 0));
    sim.step();
    sim.setInput("reset", Bits(1, 0));
    sim.setInput("start", Bits(1, 1));
    sim.setInput("a_in", Bits(8, 48));
    sim.setInput("b_in", Bits(8, 18));
    sim.step();
    sim.setInput("start", Bits(1, 0));
    unsigned cycles = 0;
    while (sim.value(design.signal("busy")).toBool() && cycles < 100) {
        sim.step();
        cycles++;
    }
    std::printf("gcd(48, 18) = %lu after %u cycles\n",
                static_cast<unsigned long>(
                    sim.value(design.signal("result")).toUint64()), cycles);

    // State-element DFG.
    auto g = dfg::FullDesignDfg::build(*design.netlist);
    std::printf("\nstate-element DFG:\n");
    for (size_t n = 0; n < g.numNodes(); n++) {
        std::printf("  %s <-", g.node(static_cast<int>(n)).name.c_str());
        for (auto p : g.parents(static_cast<int>(n)))
            std::printf(" %s", g.node(p).name.c_str());
        std::printf("\n");
    }

    // BMC: prove a and b stay nonzero while the unit is running,
    // provided start is only pulsed with nonzero operands.
    auto res = bmc::checkProperty(
        *design.netlist, design.signalMap, {}, 12,
        [&](bmc::PropCtx &ctx) {
            auto &cnf = ctx.cnf();
            ctx.pinInputAt(0, "reset", 1);
            for (unsigned f = 1; f < ctx.bound(); f++)
                ctx.pinInputAt(f, "reset", 0);
            sat::Lit bad = cnf.falseLit();
            for (unsigned f = 0; f < ctx.bound(); f++) {
                sat::Lit start = ctx.at(f, "start")[0];
                sat::Lit a0 = cnf.mkEqW(ctx.at(f, "a_in"),
                                        cnf.constWord(8, 0));
                sat::Lit b0 = cnf.mkEqW(ctx.at(f, "b_in"),
                                        cnf.constWord(8, 0));
                ctx.assume(cnf.mkImplies(start, ~a0));
                ctx.assume(cnf.mkImplies(start, ~b0));
                sat::Lit running = ctx.at(f, "running")[0];
                sat::Lit az = cnf.mkEqW(ctx.at(f, "a"),
                                        cnf.constWord(8, 0));
                sat::Lit bz = cnf.mkEqW(ctx.at(f, "b"),
                                        cnf.constWord(8, 0));
                bad = cnf.mkOr(bad,
                               cnf.mkAnd(running, cnf.mkOr(az, bz)));
            }
            return bad;
        });
    std::printf("\nBMC 'a stays nonzero while running': %s "
                "(%.3f s, %zu CNF vars)\n",
                bmc::verdictName(res.verdict), res.seconds,
                res.cnfVars);

    // And a refutable property, to see a counterexample trace.
    auto cex = bmc::checkProperty(
        *design.netlist, design.signalMap, {}, 8,
        [&](bmc::PropCtx &ctx) {
            ctx.pinInputAt(0, "reset", 1);
            for (unsigned f = 1; f < ctx.bound(); f++)
                ctx.pinInputAt(f, "reset", 0);
            ctx.watch("a");
            ctx.watch("b");
            ctx.watch("running");
            // "The design can never be busy" — clearly false.
            sat::Lit bad = ctx.cnf().falseLit();
            for (unsigned f = 0; f < ctx.bound(); f++)
                bad = ctx.cnf().mkOr(bad, ctx.at(f, "running")[0]);
            return bad;
        });
    std::printf("BMC 'never busy': %s — counterexample:\n%s",
                bmc::verdictName(cex.verdict),
                cex.trace.toString().c_str());
    return res.verdict == bmc::Verdict::Proven &&
                   cex.verdict == bmc::Verdict::Refuted
               ? 0
               : 1;
}
