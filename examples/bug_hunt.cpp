/**
 * @file
 * Bug hunting with rtl2uspec (paper §6.1): run the synthesis on the
 * *original* (buggy) multi-V-scale. One of the automatically
 * generated interface SVAs is refuted, and the counterexample trace
 * pinpoints the defect: a store-shaped encoding with an undefined
 * funct3 (3'b111) issues a memory write instead of raising an
 * exception. The same flow on the fixed design proves every SVA —
 * 100% proof coverage.
 *
 * Notably, ordinary litmus testing cannot find this bug: litmus
 * programs contain only valid instructions. Cross-check at the end:
 * the buggy RTL still executes MP correctly in simulation.
 */

#include <cstdio>

#include "isa/isa.hh"
#include "litmus/litmus.hh"
#include "rtl2uspec/synthesis.hh"
#include "vscale/metadata.hh"
#include "vscale/vscale.hh"

int
main()
{
    using namespace r2u;

    vscale::Config cfg = vscale::Config::formal();
    cfg.imemWords = 16;
    cfg.buggy = true;

    std::printf("synthesizing a uspec model from the ORIGINAL "
                "(pre-fix) multi-V-scale...\n");
    auto design = vscale::elaborateVscale(cfg);
    auto md = vscale::vscaleMetadata(cfg);
    auto synth = rtl2uspec::synthesize(design, md);

    if (synth.bugs.empty()) {
        std::printf("unexpected: no bug found\n");
        return 1;
    }
    std::printf("\n%zu design bug(s) discovered during HBI-hypothesis "
                "evaluation:\n\n", synth.bugs.size());
    for (const auto &bug : synth.bugs)
        std::printf("%s\n", bug.c_str());

    // Decode the instruction register values seen in the trace.
    std::printf("decoding IFR values from the counterexample:\n");
    for (const auto &sva : synth.svas) {
        if (sva.verdict != bmc::Verdict::Refuted ||
            sva.name != "write_requests_are_valid_stores")
            continue;
        // Pull hex inst_DX values out of the trace text.
        const std::string &trace = sva.trace;
        size_t pos = 0;
        while ((pos = trace.find("core_0.inst_DX", pos)) !=
               std::string::npos) {
            size_t eq = trace.find("0x", pos);
            if (eq == std::string::npos)
                break;
            uint32_t word = static_cast<uint32_t>(
                std::strtoul(trace.c_str() + eq + 2, nullptr, 16));
            isa::Inst inst = isa::decode(word);
            std::printf("  inst_DX = 0x%08x  ->  %s%s\n", word,
                        isa::disasm(inst).c_str(),
                        inst.op == isa::Op::Invalid &&
                                (word & 0x7f) == 0x23
                            ? "   <-- store-shaped, invalid funct3"
                            : "");
            pos = eq + 2;
        }
    }

    // Litmus testing cannot see this bug: valid programs behave.
    std::printf("\nwhy prior litmus-based flows missed it: the buggy "
                "RTL still runs MP correctly --\n");
    vscale::Harness h(cfg);
    litmus::Test mp = litmus::standardSuite()[0];
    h.loadProgram(0, mp.threadAssembly(0));
    h.loadProgram(1, mp.threadAssembly(1));
    h.resetAndRun(150);
    std::printf("  MP on buggy RTL: r1=%u r2=%u (never the forbidden "
                "1/0)\n", h.reg(1, 2), h.reg(1, 3));
    return 0;
}
