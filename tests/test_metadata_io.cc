/**
 * @file
 * Tests for the metadata text format: parsing the shipped
 * designs/vscale.meta, round-tripping through print/parse, and
 * diagnostics for malformed files.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "rtl2uspec/metadata_io.hh"
#include "vscale/metadata.hh"

using namespace r2u;
using namespace r2u::rtl2uspec;

TEST(MetadataIo, LoadsShippedVscaleMeta)
{
    DesignMetadata md =
        loadMetadata(std::string(R2U_DESIGN_DIR) + "/vscale.meta");
    ASSERT_EQ(md.cores.size(), 4u);
    EXPECT_EQ(md.cores[0].ifr, "core_0.inst_DX");
    EXPECT_EQ(md.cores[3].imPc, "core_3.PC_IF");
    ASSERT_EQ(md.cores[0].pcrs.size(), 2u);
    EXPECT_EQ(md.cores[0].pcrs[1], "core_0.PC_WB");
    ASSERT_EQ(md.instrs.size(), 2u);
    EXPECT_EQ(md.instrs[0].name, "sw"); // id 0, as in the artifact
    EXPECT_TRUE(md.instrs[0].isWrite);
    EXPECT_EQ(md.instrs[1].match, 0x2003u);
    EXPECT_EQ(md.remote.memName, "dmem.mem");
    EXPECT_EQ(md.remote.pipelineRegs.size(), 5u);
    EXPECT_TRUE(md.exclude.count("arbiter.rr_ptr"));
    EXPECT_EQ(md.bound, 14u);
}

TEST(MetadataIo, MatchesProgrammaticFactory)
{
    DesignMetadata file =
        loadMetadata(std::string(R2U_DESIGN_DIR) + "/vscale.meta");
    DesignMetadata code =
        vscale::vscaleMetadata(vscale::Config::formal());
    EXPECT_EQ(printMetadata(file), printMetadata(code));
}

TEST(MetadataIo, RoundTrips)
{
    DesignMetadata md =
        loadMetadata(std::string(R2U_DESIGN_DIR) + "/vscale.meta");
    md.relaxPairs = false;
    md.mergeNodes = false;
    md.conflictBudget = 5000;
    std::string text = printMetadata(md);
    DesignMetadata again = parseMetadata(text);
    EXPECT_EQ(printMetadata(again), text);
    EXPECT_FALSE(again.relaxPairs);
    EXPECT_FALSE(again.mergeNodes);
    EXPECT_EQ(again.conflictBudget, 5000);
}

TEST(MetadataIo, Diagnostics)
{
    EXPECT_THROW(parseMetadata("nonsense directive"), FatalError);
    EXPECT_THROW(parseMetadata("core prefix=c."), FatalError);
    EXPECT_THROW(parseMetadata("instr name=x mask=zz match=0 "
                               "kind=read\ncore prefix=c. ifr=i "
                               "im_pc=p pcrs=a req_en=e req_wen=w"),
                 FatalError);
    EXPECT_THROW(parseMetadata(""), FatalError); // no cores
    // Duplicate keys rejected.
    EXPECT_THROW(
        parseMetadata("core prefix=a. prefix=b. ifr=i im_pc=p "
                      "pcrs=x req_en=e req_wen=w"),
        FatalError);
    // kind must be read/write/other.
    EXPECT_THROW(
        parseMetadata("core prefix=a. ifr=i im_pc=p pcrs=x req_en=e "
                      "req_wen=w\ninstr name=x mask=0 match=0 "
                      "kind=banana"),
        FatalError);
}

TEST(MetadataIo, CommentsAndBlankLines)
{
    DesignMetadata md = parseMetadata(R"(
# a comment
core prefix=c. ifr=c.i im_pc=c.p pcrs=c.q req_en=c.e req_wen=c.w

instr name=ld mask=0x7f match=0x03 kind=read   # trailing comment
)");
    EXPECT_EQ(md.cores.size(), 1u);
    EXPECT_EQ(md.instrs[0].name, "ld");
}
