/**
 * @file
 * Tests for the trust-but-verify verdict validation layer: genuine
 * counterexamples replay cleanly (simulator agreement + a fresh pinned
 * monitor solve), corrupted traces are rejected, watched memory-port
 * reads make replay meaningful on $mem designs, and the engine's
 * fault-injection seam proves the full mismatch policy — quarantine,
 * fresh re-solve, recovery when the fresh evidence stands, degradation
 * to Unknown(ValidationFailed) when it does not.
 */

#include <gtest/gtest.h>

#include <filesystem>

#include "bmc/engine.hh"
#include "bmc/journal.hh"
#include "bmc/validate.hh"
#include "sim/simulator.hh"

using namespace r2u;
namespace fs = std::filesystem;

namespace
{

/**
 * An 8-bit register "r" (init 5) loading input "in" every cycle, plus
 * a 4x8 memory "m" written at in[1:0] with in and read at r[1:0] —
 * small enough that every trace value is hand-checkable, stateful
 * enough (register + $mem) that replay has something to verify.
 */
struct ToyDesign
{
    nl::Netlist n;
    nl::CellId in = nl::kNoCell;
    nl::CellId reg = nl::kNoCell;
    nl::CellId rport = nl::kNoCell;
    nl::MemId mem = -1;
    std::unordered_map<std::string, nl::CellId> signals;
};

ToyDesign
makeToy()
{
    ToyDesign d;
    nl::Netlist &n = d.n;
    d.in = n.addInput("in", 8);
    nl::CellId one = n.addConst(Bits(1, 1));
    d.reg = n.addDff("r", d.in, one, Bits(8, 5));
    d.mem = n.addMemory("m", 4, 8);
    n.addMemWrite(d.mem, n.addSlice(d.in, 0, 2), d.in, one);
    d.rport = n.addMemRead(d.mem, n.addSlice(d.reg, 0, 2));
    n.validate();
    d.signals = {{"in", d.in}, {"r", d.reg}};
    return d;
}

constexpr unsigned kBound = 3;

/** Violated iff r == 0x2a at frame 2 — reachable via in@1 = 0x2a. */
sat::Lit
refutedProp(bmc::PropCtx &ctx)
{
    ctx.watch("r");
    ctx.watchMem("m");
    auto &cnf = ctx.cnf();
    return cnf.mkEqW(ctx.at(2, "r"), cnf.constWord(Bits(8, 0x2a)));
}

/** Violated iff r != 5 at frame 0 — impossible (concrete init). */
sat::Lit
provenProp(bmc::PropCtx &ctx)
{
    ctx.watch("r");
    auto &cnf = ctx.cnf();
    return ~cnf.mkEqW(ctx.at(0, "r"), cnf.constWord(Bits(8, 5)));
}

bmc::CheckResult
solveRefuted(const ToyDesign &d)
{
    bmc::CheckResult res = bmc::checkProperty(d.n, d.signals, {},
                                              kBound, refutedProp);
    EXPECT_EQ(res.verdict, bmc::Verdict::Refuted);
    return res;
}

} // namespace

TEST(Validate, GenuineCounterexampleReplays)
{
    ToyDesign d = makeToy();
    bmc::CheckResult res = solveRefuted(d);

    // The trace carries everything replay needs: the watched register
    // at every frame, the $mem read port at every frame, and the input
    // valuation the model chose (in@1 is forced to 0x2a by the design).
    ASSERT_EQ(res.trace.steps.size(), kBound);
    for (unsigned f = 0; f < kBound; f++) {
        EXPECT_EQ(res.trace.steps[f].signals.count("r"), 1u)
            << "frame " << f;
        EXPECT_EQ(res.trace.steps[f].memReads.count("m#0"), 1u)
            << "frame " << f;
    }
    EXPECT_EQ(res.trace.steps[0].signals.at("r"), Bits(8, 5));
    EXPECT_EQ(res.trace.steps[2].signals.at("r"), Bits(8, 0x2a));
    ASSERT_GE(res.trace.inputs.size(), 2u);
    ASSERT_EQ(res.trace.inputs[1].count("in"), 1u);
    EXPECT_EQ(res.trace.inputs[1].at("in"), Bits(8, 0x2a));

    bmc::ReplayResult rep = bmc::replayTrace(
        d.n, d.signals, {}, kBound, refutedProp, res.trace);
    EXPECT_TRUE(rep.simOk) << rep.note;
    EXPECT_TRUE(rep.monitorOk) << rep.note;
    EXPECT_TRUE(rep.ok);
    EXPECT_TRUE(rep.note.empty()) << rep.note;
}

TEST(Validate, CorruptedSignalFailsReplay)
{
    ToyDesign d = makeToy();
    bmc::CheckResult res = solveRefuted(d);

    bmc::Trace bad = res.trace;
    bad.steps[2].signals["r"] = Bits(8, 0x13);
    bmc::ReplayResult rep =
        bmc::replayTrace(d.n, d.signals, {}, kBound, refutedProp, bad);
    EXPECT_FALSE(rep.simOk);
    EXPECT_FALSE(rep.ok);
    EXPECT_NE(rep.note.find("frame 2"), std::string::npos) << rep.note;
}

TEST(Validate, CorruptedMemReadFailsReplay)
{
    // The $mem regression: a memory-port read that disagrees with the
    // simulator must fail replay just like a register would.
    ToyDesign d = makeToy();
    bmc::CheckResult res = solveRefuted(d);

    bmc::Trace bad = res.trace;
    ASSERT_EQ(bad.steps[1].memReads.count("m#0"), 1u);
    Bits old = bad.steps[1].memReads.at("m#0");
    bad.steps[1].memReads["m#0"] = Bits(8, old.toUint64() ^ 0xff);
    bmc::ReplayResult rep =
        bmc::replayTrace(d.n, d.signals, {}, kBound, refutedProp, bad);
    EXPECT_FALSE(rep.simOk);
    EXPECT_FALSE(rep.ok);
    EXPECT_NE(rep.note.find("m#0"), std::string::npos) << rep.note;
}

TEST(Validate, CorruptedInputFailsReplay)
{
    ToyDesign d = makeToy();
    bmc::CheckResult res = solveRefuted(d);

    // in@1 drives both r@2 and the frame-2 memory state: corrupting it
    // breaks the simulator comparison *and* the monitor re-check (the
    // pinned cone no longer reaches r@2 == 0x2a).
    bmc::Trace bad = res.trace;
    bad.inputs[1]["in"] = Bits(8, 0x2a ^ 0xff);
    bmc::ReplayResult rep =
        bmc::replayTrace(d.n, d.signals, {}, kBound, refutedProp, bad);
    EXPECT_FALSE(rep.simOk);
    EXPECT_FALSE(rep.monitorOk);
    EXPECT_FALSE(rep.ok);
}

TEST(Validate, MonitorRecheckRejectsNonViolatingTrace)
{
    // A trace that is a perfectly consistent execution (the simulator
    // agrees with every recorded value) but does not actually violate
    // the property: only the fresh pinned monitor solve can catch it.
    ToyDesign d = makeToy();
    bmc::Trace t;
    t.steps.resize(kBound);
    t.inputs.resize(kBound);
    sim::Simulator sim(d.n);
    sim.reset();
    for (unsigned f = 0; f < kBound; f++) {
        sim.setInput("in", Bits(8, 0));
        t.inputs[f]["in"] = Bits(8, 0);
        t.steps[f].signals["r"] = sim.value(d.reg);
        t.steps[f].memReads["m#0"] = sim.value(d.rport);
        sim.step();
    }

    bmc::ReplayResult rep =
        bmc::replayTrace(d.n, d.signals, {}, kBound, refutedProp, t);
    EXPECT_TRUE(rep.simOk) << rep.note;
    EXPECT_FALSE(rep.monitorOk);
    EXPECT_FALSE(rep.ok);
    EXPECT_NE(rep.note.find("UNSAT"), std::string::npos) << rep.note;
}

TEST(Validate, WrongLengthTraceFailsReplay)
{
    ToyDesign d = makeToy();
    bmc::Trace empty;
    bmc::ReplayResult rep = bmc::replayTrace(d.n, d.signals, {}, kBound,
                                             refutedProp, empty);
    EXPECT_FALSE(rep.ok);
    EXPECT_NE(rep.note.find("bound"), std::string::npos) << rep.note;
}

TEST(Validate, ReplayWritesVcd)
{
    ToyDesign d = makeToy();
    bmc::CheckResult res = solveRefuted(d);
    std::string vcd =
        (fs::path(::testing::TempDir()) / "replay_toy.vcd").string();
    fs::remove(vcd);
    bmc::ReplayResult rep = bmc::replayTrace(
        d.n, d.signals, {}, kBound, refutedProp, res.trace, vcd);
    EXPECT_TRUE(rep.ok) << rep.note;
    ASSERT_TRUE(fs::exists(vcd));
    EXPECT_GT(fs::file_size(vcd), 0u);
}

namespace
{

bmc::Engine
makeEngine(const ToyDesign &d, const bmc::EngineOptions &eopts)
{
    return bmc::Engine(d.n, d.signals, {}, kBound, eopts);
}

bmc::Query
toyQuery(const std::string &name, const bmc::PropertyFn &prop)
{
    bmc::Query q;
    q.name = name;
    q.bound = kBound;
    q.prop = prop;
    return q;
}

} // namespace

TEST(ValidateEngine, ReplayValidatesAndDumpsVcd)
{
    ToyDesign d = makeToy();
    std::string vcd_dir =
        (fs::path(::testing::TempDir()) / "toy_vcds").string();
    fs::remove_all(vcd_dir);

    bmc::EngineOptions eopts;
    eopts.jobs = 1;
    eopts.validate = bmc::ValidateMode::Replay;
    eopts.cexVcdDir = vcd_dir;
    bmc::Engine engine = makeEngine(d, eopts);
    engine.enqueue(toyQuery("toy cex", refutedProp));
    engine.enqueue(toyQuery("toy proof", provenProp));
    auto res = engine.drain();
    ASSERT_EQ(res.size(), 2u);

    EXPECT_EQ(res[0].verdict, bmc::Verdict::Refuted);
    EXPECT_TRUE(res[0].validated) << res[0].validationNote;
    EXPECT_EQ(res[0].replays, 1u);
    EXPECT_EQ(res[0].validationMismatches, 0u);

    // Replay mode never re-solves proofs.
    EXPECT_EQ(res[1].verdict, bmc::Verdict::Proven);
    EXPECT_FALSE(res[1].validated);
    EXPECT_EQ(res[1].proofRechecks, 0u);

    EXPECT_EQ(engine.stats().replays, 1u);
    EXPECT_EQ(engine.stats().validationMismatches, 0u);
    EXPECT_EQ(engine.stats().validationFailures, 0u);

    // Deterministic per-query VCD filename (name sanitized, bound
    // suffix) under the requested directory.
    fs::path vcd = fs::path(vcd_dir) / "cex_toy_cex_b3.vcd";
    ASSERT_TRUE(fs::exists(vcd)) << vcd;
    EXPECT_GT(fs::file_size(vcd), 0u);
}

TEST(ValidateEngine, FullModeRechecksEveryProof)
{
    ToyDesign d = makeToy();
    bmc::EngineOptions eopts;
    eopts.jobs = 1;
    eopts.validate = bmc::ValidateMode::Full;
    bmc::Engine engine = makeEngine(d, eopts);
    engine.enqueue(toyQuery("p0", provenProp));
    engine.enqueue(toyQuery("p1", provenProp));
    auto res = engine.drain();
    ASSERT_EQ(res.size(), 2u);
    for (const auto &r : res) {
        EXPECT_EQ(r.verdict, bmc::Verdict::Proven);
        EXPECT_TRUE(r.validated);
        EXPECT_EQ(r.proofRechecks, 1u);
    }
    EXPECT_EQ(engine.stats().proofRechecks, 2u);
    EXPECT_EQ(engine.stats().validationMismatches, 0u);
}

TEST(ValidateEngine, TransientTraceCorruptionRecovers)
{
    // Fault injection at the Primary stage only: the first trace is
    // corrupted, the quarantine re-solve is honest. The policy must
    // catch the mismatch, re-solve fresh, replay the fresh trace, and
    // adopt it — verdict stays Refuted, with the recovery on record.
    ToyDesign d = makeToy();
    bmc::EngineOptions eopts;
    eopts.jobs = 1;
    eopts.validate = bmc::ValidateMode::Replay;
    eopts.faultHook = [](const bmc::Query &, bmc::CheckResult &r,
                         bmc::SolveStage stage) {
        if (stage == bmc::SolveStage::Primary &&
            r.verdict == bmc::Verdict::Refuted &&
            r.trace.steps.size() == kBound)
            r.trace.steps[2].signals["r"] = Bits(8, 0x13);
    };
    bmc::Engine engine = makeEngine(d, eopts);
    engine.enqueue(toyQuery("transient", refutedProp));
    auto res = engine.drain();
    ASSERT_EQ(res.size(), 1u);

    EXPECT_EQ(res[0].verdict, bmc::Verdict::Refuted);
    EXPECT_TRUE(res[0].validated);
    EXPECT_EQ(res[0].validationMismatches, 1u);
    EXPECT_EQ(res[0].replays, 2u);
    EXPECT_NE(res[0].validationNote.find("quarantine recovery"),
              std::string::npos)
        << res[0].validationNote;
    // The adopted trace is the fresh, honest one.
    ASSERT_EQ(res[0].trace.steps.size(), kBound);
    EXPECT_EQ(res[0].trace.steps[2].signals.at("r"), Bits(8, 0x2a));

    EXPECT_EQ(engine.stats().validationMismatches, 1u);
    EXPECT_EQ(engine.stats().validationFailures, 0u);
}

TEST(ValidateEngine, PersistentTraceCorruptionDegradesToUnknown)
{
    // The same corruption applied at *every* stage: the quarantine
    // re-solve cannot produce consistent evidence either, so the
    // verdict must degrade to Unknown(ValidationFailed) — never ship a
    // definite verdict that does not stand on its own.
    ToyDesign d = makeToy();
    bmc::EngineOptions eopts;
    eopts.jobs = 1;
    eopts.validate = bmc::ValidateMode::Replay;
    eopts.faultHook = [](const bmc::Query &, bmc::CheckResult &r,
                         bmc::SolveStage) {
        if (r.verdict == bmc::Verdict::Refuted &&
            r.trace.steps.size() == kBound)
            r.trace.steps[2].signals["r"] = Bits(8, 0x13);
    };
    bmc::Engine engine = makeEngine(d, eopts);
    engine.enqueue(toyQuery("persistent", refutedProp));
    auto res = engine.drain();
    ASSERT_EQ(res.size(), 1u);

    EXPECT_EQ(res[0].verdict, bmc::Verdict::Unknown);
    EXPECT_EQ(res[0].source, bmc::VerdictSource::ValidationFailed);
    EXPECT_FALSE(res[0].validated);
    EXPECT_TRUE(res[0].trace.steps.empty());
    // The diagnostic bundle: what failed, the primary verdict, CNF
    // stats, and the quarantined trace.
    EXPECT_NE(res[0].validationNote.find("validation failure"),
              std::string::npos);
    EXPECT_NE(res[0].validationNote.find("cnf:"), std::string::npos);
    EXPECT_NE(res[0].validationNote.find("quarantined trace"),
              std::string::npos);

    EXPECT_GE(res[0].validationMismatches, 1u);
    EXPECT_EQ(engine.stats().validationFailures, 1u);
    EXPECT_EQ(engine.stats().unknowns, 1u);
}

TEST(ValidateEngine, ForgedProvenCaughtByProofRecheck)
{
    // A Proven verdict forged over an actually-refutable property: the
    // Full-mode re-check finds the counterexample, replays it, and the
    // refutation wins over the forged proof.
    ToyDesign d = makeToy();
    bmc::EngineOptions eopts;
    eopts.jobs = 1;
    eopts.validate = bmc::ValidateMode::Full;
    eopts.faultHook = [](const bmc::Query &, bmc::CheckResult &r,
                         bmc::SolveStage stage) {
        if (stage == bmc::SolveStage::Primary) {
            r.verdict = bmc::Verdict::Proven;
            r.trace = bmc::Trace{};
        }
    };
    bmc::Engine engine = makeEngine(d, eopts);
    engine.enqueue(toyQuery("forged_proof", refutedProp));
    auto res = engine.drain();
    ASSERT_EQ(res.size(), 1u);

    EXPECT_EQ(res[0].verdict, bmc::Verdict::Refuted);
    EXPECT_TRUE(res[0].validated);
    EXPECT_EQ(res[0].proofRechecks, 1u);
    EXPECT_EQ(res[0].validationMismatches, 1u);
    EXPECT_NE(res[0].validationNote.find("proof re-check refuted"),
              std::string::npos)
        << res[0].validationNote;
    ASSERT_EQ(res[0].trace.steps.size(), kBound);
    EXPECT_EQ(res[0].trace.steps[2].signals.at("r"), Bits(8, 0x2a));
}

TEST(ValidateEngine, ForgedRefutationDegradesToUnknown)
{
    // A Refuted verdict forged over a genuinely proven property: the
    // empty trace fails replay, the quarantine re-solve answers Proven
    // (disagreeing with the forged primary), and the only sound exit
    // is Unknown(ValidationFailed).
    ToyDesign d = makeToy();
    bmc::EngineOptions eopts;
    eopts.jobs = 1;
    eopts.validate = bmc::ValidateMode::Replay;
    eopts.faultHook = [](const bmc::Query &, bmc::CheckResult &r,
                         bmc::SolveStage stage) {
        if (stage == bmc::SolveStage::Primary)
            r.verdict = bmc::Verdict::Refuted;
    };
    bmc::Engine engine = makeEngine(d, eopts);
    engine.enqueue(toyQuery("forged_cex", provenProp));
    auto res = engine.drain();
    ASSERT_EQ(res.size(), 1u);

    EXPECT_EQ(res[0].verdict, bmc::Verdict::Unknown);
    EXPECT_EQ(res[0].source, bmc::VerdictSource::ValidationFailed);
    EXPECT_NE(res[0].validationNote.find(
                  "quarantine re-solve answered proven"),
              std::string::npos)
        << res[0].validationNote;
    EXPECT_EQ(engine.stats().validationFailures, 1u);
}

TEST(ValidateEngine, JournalRoundTripSkipsSolvedQueries)
{
    ToyDesign d = makeToy();
    std::string path =
        (fs::path(::testing::TempDir()) / "engine_journal.bin")
            .string();
    fs::remove(path);
    constexpr uint64_t kHash = 77;

    // A deliberately under-budgeted query that must come back Unknown:
    // Unknowns are never journaled (they may resolve under a bigger
    // budget) and must be re-solved on resume.
    auto hardQuery = [] {
        bmc::Query q;
        q.name = "php";
        q.bound = kBound;
        q.conflictBudget = 1;
        q.prop = [](bmc::PropCtx &ctx) {
            auto &cnf = ctx.cnf();
            std::vector<std::vector<sat::Lit>> p(7);
            for (int i = 0; i < 7; i++)
                for (int j = 0; j < 6; j++)
                    p[i].push_back(
                        ctx.rigid("p_" + std::to_string(i) + "_" +
                                      std::to_string(j),
                                  1)[0]);
            for (int i = 0; i < 7; i++) {
                sat::Lit any = cnf.falseLit();
                for (int j = 0; j < 6; j++)
                    any = cnf.mkOr(any, p[i][j]);
                ctx.assume(any);
            }
            for (int j = 0; j < 6; j++)
                for (int i1 = 0; i1 < 7; i1++)
                    for (int i2 = i1 + 1; i2 < 7; i2++)
                        ctx.assume(cnf.mkOr(~p[i1][j], ~p[i2][j]));
            return cnf.trueLit();
        };
        return q;
    };

    {
        bmc::Journal j;
        j.open(path, kHash, /*resume=*/false);
        bmc::EngineOptions eopts;
        eopts.jobs = 1;
        eopts.validate = bmc::ValidateMode::Replay;
        eopts.journal = &j;
        bmc::Engine engine = makeEngine(d, eopts);
        engine.enqueue(toyQuery("toy cex", refutedProp));
        engine.enqueue(toyQuery("toy proof", provenProp));
        engine.enqueue(hardQuery());
        auto res = engine.drain();
        ASSERT_EQ(res.size(), 3u);
        EXPECT_TRUE(res[0].journaled);
        EXPECT_TRUE(res[1].journaled);
        EXPECT_EQ(res[2].verdict, bmc::Verdict::Unknown);
        EXPECT_FALSE(res[2].journaled);
        EXPECT_EQ(j.numAppended(), 2u);
        EXPECT_EQ(engine.stats().journalAppends, 2u);
    }

    // Resume at a different parallelism: the two definite verdicts
    // come from the journal (no solving, no replaying), the Unknown is
    // re-solved from scratch.
    bmc::Journal j;
    j.open(path, kHash, /*resume=*/true);
    ASSERT_EQ(j.numLoaded(), 2u);
    bmc::EngineOptions eopts;
    eopts.jobs = 2;
    eopts.validate = bmc::ValidateMode::Replay;
    eopts.journal = &j;
    bmc::Engine engine = makeEngine(d, eopts);
    engine.enqueue(toyQuery("toy cex", refutedProp));
    engine.enqueue(toyQuery("toy proof", provenProp));
    engine.enqueue(hardQuery());
    auto res = engine.drain();
    ASSERT_EQ(res.size(), 3u);

    EXPECT_EQ(res[0].verdict, bmc::Verdict::Refuted);
    EXPECT_TRUE(res[0].fromJournal);
    EXPECT_TRUE(res[0].validated);
    EXPECT_TRUE(res[0].trace.steps.empty());
    EXPECT_NE(res[0].validationNote.find("resumed from journal"),
              std::string::npos);
    EXPECT_EQ(res[1].verdict, bmc::Verdict::Proven);
    EXPECT_TRUE(res[1].fromJournal);
    EXPECT_EQ(res[2].verdict, bmc::Verdict::Unknown);
    EXPECT_FALSE(res[2].fromJournal);

    EXPECT_EQ(engine.stats().journalHits, 2u);
    EXPECT_EQ(engine.stats().replays, 0u);
}
