/**
 * @file
 * End-to-end tests of the rtl2uspec synthesis procedure on the
 * multi-V-scale: DFG extraction and stage labels, per-instruction node
 * membership (Fig. 3c), the synthesized µspec model's structure, its
 * round-trip through the DSL, MCM verification of the synthesized
 * model on litmus tests, and §6.1 bug discovery on the BUGGY variant.
 *
 * The synthesis run is shared across tests (it evaluates all SVAs once,
 * like the paper's one-time model synthesis).
 */

#include <gtest/gtest.h>

#include "check/check.hh"
#include "dfg/dfg.hh"
#include "rtl2uspec/synthesis.hh"
#include "vscale/metadata.hh"
#include "vscale/vscale.hh"

using namespace r2u;
using namespace r2u::rtl2uspec;

namespace
{

vscale::Config
formalConfig()
{
    vscale::Config cfg = vscale::Config::formal();
    cfg.imemWords = 16; // keeps per-SVA CNFs small
    return cfg;
}

const SynthesisResult &
sharedSynthesis()
{
    static SynthesisResult result = [] {
        auto design = vscale::elaborateVscale(formalConfig());
        auto md = vscale::vscaleMetadata(formalConfig());
        return synthesize(design, md);
    }();
    return result;
}

} // namespace

TEST(Dfg, VscaleStageLabels)
{
    auto design = vscale::elaborateVscale(formalConfig());
    auto d = dfg::FullDesignDfg::build(*design.netlist);
    dfg::NodeId im_pc = d.nodeByName("core_0.PC_IF");
    dfg::NodeId ifr = d.nodeByName("core_0.inst_DX");
    ASSERT_NE(im_pc, dfg::kNoNode);
    ASSERT_NE(ifr, dfg::kNoNode);

    auto labels = dfg::labelStages(d, im_pc, ifr);
    EXPECT_EQ(labels.stage[ifr], 0);
    EXPECT_EQ(labels.stage[d.nodeByName("core_0.PC_DX")], 0);
    EXPECT_EQ(labels.stage[d.nodeByName("core_0.PC_WB")], 1);
    EXPECT_EQ(labels.stage[d.nodeByName("core_0.wdata_WB")], 1);
    EXPECT_EQ(labels.stage[d.nodeByName("core_0.regfile")], 2);
    EXPECT_EQ(labels.stage[d.nodeByName("dmem.mem")], 2);
    // Front-end filtering: IM_PC itself is stage -1... it is the BFS
    // root, stage -(distance of IFR) -> filtered.
    EXPECT_FALSE(labels.included(im_pc));
    // Instruction memories are unreachable from IM_PC (never written).
    EXPECT_FALSE(labels.included(d.nodeByName("imem_0.mem")));
}

TEST(Dfg, VscaleParentEdges)
{
    auto design = vscale::elaborateVscale(formalConfig());
    auto d = dfg::FullDesignDfg::build(*design.netlist);
    auto has_parent = [&](const char *node, const char *parent) {
        dfg::NodeId n = d.nodeByName(node);
        dfg::NodeId p = d.nodeByName(parent);
        EXPECT_NE(n, dfg::kNoNode) << node;
        EXPECT_NE(p, dfg::kNoNode) << parent;
        for (dfg::NodeId q : d.parents(n))
            if (q == p)
                return true;
        return false;
    };
    EXPECT_TRUE(has_parent("core_0.inst_DX", "core_0.PC_IF"));
    EXPECT_TRUE(has_parent("core_0.inst_DX", "imem_0.mem"));
    EXPECT_TRUE(has_parent("core_0.wdata_WB", "core_0.inst_DX"));
    EXPECT_TRUE(has_parent("core_0.regfile", "core_0.alu_out_WB"));
    EXPECT_TRUE(has_parent("core_0.regfile", "dmem.mem"));
    EXPECT_TRUE(has_parent("dmem.mem", "dmem.req_wdata_q"));
    EXPECT_TRUE(has_parent("dmem.req_wdata_q", "core_0.inst_DX"));
    // Core 1's fetch path is disjoint from core 0's.
    EXPECT_FALSE(has_parent("core_0.inst_DX", "imem_1.mem"));
    EXPECT_FALSE(has_parent("core_0.inst_DX", "core_1.regfile"));
}

TEST(Rtl2uspec, AllSvasResolvedAndNoBugsOnFixedDesign)
{
    const SynthesisResult &r = sharedSynthesis();
    EXPECT_TRUE(r.bugs.empty()) << r.bugs[0];
    int unknown = 0;
    for (const auto &sva : r.svas) {
        EXPECT_NE(sva.verdict, bmc::Verdict::Unknown) << sva.name;
        unknown += sva.verdict == bmc::Verdict::Unknown;
    }
    EXPECT_EQ(unknown, 0) << "100% proof coverage expected (§1)";
    EXPECT_GT(r.svas.size(), 25u);
    EXPECT_GT(r.proofSeconds, 0.0);
}

TEST(Rtl2uspec, MembershipMatchesFig3c)
{
    const SynthesisResult &r = sharedSynthesis();
    auto has = [&](const char *instr, const char *elem) {
        const auto &nodes = r.instrNodes.at(instr);
        for (const auto &n : nodes)
            if (n == elem)
                return true;
        return false;
    };
    // Both lw and sw update the IFR, the WB staging registers
    // (including wdata, per Fig. 3c), and the request interface.
    for (const char *op : {"lw", "sw"}) {
        EXPECT_TRUE(has(op, "core_0.inst_DX")) << op;
        EXPECT_TRUE(has(op, "core_0.wdata_WB")) << op;
        EXPECT_TRUE(has(op, "core_0.lw_in_WB")) << op;
        EXPECT_TRUE(has(op, "core_0.sw_in_WB")) << op;
        EXPECT_TRUE(has(op, "core_0.alu_out_WB")) << op;
        EXPECT_TRUE(has(op, "dmem.req_wdata_q")) << op;
    }
    // Only lw updates the regfile; only sw updates the memory.
    EXPECT_TRUE(has("lw", "core_0.regfile"));
    EXPECT_FALSE(has("sw", "core_0.regfile"));
    EXPECT_TRUE(has("sw", "dmem.mem"));
    EXPECT_FALSE(has("lw", "dmem.mem"));
}

TEST(Rtl2uspec, ModelStructure)
{
    const SynthesisResult &r = sharedSynthesis();
    const uspec::Model &m = r.model;
    EXPECT_GE(m.stageNames.size(), 5u);
    EXPECT_EQ(m.stageNames[0], "IF_");
    EXPECT_EQ(m.memAccessStage, "mem_if");
    EXPECT_EQ(m.memStage, "dmem_mem");

    auto find_axiom = [&](const std::string &name) -> const uspec::Axiom * {
        for (const auto &ax : m.axioms)
            if (ax.name == name)
                return &ax;
        return nullptr;
    };
    ASSERT_NE(find_axiom("sw_path"), nullptr);
    ASSERT_NE(find_axiom("lw_path"), nullptr);
    ASSERT_NE(find_axiom("PO_fetch"), nullptr);
    ASSERT_NE(find_axiom("PO_mem_if"), nullptr);
    ASSERT_NE(find_axiom("Dataflow_mem"), nullptr);
    ASSERT_NE(find_axiom("Access_serialized"), nullptr);
    EXPECT_TRUE(find_axiom("Access_serialized")->isEitherOrdering());

    // lw path must route IF_ -> ... -> regfile through the interface.
    const uspec::Axiom *lw = find_axiom("lw_path");
    int regfile_row = m.locOf("regfile");
    ASSERT_GE(regfile_row, 0);
    bool lands_in_regfile = false;
    for (const auto &e : lw->edgeAlternatives[0])
        lands_in_regfile |= e.dst.loc == regfile_row;
    EXPECT_TRUE(lands_in_regfile);
}

TEST(Rtl2uspec, ModelRoundTripsThroughDsl)
{
    const SynthesisResult &r = sharedSynthesis();
    std::string printed = r.model.print();
    uspec::Model parsed = uspec::Model::parse(printed);
    EXPECT_EQ(parsed.print(), printed);
    EXPECT_EQ(parsed.axioms.size(), r.model.axioms.size());
}

TEST(Rtl2uspec, ReportMentionsAllCategories)
{
    const SynthesisResult &r = sharedSynthesis();
    std::string report = r.report();
    for (const char *cat : {"intra", "spatial", "temporal", "dataflow"})
        EXPECT_NE(report.find(cat), std::string::npos) << cat;
    EXPECT_FALSE(r.fullDfgDot.empty());
    EXPECT_FALSE(r.instrDfgDots.at("lw").empty());
}

TEST(Rtl2uspec, SynthesizedModelVerifiesCoreLitmusTests)
{
    const SynthesisResult &r = sharedSynthesis();
    auto suite = litmus::standardSuite();
    // The full 56-test suite: milliseconds per test on the model.
    for (size_t i = 0; i < suite.size(); i++) {
        auto res = check::checkTest(r.model, suite[i]);
        EXPECT_TRUE(res.pass) << res.summary();
        EXPECT_FALSE(res.interestingObservable) << res.summary();
        EXPECT_TRUE(res.tight)
            << "over-restrictive model: " << res.summary();
    }
}

TEST(Rtl2uspec, BuggyDesignTriggersBugDiscovery)
{
    vscale::Config cfg = formalConfig();
    cfg.buggy = true;
    auto design = vscale::elaborateVscale(cfg);
    auto md = vscale::vscaleMetadata(cfg);
    md.bound = 6; // the bug shows up within a few cycles
    SynthesisResult r = synthesize(design, md);
    ASSERT_FALSE(r.bugs.empty());
    EXPECT_NE(r.bugs[0].find("§6.1"), std::string::npos);
    // The counterexample trace shows the offending encoding.
    EXPECT_NE(r.bugs[0].find("inst_DX"), std::string::npos);
}

#ifdef R2U_SOURCE_DIR
#include "common/strutil.hh"

TEST(Rtl2Uspec, NoVerdictConsumerTreatsUnknownAsDefinite)
{
    // Grep-proof audit of the Unknown-degradation policy: every
    // mention of a Verdict constant in synthesis.cc must be a `case`
    // label of an enum-exhaustive switch. Boolean comparisons like
    // `verdict != Verdict::Refuted` are how Unknown used to silently
    // flip to Proven (and `!= Proven` to Refuted); a switch forces the
    // author to say what Unknown means at every consumer.
    std::string src =
        readFile(std::string(R2U_SOURCE_DIR) +
                 "/src/rtl2uspec/synthesis.cc");
    ASSERT_FALSE(src.empty());

    size_t line_no = 0, mentions = 0, pos = 0;
    while (pos <= src.size()) {
        size_t eol = src.find('\n', pos);
        if (eol == std::string::npos)
            eol = src.size();
        std::string line = src.substr(pos, eol - pos);
        line_no++;
        for (const char *name :
             {"Verdict::Proven", "Verdict::Refuted",
              "Verdict::Unknown"}) {
            if (line.find(name) == std::string::npos)
                continue;
            mentions++;
            EXPECT_NE(line.find("case "), std::string::npos)
                << "synthesis.cc:" << line_no
                << " consumes a Verdict outside a switch: " << line;
        }
        pos = eol + 1;
    }
    // The audit only means something if the file still names verdicts.
    EXPECT_GT(mentions, 0u);
}
#endif // R2U_SOURCE_DIR
