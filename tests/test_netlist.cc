/**
 * @file
 * Tests for the netlist IR and the cycle-accurate simulator: builder
 * API widths, topological ordering / combinational cycle detection,
 * register and memory semantics, and stats reporting.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "netlist/netlist.hh"
#include "sim/simulator.hh"

using namespace r2u;
using namespace r2u::nl;

TEST(Netlist, BuilderWidths)
{
    Netlist n;
    CellId a = n.addInput("a", 8);
    CellId b = n.addInput("b", 8);
    CellId sum = n.addBinary(CellKind::Add, a, b, "sum");
    EXPECT_EQ(n.cell(sum).width, 8u);
    CellId eq = n.addBinary(CellKind::Eq, a, b);
    EXPECT_EQ(n.cell(eq).width, 1u);
    CellId cat = n.addConcat({a, b});
    EXPECT_EQ(n.cell(cat).width, 16u);
    CellId sl = n.addSlice(cat, 4, 8);
    EXPECT_EQ(n.cell(sl).width, 8u);
    CellId zx = n.addExt(CellKind::Zext, a, 12);
    EXPECT_EQ(n.cell(zx).width, 12u);
    n.validate();
}

TEST(Netlist, FindByName)
{
    Netlist n;
    CellId a = n.addInput("top.a", 4);
    EXPECT_EQ(n.findByName("top.a"), a);
    EXPECT_EQ(n.findByName("nope"), kNoCell);
    auto hits = n.findBySuffix(".a");
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0], a);
}

TEST(Netlist, CombinationalCycleDetected)
{
    Netlist n;
    CellId in = n.addInput("in", 1);
    // Build a <- or(b, in); b <- and(a, in): a real cycle. We need to
    // patch inputs after creation to create the loop.
    CellId a = n.addBinary(CellKind::Or, in, in, "a");
    CellId b = n.addBinary(CellKind::And, a, in, "b");
    n.cell(a).inputs[0] = b;
    EXPECT_THROW(n.topoOrder(), FatalError);
}

TEST(Netlist, DffBreaksCycle)
{
    Netlist n;
    CellId one = n.addConst(Bits(1, 1));
    CellId c1 = n.addConst(Bits(4, 1));
    CellId q = n.addDff("q", c1, one, Bits(4, 0));
    CellId next = n.addBinary(CellKind::Add, q, c1, "next");
    n.cell(q).inputs[0] = next; // q' = q + 1: fine, dff breaks the loop
    n.validate();

    sim::Simulator s(n);
    EXPECT_EQ(s.value(q).toUint64(), 0u);
    s.step();
    EXPECT_EQ(s.value(q).toUint64(), 1u);
    s.run(14);
    EXPECT_EQ(s.value(q).toUint64(), 15u);
    s.step();
    EXPECT_EQ(s.value(q).toUint64(), 0u); // wraps at width 4
}

TEST(Sim, DffEnableHolds)
{
    Netlist n;
    CellId en = n.addInput("en", 1);
    CellId d = n.addInput("d", 8);
    CellId q = n.addDff("q", d, en, Bits(8, 0x55));
    n.validate();

    sim::Simulator s(n);
    EXPECT_EQ(s.value(q).toUint64(), 0x55u); // power-on value
    s.setInput("d", Bits(8, 0xaa));
    s.setInput("en", Bits(1, 0));
    s.step();
    EXPECT_EQ(s.value(q).toUint64(), 0x55u); // held
    s.setInput("en", Bits(1, 1));
    s.step();
    EXPECT_EQ(s.value(q).toUint64(), 0xaau); // loaded
}

TEST(Sim, MemoryReadBeforeWrite)
{
    Netlist n;
    MemId m = n.addMemory("m", 4, 8);
    CellId waddr = n.addInput("waddr", 2);
    CellId wdata = n.addInput("wdata", 8);
    CellId wen = n.addInput("wen", 1);
    n.addMemWrite(m, waddr, wdata, wen);
    CellId raddr = n.addInput("raddr", 2);
    CellId rdata = n.addMemRead(m, raddr, "rdata");
    n.validate();

    sim::Simulator s(n);
    s.setInput("waddr", Bits(2, 1));
    s.setInput("wdata", Bits(8, 0x7e));
    s.setInput("wen", Bits(1, 1));
    s.setInput("raddr", Bits(2, 1));
    // Combinational read sees pre-edge contents.
    EXPECT_EQ(s.value(rdata).toUint64(), 0u);
    s.step();
    EXPECT_EQ(s.value(rdata).toUint64(), 0x7eu);
    EXPECT_EQ(s.memWord(m, 1).toUint64(), 0x7eu);
}

TEST(Sim, MemoryWritePortPriority)
{
    Netlist n;
    MemId m = n.addMemory("m", 4, 8);
    CellId addr = n.addInput("addr", 2);
    CellId one = n.addConst(Bits(1, 1));
    CellId d1 = n.addConst(Bits(8, 0x11));
    CellId d2 = n.addConst(Bits(8, 0x22));
    n.addMemWrite(m, addr, d1, one);
    n.addMemWrite(m, addr, d2, one); // later port wins
    n.validate();

    sim::Simulator s(n);
    s.setInput("addr", Bits(2, 3));
    s.step();
    EXPECT_EQ(s.memWord(m, 3).toUint64(), 0x22u);
}

TEST(Sim, MuxAndCompare)
{
    Netlist n;
    CellId a = n.addInput("a", 8);
    CellId b = n.addInput("b", 8);
    CellId lt = n.addBinary(CellKind::Ult, a, b, "lt");
    CellId mn = n.addMux(lt, a, b, "min");
    n.validate();

    sim::Simulator s(n);
    s.setInput("a", Bits(8, 5));
    s.setInput("b", Bits(8, 9));
    EXPECT_EQ(s.value(mn).toUint64(), 5u);
    s.setInput("a", Bits(8, 200));
    EXPECT_EQ(s.value(mn).toUint64(), 9u);
}

TEST(Sim, ShiftCells)
{
    Netlist n;
    CellId a = n.addInput("a", 8);
    CellId sh = n.addInput("sh", 4);
    CellId l = n.addBinary(CellKind::Shl, a, sh, "l");
    CellId r = n.addBinary(CellKind::Lshr, a, sh, "r");
    CellId ar = n.addBinary(CellKind::Ashr, a, sh, "ar");
    n.validate();

    sim::Simulator s(n);
    s.setInput("a", Bits(8, 0x81));
    s.setInput("sh", Bits(4, 1));
    EXPECT_EQ(s.value(l).toUint64(), 0x02u);
    EXPECT_EQ(s.value(r).toUint64(), 0x40u);
    EXPECT_EQ(s.value(ar).toUint64(), 0xc0u);
    // Oversized shift amount clears (logical) / saturates (arith).
    s.setInput("sh", Bits(4, 9));
    EXPECT_EQ(s.value(l).toUint64(), 0u);
    EXPECT_EQ(s.value(r).toUint64(), 0u);
    EXPECT_EQ(s.value(ar).toUint64(), 0xffu);
}

TEST(Netlist, StatsCounts)
{
    Netlist n;
    CellId a = n.addInput("a", 8);
    CellId one = n.addConst(Bits(1, 1));
    n.addDff("q1", a, one, Bits(8, 0));
    n.addDff("q2", a, one, Bits(8, 0));
    n.addMemory("m", 16, 8);
    NetlistStats st = n.stats();
    EXPECT_EQ(st.registers, 2u);
    EXPECT_EQ(st.flopBits, 16u);
    EXPECT_EQ(st.memories, 1u);
    EXPECT_EQ(st.memBits, 128u);
    EXPECT_EQ(st.inputs, 1u);
}

TEST(Sim, PokeDffAndMem)
{
    Netlist n;
    CellId one = n.addConst(Bits(1, 1));
    CellId zero8 = n.addConst(Bits(8, 0));
    CellId q = n.addDff("q", zero8, one, Bits(8, 0));
    MemId m = n.addMemory("m", 4, 8);
    CellId raddr = n.addInput("raddr", 2);
    CellId rd = n.addMemRead(m, raddr, "rd");
    n.validate();

    sim::Simulator s(n);
    s.pokeDff(q, Bits(8, 0x42));
    EXPECT_EQ(s.value(q).toUint64(), 0x42u);
    s.pokeMem(m, 2, Bits(8, 0x99));
    s.setInput("raddr", Bits(2, 2));
    EXPECT_EQ(s.value(rd).toUint64(), 0x99u);
    s.reset();
    EXPECT_EQ(s.value(q).toUint64(), 0u);
    EXPECT_EQ(s.value(rd).toUint64(), 0u);
}
