/**
 * @file
 * Campaign-engine tests: sequential-vs-parallel and pruned-vs-
 * exhaustive verdict identity over the full standard suite (against a
 * from-scratch seed-style enumerator), determinism of repeated
 * parallel runs, outcome-level pruning accounting, fail-fast, the
 * per-execution-vs-precomputed instance-table equivalence, and the
 * three regression fixes: an SC-allowed interesting outcome is not a
 * failure, per-test DOT collection/filenames, and an empty execution
 * solving cleanly (no out-of-bounds binding; runs under the ASan CI
 * job).
 */

#include <gtest/gtest.h>

#include <set>

#include "check/campaign.hh"
#include "check/check.hh"
#include "litmus/litmus.hh"
#include "mcm/sc_ref.hh"
#include "uhb/uhb.hh"
#include "uspec/uspec.hh"

using namespace r2u;
using LTest = litmus::Test;

namespace
{

/** Hand-written SC model of the multi-V-scale (as in
 *  designs/vscale_sc.uarch). */
const char *kScModel = R"(
StageName 0 "IF_".
StageName 1 "WB_grp".
StageName 2 "mem_if".
StageName 3 "mem".
StageName 4 "regfile".
MemoryAccessStage "mem_if".
MemoryStage "mem".
Axiom "R_path":
forall microop "i0",
IsAnyRead i0 =>
AddEdges [((i0, IF_), (i0, WB_grp));
          ((i0, IF_), (i0, mem_if));
          ((i0, mem_if), (i0, regfile));
          ((i0, WB_grp), (i0, regfile))].
Axiom "W_path":
forall microop "i0",
IsAnyWrite i0 =>
AddEdges [((i0, IF_), (i0, WB_grp));
          ((i0, IF_), (i0, mem_if));
          ((i0, mem_if), (i0, mem))].
Axiom "PO_fetch":
forall microops "i0", "i1",
SameCore i0 i1 => ProgramOrder i0 i1 =>
AddEdge ((i0, IF_), (i1, IF_)).
Axiom "PO_wb":
forall microops "i0", "i1",
SameCore i0 i1 => ProgramOrder i0 i1 =>
AddEdge ((i0, WB_grp), (i1, WB_grp)).
Axiom "PO_mem_if":
forall microops "i0", "i1",
SameCore i0 i1 => ProgramOrder i0 i1 =>
AddEdge ((i0, mem_if), (i1, mem_if)).
Axiom "Dataflow_mem":
forall microops "i0", "i1",
IsAnyWrite i0 => IsAnyRead i1 => SamePA i0 i1 => SameData i0 i1 =>
NoWritesInBetween i0 i1 =>
AddEdge ((i0, mem), (i1, regfile)).
)";

const uspec::Model &
scModel()
{
    static uspec::Model m = uspec::Model::parse(kScModel);
    return m;
}

/** The SC model without PO_mem_if: too weak to forbid SB. */
const uspec::Model &
weakModel()
{
    static uspec::Model m = [] {
        std::string text = kScModel;
        size_t pos = text.find("Axiom \"PO_mem_if\"");
        size_t end = text.find("Axiom \"Dataflow_mem\"");
        return uspec::Model::parse(text.substr(0, pos) +
                                   text.substr(end));
    }();
    return m;
}

/** Seed-style reference: enumerate + solve everything, no campaign. */
std::vector<std::string>
referenceOutcomes(const uspec::Model &model, const LTest &test)
{
    std::set<mcm::Outcome> observable;
    check::forEachExecution(test, [&](const uhb::Execution &exec) {
        if (uhb::solve(model, exec).observable)
            observable.insert(check::outcomeOf(test, exec));
    });
    std::vector<std::string> out;
    for (const mcm::Outcome &o : observable)
        out.push_back(o.toString());
    return out;
}

void
expectSameVerdicts(const check::TestResult &a, const check::TestResult &b)
{
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.outcomes, b.outcomes) << a.name;
    EXPECT_EQ(a.pass, b.pass) << a.name;
    EXPECT_EQ(a.tight, b.tight) << a.name;
    EXPECT_EQ(a.interestingObservable, b.interestingObservable)
        << a.name;
    EXPECT_EQ(a.interestingScAllowed, b.interestingScAllowed) << a.name;
    EXPECT_EQ(a.violations, b.violations) << a.name;
}

} // namespace

TEST(Campaign, VerdictIdentityAcrossJobsAndPruningFullSuite)
{
    auto suite = litmus::standardSuite();
    check::CampaignOptions seq_ex, par_ex, seq_pr, par_pr;
    seq_ex.jobs = 1, seq_ex.prune = false;
    par_ex.jobs = 4, par_ex.prune = false;
    seq_pr.jobs = 1, seq_pr.prune = true;
    par_pr.jobs = 4, par_pr.prune = true;
    auto a = check::runCampaign(scModel(), suite, seq_ex);
    auto b = check::runCampaign(scModel(), suite, par_ex);
    auto c = check::runCampaign(scModel(), suite, seq_pr);
    auto d = check::runCampaign(scModel(), suite, par_pr);
    ASSERT_EQ(a.tests.size(), suite.size());
    for (size_t i = 0; i < suite.size(); i++) {
        // The sequential exhaustive campaign matches a from-scratch
        // seed-style enumerate-and-solve sweep...
        EXPECT_EQ(a.tests[i].outcomes,
                  referenceOutcomes(scModel(), suite[i]))
            << suite[i].name;
        // ...and every other configuration matches it.
        expectSameVerdicts(a.tests[i], b.tests[i]);
        expectSameVerdicts(a.tests[i], c.tests[i]);
        expectSameVerdicts(a.tests[i], d.tests[i]);
        // Exhaustive runs solve the whole space, in parallel too.
        EXPECT_EQ(a.tests[i].executionsExplored,
                  a.tests[i].executionsTotal);
        EXPECT_EQ(b.tests[i].executionsExplored,
                  b.tests[i].executionsTotal);
    }
    EXPECT_EQ(a.failures, 0);
    EXPECT_EQ(d.failures, 0);
}

TEST(Campaign, RepeatedParallelRunsAreDeterministic)
{
    auto suite = litmus::standardSuite();
    check::CampaignOptions opts;
    opts.jobs = 4, opts.prune = true;
    auto a = check::runCampaign(scModel(), suite, opts);
    auto b = check::runCampaign(scModel(), suite, opts);
    ASSERT_EQ(a.tests.size(), b.tests.size());
    for (size_t i = 0; i < a.tests.size(); i++) {
        expectSameVerdicts(a.tests[i], b.tests[i]);
        // With pruning (no fail-fast), even the exploration counts
        // and branch totals are schedule-independent: pruning is
        // per-outcome-bucket, not cross-worker.
        EXPECT_EQ(a.tests[i].executionsExplored,
                  b.tests[i].executionsExplored) << a.tests[i].name;
        EXPECT_EQ(a.tests[i].executionsPruned,
                  b.tests[i].executionsPruned) << a.tests[i].name;
        EXPECT_EQ(a.tests[i].branches, b.tests[i].branches)
            << a.tests[i].name;
    }
    EXPECT_EQ(a.executionsExplored, b.executionsExplored);
    EXPECT_EQ(a.executionsPruned, b.executionsPruned);
}

TEST(Campaign, PruningSkipsProvenObservableOutcomes)
{
    // Two same-value writes to one location: both coherence orders
    // produce the same outcome, so the pruned campaign solves one
    // candidate and skips the rest of the bucket.
    LTest t = LTest::parse(R"(name dupw
thread 0
w x 1
thread 1
w x 1
interesting x=2)");
    check::Options exhaustive, pruned;
    exhaustive.jobs = 1, exhaustive.prune = false;
    pruned.jobs = 1, pruned.prune = true;
    auto ex = check::checkTest(scModel(), t, exhaustive);
    auto pr = check::checkTest(scModel(), t, pruned);
    EXPECT_EQ(ex.executionsExplored, 2);
    EXPECT_EQ(ex.executionsPruned, 0);
    EXPECT_EQ(pr.executionsExplored, 1);
    EXPECT_EQ(pr.executionsPruned, 1);
    EXPECT_EQ(pr.executionsExplored + pr.executionsPruned,
              pr.executionsTotal);
    EXPECT_EQ(ex.outcomes, pr.outcomes);
    EXPECT_EQ(ex.pass, pr.pass);
    EXPECT_EQ(ex.tight, pr.tight);
}

TEST(Campaign, FailFastStillReportsViolation)
{
    LTest sb = litmus::standardSuite()[1];
    check::CampaignOptions opts;
    opts.jobs = 4, opts.failFast = true;
    auto res = check::runCampaign(weakModel(), {sb}, opts);
    ASSERT_EQ(res.tests.size(), 1u);
    EXPECT_FALSE(res.tests[0].pass);
    EXPECT_FALSE(res.tests[0].ok());
    EXPECT_FALSE(res.tests[0].violations.empty());
    EXPECT_EQ(res.failures, 1);
}

TEST(Campaign, JsonReportParsesAndCounts)
{
    auto suite = litmus::standardSuite();
    suite.resize(4);
    check::CampaignOptions opts;
    opts.jobs = 2;
    auto res = check::runCampaign(scModel(), suite, opts);
    std::string json = res.jsonReport();
    EXPECT_NE(json.find("\"jobs\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"tests\": 4"), std::string::npos);
    EXPECT_NE(json.find("\"failures\": 0"), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"mp\""), std::string::npos);
    // Crude structural check: balanced braces/brackets.
    int depth = 0;
    for (char c : json) {
        depth += (c == '{' || c == '[') - (c == '}' || c == ']');
        ASSERT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
}

// Regression (uspec_check verdict): a litmus test whose interesting
// outcome is SC-*allowed* must not fail just because that outcome is
// observable — observing it is correct behavior.
TEST(Campaign, ScAllowedInterestingOutcomeIsNotAFailure)
{
    LTest t = LTest::parse(R"(name sc_ok
thread 0
w x 1
thread 1
r x 2
interesting 1:x2=1)");
    auto res = check::checkTest(scModel(), t);
    EXPECT_TRUE(res.pass) << res.summary();
    EXPECT_TRUE(res.interestingObservable);
    EXPECT_TRUE(res.interestingScAllowed);
    EXPECT_TRUE(res.ok())
        << "an observable SC-allowed interesting outcome is not a "
           "failure";

    auto camp = check::runCampaign(scModel(), {t}, {});
    EXPECT_EQ(camp.failures, 0);
}

// Regression (uhb::solve): an execution with zero microops used to
// evaluate one all-zero binding anyway, indexing ops[0] out of
// bounds. Must solve cleanly (trivially observable) under ASan.
TEST(Campaign, EmptyExecutionSolvesCleanly)
{
    uhb::Execution empty;
    auto direct = uhb::solve(scModel(), empty);
    EXPECT_TRUE(direct.observable);
    EXPECT_EQ(direct.edges, 0u);

    uhb::InstanceTable table(scModel(), empty.ops);
    EXPECT_TRUE(table.instances().empty());
    auto via_table = uhb::solve(scModel(), empty, table);
    EXPECT_TRUE(via_table.observable);
}

// Regression (uspec_check --suite --dot): every witness used to be
// written to the same file; now paths are derived per test.
TEST(Campaign, DotPathPerTest)
{
    EXPECT_EQ(check::dotPathFor("out.dot", "mp"), "out_mp.dot");
    EXPECT_EQ(check::dotPathFor("dir/wit.dot", "sb"), "dir/wit_sb.dot");
    EXPECT_EQ(check::dotPathFor("wit", "lb"), "wit_lb");
    EXPECT_EQ(check::dotPathFor("a.b/wit", "mp"), "a.b/wit_mp");
}

TEST(Campaign, DotCollectionRestrictedToTargetTests)
{
    auto suite = litmus::standardSuite();
    std::vector<LTest> tests{suite[0], suite[1]}; // mp, sb
    check::CampaignOptions opts;
    opts.jobs = 2, opts.collectDot = true;
    opts.dotTests = {"sb"};
    auto res = check::runCampaign(scModel(), tests, opts);
    ASSERT_EQ(res.tests.size(), 2u);
    EXPECT_TRUE(res.tests[0].interestingDot.empty());
    ASSERT_FALSE(res.tests[1].interestingDot.empty());
    EXPECT_NE(res.tests[1].interestingDot.find("digraph"),
              std::string::npos);

    // Unrestricted: both collect, and each names its own test.
    opts.dotTests.clear();
    res = check::runCampaign(scModel(), tests, opts);
    ASSERT_FALSE(res.tests[0].interestingDot.empty());
    EXPECT_NE(res.tests[0].interestingDot.find("uhb_mp"),
              std::string::npos);
    EXPECT_NE(res.tests[1].interestingDot.find("uhb_sb"),
              std::string::npos);
}

TEST(Campaign, InstanceTableMatchesPerExecutionSolve)
{
    auto suite = litmus::standardSuite();
    for (size_t i = 0; i < 6; i++) {
        const LTest &t = suite[i];
        check::ExecutionSpace space(t);
        uhb::InstanceTable table(scModel(), space.ops());
        uhb::Execution exec = space.makeScratch();
        for (uint64_t k = 0; k < space.size(); k++) {
            space.materialize(k, exec);
            auto fresh = uhb::solve(scModel(), exec);
            auto shared = uhb::solve(scModel(), exec, table);
            EXPECT_EQ(fresh.observable, shared.observable)
                << t.name << " candidate " << k;
            EXPECT_EQ(fresh.branchesExplored, shared.branchesExplored)
                << t.name << " candidate " << k;
            EXPECT_EQ(fresh.edges, shared.edges)
                << t.name << " candidate " << k;
        }
    }
}

TEST(Campaign, ExecutionSpaceMatchesEnumerationCount)
{
    // One read, two same-address writes: rf in {init, w1, w2} x
    // 2 coherence permutations = 6 candidates, every one distinct.
    LTest t = LTest::parse(R"(name x
thread 0
w x 1
thread 1
w x 2
thread 2
r x 2
interesting 2:x2=0)");
    check::ExecutionSpace space(t);
    EXPECT_EQ(space.size(), 6u);
    std::set<std::string> seen;
    uhb::Execution exec = space.makeScratch();
    for (uint64_t k = 0; k < space.size(); k++) {
        space.materialize(k, exec);
        std::string key;
        for (int s : exec.rf)
            key += std::to_string(s) + ",";
        for (const auto &[addr, ws] : exec.ws) {
            key += "|";
            for (int w : ws)
                key += std::to_string(w) + ",";
        }
        seen.insert(key);
    }
    EXPECT_EQ(seen.size(), 6u) << "decoded candidates must be distinct";
}
