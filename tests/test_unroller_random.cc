/**
 * @file
 * Randomized cross-validation of the BMC unroller against the
 * interpreter: generate random netlists (every combinational cell
 * kind, registers with enables, memories with read/write ports),
 * simulate them on random input stimulus, then assert frame-by-frame
 * CNF equivalence — "the unrolled design can deviate from the
 * simulation" must be UNSAT, and a deliberately corrupted expectation
 * must be SAT. This pins the two independent implementations of the
 * netlist semantics to each other.
 */

#include <gtest/gtest.h>

#include <random>

#include "bmc/checker.hh"
#include "random_netlist.hh"
#include "sim/simulator.hh"

using namespace r2u;
using namespace r2u::nl;
using r2u::test::RandomDesign;
using r2u::test::makeRandom;

class UnrollerRandomTest : public ::testing::TestWithParam<int>
{
};

TEST_P(UnrollerRandomTest, CnfMatchesInterpreter)
{
    std::mt19937 rng(2024 + GetParam());
    RandomDesign d = makeRandom(rng);
    const unsigned kFrames = 6;

    // Simulate with random stimulus; record inputs and probe values.
    sim::Simulator sim(d.netlist);
    std::vector<std::vector<Bits>> stim(kFrames), expect(kFrames);
    for (unsigned f = 0; f < kFrames; f++) {
        for (CellId in : d.inputs) {
            Bits v(d.netlist.cell(in).width,
                   static_cast<uint64_t>(rng()));
            sim.setInput(in, v);
            stim[f].push_back(v);
        }
        for (CellId p : d.probes)
            expect[f].push_back(sim.value(p));
        sim.step();
    }

    std::unordered_map<std::string, CellId> empty_map;

    // UNSAT: under the recorded stimulus, probes cannot deviate.
    auto res = bmc::checkProperty(
        d.netlist, empty_map, {}, kFrames, [&](bmc::PropCtx &ctx) {
            auto &cnf = ctx.cnf();
            sat::Lit bad = cnf.falseLit();
            for (unsigned f = 0; f < kFrames; f++) {
                for (size_t i = 0; i < d.inputs.size(); i++) {
                    ctx.assume(cnf.mkEqW(
                        ctx.unroller().wire(f, d.inputs[i]),
                        cnf.constWord(stim[f][i])));
                }
                for (size_t i = 0; i < d.probes.size(); i++) {
                    bad = cnf.mkOr(
                        bad, ~cnf.mkEqW(
                                 ctx.unroller().wire(f, d.probes[i]),
                                 cnf.constWord(expect[f][i])));
                }
            }
            return bad;
        });
    EXPECT_EQ(res.verdict, bmc::Verdict::Proven)
        << "unroller deviates from interpreter (seed " << GetParam()
        << ")";

    // SAT: a corrupted expectation must be detected.
    Bits wrong = ~expect[kFrames - 1][0];
    auto res2 = bmc::checkProperty(
        d.netlist, empty_map, {}, kFrames, [&](bmc::PropCtx &ctx) {
            auto &cnf = ctx.cnf();
            for (unsigned f = 0; f < kFrames; f++) {
                for (size_t i = 0; i < d.inputs.size(); i++) {
                    ctx.assume(cnf.mkEqW(
                        ctx.unroller().wire(f, d.inputs[i]),
                        cnf.constWord(stim[f][i])));
                }
            }
            return ~cnf.mkEqW(
                ctx.unroller().wire(kFrames - 1, d.probes[0]),
                cnf.constWord(wrong));
        });
    EXPECT_EQ(res2.verdict, bmc::Verdict::Refuted);
}

INSTANTIATE_TEST_SUITE_P(Seeds, UnrollerRandomTest,
                         ::testing::Range(0, 12));
