/**
 * @file
 * Randomized cross-validation of the BMC unroller against the
 * interpreter: generate random netlists (every combinational cell
 * kind, registers with enables, memories with read/write ports),
 * simulate them on random input stimulus, then assert frame-by-frame
 * CNF equivalence — "the unrolled design can deviate from the
 * simulation" must be UNSAT, and a deliberately corrupted expectation
 * must be SAT. This pins the two independent implementations of the
 * netlist semantics to each other.
 */

#include <gtest/gtest.h>

#include <random>

#include "bmc/checker.hh"
#include "netlist/netlist.hh"
#include "sim/simulator.hh"

using namespace r2u;
using namespace r2u::nl;

namespace
{

struct RandomDesign
{
    Netlist netlist;
    std::vector<CellId> inputs;
    std::vector<CellId> probes; ///< wires whose values we compare
};

RandomDesign
makeRandom(std::mt19937 &rng)
{
    RandomDesign d;
    Netlist &n = d.netlist;
    auto pick_width = [&]() {
        static const unsigned widths[] = {1, 3, 8, 13};
        return widths[rng() % 4];
    };

    // A few inputs.
    std::vector<CellId> pool;
    for (int i = 0; i < 3; i++) {
        CellId in = n.addInput("in" + std::to_string(i), pick_width());
        d.inputs.push_back(in);
        pool.push_back(in);
    }
    CellId one = n.addConst(Bits(1, 1));
    pool.push_back(n.addConst(Bits(8, 0x5a)));

    auto any = [&]() { return pool[rng() % pool.size()]; };
    auto fit = [&](CellId c, unsigned w) -> CellId {
        unsigned cw = n.cell(c).width;
        if (cw == w)
            return c;
        if (cw > w)
            return n.addSlice(c, 0, w);
        return n.addExt(CellKind::Zext, c, w);
    };
    auto bit1 = [&]() { return fit(any(), 1); };

    // A memory with one write port.
    MemId mem = n.addMemory("m", 4, 8);
    n.addMemWrite(mem, fit(any(), 2), fit(any(), 8), bit1());
    pool.push_back(n.addMemRead(mem, fit(any(), 2)));

    // Random combinational cells.
    for (int i = 0; i < 24; i++) {
        unsigned w = pick_width();
        CellId a = fit(any(), w);
        CellId b = fit(any(), w);
        CellId out;
        switch (rng() % 12) {
          case 0: out = n.addBinary(CellKind::Add, a, b); break;
          case 1: out = n.addBinary(CellKind::Sub, a, b); break;
          case 2: out = n.addBinary(CellKind::And, a, b); break;
          case 3: out = n.addBinary(CellKind::Or, a, b); break;
          case 4: out = n.addBinary(CellKind::Xor, a, b); break;
          case 5: out = n.addBinary(CellKind::Eq, a, b); break;
          case 6: out = n.addBinary(CellKind::Ult, a, b); break;
          case 7: out = n.addBinary(CellKind::Slt, a, b); break;
          case 8:
            out = n.addBinary(CellKind::Shl, a, fit(any(), 3));
            break;
          case 9:
            out = n.addBinary(CellKind::Lshr, a, fit(any(), 3));
            break;
          case 10: out = n.addMux(bit1(), a, b); break;
          default: out = n.addConcat({a, b}); break;
        }
        pool.push_back(out);
    }

    // Registers (with enables) feeding back into the pool.
    for (int i = 0; i < 4; i++) {
        unsigned w = pick_width();
        CellId q = n.addDff("r" + std::to_string(i), fit(any(), w),
                            bit1(), Bits(w, i * 7u));
        pool.push_back(q);
        (void)one;
    }

    // Probe a handful of wires.
    for (int i = 0; i < 6; i++)
        d.probes.push_back(pool[rng() % pool.size()]);
    n.validate();
    return d;
}

} // namespace

class UnrollerRandomTest : public ::testing::TestWithParam<int>
{
};

TEST_P(UnrollerRandomTest, CnfMatchesInterpreter)
{
    std::mt19937 rng(2024 + GetParam());
    RandomDesign d = makeRandom(rng);
    const unsigned kFrames = 6;

    // Simulate with random stimulus; record inputs and probe values.
    sim::Simulator sim(d.netlist);
    std::vector<std::vector<Bits>> stim(kFrames), expect(kFrames);
    for (unsigned f = 0; f < kFrames; f++) {
        for (CellId in : d.inputs) {
            Bits v(d.netlist.cell(in).width,
                   static_cast<uint64_t>(rng()));
            sim.setInput(in, v);
            stim[f].push_back(v);
        }
        for (CellId p : d.probes)
            expect[f].push_back(sim.value(p));
        sim.step();
    }

    std::unordered_map<std::string, CellId> empty_map;

    // UNSAT: under the recorded stimulus, probes cannot deviate.
    auto res = bmc::checkProperty(
        d.netlist, empty_map, {}, kFrames, [&](bmc::PropCtx &ctx) {
            auto &cnf = ctx.cnf();
            sat::Lit bad = cnf.falseLit();
            for (unsigned f = 0; f < kFrames; f++) {
                for (size_t i = 0; i < d.inputs.size(); i++) {
                    ctx.assume(cnf.mkEqW(
                        ctx.unroller().wire(f, d.inputs[i]),
                        cnf.constWord(stim[f][i])));
                }
                for (size_t i = 0; i < d.probes.size(); i++) {
                    bad = cnf.mkOr(
                        bad, ~cnf.mkEqW(
                                 ctx.unroller().wire(f, d.probes[i]),
                                 cnf.constWord(expect[f][i])));
                }
            }
            return bad;
        });
    EXPECT_EQ(res.verdict, bmc::Verdict::Proven)
        << "unroller deviates from interpreter (seed " << GetParam()
        << ")";

    // SAT: a corrupted expectation must be detected.
    Bits wrong = ~expect[kFrames - 1][0];
    auto res2 = bmc::checkProperty(
        d.netlist, empty_map, {}, kFrames, [&](bmc::PropCtx &ctx) {
            auto &cnf = ctx.cnf();
            for (unsigned f = 0; f < kFrames; f++) {
                for (size_t i = 0; i < d.inputs.size(); i++) {
                    ctx.assume(cnf.mkEqW(
                        ctx.unroller().wire(f, d.inputs[i]),
                        cnf.constWord(stim[f][i])));
                }
            }
            return ~cnf.mkEqW(
                ctx.unroller().wire(kFrames - 1, d.probes[0]),
                cnf.constWord(wrong));
        });
    EXPECT_EQ(res2.verdict, bmc::Verdict::Refuted);
}

INSTANTIATE_TEST_SUITE_P(Seeds, UnrollerRandomTest,
                         ::testing::Range(0, 12));
