/**
 * @file
 * Tests for the resilient synthesis service (ISSUE 10): the JSON wire
 * codec, the length-prefixed frame protocol, the chaos spec, and —
 * against a real in-process Server — admission control ("overloaded"
 * replies), the full chaos suite (solver stall -> watchdog interrupt
 * -> bounded retry; torn cache append -> rollback + disable; dropped
 * connection -> client reconnect/re-issue), and warm restart from the
 * persistent state dir. The acceptance property throughout: a daemon
 * under chaos returns a model bit-identical to a fault-free run.
 *
 * kill -9 crash recovery needs a real process boundary and lives in
 * tests/serve_smoke.sh.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "check/campaign.hh"
#include "common/strutil.hh"
#include "litmus/litmus.hh"
#include "rtl2uspec/metadata_io.hh"
#include "rtl2uspec/synthesis.hh"
#include "serve/chaos.hh"
#include "serve/client.hh"
#include "serve/json.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"
#include "verilog/elaborate.hh"

using namespace r2u;
using namespace r2u::serve;
namespace fs = std::filesystem;

// ---------------------------------------------------------------------
// JSON codec
// ---------------------------------------------------------------------

TEST(Json, BuildDumpParseRoundTrip)
{
    json::Value v = json::Value::object();
    v.set("ok", json::Value::boolean_(true));
    v.set("n", json::Value::number(int64_t{42}));
    v.set("pi", json::Value::number(3.5));
    v.set("s", json::Value::string("hi \"there\"\n"));
    json::Value arr = json::Value::array();
    arr.push(json::Value::number(int64_t{1}));
    arr.push(json::Value::null());
    v.set("a", std::move(arr));

    std::string text = v.dump();
    json::Value back;
    std::string err;
    ASSERT_TRUE(json::Value::parse(text, back, &err)) << err;
    EXPECT_TRUE(back.getBool("ok"));
    EXPECT_EQ(back.getInt("n"), 42);
    EXPECT_DOUBLE_EQ(back.getDouble("pi"), 3.5);
    EXPECT_EQ(back.getStr("s"), "hi \"there\"\n");
    ASSERT_NE(back.find("a"), nullptr);
    ASSERT_EQ(back.find("a")->arr.size(), 2u);
    EXPECT_EQ(back.find("a")->arr[0].asInt(), 1);
    EXPECT_TRUE(back.find("a")->arr[1].isNull());
    // Integral doubles must print as integers (hash strings aside,
    // counts travel as JSON numbers).
    EXPECT_NE(text.find("\"n\":42"), std::string::npos) << text;
}

TEST(Json, SetReplacesAndPreservesOrder)
{
    json::Value v = json::Value::object();
    v.set("a", json::Value::number(int64_t{1}));
    v.set("b", json::Value::number(int64_t{2}));
    v.set("a", json::Value::number(int64_t{3}));
    EXPECT_EQ(v.dump(), "{\"a\":3,\"b\":2}");
}

TEST(Json, ParseRejectsMalformedInput)
{
    json::Value out;
    std::string err;
    EXPECT_FALSE(json::Value::parse("", out, &err));
    EXPECT_FALSE(json::Value::parse("{", out, &err));
    EXPECT_FALSE(json::Value::parse("{\"a\":1,}", out, &err));
    EXPECT_FALSE(json::Value::parse("{\"a\":1} trailing", out, &err));
    EXPECT_FALSE(json::Value::parse("{\"a\":1,\"a\":2}", out, &err))
        << "duplicate keys must be rejected";
    EXPECT_FALSE(json::Value::parse("\"raw\tcontrol\"", out, &err));
    // Depth bomb: deeply nested arrays must fail, not overflow.
    std::string bomb(1000, '[');
    EXPECT_FALSE(json::Value::parse(bomb, out, &err));
}

TEST(Json, ParseHandlesEscapes)
{
    json::Value out;
    std::string err;
    ASSERT_TRUE(json::Value::parse(
        "\"a\\n\\t\\\"\\\\ \\u0041\\u00e9\"", out, &err))
        << err;
    EXPECT_EQ(out.asStr(), "a\n\t\"\\ A\xc3\xa9");
}

// ---------------------------------------------------------------------
// Chaos spec
// ---------------------------------------------------------------------

TEST(Chaos, ParseAndFire)
{
    ChaosSpec spec;
    std::string err;
    ASSERT_TRUE(ChaosSpec::parse("stall=2, stall-ms=500, torn=1, drop=3",
                                 spec, &err))
        << err;
    EXPECT_EQ(spec.stall.load(), 2);
    EXPECT_EQ(spec.stallMs, 500);
    EXPECT_EQ(spec.torn.load(), 1);
    EXPECT_EQ(spec.drop.load(), 3);
    EXPECT_TRUE(spec.armed());

    // Budgets are consumable.
    EXPECT_TRUE(ChaosSpec::fire(spec.torn));
    EXPECT_FALSE(ChaosSpec::fire(spec.torn));

    ChaosSpec bad;
    EXPECT_FALSE(ChaosSpec::parse("explode=1", bad, &err));
    EXPECT_FALSE(ChaosSpec::parse("stall", bad, &err));
    EXPECT_FALSE(ChaosSpec::parse("stall=-1", bad, &err));
    EXPECT_FALSE(ChaosSpec::parse("stall=x", bad, &err));
}

// ---------------------------------------------------------------------
// Frame protocol (over a socketpair)
// ---------------------------------------------------------------------

TEST(Protocol, FrameRoundTrip)
{
    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    std::string payload = "{\"type\":\"ping\"}";
    ASSERT_TRUE(writeFrame(sv[0], payload));
    ASSERT_TRUE(writeFrame(sv[0], "")); // empty frames are legal
    std::string got;
    EXPECT_EQ(readFrame(sv[1], got), FrameIo::Ok);
    EXPECT_EQ(got, payload);
    EXPECT_EQ(readFrame(sv[1], got), FrameIo::Ok);
    EXPECT_EQ(got, "");

    // Clean EOF before the first byte vs. a frame cut mid-payload.
    ASSERT_TRUE(writeFrame(sv[0], "second"));
    EXPECT_EQ(readFrame(sv[1], got), FrameIo::Ok);
    ::close(sv[0]);
    EXPECT_EQ(readFrame(sv[1], got), FrameIo::Eof);
    ::close(sv[1]);
}

TEST(Protocol, OversizedFrameIsRejected)
{
    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    // A length prefix past the cap must be refused without allocating.
    uint8_t prefix[4] = {0xff, 0xff, 0xff, 0x7f};
    ASSERT_EQ(::send(sv[0], prefix, 4, 0), 4);
    std::string got;
    EXPECT_EQ(readFrame(sv[1], got), FrameIo::TooBig);
    ::close(sv[0]);
    ::close(sv[1]);
}

// ---------------------------------------------------------------------
// In-process server
// ---------------------------------------------------------------------

namespace
{

#ifdef R2U_SOURCE_DIR
const char *kSourceDir = R2U_SOURCE_DIR;
#else
const char *kSourceDir = ".";
#endif

std::string
tempPath(const std::string &name)
{
    fs::path p = fs::path(::testing::TempDir()) / name;
    fs::remove_all(p);
    return p.string();
}

/** Small multi-V-scale configuration (same as the CI quickstart). */
json::Value
synthesizeRequest()
{
    std::string d = std::string(kSourceDir) + "/designs/";
    json::Value req = json::Value::object();
    req.set("type", json::Value::string("synthesize"));
    req.set("top", json::Value::string("multi_vscale"));
    req.set("meta", json::Value::string(d + "vscale.meta"));
    json::Value files = json::Value::array();
    for (const char *f : {"multi_vscale.v", "vscale_core.v",
                          "vscale_mem.v", "vscale_arbiter.v"})
        files.push(json::Value::string(d + f));
    req.set("files", std::move(files));
    json::Value params = json::Value::object();
    params.set("XLEN", json::Value::number(int64_t{8}));
    params.set("PC_BITS", json::Value::number(int64_t{6}));
    params.set("NREGS", json::Value::number(int64_t{8}));
    params.set("REG_BITS", json::Value::number(int64_t{3}));
    params.set("IMEM_WORDS", json::Value::number(int64_t{16}));
    params.set("IMEM_ABITS", json::Value::number(int64_t{4}));
    req.set("params", std::move(params));
    req.set("jobs", json::Value::number(int64_t{1}));
    req.set("inline_model", json::Value::boolean_(true));
    return req;
}

/** Fault-free reference model, synthesized once, directly. */
const std::string &
referenceModel()
{
    static std::string text = [] {
        json::Value req = synthesizeRequest();
        rtl2uspec::DesignMetadata md =
            rtl2uspec::loadMetadata(req.getStr("meta"));
        vlog::ElabOptions eo;
        eo.top = req.getStr("top");
        for (const auto &[k, v] : req.find("params")->obj)
            eo.params[k] = v.asInt();
        std::vector<std::string> paths;
        for (const auto &f : req.find("files")->arr)
            paths.push_back(f.asStr());
        rtl2uspec::SynthesisOptions so;
        so.jobs = 1;
        return rtl2uspec::synthesize(vlog::elaborateFiles(paths, eo),
                                     md, so)
            .model.print();
    }();
    return text;
}

/** Server + serve() thread with RAII shutdown. */
struct TestDaemon
{
    Server server;
    std::thread thread;

    explicit TestDaemon(ServerOptions opts) : server(std::move(opts))
    {
        server.start();
        thread = std::thread([this] { server.serve(); });
    }

    ~TestDaemon() { stop(); }

    void
    stop()
    {
        if (thread.joinable()) {
            server.requestStop();
            thread.join();
        }
    }
};

} // namespace

TEST(Serve, PingStatusAndBadRequests)
{
    std::string sock = tempPath("serve_basic.sock");
    ServerOptions opts;
    opts.socketPath = sock;
    TestDaemon daemon(std::move(opts));

    Client client;
    std::string err;
    ASSERT_TRUE(client.connect(sock, &err)) << err;

    json::Value req = json::Value::object();
    req.set("type", json::Value::string("ping"));
    json::Value resp;
    ASSERT_TRUE(client.request(req, resp, &err)) << err;
    EXPECT_TRUE(resp.getBool("ok"));
    EXPECT_TRUE(resp.getBool("pong"));

    req.set("type", json::Value::string("status"));
    ASSERT_TRUE(client.request(req, resp, &err)) << err;
    EXPECT_TRUE(resp.getBool("ok"));
    EXPECT_FALSE(resp.getBool("draining"));
    EXPECT_GE(resp.getInt("requests"), 1);

    req.set("type", json::Value::string("no_such_thing"));
    ASSERT_TRUE(client.request(req, resp, &err)) << err;
    EXPECT_FALSE(resp.getBool("ok"));
    EXPECT_EQ(resp.getStr("code"), "bad_request");

    // A frame carrying broken JSON gets an error response on a raw
    // connection, not a dead daemon. Drive the protocol layer by hand.
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, sock.c_str(),
                 sizeof(addr.sun_path) - 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    ASSERT_TRUE(writeFrame(fd, "{\"type\":"));
    std::string payload;
    ASSERT_EQ(readFrame(fd, payload), FrameIo::Ok);
    json::Value parsed;
    ASSERT_TRUE(json::Value::parse(payload, parsed, &err)) << err;
    EXPECT_FALSE(parsed.getBool("ok"));
    EXPECT_EQ(parsed.getStr("code"), "bad_request");
    ::close(fd);
}

TEST(Serve, OverloadShedsWithExplicitReply)
{
    std::string sock = tempPath("serve_overload.sock");
    ServerOptions opts;
    opts.socketPath = sock;
    opts.maxQueue = 0; // every heavy request is over the watermark
    TestDaemon daemon(std::move(opts));

    Client client;
    std::string err;
    ASSERT_TRUE(client.connect(sock, &err)) << err;
    json::Value req = json::Value::object();
    req.set("type", json::Value::string("campaign"));
    req.set("model", json::Value::string("/nonexistent.uarch"));
    req.set("suite", json::Value::boolean_(true));
    json::Value resp;
    ASSERT_TRUE(client.request(req, resp, &err)) << err;
    EXPECT_FALSE(resp.getBool("ok"));
    EXPECT_EQ(resp.getStr("code"), "overloaded");
    EXPECT_GT(resp.getInt("retry_after_ms"), 0);
    EXPECT_EQ(daemon.server.overloadedReplies(), 1u);
    // Light requests are never shed.
    req = json::Value::object();
    req.set("type", json::Value::string("ping"));
    ASSERT_TRUE(client.request(req, resp, &err)) << err;
    EXPECT_TRUE(resp.getBool("ok"));
}

// The headline chaos test: stall + torn + drop all armed at once.
//  - stall freezes the solver heartbeat -> watchdog interrupts -> the
//    degraded attempt is retried server-side;
//  - torn tears the first verdict-cache append -> rollback + caching
//    disabled, store stays loadable;
//  - drop closes the connection before the response -> the client
//    reconnects and re-issues warm.
// The surviving response's model must be bit-identical to the
// fault-free reference.
TEST(Serve, ChaosSuiteEndsBitIdentical)
{
    std::string sock = tempPath("serve_chaos.sock");
    std::string state = tempPath("serve_chaos_state");

    ChaosSpec chaos;
    std::string cerr_;
    ASSERT_TRUE(ChaosSpec::parse("stall=1,stall-ms=60000,torn=1,drop=1",
                                 chaos, &cerr_))
        << cerr_;

    ServerOptions opts;
    opts.socketPath = sock;
    opts.stateDir = state;
    opts.hangSeconds = 3.0; // watchdog must cut the 60 s stall short
    opts.requestRetries = 1;
    opts.chaos = &chaos;
    TestDaemon daemon(std::move(opts));

    Client client;
    std::string err;
    json::Value resp;
    ASSERT_TRUE(client.requestWithRetry(sock, synthesizeRequest(), resp,
                                        &err, /*attempts=*/4))
        << err;
    ASSERT_TRUE(resp.getBool("ok")) << resp.dump();

    // Every fault class fired...
    EXPECT_EQ(chaos.stall.load(), 0);
    EXPECT_EQ(chaos.torn.load(), 0);
    EXPECT_EQ(chaos.drop.load(), 0);
    // ...and each recovery path ran.
    EXPECT_GE(daemon.server.watchdogInterrupts(), 1u);
    EXPECT_GE(daemon.server.requestRetriesDone(), 1u);
    ASSERT_NE(daemon.server.cache(), nullptr);
    EXPECT_TRUE(daemon.server.cache()->disabled());

    // The survived request's model is bit-identical to fault-free.
    EXPECT_EQ(resp.getStr("model"), referenceModel());
    EXPECT_FALSE(resp.getBool("interrupted"));

    daemon.stop();

    // Warm restart on the same state dir: the journals replay, so the
    // re-issued request answers mostly without solving — and still
    // bit-identical. (kill -9 instead of a drain is serve_smoke.sh.)
    ServerOptions opts2;
    opts2.socketPath = sock;
    opts2.stateDir = state;
    TestDaemon daemon2(std::move(opts2));
    json::Value resp2;
    ASSERT_TRUE(client.requestWithRetry(sock, synthesizeRequest(),
                                        resp2, &err))
        << err;
    ASSERT_TRUE(resp2.getBool("ok")) << resp2.dump();
    EXPECT_EQ(resp2.getStr("model"), referenceModel());
    EXPECT_GT(resp2.getInt("journal_hits"), 0) << resp2.dump();
}

TEST(Serve, CampaignRoundTrip)
{
    std::string sock = tempPath("serve_campaign.sock");
    std::string model_path = tempPath("serve_campaign.uarch");
    writeFile(model_path, referenceModel());

    ServerOptions opts;
    opts.socketPath = sock;
    TestDaemon daemon(std::move(opts));

    Client client;
    std::string err;
    json::Value req = json::Value::object();
    req.set("type", json::Value::string("campaign"));
    req.set("model", json::Value::string(model_path));
    req.set("cycle", json::Value::string("Rfe PodRR Fre PodWW"));
    req.set("jobs", json::Value::number(int64_t{1}));
    json::Value resp;
    ASSERT_TRUE(client.requestWithRetry(sock, req, resp, &err)) << err;
    ASSERT_TRUE(resp.getBool("ok")) << resp.dump();
    EXPECT_EQ(resp.getInt("tests"), 1);
    EXPECT_EQ(resp.getInt("failures"), 0);
    EXPECT_FALSE(resp.getBool("interrupted"));
    ASSERT_NE(resp.find("results"), nullptr);
    ASSERT_EQ(resp.find("results")->arr.size(), 1u);
    EXPECT_TRUE(resp.find("results")->arr[0].getBool("ok"));
}

TEST(Serve, DrainRefusesNewWorkAndExitsCleanly)
{
    std::string sock = tempPath("serve_drain.sock");
    std::atomic<bool> stop{false};
    ServerOptions opts;
    opts.socketPath = sock;
    opts.externalStop = &stop;
    TestDaemon daemon(std::move(opts));

    Client client;
    std::string err;
    json::Value req = json::Value::object();
    req.set("type", json::Value::string("shutdown"));
    json::Value resp;
    ASSERT_TRUE(client.requestWithRetry(sock, req, resp, &err)) << err;
    EXPECT_TRUE(resp.getBool("ok"));
    EXPECT_TRUE(resp.getBool("draining"));

    daemon.thread.join();
    // The socket is gone after the drain; the daemon exited its loop.
    EXPECT_FALSE(fs::exists(sock));

    Client late;
    EXPECT_FALSE(late.connect(sock, &err));
}

// The CLI SIGINT/SIGTERM path (uspec_check exit 3) rests on
// CampaignOptions::stop: with the flag already set, every candidate
// is skipped as pruned, the result is flagged interrupted, and the
// report records it — a sound partial answer, never a wrong one.
TEST(Campaign, StopFlagYieldsSoundInterruptedResult)
{
    uspec::Model model = uspec::Model::parse(
        readFile(std::string(kSourceDir) + "/designs/vscale_sc.uarch"));
    std::vector<litmus::Test> tests = litmus::standardSuite();
    std::atomic<bool> stop{true};
    check::CampaignOptions co;
    co.jobs = 1;
    co.stop = &stop;
    check::CampaignResult res = check::runCampaign(model, tests, co);
    EXPECT_TRUE(res.interrupted);
    EXPECT_EQ(res.executionsExplored, 0);
    EXPECT_EQ(res.executionsPruned, res.executionsTotal);
    EXPECT_NE(res.jsonReport().find("\"interrupted\""),
              std::string::npos);
}
