/**
 * @file
 * Random netlist generator shared by the randomized BMC tests:
 * netlists exercising every combinational cell kind, registers with
 * enables, and a memory with read/write ports, plus a pool of probe
 * wires to compare against the interpreter.
 */

#ifndef R2U_TESTS_RANDOM_NETLIST_HH
#define R2U_TESTS_RANDOM_NETLIST_HH

#include <random>
#include <string>
#include <vector>

#include "netlist/netlist.hh"

namespace r2u::test
{

struct RandomDesign
{
    nl::Netlist netlist;
    std::vector<nl::CellId> inputs;
    std::vector<nl::CellId> probes; ///< wires whose values we compare
};

inline RandomDesign
makeRandom(std::mt19937 &rng)
{
    using namespace nl;
    RandomDesign d;
    Netlist &n = d.netlist;
    auto pick_width = [&]() {
        static const unsigned widths[] = {1, 3, 8, 13};
        return widths[rng() % 4];
    };

    // A few inputs.
    std::vector<CellId> pool;
    for (int i = 0; i < 3; i++) {
        CellId in = n.addInput("in" + std::to_string(i), pick_width());
        d.inputs.push_back(in);
        pool.push_back(in);
    }
    CellId one = n.addConst(Bits(1, 1));
    pool.push_back(n.addConst(Bits(8, 0x5a)));

    auto any = [&]() { return pool[rng() % pool.size()]; };
    auto fit = [&](CellId c, unsigned w) -> CellId {
        unsigned cw = n.cell(c).width;
        if (cw == w)
            return c;
        if (cw > w)
            return n.addSlice(c, 0, w);
        return n.addExt(CellKind::Zext, c, w);
    };
    auto bit1 = [&]() { return fit(any(), 1); };

    // A memory with one write port.
    MemId mem = n.addMemory("m", 4, 8);
    n.addMemWrite(mem, fit(any(), 2), fit(any(), 8), bit1());
    pool.push_back(n.addMemRead(mem, fit(any(), 2)));

    // Random combinational cells.
    for (int i = 0; i < 24; i++) {
        unsigned w = pick_width();
        CellId a = fit(any(), w);
        CellId b = fit(any(), w);
        CellId out;
        switch (rng() % 12) {
          case 0: out = n.addBinary(CellKind::Add, a, b); break;
          case 1: out = n.addBinary(CellKind::Sub, a, b); break;
          case 2: out = n.addBinary(CellKind::And, a, b); break;
          case 3: out = n.addBinary(CellKind::Or, a, b); break;
          case 4: out = n.addBinary(CellKind::Xor, a, b); break;
          case 5: out = n.addBinary(CellKind::Eq, a, b); break;
          case 6: out = n.addBinary(CellKind::Ult, a, b); break;
          case 7: out = n.addBinary(CellKind::Slt, a, b); break;
          case 8:
            out = n.addBinary(CellKind::Shl, a, fit(any(), 3));
            break;
          case 9:
            out = n.addBinary(CellKind::Lshr, a, fit(any(), 3));
            break;
          case 10: out = n.addMux(bit1(), a, b); break;
          default: out = n.addConcat({a, b}); break;
        }
        pool.push_back(out);
    }

    // Registers (with enables) feeding back into the pool.
    for (int i = 0; i < 4; i++) {
        unsigned w = pick_width();
        CellId q = n.addDff("r" + std::to_string(i), fit(any(), w),
                            bit1(), Bits(w, i * 7u));
        pool.push_back(q);
        (void)one;
    }

    // Probe a handful of wires.
    for (int i = 0; i < 6; i++)
        d.probes.push_back(pool[rng() % pool.size()]);
    n.validate();
    return d;
}

} // namespace r2u::test

#endif // R2U_TESTS_RANDOM_NETLIST_HH
