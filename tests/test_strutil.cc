/**
 * @file
 * Unit tests for string utilities and the DOT writer.
 */

#include <gtest/gtest.h>

#include "common/dot.hh"
#include "common/logging.hh"
#include "common/strutil.hh"

using namespace r2u;

TEST(StrUtil, Split)
{
    auto v = split("a,b,,c", ',');
    ASSERT_EQ(v.size(), 4u);
    EXPECT_EQ(v[0], "a");
    EXPECT_EQ(v[2], "");
    EXPECT_EQ(v[3], "c");
}

TEST(StrUtil, SplitWs)
{
    auto v = splitWs("  foo \t bar\nbaz ");
    ASSERT_EQ(v.size(), 3u);
    EXPECT_EQ(v[0], "foo");
    EXPECT_EQ(v[2], "baz");
}

TEST(StrUtil, Trim)
{
    EXPECT_EQ(trim("  x y  "), "x y");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim(" \t\n"), "");
}

TEST(StrUtil, StartsEndsWith)
{
    EXPECT_TRUE(startsWith("core_0.inst_DX", "core_0."));
    EXPECT_FALSE(startsWith("x", "xy"));
    EXPECT_TRUE(endsWith("core_0.inst_DX", ".inst_DX"));
    EXPECT_FALSE(endsWith("x", "yx"));
}

TEST(StrUtil, Join)
{
    EXPECT_EQ(join({"a", "b", "c"}, "::"), "a::b::c");
    EXPECT_EQ(join({}, ","), "");
}

TEST(StrUtil, Strfmt)
{
    EXPECT_EQ(strfmt("%s=%d", "x", 42), "x=42");
}

TEST(StrUtil, ReadMissingFileThrows)
{
    EXPECT_THROW(readFile("/nonexistent/definitely/missing"),
                 FatalError);
}

TEST(Dot, RendersNodesAndEdges)
{
    DotWriter dot("g");
    dot.addNode("n1", "label \"quoted\"");
    dot.addNode("n2", "plain", "shape=box");
    dot.addEdge("n1", "n2", "e", "color=red");
    std::string out = dot.render();
    EXPECT_NE(out.find("digraph \"g\""), std::string::npos);
    EXPECT_NE(out.find("\\\"quoted\\\""), std::string::npos);
    EXPECT_NE(out.find("shape=box"), std::string::npos);
    EXPECT_NE(out.find("color=red"), std::string::npos);
    EXPECT_NE(out.find("\"n1\" -> \"n2\""), std::string::npos);
}

TEST(Logging, FatalThrowsPanicsDont)
{
    EXPECT_THROW(fatal("nope %d", 1), FatalError);
    try {
        fatal("value=%d", 7);
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "value=7");
    }
}
