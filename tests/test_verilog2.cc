/**
 * @file
 * Second battery of Verilog-frontend tests: nested generate loops,
 * width/extension semantics, case subtleties, multi-level parameter
 * propagation, per-bit assign drivers, instance wiring corner cases,
 * and µspec model validation diagnostics (grouped here to keep the
 * primary suites focused).
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "sim/simulator.hh"
#include "uspec/uspec.hh"
#include "verilog/elaborate.hh"
#include "verilog/parser.hh"

using namespace r2u;
using namespace r2u::vlog;

namespace
{

ElabResult
elab(const std::string &src, const std::string &top,
     std::unordered_map<std::string, int64_t> params = {})
{
    Design d = parseString(src, "test2.v");
    ElabOptions opts;
    opts.top = top;
    opts.params = std::move(params);
    return elaborate(d, opts);
}

} // namespace

TEST(Elab2, NestedGenerateLoops)
{
    // A 2x2 grid of registers built with nested generate-for loops.
    auto r = elab(R"(
        module top (input clk, input [3:0] d, output wire [3:0] q);
            wire [3:0] taps;
            genvar i;
            genvar j;
            generate
                for (i = 0; i < 2; i = i + 1) begin : row
                    for (j = 0; j < 2; j = j + 1) begin : col
                        reg cell;
                        always @(posedge clk) begin
                            cell <= d[2*i + j];
                        end
                        assign taps[2*i + j] = cell;
                    end
                end
            endgenerate
            assign q = taps;
        endmodule
    )", "top");
    EXPECT_NE(r.signalMap.find("row[0].col[1].cell"),
              r.signalMap.end());
    EXPECT_NE(r.signalMap.find("row[1].col[0].cell"),
              r.signalMap.end());
    sim::Simulator s(*r.netlist);
    s.setInput("d", Bits(4, 0b1010));
    s.step();
    EXPECT_EQ(s.value(r.signal("taps")).toUint64(), 0b1010u);
}

TEST(Elab2, WidthExtensionSemantics)
{
    // Narrow + wide extends the narrow operand with zeros; the
    // assignment truncates back to the LHS width.
    auto r = elab(R"(
        module top (input [3:0] a, input [7:0] b,
                    output wire [7:0] y, output wire [3:0] z);
            assign y = a + b;
            assign z = a + b;
        endmodule
    )", "top");
    sim::Simulator s(*r.netlist);
    s.setInput("a", Bits(4, 0xf));
    s.setInput("b", Bits(8, 0x10));
    EXPECT_EQ(s.value(r.signal("y")).toUint64(), 0x1fu);
    EXPECT_EQ(s.value(r.signal("z")).toUint64(), 0xfu);
}

TEST(Elab2, ComparisonExtendsUnsigned)
{
    auto r = elab(R"(
        module top (input [3:0] a, input [7:0] b, output wire y);
            assign y = a > b;
        endmodule
    )", "top");
    sim::Simulator s(*r.netlist);
    s.setInput("a", Bits(4, 0xf));  // 15 zero-extends to 0x0f
    s.setInput("b", Bits(8, 0x14)); // 20
    EXPECT_EQ(s.value(r.signal("y")).toUint64(), 0u);
    s.setInput("b", Bits(8, 0x0e));
    EXPECT_EQ(s.value(r.signal("y")).toUint64(), 1u);
}

TEST(Elab2, CaseMultipleLabelsAndFallthrough)
{
    auto r = elab(R"(
        module top (input [2:0] sel, output wire [3:0] y);
            reg [3:0] t;
            always @(*) begin
                case (sel)
                    3'd0, 3'd1, 3'd2: t = 4'd1;
                    3'd3: t = 4'd2;
                    default: t = 4'd9;
                endcase
            end
            assign y = t;
        endmodule
    )", "top");
    sim::Simulator s(*r.netlist);
    for (unsigned v = 0; v < 8; v++) {
        s.setInput("sel", Bits(3, v));
        unsigned expect = v <= 2 ? 1 : (v == 3 ? 2 : 9);
        EXPECT_EQ(s.value(r.signal("y")).toUint64(), expect) << v;
    }
}

TEST(Elab2, TwoLevelParameterPropagation)
{
    auto r = elab(R"(
        module leaf #(parameter W = 2) (input [W-1:0] a,
                                        output wire [W-1:0] y);
            assign y = ~a;
        endmodule
        module mid #(parameter W = 2) (input [W-1:0] a,
                                       output wire [W-1:0] y);
            leaf #(.W(W)) u (.a(a), .y(y));
        endmodule
        module top (input [5:0] a, output wire [5:0] y);
            mid #(.W(6)) m (.a(a), .y(y));
        endmodule
    )", "top");
    sim::Simulator s(*r.netlist);
    s.setInput("a", Bits(6, 0b101010));
    EXPECT_EQ(s.value(r.signal("y")).toUint64(), 0b010101u);
    EXPECT_EQ(s.value(r.signal("m.u.y")).toUint64(), 0b010101u);
}

TEST(Elab2, PerBitAssignDrivers)
{
    auto r = elab(R"(
        module top (input [3:0] a, output wire [3:0] y);
            assign y[0] = a[3];
            assign y[1] = a[2];
            assign y[2] = a[1];
            assign y[3] = a[0];
        endmodule
    )", "top");
    sim::Simulator s(*r.netlist);
    s.setInput("a", Bits(4, 0b0011));
    EXPECT_EQ(s.value(r.signal("y")).toUint64(), 0b1100u);
}

TEST(Elab2, PerBitAssignMissingBitIsFatal)
{
    EXPECT_THROW(elab(R"(
        module top (input a, output wire [1:0] y);
            assign y[0] = a;
        endmodule
    )", "top"), FatalError);
}

TEST(Elab2, PerBitAssignDuplicateIsFatal)
{
    EXPECT_THROW(elab(R"(
        module top (input a, output wire [1:0] y);
            assign y[0] = a;
            assign y[0] = ~a;
            assign y[1] = a;
        endmodule
    )", "top"), FatalError);
}

TEST(Elab2, UnconnectedInputIsFatal)
{
    EXPECT_THROW(elab(R"(
        module sub (input a, output wire y);
            assign y = a;
        endmodule
        module top (output wire y);
            sub u (.y(y));
        endmodule
    )", "top"), FatalError);
}

TEST(Elab2, UnconnectedOutputIsFine)
{
    auto r = elab(R"(
        module sub (input a, output wire y, output wire z);
            assign y = a;
            assign z = ~a;
        endmodule
        module top (input a, output wire y);
            sub u (.a(a), .y(y));
        endmodule
    )", "top");
    sim::Simulator s(*r.netlist);
    s.setInput("a", Bits(1, 1));
    EXPECT_EQ(s.value(r.signal("y")).toUint64(), 1u);
}

TEST(Elab2, ShiftSemantics)
{
    auto r = elab(R"(
        module top (input [7:0] a, input [3:0] sh,
                    output wire [7:0] l, output wire [7:0] r,
                    output wire [7:0] ar);
            assign l = a << sh;
            assign r = a >> sh;
            assign ar = $signed(a) >>> sh;
        endmodule
    )", "top");
    sim::Simulator s(*r.netlist);
    s.setInput("a", Bits(8, 0x90));
    s.setInput("sh", Bits(4, 2));
    EXPECT_EQ(s.value(r.signal("l")).toUint64(), 0x40u);
    EXPECT_EQ(s.value(r.signal("r")).toUint64(), 0x24u);
    EXPECT_EQ(s.value(r.signal("ar")).toUint64(), 0xe4u);
}

TEST(Elab2, MemoryWriteLastWinsSameCycle)
{
    auto r = elab(R"(
        module top (input clk, input [1:0] a1, input [1:0] a2,
                    input [7:0] d1, input [7:0] d2, input [1:0] ra,
                    output wire [7:0] q);
            reg [7:0] m [0:3];
            always @(posedge clk) begin
                m[a1] <= d1;
                m[a2] <= d2;
            end
            assign q = m[ra];
        endmodule
    )", "top");
    sim::Simulator s(*r.netlist);
    s.setInput("a1", Bits(2, 1));
    s.setInput("a2", Bits(2, 1)); // same address: later write wins
    s.setInput("d1", Bits(8, 0x11));
    s.setInput("d2", Bits(8, 0x22));
    s.setInput("ra", Bits(2, 1));
    s.step();
    EXPECT_EQ(s.value(r.signal("q")).toUint64(), 0x22u);
}

TEST(UspecValidate, RejectsMalformedModels)
{
    // Unbound microop in an edge.
    EXPECT_THROW(uspec::Model::parse(R"(
StageName 0 "a".
Axiom "x":
forall microop "i0",
AddEdge ((i0, a), (i9, a)).
)"), FatalError);

    // Undeclared MemoryAccessStage.
    uspec::Model m;
    m.addStage("a");
    m.memAccessStage = "missing";
    EXPECT_THROW(m.validate(), FatalError);

    // Too many alternatives.
    uspec::Model m2;
    int loc = m2.addStage("a");
    uspec::Axiom ax;
    ax.name = "bad";
    ax.microops = {"i0"};
    uspec::EdgeSpec e;
    e.src = {"i0", loc};
    e.dst = {"i0", loc};
    ax.edgeAlternatives = {{e}, {e}, {e}};
    m2.axioms.push_back(ax);
    EXPECT_THROW(m2.validate(), FatalError);
}
