/**
 * @file
 * Tests for the CDCL SAT solver, including a randomized property test
 * that cross-checks solver verdicts against brute-force enumeration on
 * small formulas, and structured instances (pigeonhole, chains) that
 * exercise conflict analysis, restarts, and assumption handling.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <random>
#include <thread>

#include "sat/solver.hh"

using namespace r2u::sat;

TEST(Sat, TrivialSat)
{
    Solver s;
    Var a = s.newVar();
    Var b = s.newVar();
    s.addClause(mkLit(a), mkLit(b));
    EXPECT_EQ(s.solve(), Result::Sat);
    EXPECT_TRUE(s.modelValue(a) || s.modelValue(b));
}

TEST(Sat, TrivialUnsat)
{
    Solver s;
    Var a = s.newVar();
    s.addClause(mkLit(a));
    EXPECT_FALSE(s.addClause(mkLit(a, true)));
    EXPECT_EQ(s.solve(), Result::Unsat);
}

TEST(Sat, EmptyFormulaIsSat)
{
    Solver s;
    s.newVar();
    EXPECT_EQ(s.solve(), Result::Sat);
}

TEST(Sat, TautologyClausesIgnored)
{
    Solver s;
    Var a = s.newVar();
    EXPECT_TRUE(s.addClause(mkLit(a), mkLit(a, true)));
    EXPECT_EQ(s.solve(), Result::Sat);
}

TEST(Sat, UnitPropagationChain)
{
    Solver s;
    const int n = 50;
    std::vector<Var> v;
    for (int i = 0; i < n; i++)
        v.push_back(s.newVar());
    // v0 and (vi -> vi+1) forces all true.
    s.addClause(mkLit(v[0]));
    for (int i = 0; i + 1 < n; i++)
        s.addClause(mkLit(v[i], true), mkLit(v[i + 1]));
    EXPECT_EQ(s.solve(), Result::Sat);
    for (int i = 0; i < n; i++)
        EXPECT_TRUE(s.modelValue(v[i]));
}

TEST(Sat, XorChainUnsat)
{
    // x1 ^ x2, x2 ^ x3, ..., xn-1 ^ xn, and x1 == xn with odd chain.
    Solver s;
    const int n = 9;
    std::vector<Var> v;
    for (int i = 0; i < n; i++)
        v.push_back(s.newVar());
    for (int i = 0; i + 1 < n; i++) {
        // vi != vi+1
        s.addClause(mkLit(v[i]), mkLit(v[i + 1]));
        s.addClause(mkLit(v[i], true), mkLit(v[i + 1], true));
    }
    // n-1 inequalities over a chain: v0 != v8 has even distance, so
    // v0 == v8 holds; force v0 != v8 to get UNSAT.
    s.addClause(mkLit(v[0]), mkLit(v[n - 1]));
    s.addClause(mkLit(v[0], true), mkLit(v[n - 1], true));
    EXPECT_EQ(s.solve(), Result::Unsat);
}

TEST(Sat, PigeonholeUnsat)
{
    // 4 pigeons, 3 holes: classic hard-ish UNSAT instance.
    const int pigeons = 4, holes = 3;
    Solver s;
    std::vector<std::vector<Var>> p(pigeons, std::vector<Var>(holes));
    for (int i = 0; i < pigeons; i++)
        for (int j = 0; j < holes; j++)
            p[i][j] = s.newVar();
    for (int i = 0; i < pigeons; i++) {
        std::vector<Lit> c;
        for (int j = 0; j < holes; j++)
            c.push_back(mkLit(p[i][j]));
        s.addClause(c);
    }
    for (int j = 0; j < holes; j++)
        for (int i1 = 0; i1 < pigeons; i1++)
            for (int i2 = i1 + 1; i2 < pigeons; i2++)
                s.addClause(mkLit(p[i1][j], true), mkLit(p[i2][j], true));
    EXPECT_EQ(s.solve(), Result::Unsat);
    EXPECT_GT(s.stats().conflicts, 0u);
}

TEST(Sat, AssumptionsSatAndUnsat)
{
    Solver s;
    Var a = s.newVar(), b = s.newVar();
    s.addClause(mkLit(a, true), mkLit(b)); // a -> b
    EXPECT_EQ(s.solve({mkLit(a)}), Result::Sat);
    EXPECT_TRUE(s.modelValue(b));
    // Under assumptions a & ~b it must be UNSAT.
    EXPECT_EQ(s.solve({mkLit(a), mkLit(b, true)}), Result::Unsat);
    EXPECT_FALSE(s.conflictCore().empty());
    // Solver is still usable afterwards.
    EXPECT_EQ(s.solve(), Result::Sat);
}

TEST(Sat, IncrementalAlternatingSatUnsat)
{
    // One long-lived solver, many solve() calls alternating SAT and
    // UNSAT outcomes under assumptions, with the clause DB growing
    // between calls — the usage pattern of the BMC query engine. Each
    // call must fully restore solver state for the next one.
    Solver s;
    Var x = s.newVar(), y = s.newVar();
    s.addClause(mkLit(x, true), mkLit(y)); // x -> y
    for (int round = 0; round < 40; round++) {
        // Fresh activation literal guarding a per-round constraint,
        // alternately consistent and inconsistent with x -> y.
        Var act = s.newVar();
        bool want_unsat = round & 1;
        if (want_unsat) {
            // act -> (x & ~y): contradicts x -> y.
            s.addClause(mkLit(act, true), mkLit(x));
            s.addClause(mkLit(act, true), mkLit(y, true));
            EXPECT_EQ(s.solve({mkLit(act)}), Result::Unsat)
                << "round " << round;
            EXPECT_FALSE(s.conflictCore().empty());
        } else {
            // act -> (x & y): satisfiable.
            s.addClause(mkLit(act, true), mkLit(x));
            s.addClause(mkLit(act, true), mkLit(y));
            ASSERT_EQ(s.solve({mkLit(act)}), Result::Sat)
                << "round " << round;
            EXPECT_TRUE(s.modelValue(x));
            EXPECT_TRUE(s.modelValue(y));
        }
        // Retire the round's constraint.
        s.addClause(mkLit(act, true));
        // The base formula stays satisfiable in between.
        ASSERT_EQ(s.solve(), Result::Sat) << "round " << round;
    }
}

TEST(Sat, ConflictBudgetAlternatesWithUnbudgeted)
{
    // A budget-exhausted Unknown must not poison later calls on the
    // same solver (the engine reuses one solver across queries with
    // differing budgets).
    // Per round: a fresh pigeonhole instance on fresh variables,
    // guarded by a fresh assumption literal. Without the guard the
    // clauses are trivially SAT, so UNSAT is only ever derived *from
    // the assumption* and the solver survives to the next round.
    const int pigeons = 7, holes = 6;
    Solver s;
    for (int round = 0; round < 3; round++) {
        Var g = s.newVar();
        std::vector<std::vector<Var>> p(
            pigeons, std::vector<Var>(holes));
        for (int i = 0; i < pigeons; i++)
            for (int j = 0; j < holes; j++)
                p[i][j] = s.newVar();
        for (int i = 0; i < pigeons; i++) {
            std::vector<Lit> c{mkLit(g, true)};
            for (int j = 0; j < holes; j++)
                c.push_back(mkLit(p[i][j]));
            s.addClause(c);
        }
        for (int j = 0; j < holes; j++)
            for (int i1 = 0; i1 < pigeons; i1++)
                for (int i2 = i1 + 1; i2 < pigeons; i2++)
                    s.addClause(mkLit(p[i1][j], true),
                                mkLit(p[i2][j], true));
        s.setConflictBudget(5);
        EXPECT_EQ(s.solve({mkLit(g)}), Result::Unknown)
            << "round " << round;
        s.setConflictBudget(-1);
        EXPECT_EQ(s.solve({mkLit(g)}), Result::Unsat)
            << "round " << round;
        EXPECT_EQ(s.solve(), Result::Sat) << "round " << round;
    }
}

TEST(Sat, ConflictBudgetReturnsUnknown)
{
    // A hard pigeonhole with a tiny budget must return Unknown.
    const int pigeons = 8, holes = 7;
    Solver s;
    std::vector<std::vector<Var>> p(pigeons, std::vector<Var>(holes));
    for (int i = 0; i < pigeons; i++)
        for (int j = 0; j < holes; j++)
            p[i][j] = s.newVar();
    for (int i = 0; i < pigeons; i++) {
        std::vector<Lit> c;
        for (int j = 0; j < holes; j++)
            c.push_back(mkLit(p[i][j]));
        s.addClause(c);
    }
    for (int j = 0; j < holes; j++)
        for (int i1 = 0; i1 < pigeons; i1++)
            for (int i2 = i1 + 1; i2 < pigeons; i2++)
                s.addClause(mkLit(p[i1][j], true), mkLit(p[i2][j], true));
    s.setConflictBudget(10);
    EXPECT_EQ(s.solve(), Result::Unknown);
    s.setConflictBudget(-1);
    EXPECT_EQ(s.solve(), Result::Unsat);
}

namespace
{

/**
 * Add an (optionally guard-literal-protected) pigeonhole instance:
 * UNSAT, and deterministically hard — PHP(n+1, n) needs exponentially
 * many resolution steps, so small sizes already burn through budgets
 * and deadlines without any timing assumptions.
 */
std::vector<Lit>
addPigeonhole(Solver &s, int pigeons, int holes,
              Lit guard = kLitUndef)
{
    std::vector<std::vector<Var>> p(pigeons, std::vector<Var>(holes));
    for (int i = 0; i < pigeons; i++)
        for (int j = 0; j < holes; j++)
            p[i][j] = s.newVar();
    for (int i = 0; i < pigeons; i++) {
        std::vector<Lit> c;
        if (guard != kLitUndef)
            c.push_back(~guard);
        for (int j = 0; j < holes; j++)
            c.push_back(mkLit(p[i][j]));
        s.addClause(c);
    }
    for (int j = 0; j < holes; j++)
        for (int i1 = 0; i1 < pigeons; i1++)
            for (int i2 = i1 + 1; i2 < pigeons; i2++) {
                if (guard != kLitUndef)
                    s.addClause({~guard, mkLit(p[i1][j], true),
                                 mkLit(p[i2][j], true)});
                else
                    s.addClause(mkLit(p[i1][j], true),
                                mkLit(p[i2][j], true));
            }
    std::vector<Lit> assumps;
    if (guard != kLitUndef)
        assumps.push_back(guard);
    return assumps;
}

} // namespace

TEST(Sat, StopReasonNoneOnCompletedSolves)
{
    Solver s;
    Var a = s.newVar();
    s.addClause(mkLit(a));
    EXPECT_EQ(s.solve(), Result::Sat);
    EXPECT_EQ(s.stopReason(), StopReason::None);
    s.addClause(mkLit(a, true));
    EXPECT_EQ(s.solve(), Result::Unsat);
    EXPECT_EQ(s.stopReason(), StopReason::None);
}

TEST(Sat, ConflictBudgetSetsStopReason)
{
    Solver s;
    addPigeonhole(s, 8, 7);
    s.setConflictBudget(10);
    EXPECT_EQ(s.solve(), Result::Unknown);
    EXPECT_EQ(s.stopReason(), StopReason::ConflictBudget);
    // Lifting the budget resolves the instance and resets the reason.
    s.setConflictBudget(-1);
    EXPECT_EQ(s.solve(), Result::Unsat);
    EXPECT_EQ(s.stopReason(), StopReason::None);
}

TEST(Sat, PropagationBudgetReturnsUnknown)
{
    Solver s;
    addPigeonhole(s, 8, 7);
    s.setPropagationBudget(200);
    EXPECT_EQ(s.solve(), Result::Unknown);
    EXPECT_EQ(s.stopReason(), StopReason::PropagationBudget);
    s.setPropagationBudget(-1);
    EXPECT_EQ(s.solve(), Result::Unsat);
    EXPECT_EQ(s.stopReason(), StopReason::None);
}

TEST(Sat, DeadlineReturnsUnknown)
{
    // Hard enough that a 1 ms deadline always fires well before the
    // refutation completes; the deadline is polled every 256 stop
    // checks, so the solve returns promptly rather than exactly.
    Solver s;
    addPigeonhole(s, 10, 9);
    s.setDeadline(0.001);
    auto t0 = std::chrono::steady_clock::now();
    EXPECT_EQ(s.solve(), Result::Unknown);
    EXPECT_EQ(s.stopReason(), StopReason::Deadline);
    double waited = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    EXPECT_LT(waited, 30.0); // generous; typical is milliseconds
}

TEST(Sat, InterruptFromAnotherThread)
{
    // Guarded hard instance: the interrupt stops the assumption solve,
    // and dropping the guard afterwards shows the solver survived.
    Solver s;
    Lit guard = mkLit(s.newVar());
    auto assumps = addPigeonhole(s, 11, 10, guard);

    std::thread stopper([&s] {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        s.interrupt();
    });
    EXPECT_EQ(s.solve(assumps), Result::Unknown);
    EXPECT_EQ(s.stopReason(), StopReason::Interrupt);
    stopper.join();

    // Sticky until cleared: the next solve stops immediately too.
    EXPECT_EQ(s.solve(assumps), Result::Unknown);
    EXPECT_EQ(s.stopReason(), StopReason::Interrupt);

    s.clearInterrupt();
    EXPECT_EQ(s.solve(), Result::Sat); // guard free -> trivially SAT
    EXPECT_EQ(s.stopReason(), StopReason::None);
    EXPECT_FALSE(s.modelValue(guard));
}

TEST(Sat, ExternalInterruptFlag)
{
    Solver s;
    Lit guard = mkLit(s.newVar());
    auto assumps = addPigeonhole(s, 11, 10, guard);

    std::atomic<bool> stop{false};
    s.setExternalInterrupt(&stop);
    std::thread stopper([&stop] {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        stop.store(true);
    });
    EXPECT_EQ(s.solve(assumps), Result::Unknown);
    EXPECT_EQ(s.stopReason(), StopReason::Interrupt);
    stopper.join();

    // The shared flag is owned by the caller; clearing it (not the
    // solver) re-arms the solver.
    stop.store(false);
    EXPECT_EQ(s.solve(), Result::Sat);
    EXPECT_EQ(s.stopReason(), StopReason::None);
    s.setExternalInterrupt(nullptr);
}

TEST(Sat, StopReasonNames)
{
    EXPECT_STREQ(stopReasonName(StopReason::None), "none");
    EXPECT_STREQ(stopReasonName(StopReason::ConflictBudget),
                 "conflict-budget");
    EXPECT_STREQ(stopReasonName(StopReason::PropagationBudget),
                 "propagation-budget");
    EXPECT_STREQ(stopReasonName(StopReason::Deadline), "deadline");
    EXPECT_STREQ(stopReasonName(StopReason::Interrupt), "interrupt");
}

namespace
{

/** Brute-force SAT check over up to 16 variables. */
bool
bruteForceSat(int nvars, const std::vector<std::vector<Lit>> &clauses)
{
    for (uint32_t m = 0; m < (1u << nvars); m++) {
        bool ok = true;
        for (const auto &c : clauses) {
            bool sat = false;
            for (Lit l : c) {
                bool v = (m >> var(l)) & 1;
                if (v != sign(l)) {
                    sat = true;
                    break;
                }
            }
            if (!sat) {
                ok = false;
                break;
            }
        }
        if (ok)
            return true;
    }
    return false;
}

} // namespace

/** Randomized cross-check against brute force (3-SAT near threshold). */
class SatRandomTest : public ::testing::TestWithParam<int>
{
};

TEST_P(SatRandomTest, AgreesWithBruteForce)
{
    std::mt19937 rng(777 + GetParam());
    for (int round = 0; round < 60; round++) {
        int nvars = 4 + static_cast<int>(rng() % 9); // 4..12
        int nclauses = static_cast<int>(nvars * 4.3);
        std::vector<std::vector<Lit>> clauses;
        Solver s;
        for (int i = 0; i < nvars; i++)
            s.newVar();
        for (int i = 0; i < nclauses; i++) {
            std::vector<Lit> c;
            for (int k = 0; k < 3; k++) {
                Var v = static_cast<Var>(rng() % nvars);
                c.push_back(mkLit(v, rng() & 1));
            }
            clauses.push_back(c);
            s.addClause(c);
        }
        bool expect = bruteForceSat(nvars, clauses);
        Result got = s.solve();
        ASSERT_EQ(got, expect ? Result::Sat : Result::Unsat)
            << "round " << round << " nvars " << nvars;
        if (got == Result::Sat) {
            // The model must actually satisfy every clause.
            for (const auto &c : clauses) {
                bool sat = false;
                for (Lit l : c)
                    sat |= s.modelValue(l);
                ASSERT_TRUE(sat);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SatRandomTest, ::testing::Range(0, 5));
