/**
 * @file
 * RTL correctness tests for the multi-V-scale design: single-core
 * programs checked against the golden ISA model (randomized property
 * sweep included), multi-core shared-memory interaction, arbiter
 * fairness, bypass/stall corner cases, and the BUGGY decode variant.
 */

#include <gtest/gtest.h>

#include <map>
#include <random>

#include "isa/isa.hh"
#include "vscale/vscale.hh"

using namespace r2u;
using namespace r2u::isa;
using r2u::vscale::Config;
using r2u::vscale::Harness;

namespace
{

/** Golden-model run of a single-core program over word memory. */
void
runGolden(GoldenCore &core, const std::vector<uint32_t> &prog,
          std::map<uint32_t, uint32_t> &mem, int max_steps = 400)
{
    core.reset();
    for (int i = 0; i < max_steps; i++) {
        uint32_t idx = core.pc() / 4;
        Inst inst =
            idx < prog.size() ? decode(prog[idx]) : decode(nopWord());
        uint32_t before = core.pc();
        if (idx == prog.size()) {
            Inst spin;
            spin.op = Op::Jal;
            spin.imm = 0;
            inst = spin;
        }
        core.step(
            inst, [&](uint32_t a) { return mem.count(a) ? mem[a] : 0; },
            [&](uint32_t a, uint32_t v) { mem[a] = v; });
        if (inst.op == Op::Jal && inst.rd == 0 && inst.imm == 0 &&
            core.pc() == before)
            break;
    }
}

} // namespace

TEST(VscaleRtl, ElaboratesAndReportsStats)
{
    auto r = vscale::elaborateVscale(Config::full());
    auto st = r.netlist->stats();
    EXPECT_EQ(st.memories, 9u); // dmem + 4 imem + 4 regfiles
    EXPECT_GT(st.registers, 40u);
    EXPECT_GT(st.flopBits, 500u);
    // Key paper signals exist for all cores.
    for (unsigned c = 0; c < 4; c++) {
        EXPECT_NE(r.signal(vscale::coreSig(c, "inst_DX")), nl::kNoCell);
        EXPECT_NE(r.signal(vscale::coreSig(c, "PC_IF")), nl::kNoCell);
        EXPECT_NE(r.signal(vscale::coreSig(c, "wdata_WB")), nl::kNoCell);
    }
    EXPECT_NE(r.signal("dmem.req_core_q"), nl::kNoCell);
}

TEST(VscaleRtl, SingleCoreArithmetic)
{
    Harness h(Config::full());
    h.loadProgram(0, R"(
        addi x1, x0, 10
        addi x2, x0, 32
        add x3, x1, x2
        sub x4, x2, x1
        and x5, x1, x2
        or x6, x1, x2
        xor x7, x3, x1
    )");
    h.resetAndRun(40);
    EXPECT_TRUE(h.coreSpinning(0));
    EXPECT_EQ(h.reg(0, 3), 42u);
    EXPECT_EQ(h.reg(0, 4), 22u);
    EXPECT_EQ(h.reg(0, 5), 10u & 32u);
    EXPECT_EQ(h.reg(0, 6), 10u | 32u);
    EXPECT_EQ(h.reg(0, 7), 42u ^ 10u);
}

TEST(VscaleRtl, LoadStoreAndBypass)
{
    Harness h(Config::full());
    h.loadProgram(0, R"(
        addi x1, x0, 77
        sw x1, 8(x0)
        lw x2, 8(x0)
        add x3, x2, x2   # uses lw result via bypass
        sw x3, 12(x0)
    )");
    h.resetAndRun(60);
    EXPECT_EQ(h.reg(0, 2), 77u);
    EXPECT_EQ(h.reg(0, 3), 154u);
    EXPECT_EQ(h.dataWord(2), 77u);
    EXPECT_EQ(h.dataWord(3), 154u);
}

TEST(VscaleRtl, BranchesTakenAndNotTaken)
{
    Harness h(Config::full());
    h.loadProgram(0, R"(
        addi x1, x0, 1
        beq x1, x0, 12    # not taken
        addi x2, x0, 5
        bne x1, x0, 8     # taken, skips next
        addi x2, x0, 99
        addi x3, x0, 7
    )");
    h.resetAndRun(40);
    EXPECT_EQ(h.reg(0, 2), 5u);
    EXPECT_EQ(h.reg(0, 3), 7u);
}

TEST(VscaleRtl, X0NeverWritten)
{
    Harness h(Config::full());
    h.loadProgram(0, R"(
        addi x0, x0, 9
        lw x0, 0(x0)
        addi x1, x0, 2
    )");
    h.setDataWord(0, 1234);
    h.resetAndRun(40);
    EXPECT_EQ(h.reg(0, 0), 0u);
    EXPECT_EQ(h.reg(0, 1), 2u);
}

TEST(VscaleRtl, InvalidInstructionHasNoEffect)
{
    Harness h(Config::full());
    // funct3=3'b111 store shape: invalid; fixed design must not write.
    uint32_t sw = encode(parseAsm("sw x1, 0(x0)"));
    uint32_t bad = (sw & ~(7u << 12)) | (7u << 12);
    std::vector<uint32_t> prog = {
        encode(parseAsm("addi x1, x0, 55")),
        bad,
        encode(parseAsm("addi x2, x0, 3")),
    };
    h.loadProgram(0, prog);
    h.resetAndRun(40);
    EXPECT_EQ(h.dataWord(0), 0u) << "invalid store must not update mem";
    EXPECT_EQ(h.reg(0, 2), 3u);
}

TEST(VscaleRtl, BuggyDecodeLetsInvalidStoreThrough)
{
    Config cfg = Config::full();
    cfg.buggy = true;
    Harness h(cfg);
    uint32_t sw = encode(parseAsm("sw x1, 0(x0)"));
    uint32_t bad = (sw & ~(7u << 12)) | (7u << 12);
    h.loadProgram(
        0, std::vector<uint32_t>{encode(parseAsm("addi x1, x0, 55")), bad});
    h.resetAndRun(40);
    // The paper's §6.1 bug: the invalid encoding updates memory.
    EXPECT_EQ(h.dataWord(0), 55u);
}

TEST(VscaleRtl, MessagePassingAcrossCores)
{
    Harness h(Config::full());
    // Core 0: write data then flag. Core 1: spin on flag, read data.
    h.loadProgram(0, R"(
        addi x1, x0, 41
        sw x1, 0(x0)     # data = 41
        addi x2, x0, 1
        sw x2, 4(x0)     # flag = 1
    )");
    h.loadProgram(1, R"(
        lw x1, 4(x0)     # spin until flag
        beq x1, x0, -4
        lw x2, 0(x0)     # must observe data = 41
    )");
    h.resetAndRun(200);
    EXPECT_TRUE(h.coreSpinning(0));
    EXPECT_TRUE(h.coreSpinning(1));
    EXPECT_EQ(h.reg(1, 1), 1u);
    EXPECT_EQ(h.reg(1, 2), 41u);
}

TEST(VscaleRtl, FourCoreContention)
{
    Harness h(Config::full());
    // Each core increments its own counter word many times; the
    // arbiter must keep them all making progress.
    for (unsigned c = 0; c < 4; c++) {
        std::string prog;
        for (int i = 0; i < 4; i++) {
            prog += "lw x1, " + std::to_string(4 * c) + "(x0)\n";
            prog += "addi x1, x1, 1\n";
            prog += "sw x1, " + std::to_string(4 * c) + "(x0)\n";
        }
        h.loadProgram(c, prog);
    }
    h.resetAndRun(400);
    for (unsigned c = 0; c < 4; c++) {
        EXPECT_TRUE(h.coreSpinning(c)) << "core " << c;
        EXPECT_EQ(h.dataWord(c), 4u) << "core " << c;
    }
}

TEST(VscaleRtl, StoreBufferLitmusOutcomeIsSC)
{
    // SB litmus: SC (and the multi-V-scale) allows r1=0,r2=0 only if
    // neither store precedes either load; with this in-order design
    // both loads follow both stores in any run, so r1/r2 cannot both
    // be zero.
    Harness h(Config::full());
    h.loadProgram(0, R"(
        addi x1, x0, 1
        sw x1, 0(x0)
        lw x2, 4(x0)
    )");
    h.loadProgram(1, R"(
        addi x1, x0, 1
        sw x1, 4(x0)
        lw x2, 0(x0)
    )");
    h.resetAndRun(200);
    uint32_t r0 = h.reg(0, 2), r1 = h.reg(1, 2);
    EXPECT_FALSE(r0 == 0 && r1 == 0)
        << "non-SC SB outcome observed on an SC design";
}

/** Randomized single-core programs vs the golden model. */
class VscaleRandomTest : public ::testing::TestWithParam<int>
{
};

TEST_P(VscaleRandomTest, MatchesGoldenModel)
{
    std::mt19937 rng(4242 + GetParam());
    Config cfg = Config::full();
    Harness h(cfg);
    for (int round = 0; round < 6; round++) {
        std::vector<uint32_t> prog;
        int len = 6 + static_cast<int>(rng() % 10);
        for (int i = 0; i < len; i++) {
            int pick = static_cast<int>(rng() % 8);
            Inst inst;
            int rd = 1 + static_cast<int>(rng() % 7);
            int rs1 = static_cast<int>(rng() % 8);
            int rs2 = static_cast<int>(rng() % 8);
            int addr = 4 * static_cast<int>(rng() % cfg.dmemWords);
            switch (pick) {
              case 0:
              case 1:
                inst.op = Op::Addi;
                inst.rd = rd;
                inst.rs1 = rs1;
                inst.imm = static_cast<int32_t>(rng() % 64) - 32;
                break;
              case 2:
                inst.op = Op::Add;
                inst.rd = rd;
                inst.rs1 = rs1;
                inst.rs2 = rs2;
                break;
              case 3:
                inst.op = Op::Sub;
                inst.rd = rd;
                inst.rs1 = rs1;
                inst.rs2 = rs2;
                break;
              case 4:
                inst.op = Op::Xor;
                inst.rd = rd;
                inst.rs1 = rs1;
                inst.rs2 = rs2;
                break;
              case 5:
              case 6:
                inst.op = Op::Lw;
                inst.rd = rd;
                inst.rs1 = 0;
                inst.imm = addr;
                break;
              default:
                inst.op = Op::Sw;
                inst.rs2 = rs2;
                inst.rs1 = 0;
                inst.imm = addr;
                break;
            }
            prog.push_back(encode(inst));
        }

        GoldenCore golden;
        std::map<uint32_t, uint32_t> mem;
        runGolden(golden, prog, mem);

        h.sim().reset();
        h.loadProgram(0, prog);
        for (unsigned c = 1; c < 4; c++)
            h.loadProgram(c, std::vector<uint32_t>{});
        for (unsigned w = 0; w < cfg.dmemWords; w++)
            h.setDataWord(w, 0);
        for (unsigned reg = 0; reg < 8; reg++)
            h.sim().pokeMem(h.design().mem("core_0.regfile"), reg,
                            r2u::Bits(cfg.xlen, 0));
        h.resetAndRun(static_cast<unsigned>(10 * len + 40));
        ASSERT_TRUE(h.coreSpinning(0)) << "round " << round;

        for (unsigned reg = 0; reg < 8; reg++)
            EXPECT_EQ(h.reg(0, reg), golden.reg(static_cast<int>(reg)))
                << "round " << round << " x" << reg;
        for (unsigned w = 0; w < cfg.dmemWords; w++) {
            uint32_t gv = mem.count(4 * w) ? mem[4 * w] : 0;
            EXPECT_EQ(h.dataWord(w), gv) << "round " << round
                                         << " word " << w;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VscaleRandomTest, ::testing::Range(0, 4));

TEST(VscaleRtl, NarrowFormalConfigBehavesTheSame)
{
    Harness h(Config::formal());
    h.loadProgram(0, R"(
        addi x1, x0, 2
        sw x1, 0(x0)
        lw x2, 0(x0)
        add x3, x2, x1
    )");
    h.resetAndRun(60);
    EXPECT_EQ(h.reg(0, 3), 4u);
    EXPECT_EQ(h.dataWord(0), 2u);
}
