/**
 * @file
 * Unit and property tests for the arbitrary-width Bits value type.
 * Property tests cross-check every operation against native uint64_t
 * arithmetic on random values at widths 1..64, plus direct tests at
 * widths above 64 where the multi-word paths engage.
 */

#include <gtest/gtest.h>

#include <random>

#include "common/bits.hh"

using r2u::Bits;

TEST(Bits, BasicConstruction)
{
    Bits b(8, 0xab);
    EXPECT_EQ(b.width(), 8u);
    EXPECT_EQ(b.toUint64(), 0xabu);
    EXPECT_TRUE(b.bit(0));
    EXPECT_TRUE(b.bit(1));
    EXPECT_FALSE(b.bit(2));
}

TEST(Bits, TruncatesToWidth)
{
    Bits b(4, 0xff);
    EXPECT_EQ(b.toUint64(), 0xfu);
}

TEST(Bits, OnesAndAllOnes)
{
    EXPECT_TRUE(Bits::ones(7).isAllOnes());
    EXPECT_EQ(Bits::ones(7).toUint64(), 0x7fu);
    EXPECT_TRUE(Bits::ones(130).isAllOnes());
    EXPECT_FALSE(Bits(130, 5).isAllOnes());
}

TEST(Bits, FromBinString)
{
    Bits b = Bits::fromBinString("1010");
    EXPECT_EQ(b.width(), 4u);
    EXPECT_EQ(b.toUint64(), 10u);
    EXPECT_EQ(b.toBinString(), "1010");
}

TEST(Bits, HexString)
{
    EXPECT_EQ(Bits(12, 0xabc).toHexString(), "abc");
    EXPECT_EQ(Bits(13, 0x1abc).toHexString(), "1abc");
}

TEST(Bits, SignedInterpretation)
{
    Bits b(4, 0xf);
    EXPECT_EQ(b.toInt64(), -1);
    EXPECT_EQ(Bits(4, 7).toInt64(), 7);
    EXPECT_TRUE(Bits(4, 0x8).slt(Bits(4, 0)));  // -8 < 0
    EXPECT_FALSE(Bits(4, 0).slt(Bits(4, 0x8)));
}

TEST(Bits, ConcatAndSlice)
{
    Bits hi(4, 0xa), lo(8, 0x5c);
    Bits c = Bits::concat(hi, lo);
    EXPECT_EQ(c.width(), 12u);
    EXPECT_EQ(c.toUint64(), 0xa5cu);
    EXPECT_EQ(c.slice(8, 4), hi);
    EXPECT_EQ(c.slice(0, 8), lo);
    EXPECT_EQ(c.slice(4, 4).toUint64(), 0x5u);
}

TEST(Bits, ExtendOps)
{
    Bits b(4, 0xc);
    EXPECT_EQ(b.zext(8).toUint64(), 0x0cu);
    EXPECT_EQ(b.sext(8).toUint64(), 0xfcu);
    EXPECT_EQ(Bits(4, 0x4).sext(8).toUint64(), 0x04u);
}

TEST(Bits, WideArithmetic)
{
    // 128-bit: (2^100) + (2^100) == 2^101.
    Bits a(128);
    a.setBit(100, true);
    Bits s = a + a;
    EXPECT_FALSE(s.bit(100));
    EXPECT_TRUE(s.bit(101));

    // Carry propagation across the 64-bit word boundary.
    Bits max64 = Bits::ones(64).zext(128);
    Bits one(128, 1);
    Bits r = max64 + one;
    EXPECT_FALSE(r.bit(63));
    EXPECT_TRUE(r.bit(64));
}

TEST(Bits, WideShifts)
{
    Bits a(100, 1);
    Bits s = a.shl(99);
    EXPECT_TRUE(s.bit(99));
    EXPECT_EQ(s.lshr(99).toUint64(), 1u);
    Bits neg = Bits::ones(100);
    EXPECT_TRUE(neg.ashr(50).isAllOnes());
}

TEST(Bits, Popcount)
{
    EXPECT_EQ(Bits(8, 0xf0).popcount(), 4u);
    EXPECT_EQ(Bits::ones(130).popcount(), 130u);
}

namespace
{

uint64_t
maskFor(unsigned w)
{
    return w >= 64 ? ~0ull : ((1ull << w) - 1);
}

} // namespace

/** Property sweep: Bits ops agree with uint64 reference at width w. */
class BitsPropertyTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(BitsPropertyTest, MatchesNativeArithmetic)
{
    unsigned w = GetParam();
    std::mt19937_64 rng(12345 + w);
    uint64_t mask = maskFor(w);
    for (int iter = 0; iter < 200; iter++) {
        uint64_t x = rng() & mask;
        uint64_t y = rng() & mask;
        Bits a(w, x), b(w, y);

        EXPECT_EQ((a + b).toUint64(), (x + y) & mask);
        EXPECT_EQ((a - b).toUint64(), (x - y) & mask);
        EXPECT_EQ((a * b).toUint64(), (x * y) & mask);
        EXPECT_EQ((a & b).toUint64(), x & y);
        EXPECT_EQ((a | b).toUint64(), x | y);
        EXPECT_EQ((a ^ b).toUint64(), x ^ y);
        EXPECT_EQ((~a).toUint64(), ~x & mask);
        EXPECT_EQ(a == b, x == y);
        EXPECT_EQ(a.ult(b), x < y);

        unsigned sh = static_cast<unsigned>(rng() % (w + 1));
        EXPECT_EQ(a.shl(sh).toUint64(), sh >= 64 ? 0 : (x << sh) & mask);
        EXPECT_EQ(a.lshr(sh).toUint64(), sh >= 64 ? 0 : x >> sh);

        // Signed compare via sign-extension to int64.
        int64_t sx = a.toInt64(), sy = b.toInt64();
        EXPECT_EQ(a.slt(b), sx < sy);
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, BitsPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 7u, 8u, 13u, 16u,
                                           31u, 32u, 33u, 48u, 63u, 64u));

TEST(Bits, HashConsistency)
{
    Bits a(40, 0x123456789a);
    Bits b(40, 0x123456789a);
    Bits c(41, 0x123456789a);
    EXPECT_EQ(a.hash(), b.hash());
    EXPECT_NE(a, c); // different widths are different values
}
