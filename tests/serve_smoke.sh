#!/bin/sh
# Crash-recovery smoke test for rtl2uspec_serve (ISSUE 10): start the
# daemon, hit it with 4 concurrent clients, SIGKILL it mid-flight,
# restart on the same state dir, re-issue, and require the resulting
# .uarch to be byte-identical (cmp) to a single-process cold run.
# Finishes with a SIGTERM graceful-drain exit-code assert.
#
# usage: serve_smoke.sh BUILD_DIR SOURCE_DIR
set -eu

BUILD=$1
SRC=$2
SERVE=$BUILD/tools/rtl2uspec_serve
RTL=$BUILD/tools/rtl2uspec

TMP=$(mktemp -d)
trap 'kill -9 "$daemon_pid" 2>/dev/null || true; rm -rf "$TMP"' EXIT
daemon_pid=

SOCK=$TMP/daemon.sock
STATE=$TMP/state
D=$SRC/designs

# --- reference: single-process cold run through the plain CLI ---
"$RTL" --top multi_vscale --meta "$D/vscale.meta" \
    -P XLEN=8 -P PC_BITS=6 -P NREGS=8 -P REG_BITS=3 \
    -P IMEM_WORDS=16 -P IMEM_ABITS=4 \
    --out "$TMP/ref.uarch" --quiet \
    "$D/multi_vscale.v" "$D/vscale_core.v" "$D/vscale_mem.v" \
    "$D/vscale_arbiter.v"

request() {
    # $1 = output model path
    cat <<EOF
{"type":"synthesize","top":"multi_vscale","meta":"$D/vscale.meta",
 "files":["$D/multi_vscale.v","$D/vscale_core.v","$D/vscale_mem.v",
          "$D/vscale_arbiter.v"],
 "params":{"XLEN":8,"PC_BITS":6,"NREGS":8,"REG_BITS":3,
           "IMEM_WORDS":16,"IMEM_ABITS":4},
 "jobs":1,"out":"$1"}
EOF
}

start_daemon() {
    "$SERVE" --socket "$SOCK" --state "$STATE" --workers 2 \
        >"$TMP/daemon.log" 2>&1 &
    daemon_pid=$!
    # Wait until the daemon answers a ping.
    ok=0
    for _ in $(seq 1 100); do
        if "$SERVE" --connect "$SOCK" --json '{"type":"ping"}' \
            --attempts 1 >/dev/null 2>&1; then
            ok=1
            break
        fi
        sleep 0.1
    done
    [ "$ok" -eq 1 ] || { echo "daemon never answered on $SOCK"; exit 1; }
}

echo "== phase 1: daemon + 4 concurrent clients, then kill -9 =="
start_daemon

pids=
for i in 1 2 3 4; do
    request "$TMP/m$i.uarch" | \
        "$SERVE" --connect "$SOCK" --json - --attempts 2 \
        >"$TMP/client$i.json" 2>"$TMP/client$i.err" &
    pids="$pids $!"
done

# SIGKILL the daemon mid-campaign: no drain, no fsync beyond what each
# verdict append already did. In-flight clients may fail; that's the
# point.
sleep 3
kill -9 "$daemon_pid" 2>/dev/null || true
wait "$daemon_pid" 2>/dev/null || true
for p in $pids; do wait "$p" 2>/dev/null || true; done

echo "== phase 2: restart on the same state dir, re-issue =="
start_daemon

request "$TMP/recovered.uarch" | \
    "$SERVE" --connect "$SOCK" --json - >"$TMP/recovered.json"
grep -q '"ok":true' "$TMP/recovered.json" || {
    echo "re-issued request failed:"; cat "$TMP/recovered.json"
    exit 1
}

# The acceptance bar: kill -9 cost only in-flight queries, and the
# recovered model is byte-identical to the cold single-process run.
cmp "$TMP/ref.uarch" "$TMP/recovered.uarch" || {
    echo "recovered model differs from the cold reference"; exit 1
}
echo "recovered model is byte-identical to the cold run"

echo "== phase 3: SIGTERM graceful drain must exit 0 =="
kill -TERM "$daemon_pid"
rc=0
wait "$daemon_pid" || rc=$?
[ "$rc" -eq 0 ] || { echo "drain exited $rc, want 0"; exit 1; }
[ ! -S "$SOCK" ] || { echo "socket not unlinked after drain"; exit 1; }
daemon_pid=

echo "serve_smoke: OK"
