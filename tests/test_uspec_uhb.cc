/**
 * @file
 * Tests for the µspec DSL (print/parse round-trip) and the µhb solver,
 * validated end-to-end with a hand-written SC model of the
 * multi-V-scale: the full 56-test suite must pass on the correct
 * model, and a deliberately weakened model (missing the program-order
 * memory-interface serialization) must fail SB-style tests.
 */

#include <gtest/gtest.h>

#include "check/check.hh"
#include "common/logging.hh"
#include "litmus/litmus.hh"
#include "uhb/uhb.hh"
#include "uspec/uspec.hh"

using namespace r2u;
using namespace r2u::uspec;

namespace
{

/**
 * Hand-written µspec model of the multi-V-scale (what rtl2uspec
 * synthesizes automatically): rows IF_, WB group, memory-interface
 * access point, shared memory, regfile; fetch and memory-interface
 * order both track program order.
 */
const char *kVscaleHandModel = R"(
StageName 0 "IF_".
StageName 1 "WB_grp".
StageName 2 "mem_if".
StageName 3 "mem".
StageName 4 "regfile".
MemoryAccessStage "mem_if".
MemoryStage "mem".

Axiom "R_path":
forall microop "i0",
IsAnyRead i0 =>
AddEdges [((i0, IF_), (i0, WB_grp), "path");
          ((i0, IF_), (i0, mem_if), "path");
          ((i0, mem_if), (i0, regfile), "path");
          ((i0, WB_grp), (i0, regfile), "path")].

Axiom "W_path":
forall microop "i0",
IsAnyWrite i0 =>
AddEdges [((i0, IF_), (i0, WB_grp), "path");
          ((i0, IF_), (i0, mem_if), "path");
          ((i0, mem_if), (i0, mem), "path")].

Axiom "PO_fetch":
forall microops "i0", "i1",
SameCore i0 i1 => ProgramOrder i0 i1 =>
AddEdge ((i0, IF_), (i1, IF_), "PO", "orange").

Axiom "PO_wb":
forall microops "i0", "i1",
SameCore i0 i1 => ProgramOrder i0 i1 =>
AddEdge ((i0, WB_grp), (i1, WB_grp), "spatial", "green").

Axiom "PO_mem_if":
forall microops "i0", "i1",
SameCore i0 i1 => ProgramOrder i0 i1 =>
AddEdge ((i0, mem_if), (i1, mem_if), "temporal", "blue").

Axiom "Dataflow_mem":
forall microops "i0", "i1",
IsAnyWrite i0 => IsAnyRead i1 => SamePA i0 i1 => SameData i0 i1 =>
NoWritesInBetween i0 i1 =>
AddEdge ((i0, mem), (i1, regfile), "data", "deeppink").
)";

/** The same model without PO_mem_if: too weak to forbid SB. */
std::string
weakModelText()
{
    std::string text = kVscaleHandModel;
    size_t pos = text.find("Axiom \"PO_mem_if\"");
    size_t end = text.find("Axiom \"Dataflow_mem\"");
    return text.substr(0, pos) + text.substr(end);
}

} // namespace

TEST(Uspec, PrintParseRoundTrip)
{
    Model m = Model::parse(kVscaleHandModel);
    EXPECT_EQ(m.stageNames.size(), 5u);
    EXPECT_EQ(m.axioms.size(), 6u);
    EXPECT_EQ(m.memAccessStage, "mem_if");
    EXPECT_EQ(m.memStage, "mem");

    std::string printed = m.print();
    Model m2 = Model::parse(printed);
    EXPECT_EQ(m2.print(), printed);
    EXPECT_EQ(m2.axioms.size(), m.axioms.size());
    EXPECT_EQ(m2.axioms[0].edgeAlternatives[0].size(), 4u);
}

TEST(Uspec, EitherOrderingRoundTrip)
{
    Model m = Model::parse(R"(
StageName 0 "mem".
Axiom "unordered":
forall microops "i0", "i1",
IsAnyWrite i0 => IsAnyWrite i1 => NotSame i0 i1 => SamePA i0 i1 =>
EitherOrdering ((i0, mem), (i1, mem), "ws").
)");
    ASSERT_EQ(m.axioms.size(), 1u);
    EXPECT_TRUE(m.axioms[0].isEitherOrdering());
    Model m2 = Model::parse(m.print());
    EXPECT_TRUE(m2.axioms[0].isEitherOrdering());
}

TEST(Uspec, ParseErrors)
{
    EXPECT_THROW(Model::parse("Bogus 1 \"x\"."), FatalError);
    EXPECT_THROW(Model::parse(R"(
StageName 0 "a".
Axiom "x":
forall microop "i0",
NotAPredicate i0 =>
AddEdge ((i0, a), (i0, a)).
)"), FatalError);
    EXPECT_THROW(Model::parse(R"(
Axiom "x":
forall microop "i0",
AddEdge ((i0, missing), (i0, missing)).
)"), FatalError);
}

TEST(Uhb, GraphCycleDetection)
{
    uhb::Graph g(2, 2);
    EXPECT_FALSE(g.cyclic());
    g.addEdge(0, 0, 1, 0);
    g.addEdge(1, 0, 1, 1);
    EXPECT_FALSE(g.cyclic());
    g.addEdge(1, 1, 0, 0);
    EXPECT_TRUE(g.cyclic());
    // Duplicate edges are not re-added.
    EXPECT_FALSE(g.addEdge(0, 0, 1, 0));
}

TEST(Uhb, SolveOrientsRfWsFr)
{
    Model m = Model::parse(kVscaleHandModel);
    litmus::Test mp = litmus::standardSuite()[0];
    auto ops = check::microopsOf(mp);
    ASSERT_EQ(ops.size(), 4u);

    // Forbidden MP execution: r1 reads the flag write, r2 reads init.
    uhb::Execution exec;
    exec.ops = ops;
    exec.rf = {-2, -2, 1, -1};
    exec.ws[ops[0].addr] = {0};
    exec.ws[ops[1].addr] = {1};
    exec.ops[2].value = 1;
    exec.ops[3].value = 0;
    auto res = uhb::solve(m, exec);
    EXPECT_FALSE(res.observable) << "forbidden MP outcome must be cyclic";

    // Allowed execution: both reads observe the writes.
    exec.rf = {-2, -2, 1, 0};
    exec.ops[3].value = 1;
    res = uhb::solve(m, exec);
    EXPECT_TRUE(res.observable);
    EXPECT_GT(res.edges, 8u);
}

TEST(Check, HandModelPassesMp)
{
    Model m = Model::parse(kVscaleHandModel);
    litmus::Test mp = litmus::standardSuite()[0];
    check::Options opts;
    opts.collectDot = true;
    auto res = check::checkTest(m, mp, opts);
    EXPECT_TRUE(res.pass) << res.summary();
    EXPECT_FALSE(res.interestingObservable);
    EXPECT_FALSE(res.interestingScAllowed);
    EXPECT_TRUE(res.tight) << "all SC outcomes should be observable";
    EXPECT_NE(res.interestingDot.find("digraph"), std::string::npos);
}

TEST(Check, WeakModelFailsSb)
{
    Model weak = Model::parse(weakModelText());
    litmus::Test sb = litmus::standardSuite()[1];
    auto res = check::checkTest(weak, sb);
    EXPECT_FALSE(res.pass)
        << "a model without memory-order-tracks-PO must admit the "
           "non-SC SB outcome";
    EXPECT_TRUE(res.interestingObservable);
    EXPECT_FALSE(res.violations.empty());
}

/** The hand model must pass the entire 56-test suite. */
class HandModelSuiteTest : public ::testing::TestWithParam<int>
{
};

TEST_P(HandModelSuiteTest, Passes)
{
    static Model m = Model::parse(kVscaleHandModel);
    auto suite = litmus::standardSuite();
    const litmus::Test &t = suite[static_cast<size_t>(GetParam())];
    auto res = check::checkTest(m, t);
    EXPECT_TRUE(res.pass) << res.summary();
    EXPECT_FALSE(res.interestingObservable) << res.summary();
}

INSTANTIATE_TEST_SUITE_P(All56, HandModelSuiteTest,
                         ::testing::Range(0, 56));
