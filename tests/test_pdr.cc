/**
 * @file
 * Tests for the IC3/PDR unbounded proof backend and the proof-engine
 * race: verdict identity with BMC at the same bound on toy FSMs and
 * random netlists (including known-reachable bugs), unbounded
 * convergence on inductive properties, counterexample lowering through
 * the plain BMC path (replayable via bmc::validate), race-win verdict
 * attribution, and race-vs-bmc synthesis identity on the
 * multi-V-scale.
 */

#include <gtest/gtest.h>

#include <random>

#include "bmc/engine.hh"
#include "bmc/pdr.hh"
#include "bmc/validate.hh"
#include "random_netlist.hh"
#include "rtl2uspec/synthesis.hh"
#include "verilog/elaborate.hh"
#include "verilog/parser.hh"
#include "vscale/metadata.hh"
#include "vscale/vscale.hh"

using namespace r2u;
using namespace r2u::bmc;
using sat::Lit;
using r2u::test::RandomDesign;
using r2u::test::makeRandom;

namespace
{

vlog::ElabResult
elab(const std::string &src, const std::string &top)
{
    vlog::Design d = vlog::parseString(src, "test.v");
    vlog::ElabOptions opts;
    opts.top = top;
    return vlog::elaborate(d, opts);
}

const char *kCounter = R"(
    module top (input clk, input en, output wire [3:0] out);
        reg [3:0] q;
        always @(posedge clk) begin
            if (en)
                q <= q + 4'd1;
        end
        assign out = q;
    endmodule
)";

/** q starts 0 and can only ever stay 0: q == 1 is unreachable at
 *  every bound — the minimal unbounded-proof fixture. */
const char *kStickyZero = R"(
    module top (input clk, input d, output wire out);
        reg q;
        always @(posedge clk) begin
            q <= q & d;
        end
        assign out = q;
    endmodule
)";

/** checkProperty with the OR-of-frames form of a frame-local prop —
 *  the exact BMC property the PDR verdict must match. */
CheckResult
bmcOverFrames(const vlog::ElabResult &r, unsigned bound,
              const FramePropertyFn &frame_prop)
{
    return checkProperty(*r.netlist, r.signalMap, {}, bound,
                         [&](PropCtx &ctx) {
                             Lit bad = ctx.cnf().falseLit();
                             for (unsigned f = 0; f < bound; f++)
                                 bad = ctx.cnf().mkOr(
                                     bad, frame_prop(ctx, f));
                             return bad;
                         });
}

PdrResult
pdrAt(const vlog::ElabResult &r, unsigned bound,
      const FramePropertyFn &frame_prop)
{
    PdrOptions popts;
    popts.bound = bound;
    return checkPdr(*r.netlist, r.signalMap, {}, {}, frame_prop,
                    popts);
}

} // namespace

TEST(Pdr, CounterIdentityWithBmcAcrossBounds)
{
    auto r = elab(kCounter, "top");
    // bad: q == 5 at some frame. Shortest reach is 5 steps (en free),
    // so bounds 1..5 prove and bounds >= 6 refute at frame 5.
    FramePropertyFn bad5 = [](PropCtx &ctx, unsigned f) {
        return ctx.eqConst(f, "q", 5);
    };
    for (unsigned bound = 1; bound <= 8; bound++) {
        CheckResult bmc = bmcOverFrames(r, bound, bad5);
        PdrResult pdr = pdrAt(r, bound, bad5);
        EXPECT_EQ(pdr.verdict, bmc.verdict) << "bound " << bound;
        if (bound <= 5)
            EXPECT_EQ(bmc.verdict, Verdict::Proven) << bound;
        else
            EXPECT_EQ(bmc.verdict, Verdict::Refuted) << bound;
        if (pdr.verdict == Verdict::Refuted) {
            EXPECT_EQ(pdr.cexFrame, 5u) << "bound " << bound;
        }
        // A wrapping counter reaches every value: no proof here is
        // ever unbounded.
        EXPECT_FALSE(pdr.unbounded) << "bound " << bound;
    }
}

TEST(Pdr, StickyZeroConvergesUnbounded)
{
    auto r = elab(kStickyZero, "top");
    FramePropertyFn bad = [](PropCtx &ctx, unsigned f) {
        return ctx.eqConst(f, "q", 1);
    };
    PdrResult pdr = pdrAt(r, /*bound=*/4, bad);
    EXPECT_EQ(pdr.verdict, Verdict::Proven);
    EXPECT_TRUE(pdr.unbounded); // frame convergence, not bound
    EXPECT_GT(pdr.clausesLearned, 0u);
    EXPECT_EQ(bmcOverFrames(r, 4, bad).verdict, Verdict::Proven);
}

TEST(Pdr, KnownReachableBugIsRefutedAtItsDepth)
{
    auto r = elab(kCounter, "top");
    // Frame-local env: en pinned high at every frame makes q == 3
    // reachable at exactly frame 3 and unavoidable there.
    FramePropertyFn bad = [](PropCtx &ctx, unsigned f) {
        if (f == 0)
            ctx.pinInput("en", 1);
        return ctx.eqConst(f, "q", 3);
    };
    CheckResult bmc = bmcOverFrames(r, 6, bad);
    PdrResult pdr = pdrAt(r, 6, bad);
    EXPECT_EQ(bmc.verdict, Verdict::Refuted);
    EXPECT_EQ(pdr.verdict, Verdict::Refuted);
    EXPECT_EQ(pdr.cexFrame, 3u);
}

/**
 * Generalization soundness on random netlists: for arbitrary
 * frame-local reachability properties over probe wires, the PDR
 * verdict at a bound must equal BMC's at the same bound — clause
 * generalization (literal dropping under the frame) must never block
 * a reachable state or admit an unreachable one into a refutation.
 */
class PdrRandomTest : public ::testing::TestWithParam<int>
{
};

TEST_P(PdrRandomTest, MatchesBmcOnRandomNetlists)
{
    std::mt19937 rng(1717 + GetParam());
    RandomDesign d = makeRandom(rng);
    std::unordered_map<std::string, nl::CellId> empty_map;

    int refuted = 0, proven = 0;
    for (int pi = 0; pi < 2; pi++) {
        nl::CellId probe = d.probes[pi % d.probes.size()];
        unsigned w = d.netlist.cell(probe).width;
        for (uint64_t c : {uint64_t(0), ~uint64_t(0)}) {
            Bits want(w, c);
            FramePropertyFn bad = [probe, want](PropCtx &ctx,
                                                unsigned f) {
                auto &cnf = ctx.cnf();
                return cnf.mkEqW(ctx.unroller().wire(f, probe),
                                 cnf.constWord(want));
            };
            const unsigned bound = 3;
            CheckResult bmc = checkProperty(
                d.netlist, empty_map, {}, bound, [&](PropCtx &ctx) {
                    Lit v = ctx.cnf().falseLit();
                    for (unsigned f = 0; f < bound; f++)
                        v = ctx.cnf().mkOr(v, bad(ctx, f));
                    return v;
                });
            PdrOptions popts;
            popts.bound = bound;
            popts.maxFrames = bound + 3; // cap convergence search
            PdrResult pdr = checkPdr(d.netlist, empty_map, {}, {},
                                     bad, popts);
            EXPECT_EQ(pdr.verdict, bmc.verdict)
                << "seed " << GetParam() << " probe " << pi
                << " const " << c;
            refuted += bmc.verdict == Verdict::Refuted;
            proven += bmc.verdict == Verdict::Proven;
        }
    }
    // The fixture stays meaningful only if both verdict classes occur
    // across the suite; require at least one decided query per seed.
    EXPECT_GT(refuted + proven, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PdrRandomTest,
                         ::testing::Range(0, 5));

namespace
{

/** Deterministically hard UNSAT pigeonhole over rigid bits: keeps the
 *  incumbent BMC solver busy long enough that a proof challenger
 *  always wins the race. */
Query
hardProvenQuery(const std::string &name, int pigeons, int holes)
{
    Query q;
    q.name = name;
    q.prop = [pigeons, holes](PropCtx &ctx) {
        auto &cnf = ctx.cnf();
        std::vector<std::vector<Lit>> p(pigeons);
        for (int i = 0; i < pigeons; i++)
            for (int j = 0; j < holes; j++)
                p[i].push_back(ctx.rigid("p_" + std::to_string(i) +
                                             "_" + std::to_string(j),
                                         1)[0]);
        for (int i = 0; i < pigeons; i++) {
            Lit any = cnf.falseLit();
            for (int j = 0; j < holes; j++)
                any = cnf.mkOr(any, p[i][j]);
            ctx.assume(any);
        }
        for (int j = 0; j < holes; j++)
            for (int i1 = 0; i1 < pigeons; i1++)
                for (int i2 = i1 + 1; i2 < pigeons; i2++)
                    ctx.assume(cnf.mkOr(~p[i1][j], ~p[i2][j]));
        return cnf.trueLit(); // UNSAT under assumptions => Proven
    };
    // The frame-local form is trivially false — both challengers
    // close it instantly (and the verdicts agree: Proven).
    q.frameProp = [](PropCtx &ctx, unsigned) {
        return ctx.cnf().falseLit();
    };
    return q;
}

} // namespace

/**
 * Satellite 3 regression: when a proof challenger wins the race, the
 * result must name the winning engine (VerdictSource::Race + engine),
 * carry the *winner's* solver-work counters (not the interrupted
 * incumbent's partial work), and bump the per-engine win stats.
 */
TEST(PdrRace, ChallengerWinAttribution)
{
    auto r = elab(kCounter, "top");
    EngineOptions eopts;
    eopts.jobs = 2; // incremental path: the winner interrupts the
                    // incumbent's solver mid-flight
    Engine engine(*r.netlist, r.signalMap, {}, /*bound=*/4, eopts);
    engine.enqueue(hardProvenQuery("race_attrib", 10, 9));
    auto results = engine.drain();
    ASSERT_EQ(results.size(), 1u);
    const CheckResult &res = results[0];
    EXPECT_EQ(res.verdict, Verdict::Proven);
    EXPECT_TRUE(res.engineRaced);
    EXPECT_EQ(res.source, VerdictSource::Race);
    EXPECT_NE(res.engine, EngineKind::Bmc);
    EXPECT_TRUE(res.unbounded);
    // Winner-only attribution: the trivially-false proof costs (near)
    // nothing; the interrupted pigeonhole work must not be charged.
    EXPECT_LT(res.conflicts, 10000u);

    EXPECT_EQ(engine.stats().engineRaces, 1u);
    EXPECT_EQ(engine.stats().bmcWins, 0u);
    EXPECT_EQ(engine.stats().kindWins + engine.stats().pdrWins, 1u);
    EXPECT_EQ(engine.stats().unboundedProofs, 1u);
}

/**
 * Refuted queries through the single-engine PDR path are lowered to a
 * concrete BMC trace: the counterexample must replay through the
 * reference simulator + fresh monitor context (bmc::validate), the
 * same machinery --validate uses.
 */
TEST(PdrRace, CexLoweringReplaysThroughValidate)
{
    auto r = elab(kCounter, "top");
    EngineOptions eopts;
    eopts.jobs = 1;
    eopts.engine = EngineChoice::Pdr;
    Engine engine(*r.netlist, r.signalMap, {}, /*bound=*/6, eopts);

    FramePropertyFn frame_bad = [](PropCtx &ctx, unsigned f) {
        if (f == 0) {
            ctx.pinInput("en", 1);
            ctx.watch("q");
        }
        return ctx.eqConst(f, "q", 3);
    };
    Query q;
    q.name = "pdr_cex_lowering";
    q.prop = [frame_bad](PropCtx &ctx) {
        Lit bad = ctx.cnf().falseLit();
        for (unsigned f = 0; f < ctx.bound(); f++)
            bad = ctx.cnf().mkOr(bad, frame_bad(ctx, f));
        return bad;
    };
    q.frameProp = frame_bad;
    Query q2 = q; // a second copy for the replay below
    engine.enqueue(std::move(q));
    auto results = engine.drain();
    ASSERT_EQ(results.size(), 1u);
    const CheckResult &res = results[0];
    ASSERT_EQ(res.verdict, Verdict::Refuted);
    EXPECT_EQ(res.engine, EngineKind::Pdr);
    ASSERT_FALSE(res.trace.steps.empty());

    ReplayResult replay = replayTrace(*r.netlist, r.signalMap, {}, 6,
                                      q2.prop, res.trace);
    EXPECT_TRUE(replay.ok) << replay.note;
}

/** Single-engine k-induction must agree with BMC verdicts too. */
TEST(PdrRace, KInductionIdentityOnCounter)
{
    auto r = elab(kCounter, "top");
    FramePropertyFn bad5 = [](PropCtx &ctx, unsigned f) {
        return ctx.eqConst(f, "q", 5);
    };
    for (unsigned bound : {4u, 6u}) {
        EngineOptions eopts;
        eopts.jobs = 1;
        eopts.engine = EngineChoice::KInduction;
        Engine engine(*r.netlist, r.signalMap, {}, bound, eopts);
        Query q;
        q.name = "kind_counter";
        q.prop = [bad5](PropCtx &ctx) {
            Lit bad = ctx.cnf().falseLit();
            for (unsigned f = 0; f < ctx.bound(); f++)
                bad = ctx.cnf().mkOr(bad, bad5(ctx, f));
            return bad;
        };
        q.frameProp = bad5;
        engine.enqueue(std::move(q));
        auto results = engine.drain();
        ASSERT_EQ(results.size(), 1u);
        EXPECT_EQ(results[0].verdict, bound <= 5 ? Verdict::Proven
                                                 : Verdict::Refuted)
            << "bound " << bound;
        // Attribution stays with the engine that decided the query
        // even when the refutation is concretized through plain BMC.
        EXPECT_EQ(results[0].engine, EngineKind::KInduction);
        if (results[0].verdict == Verdict::Refuted) {
            EXPECT_FALSE(results[0].trace.steps.empty());
        }
    }
}

namespace
{

vscale::Config
formalConfig()
{
    vscale::Config cfg = vscale::Config::formal();
    cfg.imemWords = 16;
    return cfg;
}

rtl2uspec::SynthesisResult
synthesizeWith(unsigned jobs, EngineChoice engine)
{
    auto design = vscale::elaborateVscale(formalConfig());
    auto md = vscale::vscaleMetadata(formalConfig());
    rtl2uspec::SynthesisOptions opts;
    opts.jobs = jobs;
    opts.engine = engine;
    return rtl2uspec::synthesize(design, md, opts);
}

} // namespace

/**
 * Acceptance: --engine race must synthesize a model bit-identical to
 * --engine bmc on the multi-V-scale at jobs=1 and jobs=4, with every
 * per-SVA verdict equal; and the race must close at least one query
 * with an *unbounded* proof — generality plain BMC cannot produce at
 * any bound.
 */
TEST(PdrRace, VscaleRaceMatchesBmc)
{
    rtl2uspec::SynthesisResult bmc = synthesizeWith(1, EngineChoice::Bmc);
    rtl2uspec::SynthesisResult race1 =
        synthesizeWith(1, EngineChoice::Race);
    rtl2uspec::SynthesisResult race4 =
        synthesizeWith(4, EngineChoice::Race);

    for (const auto *race : {&race1, &race4}) {
        ASSERT_EQ(bmc.svas.size(), race->svas.size());
        for (size_t i = 0; i < bmc.svas.size(); i++) {
            EXPECT_EQ(bmc.svas[i].name, race->svas[i].name) << i;
            EXPECT_EQ(bmc.svas[i].verdict, race->svas[i].verdict)
                << bmc.svas[i].name;
        }
        EXPECT_EQ(bmc.model.print(), race->model.print());
        EXPECT_EQ(bmc.bugs.size(), race->bugs.size());
        EXPECT_GT(race->engineRaces, 0u);
        EXPECT_GE(race->unboundedProofs, 1u);
    }
    EXPECT_EQ(bmc.engineMode, "bmc");
    EXPECT_EQ(bmc.engineRaces, 0u);
    EXPECT_EQ(bmc.unboundedProofs, 0u);
    EXPECT_EQ(race1.engineMode, "race");
}
