/**
 * @file
 * Three-way co-simulation validation: every litmus test in the suite
 * is executed on the multi-V-scale RTL (cycle-accurate simulation)
 * under several start-skew combinations, and each hardware outcome
 * must be (a) allowed by the operational SC reference and (b)
 * observable per the rtl2uspec-synthesized µspec model. This closes
 * the loop hardware -> axiomatic model -> MCM in both directions the
 * paper relies on.
 */

#include <gtest/gtest.h>

#include <set>

#include "check/check.hh"
#include "isa/isa.hh"
#include "litmus/litmus.hh"
#include "mcm/sc_ref.hh"
#include "rtl2uspec/synthesis.hh"
#include "vscale/metadata.hh"
#include "vscale/vscale.hh"

using namespace r2u;

namespace
{

vscale::Config
cfg()
{
    vscale::Config c = vscale::Config::formal();
    c.imemWords = 16;
    return c;
}

const uspec::Model &
synthesizedModel()
{
    static uspec::Model model = [] {
        auto design = vscale::elaborateVscale(cfg());
        auto md = vscale::vscaleMetadata(cfg());
        return rtl2uspec::synthesize(design, md).model;
    }();
    return model;
}

/** Run a litmus test on the RTL with per-core start skews. */
mcm::Outcome
runOnRtl(vscale::Harness &h, const litmus::Test &test,
         const std::vector<unsigned> &skews)
{
    h.sim().reset();
    auto locs = test.locations();
    for (unsigned c = 0; c < vscale::kNumCores; c++) {
        std::string prog;
        unsigned skew =
            c < skews.size() ? skews[c] : 0;
        for (unsigned k = 0; k < skew; k++)
            prog += "nop\n";
        if (c < test.threads.size())
            prog += test.threadAssembly(c);
        h.loadProgram(c, prog);
    }
    h.resetAndRun(250);
    for (unsigned c = 0;
         c < test.threads.size() && c < vscale::kNumCores; c++)
        EXPECT_TRUE(h.coreSpinning(c)) << test.name << " core " << c;

    mcm::Outcome out;
    auto read_regs = test.readRegs();
    for (size_t t = 0; t < test.threads.size(); t++) {
        for (int reg : read_regs[t]) {
            out.regs[{static_cast<int>(t), reg}] = static_cast<int>(
                h.reg(static_cast<unsigned>(t),
                      static_cast<unsigned>(reg)));
        }
    }
    for (size_t l = 0; l < locs.size(); l++)
        out.mem[locs[l]] =
            static_cast<int>(h.dataWord(static_cast<unsigned>(l)));
    return out;
}

/** Observable-per-model outcomes of a test. */
std::set<mcm::Outcome>
modelObservable(const litmus::Test &test)
{
    std::set<mcm::Outcome> out;
    auto locs = test.locations();
    check::forEachExecution(test, [&](const uhb::Execution &exec) {
        auto sr = uhb::solve(synthesizedModel(), exec);
        if (!sr.observable)
            return;
        mcm::Outcome o;
        size_t id = 0;
        for (size_t t = 0; t < test.threads.size(); t++) {
            for (const litmus::Access &a : test.threads[t].ops) {
                if (!a.isWrite)
                    o.regs[{static_cast<int>(t), a.reg}] =
                        exec.ops[id].value;
                id++;
            }
        }
        for (const std::string &loc : locs)
            o.mem[loc] = 0;
        for (const auto &[addr, order] : exec.ws) {
            if (!order.empty())
                o.mem[locs[static_cast<size_t>(addr) / 4]] =
                    exec.ops[order.back()].value;
        }
        out.insert(std::move(o));
    });
    return out;
}

} // namespace

class CosimTest : public ::testing::TestWithParam<int>
{
};

TEST_P(CosimTest, RtlOutcomeIsScAllowedAndModelObservable)
{
    auto suite = litmus::standardSuite();
    const litmus::Test &test = suite[static_cast<size_t>(GetParam())];
    if (test.threads.size() > vscale::kNumCores)
        GTEST_SKIP() << "more threads than cores";

    static vscale::Harness harness(cfg());
    std::set<mcm::Outcome> sc = mcm::enumerateSC(test);
    std::set<mcm::Outcome> observable = modelObservable(test);

    // A handful of skew patterns to vary the interleaving.
    std::vector<std::vector<unsigned>> skew_sets = {
        {0, 0, 0, 0}, {0, 3, 1, 2}, {4, 0, 2, 1}, {2, 2, 0, 5},
        {6, 1, 3, 0},
    };
    for (const auto &skews : skew_sets) {
        mcm::Outcome hw = runOnRtl(harness, test, skews);
        EXPECT_TRUE(sc.count(hw))
            << test.name << ": hardware outcome " << hw.toString()
            << " is not SC-allowed";
        EXPECT_TRUE(observable.count(hw))
            << test.name << ": hardware outcome " << hw.toString()
            << " is not observable per the synthesized model "
               "(model too strong)";
        // And the hardware must never exhibit the probed outcome.
        EXPECT_FALSE(hw.satisfies(test.interesting))
            << test.name << ": forbidden outcome on hardware!";
    }
}

INSTANTIATE_TEST_SUITE_P(Suite, CosimTest, ::testing::Range(0, 20));
