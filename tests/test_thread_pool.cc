/**
 * @file
 * Stress tests for the work-stealing thread pool: basic draining,
 * steal-heavy workloads (one worker's queue loaded with long tasks),
 * exception capture and rethrow from wait(), and pool reuse after an
 * exception — run under TSan in CI to pin down the lock discipline.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/thread_pool.hh"

using namespace r2u;

TEST(ThreadPool, RunsEveryTaskOnce)
{
    ThreadPool pool(4);
    const int n = 1000;
    std::vector<std::atomic<int>> ran(n);
    for (auto &r : ran)
        r.store(0);
    for (int i = 0; i < n; i++)
        pool.submit([&ran, i](unsigned) { ran[i].fetch_add(1); });
    pool.wait();
    for (int i = 0; i < n; i++)
        EXPECT_EQ(ran[i].load(), 1) << "task " << i;
}

TEST(ThreadPool, WorkerIndexInRange)
{
    ThreadPool pool(3);
    std::atomic<bool> bad{false};
    for (int i = 0; i < 300; i++)
        pool.submit([&bad](unsigned w) {
            if (w >= 3)
                bad.store(true);
        });
    pool.wait();
    EXPECT_FALSE(bad.load());
}

TEST(ThreadPool, StealContention)
{
    // Round-robin submission spreads tasks, but uneven task lengths
    // force idle workers to steal; the pool must neither lose nor
    // duplicate tasks and steals() must stay consistent (no locks held
    // while counting).
    ThreadPool pool(4);
    std::atomic<uint64_t> sum{0};
    const int rounds = 8, per_round = 200;
    for (int r = 0; r < rounds; r++) {
        for (int i = 0; i < per_round; i++) {
            pool.submit([&sum, i](unsigned) {
                if (i % 50 == 0)
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(2));
                sum.fetch_add(1);
            });
        }
        pool.wait();
    }
    EXPECT_EQ(sum.load(),
              static_cast<uint64_t>(rounds) * per_round);
    // steals() is monotonic and merely advisory — just read it to make
    // sure the relaxed counter is wired up (TSan checks the rest).
    (void)pool.steals();
}

TEST(ThreadPool, WaitRethrowsFirstTaskException)
{
    ThreadPool pool(4);
    std::atomic<int> completed{0};
    for (int i = 0; i < 100; i++) {
        pool.submit([&completed, i](unsigned) {
            if (i % 10 == 3)
                throw std::runtime_error("task blew up");
            completed.fetch_add(1);
        });
    }
    EXPECT_THROW(pool.wait(), std::runtime_error);
    // All non-throwing tasks still ran: an exception must not abandon
    // the rest of the batch.
    EXPECT_EQ(completed.load(), 90);
}

TEST(ThreadPool, PoolReusableAfterException)
{
    ThreadPool pool(2);
    pool.submit([](unsigned) { throw std::logic_error("first"); });
    EXPECT_THROW(pool.wait(), std::logic_error);

    // A clean batch afterwards must succeed and wait() must not
    // re-report the old exception.
    std::atomic<int> ran{0};
    for (int i = 0; i < 50; i++)
        pool.submit([&ran](unsigned) { ran.fetch_add(1); });
    EXPECT_NO_THROW(pool.wait());
    EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPool, ThrowingTasksUnderContention)
{
    // Stress the exception path together with stealing: many short
    // tasks, a fraction of which throw, across several batches.
    ThreadPool pool(4);
    for (int round = 0; round < 5; round++) {
        std::atomic<int> ran{0};
        const int n = 400;
        for (int i = 0; i < n; i++) {
            pool.submit([&ran, i](unsigned) {
                ran.fetch_add(1);
                if (i % 97 == 0)
                    throw std::runtime_error("boom");
            });
        }
        EXPECT_THROW(pool.wait(), std::runtime_error)
            << "round " << round;
        EXPECT_EQ(ran.load(), n) << "round " << round;
    }
}

TEST(ThreadPool, DestructorSwallowsPendingException)
{
    // A pool destroyed with a captured exception must not terminate.
    ThreadPool pool(2);
    pool.submit([](unsigned) { throw std::runtime_error("ignored"); });
    // No wait(): the destructor drains and swallows.
}
