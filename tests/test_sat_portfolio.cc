/**
 * @file
 * Tests for portfolio solving: the shared learnt-clause pool
 * (sat/share.hh, including a threaded stress shaped for TSan),
 * solver-level clause export/import with and without an import guard,
 * solver cloning, racer verdict identity on a sliced multi-V-scale
 * query corpus (portfolio vs. single-config, inprocessing on vs.
 * off), and the BMC engine's --portfolio path with full
 * trust-but-verify validation — replayed counterexamples and proof
 * re-checks must pass on inprocessed, clause-sharing runs.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <random>
#include <thread>
#include <vector>

#include "bmc/checker.hh"
#include "bmc/engine.hh"
#include "sat/share.hh"
#include "sat/solver.hh"
#include "vscale/metadata.hh"
#include "vscale/vscale.hh"

using namespace r2u;
using sat::Lit;
using sat::mkLit;

namespace
{

using Cnf = std::vector<std::vector<Lit>>;

Cnf
pigeonhole(int pigeons, int holes)
{
    Cnf cnf;
    for (int p = 0; p < pigeons; p++) {
        std::vector<Lit> some;
        for (int h = 0; h < holes; h++)
            some.push_back(mkLit(p * holes + h));
        cnf.push_back(some);
    }
    for (int h = 0; h < holes; h++)
        for (int p1 = 0; p1 < pigeons; p1++)
            for (int p2 = p1 + 1; p2 < pigeons; p2++)
                cnf.push_back({~mkLit(p1 * holes + h),
                               ~mkLit(p2 * holes + h)});
    return cnf;
}

void
load(sat::Solver &s, const Cnf &cnf, int num_vars)
{
    while (s.numVars() < num_vars)
        s.newVar();
    for (const auto &clause : cnf)
        if (!s.addClause(clause))
            break;
}

bool
satisfies(const std::vector<sat::LBool> &model, const Cnf &cnf)
{
    for (const auto &clause : cnf) {
        bool sat = false;
        for (Lit l : clause)
            sat = sat ||
                  ((model[sat::var(l)] ^ sat::sign(l)) ==
                   sat::LBool::True);
        if (!sat)
            return false;
    }
    return true;
}

/** A restart-happy config so pool imports (which happen at restart
 *  boundaries) are guaranteed on any conflict-rich instance. */
sat::SolverConfig
restartStorm()
{
    sat::SolverConfig cfg;
    cfg.lubyUnit = 1;
    return cfg;
}

} // namespace

// ---------------------------------------------------------------------
// ClausePool
// ---------------------------------------------------------------------

TEST(ClausePool, CursorSkipsOwnClausesAndAlreadySeen)
{
    sat::ClausePool pool(2);
    EXPECT_TRUE(pool.publish(0, 2, {mkLit(0), mkLit(1)}));
    EXPECT_TRUE(pool.publish(1, 3, {mkLit(2)}));
    EXPECT_EQ(pool.size(), 2u);

    std::vector<sat::ClausePool::Entry> got;
    pool.collect(0, got);
    ASSERT_EQ(got.size(), 1u); // own publish excluded
    EXPECT_EQ(got[0].producer, 1u);
    EXPECT_EQ(got[0].lbd, 3u);
    ASSERT_EQ(got[0].lits.size(), 1u);
    EXPECT_EQ(got[0].lits[0], mkLit(2));

    got.clear();
    pool.collect(0, got); // cursor advanced: nothing new
    EXPECT_TRUE(got.empty());

    EXPECT_TRUE(pool.publish(1, 2, {mkLit(3)}));
    pool.collect(0, got);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].lits[0], mkLit(3));
}

TEST(ClausePool, CapacityBoundsAndCountsDrops)
{
    sat::ClausePool pool(1, 2);
    EXPECT_TRUE(pool.publish(0, 2, {mkLit(0)}));
    EXPECT_TRUE(pool.publish(0, 2, {mkLit(1)}));
    EXPECT_FALSE(pool.publish(0, 2, {mkLit(2)}));
    EXPECT_EQ(pool.size(), 2u);
    EXPECT_EQ(pool.dropped(), 1u);
}

TEST(ClausePool, ConcurrentPublishCollect)
{
    // Shaped for TSan: every producer also collects concurrently, so
    // the append path and the cursor path race on the one mutex.
    const unsigned kProducers = 4;
    const int kEach = 250;
    sat::ClausePool pool(kProducers, 1u << 14);
    std::vector<std::thread> threads;
    std::vector<std::vector<sat::ClausePool::Entry>> got(kProducers);
    for (unsigned p = 0; p < kProducers; p++) {
        threads.emplace_back([&, p] {
            for (int i = 0; i < kEach; i++) {
                ASSERT_TRUE(pool.publish(
                    p, 2, {mkLit(static_cast<int>(p) * kEach + i)}));
                if (i % 16 == 0)
                    pool.collect(p, got[p]);
            }
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(pool.size(), kProducers * static_cast<size_t>(kEach));
    EXPECT_EQ(pool.dropped(), 0u);
    // Drain the rest now that every producer has finished; each
    // consumer must have seen exactly everyone else's clauses once.
    for (unsigned p = 0; p < kProducers; p++) {
        pool.collect(p, got[p]);
        for (const auto &e : got[p])
            EXPECT_NE(e.producer, p);
        EXPECT_EQ(got[p].size(), (kProducers - 1) *
                                     static_cast<size_t>(kEach))
            << "consumer " << p;
    }
}

// ---------------------------------------------------------------------
// Solver-level clause export / import
// ---------------------------------------------------------------------

TEST(ClauseSharing, ExportThenImportKeepsVerdict)
{
    const int kVars = 7 * 6;
    Cnf cnf = pigeonhole(7, 6);

    sat::ClausePool pool(3);
    sat::Solver producer;
    producer.setConfig(restartStorm());
    load(producer, cnf, kVars);
    producer.setShare(&pool, 0);
    EXPECT_EQ(producer.solve(), sat::Result::Unsat);
    EXPECT_GT(producer.stats().sharedExported, 0u);
    ASSERT_GT(pool.size(), 0u);

    sat::Solver importer;
    importer.setConfig(restartStorm());
    load(importer, cnf, kVars);
    importer.setShare(&pool, 1);
    EXPECT_EQ(importer.solve(), sat::Result::Unsat);
    EXPECT_GT(importer.stats().sharedImported, 0u);
}

TEST(ClauseSharing, GuardedImportStaysSoundBothPolarities)
{
    const int kVars = 7 * 6;
    Cnf cnf = pigeonhole(7, 6);

    sat::ClausePool pool(2);
    sat::Solver producer;
    producer.setConfig(restartStorm());
    load(producer, cnf, kVars);
    producer.setShare(&pool, 0);
    ASSERT_EQ(producer.solve(), sat::Result::Unsat);
    ASSERT_GT(pool.size(), 0u);

    // Imported clauses arrive as (guard OR clause): vacuous when the
    // guard is assumed true, active when assumed false. The formula
    // is UNSAT either way — a wrong import would only ever show up as
    // a Sat answer or a crash.
    sat::Solver guarded;
    guarded.setConfig(restartStorm());
    load(guarded, cnf, kVars);
    const sat::Var g = guarded.newVar();
    guarded.setShare(&pool, 1, mkLit(g));
    EXPECT_EQ(guarded.solve({mkLit(g)}), sat::Result::Unsat);
    EXPECT_EQ(guarded.solve({~mkLit(g)}), sat::Result::Unsat);
    EXPECT_GT(guarded.stats().sharedImported, 0u);
}

TEST(ClauseSharing, CloneFromReplicatesDatabaseAndVerdicts)
{
    std::mt19937 rng(31337);
    const int kVars = 20;
    Cnf cnf;
    std::uniform_int_distribution<int> pick(0, kVars - 1);
    for (int i = 0; i < 80; i++) {
        std::vector<Lit> clause;
        while (clause.size() < 3) {
            Lit l = mkLit(pick(rng), (rng() & 1) != 0);
            bool dup = false;
            for (Lit o : clause)
                dup = dup || sat::var(o) == sat::var(l);
            if (!dup)
                clause.push_back(l);
        }
        cnf.push_back(clause);
    }

    sat::Solver a;
    load(a, cnf, kVars);
    (void)a.solve(); // accumulate learnts / phases / activities

    sat::Solver b;
    b.cloneFrom(a);
    EXPECT_EQ(b.numVars(), a.numVars());

    Cnf a_db, b_db;
    a.exportCnf(a_db, true);
    b.exportCnf(b_db, true);
    EXPECT_EQ(a_db, b_db) << "clone must carry learnts too";

    for (int s = 0; s < 4; s++) {
        std::vector<Lit> as{mkLit(s, false), mkLit(kVars - 1 - s, true)};
        EXPECT_EQ(a.solve(as), b.solve(as)) << "assumption set " << s;
    }
}

// ---------------------------------------------------------------------
// Sliced vscale query corpus: portfolio vs. single config,
// inprocessing on vs. off
// ---------------------------------------------------------------------

namespace
{

struct QueryCnf
{
    Cnf clauses;
    Lit act;
    int numVars = 0;
};

constexpr unsigned kBound = 5;

vscale::Config
formalConfig()
{
    vscale::Config cfg = vscale::Config::formal();
    cfg.imemWords = 16;
    return cfg;
}

/** Per-SVA-style CNF snapshots of COI-sliced vscale queries — the
 *  exact snapshot the engine hands portfolio challengers. */
const std::vector<QueryCnf> &
vscaleCorpus()
{
    static const std::vector<QueryCnf> corpus = [] {
        auto design = vscale::elaborateVscale(formalConfig());
        auto md = vscale::vscaleMetadata(formalConfig());
        std::vector<QueryCnf> out;
        for (const auto &core : md.cores) {
            for (int kind = 0; kind < 2; kind++) {
                bmc::PropCtx ctx(*design.netlist, design.signalMap, {},
                                 kBound);
                ctx.beginQuery();
                Lit bad;
                if (kind == 0) {
                    bad = ctx.cnf().falseLit();
                    for (unsigned f = 1; f < kBound; f++)
                        bad = ctx.cnf().mkOr(
                            bad, ctx.changedAt(f, core.ifr));
                } else {
                    bad = ctx.eqConst(kBound - 1, core.imPc, 2);
                }
                ctx.assume(bad);
                QueryCnf q;
                ctx.solver().exportCnf(q.clauses, false);
                q.act = ctx.activation();
                q.numVars = ctx.solver().numVars();
                out.push_back(std::move(q));
            }
            if (out.size() >= 4) // two cores are representative
                break;
        }
        return out;
    }();
    return corpus;
}

sat::SolverConfig
racerConfig(unsigned r)
{
    sat::SolverConfig cfg;
    if (r == 1) {
        cfg.restart = sat::SolverConfig::Restart::Glucose;
        cfg.lbdReduce = true;
    } else if (r >= 2) {
        cfg.polarity = sat::SolverConfig::Polarity::Rand;
        cfg.seed = 0x9E37 + r;
    }
    return cfg;
}

void
loadQuery(sat::Solver &s, const QueryCnf &q,
          const sat::SolverConfig &cfg)
{
    s.setConfig(cfg);
    while (s.numVars() < q.numVars)
        s.newVar();
    for (const auto &clause : q.clauses)
        if (!s.addClause(clause))
            break;
}

/** First-definitive-verdict-wins race with a shared clause pool, the
 *  micro version of Engine::racePortfolio. */
sat::Result
race(const QueryCnf &q, unsigned racers, std::vector<sat::LBool> *model)
{
    sat::ClausePool pool(racers);
    std::atomic<bool> stop{false};
    std::mutex mu;
    sat::Result verdict = sat::Result::Unknown;
    std::vector<std::thread> threads;
    for (unsigned r = 0; r < racers; r++) {
        threads.emplace_back([&, r] {
            sat::Solver s;
            loadQuery(s, q, racerConfig(r));
            s.setShare(&pool, r);
            s.setExternalInterrupt(&stop);
            sat::Result mine = s.solve({q.act});
            if (mine == sat::Result::Unknown)
                return;
            std::lock_guard<std::mutex> lock(mu);
            if (verdict == sat::Result::Unknown) {
                verdict = mine;
                if (mine == sat::Result::Sat && model)
                    *model = s.model();
                stop.store(true);
            }
        });
    }
    for (auto &t : threads)
        t.join();
    return verdict;
}

} // namespace

TEST(VscaleCorpus, PortfolioMatchesSingleConfig)
{
    for (size_t i = 0; i < vscaleCorpus().size(); i++) {
        const QueryCnf &q = vscaleCorpus()[i];
        sat::Solver single;
        loadQuery(single, q, sat::SolverConfig{});
        sat::Result want = single.solve({q.act});
        ASSERT_NE(want, sat::Result::Unknown);

        std::vector<sat::LBool> model;
        sat::Result got = race(q, 3, &model);
        EXPECT_EQ(got, want) << "query " << i;
        if (got == sat::Result::Sat) {
            // The racer's reconstructed model must satisfy the
            // original snapshot clauses (plus the activation), which
            // is what lets --validate replay the counterexample.
            Cnf all = q.clauses;
            all.push_back({q.act});
            EXPECT_TRUE(satisfies(model, all)) << "query " << i;
        }
    }
}

TEST(VscaleCorpus, InprocessingOnOffVerdictIdentity)
{
    for (size_t i = 0; i < vscaleCorpus().size(); i++) {
        const QueryCnf &q = vscaleCorpus()[i];
        sat::SolverConfig on;
        on.inprocessPeriod = 1;
        on.lubyUnit = 8;
        sat::SolverConfig off;
        off.inprocessPeriod = 0;

        sat::Solver s_on, s_off;
        loadQuery(s_on, q, on);
        loadQuery(s_off, q, off);
        sat::Result r_on = s_on.solve({q.act});
        sat::Result r_off = s_off.solve({q.act});
        EXPECT_EQ(r_on, r_off) << "query " << i;
        if (r_on == sat::Result::Sat) {
            Cnf all = q.clauses;
            all.push_back({q.act});
            EXPECT_TRUE(satisfies(s_on.model(), all)) << "query " << i;
        }
    }
}

// ---------------------------------------------------------------------
// Engine --portfolio path under full trust-but-verify validation
// ---------------------------------------------------------------------

namespace
{

std::vector<bmc::Verdict>
enqueueVscaleQueries(bmc::Engine &engine,
                     const rtl2uspec::DesignMetadata &md)
{
    std::vector<bmc::Verdict> want;
    for (const auto &core : md.cores) {
        bmc::Query moves;
        moves.name = core.prefix + "ifr_moves";
        std::string ifr = core.ifr;
        moves.prop = [ifr](bmc::PropCtx &ctx) {
            Lit bad = ctx.cnf().falseLit();
            for (unsigned f = 1; f < kBound; f++)
                bad = ctx.cnf().mkOr(bad, ctx.changedAt(f, ifr));
            return bad;
        };
        moves.bound = kBound;
        engine.enqueue(std::move(moves));
        want.push_back(bmc::Verdict::Refuted);

        bmc::Query aligned;
        aligned.name = core.prefix + "pc_aligned";
        std::string pc = core.imPc;
        aligned.prop = [pc](bmc::PropCtx &ctx) {
            return ctx.eqConst(kBound - 1, pc, 2);
        };
        aligned.bound = kBound;
        engine.enqueue(std::move(aligned));
        want.push_back(bmc::Verdict::Proven);
    }
    return want;
}

} // namespace

TEST(EnginePortfolio, RacesValidateAndMatchReference)
{
    auto design = vscale::elaborateVscale(formalConfig());
    auto md = vscale::vscaleMetadata(formalConfig());

    bmc::EngineOptions ref_opts;
    ref_opts.jobs = 1;
    ref_opts.validate = bmc::ValidateMode::Full;
    bmc::Engine reference(*design.netlist, design.signalMap, {}, kBound,
                          ref_opts);

    bmc::EngineOptions port_opts;
    port_opts.jobs = 2;
    port_opts.portfolio = true;
    port_opts.portfolioRacers = 2;
    port_opts.shareClauses = true;
    port_opts.validate = bmc::ValidateMode::Full;
    bmc::Engine portfolio(*design.netlist, design.signalMap, {}, kBound,
                          port_opts);

    bmc::EngineOptions noinp_opts;
    noinp_opts.jobs = 2;
    noinp_opts.inprocess = false;
    noinp_opts.validate = bmc::ValidateMode::Full;
    bmc::Engine no_inprocess(*design.netlist, design.signalMap, {},
                             kBound, noinp_opts);

    auto want = enqueueVscaleQueries(reference, md);
    auto want2 = enqueueVscaleQueries(portfolio, md);
    auto want3 = enqueueVscaleQueries(no_inprocess, md);
    ASSERT_EQ(want, want2);
    ASSERT_EQ(want, want3);

    auto ref_res = reference.drain();
    auto port_res = portfolio.drain();
    auto noinp_res = no_inprocess.drain();
    ASSERT_EQ(ref_res.size(), want.size());
    ASSERT_EQ(port_res.size(), want.size());
    ASSERT_EQ(noinp_res.size(), want.size());

    for (size_t i = 0; i < want.size(); i++) {
        EXPECT_EQ(ref_res[i].verdict, want[i]) << "query " << i;
        EXPECT_EQ(port_res[i].verdict, want[i]) << "query " << i;
        EXPECT_EQ(noinp_res[i].verdict, want[i]) << "query " << i;
        // Full validation replayed every counterexample and
        // re-checked every proof — on inprocessed, clause-sharing
        // solves the reconstructed traces must still replay cleanly.
        EXPECT_TRUE(port_res[i].validated) << "query " << i;
        EXPECT_TRUE(noinp_res[i].validated) << "query " << i;
        EXPECT_EQ(port_res[i].validationMismatches, 0u) << "query " << i;
    }

    EXPECT_EQ(portfolio.stats().portfolioRaces, want.size());
    EXPECT_EQ(portfolio.stats().validationFailures, 0u);
    EXPECT_EQ(no_inprocess.stats().validationFailures, 0u);
    EXPECT_GT(portfolio.stats().replays, 0u);
    EXPECT_GT(portfolio.stats().proofRechecks, 0u);
}
