/**
 * @file
 * Tests for the BMC engine: unrolled register/memory semantics checked
 * against the interpreter, reachability bounds on a counter, rigid
 * variables, assumption handling, and an end-to-end property on the
 * multi-V-scale that refutes the §6.1 invalid-store bug on the BUGGY
 * design and proves its absence on the fixed design.
 */

#include <gtest/gtest.h>

#include "bmc/checker.hh"
#include "common/logging.hh"
#include "verilog/elaborate.hh"
#include "verilog/parser.hh"
#include "vscale/vscale.hh"

using namespace r2u;
using namespace r2u::bmc;
using sat::Lit;

namespace
{

vlog::ElabResult
elab(const std::string &src, const std::string &top)
{
    vlog::Design d = vlog::parseString(src, "test.v");
    vlog::ElabOptions opts;
    opts.top = top;
    return vlog::elaborate(d, opts);
}

const char *kCounter = R"(
    module top (input clk, input en, output wire [3:0] out);
        reg [3:0] q;
        always @(posedge clk) begin
            if (en)
                q <= q + 4'd1;
        end
        assign out = q;
    endmodule
)";

} // namespace

TEST(Bmc, CounterReachabilityBounds)
{
    auto r = elab(kCounter, "top");
    // Can the counter reach 5 within 6 frames (5 steps)? Yes.
    auto res = checkProperty(
        *r.netlist, r.signalMap, {}, 6, [&](PropCtx &ctx) {
            return ctx.eqConst(5, "q", 5);
        });
    EXPECT_EQ(res.verdict, Verdict::Refuted); // "bad" state reachable
    // Within 5 frames (4 steps)? Impossible.
    res = checkProperty(*r.netlist, r.signalMap, {}, 5,
                        [&](PropCtx &ctx) {
                            Lit bad = ctx.cnf().falseLit();
                            for (unsigned f = 0; f < 5; f++)
                                bad = ctx.cnf().mkOr(
                                    bad, ctx.eqConst(f, "q", 5));
                            return bad;
                        });
    EXPECT_EQ(res.verdict, Verdict::Proven);
}

TEST(Bmc, EnableGatesProgress)
{
    auto r = elab(kCounter, "top");
    // If en is pinned low, q stays 0 forever.
    auto res = checkProperty(
        *r.netlist, r.signalMap, {}, 8, [&](PropCtx &ctx) {
            ctx.pinInput("en", 0);
            Lit bad = ctx.cnf().falseLit();
            for (unsigned f = 0; f < 8; f++)
                bad = ctx.cnf().mkOr(bad,
                                     ~ctx.eqConst(f, "q", 0));
            return bad;
        });
    EXPECT_EQ(res.verdict, Verdict::Proven);
}

TEST(Bmc, TraceMatchesInterpreter)
{
    auto r = elab(kCounter, "top");
    // Force en=1 every frame and check the witness trace counts up.
    auto res = checkProperty(
        *r.netlist, r.signalMap, {}, 5, [&](PropCtx &ctx) {
            ctx.pinInput("en", 1);
            ctx.watch("q");
            return ctx.cnf().trueLit(); // any execution is a "violation"
        });
    ASSERT_EQ(res.verdict, Verdict::Refuted);
    ASSERT_EQ(res.trace.steps.size(), 5u);
    for (unsigned f = 0; f < 5; f++)
        EXPECT_EQ(res.trace.steps[f].signals.at("q").toUint64(), f);
    EXPECT_NE(res.trace.toString().find("q"), std::string::npos);
}

TEST(Bmc, RigidVariablesAreTimeInvariant)
{
    auto r = elab(kCounter, "top");
    auto res = checkProperty(
        *r.netlist, r.signalMap, {}, 4, [&](PropCtx &ctx) {
            const sat::Word &k = ctx.rigid("k", 4);
            const sat::Word &k2 = ctx.rigid("k", 4);
            EXPECT_EQ(k, k2); // same rigid on repeated lookup
            // bad: rigid differs from itself via cnf — impossible.
            return ~ctx.cnf().mkEqW(k, k2);
        });
    EXPECT_EQ(res.verdict, Verdict::Proven);
}

TEST(Bmc, MemorySemanticsMatchSimulator)
{
    auto r = elab(R"(
        module top (input clk, input we, input [1:0] waddr,
                    input [7:0] wdata, input [1:0] raddr,
                    output wire [7:0] rdata);
            reg [7:0] m [0:3];
            always @(posedge clk) begin
                if (we)
                    m[waddr] <= wdata;
            end
            assign rdata = m[raddr];
        endmodule
    )", "top");
    // Write 0x5a to address 2 in frame 0; in frame 1 the read of
    // address 2 must return 0x5a, and reads cannot see it in frame 0.
    auto res = checkProperty(
        *r.netlist, r.signalMap, {}, 2, [&](PropCtx &ctx) {
            ctx.pinInputAt(0, "we", 1);
            ctx.pinInputAt(0, "waddr", 2);
            ctx.pinInputAt(0, "wdata", 0x5a);
            ctx.pinInput("raddr", 2);
            Lit bad0 = ctx.eqConst(0, "rdata", 0x5a); // too early
            Lit bad1 = ~ctx.eqConst(1, "rdata", 0x5a); // must hold
            return ctx.cnf().mkOr(bad0, bad1);
        });
    EXPECT_EQ(res.verdict, Verdict::Proven);
}

TEST(Bmc, SymbolicMemoryInitialContents)
{
    auto r = elab(R"(
        module top (input clk, input [1:0] raddr,
                    output wire [7:0] rdata);
            reg [7:0] m [0:3];
            wire unused = clk;
            assign rdata = m[raddr];
        endmodule
    )", "top");
    Unroller::Options opts;
    // With concrete init the contents are zero: rdata != 0 impossible.
    auto res = checkProperty(*r.netlist, r.signalMap, opts, 1,
                             [&](PropCtx &ctx) {
                                 return ~ctx.eqConst(0, "rdata", 0);
                             });
    EXPECT_EQ(res.verdict, Verdict::Proven);
    // With symbolic contents a nonzero read exists.
    opts.symbolicMems.insert(r.mem("m"));
    res = checkProperty(*r.netlist, r.signalMap, opts, 1,
                        [&](PropCtx &ctx) {
                            return ~ctx.eqConst(0, "rdata", 0);
                        });
    EXPECT_EQ(res.verdict, Verdict::Refuted);
}

TEST(Bmc, ConflictBudgetYieldsUndetermined)
{
    auto r = vscale::elaborateVscale(vscale::Config::formal());
    Unroller::Options opts;
    for (unsigned c = 0; c < 4; c++)
        opts.symbolicMems.insert(
            r.mem("imem_" + std::to_string(c) + ".mem"));
    // A satisfiable query with a zero conflict budget must come back
    // undetermined rather than Refuted.
    auto res = checkProperty(
        *r.netlist, r.signalMap, opts, 8,
        [&](PropCtx &ctx) {
            ctx.pinInput("reset", 0);
            return ctx.eqConst(7, "core_0.PC_IF", 12);
        },
        0);
    EXPECT_EQ(res.verdict, Verdict::Unknown);
}

namespace
{

/**
 * The §6.1 property: every write request accepted by the arbiter
 * corresponds to an architecturally valid sw in the issuing core's DX
 * stage. Violated by the BUGGY design (invalid funct3=3'b111 store
 * shapes write memory), proven on the fixed design.
 */
CheckResult
checkInvalidStoreProperty(bool buggy, unsigned bound)
{
    vscale::Config cfg = vscale::Config::formal();
    cfg.buggy = buggy;
    auto r = vscale::elaborateVscale(cfg);
    Unroller::Options opts;
    for (unsigned c = 0; c < 4; c++)
        opts.symbolicMems.insert(
            r.mem("imem_" + std::to_string(c) + ".mem"));
    opts.symbolicMems.insert(r.mem("dmem.mem"));

    return checkProperty(
        *r.netlist, r.signalMap, opts, bound, [&](PropCtx &ctx) {
            ctx.pinInput("reset", 0);
            Lit bad = ctx.cnf().falseLit();
            for (unsigned f = 0; f < bound; f++) {
                for (unsigned c = 0; c < 4; c++) {
                    const sat::Word &grant = ctx.at(f, "grant");
                    Lit granted = grant[c];
                    Lit wen = ctx.at(
                        f, vscale::coreSig(c, "dmem_wen"))[0];
                    Lit is_sw =
                        ctx.at(f, vscale::coreSig(c, "is_sw"))[0];
                    bad = ctx.cnf().mkOr(
                        bad, ctx.cnf().mkAnd(granted,
                                             ctx.cnf().mkAnd(
                                                 wen, ~is_sw)));
                }
            }
            ctx.watch("core_0.inst_DX");
            ctx.watch("core_0.dmem_wen");
            ctx.watch("core_0.is_sw");
            ctx.watch("grant");
            return bad;
        });
}

} // namespace

TEST(Bmc, BuggyVscaleInvalidStoreRefuted)
{
    CheckResult res = checkInvalidStoreProperty(true, 4);
    ASSERT_EQ(res.verdict, Verdict::Refuted);
    // The counterexample must feature an invalid store-shaped encoding
    // (opcode STORE, funct3 != 010) issuing a write.
    bool found = false;
    for (const auto &step : res.trace.steps) {
        const Bits &inst = step.signals.at("core_0.inst_DX");
        uint32_t w = static_cast<uint32_t>(inst.toUint64());
        bool store_shape = (w & 0x7f) == 0x23;
        bool bad_funct3 = ((w >> 12) & 7) != 2;
        if (store_shape && bad_funct3 &&
            step.signals.at("core_0.dmem_wen").toBool())
            found = true;
    }
    // The violating core may be any of the four; core_0 is just the
    // one we watched, so only require the verdict when not found.
    if (!found)
        SUCCEED() << "violation on a core other than core_0";
}

TEST(Bmc, FixedVscaleInvalidStoreProven)
{
    CheckResult res = checkInvalidStoreProperty(false, 6);
    EXPECT_EQ(res.verdict, Verdict::Proven);
}
