/**
 * @file
 * Unit tests for the SVA monitor encodings (src/sva): occupancy,
 * one-interval assumptions, entry/exit events, seen-prefixes, and
 * strict-ordering monitors — each validated by solving small BMC
 * queries on a counter design where event times are fully known.
 */

#include <gtest/gtest.h>

#include "bmc/checker.hh"
#include "sva/monitors.hh"
#include "verilog/elaborate.hh"
#include "verilog/parser.hh"

using namespace r2u;
using namespace r2u::bmc;
using sat::Lit;

namespace
{

/** Free-running counter: q == k exactly at frame k (width 4). */
vlog::ElabResult
counterDesign()
{
    vlog::Design d = vlog::parseString(R"(
        module top (input clk, output wire [3:0] out);
            reg [3:0] q;
            always @(posedge clk) begin
                q <= q + 4'd1;
            end
            assign out = q;
        endmodule
    )", "counter.v");
    vlog::ElabOptions opts;
    opts.top = "top";
    return vlog::elaborate(d, opts);
}

} // namespace

TEST(SvaMonitors, OccupancyMatchesKnownSchedule)
{
    auto design = counterDesign();
    // q equals 3 exactly at frame 3: occupancy[3] must be forced.
    auto res = checkProperty(
        *design.netlist, design.signalMap, {}, 8, [&](PropCtx &ctx) {
            auto occ = sva::occupancy(ctx, "q",
                                      ctx.cnf().constWord(4, 3));
            // Violated iff occ is wrong at any frame.
            Lit bad = ctx.cnf().falseLit();
            for (unsigned f = 0; f < 8; f++) {
                Lit expect = f == 3 ? occ[f] : ~occ[f];
                bad = ctx.cnf().mkOr(bad, ~expect);
            }
            return bad;
        });
    EXPECT_EQ(res.verdict, Verdict::Proven);
}

TEST(SvaMonitors, OneIntervalAcceptsCounterOccupancy)
{
    auto design = counterDesign();
    // With a rigid value, occupancy of q==k is one 1-frame interval;
    // the assumption must be satisfiable for some k within bound.
    auto res = checkProperty(
        *design.netlist, design.signalMap, {}, 8, [&](PropCtx &ctx) {
            const sat::Word &k = ctx.rigid("k", 4);
            auto occ = sva::occupancy(ctx, "q", k);
            sva::assumeOneInterval(ctx, occ);
            return ctx.cnf().trueLit(); // SAT iff assumptions hold
        });
    EXPECT_EQ(res.verdict, Verdict::Refuted); // satisfiable
}

TEST(SvaMonitors, OneIntervalRejectsSplitOccupancy)
{
    auto design = counterDesign();
    // q wraps mod 16; at bound 20, q==1 occurs at frames 1 and 17 —
    // two intervals. The one-interval assumption must exclude k==1.
    auto res = checkProperty(
        *design.netlist, design.signalMap, {}, 20, [&](PropCtx &ctx) {
            const sat::Word &k = ctx.rigid("k", 4);
            auto occ = sva::occupancy(ctx, "q", k);
            sva::assumeOneInterval(ctx, occ);
            return ctx.cnf().mkEqW(k, ctx.cnf().constWord(4, 1));
        });
    EXPECT_EQ(res.verdict, Verdict::Proven); // k==1 impossible
}

TEST(SvaMonitors, EntryExitAndSeenPrefix)
{
    auto design = counterDesign();
    auto res = checkProperty(
        *design.netlist, design.signalMap, {}, 8, [&](PropCtx &ctx) {
            auto &cnf = ctx.cnf();
            auto occ = sva::occupancy(ctx, "q", cnf.constWord(4, 2));
            auto entry = sva::entryEvents(ctx, occ);
            auto exit = sva::exitEvents(ctx, occ);
            auto seen = sva::seenPrefix(ctx, occ);
            // Entry at frame 2, exit at frame 2, seen from frame 2 on.
            Lit ok = cnf.trueLit();
            ok = cnf.mkAnd(ok, entry[2]);
            ok = cnf.mkAnd(ok, ~entry[3]);
            ok = cnf.mkAnd(ok, exit[2]);
            ok = cnf.mkAnd(ok, ~exit[1]);
            ok = cnf.mkAnd(ok, ~seen[1]);
            ok = cnf.mkAnd(ok, seen[5]);
            ok = cnf.mkAnd(ok, sva::occurs(ctx, occ));
            return ~ok;
        });
    EXPECT_EQ(res.verdict, Verdict::Proven);
}

TEST(SvaMonitors, StrictOrderingOfCounterValues)
{
    auto design = counterDesign();
    // q==2 occurs strictly before q==5: violation monitor is UNSAT.
    auto res = checkProperty(
        *design.netlist, design.signalMap, {}, 8, [&](PropCtx &ctx) {
            auto a = sva::occupancy(ctx, "q",
                                    ctx.cnf().constWord(4, 2));
            auto b = sva::occupancy(ctx, "q",
                                    ctx.cnf().constWord(4, 5));
            return sva::notStrictlyBefore(ctx, a, b);
        });
    EXPECT_EQ(res.verdict, Verdict::Proven);

    // And q==5 is NOT strictly before q==2.
    res = checkProperty(
        *design.netlist, design.signalMap, {}, 8, [&](PropCtx &ctx) {
            auto a = sva::occupancy(ctx, "q",
                                    ctx.cnf().constWord(4, 5));
            auto b = sva::occupancy(ctx, "q",
                                    ctx.cnf().constWord(4, 2));
            return sva::notStrictlyBefore(ctx, a, b);
        });
    EXPECT_EQ(res.verdict, Verdict::Refuted);
}

TEST(SvaMonitors, AssumeStrictlyBeforeConstrainsRigids)
{
    auto design = counterDesign();
    // If occupancy(j) must precede occupancy(k), then j < k for the
    // monotone counter (within the non-wrapping window).
    auto res = checkProperty(
        *design.netlist, design.signalMap, {}, 10, [&](PropCtx &ctx) {
            const sat::Word &j = ctx.rigid("j", 4);
            const sat::Word &k = ctx.rigid("k", 4);
            auto a = sva::occupancy(ctx, "q", j);
            auto b = sva::occupancy(ctx, "q", k);
            sva::assumeStrictlyBefore(ctx, a, b);
            // Violation: j >= k.
            return ~ctx.cnf().mkUltW(j, k);
        });
    EXPECT_EQ(res.verdict, Verdict::Proven);
}

TEST(SvaMonitors, EventDuringAndChangeDuring)
{
    auto design = counterDesign();
    auto res = checkProperty(
        *design.netlist, design.signalMap, {}, 8, [&](PropCtx &ctx) {
            auto &cnf = ctx.cnf();
            auto occ = sva::occupancy(ctx, "q", cnf.constWord(4, 4));
            // The counter register changes at every frame >= 1, so a
            // change during occupancy of q==4 is certain.
            Lit change = sva::changeDuring(
                ctx, occ, ctx.cellOf("q"));
            // eventDuring with an always-true event fires too.
            sva::EventVec always(ctx.bound(), cnf.trueLit());
            Lit ev = sva::eventDuring(ctx, occ, always);
            return ~cnf.mkAnd(change, ev);
        });
    EXPECT_EQ(res.verdict, Verdict::Proven);
}

TEST(SvaMonitors, AssumeEncodingWideRigid)
{
    // Regression: mask/match used to be uint32_t, so encoding bits at
    // positions >= 32 of a wide rigid were silently dropped (and
    // `1 << b` was UB for b >= 32). A 40-bit rigid constrained only in
    // its top byte must take exactly the match value there.
    auto design = counterDesign();
    const uint64_t mask = 0xFFull << 32;
    const uint64_t match = 0xABull << 32;
    auto res = checkProperty(
        *design.netlist, design.signalMap, {}, 2, [&](PropCtx &ctx) {
            auto &cnf = ctx.cnf();
            const sat::Word &r = ctx.rigid("wide", 40);
            sva::assumeEncoding(ctx, r, mask, match);
            // Violation: some masked bit disagrees with the match.
            Lit bad = cnf.falseLit();
            for (size_t b = 0; b < r.size(); b++) {
                if (!((mask >> b) & 1))
                    continue;
                bool bit = (match >> b) & 1;
                bad = cnf.mkOr(bad, bit ? ~r[b] : r[b]);
            }
            return bad;
        });
    // With the truncation bug no assumptions were emitted and the
    // violation was satisfiable (Refuted); widened, it is Proven.
    EXPECT_EQ(res.verdict, Verdict::Proven);
}

TEST(SvaMonitors, AssumeEncodingLowBitsUnaffectedByWideMask)
{
    // The unmasked low bits stay free: both polarities of bit 0 must
    // be satisfiable under a high-half-only encoding assumption.
    auto design = counterDesign();
    const uint64_t mask = 0x3ull << 38;
    const uint64_t match = 0x2ull << 38;
    for (bool want : {false, true}) {
        auto res = checkProperty(
            *design.netlist, design.signalMap, {}, 2,
            [&](PropCtx &ctx) {
                const sat::Word &r = ctx.rigid("wide", 40);
                sva::assumeEncoding(ctx, r, mask, match);
                ctx.assume(want ? r[0] : ~r[0]);
                return ctx.cnf().trueLit(); // SAT iff assumptions hold
            });
        EXPECT_EQ(res.verdict, Verdict::Refuted) << want;
    }
}
