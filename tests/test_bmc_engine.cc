/**
 * @file
 * Tests for the parallel + incremental BMC query engine: on random
 * netlists, the incremental-under-assumptions path (jobs >= 2, shared
 * per-worker solver contexts) must agree query-for-query with the
 * fresh-solver sequential path (jobs = 1); and on the multi-V-scale,
 * a full parallel synthesis run must reproduce the sequential run's
 * SVA records and µspec model exactly.
 */

#include <gtest/gtest.h>

#include <random>

#include "bmc/engine.hh"
#include "random_netlist.hh"
#include "rtl2uspec/synthesis.hh"
#include "sim/simulator.hh"
#include "vscale/metadata.hh"
#include "vscale/vscale.hh"

using namespace r2u;
using r2u::test::RandomDesign;
using r2u::test::makeRandom;

TEST(BmcEngine, ResolveJobs)
{
    EXPECT_GE(bmc::resolveJobs(0), 1u);
    EXPECT_EQ(bmc::resolveJobs(1), 1u);
    EXPECT_EQ(bmc::resolveJobs(7), 7u);
}

namespace
{

/**
 * Build a batch of properties for a simulated random design: one
 * "probes cannot deviate from the interpreter" query per frame prefix
 * (all Proven) and one corrupted-expectation query per probe (all
 * Refuted). Returns the expected verdicts in enqueue order.
 */
std::vector<bmc::Verdict>
enqueueQueries(bmc::Engine &engine, const RandomDesign &d,
               const std::vector<std::vector<Bits>> &stim,
               const std::vector<std::vector<Bits>> &expect,
               unsigned frames)
{
    std::vector<bmc::Verdict> want;
    auto pin_inputs = [&d, &stim](bmc::PropCtx &ctx, unsigned upto) {
        auto &cnf = ctx.cnf();
        for (unsigned f = 0; f < upto; f++)
            for (size_t i = 0; i < d.inputs.size(); i++)
                ctx.assume(cnf.mkEqW(
                    ctx.unroller().wire(f, d.inputs[i]),
                    cnf.constWord(stim[f][i])));
    };

    for (unsigned upto = 1; upto <= frames; upto++) {
        bmc::Query q;
        q.name = "agree_upto_" + std::to_string(upto);
        q.prop = [&d, &expect, pin_inputs, upto](bmc::PropCtx &ctx) {
            auto &cnf = ctx.cnf();
            pin_inputs(ctx, upto);
            sat::Lit bad = cnf.falseLit();
            for (unsigned f = 0; f < upto; f++)
                for (size_t i = 0; i < d.probes.size(); i++)
                    bad = cnf.mkOr(
                        bad, ~cnf.mkEqW(
                                 ctx.unroller().wire(f, d.probes[i]),
                                 cnf.constWord(expect[f][i])));
            return bad;
        };
        engine.enqueue(std::move(q));
        want.push_back(bmc::Verdict::Proven);
    }

    for (size_t p = 0; p < d.probes.size(); p++) {
        bmc::Query q;
        q.name = "corrupt_probe_" + std::to_string(p);
        q.prop = [&d, &expect, pin_inputs, frames, p](bmc::PropCtx &ctx) {
            auto &cnf = ctx.cnf();
            pin_inputs(ctx, frames);
            Bits wrong = ~expect[frames - 1][p];
            return ~cnf.mkEqW(
                ctx.unroller().wire(frames - 1, d.probes[p]),
                cnf.constWord(wrong));
        };
        engine.enqueue(std::move(q));
        want.push_back(bmc::Verdict::Refuted);
    }
    return want;
}

} // namespace

class EngineRandomTest : public ::testing::TestWithParam<int>
{
};

TEST_P(EngineRandomTest, IncrementalMatchesFresh)
{
    std::mt19937 rng(4242 + GetParam());
    RandomDesign d = makeRandom(rng);
    const unsigned kFrames = 6;

    sim::Simulator sim(d.netlist);
    std::vector<std::vector<Bits>> stim(kFrames), expect(kFrames);
    for (unsigned f = 0; f < kFrames; f++) {
        for (nl::CellId in : d.inputs) {
            Bits v(d.netlist.cell(in).width,
                       static_cast<uint64_t>(rng()));
            sim.setInput(in, v);
            stim[f].push_back(v);
        }
        for (nl::CellId p : d.probes)
            expect[f].push_back(sim.value(p));
        sim.step();
    }

    std::unordered_map<std::string, nl::CellId> empty_map;

    bmc::EngineOptions seq_opts;
    seq_opts.jobs = 1;
    bmc::Engine sequential(d.netlist, empty_map, {}, kFrames, seq_opts);

    bmc::EngineOptions par_opts;
    par_opts.jobs = 3;
    bmc::Engine parallel(d.netlist, empty_map, {}, kFrames, par_opts);
    EXPECT_EQ(parallel.jobs(), 3u);

    auto want = enqueueQueries(sequential, d, stim, expect, kFrames);
    auto want2 = enqueueQueries(parallel, d, stim, expect, kFrames);
    ASSERT_EQ(want, want2);

    auto seq_results = sequential.drain();
    auto par_results = parallel.drain();
    ASSERT_EQ(seq_results.size(), want.size());
    ASSERT_EQ(par_results.size(), want.size());
    for (size_t i = 0; i < want.size(); i++) {
        EXPECT_EQ(seq_results[i].verdict, want[i]) << "query " << i;
        EXPECT_EQ(par_results[i].verdict, want[i]) << "query " << i;
        if (want[i] == bmc::Verdict::Refuted) {
            EXPECT_FALSE(seq_results[i].trace.toString().empty());
            EXPECT_FALSE(par_results[i].trace.toString().empty());
        }
    }
    // The parallel engine shares unroll contexts: at most one per
    // worker here (single bound), never one per query.
    EXPECT_GE(parallel.stats().contexts, 1u);
    EXPECT_LE(parallel.stats().contexts, 3u);
    EXPECT_EQ(parallel.stats().queries, want.size());

    // A second batch on the warm engine must behave identically.
    auto want3 = enqueueQueries(parallel, d, stim, expect, kFrames);
    auto warm_results = parallel.drain();
    ASSERT_EQ(warm_results.size(), want3.size());
    for (size_t i = 0; i < want3.size(); i++)
        EXPECT_EQ(warm_results[i].verdict, want3[i]) << "query " << i;
    EXPECT_LE(parallel.stats().contexts, 3u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineRandomTest,
                         ::testing::Range(0, 6));

namespace
{

vscale::Config
formalConfig()
{
    vscale::Config cfg = vscale::Config::formal();
    cfg.imemWords = 16; // keeps per-SVA CNFs small
    return cfg;
}

rtl2uspec::SynthesisResult
synthesizeAt(unsigned jobs)
{
    auto design = vscale::elaborateVscale(formalConfig());
    auto md = vscale::vscaleMetadata(formalConfig());
    rtl2uspec::SynthesisOptions opts;
    opts.jobs = jobs;
    return rtl2uspec::synthesize(design, md, opts);
}

} // namespace

TEST(BmcEngine, VscaleParallelSynthesisMatchesSequential)
{
    rtl2uspec::SynthesisResult seq = synthesizeAt(1);
    rtl2uspec::SynthesisResult par = synthesizeAt(4);

    EXPECT_EQ(seq.jobs, 1u);
    EXPECT_EQ(par.jobs, 4u);
    // Sequential: one fresh unroll per SVA. Parallel: one context per
    // worker, shared across its queries.
    EXPECT_EQ(seq.unrollContexts, seq.svas.size());
    EXPECT_GE(par.unrollContexts, 1u);
    EXPECT_LE(par.unrollContexts, 4u);

    // Same SVA records: names, categories, verdicts, hypothesis
    // counts, and locality — in the same order.
    ASSERT_EQ(seq.svas.size(), par.svas.size());
    for (size_t i = 0; i < seq.svas.size(); i++) {
        const auto &a = seq.svas[i];
        const auto &b = par.svas[i];
        EXPECT_EQ(a.name, b.name) << "SVA " << i;
        EXPECT_EQ(a.category, b.category) << a.name;
        EXPECT_EQ(a.verdict, b.verdict) << a.name;
        EXPECT_EQ(a.hypotheses, b.hypotheses) << a.name;
        EXPECT_EQ(a.global, b.global) << a.name;
        EXPECT_EQ(a.text, b.text) << a.name;
    }

    // Same hypothesis/HBI tallies per category.
    ASSERT_EQ(seq.stats.size(), par.stats.size());
    for (const auto &[cat, a] : seq.stats) {
        ASSERT_TRUE(par.stats.count(cat)) << cat;
        const auto &b = par.stats.at(cat);
        EXPECT_EQ(a.svas, b.svas) << cat;
        EXPECT_EQ(a.hypLocal, b.hypLocal) << cat;
        EXPECT_EQ(a.hypGlobal, b.hypGlobal) << cat;
        EXPECT_EQ(a.hbiLocal, b.hbiLocal) << cat;
        EXPECT_EQ(a.hbiGlobal, b.hbiGlobal) << cat;
    }

    // Same per-instruction membership and identical emitted model.
    EXPECT_EQ(seq.instrNodes, par.instrNodes);
    EXPECT_EQ(seq.model.print(), par.model.print());
    EXPECT_EQ(seq.bugs.size(), par.bugs.size());
}
