/**
 * @file
 * Tests for the parallel + incremental BMC query engine: on random
 * netlists, the incremental-under-assumptions path (jobs >= 2, shared
 * per-worker solver contexts) must agree query-for-query with the
 * fresh-solver sequential path (jobs = 1); and on the multi-V-scale,
 * a full parallel synthesis run must reproduce the sequential run's
 * SVA records and µspec model exactly.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <random>
#include <thread>

#include "bmc/engine.hh"
#include "random_netlist.hh"
#include "rtl2uspec/synthesis.hh"
#include "sim/simulator.hh"
#include "vscale/metadata.hh"
#include "vscale/vscale.hh"

using namespace r2u;
using r2u::test::RandomDesign;
using r2u::test::makeRandom;

TEST(BmcEngine, ResolveJobs)
{
    EXPECT_GE(bmc::resolveJobs(0), 1u);
    EXPECT_EQ(bmc::resolveJobs(1), 1u);
    EXPECT_EQ(bmc::resolveJobs(7), 7u);
}

namespace
{

/**
 * Build a batch of properties for a simulated random design: one
 * "probes cannot deviate from the interpreter" query per frame prefix
 * (all Proven) and one corrupted-expectation query per probe (all
 * Refuted). Returns the expected verdicts in enqueue order.
 */
std::vector<bmc::Verdict>
enqueueQueries(bmc::Engine &engine, const RandomDesign &d,
               const std::vector<std::vector<Bits>> &stim,
               const std::vector<std::vector<Bits>> &expect,
               unsigned frames)
{
    std::vector<bmc::Verdict> want;
    auto pin_inputs = [&d, &stim](bmc::PropCtx &ctx, unsigned upto) {
        auto &cnf = ctx.cnf();
        for (unsigned f = 0; f < upto; f++)
            for (size_t i = 0; i < d.inputs.size(); i++)
                ctx.assume(cnf.mkEqW(
                    ctx.unroller().wire(f, d.inputs[i]),
                    cnf.constWord(stim[f][i])));
    };

    for (unsigned upto = 1; upto <= frames; upto++) {
        bmc::Query q;
        q.name = "agree_upto_" + std::to_string(upto);
        q.prop = [&d, &expect, pin_inputs, upto](bmc::PropCtx &ctx) {
            auto &cnf = ctx.cnf();
            pin_inputs(ctx, upto);
            sat::Lit bad = cnf.falseLit();
            for (unsigned f = 0; f < upto; f++)
                for (size_t i = 0; i < d.probes.size(); i++)
                    bad = cnf.mkOr(
                        bad, ~cnf.mkEqW(
                                 ctx.unroller().wire(f, d.probes[i]),
                                 cnf.constWord(expect[f][i])));
            return bad;
        };
        engine.enqueue(std::move(q));
        want.push_back(bmc::Verdict::Proven);
    }

    for (size_t p = 0; p < d.probes.size(); p++) {
        bmc::Query q;
        q.name = "corrupt_probe_" + std::to_string(p);
        q.prop = [&d, &expect, pin_inputs, frames, p](bmc::PropCtx &ctx) {
            auto &cnf = ctx.cnf();
            pin_inputs(ctx, frames);
            Bits wrong = ~expect[frames - 1][p];
            return ~cnf.mkEqW(
                ctx.unroller().wire(frames - 1, d.probes[p]),
                cnf.constWord(wrong));
        };
        engine.enqueue(std::move(q));
        want.push_back(bmc::Verdict::Refuted);
    }
    return want;
}

} // namespace

class EngineRandomTest : public ::testing::TestWithParam<int>
{
};

TEST_P(EngineRandomTest, IncrementalMatchesFresh)
{
    std::mt19937 rng(4242 + GetParam());
    RandomDesign d = makeRandom(rng);
    const unsigned kFrames = 6;

    sim::Simulator sim(d.netlist);
    std::vector<std::vector<Bits>> stim(kFrames), expect(kFrames);
    for (unsigned f = 0; f < kFrames; f++) {
        for (nl::CellId in : d.inputs) {
            Bits v(d.netlist.cell(in).width,
                       static_cast<uint64_t>(rng()));
            sim.setInput(in, v);
            stim[f].push_back(v);
        }
        for (nl::CellId p : d.probes)
            expect[f].push_back(sim.value(p));
        sim.step();
    }

    std::unordered_map<std::string, nl::CellId> empty_map;

    bmc::EngineOptions seq_opts;
    seq_opts.jobs = 1;
    bmc::Engine sequential(d.netlist, empty_map, {}, kFrames, seq_opts);

    bmc::EngineOptions par_opts;
    par_opts.jobs = 3;
    bmc::Engine parallel(d.netlist, empty_map, {}, kFrames, par_opts);
    EXPECT_EQ(parallel.jobs(), 3u);

    auto want = enqueueQueries(sequential, d, stim, expect, kFrames);
    auto want2 = enqueueQueries(parallel, d, stim, expect, kFrames);
    ASSERT_EQ(want, want2);

    auto seq_results = sequential.drain();
    auto par_results = parallel.drain();
    ASSERT_EQ(seq_results.size(), want.size());
    ASSERT_EQ(par_results.size(), want.size());
    for (size_t i = 0; i < want.size(); i++) {
        EXPECT_EQ(seq_results[i].verdict, want[i]) << "query " << i;
        EXPECT_EQ(par_results[i].verdict, want[i]) << "query " << i;
        if (want[i] == bmc::Verdict::Refuted) {
            EXPECT_FALSE(seq_results[i].trace.toString().empty());
            EXPECT_FALSE(par_results[i].trace.toString().empty());
        }
    }
    // The parallel engine shares unroll contexts: at most one per
    // worker here (single bound), never one per query.
    EXPECT_GE(parallel.stats().contexts, 1u);
    EXPECT_LE(parallel.stats().contexts, 3u);
    EXPECT_EQ(parallel.stats().queries, want.size());

    // A second batch on the warm engine must behave identically.
    auto want3 = enqueueQueries(parallel, d, stim, expect, kFrames);
    auto warm_results = parallel.drain();
    ASSERT_EQ(warm_results.size(), want3.size());
    for (size_t i = 0; i < want3.size(); i++)
        EXPECT_EQ(warm_results[i].verdict, want3[i]) << "query " << i;
    EXPECT_LE(parallel.stats().contexts, 3u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineRandomTest,
                         ::testing::Range(0, 6));

namespace
{

vscale::Config
formalConfig()
{
    vscale::Config cfg = vscale::Config::formal();
    cfg.imemWords = 16; // keeps per-SVA CNFs small
    return cfg;
}

rtl2uspec::SynthesisResult
synthesizeAt(unsigned jobs, bool full_unroll = false)
{
    auto design = vscale::elaborateVscale(formalConfig());
    auto md = vscale::vscaleMetadata(formalConfig());
    rtl2uspec::SynthesisOptions opts;
    opts.jobs = jobs;
    opts.fullUnroll = full_unroll;
    return rtl2uspec::synthesize(design, md, opts);
}

void
expectSameSynthesis(const rtl2uspec::SynthesisResult &a,
                    const rtl2uspec::SynthesisResult &b)
{
    // Same SVA records: names, categories, verdicts, hypothesis
    // counts, and locality — in the same order.
    ASSERT_EQ(a.svas.size(), b.svas.size());
    for (size_t i = 0; i < a.svas.size(); i++) {
        EXPECT_EQ(a.svas[i].name, b.svas[i].name) << "SVA " << i;
        EXPECT_EQ(a.svas[i].category, b.svas[i].category)
            << a.svas[i].name;
        EXPECT_EQ(a.svas[i].verdict, b.svas[i].verdict)
            << a.svas[i].name;
        EXPECT_EQ(a.svas[i].hypotheses, b.svas[i].hypotheses)
            << a.svas[i].name;
        EXPECT_EQ(a.svas[i].global, b.svas[i].global) << a.svas[i].name;
        EXPECT_EQ(a.svas[i].text, b.svas[i].text) << a.svas[i].name;
    }

    // Same hypothesis/HBI tallies per category.
    ASSERT_EQ(a.stats.size(), b.stats.size());
    for (const auto &[cat, sa] : a.stats) {
        ASSERT_TRUE(b.stats.count(cat)) << cat;
        const auto &sb = b.stats.at(cat);
        EXPECT_EQ(sa.svas, sb.svas) << cat;
        EXPECT_EQ(sa.hypLocal, sb.hypLocal) << cat;
        EXPECT_EQ(sa.hypGlobal, sb.hypGlobal) << cat;
        EXPECT_EQ(sa.hbiLocal, sb.hbiLocal) << cat;
        EXPECT_EQ(sa.hbiGlobal, sb.hbiGlobal) << cat;
    }

    // Same per-instruction membership and identical emitted model.
    EXPECT_EQ(a.instrNodes, b.instrNodes);
    EXPECT_EQ(a.model.print(), b.model.print());
    EXPECT_EQ(a.bugs.size(), b.bugs.size());
}

} // namespace

TEST(BmcEngine, VscaleParallelSynthesisMatchesSequential)
{
    rtl2uspec::SynthesisResult seq = synthesizeAt(1);
    rtl2uspec::SynthesisResult par = synthesizeAt(4);

    EXPECT_EQ(seq.jobs, 1u);
    EXPECT_EQ(par.jobs, 4u);
    // Sequential: one fresh unroll per SVA. Parallel: one context per
    // worker, shared across its queries.
    EXPECT_EQ(seq.unrollContexts, seq.svas.size());
    EXPECT_GE(par.unrollContexts, 1u);
    EXPECT_LE(par.unrollContexts, 4u);

    expectSameSynthesis(seq, par);
}

namespace
{

/**
 * A query whose CNF is a pigeonhole instance over rigid bits —
 * independent of the design, UNSAT (Proven), and deterministically
 * hard, so budgets/deadlines/interrupts fire without timing luck.
 */
bmc::Query
pigeonholeQuery(const std::string &name, int pigeons, int holes)
{
    bmc::Query q;
    q.name = name;
    q.prop = [pigeons, holes](bmc::PropCtx &ctx) {
        auto &cnf = ctx.cnf();
        std::vector<std::vector<sat::Lit>> p(pigeons);
        for (int i = 0; i < pigeons; i++)
            for (int j = 0; j < holes; j++)
                p[i].push_back(ctx.rigid("p_" + std::to_string(i) +
                                             "_" + std::to_string(j),
                                         1)[0]);
        for (int i = 0; i < pigeons; i++) {
            sat::Lit any = cnf.falseLit();
            for (int j = 0; j < holes; j++)
                any = cnf.mkOr(any, p[i][j]);
            ctx.assume(any);
        }
        for (int j = 0; j < holes; j++)
            for (int i1 = 0; i1 < pigeons; i1++)
                for (int i2 = i1 + 1; i2 < pigeons; i2++)
                    ctx.assume(cnf.mkOr(~p[i1][j], ~p[i2][j]));
        return cnf.trueLit();
    };
    return q;
}

} // namespace

TEST(BmcEngine, TightBudgetYieldsUnknownNotWrongVerdict)
{
    std::mt19937 rng(91);
    RandomDesign d = makeRandom(rng);
    std::unordered_map<std::string, nl::CellId> empty_map;

    bmc::EngineOptions tight;
    tight.jobs = 1;
    tight.conflictBudget = 5;
    bmc::Engine engine(d.netlist, empty_map, {}, 2, tight);
    engine.enqueue(pigeonholeQuery("php", 7, 6));
    auto res = engine.drain();
    ASSERT_EQ(res.size(), 1u);
    EXPECT_EQ(res[0].verdict, bmc::Verdict::Unknown);
    EXPECT_EQ(res[0].source, bmc::VerdictSource::ConflictBudget);
    EXPECT_EQ(res[0].retries, 0u);
    EXPECT_EQ(engine.stats().unknowns, 1u);
    EXPECT_EQ(engine.stats().retries, 0u);
}

TEST(BmcEngine, RetryEscalationResolvesUnknowns)
{
    std::mt19937 rng(92);
    RandomDesign d = makeRandom(rng);
    std::unordered_map<std::string, nl::CellId> empty_map;

    // Same tight first pass as above, but escalation multiplies the
    // budget per retry until the instance resolves — the final verdict
    // must be the true one (Proven: pigeonhole is UNSAT).
    bmc::EngineOptions esc;
    esc.jobs = 1;
    esc.conflictBudget = 5;
    esc.retryEscalation = 10.0;
    esc.maxRetries = 8;
    bmc::Engine fresh(d.netlist, empty_map, {}, 2, esc);
    fresh.enqueue(pigeonholeQuery("php", 7, 6));
    auto res = fresh.drain();
    ASSERT_EQ(res.size(), 1u);
    EXPECT_EQ(res[0].verdict, bmc::Verdict::Proven);
    EXPECT_EQ(res[0].source, bmc::VerdictSource::Retry);
    EXPECT_GT(res[0].retries, 0u);
    EXPECT_EQ(fresh.stats().unknowns, 0u);
    EXPECT_GT(fresh.stats().retries, 0u);

    // The incremental (jobs >= 2) path retries on the shared solver
    // context; learnt clauses carry over between attempts.
    esc.jobs = 2;
    bmc::Engine incr(d.netlist, empty_map, {}, 2, esc);
    incr.enqueue(pigeonholeQuery("php_a", 7, 6));
    incr.enqueue(pigeonholeQuery("php_b", 7, 6));
    auto res2 = incr.drain();
    ASSERT_EQ(res2.size(), 2u);
    for (const auto &r : res2) {
        EXPECT_EQ(r.verdict, bmc::Verdict::Proven);
        EXPECT_EQ(r.source, bmc::VerdictSource::Retry);
        EXPECT_GT(r.retries, 0u);
    }
    EXPECT_EQ(incr.stats().unknowns, 0u);
}

TEST(BmcEngine, InterruptMidFlightYieldsUnknown)
{
    std::mt19937 rng(93);
    RandomDesign d = makeRandom(rng);
    std::unordered_map<std::string, nl::CellId> empty_map;

    bmc::EngineOptions opts;
    opts.jobs = 2;
    // Backstop so a broken interrupt cannot hang CI; the interrupt
    // fires orders of magnitude earlier.
    opts.querySeconds = 20.0;
    bmc::Engine engine(d.netlist, empty_map, {}, 2, opts);
    for (int i = 0; i < 4; i++)
        engine.enqueue(
            pigeonholeQuery("php_" + std::to_string(i), 11, 10));

    std::thread stopper([&engine] {
        std::this_thread::sleep_for(std::chrono::milliseconds(60));
        engine.interrupt();
    });
    auto results = engine.drain();
    stopper.join();
    ASSERT_EQ(results.size(), 4u);
    for (const auto &r : results) {
        // Never a wrong definite verdict: an interrupted solve must
        // come back Unknown, tagged with why.
        EXPECT_EQ(r.verdict, bmc::Verdict::Unknown);
        EXPECT_TRUE(r.source == bmc::VerdictSource::Interrupted ||
                    r.source == bmc::VerdictSource::Cancelled)
            << bmc::verdictSourceName(r.source);
    }
    EXPECT_EQ(engine.stats().unknowns, 4u);

    // The engine survives the interrupt: clear it and run more work.
    engine.clearInterrupt();
    EXPECT_FALSE(engine.interrupted());
    bmc::Query easy;
    easy.name = "easy";
    easy.prop = [](bmc::PropCtx &ctx) { return ctx.cnf().falseLit(); };
    engine.enqueue(std::move(easy));
    auto after = engine.drain();
    ASSERT_EQ(after.size(), 1u);
    EXPECT_EQ(after[0].verdict, bmc::Verdict::Proven);
    EXPECT_EQ(after[0].source, bmc::VerdictSource::Solve);
}

TEST(BmcEngine, TotalTimeoutCancelsQueuedQueries)
{
    std::mt19937 rng(94);
    RandomDesign d = makeRandom(rng);
    std::unordered_map<std::string, nl::CellId> empty_map;

    bmc::EngineOptions opts;
    opts.jobs = 1;
    opts.totalSeconds = 0.1;
    bmc::Engine engine(d.netlist, empty_map, {}, 2, opts);
    for (int i = 0; i < 3; i++)
        engine.enqueue(
            pigeonholeQuery("php_" + std::to_string(i), 11, 10));
    auto results = engine.drain();
    ASSERT_EQ(results.size(), 3u);
    for (const auto &r : results) {
        EXPECT_EQ(r.verdict, bmc::Verdict::Unknown);
        EXPECT_TRUE(r.source == bmc::VerdictSource::TotalDeadline ||
                    r.source == bmc::VerdictSource::Cancelled)
            << bmc::verdictSourceName(r.source);
    }
    // Once the total deadline has passed mid-batch, the tail of the
    // queue is never solved at all.
    EXPECT_EQ(results.back().source, bmc::VerdictSource::Cancelled);
    EXPECT_EQ(engine.stats().unknowns, 3u);
}

TEST(BmcEngine, VscaleSlicedMatchesFullUnroll)
{
    rtl2uspec::SynthesisResult sliced = synthesizeAt(4, false);
    rtl2uspec::SynthesisResult eager = synthesizeAt(4, true);

    EXPECT_FALSE(sliced.fullUnroll);
    EXPECT_TRUE(eager.fullUnroll);
    expectSameSynthesis(sliced, eager);

    // On the multi-V-scale every Fig. 4 template reads the PCRs, whose
    // cone reaches most of the design through branch resolution and
    // the shared-bus arbiter — so slicing trims but cannot collapse
    // these queries. It must never lose: sliced CNFs stay no larger
    // than the eager ones, and every query carries COI stats.
    EXPECT_GT(sliced.meanCnfVars, 0.0);
    EXPECT_LE(sliced.meanCnfVars, eager.meanCnfVars);
    for (const auto &rec : sliced.svas)
        EXPECT_GT(rec.coiCells, 0u) << rec.name;
}

TEST(BmcEngine, VscaleJournalResumeIdentity)
{
    namespace fs = std::filesystem;
    std::string journal =
        (fs::path(::testing::TempDir()) / "vscale_journal.bin")
            .string();
    fs::remove(journal);

    auto design = vscale::elaborateVscale(formalConfig());
    auto md = vscale::vscaleMetadata(formalConfig());

    rtl2uspec::SynthesisOptions opts;
    opts.jobs = 2;
    opts.validate = bmc::ValidateMode::Replay;
    opts.journalPath = journal;
    auto first = rtl2uspec::synthesize(design, md, opts);
    ASSERT_EQ(first.unknownSvas, 0u);
    EXPECT_GT(first.journalAppends, 0u);
    EXPECT_EQ(first.journalHits, 0u);
    EXPECT_EQ(first.validationMismatches, 0u);
    EXPECT_EQ(first.validationFailures, 0u);

    // Acceptance: every Refuted verdict in the run replay-validated,
    // with zero mismatches.
    size_t refuted = 0;
    for (const auto &sva : first.svas) {
        if (sva.verdict != bmc::Verdict::Refuted)
            continue;
        refuted++;
        EXPECT_TRUE(sva.validated) << sva.name;
    }
    EXPECT_GT(refuted, 0u);
    EXPECT_GE(first.replays, refuted);

    // Resume at a different --jobs: every definite verdict is answered
    // from the journal (no solving, no replaying) and the synthesized
    // model is bit-identical.
    opts.jobs = 3;
    opts.resumeJournal = true;
    auto resumed = rtl2uspec::synthesize(design, md, opts);
    EXPECT_EQ(resumed.journalHits, first.journalAppends);
    EXPECT_EQ(resumed.replays, 0u);
    for (const auto &sva : resumed.svas)
        EXPECT_TRUE(sva.fromJournal) << sva.name;
    expectSameSynthesis(first, resumed);

    // Simulated kill mid-append: chop a few bytes off the journal's
    // tail. The torn record is dropped, its query re-solved (and
    // re-journaled), and the model still comes out bit-for-bit the
    // same.
    fs::resize_file(journal, fs::file_size(journal) - 3);
    opts.jobs = 1;
    auto repaired = rtl2uspec::synthesize(design, md, opts);
    EXPECT_EQ(repaired.journalHits, first.journalAppends - 1);
    EXPECT_EQ(repaired.journalAppends, 1u);
    expectSameSynthesis(first, repaired);
}

TEST(BmcEngine, VscaleCacheWarmRunIdentity)
{
    namespace fs = std::filesystem;
    std::string dir =
        (fs::path(::testing::TempDir()) / "vscale_cache").string();
    fs::remove_all(dir);

    auto design = vscale::elaborateVscale(formalConfig());
    auto md = vscale::vscaleMetadata(formalConfig());

    rtl2uspec::SynthesisOptions opts;
    opts.jobs = 2;
    opts.validate = bmc::ValidateMode::Replay;
    opts.cacheDir = dir;
    auto cold = rtl2uspec::synthesize(design, md, opts);
    ASSERT_TRUE(cold.cacheEnabled);
    ASSERT_EQ(cold.unknownSvas, 0u);
    EXPECT_EQ(cold.cacheHits, 0u);
    EXPECT_GT(cold.cacheAppends, 0u);
    // Every query is hashed, every verdict definite: misses == appends.
    EXPECT_EQ(cold.cacheMisses, cold.cacheAppends);
    EXPECT_EQ(cold.cacheInvalidations, 0u);

    // Warm run at a different --jobs: every query replays from the
    // cache (no solving, no appends, no counterexample replays) and
    // the synthesized model is bit-identical.
    opts.jobs = 3;
    auto warm = rtl2uspec::synthesize(design, md, opts);
    EXPECT_EQ(warm.cacheHits, cold.cacheAppends);
    EXPECT_EQ(warm.cacheMisses, 0u);
    EXPECT_EQ(warm.cacheAppends, 0u);
    EXPECT_EQ(warm.replays, 0u);
    for (const auto &sva : warm.svas)
        EXPECT_TRUE(sva.fromCache) << sva.name;
    expectSameSynthesis(cold, warm);

    // --validate replay still works end-to-end on a warm run: the
    // cached verdicts carry their validated stamp from the cold run.
    for (const auto &sva : warm.svas)
        if (sva.verdict == bmc::Verdict::Refuted)
            EXPECT_TRUE(sva.validated) << sva.name;

    // The cache composes with the journal: a journaled warm run
    // prefers this-run restart state but still lands on the same
    // model.
    std::string journal =
        (fs::path(::testing::TempDir()) / "vscale_cache_journal.bin")
            .string();
    fs::remove(journal);
    opts.journalPath = journal;
    opts.jobs = 1;
    auto warm2 = rtl2uspec::synthesize(design, md, opts);
    EXPECT_EQ(warm2.cacheHits, cold.cacheAppends);
    expectSameSynthesis(cold, warm2);
}

// The satellite regression at system level: an edited property
// environment (metadata that feeds the SVA templates' assumptions)
// keeps every query's name and bound but changes its content hash —
// the whole cache must read as invalidated, not silently replayed.
TEST(BmcEngine, VscaleCacheMetadataEditInvalidates)
{
    namespace fs = std::filesystem;
    std::string dir =
        (fs::path(::testing::TempDir()) / "vscale_cache_md").string();
    fs::remove_all(dir);

    auto design = vscale::elaborateVscale(formalConfig());
    auto md = vscale::vscaleMetadata(formalConfig());

    rtl2uspec::SynthesisOptions opts;
    opts.jobs = 2;
    opts.cacheDir = dir;
    auto first = rtl2uspec::synthesize(design, md, opts);
    EXPECT_GT(first.cacheAppends, 0u);

    // issueByFrame is read by the property closures (issue-window
    // assumptions), not rendered into the SVA text — exactly the kind
    // of edit name+bound keying used to miss.
    auto md2 = md;
    md2.issueByFrame += 1;
    auto second = rtl2uspec::synthesize(design, md2, opts);
    EXPECT_EQ(second.cacheHits, 0u);
    EXPECT_GT(second.cacheMisses, 0u);
    // Every miss is an invalidation: same query names at the same
    // bound sit in the cache under the old content hashes.
    EXPECT_EQ(second.cacheInvalidations, second.cacheMisses);
}

TEST(BmcEngine, ValidationModesDoNotChangeTheModel)
{
    auto design = vscale::elaborateVscale(formalConfig());
    auto md = vscale::vscaleMetadata(formalConfig());

    rtl2uspec::SynthesisOptions opts;
    opts.jobs = 2;
    opts.validate = bmc::ValidateMode::Off;
    auto off = rtl2uspec::synthesize(design, md, opts);
    EXPECT_EQ(off.validateMode, "off");
    EXPECT_EQ(off.replays, 0u);
    EXPECT_EQ(off.proofRechecks, 0u);

    // Full validation replays every counterexample and re-solves every
    // proof fresh: everything must agree (no mismatches, no failures)
    // and the emitted model must be exactly the unvalidated one.
    opts.validate = bmc::ValidateMode::Full;
    auto full = rtl2uspec::synthesize(design, md, opts);
    EXPECT_EQ(full.validateMode, "full");
    EXPECT_GT(full.replays, 0u);
    EXPECT_GT(full.proofRechecks, 0u);
    EXPECT_EQ(full.validationMismatches, 0u);
    EXPECT_EQ(full.validationFailures, 0u);
    // Every counterexample must have replayed; a proof re-check may in
    // principle come back inconclusive (budget), which keeps the
    // primary verdict without the validated stamp.
    for (const auto &sva : full.svas)
        if (sva.verdict == bmc::Verdict::Refuted)
            EXPECT_TRUE(sva.validated) << sva.name;

    expectSameSynthesis(off, full);
}

TEST(BmcEngine, TightBudgetSynthesisDegradesConservatively)
{
    // With a conflict budget of 0 every SVA gives up immediately: the
    // run must still complete, count its Unknowns, tag the degraded
    // axioms, and never let an Unknown masquerade as Proven/Refuted.
    auto design = vscale::elaborateVscale(formalConfig());
    auto md = vscale::vscaleMetadata(formalConfig());
    rtl2uspec::SynthesisOptions opts;
    opts.jobs = 2;
    opts.conflictBudget = 0;
    auto res = rtl2uspec::synthesize(design, md, opts);

    EXPECT_GT(res.unknownSvas, 0u);
    EXPECT_FALSE(res.degraded.empty());
    for (const auto &sva : res.svas) {
        if (sva.verdict == bmc::Verdict::Unknown) {
            // An Unknown always records which limit produced it.
            EXPECT_NE(sva.source, bmc::VerdictSource::Solve)
                << sva.name;
            EXPECT_NE(sva.source, bmc::VerdictSource::Retry)
                << sva.name;
        }
    }

    // Conservative direction: undetermined attribution checks must
    // not be reported as design bugs.
    EXPECT_TRUE(res.bugs.empty());

    // The emitted model carries the degradation tags as `%` notes and
    // still round-trips through the parser (notes are comments).
    std::string printed = res.model.print();
    EXPECT_NE(printed.find("% degraded"), std::string::npos);
    EXPECT_NO_THROW({
        uspec::Model reparsed = uspec::Model::parse(printed);
        (void)reparsed;
    });

    // The structured run report accounts for the degradation.
    std::string json = res.jsonReport();
    EXPECT_NE(json.find("\"unknown_svas\""), std::string::npos);
    EXPECT_NE(json.find("\"degraded\""), std::string::npos);
    EXPECT_NE(json.find("\"degrade_note\""), std::string::npos);
    EXPECT_NE(json.find("\"conflict-budget\""), std::string::npos);
}
