/**
 * @file
 * Tests for the k-induction engine (unbounded proofs, base-case
 * refutation with trace, non-inductive Unknown) and the VCD waveform
 * writer.
 */

#include <gtest/gtest.h>

#include "bmc/checker.hh"
#include "common/logging.hh"
#include "sim/vcd.hh"
#include "verilog/elaborate.hh"
#include "verilog/parser.hh"

using namespace r2u;
using namespace r2u::bmc;

namespace
{

vlog::ElabResult
elab(const std::string &src)
{
    vlog::Design d = vlog::parseString(src, "t.v");
    vlog::ElabOptions opts;
    opts.top = "top";
    return vlog::elaborate(d, opts);
}

} // namespace

TEST(Induction, OneHotRingProvenUnbounded)
{
    // A rotating register that starts one-hot; "q != 0" is
    // 1-inductive and holds forever — BMC alone could never prove it
    // for all cycle counts.
    auto r = elab(R"(
        module top (input clk, output wire [3:0] out);
            reg [3:0] q;
            reg started;
            always @(posedge clk) begin
                if (!started) begin
                    q <= 4'b0001;
                    started <= 1'b1;
                end else begin
                    q <= {q[2:0], q[3]};
                end
            end
            assign out = q;
        endmodule
    )");
    auto res = checkInductive(
        *r.netlist, r.signalMap, {}, 1, 4,
        [&](PropCtx &ctx, unsigned f) {
            // bad: started and q == 0 (rotation preserves nonzero).
            auto &cnf = ctx.cnf();
            sat::Lit started = ctx.at(f, "started")[0];
            sat::Lit zero =
                cnf.mkEqW(ctx.at(f, "q"), cnf.constWord(4, 0));
            return cnf.mkAnd(started, zero);
        });
    EXPECT_EQ(res.verdict, Verdict::Proven);
    EXPECT_TRUE(res.inductive);
}

TEST(Induction, BaseCaseRefutationWithTrace)
{
    auto r = elab(R"(
        module top (input clk, output wire [3:0] out);
            reg [3:0] q;
            always @(posedge clk) begin
                q <= q + 4'd1;
            end
            assign out = q;
        endmodule
    )");
    // "q never equals 3" is false at cycle 3.
    auto res = checkInductive(
        *r.netlist, r.signalMap, {}, 1, 6,
        [&](PropCtx &ctx, unsigned f) {
            ctx.watch("q");
            return ctx.eqConst(f, "q", 3);
        });
    EXPECT_EQ(res.verdict, Verdict::Refuted);
    ASSERT_EQ(res.trace.steps.size(), 6u);
    EXPECT_EQ(res.trace.steps[3].signals.at("q").toUint64(), 3u);
}

TEST(Induction, NonInductivePropertyIsUnknown)
{
    // "q != 15" holds within the base bound but is not 1-inductive
    // for a free-running counter (q == 14 steps to 15).
    auto r = elab(R"(
        module top (input clk, output wire [3:0] out);
            reg [3:0] q;
            always @(posedge clk) begin
                q <= q + 4'd1;
            end
            assign out = q;
        endmodule
    )");
    auto res = checkInductive(
        *r.netlist, r.signalMap, {}, 1, 4,
        [&](PropCtx &ctx, unsigned f) {
            return ctx.eqConst(f, "q", 15);
        });
    EXPECT_EQ(res.verdict, Verdict::Unknown);
    EXPECT_FALSE(res.inductive);
}

TEST(Vcd, RecordsChangesInStandardFormat)
{
    auto r = elab(R"(
        module top (input clk, input en, output wire [3:0] out);
            reg [3:0] q;
            always @(posedge clk) begin
                if (en)
                    q <= q + 4'd1;
            end
            assign out = q;
        endmodule
    )");
    sim::Simulator s(*r.netlist);
    sim::VcdWriter vcd(s, std::vector<std::string>{"q", "en"});
    s.setInput("en", Bits(1, 1));
    s.setInput("clk", Bits(1, 0));
    for (int i = 0; i < 4; i++) {
        vcd.sample();
        s.step();
    }
    std::string out = vcd.render();
    EXPECT_NE(out.find("$timescale"), std::string::npos);
    EXPECT_NE(out.find("$var wire 4"), std::string::npos);
    EXPECT_NE(out.find("$var wire 1"), std::string::npos);
    EXPECT_NE(out.find("$enddefinitions"), std::string::npos);
    EXPECT_NE(out.find("#0"), std::string::npos);
    EXPECT_NE(out.find("#3"), std::string::npos);
    EXPECT_NE(out.find("b0000 "), std::string::npos);
    EXPECT_NE(out.find("b0011 "), std::string::npos);
    // Unchanged signals are not re-dumped after the first sample.
    size_t en_dumps = 0, pos = 0;
    std::string en_id;
    {
        size_t var = out.find("$var wire 1 ");
        en_id = out.substr(var + 12, out.find(' ', var + 12) -
                                         (var + 12));
    }
    while ((pos = out.find("1" + en_id + "\n", pos)) !=
           std::string::npos) {
        en_dumps++;
        pos++;
    }
    EXPECT_EQ(en_dumps, 1u);
}

TEST(Vcd, UnknownSignalIsFatal)
{
    auto r = elab(R"(
        module top (input clk, output wire o);
            assign o = clk;
        endmodule
    )");
    sim::Simulator s(*r.netlist);
    EXPECT_THROW(sim::VcdWriter(s, std::vector<std::string>{"nope"}),
                 r2u::FatalError);
}
