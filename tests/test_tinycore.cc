/**
 * @file
 * RTL tests for the two-stage tinycore SoC (designs/tinycore.v): the
 * second microarchitecture used by the examples to demonstrate
 * rtl2uspec generality. Single-core programs are validated against
 * the golden ISA model; two-core message passing must behave SC.
 */

#include <gtest/gtest.h>

#include "isa/isa.hh"
#include "sim/simulator.hh"
#include "verilog/elaborate.hh"

using namespace r2u;

namespace
{

struct TinyHarness
{
    vlog::ElabResult design;
    std::unique_ptr<sim::Simulator> sim;

    TinyHarness()
    {
        std::string dir = R2U_DESIGN_DIR;
        vlog::ElabOptions opts;
        opts.top = "multi_tiny";
        design = vlog::elaborateFiles(
            {dir + "/tinycore.v", dir + "/vscale_arbiter.v",
             dir + "/vscale_mem.v"},
            opts);
        sim = std::make_unique<sim::Simulator>(*design.netlist);
    }

    void
    load(unsigned core, const std::string &assembly)
    {
        auto words = isa::assemble(assembly);
        nl::MemId imem =
            design.mem("imem_" + std::to_string(core) + ".mem");
        isa::Inst spin;
        spin.op = isa::Op::Jal;
        for (unsigned i = 0; i < 16; i++) {
            uint32_t w = isa::nopWord();
            if (i < words.size())
                w = words[i];
            else if (i == words.size())
                w = isa::encode(spin);
            sim->pokeMem(imem, i, Bits(32, w));
        }
    }

    void
    run(unsigned cycles)
    {
        sim->setInput("clk", Bits(1, 0));
        sim->setInput("reset", Bits(1, 1));
        sim->step();
        sim->setInput("reset", Bits(1, 0));
        sim->run(cycles);
    }

    uint32_t
    reg(unsigned core, unsigned r)
    {
        nl::MemId rf =
            design.mem("core_" + std::to_string(core) + ".regfile");
        return static_cast<uint32_t>(sim->memWord(rf, r).toUint64());
    }

    uint32_t
    mem(unsigned word)
    {
        return static_cast<uint32_t>(
            sim->memWord(design.mem("dmem.mem"), word).toUint64());
    }
};

} // namespace

TEST(TinyCore, Elaborates)
{
    TinyHarness h;
    auto st = h.design.netlist->stats();
    EXPECT_EQ(st.memories, 5u); // dmem + 2 imem + 2 regfiles
    EXPECT_NE(h.design.signal("core_0.inst_EX"), nl::kNoCell);
    EXPECT_NE(h.design.signal("core_0.lw_pending"), nl::kNoCell);
}

TEST(TinyCore, ArithmeticAndMemory)
{
    TinyHarness h;
    h.load(0, R"(
        addi x1, x0, 7
        addi x2, x1, 10
        sw x2, 4(x0)
        lw x3, 4(x0)
        addi x4, x3, 1
    )");
    h.load(1, "");
    h.run(80);
    EXPECT_EQ(h.reg(0, 2), 17u);
    EXPECT_EQ(h.reg(0, 3), 17u);
    EXPECT_EQ(h.reg(0, 4), 18u);
    EXPECT_EQ(h.mem(1), 17u);
}

TEST(TinyCore, BranchesWork)
{
    TinyHarness h;
    h.load(0, R"(
        addi x1, x0, 1
        beq x1, x0, 12
        addi x2, x0, 5
        bne x1, x0, 8
        addi x2, x0, 99
        addi x3, x0, 7
    )");
    h.load(1, "");
    h.run(80);
    EXPECT_EQ(h.reg(0, 2), 5u);
    EXPECT_EQ(h.reg(0, 3), 7u);
}

TEST(TinyCore, MessagePassingIsSC)
{
    TinyHarness h;
    h.load(0, R"(
        addi x1, x0, 41
        sw x1, 0(x0)
        addi x2, x0, 1
        sw x2, 4(x0)
    )");
    h.load(1, R"(
        lw x1, 4(x0)
        beq x1, x0, -4
        lw x2, 0(x0)
    )");
    h.run(300);
    EXPECT_EQ(h.reg(1, 1), 1u);
    EXPECT_EQ(h.reg(1, 2), 41u);
}

TEST(TinyCore, ContentionBothCoresProgress)
{
    TinyHarness h;
    h.load(0, R"(
        addi x1, x0, 3
        sw x1, 0(x0)
        lw x2, 0(x0)
    )");
    h.load(1, R"(
        addi x1, x0, 9
        sw x1, 4(x0)
        lw x2, 4(x0)
    )");
    h.run(120);
    EXPECT_EQ(h.reg(0, 2), 3u);
    EXPECT_EQ(h.reg(1, 2), 9u);
    EXPECT_EQ(h.mem(0), 3u);
    EXPECT_EQ(h.mem(1), 9u);
}

TEST(TinyCore, X0StaysZero)
{
    TinyHarness h;
    h.load(0, "addi x0, x0, 5\naddi x1, x0, 2");
    h.load(1, "");
    h.run(40);
    EXPECT_EQ(h.reg(0, 0), 0u);
    EXPECT_EQ(h.reg(0, 1), 2u);
}
