/**
 * @file
 * Tests for the crash-safe run journal: append/resume round-trips,
 * torn-tail recovery (a simulated mid-write kill), checksum-mismatch
 * rejection, config-hash binding, and fresh-open truncation. The
 * format details (header size, record framing) are deliberately not
 * assumed beyond "appends grow the file" — corruption is injected at
 * offsets derived from observed file sizes.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>

#include "bmc/journal.hh"
#include "common/logging.hh"

using namespace r2u;
namespace fs = std::filesystem;

namespace
{

constexpr uint64_t kHash = 0x5eed5eed12345678ull;
/** Stand-in per-query content hash for records in these tests. */
constexpr uint64_t kContent = 0xc0de1234abcd5678ull;

uint64_t
key(const std::string &name, unsigned bound)
{
    return bmc::journalKey(name, bound, kContent);
}

std::string
tempJournal(const std::string &name)
{
    fs::path p = fs::path(::testing::TempDir()) / name;
    fs::remove(p);
    return p.string();
}

bmc::Journal::Record
makeRecord(const std::string &name, unsigned bound,
           bmc::Verdict verdict)
{
    bmc::Journal::Record rec;
    rec.key = key(name, bound);
    rec.name = name;
    rec.verdict = verdict;
    rec.source = bmc::VerdictSource::Solve;
    rec.validated = true;
    rec.bound = bound;
    rec.retries = 2;
    rec.seconds = 0.125;
    rec.conflicts = 42;
    rec.propagations = 4242;
    return rec;
}

void
flipByte(const std::string &path, uint64_t offset)
{
    std::fstream f(path,
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open()) << path;
    f.seekg(static_cast<std::streamoff>(offset));
    char c = 0;
    f.read(&c, 1);
    c = static_cast<char>(c ^ 0x5a);
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(&c, 1);
}

} // namespace

TEST(Journal, KeyIsDeterministicAndDiscriminates)
{
    EXPECT_EQ(bmc::journalKey("sva_a", 14, 7),
              bmc::journalKey("sva_a", 14, 7));
    EXPECT_NE(bmc::journalKey("sva_a", 14, 7),
              bmc::journalKey("sva_b", 14, 7));
    EXPECT_NE(bmc::journalKey("sva_a", 14, 7),
              bmc::journalKey("sva_a", 15, 7));
    EXPECT_NE(bmc::journalKey("", 0, 0), 0u);
}

// The stale-resume regression (ISSUE 8): an SVA whose template was
// edited — or whose cone was rewired — keeps its name and bound but
// gets a different content hash, and the key MUST change with it, or
// --resume resurrects the old verdict for a different question.
TEST(Journal, KeyIncludesContentHash)
{
    EXPECT_NE(bmc::journalKey("sva_a", 14, 1),
              bmc::journalKey("sva_a", 14, 2));
    // The unhashed fallback (0) is distinct from any hashed key.
    EXPECT_NE(bmc::journalKey("sva_a", 14, 0),
              bmc::journalKey("sva_a", 14, 1));
}

// End-to-end: a journal written with one content hash answers nothing
// when the same query resumes with an edited property/cone.
TEST(Journal, EditedContentMissesOnResume)
{
    std::string path = tempJournal("edited.bin");
    {
        bmc::Journal j;
        j.open(path, kHash, false);
        j.append(makeRecord("sva_a", 14, bmc::Verdict::Proven));
    }
    bmc::Journal j;
    j.open(path, kHash, true);
    EXPECT_EQ(j.numLoaded(), 1u);
    EXPECT_NE(j.lookup(bmc::journalKey("sva_a", 14, kContent)),
              nullptr);
    EXPECT_EQ(j.lookup(bmc::journalKey("sva_a", 14, kContent ^ 1)),
              nullptr);
}

TEST(Journal, RoundTripPersistsRecords)
{
    std::string path = tempJournal("roundtrip.bin");
    uint64_t key_a = key("a", 3);
    uint64_t key_b = key("b", 3);

    {
        bmc::Journal j;
        j.open(path, kHash, /*resume=*/false);
        ASSERT_TRUE(j.isOpen());
        EXPECT_EQ(j.numLoaded(), 0u);
        EXPECT_TRUE(j.append(makeRecord("a", 3, bmc::Verdict::Proven)));
        EXPECT_TRUE(j.append(makeRecord("b", 3, bmc::Verdict::Refuted)));
        EXPECT_EQ(j.numAppended(), 2u);
    } // destructor closes the fd; the data must already be durable

    bmc::Journal j;
    j.open(path, kHash, /*resume=*/true);
    EXPECT_EQ(j.numLoaded(), 2u);
    ASSERT_NE(j.lookup(key_a), nullptr);
    ASSERT_NE(j.lookup(key_b), nullptr);
    EXPECT_EQ(j.lookup(key("c", 3)), nullptr);

    const bmc::Journal::Record &a = *j.lookup(key_a);
    EXPECT_EQ(a.name, "a");
    EXPECT_EQ(a.verdict, bmc::Verdict::Proven);
    EXPECT_EQ(a.source, bmc::VerdictSource::Solve);
    EXPECT_TRUE(a.validated);
    EXPECT_EQ(a.bound, 3u);
    EXPECT_EQ(a.retries, 2u);
    EXPECT_DOUBLE_EQ(a.seconds, 0.125);
    EXPECT_EQ(a.conflicts, 42u);
    EXPECT_EQ(a.propagations, 4242u);
    EXPECT_EQ(j.lookup(key_b)->verdict, bmc::Verdict::Refuted);

    // A resumed journal accepts further appends, and a later resume
    // sees the union.
    EXPECT_TRUE(j.append(makeRecord("c", 3, bmc::Verdict::Proven)));
    bmc::Journal j2;
    j2.open(path, kHash, /*resume=*/true);
    EXPECT_EQ(j2.numLoaded(), 3u);
}

TEST(Journal, FreshOpenDiscardsExistingRecords)
{
    std::string path = tempJournal("fresh.bin");
    {
        bmc::Journal j;
        j.open(path, kHash, false);
        j.append(makeRecord("stale", 3, bmc::Verdict::Proven));
    }
    {
        // A fresh (non-resume) run must not inherit stale verdicts.
        bmc::Journal j;
        j.open(path, kHash, false);
        EXPECT_EQ(j.numLoaded(), 0u);
    }
    bmc::Journal j;
    j.open(path, kHash, true);
    EXPECT_EQ(j.numLoaded(), 0u);
    EXPECT_EQ(j.lookup(key("stale", 3)), nullptr);
}

TEST(Journal, TruncatedTailIsDroppedAndRepaired)
{
    std::string path = tempJournal("torn.bin");
    uint64_t size_after_two = 0;
    {
        bmc::Journal j;
        j.open(path, kHash, false);
        j.append(makeRecord("a", 3, bmc::Verdict::Proven));
        j.append(makeRecord("b", 3, bmc::Verdict::Refuted));
        size_after_two = fs::file_size(path);
        j.append(makeRecord("c", 3, bmc::Verdict::Proven));
    }

    // Simulate a kill mid-write of the third record: chop a few bytes
    // off the tail.
    fs::resize_file(path, fs::file_size(path) - 5);

    {
        bmc::Journal j;
        j.open(path, kHash, true);
        EXPECT_EQ(j.numLoaded(), 2u);
        EXPECT_NE(j.lookup(key("a", 3)), nullptr);
        EXPECT_NE(j.lookup(key("b", 3)), nullptr);
        EXPECT_EQ(j.lookup(key("c", 3)), nullptr);
        // The torn bytes are gone for good: the file is truncated back
        // to the last durable record, so the next append lands cleanly.
        EXPECT_EQ(fs::file_size(path), size_after_two);
        EXPECT_TRUE(j.append(makeRecord("d", 3, bmc::Verdict::Proven)));
    }

    bmc::Journal j;
    j.open(path, kHash, true);
    EXPECT_EQ(j.numLoaded(), 3u);
    EXPECT_NE(j.lookup(key("d", 3)), nullptr);
}

TEST(Journal, ChecksumMismatchDropsRecordAndSuccessors)
{
    std::string path = tempJournal("corrupt.bin");
    uint64_t size_after_one = 0;
    uint64_t size_after_two = 0;
    {
        bmc::Journal j;
        j.open(path, kHash, false);
        j.append(makeRecord("a", 3, bmc::Verdict::Proven));
        size_after_one = fs::file_size(path);
        j.append(makeRecord("b", 3, bmc::Verdict::Refuted));
        size_after_two = fs::file_size(path);
        j.append(makeRecord("c", 3, bmc::Verdict::Proven));
    }

    // Flip one payload byte inside record "b" (well past its length +
    // checksum framing). Appends are ordered, so everything at and
    // after the corruption is suspect and must be dropped.
    flipByte(path, size_after_one + 14);

    bmc::Journal j;
    j.open(path, kHash, true);
    EXPECT_EQ(j.numLoaded(), 1u);
    EXPECT_NE(j.lookup(key("a", 3)), nullptr);
    EXPECT_EQ(j.lookup(key("b", 3)), nullptr);
    EXPECT_EQ(j.lookup(key("c", 3)), nullptr);
    EXPECT_EQ(fs::file_size(path), size_after_one);
    (void)size_after_two;
}

TEST(Journal, ConfigHashMismatchIsFatal)
{
    std::string path = tempJournal("hash.bin");
    {
        bmc::Journal j;
        j.open(path, kHash, false);
        j.append(makeRecord("a", 3, bmc::Verdict::Proven));
    }
    // A journal from a different design/bound/unroll configuration
    // must never answer this run's queries.
    bmc::Journal j;
    EXPECT_THROW(j.open(path, kHash + 1, true), FatalError);
}

TEST(Journal, BadMagicIsFatal)
{
    std::string path = tempJournal("magic.bin");
    {
        bmc::Journal j;
        j.open(path, kHash, false);
    }
    flipByte(path, 0);
    bmc::Journal j;
    EXPECT_THROW(j.open(path, kHash, true), FatalError);
}

TEST(Journal, ResumeOnAbsentFileStartsFresh)
{
    std::string path = tempJournal("absent.bin");
    bmc::Journal j;
    j.open(path, kHash, true);
    EXPECT_TRUE(j.isOpen());
    EXPECT_EQ(j.numLoaded(), 0u);
    EXPECT_TRUE(j.append(makeRecord("a", 3, bmc::Verdict::Proven)));

    bmc::Journal j2;
    j2.open(path, kHash, true);
    EXPECT_EQ(j2.numLoaded(), 1u);
}

// A failed append must roll the file back to the last durable frame
// and disable journaling for the rest of the run — never leave a
// partial frame for the next resume to trip over (ISSUE 10 satellite).
TEST(Journal, WriteFailureRollsBackAndDisables)
{
    std::string path = tempJournal("wfail.bin");
    uint64_t size_after_one = 0;
    {
        bmc::Journal j;
        j.open(path, kHash, false);
        ASSERT_TRUE(j.append(makeRecord("a", 3, bmc::Verdict::Proven)));
        size_after_one = fs::file_size(path);

        // Tear the next append halfway through its frame.
        j.setWriteFault([](size_t n) {
            return static_cast<ssize_t>(n / 2);
        });
        EXPECT_FALSE(
            j.append(makeRecord("b", 3, bmc::Verdict::Refuted)));
        EXPECT_TRUE(j.disabled());
        // Rolled back: the torn frame is gone from disk.
        EXPECT_EQ(fs::file_size(path), size_after_one);

        // Disabled means disabled — even with the fault cleared, no
        // further record may land (the store is no longer trusted).
        j.setWriteFault(nullptr);
        EXPECT_FALSE(
            j.append(makeRecord("c", 3, bmc::Verdict::Proven)));
        EXPECT_EQ(j.numAppended(), 1u);
    }

    // The surviving prefix resumes cleanly.
    bmc::Journal j;
    j.open(path, kHash, true);
    EXPECT_EQ(j.numLoaded(), 1u);
    EXPECT_NE(j.lookup(key("a", 3)), nullptr);
    EXPECT_EQ(j.lookup(key("b", 3)), nullptr);
}

// Even if the rollback itself fails, a torn tail is self-healing: the
// resume loader drops it. Simulate by tearing a frame, then bypassing
// the journal's own repair with an out-of-band resize to the torn end.
TEST(Journal, TornFrameWithoutRollbackStillRecovers)
{
    std::string path = tempJournal("wfail2.bin");
    uint64_t torn_size = 0;
    {
        bmc::Journal j;
        j.open(path, kHash, false);
        ASSERT_TRUE(j.append(makeRecord("a", 3, bmc::Verdict::Proven)));
        uint64_t good = fs::file_size(path);
        j.setWriteFault([](size_t n) {
            return static_cast<ssize_t>(n - 3);
        });
        EXPECT_FALSE(
            j.append(makeRecord("b", 3, bmc::Verdict::Refuted)));
        torn_size = good;
        (void)torn_size;
    }
    // Re-create the torn state the rollback would have repaired.
    {
        bmc::Journal j;
        j.open(path, kHash, false);
        ASSERT_TRUE(j.append(makeRecord("a", 3, bmc::Verdict::Proven)));
    }
    std::ofstream f(path, std::ios::app | std::ios::binary);
    f.write("\x20\x00\x00\x00garbage", 11);
    f.close();

    bmc::Journal j;
    j.open(path, kHash, true);
    EXPECT_EQ(j.numLoaded(), 1u);
    EXPECT_NE(j.lookup(key("a", 3)), nullptr);
}

// openShared(): the first opener takes the write lock and resumes; a
// second live opener must be refused (returns false, journal closed)
// instead of interleaving frames with the first. flock(2) is per open
// file description, so two opens in one process exercise the real
// conflict path.
TEST(Journal, OpenSharedSingleWriter)
{
    std::string path = tempJournal("shared.bin");
    bmc::Journal first;
    ASSERT_TRUE(first.openShared(path, kHash));
    EXPECT_TRUE(first.isOpen());
    EXPECT_TRUE(
        first.append(makeRecord("a", 3, bmc::Verdict::Proven)));

    bmc::Journal second;
    EXPECT_FALSE(second.openShared(path, kHash));
    EXPECT_FALSE(second.isOpen());
    // The loser runs journal-less: appends are refused, not fatal.
    EXPECT_FALSE(
        second.append(makeRecord("b", 3, bmc::Verdict::Proven)));
}

// The lock dies with its holder: once the first opener closes, a new
// openShared() wins the lock and resumes the existing records.
TEST(Journal, OpenSharedLockReleasedOnClose)
{
    std::string path = tempJournal("shared2.bin");
    {
        bmc::Journal first;
        ASSERT_TRUE(first.openShared(path, kHash));
        ASSERT_TRUE(
            first.append(makeRecord("a", 3, bmc::Verdict::Proven)));
    }
    bmc::Journal next;
    ASSERT_TRUE(next.openShared(path, kHash));
    EXPECT_EQ(next.numLoaded(), 1u);
    EXPECT_NE(next.lookup(key("a", 3)), nullptr);
}
