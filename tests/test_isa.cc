/**
 * @file
 * Tests for the RV32I-subset ISA layer: encode/decode round trips
 * (checked against known-good RISC-V encodings), the assembler, and
 * the golden functional core.
 */

#include <gtest/gtest.h>

#include <map>

#include "common/logging.hh"
#include "isa/isa.hh"

using namespace r2u::isa;

TEST(Isa, KnownEncodings)
{
    // Cross-checked against the RISC-V spec / standard assemblers.
    EXPECT_EQ(encode(parseAsm("addi x1, x0, 1")), 0x00100093u);
    EXPECT_EQ(encode(parseAsm("addi x2, x1, -1")), 0xfff08113u);
    EXPECT_EQ(encode(parseAsm("add x3, x1, x2")), 0x002081b3u);
    EXPECT_EQ(encode(parseAsm("sub x3, x1, x2")), 0x402081b3u);
    EXPECT_EQ(encode(parseAsm("lw x5, 8(x2)")), 0x00812283u);
    EXPECT_EQ(encode(parseAsm("sw x5, 12(x2)")), 0x00512623u);
    EXPECT_EQ(encode(parseAsm("beq x1, x2, 8")), 0x00208463u);
    EXPECT_EQ(encode(parseAsm("bne x1, x2, -4")), 0xfe209ee3u);
    EXPECT_EQ(encode(parseAsm("jal x0, 0")), 0x0000006fu);
    EXPECT_EQ(encode(parseAsm("lui x7, 5")), 0x000053b7u);
    EXPECT_EQ(nopWord(), 0x00000013u);
}

TEST(Isa, DecodeRoundTrip)
{
    const char *programs[] = {
        "addi x1, x0, 42", "add x4, x2, x3",  "sub x4, x2, x3",
        "and x4, x2, x3",  "or x4, x2, x3",   "xor x4, x2, x3",
        "lw x6, -8(x5)",   "sw x6, 20(x5)",   "beq x1, x2, 16",
        "bne x3, x4, -12", "jal x1, 2044",    "lui x2, 1000",
        "fence",           "nop",
    };
    for (const char *p : programs) {
        Inst in = parseAsm(p);
        Inst out = decode(encode(in));
        EXPECT_EQ(out.op, in.op) << p;
        if (in.op != Op::Fence) {
            EXPECT_EQ(out.imm, in.imm) << p;
        }
        EXPECT_EQ(disasm(out), disasm(in)) << p;
    }
}

TEST(Isa, InvalidEncodingsDecodeAsInvalid)
{
    EXPECT_EQ(decode(0x00000000u).op, Op::Invalid);
    EXPECT_EQ(decode(0xffffffffu).op, Op::Invalid);
    // Store shape with funct3 = 3'b111 — the paper's §6.1 bug trigger.
    uint32_t sw = encode(parseAsm("sw x1, 0(x2)"));
    uint32_t bad = (sw & ~(7u << 12)) | (7u << 12);
    EXPECT_EQ(decode(bad).op, Op::Invalid);
    EXPECT_EQ(decode(bad).raw, bad);
}

TEST(Isa, AssemblerCommentsAndErrors)
{
    auto words = assemble(R"(
        # setup
        addi x1, x0, 1
        sw x1, 0(x0)   ; store flag
        lw x2, 4(x0)
    )");
    ASSERT_EQ(words.size(), 3u);
    EXPECT_EQ(decode(words[0]).op, Op::Addi);
    EXPECT_EQ(decode(words[1]).op, Op::Sw);
    EXPECT_EQ(decode(words[2]).op, Op::Lw);

    EXPECT_THROW(parseAsm("bogus x1, x2"), r2u::FatalError);
    EXPECT_THROW(parseAsm("addi x99, x0, 1"), r2u::FatalError);
    EXPECT_THROW(parseAsm("lw x1, nope"), r2u::FatalError);
}

namespace
{

/** Run a program on the golden core over a simple word memory. */
std::map<uint32_t, uint32_t>
runGolden(GoldenCore &core, const std::vector<uint32_t> &prog,
          int max_steps, std::map<uint32_t, uint32_t> mem = {})
{
    core.reset();
    for (int i = 0; i < max_steps; i++) {
        uint32_t idx = core.pc() / 4;
        if (idx >= prog.size())
            break;
        Inst inst = decode(prog[idx]);
        uint32_t before = core.pc();
        core.step(
            inst, [&](uint32_t a) { return mem.count(a) ? mem[a] : 0; },
            [&](uint32_t a, uint32_t v) { mem[a] = v; });
        if (inst.op == Op::Jal && inst.imm == 0 && core.pc() == before)
            break; // spin
    }
    return mem;
}

} // namespace

TEST(GoldenCore, ArithmeticAndMemory)
{
    GoldenCore core;
    auto mem = runGolden(core, assemble(R"(
        addi x1, x0, 10
        addi x2, x0, 32
        add x3, x1, x2
        sub x4, x2, x1
        sw x3, 0(x0)
        sw x4, 4(x0)
        lw x5, 0(x0)
    )"), 100);
    EXPECT_EQ(core.reg(3), 42u);
    EXPECT_EQ(core.reg(4), 22u);
    EXPECT_EQ(core.reg(5), 42u);
    EXPECT_EQ(mem[0], 42u);
    EXPECT_EQ(mem[4], 22u);
}

TEST(GoldenCore, X0IsHardwiredZero)
{
    GoldenCore core;
    runGolden(core, assemble("addi x0, x0, 5\naddi x1, x0, 3"), 10);
    EXPECT_EQ(core.reg(0), 0u);
    EXPECT_EQ(core.reg(1), 3u);
}

TEST(GoldenCore, BranchesAndJumps)
{
    GoldenCore core;
    runGolden(core, assemble(R"(
        addi x1, x0, 3
        addi x2, x0, 0
        addi x3, x0, 0
        # loop: x3 += 2, x1 -= 1, until x1 == 0
        addi x3, x3, 2
        addi x1, x1, -1
        bne x1, x0, -8
        jal x0, 0
    )"), 100);
    EXPECT_EQ(core.reg(3), 6u);
    EXPECT_EQ(core.reg(1), 0u);
}

TEST(GoldenCore, NarrowXlenMasks)
{
    GoldenCore core(8);
    runGolden(core, assemble("addi x1, x0, 300"), 4);
    EXPECT_EQ(core.reg(1), 300u & 0xff);
}

TEST(GoldenCore, InvalidInstructionIsNop)
{
    GoldenCore core;
    std::vector<uint32_t> prog = {0u, encode(parseAsm("addi x1, x0, 7"))};
    runGolden(core, prog, 5);
    EXPECT_EQ(core.reg(1), 7u);
}
