/**
 * @file
 * Tests for the canonical structural netlist hash (ISSUE 8): the
 * whole-netlist hash must be deterministic and must discriminate
 * same-shaped designs (equal cell/register/memory counts, different
 * logic), and the per-cone hash must track exactly the cone of
 * influence — an edit outside a cone leaves its hash (and any cached
 * verdict keyed by it) intact, an edit inside changes it.
 *
 * The journal regression at the bottom is the bug this issue fixes:
 * two designs the old count-mixing configHash() could not tell apart
 * must now reject each other's journals.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "bmc/journal.hh"
#include "common/bits.hh"
#include "common/logging.hh"
#include "netlist/coi.hh"
#include "netlist/hash.hh"
#include "netlist/netlist.hh"

using namespace r2u;
namespace fs = std::filesystem;

namespace
{

/**
 * A small design with two independent cones:
 *   cone A:  ra = Dff(a0 <opA> a1)
 *   cone B:  rb = Dff(b0 <opB> b1)   (operands optionally swapped)
 * plus a memory whose write data is selectable, read back into cone A
 * when @p mem_in_a. Every variant has identical cell, input, register,
 * and memory counts — only wiring/kinds/values differ.
 */
struct TwoCone
{
    nl::Netlist n;
    nl::CellId ra, rb;
    nl::MemId mem;

    TwoCone(nl::CellKind opA, nl::CellKind opB, bool swapB,
            bool mem_data_from_a1, uint64_t rb_init)
    {
        nl::CellId a0 = n.addInput("a0", 8);
        nl::CellId a1 = n.addInput("a1", 8);
        nl::CellId b0 = n.addInput("b0", 8);
        nl::CellId b1 = n.addInput("b1", 8);
        nl::CellId one = n.addConst(Bits(1, 1), "one");

        nl::CellId ga = n.addBinary(opA, a0, a1, "ga");
        nl::CellId gb = swapB ? n.addBinary(opB, b1, b0, "gb")
                              : n.addBinary(opB, b0, b1, "gb");

        mem = n.addMemory("m", 4, 8);
        nl::CellId waddr = n.addSlice(a0, 0, 2, "waddr");
        nl::CellId wdata = mem_data_from_a1
                               ? n.addBinary(nl::CellKind::Xor, a1, a1,
                                             "wdata")
                               : n.addBinary(nl::CellKind::Xor, a0, a0,
                                             "wdata");
        n.addMemWrite(mem, waddr, wdata, one);
        nl::CellId rd = n.addMemRead(mem, waddr, "rd");

        nl::CellId da = n.addBinary(nl::CellKind::Or, ga, rd, "da");
        ra = n.addDff("ra", da, one, Bits(8, 0));
        rb = n.addDff("rb", gb, one, Bits(8, rb_init));
        n.validate();
    }
};

uint64_t
coneOf(const TwoCone &d, nl::CellId seed)
{
    nl::CoiSeeds seeds;
    seeds.cells.push_back(seed);
    return nl::coneHash(d.n, seeds);
}

} // namespace

TEST(NetlistHash, DeterministicAcrossIndependentBuilds)
{
    TwoCone x(nl::CellKind::And, nl::CellKind::Add, false, false, 7);
    TwoCone y(nl::CellKind::And, nl::CellKind::Add, false, false, 7);
    EXPECT_EQ(nl::structuralHash(x.n), nl::structuralHash(y.n));
    EXPECT_EQ(coneOf(x, x.ra), coneOf(y, y.ra));
    EXPECT_EQ(coneOf(x, x.rb), coneOf(y, y.rb));
}

// The heart of the ISSUE 8 bugfix: equal-count designs with different
// logic must hash differently. The old configHash() mixed only element
// counts and could not tell any of these apart.
TEST(NetlistHash, SameShapeDifferentLogicDiscriminates)
{
    TwoCone base(nl::CellKind::And, nl::CellKind::Add, false, false, 7);
    // Different cell kind at identical counts.
    TwoCone kind(nl::CellKind::Or, nl::CellKind::Add, false, false, 7);
    // Same kinds, operands of the (commutative-looking but
    // order-sensitive in the encoding) B gate swapped.
    TwoCone swap(nl::CellKind::And, nl::CellKind::Add, true, false, 7);
    // Same gates, different register power-on value.
    TwoCone init(nl::CellKind::And, nl::CellKind::Add, false, false, 9);
    // Same gates, memory write port wired to a different data source.
    TwoCone wire(nl::CellKind::And, nl::CellKind::Add, false, true, 7);

    auto same_counts = [&](const TwoCone &d) {
        nl::NetlistStats a = base.n.stats();
        nl::NetlistStats b = d.n.stats();
        EXPECT_EQ(a.cells, b.cells);
        EXPECT_EQ(a.registers, b.registers);
        EXPECT_EQ(a.inputs, b.inputs);
        EXPECT_EQ(a.memories, b.memories);
        EXPECT_EQ(a.flopBits, b.flopBits);
        EXPECT_EQ(a.memBits, b.memBits);
    };
    same_counts(kind);
    same_counts(swap);
    same_counts(init);
    same_counts(wire);

    uint64_t h = nl::structuralHash(base.n);
    EXPECT_NE(h, nl::structuralHash(kind.n));
    EXPECT_NE(h, nl::structuralHash(swap.n));
    EXPECT_NE(h, nl::structuralHash(init.n));
    EXPECT_NE(h, nl::structuralHash(wire.n));
}

// Editing cone B must not disturb cone A's hash (that is what makes
// per-cone cache invalidation partial), and must disturb cone B's.
TEST(NetlistHash, ConeHashIsolatesIndependentCones)
{
    TwoCone base(nl::CellKind::And, nl::CellKind::Add, false, false, 7);
    TwoCone editB(nl::CellKind::And, nl::CellKind::Xor, false, false, 7);

    EXPECT_EQ(coneOf(base, base.ra), coneOf(editB, editB.ra));
    EXPECT_NE(coneOf(base, base.rb), coneOf(editB, editB.rb));

    // And the reverse: a cone-A-only edit leaves cone B alone.
    TwoCone editA(nl::CellKind::Or, nl::CellKind::Add, false, false, 7);
    EXPECT_EQ(coneOf(base, base.rb), coneOf(editA, editA.rb));
    EXPECT_NE(coneOf(base, base.ra), coneOf(editA, editA.ra));
}

// MemWrite cells have no output wire and are not members of
// Coi::cells, but their wiring changes what a reader of the array can
// observe — the cone hash must see through that.
TEST(NetlistHash, ConeHashSeesMemoryWritePortRewiring)
{
    TwoCone base(nl::CellKind::And, nl::CellKind::Add, false, false, 7);
    TwoCone wire(nl::CellKind::And, nl::CellKind::Add, false, true, 7);

    // ra reads the memory, so rewiring the write port changes its cone
    // hash; rb does not, so its hash is untouched.
    EXPECT_NE(coneOf(base, base.ra), coneOf(wire, wire.ra));
    EXPECT_EQ(coneOf(base, base.rb), coneOf(wire, wire.rb));

    // Seeding the memory directly sees the rewiring too.
    nl::CoiSeeds seeds;
    seeds.mems.push_back(base.mem);
    EXPECT_NE(nl::coneHash(base.n, seeds), nl::coneHash(wire.n, seeds));
}

// End-to-end journal regression: a journal produced by one design must
// be rejected by a same-shaped design with different logic, because
// the config binding is now the structural hash, not element counts.
TEST(NetlistHash, SameShapeDesignRejectsForeignJournal)
{
    TwoCone base(nl::CellKind::And, nl::CellKind::Add, false, false, 7);
    TwoCone other(nl::CellKind::Or, nl::CellKind::Add, false, false, 7);

    fs::path path = fs::path(::testing::TempDir()) / "same_shape.bin";
    fs::remove(path);
    {
        bmc::Journal j;
        j.open(path.string(), nl::structuralHash(base.n), false);
        bmc::Journal::Record rec;
        rec.key = bmc::journalKey("sva_a", 3, 0x1234);
        rec.name = "sva_a";
        rec.verdict = bmc::Verdict::Proven;
        rec.bound = 3;
        j.append(rec);
    }
    {
        // Same design resumes fine.
        bmc::Journal j;
        j.open(path.string(), nl::structuralHash(base.n), true);
        EXPECT_EQ(j.numLoaded(), 1u);
    }
    bmc::Journal j;
    EXPECT_THROW(j.open(path.string(), nl::structuralHash(other.n), true),
                 FatalError);
}
