/**
 * @file
 * Verdict-identity and unit tests for CNF simplification
 * (sat/simplify.hh) and the solver paths that consume it:
 *
 *  - Simplifier unit behavior: subsumption, self-subsuming
 *    resolution, pure-literal and bounded variable elimination,
 *    frozen variables, UNSAT detection;
 *  - random CNFs solved with preprocessing on vs. off must agree, and
 *    every SAT answer's reconstructed model must satisfy the
 *    *original* (pre-elimination) clauses — the property `--validate`
 *    counterexample replay depends on;
 *  - inprocessing (periodic simplifyDB + arena garbage collection)
 *    must not change verdicts, incrementally or not;
 *  - a reduceDB() regression: a crafted conflict schedule (learnt cap
 *    pinned to almost nothing, so reduction fires while learnt
 *    clauses are reasons on the trail) must never evict locked
 *    clauses — evicting a reason corrupts conflict analysis, which
 *    shows up as a wrong verdict, a bogus model, or a crash.
 */

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "sat/simplify.hh"
#include "sat/solver.hh"

using namespace r2u::sat;

namespace
{

using Cnf = std::vector<std::vector<Lit>>;

/** Random k-CNF near the 3-SAT phase transition so that fixed seeds
 *  yield a mix of SAT and UNSAT instances. */
Cnf
randomCnf(std::mt19937 &rng, int num_vars, int num_clauses)
{
    Cnf cnf;
    std::uniform_int_distribution<int> pick_var(0, num_vars - 1);
    std::uniform_int_distribution<int> coin(0, 1);
    std::uniform_int_distribution<int> width_die(0, 9);
    for (int i = 0; i < num_clauses; i++) {
        int width = width_die(rng) == 0 ? 2 : 3;
        std::vector<Lit> clause;
        while (static_cast<int>(clause.size()) < width) {
            Lit l = mkLit(pick_var(rng), coin(rng) != 0);
            bool dup = false;
            for (Lit o : clause)
                dup = dup || var(o) == var(l);
            if (!dup)
                clause.push_back(l);
        }
        cnf.push_back(std::move(clause));
    }
    return cnf;
}

/** Pigeonhole: pigeons > holes is UNSAT with a deterministically
 *  conflict-rich proof (var = p * holes + h). */
Cnf
pigeonhole(int pigeons, int holes)
{
    Cnf cnf;
    for (int p = 0; p < pigeons; p++) {
        std::vector<Lit> some;
        for (int h = 0; h < holes; h++)
            some.push_back(mkLit(p * holes + h));
        cnf.push_back(some);
    }
    for (int h = 0; h < holes; h++)
        for (int p1 = 0; p1 < pigeons; p1++)
            for (int p2 = p1 + 1; p2 < pigeons; p2++)
                cnf.push_back({~mkLit(p1 * holes + h),
                               ~mkLit(p2 * holes + h)});
    return cnf;
}

void
load(Solver &s, const Cnf &cnf, int num_vars)
{
    while (s.numVars() < num_vars)
        s.newVar();
    for (const auto &clause : cnf)
        s.addClause(clause);
}

bool
satisfies(const std::vector<LBool> &model, const Cnf &cnf)
{
    for (const auto &clause : cnf) {
        bool sat = false;
        for (Lit l : clause) {
            if (var(l) >= static_cast<Var>(model.size()))
                return false;
            sat = sat || ((model[var(l)] ^ sign(l)) == LBool::True);
        }
        if (!sat)
            return false;
    }
    return true;
}

Result
solvePlain(const Cnf &cnf, int num_vars,
           std::vector<LBool> *model = nullptr,
           const std::vector<Lit> &assumptions = {})
{
    Solver s;
    load(s, cnf, num_vars);
    Result r = s.solve(assumptions);
    if (model && r == Result::Sat)
        *model = s.model();
    return r;
}

} // namespace

// ---------------------------------------------------------------------
// Simplifier unit behavior
// ---------------------------------------------------------------------

TEST(Simplify, SubsumptionRemovesSuperset)
{
    Simplifier simp(4, SimplifyOptions{});
    // Freeze everything so only subsumption can act.
    for (Var v = 0; v < 4; v++)
        simp.freeze(v);
    simp.addClause({mkLit(0), mkLit(1)});
    simp.addClause({mkLit(0), mkLit(1), mkLit(2)});
    simp.addClause({mkLit(2), mkLit(3)});
    ASSERT_TRUE(simp.run());
    EXPECT_GE(simp.stats().clausesSubsumed, 1u);
    Cnf out = simp.result();
    for (const auto &clause : out)
        EXPECT_LT(clause.size(), 3u) << "superset clause survived";
}

TEST(Simplify, SelfSubsumingResolutionStrengthens)
{
    Simplifier simp(4, SimplifyOptions{});
    for (Var v = 0; v < 4; v++)
        simp.freeze(v);
    // (x0 v x1) almost-subsumes (x0 v ~x1 v x2) modulo x1: resolution
    // strengthens the latter to (x0 v x2). The extra x1 clauses keep
    // occ(x1) larger than occ(x0), so the subsumption scan walks
    // occ(x0) — the list that actually contains the victim.
    simp.addClause({mkLit(0), mkLit(1)});
    simp.addClause({mkLit(0), ~mkLit(1), mkLit(2)});
    simp.addClause({mkLit(1), mkLit(3)});
    simp.addClause({mkLit(1), mkLit(3), ~mkLit(2)});
    ASSERT_TRUE(simp.run());
    EXPECT_GE(simp.stats().litsStrengthened, 1u);
    for (const auto &clause : simp.result()) {
        bool has_neg1 = false;
        for (Lit l : clause)
            has_neg1 = has_neg1 || l == ~mkLit(1);
        EXPECT_FALSE(has_neg1) << "~x1 should have been resolved away";
    }
}

TEST(Simplify, PureLiteralEliminatedAndReconstructed)
{
    Simplifier simp(3, SimplifyOptions{});
    // x2 occurs only positively -> pure, eliminated with a
    // reconstruction record.
    simp.addClause({mkLit(0), mkLit(2)});
    simp.addClause({~mkLit(0), mkLit(1)});
    ASSERT_TRUE(simp.run());
    EXPECT_GE(simp.stats().pureLiterals, 1u);
    EXPECT_TRUE(simp.isEliminated(2));

    std::vector<LBool> model(3, LBool::Undef);
    model[0] = LBool::False; // makes (x0 v x2) depend on x2
    model[1] = LBool::True;
    Simplifier::extendModel(model, simp.records());
    EXPECT_EQ(model[2], LBool::True);
}

TEST(Simplify, BveEliminatesFunctionallyDefinedVar)
{
    // x1 <-> x0 (two binary clauses, 1 pos / 1 neg occurrence):
    // resolving x1 away yields only the tautology, so BVE removes it.
    Simplifier simp(3, SimplifyOptions{});
    simp.freeze(0);
    simp.freeze(2);
    simp.addClause({~mkLit(1), mkLit(0)});
    simp.addClause({mkLit(1), ~mkLit(0)});
    simp.addClause({mkLit(0), mkLit(2)});
    ASSERT_TRUE(simp.run());
    EXPECT_TRUE(simp.isEliminated(1));
    EXPECT_GE(simp.stats().varsEliminated, 1u);

    // Reconstruction restores x1 = x0 whichever way x0 went.
    std::vector<LBool> model(3, LBool::Undef);
    model[0] = LBool::True;
    model[2] = LBool::False;
    Simplifier::extendModel(model, simp.records());
    EXPECT_EQ(model[1], LBool::True);
}

TEST(Simplify, FrozenVariableSurvives)
{
    Simplifier simp(2, SimplifyOptions{});
    simp.freeze(1);
    // x1 is pure positive, but frozen: must not be eliminated.
    simp.addClause({mkLit(0), mkLit(1)});
    simp.addClause({~mkLit(0), mkLit(1)});
    ASSERT_TRUE(simp.run());
    EXPECT_FALSE(simp.isEliminated(1));
}

TEST(Simplify, UnsatDetected)
{
    Simplifier simp(2, SimplifyOptions{});
    simp.addClause({mkLit(0)});
    simp.addClause({~mkLit(0), mkLit(1)});
    simp.addClause({~mkLit(0), ~mkLit(1)});
    EXPECT_FALSE(simp.run());
}

// ---------------------------------------------------------------------
// Verdict identity: Simplifier path vs. plain solving on random CNFs
// ---------------------------------------------------------------------

class SimplifyRandomTest : public ::testing::TestWithParam<int>
{
};

TEST_P(SimplifyRandomTest, VerdictIdentityAndModelReconstruction)
{
    std::mt19937 rng(1000 + GetParam());
    const int kVars = 24;
    const int kClauses = 101; // ~4.2 clauses/var: SAT/UNSAT mix
    Cnf cnf = randomCnf(rng, kVars, kClauses);

    Result plain = solvePlain(cnf, kVars);
    ASSERT_NE(plain, Result::Unknown);

    Simplifier simp(kVars, SimplifyOptions{});
    for (const auto &clause : cnf)
        simp.addClause(clause);
    if (!simp.run()) {
        EXPECT_EQ(plain, Result::Unsat) << "seed " << GetParam();
        return;
    }

    Solver s;
    load(s, simp.result(), kVars);
    Result simplified = s.solve();
    ASSERT_NE(simplified, Result::Unknown);
    EXPECT_EQ(simplified, plain) << "seed " << GetParam();

    if (simplified == Result::Sat) {
        std::vector<LBool> model = s.model();
        model.resize(kVars, LBool::Undef);
        Simplifier::extendModel(model, simp.records());
        EXPECT_TRUE(satisfies(model, cnf))
            << "reconstructed model violates an original clause, seed "
            << GetParam();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplifyRandomTest,
                         ::testing::Range(0, 12));

// ---------------------------------------------------------------------
// Solver::preprocess — the embedded path with frozen assumption vars
// ---------------------------------------------------------------------

class SolverPreprocessTest : public ::testing::TestWithParam<int>
{
};

TEST_P(SolverPreprocessTest, VerdictIdentityUnderActivation)
{
    std::mt19937 rng(7000 + GetParam());
    const int kVars = 22;
    Cnf cnf = randomCnf(rng, kVars, 92);
    // Guard a slice of the clauses by an activation variable, the way
    // BMC queries guard their bad-cone clauses.
    const Var act = kVars;
    for (size_t i = 0; i < cnf.size(); i += 4)
        cnf[i].push_back(~mkLit(act));

    Result plain_on = solvePlain(cnf, kVars + 1, nullptr, {mkLit(act)});
    Result plain_off = solvePlain(cnf, kVars + 1, nullptr, {~mkLit(act)});
    ASSERT_NE(plain_on, Result::Unknown);
    ASSERT_NE(plain_off, Result::Unknown);

    Solver s;
    load(s, cnf, kVars + 1);
    if (!s.preprocess(SimplifyOptions{}, {act})) {
        // Preprocessing may only prove unconditional UNSAT.
        EXPECT_EQ(plain_on, Result::Unsat);
        EXPECT_EQ(plain_off, Result::Unsat);
        return;
    }
    EXPECT_FALSE(s.isEliminated(act));

    // Same solver, both activation polarities, incrementally.
    Result on = s.solve({mkLit(act)});
    EXPECT_EQ(on, plain_on) << "seed " << GetParam();
    if (on == Result::Sat) {
        EXPECT_TRUE(satisfies(s.model(), cnf));
        EXPECT_TRUE(s.modelValue(act));
        // Reconstruction must cover every original variable.
        for (Var v = 0; v <= kVars; v++)
            EXPECT_NE(s.model()[v], LBool::Undef) << "var " << v;
    }
    Result off = s.solve({~mkLit(act)});
    EXPECT_EQ(off, plain_off) << "seed " << GetParam();
    if (off == Result::Sat)
        EXPECT_TRUE(satisfies(s.model(), cnf));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverPreprocessTest,
                         ::testing::Range(0, 12));

TEST(SolverPreprocess, ReportsEliminationStats)
{
    // Plumbing chain x0 -> x1 -> ... -> x9 with only the endpoints
    // frozen: BVE should eliminate interior equivalence variables.
    Cnf cnf;
    const int kVars = 10;
    for (int v = 0; v + 1 < kVars; v++) {
        cnf.push_back({~mkLit(v), mkLit(v + 1)});
        cnf.push_back({mkLit(v), ~mkLit(v + 1)});
    }
    Solver s;
    load(s, cnf, kVars);
    ASSERT_TRUE(s.preprocess(SimplifyOptions{}, {0, kVars - 1}));
    EXPECT_GT(s.stats().preprocessVarsEliminated, 0u);
    EXPECT_EQ(s.stats().preprocessRuns, 1u);

    ASSERT_EQ(s.solve({mkLit(0)}), Result::Sat);
    EXPECT_TRUE(satisfies(s.model(), cnf));
    EXPECT_TRUE(s.modelValue(kVars - 1));
}

// ---------------------------------------------------------------------
// reduceDB regression: locked (reason) clauses must survive reduction
// ---------------------------------------------------------------------

namespace
{

/**
 * Crafted conflict schedule: the learnt cap is pinned so low that
 * reduceDB() fires after virtually every conflict, while learnt
 * clauses are still reasons of trail literals. If reduction evicted a
 * locked clause, conflict analysis would walk a tombstoned reason —
 * wrong verdicts, bogus models, or a crash.
 */
SolverConfig
evictionStormConfig(bool lbd_reduce)
{
    SolverConfig cfg;
    cfg.maxLearntsOverride = 2.0;
    cfg.lbdReduce = lbd_reduce;
    // LBD mode schedules reductions by conflict count instead.
    cfg.reduceFirst = 4;
    cfg.reduceInc = 0;
    cfg.glueLbd = 0; // no glue immunity: only the lock protects
    return cfg;
}

} // namespace

TEST(ReduceDb, LockedReasonsSurviveActivityRanked)
{
    Cnf cnf = pigeonhole(7, 6);
    Solver s;
    s.setConfig(evictionStormConfig(false));
    load(s, cnf, 7 * 6);
    EXPECT_EQ(s.solve(), Result::Unsat);
    EXPECT_GT(s.stats().removedClauses, 0u)
        << "reduction never fired; the regression is not exercised";
}

TEST(ReduceDb, LockedReasonsSurviveLbdRanked)
{
    Cnf cnf = pigeonhole(7, 6);
    Solver s;
    s.setConfig(evictionStormConfig(true));
    load(s, cnf, 7 * 6);
    EXPECT_EQ(s.solve(), Result::Unsat);
    EXPECT_GT(s.stats().removedClauses, 0u);
}

TEST(ReduceDb, SatisfiableUnderEvictionStorm)
{
    for (int seed = 0; seed < 6; seed++) {
        std::mt19937 rng(500 + seed);
        const int kVars = 30;
        Cnf cnf = randomCnf(rng, kVars, 110);
        Result plain = solvePlain(cnf, kVars);
        for (bool lbd : {false, true}) {
            Solver s;
            s.setConfig(evictionStormConfig(lbd));
            load(s, cnf, kVars);
            Result r = s.solve();
            EXPECT_EQ(r, plain) << "seed " << seed << " lbd " << lbd;
            if (r == Result::Sat)
                EXPECT_TRUE(satisfies(s.model(), cnf))
                    << "seed " << seed << " lbd " << lbd;
        }
    }
}

// ---------------------------------------------------------------------
// Inprocessing (simplifyDB + arena compaction) keeps verdicts
// ---------------------------------------------------------------------

TEST(Inprocess, AggressiveSimplifyKeepsVerdicts)
{
    for (int seed = 0; seed < 8; seed++) {
        std::mt19937 rng(9100 + seed);
        const int kVars = 24;
        Cnf cnf = randomCnf(rng, kVars, 100);
        Result plain = solvePlain(cnf, kVars);

        SolverConfig cfg;
        cfg.inprocessPeriod = 1; // simplify at every restart
        cfg.lubyUnit = 1;        // restart almost every conflict
        Solver s;
        s.setConfig(cfg);
        load(s, cnf, kVars);
        Result r = s.solve();
        EXPECT_EQ(r, plain) << "seed " << seed;
        if (r == Result::Sat)
            EXPECT_TRUE(satisfies(s.model(), cnf)) << "seed " << seed;
    }
}

TEST(Inprocess, RunsAndCompactsOnConflictRichInstance)
{
    SolverConfig cfg;
    cfg.inprocessPeriod = 1;
    cfg.lubyUnit = 1;
    Solver s;
    s.setConfig(cfg);
    Cnf cnf = pigeonhole(7, 6);
    load(s, cnf, 7 * 6);
    EXPECT_EQ(s.solve(), Result::Unsat);
    // The restart storm must actually have driven simplifyDB (which
    // also garbage-collects the clause arena).
    EXPECT_GT(s.stats().simplifyRuns, 0u);
}

TEST(Inprocess, IncrementalSolvesStaySound)
{
    // Root facts learned by solve N must let simplifyDB drop clauses
    // before solve N+1 without changing any later verdict.
    SolverConfig cfg;
    cfg.inprocessPeriod = 1;
    cfg.lubyUnit = 1;
    Solver simp_solver, plain_solver;
    simp_solver.setConfig(cfg);

    std::mt19937 rng(424242);
    const int kVars = 20;
    Cnf batch1 = randomCnf(rng, kVars, 60);
    load(simp_solver, batch1, kVars);
    load(plain_solver, batch1, kVars);
    EXPECT_EQ(simp_solver.solve(), plain_solver.solve());

    Cnf batch2 = randomCnf(rng, kVars, 35);
    for (const auto &clause : batch2) {
        simp_solver.addClause(clause);
        plain_solver.addClause(clause);
    }
    Result r2 = plain_solver.solve();
    EXPECT_EQ(simp_solver.solve(), r2);
    if (r2 == Result::Sat) {
        Cnf all = batch1;
        all.insert(all.end(), batch2.begin(), batch2.end());
        EXPECT_TRUE(satisfies(simp_solver.model(), all));
    }

    // And under assumptions, both polarities.
    for (bool neg : {false, true}) {
        std::vector<Lit> as{mkLit(3, neg), mkLit(11, !neg)};
        EXPECT_EQ(simp_solver.solve(as), plain_solver.solve(as));
    }
}
