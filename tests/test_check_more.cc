/**
 * @file
 * Check-engine edge cases: execution-candidate enumeration counts,
 * final-memory conditions, write-only and single-thread tests,
 * four-thread tests, microop construction, and verdict bookkeeping.
 * Uses a hand-written SC model so the tests are independent of the
 * synthesis pipeline.
 */

#include <gtest/gtest.h>

#include "check/check.hh"
#include "litmus/litmus.hh"
#include "uspec/uspec.hh"

using namespace r2u;
using LTest = litmus::Test;

namespace
{

const uspec::Model &
scModel()
{
    static uspec::Model m = uspec::Model::parse(R"(
StageName 0 "IF_".
StageName 1 "acc".
StageName 2 "mem".
StageName 3 "regfile".
MemoryAccessStage "acc".
MemoryStage "mem".
Axiom "R_path":
forall microop "i0",
IsAnyRead i0 =>
AddEdges [((i0, IF_), (i0, acc));
          ((i0, acc), (i0, regfile))].
Axiom "W_path":
forall microop "i0",
IsAnyWrite i0 =>
AddEdges [((i0, IF_), (i0, acc));
          ((i0, acc), (i0, mem))].
Axiom "PO_fetch":
forall microops "i0", "i1",
SameCore i0 i1 => ProgramOrder i0 i1 =>
AddEdge ((i0, IF_), (i1, IF_)).
Axiom "PO_acc":
forall microops "i0", "i1",
SameCore i0 i1 => ProgramOrder i0 i1 =>
AddEdge ((i0, acc), (i1, acc)).
)");
    return m;
}

} // namespace

TEST(CheckMore, MicroopConstruction)
{
    LTest t = LTest::parse(R"(name x
thread 0
w x 1
r y 2
thread 1
w y 3
interesting 0:x2=3)");
    auto ops = check::microopsOf(t);
    ASSERT_EQ(ops.size(), 3u);
    EXPECT_TRUE(ops[0].isWrite);
    EXPECT_EQ(ops[0].addr, 0);
    EXPECT_EQ(ops[0].value, 1);
    EXPECT_TRUE(ops[1].isRead);
    EXPECT_EQ(ops[1].addr, 4);
    EXPECT_EQ(ops[1].core, 0);
    EXPECT_EQ(ops[1].index, 1);
    EXPECT_EQ(ops[2].core, 1);
    EXPECT_EQ(ops[2].index, 0);
}

TEST(CheckMore, ExecutionEnumerationCounts)
{
    // One read, two same-address writes: rf in {init, w1, w2} and
    // ws permutations 2 -> 6 candidate executions.
    LTest t = LTest::parse(R"(name x
thread 0
w x 1
thread 1
w x 2
thread 2
r x 2
interesting 2:x2=0)");
    int count = 0;
    check::forEachExecution(t, [&](const uhb::Execution &) {
        count++;
    });
    EXPECT_EQ(count, 6);
}

TEST(CheckMore, WriteOnlyTestUsesFinalMemory)
{
    // 2+2W-style: only writes; the condition constrains final memory.
    LTest t = LTest::parse(R"(name w2
thread 0
w x 1
w y 2
thread 1
w y 1
w x 2
interesting x=1 & y=1)");
    auto res = check::checkTest(scModel(), t);
    EXPECT_TRUE(res.pass) << res.summary();
    EXPECT_FALSE(res.interestingObservable);
    EXPECT_FALSE(res.interestingScAllowed);
    EXPECT_GT(res.executionsExplored, 1);
}

TEST(CheckMore, SingleThreadCoherence)
{
    LTest t = LTest::parse(R"(name corw1
thread 0
r x 2
w x 1
interesting 0:x2=1)");
    auto res = check::checkTest(scModel(), t);
    EXPECT_TRUE(res.pass) << res.summary();
    EXPECT_FALSE(res.interestingObservable)
        << "a read must not observe its own program-order successor";
}

TEST(CheckMore, FourThreadIriw)
{
    auto suite = litmus::standardSuite();
    const LTest *iriw = nullptr;
    for (const auto &t : suite)
        if (t.name == "iriw")
            iriw = &t;
    ASSERT_NE(iriw, nullptr);
    auto res = check::checkTest(scModel(), *iriw);
    EXPECT_TRUE(res.pass) << res.summary();
    EXPECT_FALSE(res.interestingObservable);
    // 4 reads x 2 candidates = 16 rf combinations.
    EXPECT_EQ(res.executionsExplored, 16);
}

TEST(CheckMore, ViolationsReportedForWeakModel)
{
    // A model with paths only (no ordering axioms at the access row
    // beyond per-op paths): SB's non-SC outcome becomes observable.
    uspec::Model weak = uspec::Model::parse(R"(
StageName 0 "IF_".
StageName 1 "acc".
StageName 2 "mem".
StageName 3 "regfile".
MemoryAccessStage "acc".
MemoryStage "mem".
Axiom "R_path":
forall microop "i0",
IsAnyRead i0 =>
AddEdge ((i0, acc), (i0, regfile)).
Axiom "W_path":
forall microop "i0",
IsAnyWrite i0 =>
AddEdge ((i0, acc), (i0, mem)).
)");
    LTest sb = litmus::standardSuite()[1];
    auto res = check::checkTest(weak, sb);
    EXPECT_FALSE(res.pass);
    EXPECT_TRUE(res.interestingObservable);
    ASSERT_FALSE(res.violations.empty());
    // The violation string names concrete register values.
    EXPECT_NE(res.violations[0].find("x2=0"), std::string::npos);
}

TEST(CheckMore, TightnessReporting)
{
    LTest mp = litmus::standardSuite()[0];
    auto res = check::checkTest(scModel(), mp);
    EXPECT_TRUE(res.pass);
    EXPECT_TRUE(res.tight);
    EXPECT_EQ(res.observableOutcomes, res.scAllowedOutcomes);
}

TEST(CheckMore, DotOnlyWhenRequested)
{
    LTest mp = litmus::standardSuite()[0];
    auto res = check::checkTest(scModel(), mp);
    EXPECT_TRUE(res.interestingDot.empty());
    check::Options opts;
    opts.collectDot = true;
    res = check::checkTest(scModel(), mp, opts);
    EXPECT_FALSE(res.interestingDot.empty());
    EXPECT_NE(res.interestingDot.find("digraph"), std::string::npos);
}
