/**
 * @file
 * Focused µhb-engine semantics tests: EdgeExists fixpoint chaining,
 * EitherOrdering branch search, rf/ws/fr orientation edges, and
 * quantifier instantiation corner cases (unary axioms, self-pairs).
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "uhb/uhb.hh"
#include "uspec/uspec.hh"

using namespace r2u;
using namespace r2u::uhb;

namespace
{

/** Two same-core ops: a write then a read of the same address. */
Execution
writeThenRead(int rf_src)
{
    Execution e;
    Microop w;
    w.id = 0;
    w.core = 0;
    w.index = 0;
    w.isWrite = true;
    w.addr = 0;
    w.value = 1;
    w.label = "sw";
    Microop r;
    r.id = 1;
    r.core = 0;
    r.index = 1;
    r.isRead = true;
    r.addr = 0;
    r.value = rf_src == 0 ? 1 : 0;
    r.label = "lw";
    e.ops = {w, r};
    e.rf = {-2, rf_src};
    e.ws[0] = {0};
    return e;
}

} // namespace

TEST(UhbSemantics, EdgeExistsFixpointChains)
{
    // Axiom 2 fires only once axiom 1's edge exists; axiom 3 only
    // once axiom 2's does. All three must land via the fixpoint.
    uspec::Model m = uspec::Model::parse(R"(
StageName 0 "a".
StageName 1 "b".
StageName 2 "c".
StageName 3 "d".
Axiom "base":
forall microop "i0",
IsAnyWrite i0 =>
AddEdge ((i0, a), (i0, b)).
Axiom "chain1":
forall microop "i0",
EdgeExists ((i0, a), (i0, b)) =>
AddEdge ((i0, b), (i0, c)).
Axiom "chain2":
forall microop "i0",
EdgeExists ((i0, b), (i0, c)) =>
AddEdge ((i0, c), (i0, d)).
)");
    Execution e = writeThenRead(0);
    auto res = solve(m, e);
    EXPECT_TRUE(res.observable);
    EXPECT_TRUE(res.graph.hasEdge(0, 0, 0, 1));
    EXPECT_TRUE(res.graph.hasEdge(0, 1, 0, 2));
    EXPECT_TRUE(res.graph.hasEdge(0, 2, 0, 3));
    // The read (not a write) triggers none of the chain.
    EXPECT_FALSE(res.graph.hasEdge(1, 0, 1, 1));
}

TEST(UhbSemantics, EitherOrderingExploresBothBranches)
{
    // Two ops contend on one location with no forced direction; a
    // second axiom forbids one direction, so the solver must find the
    // other branch.
    uspec::Model m = uspec::Model::parse(R"(
StageName 0 "s".
StageName 1 "t".
Axiom "contend":
forall microops "i0", "i1",
NotSame i0 i1 =>
EitherOrdering ((i0, s), (i1, s), "ser").
Axiom "pin":
forall microops "i0", "i1",
IsAnyWrite i0 => IsAnyRead i1 =>
AddEdge ((i1, s), (i0, s), "force").
)");
    Execution e = writeThenRead(-1);
    auto res = solve(m, e);
    ASSERT_TRUE(res.observable);
    // The forced direction must be the one chosen: read before write.
    EXPECT_TRUE(res.graph.hasEdge(1, 0, 0, 0));
    EXPECT_FALSE(res.graph.hasEdge(0, 0, 1, 0));
    EXPECT_GE(res.branchesExplored, 1);
}

TEST(UhbSemantics, ContradictoryEitherOrderingIsCyclic)
{
    // Pin BOTH directions via unconditional axioms: no branch works.
    uspec::Model m = uspec::Model::parse(R"(
StageName 0 "s".
Axiom "fwd":
forall microops "i0", "i1",
IsAnyWrite i0 => IsAnyRead i1 =>
AddEdge ((i0, s), (i1, s)).
Axiom "bwd":
forall microops "i0", "i1",
IsAnyWrite i0 => IsAnyRead i1 =>
AddEdge ((i1, s), (i0, s)).
)");
    Execution e = writeThenRead(-1);
    auto res = solve(m, e);
    EXPECT_FALSE(res.observable);
    EXPECT_TRUE(res.graph.cyclic());
}

TEST(UhbSemantics, RfWsFrOrientation)
{
    uspec::Model m = uspec::Model::parse(R"(
StageName 0 "acc".
StageName 1 "mem".
MemoryAccessStage "acc".
MemoryStage "mem".
)");
    // Three ops at one address: w1, w2 (ws: w1 < w2), and a read
    // observing w1 => fr edge read -> w2.
    Execution e;
    for (int i = 0; i < 3; i++) {
        Microop op;
        op.id = i;
        op.core = i;
        op.index = 0;
        op.addr = 0;
        e.ops.push_back(op);
    }
    e.ops[0].isWrite = true;
    e.ops[0].value = 1;
    e.ops[1].isWrite = true;
    e.ops[1].value = 2;
    e.ops[2].isRead = true;
    e.ops[2].value = 1;
    e.rf = {-2, -2, 0};
    e.ws[0] = {0, 1};
    auto res = solve(m, e);
    ASSERT_TRUE(res.observable);
    EXPECT_TRUE(res.graph.hasEdge(0, 0, 1, 0)); // ws at access row
    EXPECT_TRUE(res.graph.hasEdge(0, 1, 1, 1)); // ws at memory row
    EXPECT_TRUE(res.graph.hasEdge(0, 0, 2, 0)); // rf
    EXPECT_TRUE(res.graph.hasEdge(2, 0, 1, 0)); // fr to ws-successor
}

TEST(UhbSemantics, ReadFromInitFrToAllWrites)
{
    uspec::Model m = uspec::Model::parse(R"(
StageName 0 "acc".
MemoryAccessStage "acc".
)");
    Execution e = writeThenRead(-1); // read observes the initial value
    auto res = solve(m, e);
    ASSERT_TRUE(res.observable);
    EXPECT_TRUE(res.graph.hasEdge(1, 0, 0, 0)); // fr: read before write
    EXPECT_FALSE(res.graph.hasEdge(0, 0, 1, 0));
}

TEST(UhbSemantics, SelfPairsExcludedByNotSame)
{
    uspec::Model m = uspec::Model::parse(R"(
StageName 0 "s".
Axiom "self":
forall microops "i0", "i1",
NotSame i0 i1 => SameCore i0 i1 =>
AddEdge ((i0, s), (i1, s)).
)");
    // A single op: the (i0 == i1) binding must not add a self-edge —
    // with it, the graph would be trivially cyclic.
    Execution e;
    Microop w;
    w.id = 0;
    w.core = 0;
    w.index = 0;
    w.isWrite = true;
    w.addr = 0;
    w.value = 1;
    e.ops = {w};
    e.rf = {-2};
    e.ws[0] = {0};
    auto res = solve(m, e);
    EXPECT_TRUE(res.observable);
    // But with two distinct ops the axiom applies both ways -> cycle.
    Execution e2 = writeThenRead(-1);
    e2.ws.clear(); // remove orientation; only the axiom acts
    auto res2 = solve(m, e2);
    EXPECT_FALSE(res2.observable);
}

TEST(UhbSemantics, DotContainsGridStructure)
{
    uspec::Model m = uspec::Model::parse(R"(
StageName 0 "row_a".
StageName 1 "row_b".
Axiom "p":
forall microop "i0",
IsAnyWrite i0 =>
AddEdge ((i0, row_a), (i0, row_b)).
)");
    Execution e = writeThenRead(0);
    auto res = solve(m, e);
    std::string dot = res.graph.toDot(m, e.ops, "g");
    EXPECT_NE(dot.find("rank=same"), std::string::npos);
    EXPECT_NE(dot.find("row_a"), std::string::npos);
    EXPECT_NE(dot.find("sw"), std::string::npos); // column header
}
