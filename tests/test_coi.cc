/**
 * @file
 * Tests for cone-of-influence slicing: the static COI analysis
 * (nl::computeCoi), the demand-driven unroller (materialized state is
 * a subset of the static cone; undemanded memories never bit-blast),
 * the one-hot address decoder, and sliced-vs-eager verdict agreement
 * on random netlists for both SAT and UNSAT queries.
 */

#include <gtest/gtest.h>

#include <random>

#include "bmc/checker.hh"
#include "netlist/coi.hh"
#include "random_netlist.hh"
#include "sim/simulator.hh"

using namespace r2u;
using r2u::test::RandomDesign;
using r2u::test::makeRandom;

namespace
{

/**
 * Two independent cones sharing a netlist:
 *   cone 1: (a + b) -> r1, plus memory m written from r1 and read
 *           into rd;
 *   cone 2: ~c -> r2, plus memory m2 written from r2 and never read.
 */
struct TwoCones
{
    nl::Netlist n;
    nl::CellId a, b, c, sum, r1, notc, r2, rd;
    nl::MemId m, m2;

    TwoCones()
    {
        using nl::CellKind;
        a = n.addInput("a", 8);
        b = n.addInput("b", 8);
        c = n.addInput("c", 8);
        sum = n.addBinary(CellKind::Add, a, b);
        nl::CellId en = n.addConst(Bits(1, 1));
        r1 = n.addDff("r1", sum, en, Bits(8, 0));
        notc = n.addUnary(CellKind::Not, c);
        r2 = n.addDff("r2", notc, en, Bits(8, 0));

        m = n.addMemory("m", 4, 8);
        n.addMemWrite(m, n.addSlice(r1, 0, 2), r1, en);
        rd = n.addMemRead(m, n.addSlice(a, 0, 2));

        m2 = n.addMemory("m2", 4, 8);
        n.addMemWrite(m2, n.addSlice(r2, 0, 2), r2, en);
        n.validate();
    }
};

} // namespace

TEST(Coi, BackwardReachability)
{
    TwoCones d;

    // Seeding r1 pulls in its D-cone across the register boundary but
    // nothing from the other cone and no memory.
    nl::Coi coi = nl::computeCoi(d.n, {{d.r1}, {}});
    EXPECT_TRUE(coi.hasCell(d.r1));
    EXPECT_TRUE(coi.hasCell(d.sum));
    EXPECT_TRUE(coi.hasCell(d.a));
    EXPECT_TRUE(coi.hasCell(d.b));
    EXPECT_FALSE(coi.hasCell(d.c));
    EXPECT_FALSE(coi.hasCell(d.notc));
    EXPECT_FALSE(coi.hasCell(d.r2));
    EXPECT_FALSE(coi.hasMem(d.m));
    EXPECT_FALSE(coi.hasMem(d.m2));

    // Seeding the read port pulls in the array, and the array pulls
    // in its write port's inputs (r1's cone) — but not cone 2.
    nl::Coi rd_coi = nl::computeCoi(d.n, {{d.rd}, {}});
    EXPECT_TRUE(rd_coi.hasCell(d.rd));
    EXPECT_TRUE(rd_coi.hasMem(d.m));
    EXPECT_TRUE(rd_coi.hasCell(d.r1));
    EXPECT_TRUE(rd_coi.hasCell(d.sum));
    EXPECT_FALSE(rd_coi.hasMem(d.m2));
    EXPECT_FALSE(rd_coi.hasCell(d.r2));

    // Seeding a memory directly pulls in its write-port inputs.
    nl::Coi m2_coi = nl::computeCoi(d.n, {{}, {d.m2}});
    EXPECT_TRUE(m2_coi.hasMem(d.m2));
    EXPECT_TRUE(m2_coi.hasCell(d.r2));
    EXPECT_TRUE(m2_coi.hasCell(d.notc));
    EXPECT_TRUE(m2_coi.hasCell(d.c));
    EXPECT_FALSE(m2_coi.hasCell(d.r1));
    EXPECT_EQ(coi.numMems(), 0u);
    EXPECT_EQ(m2_coi.numMems(), 1u);
}

TEST(Coi, UndemandedMemoryNeverMaterialized)
{
    TwoCones d;
    const unsigned kBound = 4;

    // Demand-driven: reading rd materializes m (and only m).
    {
        sat::Solver solver;
        sat::CnfBuilder cnf(solver);
        bmc::Unroller u(d.n, cnf, {});
        u.ensureFrames(kBound);
        EXPECT_EQ(u.stats().wiresBuilt, 0u);
        u.wire(kBound - 1, d.rd);
        EXPECT_TRUE(u.memEverMaterialized(d.m));
        EXPECT_FALSE(u.memEverMaterialized(d.m2));
        EXPECT_FALSE(u.wireMaterialized(kBound - 1, d.r2));
    }

    // A register-only cone materializes no memory at all.
    {
        sat::Solver solver;
        sat::CnfBuilder cnf(solver);
        bmc::Unroller u(d.n, cnf, {});
        u.wire(kBound - 1, d.r1);
        EXPECT_FALSE(u.memEverMaterialized(d.m));
        EXPECT_FALSE(u.memEverMaterialized(d.m2));
    }

    // Eager mode (--full-unroll) builds everything.
    {
        sat::Solver solver;
        sat::CnfBuilder cnf(solver);
        bmc::Unroller::Options opts;
        opts.fullUnroll = true;
        bmc::Unroller u(d.n, cnf, opts);
        u.ensureFrames(kBound);
        EXPECT_TRUE(u.memEverMaterialized(d.m));
        EXPECT_TRUE(u.memEverMaterialized(d.m2));
        EXPECT_TRUE(u.wireMaterialized(kBound - 1, d.r2));
        EXPECT_EQ(u.stats().memArraysBuilt,
                  kBound * d.n.numMemories());
    }
}

TEST(Coi, MaterializedStateSubsetOfStaticCone)
{
    std::mt19937 rng(77);
    for (int trial = 0; trial < 4; trial++) {
        RandomDesign d = makeRandom(rng);
        const unsigned kBound = 5;

        sat::Solver solver;
        sat::CnfBuilder cnf(solver);
        bmc::Unroller u(d.netlist, cnf, {});
        nl::CoiSeeds seeds;
        for (size_t i = 0; i < d.probes.size(); i += 2)
            seeds.cells.push_back(d.probes[i]);
        for (nl::CellId c : seeds.cells)
            u.wire(kBound - 1, c);

        nl::Coi coi = nl::computeCoi(d.netlist, seeds);
        for (unsigned f = 0; f < kBound; f++) {
            for (size_t i = 0; i < d.netlist.numCells(); i++) {
                nl::CellId id = static_cast<nl::CellId>(i);
                if (u.wireMaterialized(f, id)) {
                    EXPECT_TRUE(coi.hasCell(id))
                        << "cell " << id << " frame " << f;
                }
            }
            for (size_t m = 0; m < d.netlist.numMemories(); m++) {
                nl::MemId id = static_cast<nl::MemId>(m);
                if (u.memMaterialized(f, id)) {
                    EXPECT_TRUE(coi.hasMem(id));
                }
            }
        }
    }
}

TEST(Coi, OneHotDecode)
{
    sat::Solver solver;
    sat::CnfBuilder cnf(solver);
    // Constant addresses fold to constant one-hot outputs.
    for (unsigned v = 0; v < 8; v++) {
        std::vector<sat::Lit> oh = cnf.mkDecodeW(cnf.constWord(3, v));
        ASSERT_EQ(oh.size(), 8u);
        for (unsigned i = 0; i < 8; i++)
            EXPECT_EQ(oh[i], i == v ? cnf.trueLit() : cnf.falseLit());
    }
    // Symbolic address: exactly one output true per model.
    sat::Word a = cnf.freshWord(2);
    std::vector<sat::Lit> oh = cnf.mkDecodeW(a);
    for (unsigned v = 0; v < 4; v++) {
        ASSERT_EQ(solver.solve({v & 1 ? a[0] : ~a[0],
                                v & 2 ? a[1] : ~a[1]}),
                  sat::Result::Sat);
        for (unsigned i = 0; i < 4; i++)
            EXPECT_EQ(solver.modelValue(oh[i]), i == v) << v;
    }
    // mkOrTree agrees with mkOrN's semantics.
    EXPECT_EQ(cnf.mkOrTree({}), cnf.falseLit());
    EXPECT_EQ(cnf.mkOrTree({cnf.falseLit(), oh[2], cnf.falseLit()}),
              oh[2]);
}

/**
 * The headline COI win, measured where cones are genuinely local: a
 * netlist of eight independent lanes (adder chain feeding a memory
 * feeding a register). A query over one lane must bit-blast at least
 * 3x fewer CNF variables sliced than under --full-unroll, with the
 * same verdict. (On globally coupled designs like the multi-V-scale
 * the reduction is necessarily smaller; see test_bmc_engine.)
 */
TEST(Coi, IndependentLanesSliceAtLeast3x)
{
    using nl::CellKind;
    const unsigned kLanes = 8, kBound = 6;
    nl::Netlist n;
    std::vector<nl::CellId> last(kLanes);
    for (unsigned k = 0; k < kLanes; k++) {
        std::string suffix = "_" + std::to_string(k);
        nl::CellId in = n.addInput("in" + suffix, 8);
        nl::CellId en = n.addConst(Bits(1, 1));
        nl::CellId r0 = n.addDff("r0" + suffix, in, en, Bits(8, 0));
        nl::CellId sum = n.addBinary(CellKind::Add, r0, in);
        nl::CellId r1 = n.addDff("r1" + suffix, sum, en, Bits(8, 1));
        nl::MemId m = n.addMemory("m" + suffix, 8, 8);
        n.addMemWrite(m, n.addSlice(r0, 0, 3), r1, en);
        nl::CellId rd = n.addMemRead(m, n.addSlice(r1, 0, 3));
        last[k] = n.addDff("r2" + suffix, rd, en, Bits(8, 0));
    }
    n.validate();

    std::unordered_map<std::string, nl::CellId> empty_map;
    auto check = [&](bool full_unroll) {
        bmc::Unroller::Options opts;
        opts.fullUnroll = full_unroll;
        return bmc::checkProperty(
            n, empty_map, opts, kBound, [&](bmc::PropCtx &ctx) {
                // Can lane 0's tail register reach 0xff? The answer
                // only needs lane 0's cone.
                return ctx.cnf().mkEqW(
                    ctx.unroller().wire(kBound - 1, last[0]),
                    ctx.cnf().constWord(8, 0xff));
            });
    };
    bmc::CheckResult sliced = check(false);
    bmc::CheckResult eager = check(true);
    EXPECT_EQ(sliced.verdict, eager.verdict);
    EXPECT_GE(eager.cnfVars, 3 * sliced.cnfVars)
        << "sliced " << sliced.cnfVars << " eager " << eager.cnfVars;
}

class CoiRandomTest : public ::testing::TestWithParam<int>
{
};

/**
 * Sliced and eager unrolling must agree verdict-for-verdict: the
 * "probes match the interpreter" query is UNSAT (Proven) and each
 * corrupted-expectation query is SAT (Refuted) in both modes — with
 * the sliced CNF never larger than the eager one.
 */
TEST_P(CoiRandomTest, SlicedMatchesEagerVerdicts)
{
    std::mt19937 rng(9100 + GetParam());
    RandomDesign d = makeRandom(rng);
    const unsigned kFrames = 6;

    sim::Simulator sim(d.netlist);
    std::vector<std::vector<Bits>> stim(kFrames), expect(kFrames);
    for (unsigned f = 0; f < kFrames; f++) {
        for (nl::CellId in : d.inputs) {
            Bits v(d.netlist.cell(in).width,
                   static_cast<uint64_t>(rng()));
            sim.setInput(in, v);
            stim[f].push_back(v);
        }
        for (nl::CellId p : d.probes)
            expect[f].push_back(sim.value(p));
        sim.step();
    }

    std::unordered_map<std::string, nl::CellId> empty_map;
    auto check = [&](bool full_unroll, const bmc::PropertyFn &prop) {
        bmc::Unroller::Options opts;
        opts.fullUnroll = full_unroll;
        return bmc::checkProperty(d.netlist, empty_map, opts, kFrames,
                                  prop);
    };
    auto pin_inputs = [&](bmc::PropCtx &ctx) {
        auto &cnf = ctx.cnf();
        for (unsigned f = 0; f < kFrames; f++)
            for (size_t i = 0; i < d.inputs.size(); i++)
                ctx.assume(cnf.mkEqW(
                    ctx.unroller().wire(f, d.inputs[i]),
                    cnf.constWord(stim[f][i])));
    };

    // UNSAT in both modes: pinned probes cannot deviate.
    bmc::PropertyFn agree = [&](bmc::PropCtx &ctx) {
        auto &cnf = ctx.cnf();
        pin_inputs(ctx);
        sat::Lit bad = cnf.falseLit();
        for (unsigned f = 0; f < kFrames; f++)
            for (size_t i = 0; i < d.probes.size(); i++)
                bad = cnf.mkOr(
                    bad,
                    ~cnf.mkEqW(ctx.unroller().wire(f, d.probes[i]),
                               cnf.constWord(expect[f][i])));
        return bad;
    };
    bmc::CheckResult sliced = check(false, agree);
    bmc::CheckResult eager = check(true, agree);
    EXPECT_EQ(sliced.verdict, bmc::Verdict::Proven);
    EXPECT_EQ(eager.verdict, bmc::Verdict::Proven);
    EXPECT_LE(sliced.cnfVars, eager.cnfVars);
    EXPECT_LE(sliced.cnfClauses, eager.cnfClauses);

    // SAT in both modes: a corrupted expectation is reachable.
    for (size_t p = 0; p < d.probes.size(); p += 2) {
        bmc::PropertyFn corrupt = [&](bmc::PropCtx &ctx) {
            auto &cnf = ctx.cnf();
            pin_inputs(ctx);
            Bits wrong = ~expect[kFrames - 1][p];
            return ~cnf.mkEqW(
                ctx.unroller().wire(kFrames - 1, d.probes[p]),
                cnf.constWord(wrong));
        };
        EXPECT_EQ(check(false, corrupt).verdict, bmc::Verdict::Refuted);
        EXPECT_EQ(check(true, corrupt).verdict, bmc::Verdict::Refuted);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoiRandomTest, ::testing::Range(0, 8));
