/**
 * @file
 * Tests for the Tseitin circuit builder: each word-level operation is
 * cross-checked against Bits semantics by asserting equality with a
 * constant and solving, and by randomized equivalence checking.
 */

#include <gtest/gtest.h>

#include <random>

#include "sat/cnf.hh"

using namespace r2u::sat;
using r2u::Bits;

namespace
{

/** Force a word to a concrete value via unit clauses. */
void
fixWord(CnfBuilder &cnf, const Word &w, const Bits &v)
{
    ASSERT_EQ(w.size(), v.width());
    for (unsigned i = 0; i < v.width(); i++)
        cnf.assertLit(v.bit(i) ? w[i] : ~w[i]);
}

} // namespace

TEST(Cnf, ConstantsFold)
{
    Solver s;
    CnfBuilder cnf(s);
    EXPECT_TRUE(cnf.isTrue(cnf.mkAnd(cnf.trueLit(), cnf.trueLit())));
    EXPECT_TRUE(cnf.isFalse(cnf.mkAnd(cnf.trueLit(), cnf.falseLit())));
    Lit x = cnf.freshLit();
    EXPECT_EQ(cnf.mkAnd(cnf.trueLit(), x), x);
    EXPECT_TRUE(cnf.isFalse(cnf.mkAnd(x, ~x)));
    EXPECT_EQ(cnf.mkXor(x, cnf.falseLit()), x);
    EXPECT_EQ(cnf.mkXor(x, cnf.trueLit()), ~x);
    EXPECT_TRUE(cnf.isFalse(cnf.mkXor(x, x)));
}

TEST(Cnf, StructuralHashing)
{
    Solver s;
    CnfBuilder cnf(s);
    Lit a = cnf.freshLit(), b = cnf.freshLit();
    Lit g1 = cnf.mkAnd(a, b);
    Lit g2 = cnf.mkAnd(b, a); // commuted
    EXPECT_EQ(g1, g2);
    EXPECT_EQ(cnf.numGates(), 1u);
}

TEST(Cnf, AndOrXorTruthTables)
{
    for (int av = 0; av < 2; av++) {
        for (int bv = 0; bv < 2; bv++) {
            Solver s;
            CnfBuilder cnf(s);
            Lit a = cnf.freshLit(), b = cnf.freshLit();
            Lit g_and = cnf.mkAnd(a, b);
            Lit g_or = cnf.mkOr(a, b);
            Lit g_xor = cnf.mkXor(a, b);
            cnf.assertLit(av ? a : ~a);
            cnf.assertLit(bv ? b : ~b);
            ASSERT_EQ(s.solve(), Result::Sat);
            EXPECT_EQ(s.modelValue(g_and), av && bv);
            EXPECT_EQ(s.modelValue(g_or), av || bv);
            EXPECT_EQ(s.modelValue(g_xor), (av ^ bv) != 0);
        }
    }
}

TEST(Cnf, MuxSelects)
{
    Solver s;
    CnfBuilder cnf(s);
    Lit sel = cnf.freshLit(), t = cnf.freshLit(), f = cnf.freshLit();
    Lit y = cnf.mkMux(sel, t, f);
    cnf.assertLit(sel);
    cnf.assertLit(t);
    cnf.assertLit(~f);
    ASSERT_EQ(s.solve(), Result::Sat);
    EXPECT_TRUE(s.modelValue(y));
}

/** Randomized equivalence of word ops against Bits reference. */
class CnfWordTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(CnfWordTest, WordOpsMatchBits)
{
    unsigned w = GetParam();
    std::mt19937_64 rng(99 + w);
    for (int round = 0; round < 8; round++) {
        uint64_t mask = w >= 64 ? ~0ull : ((1ull << w) - 1);
        Bits x(w, rng() & mask), y(w, rng() & mask);

        Solver s;
        CnfBuilder cnf(s);
        Word a = cnf.freshWord(w), b = cnf.freshWord(w);
        Word add = cnf.mkAddW(a, b);
        Word sub = cnf.mkSubW(a, b);
        Word band = cnf.mkAndW(a, b);
        Word bxor = cnf.mkXorW(a, b);
        Lit eq = cnf.mkEqW(a, b);
        Lit ult = cnf.mkUltW(a, b);
        Lit slt = cnf.mkSltW(a, b);
        Word sh = cnf.freshWord(3);
        Word shl = cnf.mkShlW(a, sh);
        Word lshr = cnf.mkLshrW(a, sh);
        Word ashr = cnf.mkAshrW(a, sh);

        unsigned shv = static_cast<unsigned>(rng() % 8);
        fixWord(cnf, a, x);
        fixWord(cnf, b, y);
        fixWord(cnf, sh, Bits(3, shv));
        ASSERT_EQ(s.solve(), Result::Sat);

        EXPECT_EQ(cnf.modelWord(add), x + y);
        EXPECT_EQ(cnf.modelWord(sub), x - y);
        EXPECT_EQ(cnf.modelWord(band), x & y);
        EXPECT_EQ(cnf.modelWord(bxor), x ^ y);
        auto litVal = [&](Lit l) {
            return cnf.isTrue(l) ||
                   (!cnf.isFalse(l) && s.modelValue(l));
        };
        EXPECT_EQ(litVal(eq), x == y);
        EXPECT_EQ(litVal(ult), x.ult(y));
        EXPECT_EQ(litVal(slt), x.slt(y));
        unsigned eff = shv >= w ? w : shv;
        EXPECT_EQ(cnf.modelWord(shl), x.shl(eff));
        EXPECT_EQ(cnf.modelWord(lshr), x.lshr(eff));
        EXPECT_EQ(cnf.modelWord(ashr), x.ashr(eff));
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, CnfWordTest,
                         ::testing::Values(1u, 2u, 4u, 7u, 8u, 16u, 32u));

TEST(Cnf, UnsatWhenContradictingEquality)
{
    Solver s;
    CnfBuilder cnf(s);
    Word a = cnf.freshWord(8);
    Word b = cnf.mkAddW(a, cnf.constWord(8, 1));
    // a == a + 1 has no solution at width 8.
    cnf.assertLit(cnf.mkEqW(a, b));
    EXPECT_EQ(s.solve(), Result::Unsat);
}

TEST(Cnf, SolverFindsAdditionPreimage)
{
    Solver s;
    CnfBuilder cnf(s);
    Word a = cnf.freshWord(16);
    Word b = cnf.freshWord(16);
    Word sum = cnf.mkAddW(a, b);
    fixWord(cnf, sum, Bits(16, 0xbeef));
    cnf.assertLit(cnf.mkUltW(a, b));
    ASSERT_EQ(s.solve(), Result::Sat);
    Bits av = cnf.modelWord(a), bv = cnf.modelWord(b);
    EXPECT_EQ(av + bv, Bits(16, 0xbeef));
    EXPECT_TRUE(av.ult(bv));
}

TEST(Cnf, ZextSextSliceConcat)
{
    Solver s;
    CnfBuilder cnf(s);
    Word a = cnf.freshWord(4);
    fixWord(cnf, a, Bits(4, 0xc));
    Word z = CnfBuilder::zextW(a, 8, cnf.falseLit());
    Word x = CnfBuilder::sextW(a, 8);
    Word sl = CnfBuilder::sliceW(a, 2, 2);
    Word cc = CnfBuilder::concatW(a, a);
    ASSERT_EQ(s.solve(), Result::Sat);
    EXPECT_EQ(cnf.modelWord(z).toUint64(), 0x0cu);
    EXPECT_EQ(cnf.modelWord(x).toUint64(), 0xfcu);
    EXPECT_EQ(cnf.modelWord(sl).toUint64(), 0x3u);
    EXPECT_EQ(cnf.modelWord(cc).toUint64(), 0xccu);
}
