/**
 * @file
 * Tests for the Verilog frontend: lexer, parser, and elaborator,
 * validated end-to-end by simulating elaborated designs.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "sim/simulator.hh"
#include "verilog/elaborate.hh"
#include "verilog/lexer.hh"
#include "verilog/parser.hh"

using namespace r2u;
using namespace r2u::vlog;

namespace
{

ElabResult
elab(const std::string &src, const std::string &top,
     std::unordered_map<std::string, int64_t> params = {})
{
    Design d = parseString(src, "test.v");
    ElabOptions opts;
    opts.top = top;
    opts.params = std::move(params);
    return elaborate(d, opts);
}

} // namespace

TEST(Lexer, NumbersAndOperators)
{
    auto toks = tokenize("8'hff 4'b1010 'd7 42 <= >>> == x1_a // c\n+", "t");
    ASSERT_GE(toks.size(), 9u);
    EXPECT_EQ(toks[0].number.width(), 8u);
    EXPECT_EQ(toks[0].number.toUint64(), 0xffu);
    EXPECT_TRUE(toks[0].sized);
    EXPECT_EQ(toks[1].number.toUint64(), 10u);
    EXPECT_EQ(toks[2].number.width(), 32u);
    EXPECT_FALSE(toks[2].sized);
    EXPECT_EQ(toks[3].number.toUint64(), 42u);
    EXPECT_EQ(toks[4].text, "<=");
    EXPECT_EQ(toks[5].text, ">>>");
    EXPECT_EQ(toks[6].text, "==");
    EXPECT_EQ(toks[7].text, "x1_a");
    EXPECT_EQ(toks[8].text, "+");
}

TEST(Lexer, CommentsAndErrors)
{
    auto toks = tokenize("a /* x\ny */ b", "t");
    ASSERT_EQ(toks.size(), 3u); // a, b, EOF
    EXPECT_EQ(toks[1].line, 2);
    EXPECT_THROW(tokenize("8'q1", "t"), FatalError);
    EXPECT_THROW(tokenize("\"str\"", "t"), FatalError);
}

TEST(Parser, ModuleStructure)
{
    Design d = parseString(R"(
        module m #(parameter W = 4) (
            input clk,
            input [W-1:0] a,
            output wire [W-1:0] y
        );
            assign y = a + 4'd1;
        endmodule
    )", "t.v");
    ASSERT_EQ(d.modules.size(), 1u);
    const Module *m = d.findModule("m");
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(m->portOrder.size(), 3u);
}

TEST(Parser, SyntaxErrors)
{
    EXPECT_THROW(parseString("module m (input a; endmodule", "t"),
                 FatalError);
    EXPECT_THROW(parseString("module m (); garbage endmodule", "t"),
                 FatalError);
    EXPECT_THROW(parseString("module m (); assign x = ; endmodule", "t"),
                 FatalError);
}

TEST(Elab, ContinuousAssignArithmetic)
{
    auto r = elab(R"(
        module top (input [7:0] a, input [7:0] b, output wire [7:0] y);
            wire [7:0] t = a & b;
            assign y = (a + b) ^ (t | 8'h0f);
        endmodule
    )", "top");
    sim::Simulator s(*r.netlist);
    s.setInput("a", Bits(8, 0x35));
    s.setInput("b", Bits(8, 0x9c));
    uint64_t t = 0x35 & 0x9c;
    uint64_t expect = ((0x35 + 0x9c) & 0xff) ^ (t | 0x0f);
    EXPECT_EQ(s.value(r.signal("y")).toUint64(), expect);
}

TEST(Elab, TernaryReductionAndCompare)
{
    auto r = elab(R"(
        module top (input [3:0] a, input [3:0] b, output wire [3:0] y);
            assign y = (a < b) ? (a == b ? 4'd9 : a) : ~b;
        endmodule
    )", "top");
    sim::Simulator s(*r.netlist);
    s.setInput("a", Bits(4, 2));
    s.setInput("b", Bits(4, 7));
    EXPECT_EQ(s.value(r.signal("y")).toUint64(), 2u);
    s.setInput("a", Bits(4, 9));
    EXPECT_EQ(s.value(r.signal("y")).toUint64(), 8u); // ~7 & 0xf
}

TEST(Elab, SignedCompare)
{
    auto r = elab(R"(
        module top (input [3:0] a, input [3:0] b, output wire y);
            assign y = $signed(a) < $signed(b);
        endmodule
    )", "top");
    sim::Simulator s(*r.netlist);
    s.setInput("a", Bits(4, 0xf)); // -1
    s.setInput("b", Bits(4, 1));
    EXPECT_EQ(s.value(r.signal("y")).toUint64(), 1u);
    s.setInput("a", Bits(4, 1));
    s.setInput("b", Bits(4, 0xf));
    EXPECT_EQ(s.value(r.signal("y")).toUint64(), 0u);
}

TEST(Elab, ConcatReplicationPartSelect)
{
    auto r = elab(R"(
        module top (input [7:0] a, output wire [15:0] y,
                    output wire [3:0] z);
            assign y = {a[3:0], {2{a[7]}}, a[6], 5'b10101};
            assign z = a[6:3];
        endmodule
    )", "top");
    sim::Simulator s(*r.netlist);
    s.setInput("a", Bits(8, 0xc5)); // 1100_0101
    // y = {0101, 11, 1, 10101} = 0101 11 1 10101 (16 bits)
    uint64_t expect = (0x5ull << 8) | (0x3ull << 6) | (1ull << 5) | 0x15;
    EXPECT_EQ(s.value(r.signal("y")).toUint64(), expect);
    EXPECT_EQ(s.value(r.signal("z")).toUint64(), 0x8u); // bits 6..3
}

TEST(Elab, SequentialCounterWithReset)
{
    auto r = elab(R"(
        module top (input clk, input reset, output wire [3:0] count);
            reg [3:0] q;
            always @(posedge clk) begin
                if (reset)
                    q <= 4'd0;
                else
                    q <= q + 4'd1;
            end
            assign count = q;
        endmodule
    )", "top");
    sim::Simulator s(*r.netlist);
    s.setInput("reset", Bits(1, 1));
    s.setInput("clk", Bits(1, 0));
    s.step();
    s.setInput("reset", Bits(1, 0));
    s.run(5);
    EXPECT_EQ(s.value(r.signal("q")).toUint64(), 5u);
}

TEST(Elab, NonblockingLastWinsAndSwap)
{
    auto r = elab(R"(
        module top (input clk, input swap,
                    output wire [7:0] ra, output wire [7:0] rb);
            reg [7:0] a;
            reg [7:0] b;
            always @(posedge clk) begin
                if (swap) begin
                    a <= b;
                    b <= a;
                end else begin
                    a <= 8'd1;
                    a <= 8'd2;  // last assignment wins
                    b <= 8'd3;
                end
            end
            assign ra = a;
            assign rb = b;
        endmodule
    )", "top");
    sim::Simulator s(*r.netlist);
    s.setInput("swap", Bits(1, 0));
    s.step();
    EXPECT_EQ(s.value(r.signal("a")).toUint64(), 2u);
    EXPECT_EQ(s.value(r.signal("b")).toUint64(), 3u);
    s.setInput("swap", Bits(1, 1));
    s.step();
    // Nonblocking swap reads old values.
    EXPECT_EQ(s.value(r.signal("a")).toUint64(), 3u);
    EXPECT_EQ(s.value(r.signal("b")).toUint64(), 2u);
}

TEST(Elab, CombAlwaysCaseWithDefault)
{
    auto r = elab(R"(
        module top (input [1:0] sel, input [7:0] a, input [7:0] b,
                    output wire [7:0] y);
            reg [7:0] t;
            always @(*) begin
                t = 8'd0;
                case (sel)
                    2'd0: t = a;
                    2'd1: t = b;
                    2'd2: t = a + b;
                    default: t = 8'hff;
                endcase
            end
            assign y = t;
        endmodule
    )", "top");
    sim::Simulator s(*r.netlist);
    s.setInput("a", Bits(8, 10));
    s.setInput("b", Bits(8, 20));
    s.setInput("sel", Bits(2, 0));
    EXPECT_EQ(s.value(r.signal("y")).toUint64(), 10u);
    s.setInput("sel", Bits(2, 1));
    EXPECT_EQ(s.value(r.signal("y")).toUint64(), 20u);
    s.setInput("sel", Bits(2, 2));
    EXPECT_EQ(s.value(r.signal("y")).toUint64(), 30u);
    s.setInput("sel", Bits(2, 3));
    EXPECT_EQ(s.value(r.signal("y")).toUint64(), 0xffu);
}

TEST(Elab, LatchInferenceIsFatal)
{
    EXPECT_THROW(elab(R"(
        module top (input c, input [3:0] a, output wire [3:0] y);
            reg [3:0] t;
            always @(*) begin
                if (c)
                    t = a;
            end
            assign y = t;
        endmodule
    )", "top"), FatalError);
}

TEST(Elab, MultipleDriversIsFatal)
{
    EXPECT_THROW(elab(R"(
        module top (input a, output wire y);
            assign y = a;
            assign y = ~a;
        endmodule
    )", "top"), FatalError);
}

TEST(Elab, BlockingInSeqIsFatal)
{
    EXPECT_THROW(elab(R"(
        module top (input clk, input a, output wire y);
            reg q;
            always @(posedge clk) begin
                q = a;
            end
            assign y = q;
        endmodule
    )", "top"), FatalError);
}

TEST(Elab, MemoryInference)
{
    auto r = elab(R"(
        module top (input clk, input we, input [1:0] waddr,
                    input [7:0] wdata, input [1:0] raddr,
                    output wire [7:0] rdata);
            reg [7:0] m [0:3];
            always @(posedge clk) begin
                if (we)
                    m[waddr] <= wdata;
            end
            assign rdata = m[raddr];
        endmodule
    )", "top");
    EXPECT_NE(r.mem("m"), -1);
    sim::Simulator s(*r.netlist);
    s.setInput("we", Bits(1, 1));
    s.setInput("waddr", Bits(2, 2));
    s.setInput("wdata", Bits(8, 0x5a));
    s.setInput("raddr", Bits(2, 2));
    s.step();
    s.setInput("we", Bits(1, 0));
    EXPECT_EQ(s.value(r.signal("rdata")).toUint64(), 0x5au);
}

TEST(Elab, HierarchyAndParameters)
{
    auto r = elab(R"(
        module adder #(parameter W = 4) (
            input [W-1:0] x, input [W-1:0] y, output wire [W-1:0] s);
            assign s = x + y;
        endmodule
        module top (input [7:0] a, input [7:0] b, output wire [7:0] y);
            wire [7:0] partial;
            adder #(.W(8)) u0 (.x(a), .y(b), .s(partial));
            adder #(.W(8)) u1 (.x(partial), .y(8'd1), .s(y));
        endmodule
    )", "top");
    sim::Simulator s(*r.netlist);
    s.setInput("a", Bits(8, 3));
    s.setInput("b", Bits(8, 4));
    EXPECT_EQ(s.value(r.signal("y")).toUint64(), 8u);
    // Hierarchical names are visible.
    EXPECT_EQ(s.value(r.signal("u0.s")).toUint64(), 7u);
}

TEST(Elab, GenerateForUnrolling)
{
    // A 4-stage shift register built with a generate loop.
    auto r = elab(R"(
        module top #(parameter N = 4) (input clk, input d,
                                       output wire q);
            wire [N:0] chain;
            assign chain[0] = d;
            genvar i;
            generate
                for (i = 0; i < N; i = i + 1) begin : stage
                    reg ff;
                    always @(posedge clk) begin
                        ff <= chain[i];
                    end
                    assign chain[i+1] = ff;
                end
            endgenerate
            assign q = chain[N];
        endmodule
    )", "top");
    // Generated names exist.
    EXPECT_NE(r.signalMap.find("stage[0].ff"), r.signalMap.end());
    EXPECT_NE(r.signalMap.find("stage[3].ff"), r.signalMap.end());
    sim::Simulator s(*r.netlist);
    s.setInput("d", Bits(1, 1));
    s.step();
    s.setInput("d", Bits(1, 0));
    EXPECT_EQ(s.value(r.signal("q")).toUint64(), 0u);
    s.run(3);
    EXPECT_EQ(s.value(r.signal("q")).toUint64(), 1u);
    s.step();
    EXPECT_EQ(s.value(r.signal("q")).toUint64(), 0u);
}

TEST(Elab, GenerateChainBitSelect)
{
    EXPECT_THROW(elab(R"(
        module top (input a, output wire y);
            wire [3:0] v;
            assign y = v[5]; // out of range
            assign v = 4'd0;
        endmodule
    )", "top"), FatalError);
}

TEST(Elab, DynamicBitSelect)
{
    auto r = elab(R"(
        module top (input [7:0] a, input [2:0] idx, output wire y);
            assign y = a[idx];
        endmodule
    )", "top");
    sim::Simulator s(*r.netlist);
    s.setInput("a", Bits(8, 0x40));
    s.setInput("idx", Bits(3, 6));
    EXPECT_EQ(s.value(r.signal("y")).toUint64(), 1u);
    s.setInput("idx", Bits(3, 5));
    EXPECT_EQ(s.value(r.signal("y")).toUint64(), 0u);
}

TEST(Elab, TopParameterOverride)
{
    auto r = elab(R"(
        module top #(parameter W = 4) (input [W-1:0] a,
                                       output wire [W-1:0] y);
            assign y = a + {{(W-1){1'b0}}, 1'b1};
        endmodule
    )", "top", {{"W", 8}});
    sim::Simulator s(*r.netlist);
    s.setInput("a", Bits(8, 0x7f));
    EXPECT_EQ(s.value(r.signal("y")).toUint64(), 0x80u);
}

TEST(Elab, CombCycleIsFatal)
{
    EXPECT_THROW(elab(R"(
        module top (input a, output wire y);
            wire p;
            wire q;
            assign p = q | a;
            assign q = p & a;
            assign y = q;
        endmodule
    )", "top"), FatalError);
}
