/**
 * @file
 * Tests for the litmus module (format round-trip, assembly emission,
 * cycle-based generation, 56-test suite) and the SC reference model.
 * Property sweep: every generated test's interesting outcome must be
 * SC-forbidden (the critical cycle guarantees it), and every test must
 * round-trip through the text format.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "isa/isa.hh"
#include "litmus/litmus.hh"
#include "mcm/sc_ref.hh"

using namespace r2u;
using litmus::generateFromCycle;
using litmus::standardSuite;
using LTest = litmus::Test;

TEST(Litmus, ParsePrintRoundTrip)
{
    LTest t = LTest::parse(R"(name mp
thread 0
w x 1
w y 1
thread 1
r y 2
r x 3
interesting 1:x2=1 & 1:x3=0)");
    EXPECT_EQ(t.name, "mp");
    ASSERT_EQ(t.threads.size(), 2u);
    EXPECT_TRUE(t.threads[0].ops[0].isWrite);
    EXPECT_EQ(t.threads[1].ops[0].reg, 2);
    ASSERT_EQ(t.interesting.regs.size(), 2u);
    EXPECT_EQ(t.interesting.regs[1].value, 0);

    LTest t2 = LTest::parse(t.print());
    EXPECT_EQ(t2.print(), t.print());
}

TEST(Litmus, ParseErrors)
{
    EXPECT_THROW(LTest::parse("thread 0\nw x 1"), FatalError); // no name
    EXPECT_THROW(LTest::parse("name t\nthread 1\nw x 1"), FatalError);
    EXPECT_THROW(LTest::parse("name t\nthread 0\nbogus"), FatalError);
}

TEST(Litmus, LocationsAndAssembly)
{
    LTest t = LTest::parse(R"(name mp
thread 0
w x 1
w y 1
thread 1
r y 2
r x 3
interesting 1:x2=1 & 1:x3=0)");
    auto locs = t.locations();
    ASSERT_EQ(locs.size(), 2u);
    EXPECT_EQ(locs[0], "x");
    EXPECT_EQ(locs[1], "y");

    // Thread 1 reads y (addr 4) into x2 then x (addr 0) into x3.
    auto words = isa::assemble(t.threadAssembly(1));
    ASSERT_EQ(words.size(), 2u);
    isa::Inst i0 = isa::decode(words[0]);
    EXPECT_EQ(i0.op, isa::Op::Lw);
    EXPECT_EQ(i0.rd, 2);
    EXPECT_EQ(i0.imm, 4);
    isa::Inst i1 = isa::decode(words[1]);
    EXPECT_EQ(i1.rd, 3);
    EXPECT_EQ(i1.imm, 0);
}

TEST(Litmus, GenerateMpFromCycle)
{
    LTest t = generateFromCycle("gen_mp", "Rfe PodRR Fre PodWW");
    EXPECT_EQ(t.threads.size(), 2u);
    // One thread is two writes, the other two reads.
    int writers = 0, readers = 0;
    for (const auto &th : t.threads) {
        bool all_w = true, all_r = true;
        for (const auto &a : th.ops) {
            all_w &= a.isWrite;
            all_r &= !a.isWrite;
        }
        writers += all_w;
        readers += all_r;
    }
    EXPECT_EQ(writers, 1);
    EXPECT_EQ(readers, 1);
    EXPECT_FALSE(mcm::scAllows(t, t.interesting));
}

TEST(Litmus, GenerateSbFromCycle)
{
    LTest t = generateFromCycle("gen_sb", "Fre PodWR Fre PodWR");
    EXPECT_EQ(t.threads.size(), 2u);
    for (const auto &th : t.threads) {
        ASSERT_EQ(th.ops.size(), 2u);
        EXPECT_TRUE(th.ops[0].isWrite);
        EXPECT_FALSE(th.ops[1].isWrite);
    }
    EXPECT_FALSE(mcm::scAllows(t, t.interesting));
}

TEST(Litmus, GeneratorRejectsBadCycles)
{
    EXPECT_THROW(generateFromCycle("t", "Rfe Rfe"), FatalError);
    EXPECT_THROW(generateFromCycle("t", "PodWW PodWW"), FatalError);
    EXPECT_THROW(generateFromCycle("t", "Nonsense"), FatalError);
}

TEST(Litmus, SuiteHas56UniqueTests)
{
    auto suite = standardSuite();
    ASSERT_EQ(suite.size(), 56u);
    std::set<std::string> names;
    for (const auto &t : suite) {
        EXPECT_TRUE(names.insert(t.name).second) << t.name;
        EXPECT_FALSE(t.threads.empty());
        EXPECT_FALSE(t.interesting.empty());
    }
}

TEST(ScRef, MpOutcomes)
{
    LTest t = standardSuite()[0]; // mp
    auto outcomes = mcm::enumerateSC(t);
    // SC allows exactly 3 of the 4 read-value combinations.
    EXPECT_EQ(outcomes.size(), 3u);
    EXPECT_FALSE(mcm::scAllows(t, t.interesting));
    // The (1,1) outcome is allowed.
    litmus::Condition ok;
    ok.regs = {{1, 2, 1}, {1, 3, 1}};
    EXPECT_TRUE(mcm::scAllows(t, ok));
}

TEST(ScRef, CoherenceFinalValue)
{
    LTest t = LTest::parse(R"(name coww
thread 0
w x 1
w x 2
interesting x=1)");
    // Same-thread writes: final value must be 2.
    EXPECT_FALSE(mcm::scAllows(t, t.interesting));
    litmus::Condition ok;
    ok.mem = {{"x", 2}};
    EXPECT_TRUE(mcm::scAllows(t, ok));
}

TEST(ScRef, OutcomeSatisfiesDefaultsToInitialValues)
{
    mcm::Outcome o;
    litmus::Condition c;
    c.mem = {{"z", 0}};
    EXPECT_TRUE(o.satisfies(c));
    c.mem = {{"z", 1}};
    EXPECT_FALSE(o.satisfies(c));
}

/** Every suite test's interesting outcome must be SC-forbidden. */
class SuiteScTest : public ::testing::TestWithParam<int>
{
};

TEST_P(SuiteScTest, InterestingOutcomeIsForbidden)
{
    auto suite = standardSuite();
    const LTest &t = suite[static_cast<size_t>(GetParam())];
    EXPECT_FALSE(mcm::scAllows(t, t.interesting))
        << t.name << "\n" << t.print();
    // And SC allows at least one outcome (sanity).
    EXPECT_FALSE(mcm::enumerateSC(t).empty());
}

INSTANTIATE_TEST_SUITE_P(All56, SuiteScTest, ::testing::Range(0, 56));
