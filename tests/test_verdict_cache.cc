/**
 * @file
 * Tests for the content-addressed verdict cache (ISSUE 8): durable
 * round-trips across reopens, duplicate-append dedup, lenient
 * recovery (torn tails and corrupt records are dropped, a foreign or
 * damaged header starts fresh instead of aborting), stale-entry
 * diagnostics, and — through a real bmc::Engine over a synthetic
 * multi-cone netlist — the acceptance property that editing one cone
 * re-solves only that cone's queries while every other verdict
 * replays from cache.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <unordered_map>

#include "bmc/engine.hh"
#include "bmc/journal.hh"
#include "common/bits.hh"
#include "netlist/hash.hh"
#include "netlist/netlist.hh"

using namespace r2u;
namespace fs = std::filesystem;

namespace
{

std::string
tempCacheDir(const std::string &name)
{
    fs::path p = fs::path(::testing::TempDir()) / name;
    fs::remove_all(p);
    return p.string();
}

bmc::Journal::Record
makeRecord(uint64_t key, const std::string &name,
           bmc::Verdict verdict, unsigned bound)
{
    bmc::Journal::Record rec;
    rec.key = key;
    rec.name = name;
    rec.verdict = verdict;
    rec.source = bmc::VerdictSource::Solve;
    rec.validated = true;
    rec.bound = bound;
    rec.retries = 1;
    rec.seconds = 0.25;
    rec.conflicts = 17;
    rec.propagations = 1717;
    return rec;
}

void
flipByte(const std::string &path, uint64_t offset)
{
    std::fstream f(path,
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open()) << path;
    f.seekg(static_cast<std::streamoff>(offset));
    char c = 0;
    f.read(&c, 1);
    c = static_cast<char>(c ^ 0x5a);
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(&c, 1);
}

} // namespace

TEST(VerdictCache, RoundTripPersistsAcrossReopens)
{
    std::string dir = tempCacheDir("vc_roundtrip");
    std::string file;
    {
        bmc::VerdictCache c;
        c.open(dir); // creates the directory
        ASSERT_TRUE(c.isOpen());
        file = c.filePath();
        EXPECT_EQ(c.numLoaded(), 0u);
        EXPECT_TRUE(c.append(
            makeRecord(0x111, "a", bmc::Verdict::Proven, 3)));
        EXPECT_TRUE(c.append(
            makeRecord(0x222, "b", bmc::Verdict::Refuted, 3)));
        EXPECT_EQ(c.numAppended(), 2u);
    }
    bmc::VerdictCache c;
    c.open(dir);
    EXPECT_EQ(c.numLoaded(), 2u);
    ASSERT_NE(c.lookup(0x111), nullptr);
    ASSERT_NE(c.lookup(0x222), nullptr);
    EXPECT_EQ(c.lookup(0x333), nullptr);

    const bmc::Journal::Record &a = *c.lookup(0x111);
    EXPECT_EQ(a.name, "a");
    EXPECT_EQ(a.verdict, bmc::Verdict::Proven);
    EXPECT_TRUE(a.validated);
    EXPECT_EQ(a.bound, 3u);
    EXPECT_EQ(a.retries, 1u);
    EXPECT_DOUBLE_EQ(a.seconds, 0.25);
    EXPECT_EQ(a.conflicts, 17u);
    EXPECT_EQ(a.propagations, 1717u);
    EXPECT_EQ(c.lookup(0x222)->verdict, bmc::Verdict::Refuted);
    (void)file;
}

// Appending a key the cache already holds is a durable no-op: the
// file must not grow (shared caches would otherwise bloat on every
// warm run) and the entry count must not change.
TEST(VerdictCache, DuplicateAppendIsDeduplicated)
{
    std::string dir = tempCacheDir("vc_dedup");
    std::string file;
    uint64_t size_after_one = 0;
    {
        bmc::VerdictCache c;
        c.open(dir);
        ASSERT_TRUE(c.append(
            makeRecord(0x111, "a", bmc::Verdict::Proven, 3)));
        file = c.filePath();
        size_after_one = fs::file_size(file);

        EXPECT_TRUE(c.append(
            makeRecord(0x111, "a", bmc::Verdict::Proven, 3)));
        EXPECT_EQ(fs::file_size(file), size_after_one);
        EXPECT_EQ(c.numAppended(), 1u);
    } // close: the single-writer flock must be released for c2

    bmc::VerdictCache c2;
    c2.open(dir);
    EXPECT_EQ(c2.numLoaded(), 1u);
    // Dedup also applies to entries loaded from disk, not only to
    // this process's own appends.
    EXPECT_TRUE(c2.append(
        makeRecord(0x111, "a", bmc::Verdict::Proven, 3)));
    EXPECT_EQ(c2.numAppended(), 0u);
    EXPECT_EQ(fs::file_size(c2.filePath()), size_after_one);
}

// A run killed mid-append leaves a torn record at the tail; it must
// be dropped and the file repaired so later appends land cleanly.
TEST(VerdictCache, TornTailIsDroppedNotTrusted)
{
    std::string dir = tempCacheDir("vc_torn");
    std::string file;
    uint64_t size_after_two = 0;
    {
        bmc::VerdictCache c;
        c.open(dir);
        file = c.filePath();
        c.append(makeRecord(0x111, "a", bmc::Verdict::Proven, 3));
        c.append(makeRecord(0x222, "b", bmc::Verdict::Refuted, 3));
        size_after_two = fs::file_size(file);
        c.append(makeRecord(0x333, "c", bmc::Verdict::Proven, 3));
    }
    fs::resize_file(file, fs::file_size(file) - 5);

    bmc::VerdictCache c;
    c.open(dir);
    EXPECT_EQ(c.numLoaded(), 2u);
    EXPECT_NE(c.lookup(0x111), nullptr);
    EXPECT_NE(c.lookup(0x222), nullptr);
    EXPECT_EQ(c.lookup(0x333), nullptr);
    EXPECT_EQ(fs::file_size(file), size_after_two);
    EXPECT_TRUE(c.append(
        makeRecord(0x444, "d", bmc::Verdict::Proven, 3)));

    bmc::VerdictCache c2;
    c2.open(dir);
    EXPECT_EQ(c2.numLoaded(), 3u);
}

// A corrupt byte inside a record fails its checksum: that record and
// everything after it are dropped, never replayed as verdicts.
TEST(VerdictCache, CorruptRecordIsSkippedNotTrusted)
{
    std::string dir = tempCacheDir("vc_corrupt");
    std::string file;
    uint64_t size_after_one = 0;
    {
        bmc::VerdictCache c;
        c.open(dir);
        file = c.filePath();
        c.append(makeRecord(0x111, "a", bmc::Verdict::Proven, 3));
        size_after_one = fs::file_size(file);
        c.append(makeRecord(0x222, "b", bmc::Verdict::Refuted, 3));
        c.append(makeRecord(0x333, "c", bmc::Verdict::Proven, 3));
    }
    flipByte(file, size_after_one + 14);

    bmc::VerdictCache c;
    c.open(dir);
    EXPECT_EQ(c.numLoaded(), 1u);
    EXPECT_NE(c.lookup(0x111), nullptr);
    EXPECT_EQ(c.lookup(0x222), nullptr);
    EXPECT_EQ(c.lookup(0x333), nullptr);
    EXPECT_EQ(fs::file_size(file), size_after_one);
}

// Unlike the run journal (whose config mismatch is fatal — resuming
// the wrong journal means the user pointed --resume at the wrong
// file), a shared cache with an unrecognized header is just not a
// cache we can use: warn, start fresh, keep going.
TEST(VerdictCache, DamagedHeaderStartsFreshNotFatal)
{
    std::string dir = tempCacheDir("vc_header");
    std::string file;
    {
        bmc::VerdictCache c;
        c.open(dir);
        file = c.filePath();
        c.append(makeRecord(0x111, "a", bmc::Verdict::Proven, 3));
    }
    flipByte(file, 0); // damage the magic

    bmc::VerdictCache c;
    EXPECT_NO_THROW(c.open(dir));
    ASSERT_TRUE(c.isOpen());
    EXPECT_EQ(c.numLoaded(), 0u);
    EXPECT_EQ(c.lookup(0x111), nullptr);
    // The fresh cache is fully usable.
    EXPECT_TRUE(c.append(
        makeRecord(0x222, "b", bmc::Verdict::Refuted, 3)));

    bmc::VerdictCache c2;
    c2.open(dir);
    EXPECT_EQ(c2.numLoaded(), 1u);
    EXPECT_NE(c2.lookup(0x222), nullptr);
}

// hasStaleEntry distinguishes "never solved" from "solved for content
// that has since changed" — the invalidation counter in the engine
// hangs off this.
TEST(VerdictCache, StaleEntryDetection)
{
    std::string dir = tempCacheDir("vc_stale");
    bmc::VerdictCache c;
    c.open(dir);
    c.append(makeRecord(0x111, "a", bmc::Verdict::Proven, 3));

    // Same name+bound, different content hash: stale.
    EXPECT_TRUE(c.hasStaleEntry("a", 3, 0x999));
    // Exact key present: not stale.
    EXPECT_FALSE(c.hasStaleEntry("a", 3, 0x111));
    // Different name or bound: a plain miss, not an invalidation.
    EXPECT_FALSE(c.hasStaleEntry("b", 3, 0x999));
    EXPECT_FALSE(c.hasStaleEntry("a", 4, 0x999));
}

namespace
{

/**
 * Four independent cones: r_i = Dff(in_i <op_i> k_i). Every variant
 * keeps identical cell/register/input counts; only one cone's gate
 * kind changes. kEdited names the cone the "RTL edit" rewires.
 */
constexpr int kCones = 4;
constexpr int kEdited = 2;

struct ConeDesign
{
    nl::Netlist n;
    nl::CellId regs[kCones];
    uint64_t inits[kCones];

    explicit ConeDesign(nl::CellKind edited_kind)
    {
        nl::CellId one = n.addConst(Bits(1, 1), "one");
        for (int i = 0; i < kCones; i++) {
            nl::CellKind kind = i == kEdited ? edited_kind
                                             : nl::CellKind::And;
            nl::CellId in =
                n.addInput("in" + std::to_string(i), 8);
            nl::CellId k =
                n.addConst(Bits(8, 0x11u * i + 3), "k" + std::to_string(i));
            nl::CellId g =
                n.addBinary(kind, in, k, "g" + std::to_string(i));
            inits[i] = 5 + i;
            regs[i] = n.addDff("r" + std::to_string(i), g, one,
                               Bits(8, inits[i]));
        }
        n.validate();
    }

    uint64_t coneHashOf(int i) const
    {
        nl::CoiSeeds seeds;
        seeds.cells.push_back(regs[i]);
        return nl::coneHash(n, seeds);
    }
};

/**
 * Two queries per cone, content-hashed over exactly that cone's
 * slice: "r_i holds its power-on value at frame 0" (Proven) and
 * "r_i can reach the value k_i at frame 1" (Refuted — reachable
 * through both And and Or, so the edit changes the cone, not the
 * verdict). Returns the number of queries enqueued.
 */
size_t
enqueueConeQueries(bmc::Engine &engine, const ConeDesign &d)
{
    for (int i = 0; i < kCones; i++) {
        uint64_t cone = d.coneHashOf(i);
        auto hashed = [cone](const std::string &name) {
            nl::Fnv64 h;
            h.u64(cone);
            h.str(name);
            return h.value() == 0 ? 1 : h.value();
        };

        bmc::Query proven;
        proven.name = "init_holds_" + std::to_string(i);
        proven.contentHash = hashed(proven.name);
        nl::CellId reg = d.regs[i];
        uint64_t init = d.inits[i];
        proven.prop = [reg, init](bmc::PropCtx &ctx) {
            auto &cnf = ctx.cnf();
            return ~cnf.mkEqW(ctx.unroller().wire(0, reg),
                              cnf.constWord(Bits(8, init)));
        };
        engine.enqueue(std::move(proven));

        bmc::Query refuted;
        refuted.name = "reach_k_" + std::to_string(i);
        refuted.contentHash = hashed(refuted.name);
        uint64_t target = 0x11u * i + 3;
        refuted.prop = [reg, target](bmc::PropCtx &ctx) {
            auto &cnf = ctx.cnf();
            return cnf.mkEqW(ctx.unroller().wire(1, reg),
                             cnf.constWord(Bits(8, target)));
        };
        engine.enqueue(std::move(refuted));
    }
    return 2 * kCones;
}

void
expectConeVerdicts(const std::vector<bmc::CheckResult> &res)
{
    ASSERT_EQ(res.size(), static_cast<size_t>(2 * kCones));
    for (size_t i = 0; i < res.size(); i++)
        EXPECT_EQ(res[i].verdict, i % 2 == 0 ? bmc::Verdict::Proven
                                             : bmc::Verdict::Refuted)
            << "query " << i;
}

} // namespace

// The acceptance scenario of ISSUE 8 at engine level: cold run fills
// the cache, warm run answers everything from it, and a one-cone edit
// at constant cell counts re-solves exactly that cone's queries.
TEST(VerdictCache, EngineReplayAndPartialInvalidation)
{
    std::string dir = tempCacheDir("vc_engine");
    std::unordered_map<std::string, nl::CellId> empty_map;
    const unsigned kFrames = 2;
    const size_t kQueries = 2 * kCones;

    ConeDesign base(nl::CellKind::And);

    // Cold run: every query misses, solves, and is appended.
    {
        bmc::VerdictCache cache;
        cache.open(dir);
        bmc::EngineOptions opts;
        opts.jobs = 1;
        opts.cache = &cache;
        bmc::Engine engine(base.n, empty_map, {}, kFrames, opts);
        enqueueConeQueries(engine, base);
        auto res = engine.drain();
        expectConeVerdicts(res);
        for (size_t i = 0; i < res.size(); i++) {
            EXPECT_FALSE(res[i].fromCache) << "query " << i;
            EXPECT_TRUE(res[i].cached) << "query " << i;
        }
        EXPECT_EQ(engine.stats().cacheMisses, kQueries);
        EXPECT_EQ(engine.stats().cacheHits, 0u);
        EXPECT_EQ(engine.stats().cacheInvalidations, 0u);
        EXPECT_EQ(engine.stats().cacheAppends, kQueries);
    }

    // Warm run (fresh engine + reopened cache): all hits, no appends,
    // identical verdicts.
    {
        bmc::VerdictCache cache;
        cache.open(dir);
        EXPECT_EQ(cache.numLoaded(), kQueries);
        bmc::EngineOptions opts;
        opts.jobs = 2;
        opts.cache = &cache;
        bmc::Engine engine(base.n, empty_map, {}, kFrames, opts);
        enqueueConeQueries(engine, base);
        auto res = engine.drain();
        expectConeVerdicts(res);
        for (size_t i = 0; i < res.size(); i++) {
            EXPECT_TRUE(res[i].fromCache) << "query " << i;
            // The replay keeps the original verdict provenance.
            EXPECT_EQ(res[i].source, bmc::VerdictSource::Solve)
                << "query " << i;
        }
        EXPECT_EQ(engine.stats().cacheHits, kQueries);
        EXPECT_EQ(engine.stats().cacheMisses, 0u);
        EXPECT_EQ(engine.stats().cacheAppends, 0u);
        // Nothing solved: no unroll context was ever built.
        EXPECT_EQ(engine.stats().contexts, 0u);
    }

    // Edit one cone (same element counts). Only its two queries miss
    // (counted as invalidations — the cache knows their old content),
    // re-solve, and are appended under their new keys.
    {
        ConeDesign edited(nl::CellKind::Or);
        for (int i = 0; i < kCones; i++) {
            if (i == kEdited)
                EXPECT_NE(base.coneHashOf(i), edited.coneHashOf(i));
            else
                EXPECT_EQ(base.coneHashOf(i), edited.coneHashOf(i));
        }

        bmc::VerdictCache cache;
        cache.open(dir);
        bmc::EngineOptions opts;
        opts.jobs = 1;
        opts.cache = &cache;
        bmc::Engine engine(edited.n, empty_map, {}, kFrames, opts);
        enqueueConeQueries(engine, edited);
        auto res = engine.drain();
        expectConeVerdicts(res);
        for (size_t i = 0; i < res.size(); i++) {
            bool edited_cone =
                static_cast<int>(i / 2) == kEdited;
            EXPECT_EQ(res[i].fromCache, !edited_cone) << "query " << i;
        }
        EXPECT_EQ(engine.stats().cacheHits, kQueries - 2);
        EXPECT_EQ(engine.stats().cacheMisses, 2u);
        EXPECT_EQ(engine.stats().cacheInvalidations, 2u);
        EXPECT_EQ(engine.stats().cacheAppends, 2u);
        // Sequential mode builds one fresh unroll per solved query —
        // exactly the edited cone's two.
        EXPECT_EQ(engine.stats().contexts, 2u);
    }
}

// Unknown verdicts must never be cached: an aborted/budgeted query
// has no answer worth replaying, and caching it would freeze the
// give-up forever.
TEST(VerdictCache, UnknownVerdictsAreNotCached)
{
    std::string dir = tempCacheDir("vc_unknown");
    std::unordered_map<std::string, nl::CellId> empty_map;
    ConeDesign d(nl::CellKind::And);

    bmc::VerdictCache cache;
    cache.open(dir);
    bmc::EngineOptions opts;
    opts.jobs = 1;
    opts.conflictBudget = 0; // every solve gives up immediately
    opts.cache = &cache;
    bmc::Engine engine(d.n, empty_map, {}, 2, opts);

    bmc::Query q;
    q.name = "budgeted";
    q.contentHash = 0xfeedbeef;
    nl::CellId reg = d.regs[0];
    q.prop = [reg](bmc::PropCtx &ctx) {
        auto &cnf = ctx.cnf();
        return cnf.mkEqW(ctx.unroller().wire(1, reg),
                         cnf.constWord(Bits(8, 0)));
    };
    engine.enqueue(std::move(q));
    auto res = engine.drain();
    ASSERT_EQ(res.size(), 1u);
    EXPECT_EQ(res[0].verdict, bmc::Verdict::Unknown);
    EXPECT_FALSE(res[0].cached);
    EXPECT_EQ(engine.stats().cacheAppends, 0u);
    EXPECT_EQ(engine.stats().cacheMisses, 1u);

    bmc::VerdictCache c2;
    c2.open(dir);
    EXPECT_EQ(c2.numLoaded(), 0u);
}

// A query without a content hash (contentHash == 0) opts out of the
// cache entirely — it is neither looked up nor stored, and the
// hit/miss accounting ignores it.
TEST(VerdictCache, UnhashedQueriesBypassTheCache)
{
    std::string dir = tempCacheDir("vc_unhashed");
    std::unordered_map<std::string, nl::CellId> empty_map;
    ConeDesign d(nl::CellKind::And);

    for (int round = 0; round < 2; round++) {
        bmc::VerdictCache cache;
        cache.open(dir);
        bmc::EngineOptions opts;
        opts.jobs = 1;
        opts.cache = &cache;
        bmc::Engine engine(d.n, empty_map, {}, 2, opts);

        bmc::Query q;
        q.name = "unhashed";
        q.contentHash = 0;
        nl::CellId reg = d.regs[0];
        uint64_t init = d.inits[0];
        q.prop = [reg, init](bmc::PropCtx &ctx) {
            auto &cnf = ctx.cnf();
            return ~cnf.mkEqW(ctx.unroller().wire(0, reg),
                              cnf.constWord(Bits(8, init)));
        };
        engine.enqueue(std::move(q));
        auto res = engine.drain();
        ASSERT_EQ(res.size(), 1u);
        EXPECT_EQ(res[0].verdict, bmc::Verdict::Proven);
        EXPECT_FALSE(res[0].fromCache);
        EXPECT_FALSE(res[0].cached);
        EXPECT_EQ(engine.stats().cacheHits, 0u);
        EXPECT_EQ(engine.stats().cacheMisses, 0u);
        EXPECT_EQ(engine.stats().cacheAppends, 0u);
        EXPECT_EQ(cache.numLoaded(), 0u);
    }
}

// Single-writer flock (ISSUE 10 satellite): the second live opener of
// a shared --cache DIR degrades to read-only — lookups still served,
// appends silently refused — instead of interleaving frames with the
// writer. flock(2) is per open file description, so two opens in one
// process exercise the real conflict.
TEST(VerdictCache, SecondOpenerFallsBackToReadOnly)
{
    std::string dir = tempCacheDir("vc_flock");
    bmc::VerdictCache writer;
    writer.open(dir);
    ASSERT_TRUE(writer.isOpen());
    EXPECT_FALSE(writer.readOnly());
    ASSERT_TRUE(
        writer.append(makeRecord(0x111, "a", bmc::Verdict::Proven, 3)));

    bmc::VerdictCache reader;
    reader.open(dir);
    EXPECT_TRUE(reader.isOpen());
    EXPECT_TRUE(reader.readOnly());
    // Cached verdicts are served...
    ASSERT_NE(reader.lookup(0x111), nullptr);
    EXPECT_EQ(reader.lookup(0x111)->name, "a");
    // ...but new ones are not stored, and the store stays untouched.
    uint64_t size = fs::file_size(writer.filePath());
    EXPECT_FALSE(
        reader.append(makeRecord(0x222, "b", bmc::Verdict::Refuted, 3)));
    EXPECT_EQ(reader.numAppended(), 0u);
    EXPECT_EQ(fs::file_size(writer.filePath()), size);

    // The writer is unaffected by the reader's existence.
    EXPECT_TRUE(
        writer.append(makeRecord(0x333, "c", bmc::Verdict::Proven, 3)));
}

TEST(VerdictCache, WriteLockReleasedOnClose)
{
    std::string dir = tempCacheDir("vc_flock2");
    {
        bmc::VerdictCache writer;
        writer.open(dir);
        ASSERT_TRUE(writer.append(
            makeRecord(0x111, "a", bmc::Verdict::Proven, 3)));
    }
    bmc::VerdictCache next;
    next.open(dir);
    EXPECT_FALSE(next.readOnly());
    EXPECT_EQ(next.numLoaded(), 1u);
    EXPECT_TRUE(
        next.append(makeRecord(0x222, "b", bmc::Verdict::Refuted, 3)));
}

// A torn append (chaos "torn", or a full disk) must roll the store
// back to the last durable frame and disable caching for the run —
// the file stays loadable and every durable verdict survives.
TEST(VerdictCache, TornAppendRollsBackAndDisables)
{
    std::string dir = tempCacheDir("vc_torn_append");
    std::string file;
    {
        bmc::VerdictCache c;
        c.open(dir);
        file = c.filePath();
        ASSERT_TRUE(c.append(
            makeRecord(0x111, "a", bmc::Verdict::Proven, 3)));
        uint64_t good = fs::file_size(file);

        c.setWriteFault([](size_t n) {
            return static_cast<ssize_t>(n / 2);
        });
        EXPECT_FALSE(c.append(
            makeRecord(0x222, "b", bmc::Verdict::Refuted, 3)));
        EXPECT_TRUE(c.disabled());
        EXPECT_EQ(fs::file_size(file), good);

        c.setWriteFault(nullptr);
        EXPECT_FALSE(c.append(
            makeRecord(0x333, "c", bmc::Verdict::Proven, 3)));
        EXPECT_EQ(c.numAppended(), 1u);
        // Lookups keep working from memory after the store degrades.
        EXPECT_NE(c.lookup(0x111), nullptr);
    }
    bmc::VerdictCache c;
    c.open(dir);
    EXPECT_EQ(c.numLoaded(), 1u);
    EXPECT_NE(c.lookup(0x111), nullptr);
    EXPECT_EQ(c.lookup(0x222), nullptr);
}
