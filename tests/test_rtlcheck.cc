/**
 * @file
 * Tests for the RTLCheck-style baseline: the fixed multi-V-scale must
 * prove the forbidden outcomes of the classic tests unreachable (with
 * completion), an always-false outcome must be cheap to prove, and a
 * deliberately reachable outcome must be refuted with a trace.
 */

#include <gtest/gtest.h>

#include "rtlcheck/rtlcheck.hh"

using namespace r2u;
using namespace r2u::rtlcheck;

namespace
{

vscale::Config
cfg()
{
    vscale::Config c = vscale::Config::formal();
    c.imemWords = 16;
    return c;
}

const vlog::ElabResult &
design()
{
    static vlog::ElabResult d = vscale::elaborateVscale(cfg());
    return d;
}

} // namespace

TEST(RtlCheck, MpForbiddenOutcomeProven)
{
    litmus::Test mp = litmus::standardSuite()[0];
    TestVerdict v = verifyTest(design(), cfg(), mp);
    EXPECT_EQ(v.verdict, bmc::Verdict::Proven) << v.trace;
    EXPECT_TRUE(v.complete);
    EXPECT_GT(v.bound, 10u);
}

TEST(RtlCheck, SbForbiddenOutcomeProven)
{
    litmus::Test sb = litmus::standardSuite()[1];
    TestVerdict v = verifyTest(design(), cfg(), sb);
    EXPECT_EQ(v.verdict, bmc::Verdict::Proven);
    EXPECT_TRUE(v.complete);
}

TEST(RtlCheck, ReachableOutcomeRefutedWithTrace)
{
    // The SC-allowed MP outcome where both reads beat the writes is
    // reachable within the modeled start skews.
    litmus::Test mp = litmus::standardSuite()[0];
    mp.interesting.regs = {{1, 2, 0}, {1, 3, 0}};
    TestVerdict v = verifyTest(design(), cfg(), mp);
    EXPECT_EQ(v.verdict, bmc::Verdict::Refuted);
    EXPECT_FALSE(v.trace.empty());
}

TEST(RtlCheck, ConflictBudgetMarksIncomplete)
{
    litmus::Test mp = litmus::standardSuite()[0];
    Options opts;
    opts.conflictBudget = 0;
    TestVerdict v = verifyTest(design(), cfg(), mp, opts);
    // With a zero budget the proof cannot finish either way.
    EXPECT_EQ(v.verdict, bmc::Verdict::Unknown);
    EXPECT_FALSE(v.complete);
}

TEST(RtlCheck, BuggyDesignStillPassesMp)
{
    // The §6.1 bug (invalid stores reach memory) does not change the
    // behavior of well-formed litmus programs: MP still verifies.
    vscale::Config c = cfg();
    c.buggy = true;
    auto d = vscale::elaborateVscale(c);
    litmus::Test mp = litmus::standardSuite()[0];
    TestVerdict v = verifyTest(d, c, mp);
    EXPECT_EQ(v.verdict, bmc::Verdict::Proven)
        << "the bug is invisible to valid-instruction litmus tests — "
           "exactly why prior litmus-based flows missed it (paper §6.1)";
}
