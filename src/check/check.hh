/**
 * @file
 * Litmus-test MCM verification on a µspec model (the COATCheck role
 * in the paper's flow, §5.2).
 *
 * For a litmus test, checkTest() enumerates every candidate execution
 * (all rf assignments and per-location coherence orders), asks the
 * µhb solver whether each is possible (acyclic), collects the set of
 * observable outcomes, and compares it against the operational SC
 * reference: the test passes iff every observable outcome is
 * SC-allowed. The paper's headline check — the forbidden outcome is
 * unobservable — is the interestingObservable / interestingScAllowed
 * pair.
 *
 * Candidate executions live in a lazily-decoded ExecutionSpace (a
 * mixed-radix index over rf choices and per-address coherence
 * permutations), which is what lets the campaign engine
 * (check/campaign.hh) shard them across worker threads and prune
 * whole outcome classes without materializing the product up front.
 */

#ifndef R2U_CHECK_CHECK_HH
#define R2U_CHECK_CHECK_HH

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "litmus/litmus.hh"
#include "mcm/sc_ref.hh"
#include "uhb/uhb.hh"
#include "uspec/uspec.hh"

namespace r2u::check
{

struct Options
{
    /** Collect a DOT rendering of a cyclic graph witnessing that the
     *  interesting outcome is forbidden (Fig. 1b). Disables pruning
     *  (a pruned run may skip every cyclic witness candidate). */
    bool collectDot = false;
    /** Worker threads solving candidate executions (1 = fully
     *  sequential, 0 = hardware concurrency). Verdicts are identical
     *  at any job count. */
    unsigned jobs = 1;
    /** Outcome-level pruning: once some execution proves an outcome
     *  observable, skip the remaining executions with that same
     *  outcome (they cannot change the observable set). Forced off
     *  when collectDot is set. */
    bool prune = true;
    /** Stop exploring a test at its first observable non-SC outcome
     *  (the verdict is then pass = false; exploration counts become
     *  timing-dependent, verdicts do not). */
    bool failFast = false;
};

struct TestResult
{
    std::string name;
    bool pass = false; ///< observable outcomes ⊆ SC-allowed outcomes
    bool tight = false; ///< observable outcomes == SC-allowed outcomes
    bool interestingObservable = false;
    bool interestingScAllowed = false;
    double ms = 0.0; ///< aggregate solve time (≈ wall time at jobs=1)
    int executionsTotal = 0;    ///< candidate executions in the space
    int executionsExplored = 0; ///< µhb solver invocations
    int executionsPruned = 0;   ///< candidates skipped by pruning
    long long branches = 0;     ///< EitherOrdering branches explored
    int observableOutcomes = 0;
    int scAllowedOutcomes = 0;
    std::vector<std::string> violations; ///< non-SC observable outcomes
    /** Sorted rendering of every observable outcome (for report and
     *  identity checks across job counts / pruning modes). */
    std::vector<std::string> outcomes;
    std::string interestingDot; ///< when Options::collectDot

    /**
     * The per-test verdict: every observable outcome is SC-allowed,
     * and the interesting outcome is only observable if SC itself
     * allows it. (An SC-allowed interesting outcome being observable
     * is correct behavior, not a failure.)
     */
    bool ok() const
    {
        return pass && (!interestingObservable || interestingScAllowed);
    }

    std::string summary() const;
};

/** Verify one litmus test against a µspec model. */
TestResult checkTest(const uspec::Model &model, const litmus::Test &test,
                     const Options &options = {});

/** Convert a litmus test into microops (program order per core). */
std::vector<uhb::Microop> microopsOf(const litmus::Test &test);

/** The architectural outcome of one candidate execution. */
mcm::Outcome outcomeOf(const litmus::Test &test,
                       const uhb::Execution &exec);

/**
 * The space of candidate executions of a litmus test: every rf
 * assignment (each read observes the initial value or any same-address
 * write) crossed with every per-address coherence permutation. Rather
 * than materializing the product, each candidate is addressed by a
 * mixed-radix index in [0, size()) and decoded on demand — read
 * digits select the rf source, address digits select the coherence
 * permutation (Lehmer decode of the sorted write list).
 */
class ExecutionSpace
{
  public:
    explicit ExecutionSpace(const litmus::Test &test);

    /** Number of candidate executions. */
    uint64_t size() const { return size_; }

    const std::vector<uhb::Microop> &ops() const { return ops_; }

    /** A fresh execution skeleton for materialize() to write into. */
    uhb::Execution makeScratch() const;

    /**
     * Decode candidate @p k into @p exec, which must come from
     * makeScratch() (or a previous materialize() on this space) —
     * only the rf/value/ws fields are rewritten.
     */
    void materialize(uint64_t k, uhb::Execution &exec) const;

  private:
    std::vector<uhb::Microop> ops_;
    std::vector<int> reads_; ///< read op ids, program order
    /** Per read: candidate rf sources (-1 = init, then write ids). */
    std::vector<std::vector<int>> read_srcs_;
    /** Per address: its write ids, sorted (permutation base). */
    std::vector<std::pair<int, std::vector<int>>> write_groups_;
    uint64_t size_ = 1;
};

/**
 * Enumerate all candidate executions (rf choices x ws permutations)
 * of a test and invoke @p fn on each; used by checkTest and by the
 * benches.
 */
void forEachExecution(
    const litmus::Test &test,
    const std::function<void(const uhb::Execution &)> &fn);

} // namespace r2u::check

#endif // R2U_CHECK_CHECK_HH
