/**
 * @file
 * Litmus-test MCM verification on a µspec model (the COATCheck role
 * in the paper's flow, §5.2).
 *
 * For a litmus test, checkTest() enumerates every candidate execution
 * (all rf assignments and per-location coherence orders), asks the
 * µhb solver whether each is possible (acyclic), collects the set of
 * observable outcomes, and compares it against the operational SC
 * reference: the test passes iff every observable outcome is
 * SC-allowed. The paper's headline check — the forbidden outcome is
 * unobservable — is the interestingObservable / interestingScAllowed
 * pair.
 */

#ifndef R2U_CHECK_CHECK_HH
#define R2U_CHECK_CHECK_HH

#include <functional>
#include <set>
#include <string>
#include <vector>

#include "litmus/litmus.hh"
#include "mcm/sc_ref.hh"
#include "uhb/uhb.hh"
#include "uspec/uspec.hh"

namespace r2u::check
{

struct Options
{
    /** Collect a DOT rendering of a cyclic graph witnessing that the
     *  interesting outcome is forbidden (Fig. 1b). */
    bool collectDot = false;
};

struct TestResult
{
    std::string name;
    bool pass = false; ///< observable outcomes ⊆ SC-allowed outcomes
    bool tight = false; ///< observable outcomes == SC-allowed outcomes
    bool interestingObservable = false;
    bool interestingScAllowed = false;
    double ms = 0.0;
    int executionsExplored = 0;
    int observableOutcomes = 0;
    int scAllowedOutcomes = 0;
    std::vector<std::string> violations; ///< non-SC observable outcomes
    std::string interestingDot; ///< when Options::collectDot

    std::string summary() const;
};

/** Verify one litmus test against a µspec model. */
TestResult checkTest(const uspec::Model &model, const litmus::Test &test,
                     const Options &options = {});

/** Convert a litmus test into microops (program order per core). */
std::vector<uhb::Microop> microopsOf(const litmus::Test &test);

/**
 * Enumerate all candidate executions (rf choices x ws permutations)
 * of a test and invoke @p fn on each; used by checkTest and by the
 * benches.
 */
void forEachExecution(
    const litmus::Test &test,
    const std::function<void(const uhb::Execution &)> &fn);

} // namespace r2u::check

#endif // R2U_CHECK_CHECK_HH
