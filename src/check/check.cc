#include "check/check.hh"

#include <algorithm>
#include <map>

#include "common/logging.hh"
#include "common/strutil.hh"

namespace r2u::check
{

std::string
TestResult::summary() const
{
    return strfmt("%-10s %-4s interesting=%s/%s obs=%d sc=%d "
                  "exec=%d/%d pruned=%d %.3f ms",
                  name.c_str(), ok() ? "PASS" : "FAIL",
                  interestingObservable ? "observable" : "forbidden",
                  interestingScAllowed ? "sc-allowed" : "sc-forbidden",
                  observableOutcomes, scAllowedOutcomes,
                  executionsExplored, executionsTotal,
                  executionsPruned, ms);
}

std::vector<uhb::Microop>
microopsOf(const litmus::Test &test)
{
    std::vector<uhb::Microop> ops;
    auto locs = test.locations();
    auto addr_of = [&](const std::string &loc) {
        for (size_t i = 0; i < locs.size(); i++)
            if (locs[i] == loc)
                return static_cast<int>(4 * i);
        panic("unknown location");
    };
    int id = 0;
    for (size_t t = 0; t < test.threads.size(); t++) {
        int index = 0;
        for (const litmus::Access &a : test.threads[t].ops) {
            uhb::Microop op;
            op.id = id++;
            op.core = static_cast<int>(t);
            op.index = index++;
            op.isRead = !a.isWrite;
            op.isWrite = a.isWrite;
            op.addr = addr_of(a.loc);
            op.value = a.isWrite ? a.value : 0;
            if (a.isWrite)
                op.label = strfmt("C%zu: sw %s=%d", t, a.loc.c_str(),
                                  a.value);
            else
                op.label = strfmt("C%zu: lw x%d,%s", t, a.reg,
                                  a.loc.c_str());
            ops.push_back(op);
        }
    }
    return ops;
}

namespace
{

uint64_t
factorial(size_t n)
{
    uint64_t f = 1;
    for (size_t i = 2; i <= n; i++)
        f *= i;
    return f;
}

} // namespace

ExecutionSpace::ExecutionSpace(const litmus::Test &test)
    : ops_(microopsOf(test))
{
    std::map<int, std::vector<int>> writes;
    for (const uhb::Microop &op : ops_) {
        if (op.isWrite)
            writes[op.addr].push_back(op.id);
        else if (op.isRead)
            reads_.push_back(op.id);
    }
    for (int rid : reads_) {
        std::vector<int> srcs{-1};
        auto it = writes.find(ops_[rid].addr);
        if (it != writes.end())
            srcs.insert(srcs.end(), it->second.begin(),
                        it->second.end());
        size_ *= srcs.size();
        read_srcs_.push_back(std::move(srcs));
    }
    for (auto &[addr, ws] : writes) {
        std::sort(ws.begin(), ws.end());
        size_ *= factorial(ws.size());
        write_groups_.emplace_back(addr, ws);
    }
}

uhb::Execution
ExecutionSpace::makeScratch() const
{
    uhb::Execution exec;
    exec.ops = ops_;
    exec.rf.assign(ops_.size(), -2);
    for (const auto &[addr, ws] : write_groups_)
        exec.ws[addr] = ws;
    return exec;
}

void
ExecutionSpace::materialize(uint64_t k, uhb::Execution &exec) const
{
    R2U_ASSERT(k < size_, "execution index out of range");
    for (size_t r = 0; r < reads_.size(); r++) {
        const std::vector<int> &srcs = read_srcs_[r];
        int src = srcs[k % srcs.size()];
        k /= srcs.size();
        int rid = reads_[r];
        exec.rf[rid] = src;
        exec.ops[rid].value = src < 0 ? 0 : ops_[src].value;
    }
    for (const auto &[addr, ws] : write_groups_) {
        uint64_t nperm = factorial(ws.size());
        uint64_t p = k % nperm;
        k /= nperm;
        // Lehmer decode of permutation p over the sorted write list.
        std::vector<int> pool = ws;
        std::vector<int> &order = exec.ws[addr];
        order.clear();
        for (size_t left = ws.size(); left > 0; left--) {
            uint64_t f = factorial(left - 1);
            size_t d = static_cast<size_t>(p / f);
            p %= f;
            order.push_back(pool[d]);
            pool.erase(pool.begin() + static_cast<long>(d));
        }
    }
}

void
forEachExecution(const litmus::Test &test,
                 const std::function<void(const uhb::Execution &)> &fn)
{
    ExecutionSpace space(test);
    uhb::Execution exec = space.makeScratch();
    for (uint64_t k = 0; k < space.size(); k++) {
        space.materialize(k, exec);
        fn(exec);
    }
}

mcm::Outcome
outcomeOf(const litmus::Test &test, const uhb::Execution &exec)
{
    mcm::Outcome out;
    auto locs = test.locations();
    auto loc_of = [&](int addr) { return locs[addr / 4]; };

    size_t id = 0;
    for (size_t t = 0; t < test.threads.size(); t++) {
        for (const litmus::Access &a : test.threads[t].ops) {
            if (!a.isWrite) {
                out.regs[{static_cast<int>(t), a.reg}] =
                    exec.ops[id].value;
            }
            id++;
        }
    }
    // Final memory: last write in ws per location, 0 when unwritten.
    for (const std::string &loc : locs)
        out.mem[loc] = 0;
    for (const auto &[addr, order] : exec.ws) {
        if (!order.empty())
            out.mem[loc_of(addr)] = exec.ops[order.back()].value;
    }
    return out;
}

} // namespace r2u::check
