#include "check/check.hh"

#include <algorithm>
#include <functional>
#include <map>

#include "common/logging.hh"
#include "common/strutil.hh"
#include "common/timer.hh"
#include "isa/isa.hh"

namespace r2u::check
{

std::string
TestResult::summary() const
{
    return strfmt("%-10s %-4s interesting=%s/%s obs=%d sc=%d "
                  "exec=%d %.3f ms",
                  name.c_str(), pass ? "PASS" : "FAIL",
                  interestingObservable ? "observable" : "forbidden",
                  interestingScAllowed ? "sc-allowed" : "sc-forbidden",
                  observableOutcomes, scAllowedOutcomes,
                  executionsExplored, ms);
}

std::vector<uhb::Microop>
microopsOf(const litmus::Test &test)
{
    std::vector<uhb::Microop> ops;
    auto locs = test.locations();
    auto addr_of = [&](const std::string &loc) {
        for (size_t i = 0; i < locs.size(); i++)
            if (locs[i] == loc)
                return static_cast<int>(4 * i);
        panic("unknown location");
    };
    int id = 0;
    for (size_t t = 0; t < test.threads.size(); t++) {
        int index = 0;
        for (const litmus::Access &a : test.threads[t].ops) {
            uhb::Microop op;
            op.id = id++;
            op.core = static_cast<int>(t);
            op.index = index++;
            op.isRead = !a.isWrite;
            op.isWrite = a.isWrite;
            op.addr = addr_of(a.loc);
            op.value = a.isWrite ? a.value : 0;
            if (a.isWrite)
                op.label = strfmt("C%zu: sw %s=%d", t, a.loc.c_str(),
                                  a.value);
            else
                op.label = strfmt("C%zu: lw x%d,%s", t, a.reg,
                                  a.loc.c_str());
            ops.push_back(op);
        }
    }
    return ops;
}

void
forEachExecution(const litmus::Test &test,
                 const std::function<void(const uhb::Execution &)> &fn)
{
    uhb::Execution base;
    base.ops = microopsOf(test);
    base.rf.assign(base.ops.size(), -2);

    // Per-address write lists and read lists.
    std::map<int, std::vector<int>> writes;
    std::vector<int> reads;
    for (const uhb::Microop &op : base.ops) {
        if (op.isWrite)
            writes[op.addr].push_back(op.id);
        else if (op.isRead)
            reads.push_back(op.id);
    }

    // Enumerate ws: product of permutations per address.
    std::vector<std::map<int, std::vector<int>>> ws_choices;
    std::map<int, std::vector<int>> ws_current;
    std::function<void(std::map<int, std::vector<int>>::iterator)>
        perm = [&](std::map<int, std::vector<int>>::iterator it) {
            if (it == writes.end()) {
                ws_choices.push_back(ws_current);
                return;
            }
            std::vector<int> order = it->second;
            std::sort(order.begin(), order.end());
            auto next = std::next(it);
            do {
                ws_current[it->first] = order;
                perm(next);
            } while (std::next_permutation(order.begin(), order.end()));
        };
    perm(writes.begin());

    // Enumerate rf: each read picks init (-1) or any same-addr write.
    std::function<void(size_t, uhb::Execution &)> pick =
        [&](size_t r, uhb::Execution &exec) {
            if (r == reads.size()) {
                for (const auto &ws : ws_choices) {
                    exec.ws = ws;
                    fn(exec);
                }
                return;
            }
            int rid = reads[r];
            int addr = exec.ops[rid].addr;
            exec.rf[rid] = -1;
            exec.ops[rid].value = 0;
            pick(r + 1, exec);
            auto it = writes.find(addr);
            if (it != writes.end()) {
                for (int w : it->second) {
                    exec.rf[rid] = w;
                    exec.ops[rid].value = exec.ops[w].value;
                    pick(r + 1, exec);
                }
            }
        };
    pick(0, base);
}

namespace
{

/** The architectural outcome of one candidate execution. */
mcm::Outcome
outcomeOf(const litmus::Test &test, const uhb::Execution &exec)
{
    mcm::Outcome out;
    auto locs = test.locations();
    auto loc_of = [&](int addr) { return locs[addr / 4]; };

    size_t id = 0;
    for (size_t t = 0; t < test.threads.size(); t++) {
        for (const litmus::Access &a : test.threads[t].ops) {
            if (!a.isWrite) {
                out.regs[{static_cast<int>(t), a.reg}] =
                    exec.ops[id].value;
            }
            id++;
        }
    }
    // Final memory: last write in ws per location, 0 when unwritten.
    for (const std::string &loc : locs)
        out.mem[loc] = 0;
    for (const auto &[addr, order] : exec.ws) {
        if (!order.empty())
            out.mem[loc_of(addr)] = exec.ops[order.back()].value;
    }
    return out;
}

} // namespace

TestResult
checkTest(const uspec::Model &model, const litmus::Test &test,
          const Options &options)
{
    Timer timer;
    TestResult result;
    result.name = test.name;

    // Ground truth from the operational SC reference.
    std::set<mcm::Outcome> sc = mcm::enumerateSC(test);
    result.scAllowedOutcomes = static_cast<int>(sc.size());
    result.interestingScAllowed = false;
    for (const mcm::Outcome &o : sc)
        result.interestingScAllowed |= o.satisfies(test.interesting);

    std::set<mcm::Outcome> observable;
    forEachExecution(test, [&](const uhb::Execution &exec) {
        result.executionsExplored++;
        uhb::SolveResult sr = uhb::solve(model, exec);
        mcm::Outcome out = outcomeOf(test, exec);
        bool interesting = out.satisfies(test.interesting);
        if (sr.observable) {
            observable.insert(out);
            if (interesting)
                result.interestingObservable = true;
        } else if (interesting && options.collectDot &&
                   result.interestingDot.empty()) {
            result.interestingDot = sr.graph.toDot(
                model, exec.ops, "uhb_" + test.name);
        }
    });

    result.observableOutcomes = static_cast<int>(observable.size());
    result.pass = true;
    for (const mcm::Outcome &o : observable) {
        if (!sc.count(o)) {
            result.pass = false;
            result.violations.push_back(o.toString());
        }
    }
    result.tight = result.pass &&
                   observable.size() == sc.size();
    result.ms = timer.milliseconds();
    return result;
}

} // namespace r2u::check
