#include "check/campaign.hh"

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <thread>

#include "common/logging.hh"
#include "common/strutil.hh"
#include "common/thread_pool.hh"
#include "common/timer.hh"

namespace r2u::check
{

namespace
{

/** Result of solving one per-outcome bucket of candidate executions. */
struct BucketResult
{
    bool observable = false;
    int explored = 0;
    int pruned = 0;
    long long branches = 0;
    double ms = 0;
    /** CampaignOptions::stop fired while this bucket still had
     *  candidates: the skipped ones are counted as pruned. */
    bool interrupted = false;
    /** Lowest candidate index with a cyclic (unobservable) graph for
     *  an interesting outcome; -1 when none / not collecting. */
    int64_t dotIndex = -1;
};

/** Everything one test's bucket tasks share. */
struct TestWork
{
    const litmus::Test *test = nullptr;
    std::optional<ExecutionSpace> space;
    uhb::InstanceTable table;
    std::set<mcm::Outcome> sc;
    bool interestingScAllowed = false;
    bool collectDot = false;
    bool prune = true;
    double prepMs = 0;
    /** Outcome -> ascending candidate indices, in outcome order. */
    std::vector<std::pair<mcm::Outcome, std::vector<uint64_t>>> buckets;
    std::vector<BucketResult> results;
    std::atomic<bool> stop{false}; ///< fail-fast latch
};

void
prepareTest(const uspec::Model &model, const litmus::Test &test,
            const CampaignOptions &options, TestWork &work)
{
    Timer timer;
    work.test = &test;
    work.space.emplace(test);
    work.table = uhb::InstanceTable(model, work.space->ops());
    work.sc = mcm::enumerateSC(test);
    for (const mcm::Outcome &o : work.sc)
        work.interestingScAllowed |= o.satisfies(test.interesting);

    work.collectDot =
        options.collectDot &&
        (options.dotTests.empty() ||
         std::find(options.dotTests.begin(), options.dotTests.end(),
                   test.name) != options.dotTests.end());
    work.prune = options.prune && !work.collectDot;

    // Outcomes are a function of the candidate alone — no solving —
    // so the per-outcome grouping the pruner needs is a cheap decode
    // sweep. std::map keys give a deterministic bucket order.
    std::map<mcm::Outcome, std::vector<uint64_t>> buckets;
    uhb::Execution exec = work.space->makeScratch();
    for (uint64_t k = 0; k < work.space->size(); k++) {
        work.space->materialize(k, exec);
        buckets[outcomeOf(test, exec)].push_back(k);
    }
    work.buckets.assign(buckets.begin(), buckets.end());
    work.results.resize(work.buckets.size());
    work.prepMs = timer.milliseconds();
}

void
solveBucket(const uspec::Model &model, const CampaignOptions &options,
            TestWork &work, size_t b)
{
    Timer timer;
    const auto &[outcome, indices] = work.buckets[b];
    bool interesting = outcome.satisfies(work.test->interesting);
    bool non_sc = !work.sc.count(outcome);
    BucketResult r;
    uhb::Execution exec = work.space->makeScratch();
    for (uint64_t k : indices) {
        if (options.stop &&
            options.stop->load(std::memory_order_relaxed)) {
            r.pruned++;
            r.interrupted = true;
            continue;
        }
        if ((work.prune && r.observable) ||
            (options.failFast &&
             work.stop.load(std::memory_order_relaxed))) {
            r.pruned++;
            continue;
        }
        work.space->materialize(k, exec);
        uhb::SolveResult sr = uhb::solve(model, exec, work.table);
        r.explored++;
        r.branches += sr.branchesExplored;
        if (sr.observable) {
            r.observable = true;
            if (options.failFast && non_sc)
                work.stop.store(true, std::memory_order_relaxed);
        } else if (interesting && work.collectDot && r.dotIndex < 0) {
            r.dotIndex = static_cast<int64_t>(k);
        }
    }
    r.ms = timer.milliseconds();
    work.results[b] = r;
}

TestResult
mergeTest(const uspec::Model &model, TestWork &work)
{
    TestResult res;
    res.name = work.test->name;
    res.scAllowedOutcomes = static_cast<int>(work.sc.size());
    res.interestingScAllowed = work.interestingScAllowed;
    res.executionsTotal = static_cast<int>(work.space->size());
    res.ms = work.prepMs;

    std::set<mcm::Outcome> observable;
    int64_t dot_index = -1;
    for (size_t b = 0; b < work.buckets.size(); b++) {
        const BucketResult &r = work.results[b];
        const mcm::Outcome &outcome = work.buckets[b].first;
        res.executionsExplored += r.explored;
        res.executionsPruned += r.pruned;
        res.branches += r.branches;
        res.ms += r.ms;
        if (r.observable) {
            observable.insert(outcome);
            if (outcome.satisfies(work.test->interesting))
                res.interestingObservable = true;
        }
        if (r.dotIndex >= 0 &&
            (dot_index < 0 || r.dotIndex < dot_index))
            dot_index = r.dotIndex;
    }

    res.observableOutcomes = static_cast<int>(observable.size());
    res.pass = true;
    for (const mcm::Outcome &o : observable) {
        res.outcomes.push_back(o.toString());
        if (!work.sc.count(o)) {
            res.pass = false;
            res.violations.push_back(o.toString());
        }
    }
    res.tight = res.pass && observable.size() == work.sc.size();

    if (dot_index >= 0) {
        // Re-solve the (deterministically lowest-index) cyclic
        // interesting candidate to render its witness.
        uhb::Execution exec = work.space->makeScratch();
        work.space->materialize(static_cast<uint64_t>(dot_index), exec);
        uhb::SolveResult sr = uhb::solve(model, exec, work.table);
        res.interestingDot = sr.graph.toDot(model, exec.ops,
                                            "uhb_" + work.test->name);
    }
    return res;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (c == '\n') {
            out += "\\n";
            continue;
        }
        out += c;
    }
    return out;
}

} // namespace

CampaignResult
runCampaign(const uspec::Model &model,
            const std::vector<litmus::Test> &tests,
            const CampaignOptions &options)
{
    Timer timer;
    unsigned jobs = options.jobs;
    if (jobs == 0)
        jobs = std::max(1u, std::thread::hardware_concurrency());

    CampaignResult result;
    result.jobs = jobs;
    result.prune = options.prune;
    result.failFast = options.failFast;

    std::unique_ptr<ThreadPool> pool;
    if (jobs > 1)
        pool = std::make_unique<ThreadPool>(jobs);
    auto run = [&](std::function<void()> task) {
        if (pool)
            pool->submit([t = std::move(task)](unsigned) { t(); });
        else
            task();
    };

    // Phase 1: per-test precomputation (instance table, SC reference,
    // outcome buckets).
    std::vector<std::unique_ptr<TestWork>> works;
    works.reserve(tests.size());
    for (size_t i = 0; i < tests.size(); i++)
        works.push_back(std::make_unique<TestWork>());
    for (size_t i = 0; i < tests.size(); i++) {
        run([&, i] {
            prepareTest(model, tests[i], options, *works[i]);
        });
    }
    if (pool)
        pool->wait();

    // Phase 2: every (test, bucket) pair is an independent work unit;
    // interleaving them across tests load-balances short tests against
    // the few large ones.
    for (auto &work : works) {
        for (size_t b = 0; b < work->buckets.size(); b++) {
            run([&, b, w = work.get()] {
                solveBucket(model, options, *w, b);
            });
        }
    }
    if (pool)
        pool->wait();

    // Phase 3: deterministic merge in test / bucket order.
    for (auto &work : works) {
        for (const BucketResult &r : work->results)
            result.interrupted |= r.interrupted;
        result.tests.push_back(mergeTest(model, *work));
        const TestResult &res = result.tests.back();
        result.failures += res.ok() ? 0 : 1;
        result.executionsTotal += res.executionsTotal;
        result.executionsExplored += res.executionsExplored;
        result.executionsPruned += res.executionsPruned;
        result.branches += res.branches;
    }
    result.ms = timer.milliseconds();
    return result;
}

std::string
CampaignResult::summary() const
{
    return strfmt("%zu tests, %d failure%s | executions %lld explored "
                  "+ %lld pruned of %lld, %lld branches | jobs=%u "
                  "prune=%s%s | %.1f ms",
                  tests.size(), failures, failures == 1 ? "" : "s",
                  executionsExplored, executionsPruned, executionsTotal,
                  branches, jobs, prune ? "on" : "off",
                  failFast ? " fail-fast" : "", ms);
}

std::string
CampaignResult::jsonReport() const
{
    std::string out = "{\n";
    out += strfmt("  \"jobs\": %u,\n", jobs);
    out += strfmt("  \"prune\": %s,\n", prune ? "true" : "false");
    out += strfmt("  \"fail_fast\": %s,\n", failFast ? "true" : "false");
    out += strfmt("  \"interrupted\": %s,\n",
                  interrupted ? "true" : "false");
    out += strfmt("  \"tests\": %zu,\n", tests.size());
    out += strfmt("  \"failures\": %d,\n", failures);
    out += strfmt("  \"executions\": {\"total\": %lld, \"explored\": "
                  "%lld, \"pruned\": %lld},\n",
                  executionsTotal, executionsExplored, executionsPruned);
    out += strfmt("  \"branches\": %lld,\n", branches);
    out += strfmt("  \"wall_ms\": %.3f,\n", ms);
    out += "  \"results\": [\n";
    for (size_t i = 0; i < tests.size(); i++) {
        const TestResult &t = tests[i];
        out += strfmt(
            "    {\"name\": \"%s\", \"ok\": %s, \"pass\": %s, "
            "\"tight\": %s, \"interesting_observable\": %s, "
            "\"interesting_sc_allowed\": %s, "
            "\"sc_allowed_outcomes\": %d, \"observable_outcomes\": %d, "
            "\"executions\": {\"total\": %d, \"explored\": %d, "
            "\"pruned\": %d}, \"branches\": %lld, \"ms\": %.3f",
            jsonEscape(t.name).c_str(), t.ok() ? "true" : "false",
            t.pass ? "true" : "false", t.tight ? "true" : "false",
            t.interestingObservable ? "true" : "false",
            t.interestingScAllowed ? "true" : "false",
            t.scAllowedOutcomes, t.observableOutcomes,
            t.executionsTotal, t.executionsExplored, t.executionsPruned,
            t.branches, t.ms);
        out += ", \"outcomes\": [";
        for (size_t j = 0; j < t.outcomes.size(); j++) {
            out += j ? ", " : "";
            out += "\"" + jsonEscape(t.outcomes[j]) + "\"";
        }
        out += "], \"violations\": [";
        for (size_t j = 0; j < t.violations.size(); j++) {
            out += j ? ", " : "";
            out += "\"" + jsonEscape(t.violations[j]) + "\"";
        }
        out += strfmt("]}%s\n", i + 1 < tests.size() ? "," : "");
    }
    out += "  ]\n";
    out += "}\n";
    return out;
}

std::string
dotPathFor(const std::string &base, const std::string &test)
{
    size_t slash = base.find_last_of('/');
    size_t dot = base.find_last_of('.');
    if (dot == std::string::npos ||
        (slash != std::string::npos && dot < slash))
        return base + "_" + test;
    return base.substr(0, dot) + "_" + test + base.substr(dot);
}

TestResult
checkTest(const uspec::Model &model, const litmus::Test &test,
          const Options &options)
{
    CampaignOptions copts;
    copts.jobs = options.jobs;
    copts.prune = options.prune;
    copts.failFast = options.failFast;
    copts.collectDot = options.collectDot;
    CampaignResult res = runCampaign(model, {test}, copts);
    TestResult out = std::move(res.tests[0]);
    out.ms = res.ms; // single test: wall time, as the seed reported
    return out;
}

} // namespace r2u::check
