/**
 * @file
 * Parallel, pruned litmus-checking campaigns (the scalable COATCheck
 * role; cf. RealityCheck's observation that µhb solving is the
 * bottleneck of µspec-based MCM verification at suite scale).
 *
 * runCampaign() verifies a batch of litmus tests against one µspec
 * model. Per test it precomputes what every candidate execution
 * shares — the µhb axiom-binding instance table, the SC reference
 * outcome set, and the outcome of each candidate (computable without
 * solving) — then groups candidates into per-outcome buckets and
 * distributes the buckets across a work-stealing thread pool.
 * Pruning is outcome-level: once one execution in a bucket is proven
 * observable, the rest of the bucket is skipped (it cannot change the
 * observable set). Worker results are merged deterministically in
 * bucket order, so observable-outcome sets, verdict flags, and
 * exploration counts are identical at any job count, pruned or
 * exhaustive (only fail-fast trades deterministic counts — never
 * verdicts — for an early exit).
 */

#ifndef R2U_CHECK_CAMPAIGN_HH
#define R2U_CHECK_CAMPAIGN_HH

#include <atomic>
#include <string>
#include <vector>

#include "check/check.hh"

namespace r2u::check
{

struct CampaignOptions
{
    /** Worker threads (0 = hardware concurrency, 1 = sequential). */
    unsigned jobs = 1;
    /** Outcome-level pruning (see Options::prune). */
    bool prune = true;
    /** Stop each test at its first observable non-SC outcome. */
    bool failFast = false;
    /** Collect cyclic µhb DOT witnesses for interesting outcomes. */
    bool collectDot = false;
    /**
     * When collectDot: restrict collection (and the pruning opt-out
     * it implies) to these test names; empty = every test.
     */
    std::vector<std::string> dotTests;
    /**
     * Cooperative cancellation flag (caller-owned, may be flipped
     * from any thread — a signal handler, the service watchdog).
     * Checked before every candidate solve: once set, remaining
     * candidates are skipped (counted as pruned) and the result comes
     * back with interrupted=true. Skipping can only shrink the
     * explored set, never flip a verdict already established, so an
     * interrupted campaign is a sound partial answer. nullptr = never
     * stop.
     */
    const std::atomic<bool> *stop = nullptr;
};

struct CampaignResult
{
    unsigned jobs = 1;
    bool prune = true;
    bool failFast = false;
    std::vector<TestResult> tests;
    int failures = 0; ///< tests with !ok()
    long long executionsTotal = 0;
    long long executionsExplored = 0;
    long long executionsPruned = 0;
    long long branches = 0;
    double ms = 0; ///< campaign wall-clock time
    /** CampaignOptions::stop fired mid-run: verdicts reflect only the
     *  explored prefix and must not be treated as exhaustive. */
    bool interrupted = false;

    /** One-line human summary of the campaign totals. */
    std::string summary() const;
    /**
     * Structured JSON run report (the litmus-side sibling of
     * SynthesisResult::jsonReport): campaign configuration and
     * totals, plus per-test verdicts, outcome sets, and
     * explored/pruned/branch counts.
     */
    std::string jsonReport() const;
};

/** Verify @p tests against @p model with the campaign engine. */
CampaignResult runCampaign(const uspec::Model &model,
                           const std::vector<litmus::Test> &tests,
                           const CampaignOptions &options = {});

/**
 * Per-test DOT output path: insert "_<test>" before @p base's
 * extension ("out/mp.dot", "sb" -> "out/mp_sb.dot"), so a multi-test
 * campaign does not overwrite one file per witness.
 */
std::string dotPathFor(const std::string &base, const std::string &test);

} // namespace r2u::check

#endif // R2U_CHECK_CAMPAIGN_HH
