#include "netlist/coi.hh"

#include <algorithm>

#include "common/logging.hh"

namespace r2u::nl
{

size_t
Coi::numCells() const
{
    return std::count(cells.begin(), cells.end(), true);
}

size_t
Coi::numMems() const
{
    return std::count(mems.begin(), mems.end(), true);
}

Coi
computeCoi(const Netlist &nl, const CoiSeeds &seeds)
{
    Coi coi;
    coi.cells.assign(nl.numCells(), false);
    coi.mems.assign(nl.numMemories(), false);

    // Worklist of cells whose drivers still need visiting. Memories
    // are expanded inline when first marked: their write ports'
    // address/data/enable inputs join the cone.
    std::vector<CellId> work;

    auto markMem = [&](MemId m) {
        if (coi.mems[m])
            return;
        coi.mems[m] = true;
        for (CellId port : nl.memory(m).writePorts) {
            const Cell &w = nl.cell(port);
            R2U_ASSERT(w.kind == CellKind::MemWrite,
                       "write port %d is not a MemWrite", port);
            for (CellId in : w.inputs)
                work.push_back(in);
        }
    };

    for (CellId c : seeds.cells)
        work.push_back(c);
    for (MemId m : seeds.mems)
        markMem(m);

    while (!work.empty()) {
        CellId id = work.back();
        work.pop_back();
        if (coi.cells[id])
            continue;
        coi.cells[id] = true;

        const Cell &c = nl.cell(id);
        switch (c.kind) {
          case CellKind::Const:
          case CellKind::Input:
            break;
          case CellKind::MemWrite:
            // Write ports have no output wire; they only appear in
            // the cone via their array (handled in markMem).
            panic("MemWrite cell %d reached as a driver", id);
          case CellKind::MemRead:
            work.push_back(c.inputs[0]); // address
            markMem(c.mem);
            break;
          default:
            // Dff (D, EN feed Q across the frame boundary) and every
            // combinational kind: all inputs are drivers.
            for (CellId in : c.inputs)
                work.push_back(in);
        }
    }
    return coi;
}

} // namespace r2u::nl
