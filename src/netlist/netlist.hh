/**
 * @file
 * Word-level synchronous netlist IR — the RTLIL stand-in.
 *
 * The Verilog elaborator lowers designs into this IR; the simulator,
 * the DFG extractor, and the BMC bit-blaster all consume it. The IR is
 * a flat single-clock netlist: every cell has at most one output wire
 * (identified with the cell id), registers are $dff cells, and memories
 * are addressable arrays with combinational read cells and synchronous
 * write cells, mirroring Yosys's view of a design after `memory` passes.
 *
 * Clocking is implicit: all Dff and MemWrite cells update together on
 * the (single) clock edge. Resets are synchronous and modeled as data;
 * the power-on value of each state element is an explicit attribute.
 */

#ifndef R2U_NETLIST_NETLIST_HH
#define R2U_NETLIST_NETLIST_HH

#include <string>
#include <unordered_map>
#include <vector>

#include "common/bits.hh"

namespace r2u::nl
{

/** Cell/wire identifier; the output wire of cell i has id i. */
using CellId = int;
using MemId = int;

constexpr CellId kNoCell = -1;

enum class CellKind {
    Const,   ///< no inputs; value attribute
    Input,   ///< top-level input port
    Add,     ///< A + B (same width)
    Sub,     ///< A - B
    And,     ///< A & B
    Or,      ///< A | B
    Xor,     ///< A ^ B
    Not,     ///< ~A
    Mux,     ///< S ? A : B (S is 1 bit)
    Eq,      ///< A == B (1-bit result)
    Ult,     ///< unsigned A < B (1-bit result)
    Slt,     ///< signed A < B (1-bit result)
    RedOr,   ///< |A (1-bit result)
    RedAnd,  ///< &A (1-bit result)
    Shl,     ///< A << B
    Lshr,    ///< A >> B (logical)
    Ashr,    ///< A >>> B (arithmetic)
    Concat,  ///< {inputs[0], inputs[1], ...} MSB-first operand order
    Slice,   ///< A[lo +: width]
    Zext,    ///< zero-extend A to width
    Sext,    ///< sign-extend A to width
    Dff,     ///< register: inputs {D, EN}; Q' = EN ? D : Q
    MemRead, ///< combinational read: inputs {ADDR}; attr mem
    MemWrite ///< synchronous write: inputs {ADDR, DATA, EN}; no output
};

const char *cellKindName(CellKind kind);

/** True for kinds whose output is a function of same-cycle inputs. */
bool isCombinational(CellKind kind);

struct Cell
{
    CellId id = kNoCell;
    CellKind kind = CellKind::Const;
    std::string name;  ///< hierarchical name; may be empty for temps
    unsigned width = 0; ///< output width (0 for MemWrite)
    std::vector<CellId> inputs;
    Bits value;        ///< Const: the constant value; Dff: power-on value
    unsigned lo = 0;   ///< Slice: start bit
    MemId mem = -1;    ///< MemRead/MemWrite: target memory
};

struct Memory
{
    MemId id = -1;
    std::string name;
    unsigned depth = 0; ///< number of words
    unsigned width = 0; ///< bits per word
    unsigned abits = 0; ///< address bits used by ports
    std::vector<Bits> init; ///< power-on contents (size == depth)
    std::vector<CellId> writePorts; ///< MemWrite cells, priority order
    std::vector<CellId> readPorts;  ///< MemRead cells (informational)
};

/** Aggregate size numbers, in the spirit of the paper's §5.1 table. */
struct NetlistStats
{
    size_t cells = 0;        ///< total cells (incl. const/input)
    size_t combCells = 0;    ///< combinational cells
    size_t registers = 0;    ///< Dff cells
    size_t memories = 0;     ///< memory arrays
    size_t flopBits = 0;     ///< sum of Dff widths
    size_t memBits = 0;      ///< sum of depth*width over memories
    size_t inputs = 0;
};

class Netlist
{
  public:
    /** @name Construction (used by the elaborator and by tests) */
    /// @{
    CellId addConst(const Bits &value, const std::string &name = "");
    CellId addInput(const std::string &name, unsigned width);
    CellId addUnary(CellKind kind, CellId a, const std::string &name = "");
    CellId addBinary(CellKind kind, CellId a, CellId b,
                     const std::string &name = "");
    CellId addMux(CellId sel, CellId a, CellId b,
                  const std::string &name = "");
    CellId addConcat(const std::vector<CellId> &msb_first,
                     const std::string &name = "");
    CellId addSlice(CellId a, unsigned lo, unsigned width,
                    const std::string &name = "");
    CellId addExt(CellKind kind, CellId a, unsigned width,
                  const std::string &name = "");
    CellId addDff(const std::string &name, CellId d, CellId en,
                  const Bits &init);
    MemId addMemory(const std::string &name, unsigned depth,
                    unsigned width, const std::vector<Bits> &init = {});
    CellId addMemRead(MemId mem, CellId addr, const std::string &name = "");
    CellId addMemWrite(MemId mem, CellId addr, CellId data, CellId en);
    /// @}

    /** Register a named output port pointing at a wire. */
    void addOutput(const std::string &name, CellId wire);

    /** @name Access */
    /// @{
    const Cell &cell(CellId id) const { return cells_[id]; }
    Cell &cell(CellId id) { return cells_[id]; }
    size_t numCells() const { return cells_.size(); }
    const Memory &memory(MemId id) const { return memories_[id]; }
    size_t numMemories() const { return memories_.size(); }
    const std::vector<CellId> &inputs() const { return input_cells_; }
    const std::vector<CellId> &dffs() const { return dff_cells_; }
    const std::unordered_map<std::string, CellId> &outputs() const
    {
        return outputs_;
    }

    /** Find a cell by exact hierarchical name; kNoCell if absent. */
    CellId findByName(const std::string &name) const;

    /** Find a memory by exact hierarchical name; -1 if absent. */
    MemId findMemoryByName(const std::string &name) const;

    /** All cells whose name ends with the given suffix. */
    std::vector<CellId> findBySuffix(const std::string &suffix) const;
    /// @}

    /**
     * Combinational evaluation order. Dff/Input/Const/MemRead outputs
     * are sources w.r.t. sequential state; MemRead still orders after
     * its address input. fatal()s on a combinational cycle.
     */
    const std::vector<CellId> &topoOrder() const;

    /** Comb-dependency inputs of a cell (excludes MemWrite data path). */
    std::vector<CellId> combDeps(CellId id) const;

    NetlistStats stats() const;

    /** Validate widths and wiring; panics on inconsistency. */
    void validate() const;

  private:
    CellId newCell(CellKind kind, unsigned width, const std::string &name);
    void invalidateTopo() { topo_valid_ = false; }

    std::vector<Cell> cells_;
    std::vector<Memory> memories_;
    std::vector<CellId> input_cells_;
    std::vector<CellId> dff_cells_;
    std::unordered_map<std::string, CellId> outputs_;
    std::unordered_map<std::string, CellId> by_name_;

    mutable std::vector<CellId> topo_;
    mutable bool topo_valid_ = false;
};

} // namespace r2u::nl

#endif // R2U_NETLIST_NETLIST_HH
