/**
 * @file
 * Cone-of-influence analysis over a netlist.
 *
 * JasperGold's automatic COI reduction is what makes the paper's
 * localized HBI hypotheses cheap to prove: each SVA only mentions a
 * few state elements, so the tool strips the design down to their
 * transitive fan-in before solving. This is our equivalent: backward
 * reachability from a seed set of cells/memories, crossing register
 * boundaries (a Dff's D and EN inputs drive its Q in the next frame)
 * and treating memory write ports as drivers of their array. The
 * result is the frame-union cone — exactly the set of cells and
 * arrays a demand-driven unrolling of the seeds can ever materialize
 * at any bound (bmc::Unroller's default mode builds precisely this).
 */

#ifndef R2U_NETLIST_COI_HH
#define R2U_NETLIST_COI_HH

#include <vector>

#include "netlist/netlist.hh"

namespace r2u::nl
{

/** Seed state for a cone-of-influence query. */
struct CoiSeeds
{
    std::vector<CellId> cells;
    std::vector<MemId> mems;

    bool empty() const { return cells.empty() && mems.empty(); }
};

/** Transitive fan-in closure of a seed set. */
struct Coi
{
    std::vector<bool> cells; ///< indexed by CellId, size numCells()
    std::vector<bool> mems;  ///< indexed by MemId, size numMemories()

    bool hasCell(CellId id) const { return cells[id]; }
    bool hasMem(MemId id) const { return mems[id]; }

    /** Number of cells / memories in the cone. */
    size_t numCells() const;
    size_t numMems() const;
};

/**
 * Backward reachability from @p seeds over the driver relation:
 * combinational cells pull in their inputs, Dffs pull in D and EN
 * (previous frame), MemReads pull in their address and array, and an
 * in-cone array pulls in the address/data/enable inputs of every one
 * of its write ports (previous frame). MemWrite cells themselves have
 * no output wire and are not part of the cone.
 */
Coi computeCoi(const Netlist &nl, const CoiSeeds &seeds);

} // namespace r2u::nl

#endif // R2U_NETLIST_COI_HH
