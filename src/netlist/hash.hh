/**
 * @file
 * Canonical structural hashing of netlist content.
 *
 * Two consumers need a semantic fingerprint of "what the solver will
 * see" rather than a count of how many cells it will see:
 *
 *  - the BMC run journal binds resumed verdicts to the producing
 *    design via a whole-netlist hash (structuralHash) — a rewired
 *    design with identical cell/input/register counts must not be
 *    allowed to resume another design's verdicts;
 *  - the content-addressed verdict cache keys each query by the hash
 *    of exactly the cone of influence its property can read
 *    (coneHash over nl::computeCoi), so an RTL edit invalidates only
 *    the queries whose slice actually changed.
 *
 * The hash covers cell kinds, names, port widths, connectivity
 * (input CellIds), constant/DFF power-on values, slice offsets, and
 * memory geometry + initial contents + write-port wiring. It is
 * FNV-1a 64-bit over an explicit little-endian byte encoding, so the
 * value is stable across platforms and process runs (no
 * pointer/std::hash dependence). Cell identifiers participate in the
 * encoding: an edit that renumbers cells conservatively invalidates
 * every cone that mentions them, which can only cost re-solves, never
 * soundness.
 */

#ifndef R2U_NETLIST_HASH_HH
#define R2U_NETLIST_HASH_HH

#include <cstdint>
#include <string>

#include "common/bits.hh"
#include "netlist/coi.hh"
#include "netlist/netlist.hh"

namespace r2u::nl
{

/**
 * Incremental FNV-1a 64-bit hasher over an explicit byte encoding
 * (same constants as the journal's record checksum). Every integer is
 * fed little-endian with its full width, so `u32(1), u32(2)` and
 * `u64(0x200000001)` hash differently from most accidental
 * concatenations; strings are length-prefixed for the same reason.
 */
class Fnv64
{
  public:
    void byte(uint8_t b)
    {
        h_ ^= b;
        h_ *= 1099511628211ull;
    }

    void u32(uint32_t v)
    {
        for (unsigned i = 0; i < 4; i++)
            byte(static_cast<uint8_t>(v >> (8 * i)));
    }

    void u64(uint64_t v)
    {
        for (unsigned i = 0; i < 8; i++)
            byte(static_cast<uint8_t>(v >> (8 * i)));
    }

    void str(const std::string &s)
    {
        u32(static_cast<uint32_t>(s.size()));
        for (char c : s)
            byte(static_cast<uint8_t>(c));
    }

    /** Width-prefixed value bits, 64 bits at a time from bit 0. */
    void bits(const Bits &b);

    uint64_t value() const { return h_; }

  private:
    uint64_t h_ = 14695981039346656037ull;
};

/**
 * Whole-netlist content hash: every cell (kind, name, width,
 * connectivity, value, slice offset, memory binding) and every memory
 * (geometry, initial contents, write-port order). Equal-count designs
 * with different logic hash differently.
 */
uint64_t structuralHash(const Netlist &nl);

/**
 * Content hash of one cone of influence: the in-cone cells and
 * memories only, each prefixed with its id. Cells outside the cone
 * cannot influence any wire a demand-driven unrolling of the seeds
 * materializes (see nl::computeCoi), so an edit confined to them
 * leaves the hash — and any verdict keyed by it — intact.
 */
uint64_t coneHash(const Netlist &nl, const Coi &coi);

/** Convenience: computeCoi(nl, seeds) then hash the cone. */
uint64_t coneHash(const Netlist &nl, const CoiSeeds &seeds);

} // namespace r2u::nl

#endif // R2U_NETLIST_HASH_HH
