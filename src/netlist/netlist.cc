#include "netlist/netlist.hh"

#include <algorithm>

#include "common/logging.hh"

namespace r2u::nl
{

const char *
cellKindName(CellKind kind)
{
    switch (kind) {
      case CellKind::Const: return "$const";
      case CellKind::Input: return "$input";
      case CellKind::Add: return "$add";
      case CellKind::Sub: return "$sub";
      case CellKind::And: return "$and";
      case CellKind::Or: return "$or";
      case CellKind::Xor: return "$xor";
      case CellKind::Not: return "$not";
      case CellKind::Mux: return "$mux";
      case CellKind::Eq: return "$eq";
      case CellKind::Ult: return "$ult";
      case CellKind::Slt: return "$slt";
      case CellKind::RedOr: return "$reduce_or";
      case CellKind::RedAnd: return "$reduce_and";
      case CellKind::Shl: return "$shl";
      case CellKind::Lshr: return "$shr";
      case CellKind::Ashr: return "$sshr";
      case CellKind::Concat: return "$concat";
      case CellKind::Slice: return "$slice";
      case CellKind::Zext: return "$zext";
      case CellKind::Sext: return "$sext";
      case CellKind::Dff: return "$dff";
      case CellKind::MemRead: return "$memrd";
      case CellKind::MemWrite: return "$memwr";
    }
    return "$unknown";
}

bool
isCombinational(CellKind kind)
{
    switch (kind) {
      case CellKind::Const:
      case CellKind::Input:
      case CellKind::Dff:
      case CellKind::MemWrite:
        return false;
      default:
        return true;
    }
}

CellId
Netlist::newCell(CellKind kind, unsigned width, const std::string &name)
{
    CellId id = static_cast<CellId>(cells_.size());
    Cell c;
    c.id = id;
    c.kind = kind;
    c.width = width;
    c.name = name;
    cells_.push_back(std::move(c));
    if (!name.empty()) {
        auto [it, inserted] = by_name_.emplace(name, id);
        if (!inserted)
            fatal("duplicate cell name '%s'", name.c_str());
    }
    invalidateTopo();
    return id;
}

CellId
Netlist::addConst(const Bits &value, const std::string &name)
{
    CellId id = newCell(CellKind::Const, value.width(), name);
    cells_[id].value = value;
    return id;
}

CellId
Netlist::addInput(const std::string &name, unsigned width)
{
    CellId id = newCell(CellKind::Input, width, name);
    input_cells_.push_back(id);
    return id;
}

CellId
Netlist::addUnary(CellKind kind, CellId a, const std::string &name)
{
    unsigned w;
    switch (kind) {
      case CellKind::Not:
        w = cells_[a].width;
        break;
      case CellKind::RedOr:
      case CellKind::RedAnd:
        w = 1;
        break;
      default:
        panic("addUnary of non-unary kind %s", cellKindName(kind));
    }
    CellId id = newCell(kind, w, name);
    cells_[id].inputs = {a};
    return id;
}

CellId
Netlist::addBinary(CellKind kind, CellId a, CellId b,
                   const std::string &name)
{
    unsigned wa = cells_[a].width, wb = cells_[b].width;
    unsigned w;
    switch (kind) {
      case CellKind::Add:
      case CellKind::Sub:
      case CellKind::And:
      case CellKind::Or:
      case CellKind::Xor:
        R2U_ASSERT(wa == wb, "%s width mismatch %u vs %u",
                   cellKindName(kind), wa, wb);
        w = wa;
        break;
      case CellKind::Eq:
      case CellKind::Ult:
      case CellKind::Slt:
        R2U_ASSERT(wa == wb, "%s width mismatch %u vs %u",
                   cellKindName(kind), wa, wb);
        w = 1;
        break;
      case CellKind::Shl:
      case CellKind::Lshr:
      case CellKind::Ashr:
        w = wa;
        break;
      default:
        panic("addBinary of non-binary kind %s", cellKindName(kind));
    }
    CellId id = newCell(kind, w, name);
    cells_[id].inputs = {a, b};
    return id;
}

CellId
Netlist::addMux(CellId sel, CellId a, CellId b, const std::string &name)
{
    R2U_ASSERT(cells_[sel].width == 1, "mux select must be 1 bit");
    R2U_ASSERT(cells_[a].width == cells_[b].width,
               "mux width mismatch %u vs %u", cells_[a].width,
               cells_[b].width);
    CellId id = newCell(CellKind::Mux, cells_[a].width, name);
    cells_[id].inputs = {sel, a, b};
    return id;
}

CellId
Netlist::addConcat(const std::vector<CellId> &msb_first,
                   const std::string &name)
{
    R2U_ASSERT(!msb_first.empty(), "empty concat");
    unsigned w = 0;
    for (CellId c : msb_first)
        w += cells_[c].width;
    CellId id = newCell(CellKind::Concat, w, name);
    cells_[id].inputs = msb_first;
    return id;
}

CellId
Netlist::addSlice(CellId a, unsigned lo, unsigned width,
                  const std::string &name)
{
    R2U_ASSERT(lo + width <= cells_[a].width,
               "slice [%u +: %u] out of cell width %u", lo, width,
               cells_[a].width);
    CellId id = newCell(CellKind::Slice, width, name);
    cells_[id].inputs = {a};
    cells_[id].lo = lo;
    return id;
}

CellId
Netlist::addExt(CellKind kind, CellId a, unsigned width,
                const std::string &name)
{
    R2U_ASSERT(kind == CellKind::Zext || kind == CellKind::Sext,
               "addExt of non-ext kind");
    R2U_ASSERT(width >= cells_[a].width, "ext shrinks");
    CellId id = newCell(kind, width, name);
    cells_[id].inputs = {a};
    return id;
}

CellId
Netlist::addDff(const std::string &name, CellId d, CellId en,
                const Bits &init)
{
    R2U_ASSERT(cells_[en].width == 1, "dff enable must be 1 bit");
    R2U_ASSERT(cells_[d].width == init.width(),
               "dff '%s' init width %u != d width %u", name.c_str(),
               init.width(), cells_[d].width);
    CellId id = newCell(CellKind::Dff, init.width(), name);
    cells_[id].inputs = {d, en};
    cells_[id].value = init;
    dff_cells_.push_back(id);
    return id;
}

MemId
Netlist::addMemory(const std::string &name, unsigned depth, unsigned width,
                   const std::vector<Bits> &init)
{
    MemId id = static_cast<MemId>(memories_.size());
    Memory m;
    m.id = id;
    m.name = name;
    m.depth = depth;
    m.width = width;
    unsigned abits = 0;
    while ((1u << abits) < depth)
        abits++;
    m.abits = abits == 0 ? 1 : abits;
    m.init.assign(depth, Bits(width, 0));
    for (size_t i = 0; i < init.size() && i < depth; i++)
        m.init[i] = init[i];
    memories_.push_back(std::move(m));
    return id;
}

CellId
Netlist::addMemRead(MemId mem, CellId addr, const std::string &name)
{
    const Memory &m = memories_[mem];
    CellId id = newCell(CellKind::MemRead, m.width, name);
    cells_[id].inputs = {addr};
    cells_[id].mem = mem;
    memories_[mem].readPorts.push_back(id);
    return id;
}

CellId
Netlist::addMemWrite(MemId mem, CellId addr, CellId data, CellId en)
{
    const Memory &m = memories_[mem];
    R2U_ASSERT(cells_[data].width == m.width,
               "memwr data width %u != mem width %u", cells_[data].width,
               m.width);
    R2U_ASSERT(cells_[en].width == 1, "memwr enable must be 1 bit");
    CellId id = newCell(CellKind::MemWrite, 0, "");
    cells_[id].inputs = {addr, data, en};
    cells_[id].mem = mem;
    memories_[mem].writePorts.push_back(id);
    return id;
}

void
Netlist::addOutput(const std::string &name, CellId wire)
{
    outputs_[name] = wire;
}

CellId
Netlist::findByName(const std::string &name) const
{
    auto it = by_name_.find(name);
    return it == by_name_.end() ? kNoCell : it->second;
}

MemId
Netlist::findMemoryByName(const std::string &name) const
{
    for (const Memory &m : memories_)
        if (m.name == name)
            return m.id;
    return -1;
}

std::vector<CellId>
Netlist::findBySuffix(const std::string &suffix) const
{
    std::vector<CellId> out;
    for (const Cell &c : cells_) {
        if (c.name.size() >= suffix.size() &&
            c.name.compare(c.name.size() - suffix.size(), suffix.size(),
                           suffix) == 0) {
            out.push_back(c.id);
        }
    }
    return out;
}

std::vector<CellId>
Netlist::combDeps(CellId id) const
{
    const Cell &c = cells_[id];
    if (!isCombinational(c.kind))
        return {};
    return c.inputs;
}

const std::vector<CellId> &
Netlist::topoOrder() const
{
    if (topo_valid_)
        return topo_;
    topo_.clear();
    // 0 = unvisited, 1 = on stack, 2 = done
    std::vector<uint8_t> mark(cells_.size(), 0);
    std::vector<std::pair<CellId, size_t>> stack;
    for (size_t root = 0; root < cells_.size(); root++) {
        if (mark[root])
            continue;
        stack.emplace_back(static_cast<CellId>(root), 0);
        mark[root] = 1;
        while (!stack.empty()) {
            auto &[id, next] = stack.back();
            auto deps = combDeps(id);
            if (next < deps.size()) {
                CellId dep = deps[next++];
                if (mark[dep] == 1) {
                    fatal("combinational cycle through cell '%s' (%s)",
                          cells_[dep].name.c_str(),
                          cellKindName(cells_[dep].kind));
                }
                if (mark[dep] == 0) {
                    mark[dep] = 1;
                    stack.emplace_back(dep, 0);
                }
            } else {
                mark[id] = 2;
                if (isCombinational(cells_[id].kind))
                    topo_.push_back(id);
                stack.pop_back();
            }
        }
    }
    topo_valid_ = true;
    return topo_;
}

NetlistStats
Netlist::stats() const
{
    NetlistStats s;
    s.cells = cells_.size();
    for (const Cell &c : cells_) {
        if (isCombinational(c.kind))
            s.combCells++;
        if (c.kind == CellKind::Dff) {
            s.registers++;
            s.flopBits += c.width;
        }
        if (c.kind == CellKind::Input)
            s.inputs++;
    }
    s.memories = memories_.size();
    for (const Memory &m : memories_)
        s.memBits += static_cast<size_t>(m.depth) * m.width;
    return s;
}

void
Netlist::validate() const
{
    for (const Cell &c : cells_) {
        for (CellId in : c.inputs) {
            R2U_ASSERT(in >= 0 && in < static_cast<CellId>(cells_.size()),
                       "cell '%s' has dangling input", c.name.c_str());
        }
        if (c.kind == CellKind::MemRead || c.kind == CellKind::MemWrite) {
            R2U_ASSERT(c.mem >= 0 &&
                           c.mem < static_cast<MemId>(memories_.size()),
                       "mem port with bad memory id");
        }
    }
    topoOrder(); // fatal()s on combinational cycles
}

} // namespace r2u::nl
