#include "netlist/hash.hh"

namespace r2u::nl
{

void
Fnv64::bits(const Bits &b)
{
    u32(b.width());
    for (unsigned lo = 0; lo < b.width(); lo += 64) {
        unsigned w = b.width() - lo < 64 ? b.width() - lo : 64;
        u64(b.slice(lo, w).toUint64());
    }
}

namespace
{

void
hashCell(Fnv64 &h, const Cell &cell)
{
    h.u32(static_cast<uint32_t>(cell.kind));
    h.str(cell.name);
    h.u32(cell.width);
    h.u32(cell.lo);
    h.u32(static_cast<uint32_t>(cell.mem));
    h.u32(static_cast<uint32_t>(cell.inputs.size()));
    for (CellId in : cell.inputs)
        h.u32(static_cast<uint32_t>(in));
    h.bits(cell.value);
}

void
hashMemory(Fnv64 &h, const Memory &mem)
{
    h.str(mem.name);
    h.u32(mem.depth);
    h.u32(mem.width);
    h.u32(mem.abits);
    h.u32(static_cast<uint32_t>(mem.init.size()));
    for (const Bits &word : mem.init)
        h.bits(word);
    // Write ports in priority order; their cell content (addr/data/en
    // connectivity) is hashed by the caller's cell loop.
    h.u32(static_cast<uint32_t>(mem.writePorts.size()));
    for (CellId port : mem.writePorts)
        h.u32(static_cast<uint32_t>(port));
}

} // namespace

uint64_t
structuralHash(const Netlist &nl)
{
    Fnv64 h;
    h.u32(static_cast<uint32_t>(nl.numCells()));
    for (size_t c = 0; c < nl.numCells(); c++)
        hashCell(h, nl.cell(static_cast<CellId>(c)));
    h.u32(static_cast<uint32_t>(nl.numMemories()));
    for (size_t m = 0; m < nl.numMemories(); m++)
        hashMemory(h, nl.memory(static_cast<MemId>(m)));
    return h.value();
}

uint64_t
coneHash(const Netlist &nl, const Coi &coi)
{
    Fnv64 h;
    for (size_t c = 0; c < nl.numCells(); c++) {
        CellId id = static_cast<CellId>(c);
        if (!coi.hasCell(id))
            continue;
        h.u32(static_cast<uint32_t>(id));
        hashCell(h, nl.cell(id));
    }
    for (size_t m = 0; m < nl.numMemories(); m++) {
        MemId id = static_cast<MemId>(m);
        if (!coi.hasMem(id))
            continue;
        h.u32(static_cast<uint32_t>(id));
        hashMemory(h, nl.memory(id));
        // MemWrite cells have no output wire and are never members of
        // Coi::cells, but an in-cone array is driven by all of its
        // write ports — hash their content here so rewiring a write
        // port invalidates every cone that reads the array.
        for (CellId port : nl.memory(id).writePorts)
            hashCell(h, nl.cell(port));
    }
    return h.value();
}

uint64_t
coneHash(const Netlist &nl, const CoiSeeds &seeds)
{
    return coneHash(nl, computeCoi(nl, seeds));
}

} // namespace r2u::nl
