/**
 * @file
 * User-supplied design metadata for rtl2uspec (paper §4.2.1, §4.3.4).
 *
 * As in the paper, the designer identifies: the instruction fetch
 * register (IFR), the per-stage PC registers (PCR array, PCR[0] in the
 * IFR's stage), the instruction-memory PC (IM_PC), the binary
 * encodings of the instruction types to model, and — for each remote
 * resource — the request-response interface signals (transaction
 * type/address/data/core id, §4.3.4).
 */

#ifndef R2U_RTL2USPEC_METADATA_HH
#define R2U_RTL2USPEC_METADATA_HH

#include <cstdint>
#include <set>
#include <string>
#include <vector>

namespace r2u::rtl2uspec
{

/** Per-core metadata; one entry per core, index = core id. */
struct CoreMeta
{
    std::string prefix; ///< hierarchical prefix, e.g. "core_0."
    std::string ifr;    ///< instruction fetch register
    std::vector<std::string> pcrs; ///< PCR[0], PCR[1], ...
    std::string imPc;   ///< register feeding the imem address
    std::string reqEn;  ///< data-memory request enable output
    std::string reqWen; ///< data-memory write enable output
};

/** One instruction type to include in the synthesized model. */
struct InstrType
{
    std::string name; ///< "lw", "sw"
    uint32_t mask = 0, match = 0; ///< valid iff (word & mask) == match
    bool isRead = false;
    bool isWrite = false;
};

/** Request-response interface of a remote resource (§4.3.4). */
struct RemoteInterface
{
    std::string memName;  ///< the remote array, e.g. "dmem.mem"
    std::string reqValid; ///< boundary signals at the resource
    std::string reqWen;
    std::string reqAddr;
    std::string reqData;
    std::string reqCore;  ///< core-id tag (§5.1 design modification)
    std::string grant;    ///< per-core grant bus (bit c = core c)
    std::string respValid;
    std::string respCore;
    std::string respData;
    /** Request-pipeline registers inside the resource, in order. */
    std::vector<std::string> pipelineRegs;
    /** Roles of specific pipeline registers (for Req-Rec/Req-Proc). */
    std::string pipeValid;
    std::string pipeWen;
    std::string pipeCore;
};

struct DesignMetadata
{
    std::vector<CoreMeta> cores;
    std::vector<InstrType> instrs;
    RemoteInterface remote;

    /** State elements to exclude as arbitration bookkeeping. */
    std::set<std::string> exclude;

    /** BMC unrolling depth for HBI-hypothesis evaluation. */
    unsigned bound = 14;
    /** Progress SVAs assume the instruction issues by this frame. */
    unsigned issueByFrame = 5;
    /** Solver conflict budget per SVA (<0: unlimited). */
    int64_t conflictBudget = -1;

    /**
     * §6.2 optimization: evaluate one relaxed (instruction-agnostic)
     * ordering SVA per pipeline stage instead of one per instruction
     * pair. Disable for the ablation bench.
     */
    bool relaxPairs = true;

    /** §4.4 node merging into mgnode_k rows. Disable for ablation. */
    bool mergeNodes = true;
};

} // namespace r2u::rtl2uspec

#endif // R2U_RTL2USPEC_METADATA_HH
