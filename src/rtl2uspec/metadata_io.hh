/**
 * @file
 * Text format for rtl2uspec design metadata — the stand-alone
 * equivalent of the artifact's design.h. A metadata file is a list of
 * directives ('#' comments allowed):
 *
 *   bound 14
 *   issue_by 5
 *   exclude arbiter.rr_ptr
 *   core prefix=core_0. ifr=core_0.inst_DX im_pc=core_0.PC_IF \
 *        pcrs=core_0.PC_DX,core_0.PC_WB \
 *        req_en=core_0.dmem_en req_wen=core_0.dmem_wen
 *   instr name=sw mask=0x707f match=0x2023 kind=write
 *   instr name=lw mask=0x707f match=0x2003 kind=read
 *   remote mem=dmem.mem grant=grant pipe_valid=dmem.req_valid_q \
 *          pipe_wen=dmem.req_wen_q pipe_core=dmem.req_core_q \
 *          pipe_regs=dmem.req_valid_q,dmem.req_wen_q,...
 *
 * (Backslash continuations are not needed — each directive is one
 * line; the example is wrapped for readability.)
 */

#ifndef R2U_RTL2USPEC_METADATA_IO_HH
#define R2U_RTL2USPEC_METADATA_IO_HH

#include <string>

#include "rtl2uspec/metadata.hh"

namespace r2u::rtl2uspec
{

/** Parse metadata text; fatal() on malformed directives. */
DesignMetadata parseMetadata(const std::string &text);

/** Read and parse a metadata file. */
DesignMetadata loadMetadata(const std::string &path);

/** Render metadata back to the text format (round-trips). */
std::string printMetadata(const DesignMetadata &metadata);

} // namespace r2u::rtl2uspec

#endif // R2U_RTL2USPEC_METADATA_IO_HH
