/**
 * @file
 * The rtl2uspec synthesis procedure (paper §4): netlist -> full-design
 * DFG -> stage labeling -> intra-instruction HBI hypotheses (Fig. 4
 * SVA templates, evaluated by the BMC engine) -> per-instruction DFGs
 * -> inter-instruction HBI hypotheses (spatial / temporal / dataflow,
 * §4.3, with the Req-Snd/Req-Rec/Req-Proc decomposition for remote
 * state) -> node merging (§4.4) -> µspec model.
 */

#ifndef R2U_RTL2USPEC_SYNTHESIS_HH
#define R2U_RTL2USPEC_SYNTHESIS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "bmc/checker.hh"
#include "bmc/engine.hh"
#include "dfg/dfg.hh"
#include "rtl2uspec/metadata.hh"
#include "uspec/uspec.hh"
#include "verilog/elaborate.hh"

namespace r2u::rtl2uspec
{

/** One evaluated HBI hypothesis (SVA + verdict), Fig. 5 raw data. */
struct SvaRecord
{
    std::string name;
    std::string category; ///< "intra", "spatial", "temporal", "dataflow"
    std::string text;     ///< SVA-style rendering (Fig. 4 flavor)
    bmc::Verdict verdict = bmc::Verdict::Unknown;
    /** How the verdict came about (which budget/deadline, retries). */
    bmc::VerdictSource source = bmc::VerdictSource::Solve;
    double seconds = 0.0;
    uint64_t conflicts = 0;
    uint64_t propagations = 0;
    /** Escalated re-solves this SVA needed (engine retry policy). */
    unsigned retries = 0;
    /**
     * True when this SVA's Unknown verdict forced a conservative
     * (weaker-model) synthesis choice; degradeNote says which.
     */
    bool degraded = false;
    std::string degradeNote;
    unsigned hypotheses = 1; ///< element-granular hypotheses it covers
    bool global = false;     ///< involves remote/global state
    std::string trace;       ///< counterexample (when interesting)

    /** Verdict independently confirmed (replay / proof re-check). */
    bool validated = false;
    /** Verdict loaded from a resume journal instead of solved. */
    bool fromJournal = false;
    /** Verdict replayed from the cross-run verdict cache. */
    bool fromCache = false;

    /** Proof engine that produced the verdict ("bmc", "kind", "pdr"). */
    std::string engine = "bmc";
    /** A PDR/k-induction challenger raced the BMC solve. */
    bool engineRaced = false;
    /** Proven at *every* bound (PDR fixpoint / closed induction). */
    bool unbounded = false;

    /** Solver CNF footprint when this query finished (COI-sliced
     *  unless fullUnroll) and what the query alone added. */
    size_t cnfVars = 0, cnfClauses = 0;
    size_t cnfVarsAdded = 0, cnfClausesAdded = 0;
    /** Static cone-of-influence size (cells) of the declared seeds. */
    size_t coiCells = 0;
};

struct CategoryStats
{
    int svas = 0;
    double seconds = 0.0;
    int hypLocal = 0, hypGlobal = 0;
    int hbiLocal = 0, hbiGlobal = 0;
    /** Per-query CNF totals summed over the category's SVAs. */
    uint64_t cnfVarsSum = 0, cnfClausesSum = 0;
};

/** Knobs for how the synthesis procedure runs (not what it computes). */
struct SynthesisOptions
{
    /**
     * Worker count for SVA evaluation (the paper's proof-farm
     * dimension): 0 picks std::thread::hardware_concurrency(); 1 is
     * the classic sequential path (fresh solver per SVA); >= 2 runs
     * the parallel engine with per-worker incremental solver
     * contexts. Verdicts and the emitted model are identical either
     * way.
     */
    unsigned jobs = 0;
    /**
     * Disable cone-of-influence slicing: eagerly bit-blast the whole
     * design at every frame of every unroll context (the pre-slicing
     * behavior, exposed as --full-unroll). Verdicts and the emitted
     * model are identical; only CNF sizes and runtime differ.
     */
    bool fullUnroll = false;

    /**
     * Per-SVA solver conflict budget; kInheritBudget defers to the
     * design metadata's conflictBudget, <0 is unlimited. Exhaustion
     * yields Unknown verdicts that degrade the model conservatively.
     */
    int64_t conflictBudget = kInheritBudget;
    /** Per-SVA solver propagation budget (<0: unlimited). */
    int64_t propagationBudget = -1;
    /** Per-SVA wall-clock deadline in seconds (<0: none). */
    double queryTimeoutSeconds = -1.0;
    /** Whole-run wall-clock deadline in seconds (<0: none). */
    double totalTimeoutSeconds = -1.0;
    /**
     * Retry-with-escalating-budget factor (>1 enables; see
     * bmc::EngineOptions::retryEscalation).
     */
    double retryEscalation = 0.0;
    /** Maximum escalated retries per SVA. */
    unsigned maxRetries = 3;

    /**
     * Race each SVA query across portfolioRacers diversified solver
     * configurations; first definitive verdict wins and interrupts
     * the rest (--portfolio). Verdicts and the emitted model are
     * identical to the single-config path. Ignored on jobs == 1.
     */
    bool portfolio = false;
    /** Solver configs per race (incumbent + N-1 challengers). */
    unsigned portfolioRacers = 3;
    /**
     * Proof-engine selection (--engine {bmc,kind,pdr,race}). The
     * default races IC3/PDR and k-induction challengers against the
     * incremental BMC solve of every frame-local query; the first
     * definitive verdict wins and interrupts the others. Verdicts —
     * and therefore the emitted model — are identical across engines
     * at the metadata bound; race/pdr/kind can additionally return
     * *unbounded* proofs (recorded in the report and reusable at any
     * bound via the verdict cache). Queries whose property is not
     * frame-local always fall back to plain BMC.
     */
    bmc::EngineChoice engine = bmc::EngineChoice::Race;
    /**
     * Exchange low-LBD learnt clauses between portfolio racers at
     * restart boundaries (--share-clauses / --no-share-clauses).
     */
    bool shareClauses = true;
    /**
     * CNF pre/inprocessing: bounded variable elimination,
     * subsumption and self-subsuming resolution on sliced query
     * CNFs, repeated at restart boundaries (--no-inprocess turns it
     * off). Models are reconstructed to full assignments, so
     * counterexample replay sees every original variable.
     */
    bool inprocess = true;

    /**
     * Trust-but-verify verdict validation (bmc::ValidateMode): the
     * default replays every counterexample and spot-checks every
     * validateSampleN-th proof in a fresh solver context.
     */
    bmc::ValidateMode validate = bmc::ValidateMode::Sample;
    unsigned validateSampleN = 8;
    /** Crash-safe run journal path ("" disables). */
    std::string journalPath;
    /** Resume from an existing journal instead of truncating it. */
    bool resumeJournal = false;
    /**
     * Cross-run content-addressed verdict cache directory (--cache;
     * "" disables). Each SVA query is keyed by a hash of its COI
     * slice, property encoding, and bound, so re-synthesis of the
     * same or a near-identical design re-solves only the queries
     * whose content actually changed. Deliberately NOT keyed by
     * --jobs or solver budgets: those change how fast a verdict is
     * found, never what the verdict is.
     */
    std::string cacheDir;
    /**
     * Shared, caller-owned verdict cache (the service's cross-request
     * store). Overrides cacheDir when set; must outlive the run. The
     * synthesizer neither owns nor closes it, so many concurrent and
     * sequential requests can warm the same in-memory instance.
     */
    bmc::VerdictCache *cache = nullptr;
    /**
     * Directory of per-configuration resume journals (the service's
     * crash-recovery state): the run journals into
     * <journalDir>/<configHash>.r2uj with resume semantics and flock
     * single-writer protection; a lock conflict degrades to running
     * journal-less with a warning. Ignored when journalPath is set.
     */
    std::string journalDir;
    /** Dump each refutation's replayed trace as VCD ("" disables). */
    std::string cexVcdDir;
    /** Fault-injection test seam, forwarded to the engine. */
    std::function<void(const bmc::Query &, bmc::CheckResult &,
                       bmc::SolveStage)>
        faultHook;
    /**
     * Engine lifecycle observer: called with the live engine right
     * after it is constructed and with nullptr before it is
     * destroyed. Lets a supervisor (the service watchdog) fire
     * Engine::interrupt() on a run it does not own without racing the
     * engine's destruction.
     */
    std::function<void(bmc::Engine *)> engineHook;

    static constexpr int64_t kInheritBudget = INT64_MIN;
};

struct SynthesisResult
{
    uspec::Model model;
    std::vector<SvaRecord> svas;
    std::map<std::string, CategoryStats> stats;

    /** Resolved SVA-evaluation worker count. */
    unsigned jobs = 1;
    /** True when COI slicing was disabled for this run. */
    bool fullUnroll = false;
    /** Mean per-query solver CNF size across all SVAs. */
    double meanCnfVars = 0.0;
    double meanCnfClauses = 0.0;
    /**
     * Transition-relation unrolls built: one per SVA on the
     * sequential path, one per worker per bound on the parallel path.
     */
    uint64_t unrollContexts = 0;
    /**
     * Of those, contexts warm-started by cloning the first worker's
     * bit-blasted clause database instead of re-unrolling the design.
     */
    uint64_t contextsSeeded = 0;

    /** Design bugs found (attribution checks refuted, paper §6.1). */
    std::vector<std::string> bugs;

    /** SVAs whose final verdict stayed Unknown. */
    uint64_t unknownSvas = 0;

    // --- trust-but-verify validation accounting (run level) ---
    /** Active validation mode ("off", "replay", "sample", "full"). */
    std::string validateMode = "off";
    uint64_t replays = 0;
    uint64_t proofRechecks = 0;
    uint64_t recheckInconclusive = 0;
    uint64_t validationMismatches = 0;
    /** Verdicts degraded to Unknown by the validation layer. */
    uint64_t validationFailures = 0;
    /** SVAs answered from the resume journal without solving. */
    uint64_t journalHits = 0;
    uint64_t journalAppends = 0;

    // --- cross-run verdict cache accounting (run level) ---
    /** True when a --cache directory was in use this run. */
    bool cacheEnabled = false;
    /** SVAs answered from the verdict cache without solving. */
    uint64_t cacheHits = 0;
    /** Hashed SVA queries the cache could not answer. */
    uint64_t cacheMisses = 0;
    /** Misses caused by a content change to a previously cached query
     *  (same SVA name + bound, different cone/property hash). */
    uint64_t cacheInvalidations = 0;
    /** Verdicts durably appended to the cache this run. */
    uint64_t cacheAppends = 0;

    // --- portfolio + CNF simplification accounting (run level) ---
    /** True when queries raced diversified solver configs. */
    bool portfolio = false;
    uint64_t portfolioRaces = 0;
    /** Races a challenger config won (vs. the incumbent). */
    uint64_t portfolioChallengerWins = 0;

    // --- proof-engine race accounting (run level) ---
    /** Resolved --engine mode ("bmc", "kind", "pdr", "race"). */
    std::string engineMode = "race";
    /** Queries where PDR + k-induction raced the BMC solve. */
    uint64_t engineRaces = 0;
    /** Definite verdicts per winning engine (solved this run). */
    uint64_t bmcWins = 0;
    uint64_t kindWins = 0;
    uint64_t pdrWins = 0;
    /** Proofs valid at every bound (PDR fixpoint / closed induction). */
    uint64_t unboundedProofs = 0;
    /** PDR work totals across winning and completed PDR runs. */
    uint64_t pdrFrames = 0;
    uint64_t pdrObligations = 0;
    /** Learnt clauses published to / imported from the shared pool. */
    uint64_t sharedExported = 0;
    uint64_t sharedImported = 0;
    /** Preprocessing totals over portfolio challenger CNFs. */
    uint64_t preprocessVarsEliminated = 0;
    uint64_t preprocessClausesRemoved = 0;
    /** Inprocessing passes inside incremental solver contexts. */
    uint64_t inprocessRuns = 0;
    uint64_t inprocessClausesRemoved = 0;
    double replaySeconds = 0.0;
    double recheckSeconds = 0.0;
    double validateSeconds = 0.0;
    /**
     * Human-readable record of every conservative degradation an
     * Unknown verdict forced (one entry per degraded SVA; also
     * emitted as `%` notes in the printed model).
     */
    std::vector<std::string> degraded;

    /** Per-instruction node membership (element names). */
    std::map<std::string, std::vector<std::string>> instrNodes;

    /** DOT renderings: full-design DFG and per-instruction DFGs. */
    std::string fullDfgDot;
    std::map<std::string, std::string> instrDfgDots;

    double staticSeconds = 0.0; ///< parsing + DFG analysis
    double proofSeconds = 0.0;  ///< SVA evaluation (the JasperGold part)
    double postSeconds = 0.0;   ///< merging + model emission
    double totalSeconds = 0.0;

    /** Fig. 5-style table. */
    std::string report() const;

    /**
     * Structured run report (JSON): per-SVA verdict, verdict source,
     * retries, CNF size, solve time; plus run-level unknown/degraded
     * accounting. Schema documented in EXPERIMENTS.md.
     */
    std::string jsonReport() const;
};

/** Run the full synthesis procedure. */
SynthesisResult synthesize(const vlog::ElabResult &design,
                           const DesignMetadata &metadata,
                           const SynthesisOptions &options = {});

} // namespace r2u::rtl2uspec

#endif // R2U_RTL2USPEC_SYNTHESIS_HH
