#include "rtl2uspec/metadata_io.hh"

#include <map>

#include "common/logging.hh"
#include "common/strutil.hh"

namespace r2u::rtl2uspec
{

namespace
{

/** Split "k1=v1 k2=v2" tokens into a map; fatal on duplicates. */
std::map<std::string, std::string>
kvPairs(const std::vector<std::string> &toks, size_t from,
        const std::string &line)
{
    std::map<std::string, std::string> kv;
    for (size_t i = from; i < toks.size(); i++) {
        size_t eq = toks[i].find('=');
        if (eq == std::string::npos)
            fatal("metadata: expected key=value, got '%s' in '%s'",
                  toks[i].c_str(), line.c_str());
        std::string key = toks[i].substr(0, eq);
        if (!kv.emplace(key, toks[i].substr(eq + 1)).second)
            fatal("metadata: duplicate key '%s' in '%s'", key.c_str(),
                  line.c_str());
    }
    return kv;
}

std::string
need(const std::map<std::string, std::string> &kv,
     const std::string &key, const std::string &line)
{
    auto it = kv.find(key);
    if (it == kv.end())
        fatal("metadata: missing '%s=' in '%s'", key.c_str(),
              line.c_str());
    return it->second;
}

uint32_t
parseHex(const std::string &s, const std::string &line)
{
    try {
        return static_cast<uint32_t>(std::stoul(s, nullptr, 0));
    } catch (...) {
        fatal("metadata: bad number '%s' in '%s'", s.c_str(),
              line.c_str());
    }
}

} // namespace

DesignMetadata
parseMetadata(const std::string &text)
{
    DesignMetadata md;
    for (std::string line : split(text, '\n')) {
        size_t c = line.find('#');
        if (c != std::string::npos)
            line = line.substr(0, c);
        line = trim(line);
        if (line.empty())
            continue;
        auto toks = splitWs(line);
        const std::string &kind = toks[0];

        if (kind == "bound") {
            md.bound = parseHex(toks.at(1), line);
        } else if (kind == "issue_by") {
            md.issueByFrame = parseHex(toks.at(1), line);
        } else if (kind == "conflict_budget") {
            md.conflictBudget =
                static_cast<int64_t>(std::stoll(toks.at(1)));
        } else if (kind == "no_relax") {
            md.relaxPairs = false;
        } else if (kind == "no_merge") {
            md.mergeNodes = false;
        } else if (kind == "exclude") {
            for (size_t i = 1; i < toks.size(); i++)
                md.exclude.insert(toks[i]);
        } else if (kind == "core") {
            auto kv = kvPairs(toks, 1, line);
            CoreMeta core;
            core.prefix = need(kv, "prefix", line);
            core.ifr = need(kv, "ifr", line);
            core.imPc = need(kv, "im_pc", line);
            core.reqEn = need(kv, "req_en", line);
            core.reqWen = need(kv, "req_wen", line);
            for (const auto &p : split(need(kv, "pcrs", line), ','))
                if (!p.empty())
                    core.pcrs.push_back(p);
            if (core.pcrs.empty())
                fatal("metadata: core needs at least one PCR: '%s'",
                      line.c_str());
            md.cores.push_back(std::move(core));
        } else if (kind == "instr") {
            auto kv = kvPairs(toks, 1, line);
            InstrType op;
            op.name = need(kv, "name", line);
            op.mask = parseHex(need(kv, "mask", line), line);
            op.match = parseHex(need(kv, "match", line), line);
            std::string k = need(kv, "kind", line);
            if (k == "read")
                op.isRead = true;
            else if (k == "write")
                op.isWrite = true;
            else if (k != "other")
                fatal("metadata: instr kind must be read/write/other");
            md.instrs.push_back(std::move(op));
        } else if (kind == "remote") {
            auto kv = kvPairs(toks, 1, line);
            md.remote.memName = need(kv, "mem", line);
            md.remote.grant = need(kv, "grant", line);
            md.remote.pipeValid = need(kv, "pipe_valid", line);
            md.remote.pipeWen = need(kv, "pipe_wen", line);
            md.remote.pipeCore = need(kv, "pipe_core", line);
            for (const auto &r :
                 split(need(kv, "pipe_regs", line), ','))
                if (!r.empty())
                    md.remote.pipelineRegs.push_back(r);
        } else {
            fatal("metadata: unknown directive '%s'", kind.c_str());
        }
    }
    if (md.cores.empty())
        fatal("metadata: at least one 'core' directive is required");
    if (md.instrs.empty())
        fatal("metadata: at least one 'instr' directive is required");
    return md;
}

DesignMetadata
loadMetadata(const std::string &path)
{
    return parseMetadata(readFile(path));
}

std::string
printMetadata(const DesignMetadata &md)
{
    std::string out;
    out += strfmt("bound %u\n", md.bound);
    out += strfmt("issue_by %u\n", md.issueByFrame);
    if (md.conflictBudget >= 0)
        out += strfmt("conflict_budget %lld\n",
                      static_cast<long long>(md.conflictBudget));
    if (!md.relaxPairs)
        out += "no_relax\n";
    if (!md.mergeNodes)
        out += "no_merge\n";
    if (!md.exclude.empty()) {
        out += "exclude";
        for (const auto &e : md.exclude)
            out += " " + e;
        out += "\n";
    }
    for (const auto &core : md.cores) {
        out += "core prefix=" + core.prefix + " ifr=" + core.ifr +
               " im_pc=" + core.imPc + " pcrs=";
        for (size_t i = 0; i < core.pcrs.size(); i++)
            out += std::string(i ? "," : "") + core.pcrs[i];
        out += " req_en=" + core.reqEn + " req_wen=" + core.reqWen +
               "\n";
    }
    for (const auto &op : md.instrs) {
        out += strfmt("instr name=%s mask=0x%x match=0x%x kind=%s\n",
                      op.name.c_str(), op.mask, op.match,
                      op.isWrite ? "write"
                                 : (op.isRead ? "read" : "other"));
    }
    if (!md.remote.memName.empty()) {
        out += "remote mem=" + md.remote.memName +
               " grant=" + md.remote.grant +
               " pipe_valid=" + md.remote.pipeValid +
               " pipe_wen=" + md.remote.pipeWen +
               " pipe_core=" + md.remote.pipeCore + " pipe_regs=";
        for (size_t i = 0; i < md.remote.pipelineRegs.size(); i++)
            out += std::string(i ? "," : "") +
                   md.remote.pipelineRegs[i];
        out += "\n";
    }
    return out;
}

} // namespace r2u::rtl2uspec
