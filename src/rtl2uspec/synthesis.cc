#include "rtl2uspec/synthesis.hh"

#include <algorithm>
#include <filesystem>

#include "bmc/engine.hh"
#include "common/logging.hh"
#include "common/strutil.hh"
#include "common/timer.hh"
#include "netlist/hash.hh"
#include "sva/monitors.hh"

namespace r2u::rtl2uspec
{

using bmc::CheckResult;
using bmc::PropCtx;
using bmc::Verdict;
using dfg::NodeId;
using sat::Lit;
using sva::EventVec;

namespace
{

enum class ElemKind { LocalReg, LocalArray, RemoteReg, RemoteArray };

struct Elem
{
    NodeId node = dfg::kNoNode;
    ElemKind kind = ElemKind::LocalReg;
    int stage = -1;
    std::string name;
};

class Synthesizer
{
  public:
    Synthesizer(const vlog::ElabResult &design, const DesignMetadata &md,
                const SynthesisOptions &opts)
        : design_(design), md_(md), nl_(*design.netlist),
          full_unroll_(opts.fullUnroll)
    {
        R2U_ASSERT(!md.cores.empty() && !md.instrs.empty(),
                   "metadata needs cores and instruction types");
        base_seeds_ = buildBaseSeeds();
        netlist_hash_ = nl::structuralHash(nl_);
        property_env_hash_ = propertyEnvHash();
        bmc::EngineOptions eopts;
        eopts.jobs = opts.jobs;
        eopts.conflictBudget =
            opts.conflictBudget == SynthesisOptions::kInheritBudget
                ? md_.conflictBudget
                : opts.conflictBudget;
        eopts.propagationBudget = opts.propagationBudget;
        eopts.querySeconds = opts.queryTimeoutSeconds;
        eopts.totalSeconds = opts.totalTimeoutSeconds;
        eopts.retryEscalation = opts.retryEscalation;
        eopts.maxRetries = opts.maxRetries;
        eopts.portfolio = opts.portfolio;
        eopts.portfolioRacers = opts.portfolioRacers;
        eopts.shareClauses = opts.shareClauses;
        eopts.inprocess = opts.inprocess;
        eopts.engine = opts.engine;
        validate_mode_ = bmc::validateModeName(opts.validate);
        eopts.validate = opts.validate;
        eopts.validateSampleN = opts.validateSampleN;
        eopts.cexVcdDir = opts.cexVcdDir;
        eopts.faultHook = opts.faultHook;
        if (!opts.journalPath.empty()) {
            journal_ = std::make_unique<bmc::Journal>();
            journal_->open(opts.journalPath, configHash(),
                           opts.resumeJournal);
            if (opts.resumeJournal && journal_->numLoaded() > 0)
                inform("rtl2uspec: resuming from journal %s "
                       "(%zu validated verdicts)",
                       opts.journalPath.c_str(), journal_->numLoaded());
            eopts.journal = journal_.get();
        } else if (!opts.journalDir.empty()) {
            // Service mode: one always-resumed journal per
            // verdict-relevant configuration, so a daemon restarted
            // after kill -9 replays everything any earlier request
            // made durable for this design/bound/unroll combination.
            std::error_code ec;
            std::filesystem::create_directories(opts.journalDir, ec);
            if (ec)
                fatal("rtl2uspec: cannot create journal dir %s: %s",
                      opts.journalDir.c_str(), ec.message().c_str());
            std::string path =
                (std::filesystem::path(opts.journalDir) /
                 strfmt("%016llx.r2uj",
                        static_cast<unsigned long long>(configHash())))
                    .string();
            journal_ = std::make_unique<bmc::Journal>();
            if (journal_->openShared(path, configHash())) {
                if (journal_->numLoaded() > 0)
                    inform("rtl2uspec: resuming from journal %s "
                           "(%zu validated verdicts)",
                           path.c_str(), journal_->numLoaded());
                eopts.journal = journal_.get();
            } else {
                journal_.reset(); // lock conflict: run journal-less
            }
        }
        if (opts.cache) {
            out_.cacheEnabled = true;
            eopts.cache = opts.cache;
        } else if (!opts.cacheDir.empty()) {
            cache_ = std::make_unique<bmc::VerdictCache>();
            cache_->open(opts.cacheDir);
            out_.cacheEnabled = true;
            if (cache_->numLoaded() > 0)
                inform("rtl2uspec: verdict cache %s: %zu cached "
                       "verdict(s) loaded",
                       cache_->filePath().c_str(), cache_->numLoaded());
            eopts.cache = cache_.get();
        }
        engine_ = std::make_unique<bmc::Engine>(
            nl_, design_.signalMap, unrollOptions(), md_.bound, eopts);
        engine_hook_ = opts.engineHook;
        if (engine_hook_)
            engine_hook_(engine_.get());
    }

    ~Synthesizer()
    {
        // Unpublish the engine before any member is torn down so a
        // supervisor can never interrupt() a dead engine.
        if (engine_hook_)
            engine_hook_(nullptr);
    }

    SynthesisResult
    run()
    {
        Timer total;
        Timer phase;
        buildDfgAndStages();
        classifyElements();
        out_.staticSeconds = phase.seconds();

        phase.reset();
        intraMembership();
        progressChecks();
        attributionChecks();
        interInstruction();
        out_.proofSeconds = phase.seconds();
        out_.jobs = engine_->jobs();
        out_.unrollContexts = engine_->stats().contexts;
        out_.contextsSeeded = engine_->stats().contextsSeeded;
        out_.fullUnroll = full_unroll_;
        const bmc::EngineStats &estats = engine_->stats();
        out_.validateMode = validate_mode_;
        out_.replays = estats.replays;
        out_.proofRechecks = estats.proofRechecks;
        out_.recheckInconclusive = estats.recheckInconclusive;
        out_.validationMismatches = estats.validationMismatches;
        out_.validationFailures = estats.validationFailures;
        out_.journalHits = estats.journalHits;
        out_.journalAppends = estats.journalAppends;
        out_.cacheHits = estats.cacheHits;
        out_.cacheMisses = estats.cacheMisses;
        out_.cacheInvalidations = estats.cacheInvalidations;
        out_.cacheAppends = estats.cacheAppends;
        out_.replaySeconds = estats.replaySeconds;
        out_.recheckSeconds = estats.recheckSeconds;
        out_.validateSeconds = estats.validateSeconds;
        out_.portfolio = estats.portfolioRaces > 0;
        out_.portfolioRaces = estats.portfolioRaces;
        out_.portfolioChallengerWins = estats.portfolioChallengerWins;
        out_.engineMode = bmc::engineChoiceName(engine_->options().engine);
        out_.engineRaces = estats.engineRaces;
        out_.bmcWins = estats.bmcWins;
        out_.kindWins = estats.kindWins;
        out_.pdrWins = estats.pdrWins;
        out_.unboundedProofs = estats.unboundedProofs;
        out_.pdrFrames = estats.pdrFrames;
        out_.pdrObligations = estats.pdrObligations;
        if (estats.engineRaces > 0)
            inform("rtl2uspec: engine race: %zu race(s); wins "
                   "bmc=%zu kind=%zu pdr=%zu; %zu unbounded proof(s)",
                   static_cast<size_t>(estats.engineRaces),
                   static_cast<size_t>(estats.bmcWins),
                   static_cast<size_t>(estats.kindWins),
                   static_cast<size_t>(estats.pdrWins),
                   static_cast<size_t>(estats.unboundedProofs));
        out_.sharedExported = estats.sharedExported;
        out_.sharedImported = estats.sharedImported;
        out_.preprocessVarsEliminated = estats.preprocessVarsEliminated;
        out_.preprocessClausesRemoved = estats.preprocessClausesRemoved;
        out_.inprocessRuns = estats.inprocessRuns;
        out_.inprocessClausesRemoved = estats.inprocessClausesRemoved;
        if (estats.portfolioRaces > 0)
            inform("rtl2uspec: portfolio: %zu race(s), %zu challenger "
                   "win(s), %zu clause(s) shared",
                   static_cast<size_t>(estats.portfolioRaces),
                   static_cast<size_t>(estats.portfolioChallengerWins),
                   static_cast<size_t>(estats.sharedImported));
        if (out_.cacheEnabled)
            inform("rtl2uspec: cache: %zu hit(s), %zu miss(es) "
                   "(%zu invalidated), %zu verdict(s) appended",
                   static_cast<size_t>(estats.cacheHits),
                   static_cast<size_t>(estats.cacheMisses),
                   static_cast<size_t>(estats.cacheInvalidations),
                   static_cast<size_t>(estats.cacheAppends));
        if (estats.replays > 0 || estats.proofRechecks > 0 ||
            estats.journalHits > 0)
            inform("rtl2uspec: validation (%s): %zu replay(s), "
                   "%zu proof re-check(s), %zu mismatch(es), "
                   "%zu journal hit(s), %.2fs",
                   validate_mode_.c_str(),
                   static_cast<size_t>(estats.replays),
                   static_cast<size_t>(estats.proofRechecks),
                   static_cast<size_t>(estats.validationMismatches),
                   static_cast<size_t>(estats.journalHits),
                   estats.validateSeconds);
        if (!out_.svas.empty()) {
            double vars = 0, clauses = 0;
            for (const SvaRecord &rec : out_.svas) {
                vars += static_cast<double>(rec.cnfVars);
                clauses += static_cast<double>(rec.cnfClauses);
            }
            out_.meanCnfVars = vars / out_.svas.size();
            out_.meanCnfClauses = clauses / out_.svas.size();
        }
        inform("rtl2uspec: %zu SVAs on %u worker(s), "
               "%zu transition-relation unroll(s) (%zu warm-seeded), "
               "%zu steal(s), %.0f CNF vars/query mean (%s)",
               out_.svas.size(), engine_->jobs(),
               static_cast<size_t>(engine_->stats().contexts),
               static_cast<size_t>(engine_->stats().contextsSeeded),
               static_cast<size_t>(engine_->stats().steals),
               out_.meanCnfVars,
               full_unroll_ ? "full unroll" : "COI-sliced");

        phase.reset();
        buildInstrDfgs();
        mergeAndEmit();
        out_.postSeconds = phase.seconds();
        out_.totalSeconds = total.seconds();
        tallyStats();
        return std::move(out_);
    }

  private:
    // ------------------------------------------------------------------
    // Static analysis (§4.1, §4.2.2).
    // ------------------------------------------------------------------
    void
    buildDfgAndStages()
    {
        dfg_ = dfg::FullDesignDfg::build(nl_);
        out_.fullDfgDot = dfg_.toDot();

        const CoreMeta &core = md_.cores[0];
        NodeId im_pc = nodeOfSignal(core.imPc);
        ifr_node_ = nodeOfSignal(core.ifr);
        if (im_pc == dfg::kNoNode || ifr_node_ == dfg::kNoNode)
            fatal("IM_PC or IFR metadata does not name a state element");
        labels_ = dfg::labelStages(dfg_, im_pc, ifr_node_);
        inform("rtl2uspec: %zu state elements, max stage %d",
               dfg_.numNodes(), labels_.maxStage);
    }

    NodeId
    nodeOfSignal(const std::string &name) const
    {
        nl::CellId cell = nl_.findByName(name);
        if (cell != nl::kNoCell) {
            NodeId n = dfg_.nodeOfReg(cell);
            if (n != dfg::kNoNode)
                return n;
        }
        nl::MemId mem = nl_.findMemoryByName(name);
        if (mem >= 0)
            return dfg_.nodeOfMem(mem);
        return dfg::kNoNode;
    }

    bool
    isPcOrExcluded(const std::string &name) const
    {
        for (const CoreMeta &core : md_.cores) {
            if (name == core.imPc || name == core.ifr)
                return true;
            for (const auto &pcr : core.pcrs)
                if (name == pcr)
                    return true;
        }
        return md_.exclude.count(name) > 0;
    }

    void
    classifyElements()
    {
        const CoreMeta &core0 = md_.cores[0];
        for (size_t n = 0; n < dfg_.numNodes(); n++) {
            NodeId id = static_cast<NodeId>(n);
            if (!labels_.included(id))
                continue;
            const dfg::Node &node = dfg_.node(id);
            if (id == ifr_node_ || isPcOrExcluded(node.name))
                continue;

            Elem e;
            e.node = id;
            e.stage = labels_.stage[id];
            e.name = node.name;

            if (node.name == md_.remote.memName) {
                e.kind = ElemKind::RemoteArray;
            } else if (std::find(md_.remote.pipelineRegs.begin(),
                                 md_.remote.pipelineRegs.end(),
                                 node.name) !=
                       md_.remote.pipelineRegs.end()) {
                e.kind = ElemKind::RemoteReg;
            } else if (startsWith(node.name, core0.prefix)) {
                e.kind = node.isMem ? ElemKind::LocalArray
                                    : ElemKind::LocalReg;
            } else {
                // Another core's replica, or unclassified global state.
                bool other_core = false;
                for (size_t c = 1; c < md_.cores.size(); c++)
                    other_core |=
                        startsWith(node.name, md_.cores[c].prefix);
                if (!other_core)
                    warn("rtl2uspec: skipping unclassified global "
                         "state element '%s'", node.name.c_str());
                continue;
            }
            elems_.push_back(std::move(e));
        }
    }

    // ------------------------------------------------------------------
    // SVA plumbing.
    // ------------------------------------------------------------------
    bmc::Unroller::Options
    unrollOptions() const
    {
        bmc::Unroller::Options opts;
        opts.fullUnroll = full_unroll_;
        for (size_t m = 0; m < nl_.numMemories(); m++)
            opts.symbolicMems.insert(static_cast<nl::MemId>(m));
        return opts;
    }

    /**
     * Binds a run journal to the verdict-relevant configuration: the
     * structural netlist hash (every cell's kind, width, connectivity,
     * init value, and every memory's geometry + contents — not just
     * element counts: a rewired design with identical counts must not
     * resume another design's verdicts), the unroll bound, and the
     * unroll mode. Deliberately excludes --jobs and solver budgets — a
     * journaled verdict is definite and validated, so it holds at any
     * parallelism or budget. Also excludes the metadata/property
     * environment: an edited SVA changes its per-query content hash
     * (and therefore its journal key), which turns into a plain miss
     * instead of rejecting the whole journal.
     */
    uint64_t
    configHash() const
    {
        nl::Fnv64 h;
        h.u64(netlist_hash_);
        h.u32(md_.bound);
        h.byte(full_unroll_ ? 1 : 0);
        return h.value();
    }

    /**
     * Hash of everything besides the netlist cone that determines what
     * an SVA property *means*: the per-core signal roles, instruction
     * encodings (mask/match feed assumeEncoding inside the property
     * closures — they never appear in the rendered SVA text), the
     * remote-interface signal roles, the exclusion set, and the
     * issue-by frame. A change to any of these re-keys every query.
     * Excludes conflictBudget / relaxPairs / mergeNodes: budgets only
     * change how long a verdict takes, and the relax/merge switches
     * change which queries are generated (visible in their names and
     * text), never what a given query means.
     */
    uint64_t
    propertyEnvHash() const
    {
        nl::Fnv64 h;
        h.u32(static_cast<uint32_t>(md_.cores.size()));
        for (const CoreMeta &core : md_.cores) {
            h.str(core.prefix);
            h.str(core.ifr);
            h.u32(static_cast<uint32_t>(core.pcrs.size()));
            for (const auto &p : core.pcrs)
                h.str(p);
            h.str(core.imPc);
            h.str(core.reqEn);
            h.str(core.reqWen);
        }
        h.u32(static_cast<uint32_t>(md_.instrs.size()));
        for (const InstrType &it : md_.instrs) {
            h.str(it.name);
            h.u32(it.mask);
            h.u32(it.match);
            h.byte(it.isRead ? 1 : 0);
            h.byte(it.isWrite ? 1 : 0);
        }
        h.str(md_.remote.memName);
        h.str(md_.remote.reqValid);
        h.str(md_.remote.reqWen);
        h.str(md_.remote.reqAddr);
        h.str(md_.remote.reqData);
        h.str(md_.remote.reqCore);
        h.str(md_.remote.grant);
        h.str(md_.remote.respValid);
        h.str(md_.remote.respCore);
        h.str(md_.remote.respData);
        h.u32(static_cast<uint32_t>(md_.remote.pipelineRegs.size()));
        for (const auto &r : md_.remote.pipelineRegs)
            h.str(r);
        h.str(md_.remote.pipeValid);
        h.str(md_.remote.pipeWen);
        h.str(md_.remote.pipeCore);
        h.u32(static_cast<uint32_t>(md_.exclude.size()));
        for (const auto &e : md_.exclude) // std::set: sorted, stable
            h.str(e);
        h.u32(md_.issueByFrame);
        return h.value();
    }

    // ------------------------------------------------------------------
    // COI seed declaration: the state elements each SVA reads, used
    // for per-query cone-size reporting (the slicing itself happens
    // automatically through demand-driven unrolling).
    // ------------------------------------------------------------------
    void
    addSeed(nl::CoiSeeds &s, const std::string &name) const
    {
        nl::CellId cell = nl_.findByName(name);
        if (cell != nl::kNoCell) {
            s.cells.push_back(cell);
            return;
        }
        nl::MemId mem = nl_.findMemoryByName(name);
        if (mem >= 0)
            s.mems.push_back(mem);
    }

    /** State every Fig. 4 template instance reads: reset, IFR + PCRs
     *  (occupancy/binding), the request interface, and the grant. */
    nl::CoiSeeds
    buildBaseSeeds() const
    {
        nl::CoiSeeds s;
        const CoreMeta &core = md_.cores[0];
        addSeed(s, core.ifr);
        for (const auto &p : core.pcrs)
            addSeed(s, p);
        addSeed(s, core.reqEn);
        addSeed(s, core.reqWen);
        addSeed(s, md_.remote.grant);
        return s;
    }

    /** Write-enable inputs of an array's ports — what
     *  arrayWriteEvents() actually demands (not the array itself). */
    void
    seedArrayWriteEns(nl::CoiSeeds &s, nl::MemId mem) const
    {
        for (nl::CellId port : nl_.memory(mem).writePorts)
            s.cells.push_back(nl_.cell(port).inputs[2]);
    }

    nl::CoiSeeds
    elemSeeds(const Elem &e) const
    {
        nl::CoiSeeds s;
        if (e.kind == ElemKind::LocalArray ||
            e.kind == ElemKind::RemoteArray)
            seedArrayWriteEns(s, dfg_.node(e.node).mem);
        else
            s.cells.push_back(dfg_.node(e.node).reg);
        return s;
    }

    /** Common per-SVA setup; returns the record index. */
    size_t
    startSva(const std::string &name, const std::string &category,
             const std::string &text, unsigned hypotheses, bool global)
    {
        SvaRecord rec;
        rec.name = name;
        rec.category = category;
        rec.text = text;
        rec.hypotheses = hypotheses;
        rec.global = global;
        out_.svas.push_back(std::move(rec));
        return out_.svas.size() - 1;
    }

    /**
     * Enqueue an SVA's property on the engine. The verdict lands in
     * out_.svas[idx] at the next flushSvas(). Deferred properties run
     * on worker threads: they must only read state that is stable for
     * the whole batch (md_, elems_, dfg_, nl_) and must not capture
     * short-lived locals by reference.
     */
    void
    deferSva(size_t idx, bmc::PropertyFn prop, nl::CoiSeeds extra = {},
             bmc::FramePropertyFn frame_prop = {})
    {
        bmc::Query q;
        q.name = out_.svas[idx].name;
        q.prop = std::move(prop);
        // Strictly frame-local form of the same property (prop must be
        // the OR of frame_prop over every frame of the bound): enables
        // the IC3/PDR + k-induction challengers on this query.
        q.frameProp = std::move(frame_prop);
        q.seeds = base_seeds_;
        q.seeds.cells.insert(q.seeds.cells.end(), extra.cells.begin(),
                             extra.cells.end());
        q.seeds.mems.insert(q.seeds.mems.end(), extra.mems.begin(),
                            extra.mems.end());
        q.contentHash = queryContentHash(idx, q.seeds);
        q.baseHash = queryBaseHash(idx, q.seeds);
        engine_->enqueue(std::move(q));
        pending_.push_back(idx);
    }

    /**
     * Content-derived identity of one SVA query: the hash of the COI
     * slice its property can read (the whole netlist under
     * --full-unroll, where every query sees every cell), the property
     * environment, the bound/unroll mode, and the SVA's identity and
     * rendered text. This is the journal-key ingredient and the
     * verdict-cache key — two runs produce the same hash exactly when
     * the solver would decide the same question.
     */
    uint64_t
    queryContentHash(size_t idx, const nl::CoiSeeds &seeds) const
    {
        nl::Fnv64 h;
        h.u64(full_unroll_ ? netlist_hash_
                           : nl::coneHash(nl_, seeds));
        h.u64(property_env_hash_);
        h.u32(md_.bound);
        h.byte(full_unroll_ ? 1 : 0);
        const SvaRecord &sva = out_.svas[idx];
        h.str(sva.name);
        h.str(sva.category);
        h.str(sva.text);
        // 0 is the engine's "unhashed" sentinel; dodge the collision.
        return h.value() == 0 ? 1 : h.value();
    }

    /**
     * Bound-independent sibling of queryContentHash(): identical
     * ingredients with the unroll bound left out. An *unbounded*
     * Proven verdict (PDR fixpoint, closed induction step) is keyed
     * under this hash too, so a later run at a different bound can
     * reuse the proof (journal/cache lookupUnbounded).
     */
    uint64_t
    queryBaseHash(size_t idx, const nl::CoiSeeds &seeds) const
    {
        nl::Fnv64 h;
        h.u64(full_unroll_ ? netlist_hash_
                           : nl::coneHash(nl_, seeds));
        h.u64(property_env_hash_);
        h.byte(full_unroll_ ? 1 : 0);
        const SvaRecord &sva = out_.svas[idx];
        h.str(sva.name);
        h.str(sva.category);
        h.str(sva.text);
        return h.value() == 0 ? 1 : h.value();
    }

    /** Evaluate every deferred SVA; fill records in enqueue order. */
    void
    flushSvas()
    {
        std::vector<CheckResult> results = engine_->drain();
        R2U_ASSERT(results.size() == pending_.size(),
                   "engine result count mismatch");
        for (size_t q = 0; q < results.size(); q++) {
            SvaRecord &rec = out_.svas[pending_[q]];
            rec.verdict = results[q].verdict;
            rec.source = results[q].source;
            rec.seconds = results[q].seconds;
            rec.conflicts = results[q].conflicts;
            rec.propagations = results[q].propagations;
            rec.retries = results[q].retries;
            rec.cnfVars = results[q].cnfVars;
            rec.cnfClauses = results[q].cnfClauses;
            rec.cnfVarsAdded = results[q].cnfVarsAdded;
            rec.cnfClausesAdded = results[q].cnfClausesAdded;
            rec.coiCells = results[q].coiCells;
            rec.validated = results[q].validated;
            rec.fromJournal = results[q].fromJournal;
            rec.fromCache = results[q].fromCache;
            rec.engine = bmc::engineKindName(results[q].engine);
            rec.engineRaced = results[q].engineRaced;
            rec.unbounded = results[q].unbounded;
            switch (results[q].verdict) {
              case Verdict::Refuted:
                rec.trace =
                    results[q].fromJournal || results[q].fromCache
                        ? results[q].validationNote
                        : results[q].trace.toString();
                break;
              case Verdict::Proven:
                break;
              case Verdict::Unknown:
                // A validation failure carries its diagnostic bundle
                // here; budget Unknowns have nothing to show.
                rec.trace = results[q].validationNote;
                break;
            }
            debugLog("SVA %-28s %-12s %.3fs", rec.name.c_str(),
                     bmc::verdictName(rec.verdict), rec.seconds);
        }
        pending_.clear();
    }

    Verdict
    verdictOf(size_t idx) const
    {
        return out_.svas[idx].verdict;
    }

    // ------------------------------------------------------------------
    // Three-valued verdict consumption. Every consumer below uses an
    // enumerator-exhaustive switch: the test suite rejects any Verdict
    // enumerator mention in this file that is not a `case` label, so
    // an Unknown can never silently act as Proven or Refuted again.
    // ------------------------------------------------------------------

    /**
     * Record that an Unknown verdict forced a conservative synthesis
     * choice. The note lands in the SVA record, the run summary, and
     * (via mergeAndEmit) the printed model.
     */
    void
    degrade(size_t idx, const std::string &note)
    {
        SvaRecord &rec = out_.svas[idx];
        rec.degraded = true;
        rec.degradeNote = note;
        out_.degraded.push_back(rec.name + ": " + note);
        warn("rtl2uspec: SVA %s undetermined (%s); %s",
             rec.name.c_str(), bmc::verdictSourceName(rec.source),
             note.c_str());
    }

    /**
     * Membership-style consumer: Refuted means "the event happens"
     * (e.g. the op updates the element). Unknown degrades to "does
     * not happen" — the element stays out of the instruction's node
     * set, so the model gets *fewer* path edges and stays an
     * over-approximation of the hardware (weaker, hence sound).
     */
    bool
    eventHappens(size_t idx, const std::string &note)
    {
        switch (verdictOf(idx)) {
          case Verdict::Refuted:
            return true;
          case Verdict::Proven:
            return false;
          case Verdict::Unknown:
            degrade(idx, note);
            return false;
        }
        return false;
    }

    /**
     * Ordering-style consumer: Proven means the ordering holds and
     * its axiom may be emitted. Unknown degrades to "unordered" — the
     * axiom is omitted, so the model permits *more* interleavings
     * than the hardware exhibits (weaker, hence sound).
     */
    bool
    orderingProven(size_t idx)
    {
        switch (verdictOf(idx)) {
          case Verdict::Proven:
            return true;
          case Verdict::Refuted:
            return false;
          case Verdict::Unknown:
            degrade(idx, "ordering undetermined; axiom omitted "
                         "(weaker model: fewer hb edges)");
            return false;
        }
        return false;
    }

    /**
     * Instantiate one symbolic instruction instance: rigids pc<suffix>
     * and i<suffix> with P0 (one occupancy interval), P2 (IFR binding)
     * and optional P3 (encoding). Returns the stage-0 occupancy.
     */
    EventVec
    bindInstr(PropCtx &ctx, const std::string &suffix,
              const InstrType *type)
    {
        const CoreMeta &core = md_.cores[0];
        unsigned pcw = static_cast<unsigned>(
            ctx.at(0, core.pcrs[0]).size());
        const sat::Word &pc = ctx.rigid("pc" + suffix, pcw);
        const sat::Word &enc = ctx.rigid(
            "i" + suffix,
            static_cast<unsigned>(ctx.at(0, core.ifr).size()));
        EventVec occ0 = sva::occupancy(ctx, core.pcrs[0], pc);
        sva::assumeOneInterval(ctx, occ0);
        sva::assumeBinding(ctx, occ0, core.ifr, enc);
        if (type)
            sva::assumeEncoding(ctx, enc, type->mask, type->match);
        return occ0;
    }

    EventVec
    stageOcc(PropCtx &ctx, const std::string &suffix, unsigned stage)
    {
        const CoreMeta &core = md_.cores[0];
        R2U_ASSERT(stage < core.pcrs.size(), "stage %u has no PCR",
                   stage);
        unsigned pcw = static_cast<unsigned>(
            ctx.at(0, core.pcrs[0]).size());
        return sva::occupancy(ctx, core.pcrs[stage],
                              ctx.rigid("pc" + suffix, pcw));
    }

    /** Per-frame "request granted and issued by core 0". */
    EventVec
    grantEvents(PropCtx &ctx, bool write_only)
    {
        const CoreMeta &core = md_.cores[0];
        EventVec ev(ctx.bound());
        for (unsigned f = 0; f < ctx.bound(); f++) {
            Lit g = ctx.at(f, md_.remote.grant)[0];
            Lit en = ctx.at(f, write_only ? core.reqWen : core.reqEn)[0];
            ev[f] = ctx.cnf().mkAnd(g, en);
        }
        return ev;
    }

    /** Request-send events attributed to instruction <suffix>. */
    EventVec
    sentEvents(PropCtx &ctx, const std::string &suffix, bool write_only)
    {
        EventVec occ0 = stageOcc(ctx, suffix, 0);
        return sva::andEvents(ctx, occ0, grantEvents(ctx, write_only));
    }

    /** Memory-commit events: the cycle after a write request is sent. */
    EventVec
    shiftEvents(PropCtx &ctx, const EventVec &ev)
    {
        EventVec out(ev.size(), ctx.cnf().falseLit());
        for (size_t f = 0; f + 1 < ev.size(); f++)
            out[f + 1] = ev[f];
        return out;
    }

    /** Write-port enables of an array, per frame. */
    EventVec
    arrayWriteEvents(PropCtx &ctx, nl::MemId mem)
    {
        EventVec ev(ctx.bound(), ctx.cnf().falseLit());
        for (nl::CellId port : nl_.memory(mem).writePorts) {
            nl::CellId en = nl_.cell(port).inputs[2];
            for (unsigned f = 0; f < ctx.bound(); f++) {
                ev[f] = ctx.cnf().mkOr(
                    ev[f], ctx.unroller().wire(f, en)[0]);
            }
        }
        return ev;
    }

    /** Regfile-style local array write events attributed to <suffix>. */
    EventVec
    localArrayWriteEvents(PropCtx &ctx, const Elem &e,
                          const std::string &suffix)
    {
        unsigned attrib = attribStage(e);
        EventVec occ = stageOcc(ctx, suffix, attrib);
        return sva::andEvents(ctx, occ,
                              arrayWriteEvents(ctx,
                                               dfg_.node(e.node).mem));
    }

    unsigned
    attribStage(const Elem &e) const
    {
        // An array's write-port inputs live one stage before the
        // array itself; clamp to the available PCRs.
        int s = e.stage - 1;
        int max_pcr =
            static_cast<int>(md_.cores[0].pcrs.size()) - 1;
        return static_cast<unsigned>(std::clamp(s, 0, max_pcr));
    }

    void
    watchDefaults(PropCtx &ctx)
    {
        const CoreMeta &core = md_.cores[0];
        ctx.watch(core.ifr);
        for (const auto &p : core.pcrs)
            ctx.watch(p);
        ctx.watch(core.reqEn);
        ctx.watch(core.reqWen);
        ctx.watch(md_.remote.grant);
    }

    // ------------------------------------------------------------------
    // §4.2: intra-instruction membership (Fig. 4a template A0).
    // ------------------------------------------------------------------
    void
    intraMembership()
    {
        // A Refuted membership SVA means "op updates these nodes";
        // applications are deferred past the batch flush so the
        // updated_ sets fill in deterministic enqueue order.
        struct MembershipHit
        {
            size_t idx; ///< SVA record index
            std::set<NodeId> *updated;
            std::vector<NodeId> nodes;
            std::string op; ///< instruction type, for degradation tags
        };
        std::vector<MembershipHit> hits;

        for (const InstrType &op : md_.instrs) {
            std::set<NodeId> &updated = updated_[op.name];
            updated.insert(ifr_node_); // primary root, by definition

            // Remote pipeline-register group: one SVA for the group.
            std::vector<NodeId> remote_nodes;
            for (const Elem &e : elems_)
                if (e.kind == ElemKind::RemoteReg)
                    remote_nodes.push_back(e.node);
            if (!remote_nodes.empty()) {
                size_t idx = startSva(
                    op.name + "_updates_req_group", "intra",
                    strfmt("A0: assert (`PCR_0 == pc0 |-> "
                           "!(grant[0] && req_en)); // op=%s, "
                           "s=<request interface group>",
                           op.name.c_str()),
                    static_cast<unsigned>(remote_nodes.size()), true);
                deferSva(idx, [this, &op](PropCtx &ctx) {
                    ctx.pinInput("reset", 0);
                    watchDefaults(ctx);
                    EventVec occ0 = bindInstr(ctx, "0", &op);
                    return sva::eventDuring(ctx, occ0,
                                            grantEvents(ctx, false));
                });
                hits.push_back(
                    {idx, &updated, std::move(remote_nodes), op.name});
            }

            for (const Elem &e : elems_) {
                switch (e.kind) {
                  case ElemKind::LocalReg: {
                    if (e.stage >=
                        static_cast<int>(md_.cores[0].pcrs.size())) {
                        warn("no PCR for stage %d element '%s'; "
                             "skipping", e.stage, e.name.c_str());
                        continue;
                    }
                    size_t idx = startSva(
                        op.name + "_updates_" + shortName(e.name),
                        "intra",
                        strfmt("A0: assert (`PCR_%d == pc0 |-> %s == "
                               "$past(%s)); // op=%s",
                               e.stage, e.name.c_str(), e.name.c_str(),
                               op.name.c_str()),
                        1, false);
                    deferSva(idx, [this, &op, &e](PropCtx &ctx) {
                        ctx.pinInput("reset", 0);
                        watchDefaults(ctx);
                        ctx.watch(e.name);
                        bindInstr(ctx, "0", &op);
                        EventVec occ = stageOcc(
                            ctx, "0", static_cast<unsigned>(e.stage));
                        return sva::changeDuring(
                            ctx, occ, dfg_.node(e.node).reg);
                    }, elemSeeds(e));
                    hits.push_back({idx, &updated, {e.node}, op.name});
                    break;
                  }
                  case ElemKind::LocalArray: {
                    size_t idx = startSva(
                        op.name + "_updates_" + shortName(e.name),
                        "intra",
                        strfmt("A0: assert (`PCR_%u == pc0 |-> "
                               "!%s_wen); // op=%s",
                               attribStage(e), e.name.c_str(),
                               op.name.c_str()),
                        1, false);
                    deferSva(idx, [this, &op, &e](PropCtx &ctx) {
                        ctx.pinInput("reset", 0);
                        watchDefaults(ctx);
                        bindInstr(ctx, "0", &op);
                        EventVec wr =
                            localArrayWriteEvents(ctx, e, "0");
                        return sva::occurs(ctx, wr);
                    }, elemSeeds(e));
                    hits.push_back({idx, &updated, {e.node}, op.name});
                    break;
                  }
                  case ElemKind::RemoteArray: {
                    size_t idx = startSva(
                        op.name + "_updates_" + shortName(e.name),
                        "intra",
                        strfmt("Req-Snd: assert (`PCR_0 == pc0 |-> "
                               "!(grant[0] && req_wen)); // op=%s, "
                               "s=%s",
                               op.name.c_str(), e.name.c_str()),
                        1, true);
                    deferSva(idx, [this, &op, &e](PropCtx &ctx) {
                        ctx.pinInput("reset", 0);
                        watchDefaults(ctx);
                        bindInstr(ctx, "0", &op);
                        return sva::occurs(
                            ctx, sentEvents(ctx, "0", true));
                    });
                    hits.push_back({idx, &updated, {e.node}, op.name});
                    break;
                  }
                  case ElemKind::RemoteReg:
                    break; // handled as a group above
                }
            }
        }

        flushSvas();
        for (const MembershipHit &hit : hits) {
            if (eventHappens(hit.idx,
                             "membership undetermined; element(s) "
                             "excluded from the instruction's node set "
                             "(weaker model: fewer path edges)")) {
                for (NodeId n : hit.nodes)
                    hit.updated->insert(n);
            } else if (out_.svas[hit.idx].degraded) {
                degraded_ops_.insert(hit.op);
            }
        }
    }

    // ------------------------------------------------------------------
    // §4.2.4: progress SVAs (Fig. 4b template A1).
    // ------------------------------------------------------------------
    void
    progressChecks()
    {
        struct Pending
        {
            size_t idx;
            const InstrType *op;
            unsigned stage;
        };
        std::vector<Pending> pendings;
        for (const InstrType &op : md_.instrs) {
            for (unsigned stage = 0;
                 stage < md_.cores[0].pcrs.size(); stage++) {
                size_t idx = startSva(
                    op.name + strfmt("_progress_stage%u", stage),
                    "intra",
                    strfmt("A1: assert (first |-> s_eventually("
                           "(`PCR_%u == pc0) ##1 !(`PCR_%u == pc0)));"
                           " // op=%s",
                           stage, stage, op.name.c_str()),
                    1, false);
                deferSva(idx, [this, &op, stage](PropCtx &ctx) {
                    ctx.pinInput("reset", 0);
                    watchDefaults(ctx);
                    EventVec occ0 = bindInstr(ctx, "0", &op);
                    // Assume the instruction is fetched early enough.
                    Lit early = ctx.cnf().falseLit();
                    for (unsigned f = 0;
                         f <= md_.issueByFrame && f < ctx.bound(); f++)
                        early = ctx.cnf().mkOr(early, occ0[f]);
                    ctx.assume(early);
                    EventVec occ = stageOcc(ctx, "0", stage);
                    return ~sva::occurs(ctx,
                                        sva::exitEvents(ctx, occ));
                });
                pendings.push_back({idx, &op, stage});
            }
        }
        flushSvas();
        for (const Pending &p : pendings) {
            switch (verdictOf(p.idx)) {
              case Verdict::Proven:
                break;
              case Verdict::Refuted:
                warn("progress SVA for %s stage %u not proven",
                     p.op->name.c_str(), p.stage);
                break;
              case Verdict::Unknown:
                degrade(p.idx,
                        strfmt("progress for %s stage %u "
                               "undetermined; treated as unproven "
                               "(diagnostic only, no model impact)",
                               p.op->name.c_str(), p.stage));
                break;
            }
        }
    }

    // ------------------------------------------------------------------
    // Interface attribution well-formedness: the §6.1 bug finder.
    // ------------------------------------------------------------------
    void
    attributionChecks()
    {
        struct Check
        {
            const char *name;
            bool write;
            size_t idx = 0;
        };
        std::vector<Check> checks = {
            {"write_requests_are_valid_stores", true},
            {"read_requests_are_valid_loads", false}};
        for (Check &chk : checks) {
            chk.idx = startSva(
                chk.name, "temporal",
                strfmt("Req-Proc: assert ((grant[0] && %s) |-> "
                       "<IFR decodes as a declared %s type>);",
                       chk.write ? "req_wen" : "req_en && !req_wen",
                       chk.write ? "store" : "load"),
                1, true);
            // The Check lives on this function's stack; the deferred
            // property must capture the flag by value.
            const bool write = chk.write;
            // Frame-local kernel shared by the plain-BMC property and
            // its FramePropertyFn form, so they are the same property
            // by construction (race verdicts stay identical).
            auto frame_bad = [this, write](PropCtx &ctx,
                                           unsigned f) -> Lit {
                const CoreMeta &core = md_.cores[0];
                auto &cnf = ctx.cnf();
                Lit g = ctx.at(f, md_.remote.grant)[0];
                Lit wen = ctx.at(f, core.reqWen)[0];
                Lit en = ctx.at(f, core.reqEn)[0];
                Lit req = write
                              ? cnf.mkAnd(g, wen)
                              : cnf.mkAnd(g, cnf.mkAnd(en, ~wen));
                const sat::Word &ifr = ctx.at(f, core.ifr);
                Lit matches = cnf.falseLit();
                for (const InstrType &op : md_.instrs) {
                    if ((write && !op.isWrite) ||
                        (!write && !op.isRead))
                        continue;
                    Lit m = cnf.trueLit();
                    for (size_t b = 0; b < ifr.size() && b < 32; b++) {
                        if ((op.mask >> b) & 1) {
                            bool bit = (op.match >> b) & 1;
                            m = cnf.mkAnd(m, bit ? ifr[b] : ~ifr[b]);
                        }
                    }
                    matches = cnf.mkOr(matches, m);
                }
                return cnf.mkAnd(req, ~matches);
            };
            deferSva(
                chk.idx,
                [this, frame_bad](PropCtx &ctx) {
                    ctx.pinInput("reset", 0);
                    watchDefaults(ctx);
                    auto &cnf = ctx.cnf();
                    Lit bad = cnf.falseLit();
                    for (unsigned f = 0; f < ctx.bound(); f++)
                        bad = cnf.mkOr(bad, frame_bad(ctx, f));
                    return bad;
                },
                {},
                [this, frame_bad](PropCtx &ctx, unsigned f) {
                    // Environment once per context (frame 0 is always
                    // built first); pinInput covers every frame.
                    if (f == 0) {
                        ctx.pinInput("reset", 0);
                        watchDefaults(ctx);
                    }
                    return frame_bad(ctx, f);
                });
        }
        flushSvas();
        for (const Check &chk : checks) {
            if (eventHappens(chk.idx,
                             strfmt("attribution check %s "
                                    "undetermined; cannot certify "
                                    "absence of the §6.1 bug class "
                                    "(not reported as a bug)",
                                    chk.name))) {
                out_.bugs.push_back(strfmt(
                    "DESIGN BUG (paper §6.1 class): %s refuted — an "
                    "instruction that does not decode to a declared "
                    "%s type issues a memory %s request. "
                    "Counterexample:\n%s",
                    chk.name, chk.write ? "store" : "load",
                    chk.write ? "write" : "read",
                    out_.svas[chk.idx].trace.c_str()));
            }
        }
    }

    // ------------------------------------------------------------------
    // §4.3: inter-instruction HBIs.
    // ------------------------------------------------------------------

    /**
     * Enqueue an ordering SVA: assume two instruction instances in
     * program order (fetch order), assert eventsOf("0") strictly
     * before eventsOf("1"). op0/op1 must outlive the batch (point
     * into md_.instrs or be null); events must be self-contained.
     */
    void
    deferOrderSva(size_t idx, const InstrType *op0, const InstrType *op1,
                  std::function<EventVec(PropCtx &,
                                         const std::string &)> events,
                  nl::CoiSeeds extra = {})
    {
        deferSva(idx, [this, op0, op1,
                       events = std::move(events)](PropCtx &ctx) {
            ctx.pinInput("reset", 0);
            watchDefaults(ctx);
            EventVec occ_a = bindInstr(ctx, "0", op0);
            EventVec occ_b = bindInstr(ctx, "1", op1);
            sva::assumeStrictlyBefore(ctx, occ_a, occ_b);
            EventVec ev_a = events(ctx, "0");
            EventVec ev_b = events(ctx, "1");
            ctx.assume(sva::occurs(ctx, ev_a));
            ctx.assume(sva::occurs(ctx, ev_b));
            return sva::notStrictlyBefore(ctx, ev_a, ev_b);
        }, std::move(extra));
    }

    void
    interInstruction()
    {
        const CoreMeta &core = md_.cores[0];

        // Phase A: enqueue every SVA whose existence does not depend
        // on another verdict. Only the per-pair fallbacks for a
        // *failed* relaxed stage must wait for Phase A's verdicts.

        // --- spatial/temporal for same-stage local registers: one
        // relaxed SVA per pipeline stage (§4.3.3 optimization). ---
        struct StagePlan
        {
            unsigned stage = 0;
            bool relaxed = false;
            size_t relaxedIdx = 0;
            std::vector<size_t> fallback;
        };
        std::vector<StagePlan> plans;
        for (unsigned stage = 0; stage < core.pcrs.size(); stage++) {
            StagePlan plan;
            plan.stage = stage;
            if (md_.relaxPairs) {
                plan.relaxed = true;
                plan.relaxedIdx = startSva(
                    strfmt("po_order_stage%u", stage),
                    stage == 0 ? "spatial" : "temporal",
                    strfmt("assert (po(pc0, pc1) |-> first(`PCR_%u == "
                           "pc0) before first(`PCR_%u == pc1)); // all "
                           "instruction pairs (relaxed)",
                           stage, stage),
                    stageHypotheses(stage), false);
                deferOrderSva(plan.relaxedIdx, nullptr, nullptr,
                              [this, stage](PropCtx &ctx,
                                            const std::string &s) {
                                  return stageOcc(ctx, s, stage);
                              });
            } else {
                plan.fallback = deferFallbackStage(stage);
            }
            plans.push_back(std::move(plan));
        }

        // --- spatial on the local array (regfile): reader pairs. ---
        std::vector<size_t> regfile_idxs;
        const Elem *regfile = findElem(ElemKind::LocalArray);
        if (regfile) {
            for (const InstrType &op0 : md_.instrs) {
                for (const InstrType &op1 : md_.instrs) {
                    if (!updated_[op0.name].count(regfile->node) ||
                        !updated_[op1.name].count(regfile->node))
                        continue;
                    if (&op0 != &op1)
                        continue; // one representative per element
                    size_t idx = startSva(
                        strfmt("po_order_%s",
                               shortName(regfile->name).c_str()),
                        "spatial",
                        strfmt("assert (po(pc0, pc1) |-> "
                               "write(%s, pc0) before write(%s, "
                               "pc1)); // %s/%s",
                               regfile->name.c_str(),
                               regfile->name.c_str(),
                               op0.name.c_str(), op1.name.c_str()),
                        1, false);
                    deferOrderSva(
                        idx, &op0, &op1,
                        [this, regfile](PropCtx &ctx,
                                        const std::string &s) {
                            return localArrayWriteEvents(ctx, *regfile,
                                                         s);
                        },
                        elemSeeds(*regfile));
                    regfile_idxs.push_back(idx);
                }
            }
        }

        // --- remote resource: Req-Snd / Req-Rec / Req-Proc (§4.3.3).
        RemotePlan remote = deferReqSndRecProc();

        // --- cross-array temporal HBIs (regfile <-> mem). ---
        CrossPlan cross = deferCrossArrayTemporal();

        // --- dataflow (§4.3.5): mem -> regfile. ---
        DataflowPlan dflow = deferDataflowSvas();

        flushSvas();

        // Phase B: per-pair fallbacks for relaxed stages that failed.
        stage_ordered_.assign(core.pcrs.size(), false);
        for (StagePlan &plan : plans) {
            if (!plan.relaxed)
                continue;
            bool proven = orderingProven(plan.relaxedIdx);
            stage_ordered_[plan.stage] = proven;
            if (!proven)
                plan.fallback = deferFallbackStage(plan.stage);
        }
        flushSvas();

        // With relaxation disabled, a stage is ordered iff every
        // per-pair fallback proves. (A failed *relaxed* stage stays
        // unordered even if its fallbacks prove — the fallbacks are
        // diagnostic, matching the sequential reference behavior.)
        for (const StagePlan &plan : plans) {
            if (plan.relaxed)
                continue;
            bool all_proven = true;
            for (size_t idx : plan.fallback)
                all_proven &= orderingProven(idx);
            stage_ordered_[plan.stage] = all_proven;
        }
        for (size_t idx : regfile_idxs)
            regfile_ordered_ = orderingProven(idx);
        // No && short-circuit: every undetermined link in the chain
        // must record its own degradation.
        bool snd_ok = orderingProven(remote.snd);
        bool rec_ok = orderingProven(remote.rec);
        bool proc_ok = orderingProven(remote.proc);
        remote_chain_proven_ = snd_ok && rec_ok && proc_ok;
        if (cross.active) {
            t_read_write_ = orderingProven(cross.readWrite);
            t_write_read_ = orderingProven(cross.writeRead);
        }
        if (dflow.active)
            dataflow_proven_ = orderingProven(dflow.idx);
    }

    unsigned
    stageHypotheses(unsigned stage) const
    {
        // Element-granular hypothesis count this one SVA covers:
        // spatial (same element) and temporal (distinct elements in
        // the stage) pairs across ordered instruction-type pairs.
        unsigned members = 0;
        for (const Elem &e : elems_)
            if (e.kind == ElemKind::LocalReg &&
                e.stage == static_cast<int>(stage))
                members++;
        if (stage == 0)
            members++; // the IFR shares stage 0
        unsigned op_pairs = static_cast<unsigned>(
            md_.instrs.size() * md_.instrs.size());
        return op_pairs * members * members;
    }

    /**
     * §6.2: if the relaxed SVA fails (or relaxation is disabled),
     * fall back to per-pair opcode-constrained SVAs. Enqueues them
     * and returns their record indices for the post-flush tally.
     */
    std::vector<size_t>
    deferFallbackStage(unsigned stage)
    {
        std::vector<size_t> idxs;
        for (const InstrType &op0 : md_.instrs) {
            for (const InstrType &op1 : md_.instrs) {
                size_t idx = startSva(
                    strfmt("po_order_stage%u_%s_%s", stage,
                           op0.name.c_str(), op1.name.c_str()),
                    stage == 0 ? "spatial" : "temporal",
                    strfmt("assert (po(pc0:%s, pc1:%s) |-> stage %u "
                           "entries ordered);",
                           op0.name.c_str(), op1.name.c_str(), stage),
                    1, false);
                deferOrderSva(idx, &op0, &op1,
                              [this, stage](PropCtx &ctx,
                                            const std::string &s) {
                                  return stageOcc(ctx, s, stage);
                              });
                idxs.push_back(idx);
            }
        }
        return idxs;
    }

    struct RemotePlan
    {
        size_t snd = 0, rec = 0, proc = 0;
    };

    RemotePlan
    deferReqSndRecProc()
    {
        RemotePlan plan;

        // Req-Snd: same-core requests are sent in program order.
        plan.snd = startSva(
            "req_snd_order", "temporal",
            "Req-Snd: assert (po(pc0, pc1) |-> send(pc0) before "
            "send(pc1)); // requests to the shared memory",
            static_cast<unsigned>(md_.instrs.size() *
                                  md_.instrs.size()),
            true);
        deferOrderSva(plan.snd, nullptr, nullptr,
                      [this](PropCtx &ctx, const std::string &s) {
                          return sentEvents(ctx, s, false);
                      });

        // Req-Rec: a sent request is received next cycle, tagged with
        // the sender's core id.
        plan.rec = startSva(
            "req_rec_in_order", "temporal",
            "Req-Rec: assert ((grant[0] && req_en) |-> ##1 "
            "(req_valid_q && req_core_q == 0));",
            1, true);
        deferSva(plan.rec, [this](PropCtx &ctx) {
            ctx.pinInput("reset", 0);
            watchDefaults(ctx);
            auto &cnf = ctx.cnf();
            Lit bad = cnf.falseLit();
            for (unsigned f = 0; f + 1 < ctx.bound(); f++) {
                Lit g = ctx.at(f, md_.remote.grant)[0];
                Lit en = ctx.at(f, md_.cores[0].reqEn)[0];
                Lit valid = ctx.at(f + 1, md_.remote.pipeValid)[0];
                const sat::Word &who =
                    ctx.at(f + 1, md_.remote.pipeCore);
                Lit tagged = cnf.mkAnd(
                    valid,
                    cnf.mkEqW(who,
                              cnf.constWord(
                                  static_cast<unsigned>(who.size()),
                                  0)));
                bad = cnf.mkOr(bad, cnf.mkAnd(cnf.mkAnd(g, en),
                                              ~tagged));
            }
            return bad;
        }, pipeSeeds(false));

        // Req-Proc: a received write request is processed (committed
        // to the array) in the cycle it sits in the request register.
        plan.proc = startSva(
            "req_proc_in_order", "temporal",
            "Req-Proc: assert ((req_valid_q && req_wen_q) |-> "
            "mem_write_fire);",
            1, true);
        nl::MemId mem = nl_.findMemoryByName(md_.remote.memName);
        // Frame-local kernel shared by both property forms (see the
        // attribution checks for the pattern).
        auto proc_bad = [this, mem](PropCtx &ctx, unsigned f) -> Lit {
            auto &cnf = ctx.cnf();
            Lit commit = cnf.falseLit();
            for (nl::CellId port : nl_.memory(mem).writePorts) {
                nl::CellId en = nl_.cell(port).inputs[2];
                commit = cnf.mkOr(commit,
                                  ctx.unroller().wire(f, en)[0]);
            }
            Lit valid = ctx.at(f, md_.remote.pipeValid)[0];
            Lit wen = ctx.at(f, md_.remote.pipeWen)[0];
            return cnf.mkAnd(cnf.mkAnd(valid, wen), ~commit);
        };
        deferSva(
            plan.proc,
            [this, proc_bad](PropCtx &ctx) {
                ctx.pinInput("reset", 0);
                watchDefaults(ctx);
                auto &cnf = ctx.cnf();
                Lit bad = cnf.falseLit();
                for (unsigned f = 0; f < ctx.bound(); f++)
                    bad = cnf.mkOr(bad, proc_bad(ctx, f));
                return bad;
            },
            pipeSeeds(true, mem),
            [this, proc_bad](PropCtx &ctx, unsigned f) {
                if (f == 0) {
                    ctx.pinInput("reset", 0);
                    watchDefaults(ctx);
                }
                return proc_bad(ctx, f);
            });
        return plan;
    }

    /** Seeds for the Req-Rec / Req-Proc request-pipeline SVAs. */
    nl::CoiSeeds
    pipeSeeds(bool proc, nl::MemId commit_mem = -1) const
    {
        nl::CoiSeeds s;
        addSeed(s, md_.remote.pipeValid);
        addSeed(s, proc ? md_.remote.pipeWen : md_.remote.pipeCore);
        if (commit_mem >= 0)
            seedArrayWriteEns(s, commit_mem);
        return s;
    }

    struct CrossPlan
    {
        bool active = false;
        size_t readWrite = 0, writeRead = 0;
    };

    CrossPlan
    deferCrossArrayTemporal()
    {
        CrossPlan plan;
        const Elem *regfile = findElem(ElemKind::LocalArray);
        const Elem *mem = findElem(ElemKind::RemoteArray);
        if (!regfile || !mem)
            return plan;
        const InstrType *rd = nullptr, *wr = nullptr;
        for (const InstrType &op : md_.instrs) {
            if (op.isRead)
                rd = &op;
            if (op.isWrite)
                wr = &op;
        }
        if (!rd || !wr)
            return plan;
        plan.active = true;

        // read-then-write: regfile update before memory commit.
        plan.readWrite = startSva(
            "t_regfile_then_mem", "temporal",
            strfmt("assert (po(pc0:%s, pc1:%s) |-> write(%s, pc0) "
                   "before commit(%s, pc1));",
                   rd->name.c_str(), wr->name.c_str(),
                   regfile->name.c_str(), mem->name.c_str()),
            1, true);
        deferOrderSva(
            plan.readWrite, rd, wr,
            [this, regfile](PropCtx &ctx, const std::string &s) {
                if (s == "0")
                    return localArrayWriteEvents(ctx, *regfile, s);
                return shiftEvents(ctx, sentEvents(ctx, s, true));
            },
            elemSeeds(*regfile));

        // write-then-read: memory commit before regfile update.
        plan.writeRead = startSva(
            "t_mem_then_regfile", "temporal",
            strfmt("assert (po(pc0:%s, pc1:%s) |-> commit(%s, pc0) "
                   "before write(%s, pc1));",
                   wr->name.c_str(), rd->name.c_str(),
                   mem->name.c_str(), regfile->name.c_str()),
            1, true);
        deferOrderSva(
            plan.writeRead, wr, rd,
            [this, regfile](PropCtx &ctx, const std::string &s) {
                if (s == "0")
                    return shiftEvents(ctx, sentEvents(ctx, s, true));
                return localArrayWriteEvents(ctx, *regfile, s);
            },
            elemSeeds(*regfile));
        return plan;
    }

    struct DataflowPlan
    {
        bool active = false;
        size_t idx = 0;
    };

    DataflowPlan
    deferDataflowSvas()
    {
        DataflowPlan plan;
        const Elem *regfile = findElem(ElemKind::LocalArray);
        const Elem *mem = findElem(ElemKind::RemoteArray);
        if (!regfile || !mem)
            return plan;
        const InstrType *rd = nullptr, *wr = nullptr;
        for (const InstrType &op : md_.instrs) {
            if (op.isRead)
                rd = &op;
            if (op.isWrite)
                wr = &op;
        }
        if (!rd || !wr)
            return plan;
        plan.active = true;
        // The writer's mem update reaches the reader's regfile update.
        plan.idx = startSva(
            "dataflow_mem_to_regfile", "dataflow",
            strfmt("assert (po(pc0:%s, pc1:%s) |-> commit(%s, pc0) "
                   "before write(%s, pc1)); // data handoff via %s",
                   wr->name.c_str(), rd->name.c_str(),
                   mem->name.c_str(), regfile->name.c_str(),
                   mem->name.c_str()),
            1, true);
        deferOrderSva(
            plan.idx, wr, rd,
            [this, regfile](PropCtx &ctx, const std::string &s) {
                if (s == "0")
                    return shiftEvents(ctx, sentEvents(ctx, s, true));
                return localArrayWriteEvents(ctx, *regfile, s);
            },
            elemSeeds(*regfile));
        return plan;
    }

    const Elem *
    findElem(ElemKind kind) const
    {
        for (const Elem &e : elems_)
            if (e.kind == kind)
                return &e;
        return nullptr;
    }

    // ------------------------------------------------------------------
    // §4.2.3 / §4.4: per-instruction DFGs, merging, emission.
    // ------------------------------------------------------------------
    void
    buildInstrDfgs()
    {
        for (const InstrType &op : md_.instrs) {
            dfg::InstrDfg idfg = dfg::buildInstrDfg(
                dfg_, op.name, ifr_node_, updated_[op.name]);
            out_.instrDfgDots[op.name] =
                dfg::instrDfgToDot(dfg_, idfg);
            std::vector<std::string> names;
            for (NodeId n : idfg.nodes)
                names.push_back(dfg_.node(n).name);
            out_.instrNodes[op.name] = std::move(names);
            instr_dfgs_.push_back(std::move(idfg));
        }
    }

    /** Strip the core prefix for row naming. */
    std::string
    shortName(const std::string &name) const
    {
        std::string s = name;
        if (startsWith(s, md_.cores[0].prefix))
            s = s.substr(md_.cores[0].prefix.size());
        for (char &c : s)
            if (c == '.' || c == '[' || c == ']')
                c = '_';
        return s;
    }

    /** Merged row (location) of a DFG node; -1 if not modeled. */
    int
    rowOf(NodeId n) const
    {
        auto it = row_of_.find(n);
        return it == row_of_.end() ? -1 : it->second;
    }

    void
    mergeAndEmit()
    {
        uspec::Model &m = out_.model;
        int if_row = m.addStage("IF_");
        row_of_[ifr_node_] = if_row;

        // Merge local registers per stage (same stage => same PCR =>
        // identical inter-instruction HBI participation, §4.4).
        std::map<int, int> stage_row;
        for (const Elem &e : elems_) {
            if (e.kind != ElemKind::LocalReg)
                continue;
            bool member = false;
            for (const auto &[op, set] : updated_)
                member |= set.count(e.node) > 0;
            if (!member)
                continue;
            if (!md_.mergeNodes) {
                row_of_[e.node] = m.addStage(shortName(e.name));
                per_element_rows_[e.stage].push_back(
                    row_of_[e.node]);
                continue;
            }
            auto it = stage_row.find(e.stage);
            if (it == stage_row.end()) {
                int row = m.addStage(
                    strfmt("mgnode_%zu", stage_row.size()));
                it = stage_row.emplace(e.stage, row).first;
            }
            row_of_[e.node] = it->second;
        }
        // The remote request group merges into a single access row.
        // (The access point itself is kept merged even in the
        // no-merging ablation: the check engine needs one access row.)
        int acc_row = -1;
        for (const Elem &e : elems_) {
            if (e.kind != ElemKind::RemoteReg)
                continue;
            if (acc_row < 0)
                acc_row = m.addStage("mem_if");
            row_of_[e.node] = acc_row;
        }
        // Arrays stay distinct rows.
        const Elem *regfile = findElem(ElemKind::LocalArray);
        const Elem *mem = findElem(ElemKind::RemoteArray);
        int regfile_row = -1, mem_row = -1;
        if (regfile) {
            regfile_row = m.addStage(shortName(regfile->name));
            row_of_[regfile->node] = regfile_row;
        }
        if (mem) {
            mem_row = m.addStage(shortName(mem->name));
            row_of_[mem->node] = mem_row;
        }
        if (acc_row >= 0)
            m.memAccessStage = m.stageNames[acc_row];
        if (mem_row >= 0)
            m.memStage = m.stageNames[mem_row];

        // --- per-instruction path axioms ---
        for (size_t i = 0; i < instr_dfgs_.size(); i++) {
            const dfg::InstrDfg &idfg = instr_dfgs_[i];
            const InstrType &op = md_.instrs[i];
            std::set<std::pair<int, int>> edges;
            for (const auto &[a, b] : idfg.edges) {
                if (!idfg.nodes.count(a) || !idfg.nodes.count(b))
                    continue; // member->member only
                // Intra-instruction updates happen in stage order
                // (single-execution-path); an edge from a later-stage
                // element into an earlier one is another
                // instruction's influence (e.g. bypass/redirect
                // control), not part of this instruction's path.
                if (labels_.stage[a] >= labels_.stage[b])
                    continue;
                int ra = rowOf(a), rb = rowOf(b);
                if (ra < 0 || rb < 0 || ra == rb)
                    continue;
                edges.emplace(ra, rb);
            }
            uspec::Axiom ax;
            ax.name = op.name + "_path";
            ax.microops = {"i0"};
            uspec::Pred p;
            p.kind = op.isRead ? uspec::PredKind::IsAnyRead
                               : uspec::PredKind::IsAnyWrite;
            p.i0 = "i0";
            ax.antecedents.push_back(p);
            std::vector<uspec::EdgeSpec> list;
            for (const auto &[ra, rb] : edges) {
                uspec::EdgeSpec es;
                es.src = {"i0", ra};
                es.dst = {"i0", rb};
                es.label = "path";
                list.push_back(es);
            }
            ax.edgeAlternatives = {list};
            if (degraded_ops_.count(op.name)) {
                ax.note = "degraded: one or more membership proofs "
                          "undetermined; node set (and these path "
                          "edges) may be incomplete";
            }
            if (!list.empty())
                m.axioms.push_back(std::move(ax));
            else if (!ax.note.empty())
                m.notes.push_back(op.name + "_path omitted: " +
                                  ax.note);
            hbis_ += static_cast<int>(list.size());
        }

        // --- ordering axioms from proven SVAs ---
        auto po_axiom = [&](const std::string &name, int row,
                            std::vector<uspec::Pred> extra = {}) {
            uspec::Axiom ax;
            ax.name = name;
            ax.microops = {"i0", "i1"};
            uspec::Pred same{uspec::PredKind::SameCore, "i0", "i1", {}};
            uspec::Pred po{uspec::PredKind::ProgramOrder, "i0", "i1",
                           {}};
            ax.antecedents = {same, po};
            for (auto &p : extra)
                ax.antecedents.push_back(p);
            uspec::EdgeSpec es;
            es.src = {"i0", row};
            es.dst = {"i1", row};
            es.label = name;
            ax.edgeAlternatives = {{es}};
            m.axioms.push_back(std::move(ax));
        };

        if (!stage_ordered_.empty() && stage_ordered_[0])
            po_axiom("PO_fetch", if_row);
        for (size_t s = 0; s < stage_ordered_.size(); s++) {
            if (!stage_ordered_[s])
                continue;
            if (md_.mergeNodes) {
                if (stage_row.count(static_cast<int>(s)))
                    po_axiom(strfmt("PO_stage%zu", s),
                             stage_row[static_cast<int>(s)]);
            } else {
                int k = 0;
                for (int row : per_element_rows_[static_cast<int>(s)])
                    po_axiom(strfmt("PO_stage%zu_%d", s, k++), row);
            }
        }
        if (acc_row >= 0 && remote_chain_proven_) {
            po_axiom("PO_mem_if", acc_row);
            if (mem_row >= 0) {
                uspec::Pred w0{uspec::PredKind::IsAnyWrite, "i0", "",
                               {}};
                uspec::Pred w1{uspec::PredKind::IsAnyWrite, "i1", "",
                               {}};
                po_axiom("PO_mem", mem_row, {w0, w1});
            }
        }
        if (regfile_row >= 0 && regfile_ordered_) {
            uspec::Pred r0{uspec::PredKind::IsAnyRead, "i0", "", {}};
            uspec::Pred r1{uspec::PredKind::IsAnyRead, "i1", "", {}};
            po_axiom("PO_regfile", regfile_row, {r0, r1});
        }

        // Unordered cross-core serialization at the shared resource
        // (§4.3.1: structural HBIs without a reference order).
        if (acc_row >= 0) {
            uspec::Axiom ax;
            ax.name = "Access_serialized";
            ax.microops = {"i0", "i1"};
            ax.antecedents = {
                {uspec::PredKind::NotSame, "i0", "i1", {}},
                {uspec::PredKind::NotSameCore, "i0", "i1", {}}};
            uspec::EdgeSpec es;
            es.src = {"i0", acc_row};
            es.dst = {"i1", acc_row};
            es.label = "serial";
            uspec::EdgeSpec rev = es;
            std::swap(rev.src, rev.dst);
            ax.edgeAlternatives = {{es}, {rev}};
            m.axioms.push_back(std::move(ax));
            hbis_++;
        }

        // Cross-array temporal axioms (Fig. 3f "Axiom Temporal").
        if (regfile_row >= 0 && mem_row >= 0) {
            if (t_read_write_) {
                uspec::Axiom ax;
                ax.name = "T_regfile_mem";
                ax.microops = {"i0", "i1"};
                ax.antecedents = {
                    {uspec::PredKind::IsAnyRead, "i0", "", {}},
                    {uspec::PredKind::IsAnyWrite, "i1", "", {}},
                    {uspec::PredKind::SameCore, "i0", "i1", {}},
                    {uspec::PredKind::ProgramOrder, "i0", "i1", {}}};
                uspec::EdgeSpec es;
                es.src = {"i0", regfile_row};
                es.dst = {"i1", mem_row};
                es.label = "temporal";
                ax.edgeAlternatives = {{es}};
                m.axioms.push_back(std::move(ax));
                hbis_++;
            }
            if (t_write_read_) {
                uspec::Axiom ax;
                ax.name = "T_mem_regfile";
                ax.microops = {"i0", "i1"};
                ax.antecedents = {
                    {uspec::PredKind::IsAnyWrite, "i0", "", {}},
                    {uspec::PredKind::IsAnyRead, "i1", "", {}},
                    {uspec::PredKind::SameCore, "i0", "i1", {}},
                    {uspec::PredKind::ProgramOrder, "i0", "i1", {}}};
                uspec::EdgeSpec es;
                es.src = {"i0", mem_row};
                es.dst = {"i1", regfile_row};
                es.label = "temporal";
                ax.edgeAlternatives = {{es}};
                m.axioms.push_back(std::move(ax));
                hbis_++;
            }
            if (dataflow_proven_) {
                uspec::Axiom ax;
                ax.name = "Dataflow_mem";
                ax.microops = {"i0", "i1"};
                ax.antecedents = {
                    {uspec::PredKind::IsAnyWrite, "i0", "", {}},
                    {uspec::PredKind::IsAnyRead, "i1", "", {}},
                    {uspec::PredKind::SamePA, "i0", "i1", {}},
                    {uspec::PredKind::SameData, "i0", "i1", {}},
                    {uspec::PredKind::NoWritesInBetween, "i0", "i1",
                     {}}};
                uspec::EdgeSpec es;
                es.src = {"i0", mem_row};
                es.dst = {"i1", regfile_row};
                es.label = "data";
                es.color = "deeppink";
                ax.edgeAlternatives = {{es}};
                m.axioms.push_back(std::move(ax));
                hbis_++;
            }
        }

        // Every degradation an Unknown verdict forced is tagged in
        // the emitted model itself (parser-skipped `%` notes), so a
        // consumer of the .uarch file sees that — and why — the model
        // is weaker than a full proof run would make it.
        for (const std::string &note : out_.degraded)
            m.notes.push_back("degraded: " + note);
    }

    void
    tallyStats()
    {
        for (const SvaRecord &rec : out_.svas) {
            CategoryStats &cs = out_.stats[rec.category];
            cs.svas++;
            cs.seconds += rec.seconds;
            cs.cnfVarsSum += rec.cnfVars;
            cs.cnfClausesSum += rec.cnfClauses;
            int &hyp = rec.global ? cs.hypGlobal : cs.hypLocal;
            hyp += static_cast<int>(rec.hypotheses);
            // Intra (membership) SVAs tally their hypotheses as
            // examined HBIs regardless of verdict, matching the
            // paper's Fig. 5 accounting; other categories count only
            // proven orderings. Unknowns never count as proven.
            bool counts = rec.category == "intra";
            switch (rec.verdict) {
              case Verdict::Proven:
                counts = true;
                break;
              case Verdict::Refuted:
                break;
              case Verdict::Unknown:
                out_.unknownSvas++;
                break;
            }
            if (counts) {
                int &hbi = rec.global ? cs.hbiGlobal : cs.hbiLocal;
                hbi += static_cast<int>(rec.hypotheses);
            }
        }
        if (out_.unknownSvas > 0) {
            inform("rtl2uspec: %zu SVA(s) undetermined, %zu "
                   "conservative degradation(s) recorded",
                   static_cast<size_t>(out_.unknownSvas),
                   out_.degraded.size());
        }
    }

    const vlog::ElabResult &design_;
    const DesignMetadata &md_;
    const nl::Netlist &nl_;
    bool full_unroll_ = false;
    nl::CoiSeeds base_seeds_;
    dfg::FullDesignDfg dfg_;
    dfg::StageLabels labels_;
    NodeId ifr_node_ = dfg::kNoNode;
    std::vector<Elem> elems_;
    std::map<std::string, std::set<NodeId>> updated_;
    /** Instruction types with an undetermined membership proof. */
    std::set<std::string> degraded_ops_;
    std::vector<dfg::InstrDfg> instr_dfgs_;
    std::map<NodeId, int> row_of_;
    std::map<int, std::vector<int>> per_element_rows_;
    std::vector<bool> stage_ordered_;
    bool regfile_ordered_ = false;
    bool remote_chain_proven_ = false;
    bool t_read_write_ = false;
    bool t_write_read_ = false;
    bool dataflow_proven_ = false;
    int hbis_ = 0;
    SynthesisResult out_;
    std::string validate_mode_;
    /** nl::structuralHash of the whole design (journal binding). */
    uint64_t netlist_hash_ = 0;
    /** propertyEnvHash() of the metadata (per-query key ingredient). */
    uint64_t property_env_hash_ = 0;

    /** Crash-safe verdict journal; declared before engine_ so the
     *  engine (which holds a raw pointer to it) dies first. */
    std::unique_ptr<bmc::Journal> journal_;
    /** Cross-run verdict cache; same lifetime rule as the journal. */
    std::unique_ptr<bmc::VerdictCache> cache_;
    /** The BMC query engine serving every SVA in this run. */
    std::unique_ptr<bmc::Engine> engine_;
    /** SynthesisOptions::engineHook (fired in ctor/dtor). */
    std::function<void(bmc::Engine *)> engine_hook_;
    /** Record indices of queries enqueued since the last flush. */
    std::vector<size_t> pending_;
};

} // namespace

std::string
SynthesisResult::report() const
{
    std::string out;
    out += strfmt("%-22s %8s %12s %14s %10s %10s %10s %10s\n",
                  "category", "# SVAs", "runtime (s)",
                  "runtime/SVA (s)", "hyp local", "hyp glob",
                  "HBI local", "HBI glob");
    const char *cats[] = {"intra", "spatial", "temporal", "dataflow"};
    int total_svas = 0;
    double total_time = 0;
    int thl = 0, thg = 0, tbl = 0, tbg = 0;
    for (const char *cat : cats) {
        auto it = stats.find(cat);
        if (it == stats.end())
            continue;
        const CategoryStats &cs = it->second;
        out += strfmt("%-22s %8d %12.3f %14.3f %10d %10d %10d %10d\n",
                      cat, cs.svas, cs.seconds,
                      cs.svas ? cs.seconds / cs.svas : 0.0, cs.hypLocal,
                      cs.hypGlobal, cs.hbiLocal, cs.hbiGlobal);
        total_svas += cs.svas;
        total_time += cs.seconds;
        thl += cs.hypLocal;
        thg += cs.hypGlobal;
        tbl += cs.hbiLocal;
        tbg += cs.hbiGlobal;
    }
    out += strfmt("%-22s %8d %12.3f %14.3f %10d %10d %10d %10d\n",
                  "total", total_svas, total_time,
                  total_svas ? total_time / total_svas : 0.0, thl, thg,
                  tbl, tbg);
    out += strfmt("static analysis: %.3f s, SVA evaluation: %.3f s, "
                  "post-processing: %.3f s, total: %.3f s\n",
                  staticSeconds, proofSeconds, postSeconds,
                  totalSeconds);
    out += strfmt("CNF per query (%s): %.0f vars / %.0f clauses mean\n",
                  fullUnroll ? "full unroll" : "COI-sliced",
                  meanCnfVars, meanCnfClauses);
    if (validateMode != "off") {
        out += strfmt(
            "validation (%s): %zu replay(s), %zu proof re-check(s) "
            "(%zu inconclusive), %zu mismatch(es), %zu degraded to "
            "Unknown, %.3f s (replay %.3f s, re-check %.3f s)\n",
            validateMode.c_str(), static_cast<size_t>(replays),
            static_cast<size_t>(proofRechecks),
            static_cast<size_t>(recheckInconclusive),
            static_cast<size_t>(validationMismatches),
            static_cast<size_t>(validationFailures), validateSeconds,
            replaySeconds, recheckSeconds);
    }
    if (portfolio)
        out += strfmt("portfolio: %zu race(s), %zu challenger win(s), "
                      "%zu clause(s) exported / %zu imported\n",
                      static_cast<size_t>(portfolioRaces),
                      static_cast<size_t>(portfolioChallengerWins),
                      static_cast<size_t>(sharedExported),
                      static_cast<size_t>(sharedImported));
    if (engineRaces > 0 || engineMode != "bmc")
        out += strfmt("engine (%s): %zu race(s); wins bmc=%zu "
                      "kind=%zu pdr=%zu; %zu unbounded proof(s), "
                      "%zu PDR frame(s) / %zu obligation(s)\n",
                      engineMode.c_str(),
                      static_cast<size_t>(engineRaces),
                      static_cast<size_t>(bmcWins),
                      static_cast<size_t>(kindWins),
                      static_cast<size_t>(pdrWins),
                      static_cast<size_t>(unboundedProofs),
                      static_cast<size_t>(pdrFrames),
                      static_cast<size_t>(pdrObligations));
    if (inprocessRuns > 0 || preprocessVarsEliminated > 0)
        out += strfmt("simplify: %zu var(s) eliminated / %zu clause(s) "
                      "removed preprocessing, %zu inprocessing pass(es) "
                      "removed %zu clause(s)\n",
                      static_cast<size_t>(preprocessVarsEliminated),
                      static_cast<size_t>(preprocessClausesRemoved),
                      static_cast<size_t>(inprocessRuns),
                      static_cast<size_t>(inprocessClausesRemoved));
    if (journalHits > 0 || journalAppends > 0)
        out += strfmt("journal: %zu verdict(s) resumed, %zu appended\n",
                      static_cast<size_t>(journalHits),
                      static_cast<size_t>(journalAppends));
    if (cacheEnabled)
        out += strfmt("cache: %zu hit(s), %zu miss(es), "
                      "%zu invalidation(s), %zu verdict(s) appended\n",
                      static_cast<size_t>(cacheHits),
                      static_cast<size_t>(cacheMisses),
                      static_cast<size_t>(cacheInvalidations),
                      static_cast<size_t>(cacheAppends));
    if (unknownSvas > 0) {
        out += strfmt("undetermined SVAs: %zu (model degraded "
                      "conservatively; see notes below)\n",
                      static_cast<size_t>(unknownSvas));
        for (const auto &note : degraded)
            out += "  degraded: " + note + "\n";
    }
    for (const auto &bug : bugs)
        out += bug + "\n";
    return out;
}

namespace
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strfmt("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

} // namespace

std::string
SynthesisResult::jsonReport() const
{
    std::string out = "{\n";
    out += strfmt("  \"jobs\": %u,\n", jobs);
    out += strfmt("  \"full_unroll\": %s,\n",
                  fullUnroll ? "true" : "false");
    out += strfmt("  \"sva_count\": %zu,\n", svas.size());
    out += strfmt("  \"unroll_contexts\": %zu,\n",
                  static_cast<size_t>(unrollContexts));
    out += strfmt("  \"contexts_seeded\": %zu,\n",
                  static_cast<size_t>(contextsSeeded));
    out += strfmt("  \"unknown_svas\": %zu,\n",
                  static_cast<size_t>(unknownSvas));
    out += strfmt("  \"bug_count\": %zu,\n", bugs.size());
    out += strfmt(
        "  \"timings\": {\"static_s\": %.6f, \"proof_s\": %.6f, "
        "\"post_s\": %.6f, \"total_s\": %.6f},\n",
        staticSeconds, proofSeconds, postSeconds, totalSeconds);
    out += strfmt(
        "  \"validation\": {\"mode\": \"%s\", \"replays\": %zu, "
        "\"proof_rechecks\": %zu, \"recheck_inconclusive\": %zu, "
        "\"mismatches\": %zu, \"validation_failures\": %zu, "
        "\"journal_hits\": %zu, \"journal_appends\": %zu, "
        "\"replay_s\": %.6f, \"recheck_s\": %.6f, "
        "\"validate_s\": %.6f},\n",
        validateMode.c_str(), static_cast<size_t>(replays),
        static_cast<size_t>(proofRechecks),
        static_cast<size_t>(recheckInconclusive),
        static_cast<size_t>(validationMismatches),
        static_cast<size_t>(validationFailures),
        static_cast<size_t>(journalHits),
        static_cast<size_t>(journalAppends), replaySeconds,
        recheckSeconds, validateSeconds);
    out += strfmt(
        "  \"cache\": {\"enabled\": %s, \"hits\": %zu, "
        "\"misses\": %zu, \"invalidations\": %zu, "
        "\"appends\": %zu},\n",
        cacheEnabled ? "true" : "false",
        static_cast<size_t>(cacheHits),
        static_cast<size_t>(cacheMisses),
        static_cast<size_t>(cacheInvalidations),
        static_cast<size_t>(cacheAppends));
    out += strfmt(
        "  \"portfolio\": {\"enabled\": %s, \"races\": %zu, "
        "\"challenger_wins\": %zu, \"shared_exported\": %zu, "
        "\"shared_imported\": %zu},\n",
        portfolio ? "true" : "false",
        static_cast<size_t>(portfolioRaces),
        static_cast<size_t>(portfolioChallengerWins),
        static_cast<size_t>(sharedExported),
        static_cast<size_t>(sharedImported));
    out += strfmt(
        "  \"engine\": {\"mode\": \"%s\", \"races\": %zu, "
        "\"bmc_wins\": %zu, \"kind_wins\": %zu, \"pdr_wins\": %zu, "
        "\"unbounded_proofs\": %zu, \"pdr_frames\": %zu, "
        "\"pdr_obligations\": %zu},\n",
        engineMode.c_str(), static_cast<size_t>(engineRaces),
        static_cast<size_t>(bmcWins), static_cast<size_t>(kindWins),
        static_cast<size_t>(pdrWins),
        static_cast<size_t>(unboundedProofs),
        static_cast<size_t>(pdrFrames),
        static_cast<size_t>(pdrObligations));
    out += strfmt(
        "  \"simplify\": {\"preprocess_vars_eliminated\": %zu, "
        "\"preprocess_clauses_removed\": %zu, "
        "\"inprocess_runs\": %zu, "
        "\"inprocess_clauses_removed\": %zu},\n",
        static_cast<size_t>(preprocessVarsEliminated),
        static_cast<size_t>(preprocessClausesRemoved),
        static_cast<size_t>(inprocessRuns),
        static_cast<size_t>(inprocessClausesRemoved));
    out += "  \"degraded\": [";
    for (size_t i = 0; i < degraded.size(); i++) {
        out += i ? ", " : "";
        out += "\"" + jsonEscape(degraded[i]) + "\"";
    }
    out += "],\n";
    out += "  \"svas\": [\n";
    for (size_t i = 0; i < svas.size(); i++) {
        const SvaRecord &r = svas[i];
        out += strfmt(
            "    {\"name\": \"%s\", \"category\": \"%s\", "
            "\"verdict\": \"%s\", \"source\": \"%s\", "
            "\"retries\": %u, \"seconds\": %.6f, "
            "\"conflicts\": %zu, \"propagations\": %zu, "
            "\"cnf_vars\": %zu, \"cnf_clauses\": %zu, "
            "\"validated\": %s, \"from_journal\": %s, "
            "\"from_cache\": %s, "
            "\"engine\": \"%s\", \"engine_raced\": %s, "
            "\"unbounded\": %s, "
            "\"degraded\": %s%s%s%s}%s\n",
            jsonEscape(r.name).c_str(), r.category.c_str(),
            bmc::verdictName(r.verdict),
            bmc::verdictSourceName(r.source), r.retries, r.seconds,
            static_cast<size_t>(r.conflicts),
            static_cast<size_t>(r.propagations), r.cnfVars,
            r.cnfClauses, r.validated ? "true" : "false",
            r.fromJournal ? "true" : "false",
            r.fromCache ? "true" : "false",
            r.engine.c_str(), r.engineRaced ? "true" : "false",
            r.unbounded ? "true" : "false",
            r.degraded ? "true" : "false",
            r.degraded ? ", \"degrade_note\": \"" : "",
            r.degraded ? jsonEscape(r.degradeNote).c_str() : "",
            r.degraded ? "\"" : "",
            i + 1 < svas.size() ? "," : "");
    }
    out += "  ]\n";
    out += "}\n";
    return out;
}

SynthesisResult
synthesize(const vlog::ElabResult &design, const DesignMetadata &metadata,
           const SynthesisOptions &options)
{
    Synthesizer s(design, metadata, options);
    return s.run();
}

} // namespace r2u::rtl2uspec
