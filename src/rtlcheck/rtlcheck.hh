/**
 * @file
 * RTLCheck-style baseline (Manerkar et al., MICRO 2017; paper §5.2):
 * verify a litmus test directly against the multi-V-scale RTL, one
 * whole-design proof per test.
 *
 * Each core's program is loaded into its instruction memory with a
 * symbolic start skew (leading NOPs, like a litmus harness varying
 * thread timings); the full four-core netlist is unrolled to a bound
 * that covers the slowest completion, and the SAT engine proves or
 * refutes "the forbidden outcome holds once all cores have parked".
 * This reproduces the baseline's cost structure: one large
 * whole-design property per test versus rtl2uspec's many small
 * localized ones amortized across tests (Fig. 6).
 */

#ifndef R2U_RTLCHECK_RTLCHECK_HH
#define R2U_RTLCHECK_RTLCHECK_HH

#include "bmc/checker.hh"
#include "litmus/litmus.hh"
#include "vscale/vscale.hh"

namespace r2u::rtlcheck
{

struct Options
{
    /** Max per-core start skew in cycles (NOP padding), >= 1. */
    unsigned maxSkew = 2;
    /** Extra frames beyond the simulated worst-case completion. */
    unsigned boundMargin = 6;
    /** Solver conflict budget; exceeding it marks the proof
     *  incomplete (Fig. 6 patterned bars). */
    int64_t conflictBudget = -1;
};

struct TestVerdict
{
    std::string name;
    bmc::Verdict verdict = bmc::Verdict::Unknown;
    /** True when completion of all cores within the bound was also
     *  proven (full proof, not just bounded). */
    bool complete = false;
    double seconds = 0.0;
    unsigned bound = 0;
    size_t cnfVars = 0;
    std::string trace; ///< counterexample on Refuted
};

/**
 * Verify that @p test's interesting (SC-forbidden) outcome is
 * unreachable on the multi-V-scale RTL elaborated per @p config.
 */
TestVerdict verifyTest(const vlog::ElabResult &design,
                       const vscale::Config &config,
                       const litmus::Test &test,
                       const Options &options = {});

} // namespace r2u::rtlcheck

#endif // R2U_RTLCHECK_RTLCHECK_HH
