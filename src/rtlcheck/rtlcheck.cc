#include "rtlcheck/rtlcheck.hh"

#include "common/logging.hh"
#include "common/timer.hh"
#include "isa/isa.hh"
#include "sim/simulator.hh"

namespace r2u::rtlcheck
{

using bmc::PropCtx;
using bmc::Verdict;
using sat::Lit;

namespace
{

/** imem image for one core at a given start skew. */
std::vector<uint32_t>
layoutProgram(const std::vector<uint32_t> &prog, unsigned skew,
              unsigned imem_words)
{
    std::vector<uint32_t> image(imem_words, isa::nopWord());
    R2U_ASSERT(skew + prog.size() + 1 <= imem_words,
               "program with skew does not fit in imem");
    for (size_t i = 0; i < prog.size(); i++)
        image[skew + i] = prog[i];
    isa::Inst spin;
    spin.op = isa::Op::Jal;
    image[skew + prog.size()] = isa::encode(spin);
    return image;
}

} // namespace

TestVerdict
verifyTest(const vlog::ElabResult &design, const vscale::Config &config,
           const litmus::Test &test, const Options &options)
{
    Timer timer;
    TestVerdict verdict;
    verdict.name = test.name;

    unsigned nskews = options.maxSkew + 1;
    R2U_ASSERT(nskews >= 1 && nskews <= 4, "skew range must fit 2 bits");

    // Per-core programs (unused cores spin immediately).
    std::vector<std::vector<uint32_t>> progs(vscale::kNumCores);
    for (size_t t = 0; t < test.threads.size() && t < vscale::kNumCores;
         t++)
        progs[t] = isa::assemble(test.threadAssembly(t));

    // ------------------------------------------------------------------
    // Bound estimation by simulating the extreme skew assignments.
    // ------------------------------------------------------------------
    unsigned worst = 0;
    for (unsigned skew : {0u, options.maxSkew}) {
        sim::Simulator sim(*design.netlist);
        for (unsigned c = 0; c < vscale::kNumCores; c++) {
            auto image = layoutProgram(progs[c], skew,
                                       config.imemWords);
            nl::MemId imem =
                design.mem("imem_" + std::to_string(c) + ".mem");
            for (unsigned i = 0; i < config.imemWords; i++)
                sim.pokeMem(imem, i, Bits(32, image[i]));
        }
        sim.setInput("clk", Bits(1, 0));
        sim.setInput("reset", Bits(1, 1));
        sim.step();
        sim.setInput("reset", Bits(1, 0));
        unsigned cycles = 0;
        bool done = false;
        while (cycles < 400 && !done) {
            sim.step();
            cycles++;
            done = true;
            for (unsigned c = 0; c < vscale::kNumCores; c++) {
                uint32_t spin = static_cast<uint32_t>(
                    4 * (skew + progs[c].size()));
                uint32_t pc = static_cast<uint32_t>(
                    sim.value(vscale::coreSig(c, "PC_IF")).toUint64());
                done &= (pc == spin || pc == spin + 4);
            }
        }
        if (!done)
            fatal("rtlcheck: test '%s' did not complete in simulation",
                  test.name.c_str());
        worst = std::max(worst, cycles);
    }
    unsigned bound = worst + options.boundMargin + 1;
    verdict.bound = bound;

    // ------------------------------------------------------------------
    // Whole-design BMC with symbolic per-core start skew.
    // ------------------------------------------------------------------
    bmc::Unroller::Options uopts;
    for (unsigned c = 0; c < vscale::kNumCores; c++) {
        uopts.symbolicMems.insert(
            design.mem("imem_" + std::to_string(c) + ".mem"));
    }
    // regfiles and dmem start from power-on zeros (concrete).

    PropCtx ctx(*design.netlist, design.signalMap, uopts, bound);
    auto &cnf = ctx.cnf();
    ctx.pinInput("reset", 0);

    auto locs = test.locations();

    // Constrain instruction memories per symbolic skew.
    std::vector<sat::Word> skew(vscale::kNumCores);
    for (unsigned c = 0; c < vscale::kNumCores; c++) {
        skew[c] = ctx.rigid("skew" + std::to_string(c), 2);
        nl::MemId imem =
            design.mem("imem_" + std::to_string(c) + ".mem");
        if (nskews <= 3) {
            // Exclude out-of-range skew values.
            for (unsigned k = nskews; k < 4; k++)
                ctx.assume(~cnf.mkEqW(skew[c], cnf.constWord(2, k)));
        }
        for (unsigned k = 0; k < nskews; k++) {
            Lit sel = cnf.mkEqW(skew[c], cnf.constWord(2, k));
            auto image = layoutProgram(progs[c], k, config.imemWords);
            for (unsigned i = 0; i < config.imemWords; i++) {
                Lit eq = cnf.mkEqW(ctx.unroller().memWord(0, imem, i),
                                   cnf.constWord(32, image[i]));
                ctx.assume(cnf.mkImplies(sel, eq));
            }
        }
    }

    // All cores parked at the final frame.
    unsigned last = bound - 1;
    Lit parked_all = cnf.trueLit();
    for (unsigned c = 0; c < vscale::kNumCores; c++) {
        const sat::Word &pc = ctx.at(
            last, vscale::coreSig(c, "PC_IF"));
        Lit parked = cnf.falseLit();
        for (unsigned k = 0; k < nskews; k++) {
            Lit sel = cnf.mkEqW(skew[c], cnf.constWord(2, k));
            uint32_t spin = static_cast<uint32_t>(
                4 * (k + progs[c].size()));
            Lit at_spin = cnf.mkOr(
                cnf.mkEqW(pc, cnf.constWord(
                                  static_cast<unsigned>(pc.size()),
                                  spin)),
                cnf.mkEqW(pc, cnf.constWord(
                                  static_cast<unsigned>(pc.size()),
                                  spin + 4)));
            parked = cnf.mkOr(parked, cnf.mkAnd(sel, at_spin));
        }
        parked_all = cnf.mkAnd(parked_all, parked);
    }

    // The interesting outcome, read from architectural state.
    Lit outcome = cnf.trueLit();
    for (const litmus::RegCond &rc : test.interesting.regs) {
        nl::MemId rf = design.mem(
            vscale::coreSig(static_cast<unsigned>(rc.thread),
                            "regfile"));
        const sat::Word &v = ctx.unroller().memWord(
            last, rf, static_cast<unsigned>(rc.reg) % config.nregs);
        outcome = cnf.mkAnd(
            outcome,
            cnf.mkEqW(v, cnf.constWord(config.xlen,
                                       static_cast<uint64_t>(rc.value))));
    }
    nl::MemId dmem = design.mem("dmem.mem");
    for (const litmus::MemCond &mc : test.interesting.mem) {
        unsigned word = 0;
        for (size_t i = 0; i < locs.size(); i++)
            if (locs[i] == mc.loc)
                word = static_cast<unsigned>(i);
        const sat::Word &v = ctx.unroller().memWord(last, dmem, word);
        outcome = cnf.mkAnd(
            outcome,
            cnf.mkEqW(v, cnf.constWord(config.xlen,
                                       static_cast<uint64_t>(mc.value))));
    }

    for (unsigned c = 0; c < vscale::kNumCores; c++)
        ctx.watch(vscale::coreSig(c, "PC_IF"));

    // Solve 1: can the forbidden outcome be observed?
    Lit bad = cnf.mkAnd(parked_all, outcome);
    ctx.solver().setConflictBudget(options.conflictBudget);
    sat::Result r = ctx.solver().solve({bad});
    verdict.cnfVars = static_cast<size_t>(ctx.solver().numVars());
    switch (r) {
      case sat::Result::Sat: {
        verdict.verdict = Verdict::Refuted;
        bmc::Trace trace;
        for (unsigned f = 0; f < bound; f++) {
            bmc::TraceStep step;
            for (const auto &name : ctx.watched())
                step.signals[name] =
                    ctx.unroller().wireValue(f, ctx.cellOf(name));
            trace.steps.push_back(std::move(step));
        }
        verdict.trace = trace.toString();
        break;
      }
      case sat::Result::Unsat:
        verdict.verdict = Verdict::Proven;
        break;
      case sat::Result::Unknown:
        verdict.verdict = Verdict::Unknown;
        break;
    }

    // Solve 2: completion — all executions park within the bound.
    if (verdict.verdict == Verdict::Proven) {
        sat::Result done = ctx.solver().solve({~parked_all});
        verdict.complete = done == sat::Result::Unsat;
    }

    verdict.seconds = timer.seconds();
    return verdict;
}

} // namespace r2u::rtlcheck
