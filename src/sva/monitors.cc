#include "sva/monitors.hh"

#include "common/logging.hh"

namespace r2u::sva
{

using sat::Lit;

EventVec
occupancy(bmc::PropCtx &ctx, const std::string &signal,
          const sat::Word &rigid)
{
    return occupancyCell(ctx, ctx.cellOf(signal), rigid);
}

EventVec
occupancyCell(bmc::PropCtx &ctx, nl::CellId cell, const sat::Word &rigid)
{
    EventVec ev(ctx.bound());
    for (unsigned f = 0; f < ctx.bound(); f++) {
        const sat::Word &w = ctx.unroller().wire(f, cell);
        R2U_ASSERT(w.size() == rigid.size(),
                   "occupancy width mismatch %zu vs %zu", w.size(),
                   rigid.size());
        ev[f] = ctx.cnf().mkEqW(w, rigid);
    }
    return ev;
}

void
assumeOneInterval(bmc::PropCtx &ctx, const EventVec &ev)
{
    auto &cnf = ctx.cnf();
    Lit started = cnf.falseLit();
    Lit ended = cnf.falseLit();
    for (size_t f = 0; f < ev.size(); f++) {
        // Once the interval has ended, the event may not re-fire.
        ctx.assume(~cnf.mkAnd(ended, ev[f]));
        ended = cnf.mkOr(ended, cnf.mkAnd(started, ~ev[f]));
        started = cnf.mkOr(started, ev[f]);
    }
    ctx.assume(started); // non-empty
    ctx.assume(ended);   // closes within the bound
}

void
assumeBinding(bmc::PropCtx &ctx, const EventVec &occ,
              const std::string &signal, const sat::Word &rigid)
{
    auto &cnf = ctx.cnf();
    nl::CellId cell = ctx.cellOf(signal);
    for (size_t f = 0; f < occ.size(); f++) {
        Lit eq = cnf.mkEqW(
            ctx.unroller().wire(static_cast<unsigned>(f), cell), rigid);
        ctx.assume(cnf.mkImplies(occ[f], eq));
    }
}

void
assumeEncoding(bmc::PropCtx &ctx, const sat::Word &rigid, uint64_t mask,
               uint64_t match)
{
    R2U_ASSERT(rigid.size() <= 64, "encoding rigid too wide");
    for (size_t b = 0; b < rigid.size(); b++) {
        if ((mask >> b) & 1) {
            bool bit = (match >> b) & 1;
            ctx.assume(bit ? rigid[b] : ~rigid[b]);
        }
    }
}

Lit
changeDuring(bmc::PropCtx &ctx, const EventVec &occ, nl::CellId element)
{
    auto &cnf = ctx.cnf();
    Lit bad = cnf.falseLit();
    for (size_t f = 1; f < occ.size(); f++) {
        Lit same = cnf.mkEqW(
            ctx.unroller().wire(static_cast<unsigned>(f), element),
            ctx.unroller().wire(static_cast<unsigned>(f) - 1, element));
        bad = cnf.mkOr(bad, cnf.mkAnd(occ[f], ~same));
    }
    return bad;
}

Lit
eventDuring(bmc::PropCtx &ctx, const EventVec &occ, const EventVec &event)
{
    auto &cnf = ctx.cnf();
    R2U_ASSERT(occ.size() == event.size(), "event vector size mismatch");
    Lit bad = cnf.falseLit();
    for (size_t f = 0; f < occ.size(); f++)
        bad = cnf.mkOr(bad, cnf.mkAnd(occ[f], event[f]));
    return bad;
}

EventVec
andEvents(bmc::PropCtx &ctx, const EventVec &a, const EventVec &b)
{
    R2U_ASSERT(a.size() == b.size(), "event vector size mismatch");
    EventVec out(a.size());
    for (size_t f = 0; f < a.size(); f++)
        out[f] = ctx.cnf().mkAnd(a[f], b[f]);
    return out;
}

EventVec
entryEvents(bmc::PropCtx &ctx, const EventVec &ev)
{
    EventVec out(ev.size());
    for (size_t f = 0; f < ev.size(); f++)
        out[f] = f == 0 ? ev[0] : ctx.cnf().mkAnd(ev[f], ~ev[f - 1]);
    return out;
}

EventVec
exitEvents(bmc::PropCtx &ctx, const EventVec &ev)
{
    EventVec out(ev.size());
    for (size_t f = 0; f < ev.size(); f++) {
        out[f] = f + 1 < ev.size()
                     ? ctx.cnf().mkAnd(ev[f], ~ev[f + 1])
                     : ctx.cnf().falseLit();
    }
    return out;
}

EventVec
seenPrefix(bmc::PropCtx &ctx, const EventVec &ev)
{
    EventVec out(ev.size());
    sat::Lit acc = ctx.cnf().falseLit();
    for (size_t f = 0; f < ev.size(); f++) {
        acc = ctx.cnf().mkOr(acc, ev[f]);
        out[f] = acc;
    }
    return out;
}

Lit
occurs(bmc::PropCtx &ctx, const EventVec &ev)
{
    return ev.empty() ? ctx.cnf().falseLit()
                      : seenPrefix(ctx, ev).back();
}

Lit
notStrictlyBefore(bmc::PropCtx &ctx, const EventVec &a, const EventVec &b)
{
    auto &cnf = ctx.cnf();
    EventVec seen_a = seenPrefix(ctx, a);
    EventVec first_b = entryEvents(ctx, seenPrefix(ctx, b));
    Lit bad = cnf.falseLit();
    for (size_t f = 0; f < b.size(); f++) {
        Lit a_before = f == 0 ? cnf.falseLit() : seen_a[f - 1];
        bad = cnf.mkOr(bad, cnf.mkAnd(first_b[f], ~a_before));
    }
    return bad;
}

void
assumeStrictlyBefore(bmc::PropCtx &ctx, const EventVec &a,
                     const EventVec &b)
{
    ctx.assume(occurs(ctx, a));
    ctx.assume(occurs(ctx, b));
    ctx.assume(~notStrictlyBefore(ctx, a, b));
}

} // namespace r2u::sva
