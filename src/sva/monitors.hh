/**
 * @file
 * Temporal monitor encodings for the paper's SVA templates (Fig. 4 and
 * §4.3.3), built over a bmc::PropCtx.
 *
 * An instruction instance is identified by a rigid PC (pc0) and rigid
 * encoding (i0) as in the paper: occupancy of pipeline stage k is the
 * per-frame predicate PCR[k] == pc0. The helpers build the standard
 * assumption/assertion pieces:
 *   - P0: the stage-0 occupancy forms one contiguous interval,
 *   - P2: while occupying stage 0, the IFR holds i0,
 *   - P3: i0 matches an instruction type's mask/match encoding,
 *   - A0: "s never changes during occupancy" violations,
 *   - ordering: "first event A strictly before first event B".
 */

#ifndef R2U_SVA_MONITORS_HH
#define R2U_SVA_MONITORS_HH

#include <string>
#include <vector>

#include "bmc/checker.hh"

namespace r2u::sva
{

using EventVec = std::vector<sat::Lit>; ///< one literal per frame

/** Per-frame equality of a signal with a rigid word. */
EventVec occupancy(bmc::PropCtx &ctx, const std::string &signal,
                   const sat::Word &rigid);

/** Per-frame equality of a signal (by cell) with a rigid word. */
EventVec occupancyCell(bmc::PropCtx &ctx, nl::CellId cell,
                       const sat::Word &rigid);

/**
 * Assume the event vector is one non-empty contiguous interval that
 * also ends within the bound (template P0: `!=pc0 [*0:$] ##1 ==pc0
 * [*1:$] ##1 !=pc0`). Requiring the interval to close keeps update
 * events attributable within the unrolling.
 */
void assumeOneInterval(bmc::PropCtx &ctx, const EventVec &ev);

/** Assume ev[f] -> (signal_f == rigid) for every frame (P2). */
void assumeBinding(bmc::PropCtx &ctx, const EventVec &occ,
                   const std::string &signal, const sat::Word &rigid);

/**
 * Assume (rigid & mask) == match (P3). The mask/match words are 64-bit
 * so encodings wider than 32 bits index every rigid bit defined-ly.
 */
void assumeEncoding(bmc::PropCtx &ctx, const sat::Word &rigid,
                    uint64_t mask, uint64_t match);

/**
 * A0 violation: some frame f >= 1 where the stage is occupied and the
 * state element changed relative to frame f-1.
 */
sat::Lit changeDuring(bmc::PropCtx &ctx, const EventVec &occ,
                      nl::CellId element);

/** Violation: some frame where @p occ holds and @p event fires. */
sat::Lit eventDuring(bmc::PropCtx &ctx, const EventVec &occ,
                     const EventVec &event);

/** Conjunction per frame of two event vectors. */
EventVec andEvents(bmc::PropCtx &ctx, const EventVec &a,
                   const EventVec &b);

/** ev[f] && !ev[f-1] (entry edges); frame 0 uses ev[0]. */
EventVec entryEvents(bmc::PropCtx &ctx, const EventVec &ev);

/** ev[f] && !ev[f+1] (exit edges); the last frame never exits. */
EventVec exitEvents(bmc::PropCtx &ctx, const EventVec &ev);

/** seen[f] = ev[0] | ... | ev[f]. */
EventVec seenPrefix(bmc::PropCtx &ctx, const EventVec &ev);

/** Lit: event vector fires at least once. */
sat::Lit occurs(bmc::PropCtx &ctx, const EventVec &ev);

/**
 * Violation of "first occurrence of A strictly before first
 * occurrence of B": true iff B first fires at some frame f with no A
 * occurrence in frames 0..f-1.
 */
sat::Lit notStrictlyBefore(bmc::PropCtx &ctx, const EventVec &a,
                           const EventVec &b);

/**
 * Assume A's first occurrence is strictly before B's first occurrence
 * and both occur (used to posit a reference order such as program
 * order between two instruction instances).
 */
void assumeStrictlyBefore(bmc::PropCtx &ctx, const EventVec &a,
                          const EventVec &b);

} // namespace r2u::sva

#endif // R2U_SVA_MONITORS_HH
