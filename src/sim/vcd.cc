#include "sim/vcd.hh"

#include "common/logging.hh"
#include "common/strutil.hh"

namespace r2u::sim
{

VcdWriter::VcdWriter(Simulator &sim, std::vector<nl::CellId> signals)
    : sim_(sim), signals_(std::move(signals))
{
    last_.resize(signals_.size());
}

VcdWriter::VcdWriter(Simulator &sim, const std::vector<std::string> &names)
    : sim_(sim)
{
    for (const auto &name : names) {
        nl::CellId id = sim.netlist().findByName(name);
        if (id == nl::kNoCell)
            fatal("vcd: no wire named '%s'", name.c_str());
        signals_.push_back(id);
    }
    last_.resize(signals_.size());
}

std::string
VcdWriter::idCode(size_t index) const
{
    // Printable VCD identifier characters: '!' (33) .. '~' (126).
    std::string code;
    size_t n = index;
    do {
        code.push_back(static_cast<char>('!' + n % 94));
        n /= 94;
    } while (n > 0);
    return code;
}

void
VcdWriter::sample()
{
    body_ += strfmt("#%llu\n",
                    static_cast<unsigned long long>(sim_.cycle()));
    for (size_t i = 0; i < signals_.size(); i++) {
        const Bits &v = sim_.value(signals_[i]);
        if (!first_sample_ && v == last_[i])
            continue;
        const nl::Cell &c = sim_.netlist().cell(signals_[i]);
        if (c.width == 1) {
            body_ += strfmt("%c%s\n", v.toBool() ? '1' : '0',
                            idCode(i).c_str());
        } else {
            body_ += "b" + v.toBinString() + " " + idCode(i) + "\n";
        }
        last_[i] = v;
    }
    first_sample_ = false;
}

std::string
VcdWriter::render() const
{
    std::string out;
    out += "$date r2u simulation $end\n";
    out += "$version rtl2uspec netlist simulator $end\n";
    out += "$timescale 1ns $end\n";
    out += "$scope module top $end\n";
    for (size_t i = 0; i < signals_.size(); i++) {
        const nl::Cell &c = sim_.netlist().cell(signals_[i]);
        std::string name =
            c.name.empty() ? strfmt("cell_%d", c.id) : c.name;
        for (char &ch : name)
            if (ch == '.' || ch == '[' || ch == ']')
                ch = '_';
        out += strfmt("$var wire %u %s %s $end\n", c.width,
                      idCode(i).c_str(), name.c_str());
    }
    out += "$upscope $end\n$enddefinitions $end\n";
    out += body_;
    return out;
}

void
VcdWriter::writeTo(const std::string &path) const
{
    writeFile(path, render());
}

} // namespace r2u::sim
