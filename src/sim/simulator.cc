#include "sim/simulator.hh"

#include "common/logging.hh"

namespace r2u::sim
{

using nl::CellId;
using nl::CellKind;

Simulator::Simulator(const nl::Netlist &netlist) : nl_(netlist)
{
    nl_.validate();
    reset();
}

void
Simulator::reset()
{
    values_.assign(nl_.numCells(), Bits());
    for (size_t i = 0; i < nl_.numCells(); i++) {
        const nl::Cell &c = nl_.cell(static_cast<CellId>(i));
        switch (c.kind) {
          case CellKind::Const:
          case CellKind::Dff:
            values_[i] = c.value;
            break;
          default:
            values_[i] = Bits(c.width);
            break;
        }
    }
    mems_.clear();
    for (size_t m = 0; m < nl_.numMemories(); m++)
        mems_.push_back(nl_.memory(static_cast<nl::MemId>(m)).init);
    cycle_ = 0;
    comb_dirty_ = true;
}

void
Simulator::setInput(CellId input, const Bits &value)
{
    const nl::Cell &c = nl_.cell(input);
    R2U_ASSERT(c.kind == CellKind::Input, "setInput on non-input '%s'",
               c.name.c_str());
    R2U_ASSERT(c.width == value.width(),
               "input '%s' width %u, got value width %u", c.name.c_str(),
               c.width, value.width());
    values_[input] = value;
    comb_dirty_ = true;
}

void
Simulator::setInput(const std::string &name, const Bits &value)
{
    CellId id = nl_.findByName(name);
    if (id == nl::kNoCell)
        fatal("no input named '%s'", name.c_str());
    setInput(id, value);
}

unsigned
Simulator::wrapAddr(const nl::Memory &m, const Bits &addr) const
{
    uint64_t a = addr.toUint64();
    return static_cast<unsigned>(a % m.depth);
}

Bits
Simulator::evalCell(CellId id) const
{
    const nl::Cell &c = nl_.cell(id);
    auto in = [&](size_t i) -> const Bits & {
        return values_[c.inputs[i]];
    };
    switch (c.kind) {
      case CellKind::Add: return in(0) + in(1);
      case CellKind::Sub: return in(0) - in(1);
      case CellKind::And: return in(0) & in(1);
      case CellKind::Or: return in(0) | in(1);
      case CellKind::Xor: return in(0) ^ in(1);
      case CellKind::Not: return ~in(0);
      case CellKind::Mux:
        return in(0).toBool() ? in(1) : in(2);
      case CellKind::Eq:
        return Bits(1, in(0) == in(1) ? 1 : 0);
      case CellKind::Ult:
        return Bits(1, in(0).ult(in(1)) ? 1 : 0);
      case CellKind::Slt:
        return Bits(1, in(0).slt(in(1)) ? 1 : 0);
      case CellKind::RedOr:
        return Bits(1, in(0).toBool() ? 1 : 0);
      case CellKind::RedAnd:
        return Bits(1, in(0).isAllOnes() ? 1 : 0);
      case CellKind::Shl: {
        uint64_t sh = in(1).toUint64();
        return in(0).shl(sh >= c.width ? c.width : unsigned(sh));
      }
      case CellKind::Lshr: {
        uint64_t sh = in(1).toUint64();
        return in(0).lshr(sh >= c.width ? c.width : unsigned(sh));
      }
      case CellKind::Ashr: {
        uint64_t sh = in(1).toUint64();
        return in(0).ashr(sh >= c.width ? c.width : unsigned(sh));
      }
      case CellKind::Concat: {
        Bits acc;
        // inputs are MSB-first; concat from the last (LSB) up.
        for (size_t i = c.inputs.size(); i-- > 0;)
            acc = Bits::concat(values_[c.inputs[i]], acc);
        return acc;
      }
      case CellKind::Slice:
        return in(0).slice(c.lo, c.width);
      case CellKind::Zext:
        return in(0).zext(c.width);
      case CellKind::Sext:
        return in(0).sext(c.width);
      case CellKind::MemRead: {
        const nl::Memory &m = nl_.memory(c.mem);
        return mems_[c.mem][wrapAddr(m, in(0))];
      }
      default:
        panic("evalCell on non-combinational cell %s",
              nl::cellKindName(c.kind));
    }
}

void
Simulator::evalComb()
{
    if (!comb_dirty_)
        return;
    for (CellId id : nl_.topoOrder())
        values_[id] = evalCell(id);
    comb_dirty_ = false;
}

void
Simulator::step()
{
    evalComb();

    // Capture next-state for all registers (read phase).
    std::vector<std::pair<CellId, Bits>> dff_next;
    dff_next.reserve(nl_.dffs().size());
    for (CellId id : nl_.dffs()) {
        const nl::Cell &c = nl_.cell(id);
        const Bits &en = values_[c.inputs[1]];
        if (en.toBool())
            dff_next.emplace_back(id, values_[c.inputs[0]]);
    }

    // Capture memory writes (read phase). Later ports take priority.
    std::vector<std::tuple<nl::MemId, unsigned, Bits>> writes;
    for (size_t m = 0; m < nl_.numMemories(); m++) {
        const nl::Memory &mem = nl_.memory(static_cast<nl::MemId>(m));
        for (CellId port : mem.writePorts) {
            const nl::Cell &c = nl_.cell(port);
            const Bits &en = values_[c.inputs[2]];
            if (!en.toBool())
                continue;
            unsigned addr = wrapAddr(mem, values_[c.inputs[0]]);
            writes.emplace_back(static_cast<nl::MemId>(m), addr,
                                values_[c.inputs[1]]);
        }
    }

    // Commit phase.
    for (auto &[id, v] : dff_next)
        values_[id] = v;
    for (auto &[m, addr, v] : writes)
        mems_[m][addr] = v;

    cycle_++;
    comb_dirty_ = true;
}

void
Simulator::run(unsigned n)
{
    for (unsigned i = 0; i < n; i++)
        step();
}

const Bits &
Simulator::value(CellId id)
{
    evalComb();
    return values_[id];
}

const Bits &
Simulator::value(const std::string &name)
{
    CellId id = nl_.findByName(name);
    if (id == nl::kNoCell)
        fatal("no wire named '%s'", name.c_str());
    return value(id);
}

const Bits &
Simulator::memWord(nl::MemId mem, unsigned addr) const
{
    R2U_ASSERT(addr < nl_.memory(mem).depth, "memWord addr out of range");
    return mems_[mem][addr];
}

void
Simulator::pokeMem(nl::MemId mem, unsigned addr, const Bits &value)
{
    R2U_ASSERT(addr < nl_.memory(mem).depth, "pokeMem addr out of range");
    R2U_ASSERT(value.width() == nl_.memory(mem).width,
               "pokeMem width mismatch");
    mems_[mem][addr] = value;
    comb_dirty_ = true;
}

void
Simulator::pokeDff(nl::CellId dff, const Bits &value)
{
    const nl::Cell &c = nl_.cell(dff);
    R2U_ASSERT(c.kind == CellKind::Dff, "pokeDff on non-dff");
    R2U_ASSERT(c.width == value.width(), "pokeDff width mismatch");
    values_[dff] = value;
    comb_dirty_ = true;
}

} // namespace r2u::sim
