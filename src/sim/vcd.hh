/**
 * @file
 * VCD (Value Change Dump) waveform writer for the netlist simulator.
 * Record a set of wires each cycle and dump a standard VCD file that
 * any waveform viewer (GTKWave etc.) can open — the debugging
 * companion to counterexample traces.
 */

#ifndef R2U_SIM_VCD_HH
#define R2U_SIM_VCD_HH

#include <string>
#include <vector>

#include "sim/simulator.hh"

namespace r2u::sim
{

class VcdWriter
{
  public:
    /**
     * Watch the given wires of @p sim. Signals may be any cell id;
     * display names default to the cells' hierarchical names.
     */
    VcdWriter(Simulator &sim, std::vector<nl::CellId> signals);

    /** Convenience: resolve names through the netlist. */
    VcdWriter(Simulator &sim, const std::vector<std::string> &names);

    /** Record the current values at the simulator's current cycle. */
    void sample();

    /** Render the VCD text accumulated so far. */
    std::string render() const;

    /** Write to a file. */
    void writeTo(const std::string &path) const;

  private:
    std::string idCode(size_t index) const;

    Simulator &sim_;
    std::vector<nl::CellId> signals_;
    std::vector<Bits> last_;
    bool first_sample_ = true;
    std::string body_;
};

} // namespace r2u::sim

#endif // R2U_SIM_VCD_HH
