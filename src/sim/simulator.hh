/**
 * @file
 * Cycle-accurate interpreter for nl::Netlist designs.
 *
 * Evaluation model: within a cycle, combinational cells are evaluated
 * in topological order from the current sequential state and inputs;
 * step() then updates all Dff cells and applies all memory writes
 * simultaneously (reads see pre-edge state), advancing one clock edge.
 */

#ifndef R2U_SIM_SIMULATOR_HH
#define R2U_SIM_SIMULATOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/bits.hh"
#include "netlist/netlist.hh"

namespace r2u::sim
{

class Simulator
{
  public:
    explicit Simulator(const nl::Netlist &netlist);

    /** Return all state to power-on values and clear inputs to zero. */
    void reset();

    void setInput(nl::CellId input, const Bits &value);
    void setInput(const std::string &name, const Bits &value);

    /** Advance one clock edge. */
    void step();

    /** Run @p n clock edges. */
    void run(unsigned n);

    /** Current (post-combinational) value of any wire. */
    const Bits &value(nl::CellId id);
    const Bits &value(const std::string &name);

    /** Current contents of one memory word. */
    const Bits &memWord(nl::MemId mem, unsigned addr) const;

    /** Overwrite a memory word (e.g., program loading). */
    void pokeMem(nl::MemId mem, unsigned addr, const Bits &value);

    /** Overwrite a register (e.g., for directed state setup in tests). */
    void pokeDff(nl::CellId dff, const Bits &value);

    uint64_t cycle() const { return cycle_; }

    const nl::Netlist &netlist() const { return nl_; }

  private:
    void evalComb();
    Bits evalCell(nl::CellId id) const;
    unsigned wrapAddr(const nl::Memory &m, const Bits &addr) const;

    const nl::Netlist &nl_;
    std::vector<Bits> values_;       ///< wire values, indexed by CellId
    std::vector<std::vector<Bits>> mems_;
    uint64_t cycle_ = 0;
    bool comb_dirty_ = true;
};

} // namespace r2u::sim

#endif // R2U_SIM_SIMULATOR_HH
