/**
 * @file
 * Service-level chaos harness (--chaos SPEC).
 *
 * Extends the engine's per-query fault hook into fault *classes* the
 * daemon can arm from the command line, so every recovery path the
 * service claims — watchdog-interrupt of a hung solver, torn-append
 * rollback, client reconnect — is exercised by tests against the real
 * daemon, not just unit-level seams:
 *
 *   stall=N      hang the solver thread inside the engine fault hook
 *                for the next N queries (heartbeat stops advancing;
 *                the watchdog must fire Engine::interrupt())
 *   stall-ms=MS  how long each injected stall holds on (default
 *                10000; the watchdog is expected to cut it short)
 *   torn=N       fail the next N verdict-cache appends after writing
 *                half the frame (Journal/VerdictCache::setWriteFault)
 *   drop=N       close the next N client connections right before the
 *                response frame (client must reconnect + re-issue)
 *
 * Counters are consumable: each injection decrements its budget, so a
 * retried request runs clean and the end state must be bit-identical
 * to a fault-free run. All counters are thread-safe; a spec like
 * "stall=1,torn=2,drop=1" arms several classes at once.
 */

#ifndef R2U_SERVE_CHAOS_HH
#define R2U_SERVE_CHAOS_HH

#include <atomic>
#include <string>

namespace r2u::serve
{

struct ChaosSpec
{
    std::atomic<int> stall{0};
    int stallMs = 10000;
    std::atomic<int> torn{0};
    std::atomic<int> drop{0};

    ChaosSpec() = default;
    ChaosSpec(const ChaosSpec &) = delete;
    ChaosSpec &operator=(const ChaosSpec &) = delete;

    /**
     * Parse "key=value,key=value" (keys above). Returns false with a
     * message in @p err on an unknown key or malformed value; @p out
     * keeps whatever parsed before the error.
     */
    static bool parse(const std::string &spec, ChaosSpec &out,
                      std::string *err);

    /** Consume one injection from @p counter; false when exhausted. */
    static bool fire(std::atomic<int> &counter);

    bool armed() const
    {
        return stall.load() > 0 || torn.load() > 0 || drop.load() > 0;
    }

    /** "stall=1(ms=500),torn=0,drop=2" style remaining-budget line. */
    std::string summary() const;
};

} // namespace r2u::serve

#endif // R2U_SERVE_CHAOS_HH
