/**
 * @file
 * Length-prefixed frame codec for the synthesis-service socket.
 *
 * One frame = u32 little-endian payload length + payload bytes (a
 * single JSON document, see serve/json.hh). The prefix makes message
 * boundaries explicit over a stream socket, so a reader never has to
 * guess where a document ends, and a hard cap on the length rejects a
 * garbage prefix (a client speaking the wrong protocol) before it
 * turns into a multi-gigabyte allocation.
 *
 * All calls are blocking and EINTR-safe. Writes go through send() with
 * MSG_NOSIGNAL — a peer that disappeared mid-response must surface as
 * an error on *this* connection, not a process-wide SIGPIPE.
 */

#ifndef R2U_SERVE_PROTOCOL_HH
#define R2U_SERVE_PROTOCOL_HH

#include <cstdint>
#include <string>

namespace r2u::serve
{

/** Default sanity cap on a frame payload (requests are small JSON;
 *  responses may inline a model report — 16 MiB is generous). */
constexpr uint32_t kMaxFrameBytes = 16u << 20;

enum class FrameIo : uint8_t
{
    Ok,
    /** Clean EOF on a frame boundary (peer closed between frames). */
    Eof,
    /** I/O error or EOF mid-frame (torn message). */
    Error,
    /** Length prefix exceeded the cap; the stream is unrecoverable. */
    TooBig,
};

/** Write one frame; false on any I/O error (connection is dead). */
bool writeFrame(int fd, const std::string &payload);

/** Read one frame into @p payload. */
FrameIo readFrame(int fd, std::string &payload,
                  uint32_t max_bytes = kMaxFrameBytes);

} // namespace r2u::serve

#endif // R2U_SERVE_PROTOCOL_HH
