#include "serve/client.hh"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "serve/protocol.hh"

namespace r2u::serve
{

Client::~Client() { close(); }

void
Client::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

bool
Client::connect(const std::string &socket_path, std::string *err)
{
    close();
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socket_path.size() >= sizeof(addr.sun_path)) {
        if (err)
            *err = "socket path too long: " + socket_path;
        return false;
    }
    std::strncpy(addr.sun_path, socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        if (err)
            *err = std::string("socket: ") + strerror(errno);
        return false;
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        if (err)
            *err = "connect " + socket_path + ": " + strerror(errno);
        ::close(fd);
        return false;
    }
    fd_ = fd;
    return true;
}

bool
Client::request(const json::Value &req, json::Value &resp,
                std::string *err)
{
    if (fd_ < 0) {
        if (err)
            *err = "not connected";
        return false;
    }
    if (!writeFrame(fd_, req.dump())) {
        if (err)
            *err = std::string("send: ") + strerror(errno);
        close();
        return false;
    }
    std::string payload;
    FrameIo r = readFrame(fd_, payload);
    if (r != FrameIo::Ok) {
        if (err)
            *err = r == FrameIo::Eof
                       ? "connection closed before the response"
                       : "receive failed";
        close();
        return false;
    }
    std::string perr;
    if (!json::Value::parse(payload, resp, &perr)) {
        if (err)
            *err = "malformed response: " + perr;
        close();
        return false;
    }
    return true;
}

bool
Client::requestWithRetry(const std::string &socket_path,
                         const json::Value &req, json::Value &resp,
                         std::string *err, unsigned attempts)
{
    std::string last;
    for (unsigned attempt = 0; attempt < std::max(1u, attempts);
         attempt++) {
        if (attempt > 0)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(50 << std::min(attempt, 6u)));
        if (!connected() && !connect(socket_path, &last))
            continue;
        if (!request(req, resp, &last))
            continue; // transport failure: reconnect + re-issue
        if (!resp.getBool("ok") && resp.getStr("code") == "overloaded") {
            int64_t wait = resp.getInt("retry_after_ms", 200);
            last = "overloaded";
            std::this_thread::sleep_for(
                std::chrono::milliseconds(wait));
            continue;
        }
        return true; // a definitive reply (including errors like
                     // bad_request/draining) belongs to the caller
    }
    if (err)
        *err = last.empty() ? "request failed" : last;
    return false;
}

} // namespace r2u::serve
