#include "serve/protocol.hh"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <unistd.h>

namespace r2u::serve
{

namespace
{

bool
sendAll(int fd, const void *data, size_t n)
{
    const char *p = static_cast<const char *>(data);
    while (n > 0) {
        ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += w;
        n -= static_cast<size_t>(w);
    }
    return true;
}

/** 1 = got all n bytes, 0 = clean EOF before the first byte,
 *  -1 = error or EOF mid-read. */
int
recvAll(int fd, void *data, size_t n)
{
    char *p = static_cast<char *>(data);
    size_t got = 0;
    while (got < n) {
        ssize_t r = ::recv(fd, p + got, n - got, 0);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            return -1;
        }
        if (r == 0)
            return got == 0 ? 0 : -1;
        got += static_cast<size_t>(r);
    }
    return 1;
}

} // namespace

bool
writeFrame(int fd, const std::string &payload)
{
    uint32_t len = static_cast<uint32_t>(payload.size());
    uint8_t prefix[4] = {
        static_cast<uint8_t>(len),
        static_cast<uint8_t>(len >> 8),
        static_cast<uint8_t>(len >> 16),
        static_cast<uint8_t>(len >> 24),
    };
    return sendAll(fd, prefix, sizeof(prefix)) &&
           sendAll(fd, payload.data(), payload.size());
}

FrameIo
readFrame(int fd, std::string &payload, uint32_t max_bytes)
{
    uint8_t prefix[4];
    int r = recvAll(fd, prefix, sizeof(prefix));
    if (r == 0)
        return FrameIo::Eof;
    if (r < 0)
        return FrameIo::Error;
    uint32_t len = static_cast<uint32_t>(prefix[0]) |
                   (static_cast<uint32_t>(prefix[1]) << 8) |
                   (static_cast<uint32_t>(prefix[2]) << 16) |
                   (static_cast<uint32_t>(prefix[3]) << 24);
    if (len > max_bytes)
        return FrameIo::TooBig;
    payload.resize(len);
    if (len > 0 && recvAll(fd, payload.data(), len) != 1)
        return FrameIo::Error;
    return FrameIo::Ok;
}

} // namespace r2u::serve
