/**
 * @file
 * Blocking client for the rtl2uspec_serve protocol.
 *
 * Thin by design: connect to the daemon's Unix-domain socket, send one
 * JSON request frame, read one JSON response frame. The interesting
 * part is requestWithRetry(), which encodes the client side of the
 * service's robustness contract:
 *
 *  - a dropped connection (daemon crash, chaos "drop") reconnects and
 *    re-issues the request — safe because requests are idempotent and
 *    the daemon's verdict cache makes the re-run warm;
 *  - an {"code":"overloaded"} reply backs off (honoring the server's
 *    retry_after_ms hint) and retries;
 *  - {"code":"draining"} and hard errors are returned to the caller.
 */

#ifndef R2U_SERVE_CLIENT_HH
#define R2U_SERVE_CLIENT_HH

#include <string>

#include "serve/json.hh"

namespace r2u::serve
{

class Client
{
  public:
    Client() = default;
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /** Connect to @p socket_path; false (with a message) on failure. */
    bool connect(const std::string &socket_path, std::string *err);

    bool connected() const { return fd_ >= 0; }
    void close();

    /**
     * Send @p req, block for the response. Returns false on any
     * transport failure (send failure, connection dropped before the
     * response) and closes the connection.
     */
    bool request(const json::Value &req, json::Value &resp,
                 std::string *err);

    /**
     * request() plus the retry policy described in the file comment:
     * up to @p attempts tries, reconnecting after transport failures
     * and backing off after "overloaded" replies. Returns false only
     * once the attempts are exhausted or a non-retryable failure
     * (e.g. the daemon is gone and the socket no longer accepts).
     */
    bool requestWithRetry(const std::string &socket_path,
                          const json::Value &req, json::Value &resp,
                          std::string *err, unsigned attempts = 5);

  private:
    int fd_ = -1;
};

} // namespace r2u::serve

#endif // R2U_SERVE_CLIENT_HH
