#include "serve/chaos.hh"

#include "common/logging.hh"
#include "common/strutil.hh"

namespace r2u::serve
{

bool
ChaosSpec::parse(const std::string &spec, ChaosSpec &out,
                 std::string *err)
{
    for (const std::string &tok : split(spec, ',')) {
        std::string t = trim(tok);
        if (t.empty())
            continue;
        size_t eq = t.find('=');
        if (eq == std::string::npos) {
            if (err)
                *err = "chaos: expected key=value, got '" + t + "'";
            return false;
        }
        std::string key = t.substr(0, eq);
        std::string val = t.substr(eq + 1);
        int n = 0;
        try {
            n = parseInt(("--chaos " + key).c_str(), val);
        } catch (const FatalError &e) {
            if (err)
                *err = e.what();
            return false;
        }
        if (n < 0) {
            if (err)
                *err = "chaos: '" + key + "' wants a count >= 0";
            return false;
        }
        if (key == "stall")
            out.stall.store(n);
        else if (key == "stall-ms")
            out.stallMs = n;
        else if (key == "torn")
            out.torn.store(n);
        else if (key == "drop")
            out.drop.store(n);
        else {
            if (err)
                *err = "chaos: unknown fault class '" + key + "'";
            return false;
        }
    }
    return true;
}

bool
ChaosSpec::fire(std::atomic<int> &counter)
{
    int cur = counter.load(std::memory_order_relaxed);
    while (cur > 0) {
        if (counter.compare_exchange_weak(cur, cur - 1,
                                          std::memory_order_relaxed))
            return true;
    }
    return false;
}

std::string
ChaosSpec::summary() const
{
    return strfmt("stall=%d(ms=%d),torn=%d,drop=%d", stall.load(),
                  stallMs, torn.load(), drop.load());
}

} // namespace r2u::serve
