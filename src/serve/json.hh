/**
 * @file
 * Minimal JSON value type for the synthesis-service wire protocol.
 *
 * The service speaks length-prefixed JSON over a Unix-domain socket
 * (see serve/protocol.hh); requests arrive from arbitrary clients, so
 * parsing must be strict — a malformed frame is a protocol error, not
 * undefined behavior. This is deliberately a small recursive-descent
 * parser + serializer over one variant-ish struct, not a general JSON
 * library: objects preserve insertion order (stable wire output),
 * numbers are doubles (every field the protocol carries fits), and
 * parse failures return an error string instead of throwing.
 */

#ifndef R2U_SERVE_JSON_HH
#define R2U_SERVE_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace r2u::serve::json
{

struct Value
{
    enum class Kind : uint8_t { Null, Bool, Num, Str, Arr, Obj };

    Kind kind = Kind::Null;
    bool boolean = false;
    double num = 0.0;
    std::string str;
    std::vector<Value> arr;
    /** Insertion-ordered members (no duplicate keys on parse). */
    std::vector<std::pair<std::string, Value>> obj;

    // --- constructors for building responses ---
    static Value null() { return Value{}; }
    static Value boolean_(bool b);
    static Value number(double n);
    static Value number(int64_t n) { return number(double(n)); }
    static Value number(uint64_t n) { return number(double(n)); }
    static Value string(std::string s);
    static Value array();
    static Value object();

    bool isNull() const { return kind == Kind::Null; }
    bool isObj() const { return kind == Kind::Obj; }
    bool isArr() const { return kind == Kind::Arr; }
    bool isStr() const { return kind == Kind::Str; }
    bool isNum() const { return kind == Kind::Num; }
    bool isBool() const { return kind == Kind::Bool; }

    /** Object member lookup; nullptr when absent or not an object. */
    const Value *find(const std::string &key) const;

    /** Set (insert or replace) an object member; panics off-kind. */
    Value &set(const std::string &key, Value v);
    /** Append an array element; panics off-kind. */
    Value &push(Value v);

    // --- leaf accessors with defaults (never throw) ---
    bool asBool(bool def = false) const;
    double asDouble(double def = 0.0) const;
    int64_t asInt(int64_t def = 0) const;
    std::string asStr(const std::string &def = "") const;

    /** Member accessors: find(key) then the leaf accessor. */
    bool getBool(const std::string &key, bool def = false) const;
    double getDouble(const std::string &key, double def = 0.0) const;
    int64_t getInt(const std::string &key, int64_t def = 0) const;
    std::string getStr(const std::string &key,
                       const std::string &def = "") const;

    /** Compact single-line serialization (stable member order). */
    std::string dump() const;

    /**
     * Strict parse of exactly one JSON document (trailing garbage is
     * an error). On failure returns false and fills @p err with a
     * position-annotated message; @p out is left Null.
     */
    static bool parse(const std::string &text, Value &out,
                      std::string *err);
};

/** JSON string escaping (quotes not included). */
std::string escape(const std::string &s);

} // namespace r2u::serve::json

#endif // R2U_SERVE_JSON_HH
