#include "serve/server.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <future>
#include <set>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "bmc/engine.hh"
#include "check/campaign.hh"
#include "common/logging.hh"
#include "common/strutil.hh"
#include "common/timer.hh"
#include "litmus/litmus.hh"
#include "netlist/hash.hh"
#include "rtl2uspec/metadata_io.hh"
#include "rtl2uspec/synthesis.hh"
#include "serve/protocol.hh"
#include "uspec/uspec.hh"
#include "verilog/elaborate.hh"

namespace r2u::serve
{

namespace
{

json::Value
errResp(const char *code, const std::string &msg)
{
    json::Value v = json::Value::object();
    v.set("ok", json::Value::boolean_(false));
    v.set("code", json::Value::string(code));
    v.set("error", json::Value::string(msg));
    return v;
}

json::Value
okResp(const char *type)
{
    json::Value v = json::Value::object();
    v.set("ok", json::Value::boolean_(true));
    v.set("type", json::Value::string(type));
    return v;
}

} // namespace

Server::Server(ServerOptions opts) : opts_(std::move(opts)) {}

Server::~Server()
{
    watchdog_stop_.store(true);
    if (watchdog_.joinable())
        watchdog_.join();
    {
        std::lock_guard<std::mutex> lock(conns_mu_);
        for (auto &c : conns_)
            if (c->fd >= 0)
                ::shutdown(c->fd, SHUT_RDWR);
    }
    for (auto &c : conns_)
        if (c->thread.joinable())
            c->thread.join();
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        ::unlink(opts_.socketPath.c_str());
    }
}

int64_t
Server::nowMs()
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

size_t
Server::rssMb()
{
#ifdef __linux__
    FILE *f = std::fopen("/proc/self/statm", "r");
    if (!f)
        return 0;
    long pages_total = 0, pages_resident = 0;
    int n = std::fscanf(f, "%ld %ld", &pages_total, &pages_resident);
    std::fclose(f);
    if (n != 2 || pages_resident < 0)
        return 0;
    long page = ::sysconf(_SC_PAGESIZE);
    return (static_cast<size_t>(pages_resident) *
            static_cast<size_t>(page)) >>
           20;
#else
    return 0;
#endif
}

void
Server::start()
{
    R2U_ASSERT(listen_fd_ < 0, "server already started");
    if (opts_.socketPath.empty())
        fatal("serve: a socket path is required");

    if (!opts_.stateDir.empty()) {
        cache_.open(opts_.stateDir + "/cache");
        cache_open_ = true;
        journal_dir_ = opts_.stateDir + "/journal";
        if (cache_.numLoaded() > 0)
            inform("serve: verdict cache: %zu verdict(s) recovered "
                   "from %s",
                   cache_.numLoaded(), cache_.filePath().c_str());
    }
    // Arm the torn-append fault class on the shared store; each
    // injection writes half a frame then fails, which must roll back
    // and disable caching without corrupting the file.
    if (cache_open_ && opts_.chaos) {
        ChaosSpec *chaos = opts_.chaos;
        cache_.setWriteFault([chaos](size_t n) -> ssize_t {
            if (!ChaosSpec::fire(chaos->torn))
                return -1;
            warn("serve: chaos: tearing cache append (%zu of %zu "
                 "bytes)",
                 n / 2, n);
            return static_cast<ssize_t>(n / 2);
        });
    }

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (opts_.socketPath.size() >= sizeof(addr.sun_path))
        fatal("serve: socket path too long: %s",
              opts_.socketPath.c_str());
    std::strncpy(addr.sun_path, opts_.socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);

    if (::access(opts_.socketPath.c_str(), F_OK) == 0) {
        // Distinguish a crashed daemon's stale socket (unlink and go)
        // from a live one (refuse: two daemons must not race the same
        // path, and the state dir's write locks would half-work).
        int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (probe >= 0) {
            int rc =
                ::connect(probe, reinterpret_cast<sockaddr *>(&addr),
                          sizeof(addr));
            ::close(probe);
            if (rc == 0)
                fatal("serve: a daemon is already listening on %s",
                      opts_.socketPath.c_str());
        }
        ::unlink(opts_.socketPath.c_str());
        inform("serve: removed stale socket %s",
               opts_.socketPath.c_str());
    }

    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        fatal("serve: socket: %s", strerror(errno));
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) !=
        0)
        fatal("serve: bind %s: %s", opts_.socketPath.c_str(),
              strerror(errno));
    if (::listen(fd, 64) != 0)
        fatal("serve: listen: %s", strerror(errno));
    listen_fd_ = fd;
    started_ = std::chrono::steady_clock::now();

    pool_ = std::make_unique<ThreadPool>(std::max(1u, opts_.workers));
    watchdog_ = std::thread([this] { watchdogLoop(); });

    inform("serve: listening on %s (workers=%u max-queue=%u "
           "request-timeout=%.0fs hang-timeout=%.0fs state=%s%s)",
           opts_.socketPath.c_str(), std::max(1u, opts_.workers),
           opts_.maxQueue, opts_.requestSeconds, opts_.hangSeconds,
           opts_.stateDir.empty() ? "<none>" : opts_.stateDir.c_str(),
           opts_.chaos ? (" chaos=" + opts_.chaos->summary()).c_str()
                       : "");
}

void
Server::requestStop()
{
    if (stop_.exchange(true))
        return;
    // Clamp every in-flight attempt to the drain grace; the watchdog
    // enforces it, so a request that cannot finish in time degrades
    // to sound Unknowns instead of holding the drain hostage.
    auto limit =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(static_cast<int64_t>(
            std::max(0.0, opts_.drainSeconds) * 1000.0));
    std::lock_guard<std::mutex> lock(inflight_mu_);
    for (auto &inf : inflight_) {
        if (!inf->hasDeadline || inf->deadline > limit) {
            inf->deadline = limit;
            inf->hasDeadline = true;
        }
    }
}

void
Server::reapConns()
{
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto it = conns_.begin(); it != conns_.end();) {
        if ((*it)->done.load()) {
            if ((*it)->thread.joinable())
                (*it)->thread.join();
            it = conns_.erase(it);
        } else {
            ++it;
        }
    }
}

void
Server::serve()
{
    R2U_ASSERT(listen_fd_ >= 0, "serve() before start()");
    while (true) {
        if (!stop_.load(std::memory_order_relaxed) &&
            opts_.externalStop &&
            opts_.externalStop->load(std::memory_order_relaxed)) {
            inform("serve: stop signal received — draining");
            requestStop();
        }
        if (stop_.load(std::memory_order_relaxed))
            break;

        pollfd pfd{listen_fd_, POLLIN, 0};
        int pr = ::poll(&pfd, 1, 200);
        if (pr < 0) {
            if (errno == EINTR)
                continue;
            warn("serve: poll: %s", strerror(errno));
            break;
        }
        if (pr == 0) {
            reapConns();
            continue;
        }
        int cfd = ::accept(listen_fd_, nullptr, nullptr);
        if (cfd < 0) {
            if (errno != EINTR)
                warn("serve: accept: %s", strerror(errno));
            continue;
        }
        auto conn = std::make_unique<Conn>();
        conn->fd = cfd;
        Conn *cp = conn.get();
        {
            std::lock_guard<std::mutex> lock(conns_mu_);
            conns_.push_back(std::move(conn));
        }
        cp->thread = std::thread([this, cp] { connectionLoop(cp); });
        reapConns();
    }

    // --- graceful drain ---
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(opts_.socketPath.c_str());
    {
        // Unblock connections idling in readFrame(); SHUT_RD only, so
        // in-flight responses still go out.
        std::lock_guard<std::mutex> lock(conns_mu_);
        for (auto &c : conns_)
            if (c->fd >= 0)
                ::shutdown(c->fd, SHUT_RD);
    }
    for (auto &c : conns_)
        if (c->thread.joinable())
            c->thread.join();
    {
        std::lock_guard<std::mutex> lock(conns_mu_);
        conns_.clear();
    }
    pool_->wait();
    watchdog_stop_.store(true);
    if (watchdog_.joinable())
        watchdog_.join();
    // Nothing to flush: journal and cache appends are fsync'd as they
    // land, which is exactly what makes kill -9 recovery work.
    inform("serve: drained (%llu request(s) served, %llu overloaded, "
           "%llu watchdog interrupt(s))",
           static_cast<unsigned long long>(requests_.load()),
           static_cast<unsigned long long>(overloaded_.load()),
           static_cast<unsigned long long>(watchdog_fired_.load()));
}

void
Server::connectionLoop(Conn *conn)
{
    std::string payload;
    while (true) {
        FrameIo r = readFrame(conn->fd, payload);
        if (r == FrameIo::TooBig) {
            writeFrame(conn->fd,
                       errResp("bad_request", "frame too large").dump());
            break;
        }
        if (r != FrameIo::Ok)
            break;
        if (!handleFrame(conn, payload))
            break;
    }
    {
        std::lock_guard<std::mutex> lock(conns_mu_);
        ::close(conn->fd);
        conn->fd = -1;
    }
    conn->done.store(true);
}

bool
Server::handleFrame(Conn *conn, const std::string &payload)
{
    json::Value req;
    std::string err;
    json::Value resp;
    bool heavy = false;
    if (!json::Value::parse(payload, req, &err) || !req.isObj()) {
        resp = errResp("bad_request", "malformed request: " + err);
    } else {
        std::string type = req.getStr("type");
        heavy = type == "synthesize" || type == "campaign";
        resp = dispatch(req);
    }
    requests_.fetch_add(1, std::memory_order_relaxed);

    // Chaos: drop the connection right before the response — the
    // worst possible moment, after the work is done. The client must
    // reconnect and re-issue; the re-run answers warm from the cache.
    if (heavy && opts_.chaos && ChaosSpec::fire(opts_.chaos->drop)) {
        dropped_conns_.fetch_add(1, std::memory_order_relaxed);
        warn("serve: chaos: dropping connection before the response");
        return false;
    }
    return writeFrame(conn->fd, resp.dump());
}

bool
Server::admit(json::Value &denial)
{
    if (stop_.load(std::memory_order_relaxed)) {
        denial = errResp("draining",
                         "server is draining; not accepting work");
        return false;
    }
    unsigned cur = in_service_.load(std::memory_order_relaxed);
    if (cur >= opts_.maxQueue) {
        overloaded_.fetch_add(1, std::memory_order_relaxed);
        denial = errResp(
            "overloaded",
            strfmt("%u heavy request(s) already in service "
                   "(watermark %u)",
                   cur, opts_.maxQueue));
        denial.set("retry_after_ms", json::Value::number(int64_t{200}));
        return false;
    }
    if (opts_.memLimitMb > 0) {
        size_t rss = rssMb();
        if (rss > opts_.memLimitMb) {
            overloaded_.fetch_add(1, std::memory_order_relaxed);
            denial = errResp(
                "overloaded",
                strfmt("resident memory %zu MiB over the %zu MiB "
                       "watermark",
                       rss, opts_.memLimitMb));
            denial.set("retry_after_ms",
                       json::Value::number(int64_t{500}));
            return false;
        }
    }
    return true;
}

json::Value
Server::dispatch(const json::Value &req)
{
    std::string type = req.getStr("type");
    if (type == "ping") {
        json::Value resp = okResp("ping");
        resp.set("pong", json::Value::boolean_(true));
        return resp;
    }
    if (type == "status")
        return handleStatus();
    if (type == "shutdown") {
        inform("serve: shutdown requested — draining");
        json::Value resp = okResp("shutdown");
        resp.set("draining", json::Value::boolean_(true));
        requestStop();
        return resp;
    }
    if (type != "synthesize" && type != "campaign")
        return errResp("bad_request",
                       "unknown request type '" + type + "'");

    json::Value denial;
    if (!admit(denial))
        return denial;

    in_service_.fetch_add(1, std::memory_order_relaxed);
    std::promise<json::Value> prom;
    std::future<json::Value> fut = prom.get_future();
    pool_->submit([&](unsigned) {
        json::Value r;
        try {
            r = type == "synthesize" ? handleSynthesize(req)
                                     : handleCampaign(req);
        } catch (const FatalError &e) {
            r = errResp("internal", e.what());
        } catch (const std::exception &e) {
            r = errResp("internal", e.what());
        }
        prom.set_value(std::move(r));
    });
    json::Value resp = fut.get();
    in_service_.fetch_sub(1, std::memory_order_relaxed);
    return resp;
}

json::Value
Server::handleStatus() const
{
    json::Value resp = okResp("status");
    double uptime =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - started_)
            .count();
    resp.set("uptime_s", json::Value::number(uptime));
    resp.set("draining", json::Value::boolean_(stop_.load()));
    resp.set("in_service",
             json::Value::number(int64_t{in_service_.load()}));
    resp.set("max_queue",
             json::Value::number(int64_t{opts_.maxQueue}));
    resp.set("workers",
             json::Value::number(int64_t{std::max(1u, opts_.workers)}));
    resp.set("requests", json::Value::number(requests_.load()));
    resp.set("overloaded", json::Value::number(overloaded_.load()));
    resp.set("watchdog_interrupts",
             json::Value::number(watchdog_fired_.load()));
    resp.set("request_retries",
             json::Value::number(retries_done_.load()));
    resp.set("dropped_connections",
             json::Value::number(dropped_conns_.load()));
    resp.set("rss_mb", json::Value::number(uint64_t{rssMb()}));
    json::Value cache = json::Value::object();
    cache.set("enabled", json::Value::boolean_(cache_open_));
    if (cache_open_) {
        cache.set("read_only",
                  json::Value::boolean_(cache_.readOnly()));
        cache.set("disabled",
                  json::Value::boolean_(cache_.disabled()));
        cache.set("loaded",
                  json::Value::number(uint64_t{cache_.numLoaded()}));
        cache.set("appended",
                  json::Value::number(uint64_t{cache_.numAppended()}));
    }
    resp.set("cache", std::move(cache));
    if (opts_.chaos)
        resp.set("chaos", json::Value::string(opts_.chaos->summary()));
    return resp;
}

std::shared_ptr<Server::Inflight>
Server::beginAttempt(double deadline_seconds, bool uses_heartbeat)
{
    auto inf = std::make_shared<Inflight>();
    inf->heartbeatMs.store(nowMs(), std::memory_order_relaxed);
    inf->usesHeartbeat = uses_heartbeat;
    auto now = std::chrono::steady_clock::now();
    std::lock_guard<std::mutex> lock(inflight_mu_);
    if (deadline_seconds > 0) {
        inf->deadline =
            now + std::chrono::milliseconds(
                      static_cast<int64_t>(deadline_seconds * 1000.0));
        inf->hasDeadline = true;
    }
    if (stop_.load(std::memory_order_relaxed)) {
        auto limit = now + std::chrono::milliseconds(
                               static_cast<int64_t>(
                                   std::max(0.0, opts_.drainSeconds) *
                                   1000.0));
        if (!inf->hasDeadline || inf->deadline > limit) {
            inf->deadline = limit;
            inf->hasDeadline = true;
        }
    }
    inflight_.push_back(inf);
    return inf;
}

void
Server::endAttempt(const std::shared_ptr<Inflight> &inf)
{
    std::lock_guard<std::mutex> lock(inflight_mu_);
    inflight_.erase(
        std::remove(inflight_.begin(), inflight_.end(), inf),
        inflight_.end());
}

void
Server::watchdogLoop()
{
    while (!watchdog_stop_.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        int64_t now_ms = nowMs();
        auto now = std::chrono::steady_clock::now();
        std::vector<std::shared_ptr<Inflight>> snapshot;
        {
            std::lock_guard<std::mutex> lock(inflight_mu_);
            snapshot = inflight_;
        }
        for (auto &inf : snapshot) {
            if (inf->watchdogFired.load(std::memory_order_relaxed))
                continue;
            bool hung =
                opts_.hangSeconds > 0 && inf->usesHeartbeat &&
                now_ms - inf->heartbeatMs.load(
                             std::memory_order_relaxed) >
                    static_cast<int64_t>(opts_.hangSeconds * 1000.0);
            bool late;
            {
                std::lock_guard<std::mutex> lock(inflight_mu_);
                late = inf->hasDeadline && now > inf->deadline;
            }
            if (!hung && !late)
                continue;
            inf->watchdogFired.store(true);
            inf->abortStall.store(true);
            inf->stopFlag.store(true);
            {
                std::lock_guard<std::mutex> lock(inf->engineMu);
                if (inf->engine)
                    inf->engine->interrupt();
            }
            watchdog_fired_.fetch_add(1, std::memory_order_relaxed);
            warn("serve: watchdog: %s — interrupting the run "
                 "(degrades to sound Unknowns)",
                 hung ? "solver heartbeat stalled"
                      : "request deadline passed");
        }
    }
}

json::Value
Server::handleSynthesize(const json::Value &req)
{
    std::string top = req.getStr("top");
    std::string meta_path = req.getStr("meta");
    const json::Value *files = req.find("files");
    if (top.empty() || meta_path.empty() || !files || !files->isArr() ||
        files->arr.empty())
        return errResp("bad_request",
                       "synthesize needs top, meta, files[]");
    std::vector<std::string> paths;
    for (const json::Value &f : files->arr) {
        if (!f.isStr() || f.str.empty())
            return errResp("bad_request",
                           "files[] entries must be paths");
        paths.push_back(f.str);
    }

    rtl2uspec::DesignMetadata md = rtl2uspec::loadMetadata(meta_path);
    int64_t bound = req.getInt("bound", 0);
    if (bound > 0)
        md.bound = static_cast<unsigned>(bound);

    vlog::ElabOptions eo;
    eo.top = top;
    if (const json::Value *params = req.find("params");
        params && params->isObj()) {
        for (const auto &[k, v] : params->obj)
            eo.params[k] = v.asInt();
    }
    vlog::ElabResult design = vlog::elaborateFiles(paths, eo);

    double budget = opts_.requestSeconds;
    double asked = req.getDouble("timeout", -1.0);
    if (asked > 0 && (budget <= 0 || asked < budget))
        budget = asked;
    unsigned jobs = static_cast<unsigned>(std::max(
        int64_t{0}, req.getInt("jobs", opts_.defaultJobs)));

    Timer timer;
    rtl2uspec::SynthesisResult synth;
    unsigned attempts = 0;
    bool interrupted = false;
    ChaosSpec *chaos = opts_.chaos;
    for (unsigned attempt = 0;; attempt++) {
        attempts++;
        std::shared_ptr<Inflight> inf =
            beginAttempt(budget, /*uses_heartbeat=*/true);
        rtl2uspec::SynthesisOptions so;
        so.jobs = jobs;
        so.cache = cache_open_ ? &cache_ : nullptr;
        so.journalDir = journal_dir_;
        so.totalTimeoutSeconds = budget > 0 ? budget : -1.0;
        so.engineHook = [inf](bmc::Engine *engine) {
            std::lock_guard<std::mutex> lock(inf->engineMu);
            inf->engine = engine;
        };
        so.faultHook = [inf, chaos](const bmc::Query &,
                                    bmc::CheckResult &,
                                    bmc::SolveStage stage) {
            inf->heartbeatMs.store(nowMs(), std::memory_order_relaxed);
            if (stage != bmc::SolveStage::Primary || !chaos ||
                !ChaosSpec::fire(chaos->stall))
                return;
            // Simulated hung solver: sit inside the engine hook (the
            // worker thread) until the watchdog interrupts the run or
            // the stall budget runs out. The heartbeat deliberately
            // stops advancing.
            warn("serve: chaos: stalling solver for up to %d ms",
                 chaos->stallMs);
            int64_t until = nowMs() + chaos->stallMs;
            while (nowMs() < until &&
                   !inf->abortStall.load(std::memory_order_relaxed))
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(20));
        };
        bool failed = false;
        std::string fail_msg;
        try {
            synth = rtl2uspec::synthesize(design, md, so);
        } catch (const FatalError &e) {
            failed = true;
            fail_msg = e.what();
        }
        endAttempt(inf);
        if (failed)
            return errResp("internal", fail_msg);

        interrupted = false;
        for (const auto &sva : synth.svas) {
            if (sva.source == bmc::VerdictSource::Interrupted ||
                sva.source == bmc::VerdictSource::Cancelled) {
                interrupted = true;
                break;
            }
        }
        // Only a watchdog interrupt earns a server-side re-run: it
        // marks a fault (hung solver) rather than an honest budget
        // exhaustion, and every verdict the broken attempt did finish
        // is already durable in the cache, so the retry is warm.
        if (interrupted && inf->watchdogFired.load() &&
            attempt < opts_.requestRetries &&
            !stop_.load(std::memory_order_relaxed)) {
            retries_done_.fetch_add(1, std::memory_order_relaxed);
            inform("serve: attempt %u degraded by watchdog interrupt "
                   "— retrying",
                   attempts);
            std::this_thread::sleep_for(std::chrono::milliseconds(
                static_cast<int64_t>(opts_.retryBackoffMs) << attempt));
            continue;
        }
        break;
    }

    std::string model_text = synth.model.print();
    std::string out_path = req.getStr("out");
    if (!out_path.empty())
        writeFile(out_path, model_text);

    nl::Fnv64 h;
    h.str(model_text);

    json::Value resp = okResp("synthesize");
    resp.set("attempts", json::Value::number(int64_t{attempts}));
    resp.set("interrupted", json::Value::boolean_(interrupted));
    resp.set("degraded",
             json::Value::boolean_(synth.unknownSvas > 0));
    resp.set("unknown_svas", json::Value::number(synth.unknownSvas));
    resp.set("bugs",
             json::Value::number(uint64_t{synth.bugs.size()}));
    resp.set("svas",
             json::Value::number(uint64_t{synth.svas.size()}));
    resp.set("model_fnv",
             json::Value::string(strfmt(
                 "%016llx",
                 static_cast<unsigned long long>(h.value()))));
    resp.set("cache_hits", json::Value::number(synth.cacheHits));
    resp.set("cache_misses", json::Value::number(synth.cacheMisses));
    resp.set("cache_appends", json::Value::number(synth.cacheAppends));
    resp.set("journal_hits", json::Value::number(synth.journalHits));
    resp.set("journal_appends",
             json::Value::number(synth.journalAppends));
    resp.set("wall_ms", json::Value::number(timer.milliseconds()));
    if (!out_path.empty())
        resp.set("out", json::Value::string(out_path));
    if (req.getBool("inline_model"))
        resp.set("model", json::Value::string(model_text));
    return resp;
}

json::Value
Server::handleCampaign(const json::Value &req)
{
    std::string model_path = req.getStr("model");
    if (model_path.empty())
        return errResp("bad_request", "campaign needs a model path");
    uspec::Model model = uspec::Model::parse(readFile(model_path));

    std::vector<litmus::Test> tests;
    const json::Value *sel = req.find("tests");
    if (req.getBool("suite") || (sel && sel->isArr())) {
        std::vector<litmus::Test> all = litmus::standardSuite();
        if (sel && sel->isArr() && !sel->arr.empty()) {
            std::set<std::string> want;
            for (const json::Value &t : sel->arr)
                want.insert(t.asStr());
            for (auto &t : all)
                if (want.erase(t.name))
                    tests.push_back(std::move(t));
            if (!want.empty())
                return errResp("bad_request",
                               "unknown test '" + *want.begin() + "'");
        } else {
            tests = std::move(all);
        }
    } else if (!req.getStr("cycle").empty()) {
        tests.push_back(litmus::generateFromCycle(
            "cycle_test", req.getStr("cycle")));
    } else if (!req.getStr("test_file").empty()) {
        tests.push_back(
            litmus::Test::parse(readFile(req.getStr("test_file"))));
    } else {
        return errResp("bad_request",
                       "campaign needs suite/tests/cycle/test_file");
    }

    double budget = opts_.requestSeconds;
    double asked = req.getDouble("timeout", -1.0);
    if (asked > 0 && (budget <= 0 || asked < budget))
        budget = asked;
    unsigned jobs = static_cast<unsigned>(std::max(
        int64_t{0}, req.getInt("jobs", opts_.defaultJobs)));

    Timer timer;
    check::CampaignResult res;
    unsigned attempts = 0;
    for (unsigned attempt = 0;; attempt++) {
        attempts++;
        std::shared_ptr<Inflight> inf =
            beginAttempt(budget, /*uses_heartbeat=*/false);
        check::CampaignOptions co;
        co.jobs = jobs == 0 ? 1 : jobs;
        co.stop = &inf->stopFlag;
        res = check::runCampaign(model, tests, co);
        endAttempt(inf);
        if (res.interrupted && inf->watchdogFired.load() &&
            attempt < opts_.requestRetries &&
            !stop_.load(std::memory_order_relaxed)) {
            retries_done_.fetch_add(1, std::memory_order_relaxed);
            std::this_thread::sleep_for(std::chrono::milliseconds(
                static_cast<int64_t>(opts_.retryBackoffMs) << attempt));
            continue;
        }
        break;
    }

    std::string report_path = req.getStr("report");
    if (!report_path.empty())
        writeFile(report_path, res.jsonReport());

    json::Value resp = okResp("campaign");
    resp.set("attempts", json::Value::number(int64_t{attempts}));
    resp.set("interrupted", json::Value::boolean_(res.interrupted));
    resp.set("tests",
             json::Value::number(uint64_t{res.tests.size()}));
    resp.set("failures", json::Value::number(int64_t{res.failures}));
    resp.set("executions_explored",
             json::Value::number(
                 static_cast<int64_t>(res.executionsExplored)));
    resp.set("executions_pruned",
             json::Value::number(
                 static_cast<int64_t>(res.executionsPruned)));
    resp.set("wall_ms", json::Value::number(timer.milliseconds()));
    json::Value results = json::Value::array();
    for (const auto &t : res.tests) {
        json::Value one = json::Value::object();
        one.set("name", json::Value::string(t.name));
        one.set("ok", json::Value::boolean_(t.ok()));
        results.push(std::move(one));
    }
    resp.set("results", std::move(results));
    return resp;
}

} // namespace r2u::serve
