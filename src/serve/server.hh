/**
 * @file
 * The resilient synthesis service (rtl2uspec_serve).
 *
 * A long-running daemon on a Unix-domain socket speaking the
 * length-prefixed JSON protocol (serve/protocol.hh). Light requests
 * (ping/status/shutdown) are answered on the connection thread; heavy
 * requests (synthesize, campaign) are dispatched onto a work-stealing
 * ThreadPool over a shared cross-request VerdictCache and per-design
 * resume journals, so most traffic — re-checks of near-identical
 * designs — replays verdicts instead of re-solving them.
 *
 * Robustness model, in the order things fail:
 *
 *  - Admission control: a heavy request is rejected with an explicit
 *    {"code":"overloaded"} reply the moment the in-service count
 *    reaches maxQueue or resident memory crosses memLimitMb. Clients
 *    back off and retry; the daemon never queues unboundedly.
 *  - Deadlines: every heavy request gets a wall-clock deadline
 *    (requestSeconds, or the request's own smaller "timeout"). It is
 *    plumbed into the engine's total-deadline machinery, so an
 *    overrunning request degrades to sound Unknown verdicts instead
 *    of wedging a worker.
 *  - Watchdog: solver progress is heartbeated from the engine's
 *    per-query hook; a context that stops heartbeating for
 *    hangSeconds (a hung solver — simulated by chaos "stall") or
 *    blows through its deadline gets Engine::interrupt()ed
 *    asynchronously. The run finishes degraded; the server retries it
 *    (bounded, with backoff) — the retry is cheap because every
 *    verdict the first attempt finished is already in the cache.
 *  - Graceful drain: SIGTERM/shutdown stops accepting, clamps every
 *    in-flight deadline to drainSeconds, lets requests finish or
 *    degrade, and exits 0. Journal/cache appends are fsync'd as they
 *    land, so there is nothing left to flush.
 *  - Crash recovery: kill -9 loses only in-flight queries. On
 *    restart the per-configuration journals and the verdict cache
 *    replay every fsync'd verdict, so re-issued requests mostly hit.
 *
 * The chaos harness (serve/chaos.hh) injects solver stalls, torn
 * cache appends, and dropped client connections to prove each of
 * those paths fires.
 */

#ifndef R2U_SERVE_SERVER_HH
#define R2U_SERVE_SERVER_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bmc/journal.hh"
#include "common/thread_pool.hh"
#include "serve/chaos.hh"
#include "serve/json.hh"

namespace r2u::bmc
{
class Engine;
}

namespace r2u::serve
{

struct ServerOptions
{
    /** Unix-domain socket path to bind. */
    std::string socketPath;
    /**
     * Persistent state directory ("" = fully in-memory): the shared
     * verdict cache lives in <stateDir>/cache and per-configuration
     * resume journals in <stateDir>/journal. This is what makes
     * kill -9 recovery work.
     */
    std::string stateDir;
    /** Heavy-request executor threads (the service's proof farm). */
    unsigned workers = 2;
    /** Engine/campaign jobs per request unless the request says. */
    unsigned defaultJobs = 1;
    /** Admission watermark: heavy requests in service (queued +
     *  running) beyond which new ones get "overloaded". */
    unsigned maxQueue = 8;
    /** RSS watermark in MiB (0 = no memory-based shedding). */
    size_t memLimitMb = 0;
    /** Per-request wall-clock deadline in seconds (<= 0: none). */
    double requestSeconds = 300.0;
    /** Heartbeat age that marks a solver context hung (<= 0: off). */
    double hangSeconds = 30.0;
    /** Grace for in-flight requests after a drain starts. */
    double drainSeconds = 30.0;
    /** Server-side re-runs of a watchdog-interrupted request. */
    unsigned requestRetries = 1;
    /** Backoff between those re-runs. */
    unsigned retryBackoffMs = 50;
    /** Armed chaos budgets (caller-owned; nullptr = no injection). */
    ChaosSpec *chaos = nullptr;
    /**
     * Signal-safe external stop flag: a SIGTERM/SIGINT handler stores
     * true and the accept loop begins a graceful drain within one
     * poll tick. nullptr when the embedder calls requestStop()
     * directly.
     */
    const std::atomic<bool> *externalStop = nullptr;
};

class Server
{
  public:
    explicit Server(ServerOptions opts);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Bind + listen on socketPath and open the state dir. A stale
     * socket file from a crashed daemon is unlinked; a *live* daemon
     * on the same path is a fatal() (two daemons must not share a
     * state dir's write locks anyway).
     */
    void start();

    /**
     * Accept/dispatch until a drain completes (external stop flag,
     * shutdown request, or requestStop()). Returns once every
     * connection thread has finished and the socket is unlinked.
     */
    void serve();

    /** Begin a graceful drain (async-safe from non-signal threads). */
    void requestStop();

    bool draining() const
    {
        return stop_.load(std::memory_order_relaxed);
    }

    // --- introspection for status replies and tests ---
    uint64_t requestsServed() const { return requests_.load(); }
    uint64_t overloadedReplies() const { return overloaded_.load(); }
    uint64_t watchdogInterrupts() const { return watchdog_fired_.load(); }
    uint64_t requestRetriesDone() const { return retries_done_.load(); }
    bmc::VerdictCache *cache()
    {
        return cache_open_ ? &cache_ : nullptr;
    }

  private:
    /** Supervision state of one heavy request attempt. */
    struct Inflight
    {
        /** steady-clock ms of the last solver heartbeat. */
        std::atomic<int64_t> heartbeatMs{0};
        std::chrono::steady_clock::time_point deadline{};
        bool hasDeadline = false;
        /** Engine published by SynthesisOptions::engineHook; guarded
         *  so the watchdog never touches a destroyed engine. */
        std::mutex engineMu;
        bmc::Engine *engine = nullptr;
        /** Campaign cooperative-stop flag (CampaignOptions::stop). */
        std::atomic<bool> stopFlag{false};
        std::atomic<bool> watchdogFired{false};
        /** Cuts an injected chaos stall short once the watchdog has
         *  done its job (no point sleeping out the full budget). */
        std::atomic<bool> abortStall{false};
        /** Campaigns have no per-query hook, so hang detection by
         *  heartbeat age only applies to synthesis attempts. */
        bool usesHeartbeat = true;
    };

    struct Conn
    {
        std::thread thread;
        std::atomic<bool> done{false};
        int fd = -1;
    };

    void connectionLoop(Conn *conn);
    /** One request frame -> one response frame (or a chaos drop). */
    bool handleFrame(Conn *conn, const std::string &payload);
    json::Value dispatch(const json::Value &req);
    json::Value handleStatus() const;
    json::Value handleSynthesize(const json::Value &req);
    json::Value handleCampaign(const json::Value &req);
    /** Admission check; fills @p denial when the request is shed. */
    bool admit(json::Value &denial);

    void watchdogLoop();
    /** Register/unregister an attempt with the watchdog. */
    std::shared_ptr<Inflight> beginAttempt(double deadline_seconds,
                                           bool uses_heartbeat);
    void endAttempt(const std::shared_ptr<Inflight> &inf);
    /** Join finished connection threads (called from the accept loop). */
    void reapConns();

    static int64_t nowMs();
    static size_t rssMb();

    ServerOptions opts_;
    int listen_fd_ = -1;
    std::atomic<bool> stop_{false};
    std::atomic<bool> stop_applied_{false};
    std::chrono::steady_clock::time_point started_;

    std::unique_ptr<ThreadPool> pool_;
    /** Heavy requests admitted and not yet finished. */
    std::atomic<unsigned> in_service_{0};

    bmc::VerdictCache cache_;
    bool cache_open_ = false;
    std::string journal_dir_;

    std::mutex inflight_mu_;
    std::vector<std::shared_ptr<Inflight>> inflight_;
    std::thread watchdog_;
    std::atomic<bool> watchdog_stop_{false};

    std::mutex conns_mu_;
    std::list<std::unique_ptr<Conn>> conns_;

    std::atomic<uint64_t> requests_{0};
    std::atomic<uint64_t> overloaded_{0};
    std::atomic<uint64_t> watchdog_fired_{0};
    std::atomic<uint64_t> retries_done_{0};
    std::atomic<uint64_t> dropped_conns_{0};
};

} // namespace r2u::serve

#endif // R2U_SERVE_SERVER_HH
