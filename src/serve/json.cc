#include "serve/json.hh"

#include <cmath>
#include <cstdio>
#include <cstring>

#include "common/logging.hh"

namespace r2u::serve::json
{

Value
Value::boolean_(bool b)
{
    Value v;
    v.kind = Kind::Bool;
    v.boolean = b;
    return v;
}

Value
Value::number(double n)
{
    Value v;
    v.kind = Kind::Num;
    v.num = n;
    return v;
}

Value
Value::string(std::string s)
{
    Value v;
    v.kind = Kind::Str;
    v.str = std::move(s);
    return v;
}

Value
Value::array()
{
    Value v;
    v.kind = Kind::Arr;
    return v;
}

Value
Value::object()
{
    Value v;
    v.kind = Kind::Obj;
    return v;
}

const Value *
Value::find(const std::string &key) const
{
    if (kind != Kind::Obj)
        return nullptr;
    for (const auto &[k, v] : obj)
        if (k == key)
            return &v;
    return nullptr;
}

Value &
Value::set(const std::string &key, Value v)
{
    R2U_ASSERT(kind == Kind::Obj, "set() on a non-object");
    for (auto &[k, existing] : obj) {
        if (k == key) {
            existing = std::move(v);
            return *this;
        }
    }
    obj.emplace_back(key, std::move(v));
    return *this;
}

Value &
Value::push(Value v)
{
    R2U_ASSERT(kind == Kind::Arr, "push() on a non-array");
    arr.push_back(std::move(v));
    return *this;
}

bool
Value::asBool(bool def) const
{
    return kind == Kind::Bool ? boolean : def;
}

double
Value::asDouble(double def) const
{
    return kind == Kind::Num ? num : def;
}

int64_t
Value::asInt(int64_t def) const
{
    if (kind != Kind::Num)
        return def;
    // Out-of-range doubles must not be UB on the cast.
    if (!(num >= -9.2233720368547758e18 && num <= 9.2233720368547758e18))
        return def;
    return static_cast<int64_t>(num);
}

std::string
Value::asStr(const std::string &def) const
{
    return kind == Kind::Str ? str : def;
}

bool
Value::getBool(const std::string &key, bool def) const
{
    const Value *v = find(key);
    return v ? v->asBool(def) : def;
}

double
Value::getDouble(const std::string &key, double def) const
{
    const Value *v = find(key);
    return v ? v->asDouble(def) : def;
}

int64_t
Value::getInt(const std::string &key, int64_t def) const
{
    const Value *v = find(key);
    return v ? v->asInt(def) : def;
}

std::string
Value::getStr(const std::string &key, const std::string &def) const
{
    const Value *v = find(key);
    return v ? v->asStr(def) : def;
}

std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        case '\b': out += "\\b"; break;
        case '\f': out += "\\f"; break;
        default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

std::string
Value::dump() const
{
    switch (kind) {
    case Kind::Null:
        return "null";
    case Kind::Bool:
        return boolean ? "true" : "false";
    case Kind::Num: {
        // Integral values print without a fraction (the common case
        // for counters and exit codes); everything else round-trips
        // through %.17g.
        if (std::isfinite(num) && num == std::floor(num) &&
            std::fabs(num) < 9.0e15) {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%lld",
                          static_cast<long long>(num));
            return buf;
        }
        if (!std::isfinite(num))
            return "null"; // JSON has no Inf/NaN
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g", num);
        return buf;
    }
    case Kind::Str:
        return "\"" + escape(str) + "\"";
    case Kind::Arr: {
        std::string out = "[";
        for (size_t i = 0; i < arr.size(); i++) {
            if (i)
                out += ",";
            out += arr[i].dump();
        }
        return out + "]";
    }
    case Kind::Obj: {
        std::string out = "{";
        for (size_t i = 0; i < obj.size(); i++) {
            if (i)
                out += ",";
            out += "\"" + escape(obj[i].first) + "\":";
            out += obj[i].second.dump();
        }
        return out + "}";
    }
    }
    return "null";
}

namespace
{

/** Recursive-descent parser state over the input text. */
struct Parser
{
    const char *p;
    const char *end;
    const char *begin;
    std::string err;
    int depth = 0;

    static constexpr int kMaxDepth = 64;

    bool fail(const std::string &msg)
    {
        if (err.empty())
            err = msg + " at offset " +
                  std::to_string(static_cast<size_t>(p - begin));
        return false;
    }

    void skipWs()
    {
        while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' ||
                           *p == '\r'))
            p++;
    }

    bool literal(const char *lit)
    {
        size_t n = std::strlen(lit);
        if (static_cast<size_t>(end - p) < n ||
            std::memcmp(p, lit, n) != 0)
            return fail(std::string("expected '") + lit + "'");
        p += n;
        return true;
    }

    bool parseString(std::string &out)
    {
        if (p >= end || *p != '"')
            return fail("expected string");
        p++;
        out.clear();
        while (p < end && *p != '"') {
            unsigned char c = static_cast<unsigned char>(*p);
            if (c < 0x20)
                return fail("raw control character in string");
            if (c != '\\') {
                out += static_cast<char>(c);
                p++;
                continue;
            }
            p++;
            if (p >= end)
                return fail("dangling escape");
            char e = *p++;
            switch (e) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'n': out += '\n'; break;
            case 'r': out += '\r'; break;
            case 't': out += '\t'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'u': {
                if (end - p < 4)
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; i++) {
                    char h = *p++;
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad \\u escape");
                }
                // UTF-8 encode the BMP code point (surrogate pairs are
                // passed through as two 3-byte sequences — good enough
                // for a local control protocol that is ASCII in
                // practice).
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xC0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (code >> 12));
                    out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
            }
            default:
                return fail("unknown escape");
            }
        }
        if (p >= end)
            return fail("unterminated string");
        p++; // closing quote
        return true;
    }

    bool parseNumber(Value &out)
    {
        const char *start = p;
        if (p < end && *p == '-')
            p++;
        while (p < end && *p >= '0' && *p <= '9')
            p++;
        if (p < end && *p == '.') {
            p++;
            while (p < end && *p >= '0' && *p <= '9')
                p++;
        }
        if (p < end && (*p == 'e' || *p == 'E')) {
            p++;
            if (p < end && (*p == '+' || *p == '-'))
                p++;
            while (p < end && *p >= '0' && *p <= '9')
                p++;
        }
        std::string tok(start, p);
        char *tail = nullptr;
        double v = std::strtod(tok.c_str(), &tail);
        if (tok.empty() || tail != tok.c_str() + tok.size())
            return fail("bad number");
        out.kind = Value::Kind::Num;
        out.num = v;
        return true;
    }

    bool parseValue(Value &out)
    {
        if (++depth > kMaxDepth)
            return fail("nesting too deep");
        skipWs();
        if (p >= end)
            return fail("unexpected end of input");
        bool ok = false;
        switch (*p) {
        case '{': {
            p++;
            out.kind = Value::Kind::Obj;
            skipWs();
            if (p < end && *p == '}') {
                p++;
                ok = true;
                break;
            }
            while (true) {
                skipWs();
                std::string key;
                if (!parseString(key))
                    return false;
                if (out.find(key))
                    return fail("duplicate key '" + key + "'");
                skipWs();
                if (p >= end || *p != ':')
                    return fail("expected ':'");
                p++;
                Value member;
                if (!parseValue(member))
                    return false;
                out.obj.emplace_back(std::move(key), std::move(member));
                skipWs();
                if (p < end && *p == ',') {
                    p++;
                    continue;
                }
                if (p < end && *p == '}') {
                    p++;
                    ok = true;
                    break;
                }
                return fail("expected ',' or '}'");
            }
            break;
        }
        case '[': {
            p++;
            out.kind = Value::Kind::Arr;
            skipWs();
            if (p < end && *p == ']') {
                p++;
                ok = true;
                break;
            }
            while (true) {
                Value elem;
                if (!parseValue(elem))
                    return false;
                out.arr.push_back(std::move(elem));
                skipWs();
                if (p < end && *p == ',') {
                    p++;
                    continue;
                }
                if (p < end && *p == ']') {
                    p++;
                    ok = true;
                    break;
                }
                return fail("expected ',' or ']'");
            }
            break;
        }
        case '"':
            out.kind = Value::Kind::Str;
            ok = parseString(out.str);
            break;
        case 't':
            ok = literal("true");
            out.kind = Value::Kind::Bool;
            out.boolean = true;
            break;
        case 'f':
            ok = literal("false");
            out.kind = Value::Kind::Bool;
            out.boolean = false;
            break;
        case 'n':
            ok = literal("null");
            out.kind = Value::Kind::Null;
            break;
        default:
            ok = parseNumber(out);
        }
        depth--;
        return ok;
    }
};

} // namespace

bool
Value::parse(const std::string &text, Value &out, std::string *err)
{
    out = Value{};
    Parser parser{text.data(), text.data() + text.size(), text.data(),
                  "", 0};
    Value v;
    if (!parser.parseValue(v)) {
        if (err)
            *err = parser.err;
        return false;
    }
    parser.skipWs();
    if (parser.p != parser.end) {
        if (err)
            *err = "trailing garbage after document";
        return false;
    }
    out = std::move(v);
    return true;
}

} // namespace r2u::serve::json
