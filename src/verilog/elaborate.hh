/**
 * @file
 * Elaboration: AST -> flat word-level netlist.
 *
 * This performs the role of Verific+Yosys in the paper's flow (§4.1):
 * parameter resolution, generate-for unrolling, hierarchy flattening
 * with dotted hierarchical names ("core_gen_block[0].vscale.inst_DX"),
 * synthesis of always blocks into mux trees feeding $dff cells, and
 * memory inference for declared arrays.
 */

#ifndef R2U_VERILOG_ELABORATE_HH
#define R2U_VERILOG_ELABORATE_HH

#include <memory>
#include <string>
#include <unordered_map>

#include "netlist/netlist.hh"
#include "verilog/ast.hh"

namespace r2u::vlog
{

struct ElabOptions
{
    std::string top;
    /** Parameter overrides for the top module. */
    std::unordered_map<std::string, int64_t> params;
};

struct ElabResult
{
    std::shared_ptr<nl::Netlist> netlist;
    /** Hierarchical signal name -> netlist wire (includes aliases). */
    std::unordered_map<std::string, nl::CellId> signalMap;
    /** Hierarchical memory name -> netlist memory. */
    std::unordered_map<std::string, nl::MemId> memMap;

    /** Look up a signal by hierarchical name; fatal() if missing. */
    nl::CellId signal(const std::string &name) const;
    /** Look up a memory by hierarchical name; fatal() if missing. */
    nl::MemId mem(const std::string &name) const;
};

/** Elaborate @p design rooted at opts.top. fatal() on semantic errors. */
ElabResult elaborate(const Design &design, const ElabOptions &opts);

/** Convenience: parse files then elaborate. */
ElabResult elaborateFiles(const std::vector<std::string> &paths,
                          const ElabOptions &opts);

} // namespace r2u::vlog

#endif // R2U_VERILOG_ELABORATE_HH
