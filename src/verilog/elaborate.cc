#include "verilog/elaborate.hh"

#include <map>
#include <optional>

#include "common/logging.hh"
#include "verilog/parser.hh"

namespace r2u::vlog
{

namespace
{

using nl::CellId;
using nl::CellKind;
using nl::kNoCell;

struct Scope;

/**
 * Lexical context: which scope we are in plus the stack of generate
 * block prefixes ("" always first) and active genvar bindings.
 */
struct Ctx
{
    Scope *scope = nullptr;
    std::vector<std::string> prefixes{""};
    std::unordered_map<std::string, int64_t> genvars;
};

struct BlockInfo; // forward

/** How a signal gets its value. */
enum class DriverKind {
    None,      ///< undriven (error when read)
    TopInput,  ///< top-level input port
    Expr,      ///< continuous assign
    BitExprs,  ///< continuous assigns to constant bit positions
    Block,     ///< assigned in an always block
    InstOutput,///< output port of a child instance
    PortExpr   ///< input port bound to a parent expression
};

/** One "assign sig[k] = expr" contribution. */
struct BitDriver
{
    unsigned bit;
    ExprP expr;
    Ctx ctx;
    int line;
};

struct Sig
{
    std::string key;    ///< scope-local key (includes genblock prefix)
    unsigned width = 1;
    bool isMem = false;
    nl::MemId mem = -1;
    unsigned depth = 0;
    PortDir dir = PortDir::None;
    bool isReg = false;
    int line = 0;

    DriverKind driver = DriverKind::None;
    // Expr / PortExpr
    ExprP expr;
    Ctx exprCtx;
    // BitExprs
    std::vector<BitDriver> bitDrivers;
    // Block
    BlockInfo *block = nullptr;
    // InstOutput
    Scope *childScope = nullptr;
    std::string childPort;

    CellId cell = kNoCell;
    bool resolving = false;
};

struct BlockInfo
{
    const AlwaysBlock *always = nullptr;
    Ctx ctx;
    std::vector<std::string> targets; ///< sig keys assigned here
    bool lowered = false;
    bool lowering = false;
};

struct Scope
{
    const Module *module = nullptr;
    std::string prefix; ///< global hierarchical prefix ("core0.")
    std::unordered_map<std::string, int64_t> params;
    std::map<std::string, Sig> sigs; ///< ordered for determinism
    std::vector<std::unique_ptr<BlockInfo>> blocks;
    std::vector<std::unique_ptr<Scope>> children;
};

class Elaborator
{
  public:
    Elaborator(const Design &design, const ElabOptions &opts)
        : design_(design), opts_(opts)
    {
        result_.netlist = std::make_shared<nl::Netlist>();
    }

    ElabResult
    run()
    {
        const Module *top = design_.findModule(opts_.top);
        if (!top)
            fatal("top module '%s' not found", opts_.top.c_str());
        top_ = std::make_unique<Scope>();
        std::unordered_map<std::string, int64_t> overrides = opts_.params;
        collectScope(*top_, top, "", overrides);

        // Force resolution of every signal in every scope, then lower
        // the bodies of all sequential always blocks.
        forceResolve(*top_);
        drainPendingSeq();

        // Register top-level outputs.
        for (auto &[key, sig] : top_->sigs) {
            if (sig.dir == PortDir::Output)
                nlist().addOutput(key, sig.cell);
        }
        return std::move(result_);
    }

  private:
    nl::Netlist &nlist() { return *result_.netlist; }

    [[noreturn]] void
    err(int line, const std::string &msg) const
    {
        fatal("elaboration error (line %d): %s", line, msg.c_str());
    }

    // ------------------------------------------------------------------
    // Constant evaluation (parameters, genvars, ranges).
    // ------------------------------------------------------------------
    int64_t
    constEval(const Ctx &ctx, const ExprP &e)
    {
        switch (e->kind) {
          case Expr::Kind::Number:
            return static_cast<int64_t>(e->number.toUint64());
          case Expr::Kind::Ident: {
            auto gv = ctx.genvars.find(e->name);
            if (gv != ctx.genvars.end())
                return gv->second;
            auto p = ctx.scope->params.find(e->name);
            if (p != ctx.scope->params.end())
                return p->second;
            err(e->line, "'" + e->name + "' is not a constant");
          }
          case Expr::Kind::Unary: {
            int64_t a = constEval(ctx, e->lhs);
            if (e->op == "-") return -a;
            if (e->op == "!") return a == 0;
            if (e->op == "~") return ~a;
            if (e->op == "+") return a;
            err(e->line, "non-constant unary op " + e->op);
          }
          case Expr::Kind::Binary: {
            int64_t a = constEval(ctx, e->lhs);
            int64_t b = constEval(ctx, e->rhs);
            const std::string &op = e->op;
            if (op == "+") return a + b;
            if (op == "-") return a - b;
            if (op == "*") return a * b;
            if (op == "/") {
                if (b == 0)
                    err(e->line, "constant division by zero");
                return a / b;
            }
            if (op == "%") {
                if (b == 0)
                    err(e->line, "constant modulo by zero");
                return a % b;
            }
            if (op == "<<") return a << b;
            if (op == ">>") return static_cast<int64_t>(
                static_cast<uint64_t>(a) >> b);
            if (op == "==") return a == b;
            if (op == "!=") return a != b;
            if (op == "<") return a < b;
            if (op == "<=") return a <= b;
            if (op == ">") return a > b;
            if (op == ">=") return a >= b;
            if (op == "&&") return (a != 0) && (b != 0);
            if (op == "||") return (a != 0) || (b != 0);
            if (op == "&") return a & b;
            if (op == "|") return a | b;
            if (op == "^") return a ^ b;
            err(e->line, "non-constant binary op " + op);
          }
          case Expr::Kind::Ternary:
            return constEval(ctx, e->cond) ? constEval(ctx, e->lhs)
                                           : constEval(ctx, e->rhs);
          default:
            err(e->line, "expression is not constant");
        }
    }

    /** constEval that returns nullopt instead of fatal()ing. */
    std::optional<int64_t>
    tryConstEval(const Ctx &ctx, const ExprP &e)
    {
        switch (e->kind) {
          case Expr::Kind::Number:
            return static_cast<int64_t>(e->number.toUint64());
          case Expr::Kind::Ident:
            return findConst(ctx, e->name);
          case Expr::Kind::Unary: {
            auto a = tryConstEval(ctx, e->lhs);
            if (!a)
                return std::nullopt;
            if (e->op == "-") return -*a;
            if (e->op == "+") return *a;
            if (e->op == "~") return ~*a;
            if (e->op == "!") return *a == 0;
            return std::nullopt;
          }
          case Expr::Kind::Binary: {
            auto a = tryConstEval(ctx, e->lhs);
            auto b = tryConstEval(ctx, e->rhs);
            if (!a || !b)
                return std::nullopt;
            const std::string &op = e->op;
            if (op == "+") return *a + *b;
            if (op == "-") return *a - *b;
            if (op == "*") return *a * *b;
            if (op == "<<") return *a << *b;
            if (op == ">>")
                return static_cast<int64_t>(
                    static_cast<uint64_t>(*a) >> *b);
            return std::nullopt;
          }
          default:
            return std::nullopt;
        }
    }

    // ------------------------------------------------------------------
    // Name resolution within a scope/ctx.
    // ------------------------------------------------------------------
    Sig *
    findSig(const Ctx &ctx, const std::string &name)
    {
        for (size_t i = ctx.prefixes.size(); i-- > 0;) {
            std::string key = ctx.prefixes[i] + name;
            auto it = ctx.scope->sigs.find(key);
            if (it != ctx.scope->sigs.end())
                return &it->second;
        }
        return nullptr;
    }

    std::optional<int64_t>
    findConst(const Ctx &ctx, const std::string &name)
    {
        auto gv = ctx.genvars.find(name);
        if (gv != ctx.genvars.end())
            return gv->second;
        auto p = ctx.scope->params.find(name);
        if (p != ctx.scope->params.end())
            return p->second;
        return std::nullopt;
    }

    // ------------------------------------------------------------------
    // Phase 1: scope collection.
    // ------------------------------------------------------------------
    void
    collectScope(Scope &scope, const Module *mod, const std::string &prefix,
                 const std::unordered_map<std::string, int64_t> &overrides)
    {
        scope.module = mod;
        scope.prefix = prefix;
        Ctx ctx;
        ctx.scope = &scope;
        collectItems(ctx, mod->items, overrides);
    }

    void
    collectItems(Ctx &ctx, const std::vector<ModuleItemP> &items,
                 const std::unordered_map<std::string, int64_t> &overrides)
    {
        Scope &scope = *ctx.scope;
        for (const auto &item : items) {
            switch (item->kind) {
              case ModuleItem::Kind::Param: {
                const ParamDecl &p = item->param;
                int64_t v;
                auto ov = overrides.find(p.name);
                if (!p.isLocal && ov != overrides.end())
                    v = ov->second;
                else
                    v = constEval(ctx, p.value);
                scope.params[p.name] = v;
                break;
              }
              case ModuleItem::Kind::Net:
                collectNet(ctx, item->net);
                break;
              case ModuleItem::Kind::Assign:
                collectAssign(ctx, item->assign);
                break;
              case ModuleItem::Kind::Always:
                collectAlways(ctx, item->always);
                break;
              case ModuleItem::Kind::Inst:
                collectInstance(ctx, item->inst);
                break;
              case ModuleItem::Kind::GenForItem:
                collectGenFor(ctx, *item->genFor, overrides);
                break;
            }
        }
    }

    void
    collectNet(Ctx &ctx, const NetDecl &net)
    {
        Scope &scope = *ctx.scope;
        std::string key = ctx.prefixes.back() + net.name;
        if (scope.sigs.count(key))
            err(net.line, "duplicate declaration of '" + key + "'");
        Sig sig;
        sig.key = key;
        sig.dir = net.dir;
        sig.isReg = net.isReg;
        sig.line = net.line;
        if (net.msb) {
            int64_t msb = constEval(ctx, net.msb);
            int64_t lsb = constEval(ctx, net.lsb);
            if (lsb != 0 || msb < 0)
                err(net.line, "only [N:0] ranges are supported");
            sig.width = static_cast<unsigned>(msb + 1);
        }
        if (net.arrayLeft) {
            int64_t l = constEval(ctx, net.arrayLeft);
            int64_t r = constEval(ctx, net.arrayRight);
            if (l != 0 || r < 0)
                err(net.line, "only [0:D-1] array bounds are supported");
            sig.isMem = true;
            sig.depth = static_cast<unsigned>(r + 1);
            sig.mem = nlist().addMemory(scope.prefix + key, sig.depth,
                                        sig.width);
            result_.memMap[scope.prefix + key] = sig.mem;
        }
        if (net.dir == PortDir::Input) {
            if (scope.prefix.empty()) {
                sig.driver = DriverKind::TopInput;
                sig.cell = nlist().addInput(key, sig.width);
                result_.signalMap[key] = sig.cell;
            } else {
                // Bound later by the parent's instance connection.
                sig.driver = DriverKind::None;
            }
        }
        scope.sigs.emplace(key, std::move(sig));
    }

    void
    setDriver(Sig *sig, DriverKind kind, int line)
    {
        if (!sig)
            err(line, "assignment to undeclared signal");
        if (sig->driver != DriverKind::None)
            err(line, "signal '" + sig->key + "' has multiple drivers");
        sig->driver = kind;
    }

    void
    collectAssign(Ctx &ctx, const ContAssign &as)
    {
        Sig *sig = findSig(ctx, as.lhsName);
        if (as.lhsIndex) {
            // "assign sig[k] = expr" with a constant (or genvar) index:
            // accumulate per-bit drivers and stitch them at resolve.
            if (!sig)
                err(as.line, "assignment to undeclared signal");
            auto idx = tryConstEval(ctx, as.lhsIndex);
            if (!idx)
                err(as.line, "assign LHS index must be constant");
            if (*idx < 0 || static_cast<unsigned>(*idx) >= sig->width)
                err(as.line, "assign LHS index out of range");
            if (sig->driver != DriverKind::None &&
                sig->driver != DriverKind::BitExprs)
                err(as.line,
                    "signal '" + sig->key + "' has multiple drivers");
            sig->driver = DriverKind::BitExprs;
            for (const auto &bd : sig->bitDrivers) {
                if (bd.bit == static_cast<unsigned>(*idx))
                    err(as.line, "bit " + std::to_string(*idx) + " of '" +
                                     sig->key + "' has multiple drivers");
            }
            sig->bitDrivers.push_back(
                {static_cast<unsigned>(*idx), as.rhs, ctx, as.line});
            return;
        }
        setDriver(sig, DriverKind::Expr, as.line);
        sig->expr = as.rhs;
        sig->exprCtx = ctx;
    }

    /** Collect the variables (not memories) assigned in a statement. */
    void
    collectTargets(Ctx &ctx, const StmtP &stmt,
                   std::vector<std::string> &out)
    {
        if (!stmt)
            return;
        switch (stmt->kind) {
          case Stmt::Kind::Block:
            for (const auto &s : stmt->stmts)
                collectTargets(ctx, s, out);
            break;
          case Stmt::Kind::If:
            collectTargets(ctx, stmt->thenStmt, out);
            collectTargets(ctx, stmt->elseStmt, out);
            break;
          case Stmt::Kind::Case:
            for (const auto &item : stmt->items)
                collectTargets(ctx, item.body, out);
            break;
          case Stmt::Kind::Assign: {
            Sig *sig = findSig(ctx, stmt->lhsName);
            if (!sig)
                err(stmt->line,
                    "assignment to undeclared '" + stmt->lhsName + "'");
            if (sig->isMem)
                break; // memory writes are ports, not drivers
            if (stmt->lhsIndex)
                err(stmt->line,
                    "bit-select on procedural LHS is not supported");
            bool found = false;
            for (const auto &t : out)
                found |= (t == sig->key);
            if (!found)
                out.push_back(sig->key);
            break;
          }
        }
    }

    void
    collectAlways(Ctx &ctx, const AlwaysBlock &always)
    {
        Scope &scope = *ctx.scope;
        auto info = std::make_unique<BlockInfo>();
        info->always = &always;
        info->ctx = ctx;
        collectTargets(ctx, always.body, info->targets);
        for (const auto &key : info->targets) {
            Sig &sig = scope.sigs.at(key);
            setDriver(&sig, DriverKind::Block, always.line);
            sig.block = info.get();
        }
        scope.blocks.push_back(std::move(info));
    }

    void
    collectInstance(Ctx &ctx, const Instance &inst)
    {
        Scope &scope = *ctx.scope;
        const Module *child_mod = design_.findModule(inst.moduleName);
        if (!child_mod)
            err(inst.line, "unknown module '" + inst.moduleName + "'");

        std::unordered_map<std::string, int64_t> overrides;
        for (const auto &[pname, pexpr] : inst.paramOverrides)
            overrides[pname] = constEval(ctx, pexpr);

        auto child = std::make_unique<Scope>();
        std::string inst_key = ctx.prefixes.back() + inst.instName;
        collectScope(*child, child_mod,
                     scope.prefix + inst_key + ".", overrides);

        // Wire up ports.
        for (const auto &conn : inst.ports) {
            auto it = child->sigs.find(conn.port);
            if (it == child->sigs.end())
                err(inst.line, "module '" + inst.moduleName +
                                   "' has no port '" + conn.port + "'");
            Sig &port_sig = it->second;
            if (port_sig.dir == PortDir::Input) {
                if (!conn.expr)
                    err(inst.line, "input port '" + conn.port +
                                       "' must be connected");
                port_sig.driver = DriverKind::PortExpr;
                port_sig.expr = conn.expr;
                port_sig.exprCtx = ctx;
            } else if (port_sig.dir == PortDir::Output) {
                if (!conn.expr)
                    continue; // unconnected output: fine
                if (conn.expr->kind != Expr::Kind::Ident)
                    err(inst.line, "output port '" + conn.port +
                                       "' must connect to a plain wire");
                Sig *parent_sig = findSig(ctx, conn.expr->name);
                setDriver(parent_sig, DriverKind::InstOutput, inst.line);
                parent_sig->childScope = child.get();
                parent_sig->childPort = conn.port;
            } else {
                err(inst.line, "connection to non-port '" + conn.port +
                                   "'");
            }
        }
        // Check all child inputs are driven.
        for (auto &[key, sig] : child->sigs) {
            if (sig.dir == PortDir::Input &&
                sig.driver == DriverKind::None) {
                err(inst.line, "input port '" + key + "' of instance '" +
                                   inst_key + "' left unconnected");
            }
        }
        scope.children.push_back(std::move(child));
    }

    void
    collectGenFor(Ctx &ctx, const GenFor &gf,
                  const std::unordered_map<std::string, int64_t> &overrides)
    {
        int64_t i = constEval(ctx, gf.init);
        int guard = 0;
        while (true) {
            Ctx iter = ctx;
            iter.genvars[gf.genvar] = i;
            if (!constEval(iter, gf.cond))
                break;
            iter.prefixes.push_back(ctx.prefixes.back() + gf.blockName +
                                    "[" + std::to_string(i) + "].");
            collectItems(iter, gf.body, overrides);
            i = constEval(iter, gf.step);
            if (++guard > 4096)
                err(gf.line, "generate-for exceeds 4096 iterations");
        }
    }

    // ------------------------------------------------------------------
    // Phase 2: lowering.
    // ------------------------------------------------------------------

    /** Adjust a wire to @p width by truncation or zero/sign extension. */
    CellId
    adjust(CellId cell, unsigned width, bool sign_extend = false)
    {
        unsigned w = nlist().cell(cell).width;
        if (w == width)
            return cell;
        if (w > width)
            return nlist().addSlice(cell, 0, width);
        return nlist().addExt(sign_extend ? CellKind::Sext : CellKind::Zext,
                              cell, width);
    }

    CellId
    constCell(unsigned width, uint64_t value)
    {
        return nlist().addConst(Bits(width, value));
    }

    /** Reduce a wire to a 1-bit boolean. */
    CellId
    asBool(CellId cell)
    {
        if (nlist().cell(cell).width == 1)
            return cell;
        return nlist().addUnary(CellKind::RedOr, cell);
    }

    /** Is this expression explicitly signed (via $signed)? */
    static bool
    isSignedExpr(const ExprP &e)
    {
        return e->kind == Expr::Kind::SignCast && e->op == "signed";
    }

    /** Environment for blocking-assignment (comb always) lowering. */
    using CombEnv = std::map<std::string, CellId>;

    CellId
    lowerExpr(const Ctx &ctx, const ExprP &e, CombEnv *env = nullptr,
              const BlockInfo *env_block = nullptr)
    {
        switch (e->kind) {
          case Expr::Kind::Number:
            return nlist().addConst(e->number);
          case Expr::Kind::Ident: {
            if (auto c = findConst(ctx, e->name))
                return constCell(32, static_cast<uint64_t>(*c));
            Sig *sig = findSig(ctx, e->name);
            if (!sig)
                err(e->line, "unknown signal '" + e->name + "'");
            if (sig->isMem)
                err(e->line, "memory '" + e->name +
                                 "' referenced without an index");
            if (env && sig->driver == DriverKind::Block &&
                sig->block == env_block) {
                auto it = env->find(sig->key);
                if (it == env->end())
                    err(e->line, "combinational variable '" + sig->key +
                                     "' read before assignment");
                return it->second;
            }
            return resolveSig(*ctx.scope, *sig);
          }
          case Expr::Kind::Index: {
            Sig *sig = findSig(ctx, e->name);
            if (!sig)
                err(e->line, "unknown signal '" + e->name + "'");
            // Try constant evaluation first: genvar/parameter index
            // arithmetic must not be lowered as hardware.
            auto const_idx = tryConstEval(ctx, e->lhs);
            if (sig->isMem) {
                CellId idx =
                    const_idx
                        ? constCell(32,
                                    static_cast<uint64_t>(*const_idx))
                        : lowerExpr(ctx, e->lhs, env, env_block);
                return nlist().addMemRead(sig->mem, idx);
            }
            CellId base;
            if (env && sig->driver == DriverKind::Block &&
                sig->block == env_block) {
                auto it = env->find(sig->key);
                if (it == env->end())
                    err(e->line, "combinational variable '" + sig->key +
                                     "' read before assignment");
                base = it->second;
            } else {
                base = resolveSig(*ctx.scope, *sig);
            }
            // Constant index: direct slice; else shift-and-mask.
            if (const_idx) {
                if (*const_idx < 0 ||
                    static_cast<unsigned>(*const_idx) >=
                        nlist().cell(base).width)
                    err(e->line, "constant bit index out of range");
                return nlist().addSlice(
                    base, static_cast<unsigned>(*const_idx), 1);
            }
            CellId idx = lowerExpr(ctx, e->lhs, env, env_block);
            CellId shifted = nlist().addBinary(CellKind::Lshr, base, idx);
            return nlist().addSlice(shifted, 0, 1);
          }
          case Expr::Kind::Range: {
            Sig *sig = findSig(ctx, e->name);
            if (!sig)
                err(e->line, "unknown signal '" + e->name + "'");
            CellId base;
            if (env && sig->driver == DriverKind::Block &&
                sig->block == env_block) {
                auto it = env->find(sig->key);
                if (it == env->end())
                    err(e->line, "combinational variable '" + sig->key +
                                     "' read before assignment");
                base = it->second;
            } else {
                base = resolveSig(*ctx.scope, *sig);
            }
            int64_t msb = constEval(ctx, e->msb);
            int64_t lsb = constEval(ctx, e->lsb);
            if (lsb < 0 || msb < lsb)
                err(e->line, "bad part select");
            return nlist().addSlice(base, static_cast<unsigned>(lsb),
                                    static_cast<unsigned>(msb - lsb + 1));
          }
          case Expr::Kind::Unary: {
            CellId a = lowerExpr(ctx, e->lhs, env, env_block);
            const std::string &op = e->op;
            if (op == "~")
                return nlist().addUnary(CellKind::Not, a);
            if (op == "!") {
                CellId r = asBool(a);
                return nlist().addUnary(CellKind::Not, r);
            }
            if (op == "&")
                return nlist().addUnary(CellKind::RedAnd, a);
            if (op == "|")
                return nlist().addUnary(CellKind::RedOr, a);
            if (op == "~&") {
                CellId r = nlist().addUnary(CellKind::RedAnd, a);
                return nlist().addUnary(CellKind::Not, r);
            }
            if (op == "~|") {
                CellId r = nlist().addUnary(CellKind::RedOr, a);
                return nlist().addUnary(CellKind::Not, r);
            }
            if (op == "-") {
                unsigned w = nlist().cell(a).width;
                return nlist().addBinary(CellKind::Sub, constCell(w, 0),
                                         a);
            }
            if (op == "+")
                return a;
            err(e->line, "unsupported unary operator " + op);
          }
          case Expr::Kind::Binary:
            return lowerBinary(ctx, e, env, env_block);
          case Expr::Kind::Ternary: {
            CellId c = asBool(lowerExpr(ctx, e->cond, env, env_block));
            CellId t = lowerExpr(ctx, e->lhs, env, env_block);
            CellId f = lowerExpr(ctx, e->rhs, env, env_block);
            unsigned w = std::max(nlist().cell(t).width,
                                  nlist().cell(f).width);
            return nlist().addMux(c, adjust(t, w), adjust(f, w));
          }
          case Expr::Kind::Concat: {
            std::vector<CellId> parts;
            for (const auto &el : e->elems)
                parts.push_back(lowerExpr(ctx, el, env, env_block));
            return nlist().addConcat(parts);
          }
          case Expr::Kind::Repl: {
            int64_t n = constEval(ctx, e->count);
            if (n <= 0 || n > 4096)
                err(e->line, "bad replication count");
            CellId v = lowerExpr(ctx, e->elems[0], env, env_block);
            std::vector<CellId> parts(static_cast<size_t>(n), v);
            return nlist().addConcat(parts);
          }
          case Expr::Kind::SignCast:
            return lowerExpr(ctx, e->elems[0], env, env_block);
        }
        panic("unreachable expr kind");
    }

    CellId
    lowerBinary(const Ctx &ctx, const ExprP &e, CombEnv *env,
                const BlockInfo *env_block)
    {
        const std::string &op = e->op;
        CellId a = lowerExpr(ctx, e->lhs, env, env_block);
        CellId b = lowerExpr(ctx, e->rhs, env, env_block);
        unsigned wa = nlist().cell(a).width;
        unsigned wb = nlist().cell(b).width;
        bool sgn = isSignedExpr(e->lhs) && isSignedExpr(e->rhs);

        auto extend_both = [&]() {
            unsigned w = std::max(wa, wb);
            a = adjust(a, w, sgn);
            b = adjust(b, w, sgn);
        };

        if (op == "&&" || op == "||") {
            CellId ba = asBool(a), bb = asBool(b);
            return nlist().addBinary(
                op == "&&" ? CellKind::And : CellKind::Or, ba, bb);
        }
        if (op == "+" || op == "-" || op == "*" || op == "&" ||
            op == "|" || op == "^") {
            extend_both();
            CellKind k;
            if (op == "+") k = CellKind::Add;
            else if (op == "-") k = CellKind::Sub;
            else if (op == "&") k = CellKind::And;
            else if (op == "|") k = CellKind::Or;
            else if (op == "^") k = CellKind::Xor;
            else {
                err(e->line, "'*' is only supported in constants");
            }
            return nlist().addBinary(k, a, b);
        }
        if (op == "==" || op == "!=") {
            extend_both();
            CellId eq = nlist().addBinary(CellKind::Eq, a, b);
            return op == "==" ? eq : nlist().addUnary(CellKind::Not, eq);
        }
        if (op == "<" || op == ">" || op == "<=" || op == ">=") {
            extend_both();
            CellKind k = sgn ? CellKind::Slt : CellKind::Ult;
            if (op == "<")
                return nlist().addBinary(k, a, b);
            if (op == ">")
                return nlist().addBinary(k, b, a);
            if (op == ">=") {
                CellId lt = nlist().addBinary(k, a, b);
                return nlist().addUnary(CellKind::Not, lt);
            }
            CellId gt = nlist().addBinary(k, b, a);
            return nlist().addUnary(CellKind::Not, gt);
        }
        if (op == "<<")
            return nlist().addBinary(CellKind::Shl, a, b);
        if (op == ">>")
            return nlist().addBinary(CellKind::Lshr, a, b);
        if (op == ">>>")
            return nlist().addBinary(CellKind::Ashr, a, b);
        err(e->line, "unsupported binary operator " + op);
    }

    CellId
    resolveSig(Scope &scope, Sig &sig)
    {
        if (sig.cell != kNoCell)
            return sig.cell;
        if (sig.resolving)
            fatal("combinational cycle through signal '%s%s'",
                  scope.prefix.c_str(), sig.key.c_str());
        sig.resolving = true;

        CellId cell = kNoCell;
        switch (sig.driver) {
          case DriverKind::TopInput:
            panic("top input should have a cell already");
          case DriverKind::None:
            fatal("signal '%s%s' (line %d) is never driven",
                  scope.prefix.c_str(), sig.key.c_str(), sig.line);
          case DriverKind::Expr:
          case DriverKind::PortExpr: {
            CellId rhs = lowerExpr(sig.exprCtx, sig.expr);
            cell = adjust(rhs, sig.width);
            break;
          }
          case DriverKind::BitExprs: {
            std::vector<CellId> bits(sig.width, kNoCell);
            for (const auto &bd : sig.bitDrivers) {
                CellId v = lowerExpr(bd.ctx, bd.expr);
                bits[bd.bit] = adjust(v, 1);
            }
            for (unsigned i = 0; i < sig.width; i++) {
                if (bits[i] == kNoCell)
                    fatal("bit %u of signal '%s%s' is never driven", i,
                          scope.prefix.c_str(), sig.key.c_str());
            }
            // Concat takes MSB-first operands.
            std::vector<CellId> msb_first(bits.rbegin(), bits.rend());
            cell = sig.width == 1 ? bits[0]
                                  : nlist().addConcat(msb_first);
            break;
          }
          case DriverKind::InstOutput: {
            Scope &child = *sig.childScope;
            Sig &port = child.sigs.at(sig.childPort);
            CellId inner = resolveSig(child, port);
            cell = adjust(inner, sig.width);
            break;
          }
          case DriverKind::Block: {
            BlockInfo &block = *sig.block;
            if (block.always->isSequential) {
                // Create the DFF cells now; the block body (the D/EN
                // cones) is lowered in a later pass so that reads of
                // wires currently being resolved don't look like
                // combinational cycles — a register output never
                // combinationally depends on its own D input.
                sig.resolving = false;
                ensureSeqDffs(scope, block);
                pending_seq_.emplace_back(&scope, &block);
                return sig.cell;
            }
            sig.resolving = false;
            lowerCombBlock(scope, block);
            R2U_ASSERT(sig.cell != kNoCell,
                       "comb lowering missed target %s", sig.key.c_str());
            return sig.cell;
          }
        }
        // Give the wire a hierarchical name if the cell is unnamed.
        registerName(scope, sig, cell);
        sig.cell = cell;
        sig.resolving = false;
        return cell;
    }

    void
    registerName(Scope &scope, Sig &sig, CellId cell)
    {
        std::string full = scope.prefix + sig.key;
        nl::Cell &c = nlist().cell(cell);
        (void)c;
        result_.signalMap[full] = cell;
    }

    void
    ensureSeqDffs(Scope &scope, BlockInfo &block)
    {
        for (const auto &key : block.targets) {
            Sig &t = scope.sigs.at(key);
            if (t.cell == kNoCell) {
                CellId dummy = constCell(t.width, 0);
                CellId en = constCell(1, 1);
                t.cell = nlist().addDff(scope.prefix + t.key, dummy, en,
                                        Bits(t.width, 0));
                result_.signalMap[scope.prefix + t.key] = t.cell;
            }
        }
    }

    struct SeqState
    {
        std::map<std::string, CellId> next; ///< target key -> D expr
        std::map<std::string, CellId> en;   ///< target key -> enable
    };

    void
    lowerSeqBlock(Scope &scope, BlockInfo &block)
    {
        if (block.lowered)
            return;
        if (block.lowering)
            fatal("recursive sequential block lowering");
        block.lowering = true;

        SeqState st;
        for (const auto &key : block.targets) {
            st.next[key] = scope.sigs.at(key).cell; // hold value
            st.en[key] = constCell(1, 0);
        }
        CellId true_c = constCell(1, 1);
        walkSeq(block.ctx, block.always->body, true_c, st);

        for (const auto &key : block.targets) {
            Sig &t = scope.sigs.at(key);
            nl::Cell &dff = nlist().cell(t.cell);
            dff.inputs[0] = st.next[key];
            dff.inputs[1] = st.en[key];
        }
        block.lowered = true;
        block.lowering = false;
    }

    void
    walkSeq(const Ctx &ctx, const StmtP &stmt, CellId guard, SeqState &st)
    {
        if (!stmt)
            return;
        switch (stmt->kind) {
          case Stmt::Kind::Block:
            for (const auto &s : stmt->stmts)
                walkSeq(ctx, s, guard, st);
            break;
          case Stmt::Kind::If: {
            CellId c = asBool(lowerExpr(ctx, stmt->cond));
            CellId gt = nlist().addBinary(CellKind::And, guard, c);
            CellId nc = nlist().addUnary(CellKind::Not, c);
            CellId ge = nlist().addBinary(CellKind::And, guard, nc);
            walkSeq(ctx, stmt->thenStmt, gt, st);
            walkSeq(ctx, stmt->elseStmt, ge, st);
            break;
          }
          case Stmt::Kind::Case: {
            CellId subj = lowerExpr(ctx, stmt->cond);
            CellId no_prior = constCell(1, 1);
            for (const auto &item : stmt->items) {
                CellId match;
                if (item.isDefault) {
                    match = no_prior;
                } else {
                    CellId any = constCell(1, 0);
                    for (const auto &lab : item.labels) {
                        CellId lv = lowerExpr(ctx, lab);
                        unsigned w =
                            std::max(nlist().cell(subj).width,
                                     nlist().cell(lv).width);
                        CellId eq = nlist().addBinary(
                            CellKind::Eq, adjust(subj, w), adjust(lv, w));
                        any = nlist().addBinary(CellKind::Or, any, eq);
                    }
                    match = nlist().addBinary(CellKind::And, no_prior,
                                              any);
                    CellId nm = nlist().addUnary(CellKind::Not, any);
                    no_prior =
                        nlist().addBinary(CellKind::And, no_prior, nm);
                }
                CellId g = nlist().addBinary(CellKind::And, guard, match);
                walkSeq(ctx, item.body, g, st);
            }
            break;
          }
          case Stmt::Kind::Assign: {
            if (!stmt->nonblocking)
                err(stmt->line,
                    "blocking assignment in sequential always block");
            Sig *sig = findSig(ctx, stmt->lhsName);
            R2U_ASSERT(sig, "target vanished");
            CellId rhs = lowerExpr(ctx, stmt->rhs);
            if (sig->isMem) {
                CellId addr = lowerExpr(ctx, stmt->lhsIndex);
                nlist().addMemWrite(sig->mem, addr,
                                    adjust(rhs, sig->width), guard);
                break;
            }
            CellId data = adjust(rhs, sig->width);
            st.next[sig->key] =
                nlist().addMux(guard, data, st.next[sig->key]);
            st.en[sig->key] =
                nlist().addBinary(CellKind::Or, st.en[sig->key], guard);
            break;
          }
        }
    }

    void
    lowerCombBlock(Scope &scope, BlockInfo &block)
    {
        if (block.lowered)
            return;
        if (block.lowering)
            fatal("combinational cycle through an always @(*) block in "
                  "module '%s'", scope.module->name.c_str());
        block.lowering = true;

        CombEnv env;
        walkComb(block.ctx, block.always->body, &env, &block);

        for (const auto &key : block.targets) {
            auto it = env.find(key);
            if (it == env.end())
                fatal("latch inferred: '%s%s' is not assigned on every "
                      "path through its always @(*) block",
                      scope.prefix.c_str(), key.c_str());
            Sig &t = scope.sigs.at(key);
            t.cell = adjust(it->second, t.width);
            result_.signalMap[scope.prefix + t.key] = t.cell;
        }
        block.lowered = true;
        block.lowering = false;
    }

    void
    walkComb(const Ctx &ctx, const StmtP &stmt, CombEnv *env,
             BlockInfo *block)
    {
        if (!stmt)
            return;
        switch (stmt->kind) {
          case Stmt::Kind::Block:
            for (const auto &s : stmt->stmts)
                walkComb(ctx, s, env, block);
            break;
          case Stmt::Kind::If: {
            CellId c =
                asBool(lowerExpr(ctx, stmt->cond, env, block));
            CombEnv env_then = *env;
            CombEnv env_else = *env;
            walkComb(ctx, stmt->thenStmt, &env_then, block);
            walkComb(ctx, stmt->elseStmt, &env_else, block);
            mergeEnv(c, env_then, env_else, env);
            break;
          }
          case Stmt::Kind::Case: {
            CellId subj = lowerExpr(ctx, stmt->cond, env, block);
            walkCombCase(ctx, stmt, subj, 0, env, block);
            break;
          }
          case Stmt::Kind::Assign: {
            if (stmt->nonblocking)
                err(stmt->line,
                    "nonblocking assignment in always @(*) block");
            Sig *sig = findSig(ctx, stmt->lhsName);
            R2U_ASSERT(sig, "target vanished");
            if (sig->isMem)
                err(stmt->line,
                    "memory write in combinational always block");
            CellId rhs = lowerExpr(ctx, stmt->rhs, env, block);
            (*env)[sig->key] = adjust(rhs, sig->width);
            break;
          }
        }
    }

    /** Desugar case items into nested if/else over @p subj. */
    void
    walkCombCase(const Ctx &ctx, const StmtP &stmt, CellId subj,
                 size_t item_idx, CombEnv *env, BlockInfo *block)
    {
        if (item_idx >= stmt->items.size())
            return;
        const CaseItem &item = stmt->items[item_idx];
        if (item.isDefault) {
            walkComb(ctx, item.body, env, block);
            return;
        }
        CellId any = constCell(1, 0);
        for (const auto &lab : item.labels) {
            CellId lv = lowerExpr(ctx, lab, env, block);
            unsigned w = std::max(nlist().cell(subj).width,
                                  nlist().cell(lv).width);
            CellId eq = nlist().addBinary(CellKind::Eq, adjust(subj, w),
                                          adjust(lv, w));
            any = nlist().addBinary(CellKind::Or, any, eq);
        }
        CombEnv env_then = *env;
        CombEnv env_else = *env;
        walkComb(ctx, item.body, &env_then, block);
        walkCombCase(ctx, stmt, subj, item_idx + 1, &env_else, block);
        mergeEnv(any, env_then, env_else, env);
    }

    void
    mergeEnv(CellId cond, const CombEnv &env_then, const CombEnv &env_else,
             CombEnv *out)
    {
        out->clear();
        for (const auto &[key, tv] : env_then) {
            auto it = env_else.find(key);
            if (it == env_else.end())
                continue; // defined on one path only: stays undefined
            unsigned w = std::max(nlist().cell(tv).width,
                                  nlist().cell(it->second).width);
            if (tv == it->second) {
                (*out)[key] = tv;
            } else {
                (*out)[key] = nlist().addMux(cond, adjust(tv, w),
                                             adjust(it->second, w));
            }
        }
    }

    void
    forceResolve(Scope &scope)
    {
        for (auto &[key, sig] : scope.sigs) {
            if (sig.isMem)
                continue;
            if (sig.driver == DriverKind::None) {
                // Undriven non-port wires are an error only when read;
                // tolerate fully unused declarations.
                continue;
            }
            resolveSig(scope, sig);
        }
        // Force always blocks that assign only memories, and queue all
        // sequential blocks for body lowering.
        for (auto &block : scope.blocks) {
            if (block->lowered)
                continue;
            if (block->always->isSequential) {
                ensureSeqDffs(scope, *block);
                pending_seq_.emplace_back(&scope, block.get());
            } else {
                lowerCombBlock(scope, *block);
            }
        }
        for (auto &child : scope.children)
            forceResolve(*child);
    }

    /** Lower the D/EN cones of all queued sequential blocks. */
    void
    drainPendingSeq()
    {
        while (!pending_seq_.empty()) {
            auto [scope, block] = pending_seq_.back();
            pending_seq_.pop_back();
            lowerSeqBlock(*scope, *block);
        }
    }

    const Design &design_;
    const ElabOptions &opts_;
    ElabResult result_;
    std::unique_ptr<Scope> top_;
    std::vector<std::pair<Scope *, BlockInfo *>> pending_seq_;
};

} // namespace

nl::CellId
ElabResult::signal(const std::string &name) const
{
    auto it = signalMap.find(name);
    if (it == signalMap.end())
        fatal("no signal named '%s' in elaborated design", name.c_str());
    return it->second;
}

nl::MemId
ElabResult::mem(const std::string &name) const
{
    auto it = memMap.find(name);
    if (it == memMap.end())
        fatal("no memory named '%s' in elaborated design", name.c_str());
    return it->second;
}

ElabResult
elaborate(const Design &design, const ElabOptions &opts)
{
    Elaborator e(design, opts);
    return e.run();
}

ElabResult
elaborateFiles(const std::vector<std::string> &paths,
               const ElabOptions &opts)
{
    Design d = parseFiles(paths);
    return elaborate(d, opts);
}

} // namespace r2u::vlog
