/**
 * @file
 * AST for the supported synthesizable Verilog-2005 subset.
 *
 * Supported constructs (see docs in README / verilog/parser.cc):
 * modules with ANSI port lists and parameters, wire/reg/logic nets,
 * memory arrays, continuous assigns, always @(posedge clk) blocks with
 * nonblocking assignments, always @(*) blocks with blocking
 * assignments, if/else, case/default, module instantiation with named
 * connections, generate-for loops with named blocks, and the usual
 * expression operators including concatenation, replication, part
 * selects, and $signed/$unsigned.
 */

#ifndef R2U_VERILOG_AST_HH
#define R2U_VERILOG_AST_HH

#include <memory>
#include <string>
#include <vector>

#include "common/bits.hh"

namespace r2u::vlog
{

struct Expr;
using ExprP = std::shared_ptr<Expr>;

struct Expr
{
    enum class Kind {
        Number,  ///< literal; value/sized
        Ident,   ///< name
        Index,   ///< name[index] — bit select or memory read
        Range,   ///< name[msb:lsb] — constant part select
        Unary,   ///< op: ! ~ - & | ^
        Binary,  ///< op: arithmetic/logical/relational/shift
        Ternary, ///< cond ? lhs : rhs
        Concat,  ///< {elems...} MSB first
        Repl,    ///< {count{elems[0]}}
        SignCast ///< $signed/$unsigned of elems[0]; op = "signed"/"unsigned"
    };

    Kind kind;
    int line = 0;

    // Number
    Bits number;
    bool sized = false; ///< width came from an explicit size prefix

    // Ident / Index / Range base name
    std::string name;

    std::string op;
    ExprP lhs, rhs, cond; ///< operands; Index uses lhs as the index
    ExprP msb, lsb;       ///< Range bounds (constant expressions)
    ExprP count;          ///< Repl count (constant expression)
    std::vector<ExprP> elems;
};

struct Stmt;
using StmtP = std::shared_ptr<Stmt>;

struct CaseItem
{
    bool isDefault = false;
    std::vector<ExprP> labels;
    StmtP body;
};

struct Stmt
{
    enum class Kind {
        Block,  ///< begin ... end
        If,     ///< if (cond) then [else els]
        Case,   ///< case (subject) items endcase
        Assign  ///< lhs = / <= rhs
    };

    Kind kind;
    int line = 0;

    std::vector<StmtP> stmts; // Block
    ExprP cond;               // If / Case subject
    StmtP thenStmt, elseStmt; // If
    std::vector<CaseItem> items; // Case

    // Assign
    bool nonblocking = false;
    std::string lhsName;
    ExprP lhsIndex; ///< nullptr for whole-variable assignment
    ExprP rhs;
};

struct ParamDecl
{
    std::string name;
    ExprP value;
    bool isLocal = false;
};

enum class PortDir { None, Input, Output };

struct NetDecl
{
    std::string name;
    PortDir dir = PortDir::None;
    bool isReg = false;
    ExprP msb, lsb;           ///< range; null => 1-bit
    ExprP arrayLeft, arrayRight; ///< memory array bounds; null => scalar
    int line = 0;
};

struct ContAssign
{
    std::string lhsName;
    ExprP lhsIndex; ///< optional single bit/element select (must be const)
    ExprP rhs;
    int line = 0;
};

struct AlwaysBlock
{
    bool isSequential = false; ///< @(posedge ...) vs @(*)
    std::string clock;         ///< event signal name for sequential blocks
    StmtP body;
    int line = 0;
};

struct PortConn
{
    std::string port;
    ExprP expr; ///< may be null for unconnected
};

struct Instance
{
    std::string moduleName;
    std::string instName;
    std::vector<std::pair<std::string, ExprP>> paramOverrides;
    std::vector<PortConn> ports;
    int line = 0;
};

struct ModuleItem;
using ModuleItemP = std::shared_ptr<ModuleItem>;

struct GenFor
{
    std::string genvar;
    ExprP init, cond, step;
    std::string blockName;
    std::vector<ModuleItemP> body;
    int line = 0;
};

struct ModuleItem
{
    enum class Kind { Param, Net, Assign, Always, Inst, GenForItem };
    Kind kind;
    ParamDecl param;
    NetDecl net;
    ContAssign assign;
    AlwaysBlock always;
    Instance inst;
    std::shared_ptr<GenFor> genFor;
};

struct Module
{
    std::string name;
    std::vector<std::string> portOrder;
    std::vector<ModuleItemP> items;
    int line = 0;
};

struct Design
{
    std::vector<std::shared_ptr<Module>> modules;

    const Module *findModule(const std::string &name) const;
};

} // namespace r2u::vlog

#endif // R2U_VERILOG_AST_HH
