/**
 * @file
 * Recursive-descent parser for the supported Verilog subset.
 */

#ifndef R2U_VERILOG_PARSER_HH
#define R2U_VERILOG_PARSER_HH

#include <string>
#include <vector>

#include "verilog/ast.hh"

namespace r2u::vlog
{

/** Parse source text into a Design (fatal() on syntax errors). */
Design parseString(const std::string &src, const std::string &filename);

/** Parse and merge several source files. */
Design parseFiles(const std::vector<std::string> &paths);

} // namespace r2u::vlog

#endif // R2U_VERILOG_PARSER_HH
