#include "verilog/parser.hh"

#include <unordered_set>

#include "common/logging.hh"
#include "common/strutil.hh"
#include "verilog/lexer.hh"

namespace r2u::vlog
{

namespace
{

const std::unordered_set<std::string> kKeywords = {
    "module", "endmodule", "input",  "output",   "wire",     "reg",
    "logic",  "parameter", "localparam", "assign", "always", "posedge",
    "negedge", "begin",    "end",    "if",       "else",     "case",
    "endcase", "default",  "generate", "endgenerate", "for", "genvar",
};

class Parser
{
  public:
    Parser(std::vector<Token> toks, std::string filename)
        : toks_(std::move(toks)), file_(std::move(filename))
    {
    }

    Design
    parseDesign()
    {
        Design d;
        while (!atEof()) {
            expectKeyword("module");
            d.modules.push_back(parseModule());
        }
        return d;
    }

  private:
    // --- token helpers ---
    const Token &cur() const { return toks_[pos_]; }
    const Token &peek(size_t k = 1) const
    {
        size_t i = pos_ + k;
        return i < toks_.size() ? toks_[i] : toks_.back();
    }
    bool atEof() const { return cur().kind == TokKind::Eof; }

    [[noreturn]] void
    err(const std::string &msg) const
    {
        fatal("%s:%d: parse error: %s (got '%s')", file_.c_str(),
              cur().line, msg.c_str(), cur().text.c_str());
    }

    bool
    isPunct(const std::string &p) const
    {
        return cur().kind == TokKind::Punct && cur().text == p;
    }

    bool
    isKeyword(const std::string &k) const
    {
        return cur().kind == TokKind::Ident && cur().text == k;
    }

    bool
    acceptPunct(const std::string &p)
    {
        if (isPunct(p)) {
            pos_++;
            return true;
        }
        return false;
    }

    void
    expectPunct(const std::string &p)
    {
        if (!acceptPunct(p))
            err("expected '" + p + "'");
    }

    bool
    acceptKeyword(const std::string &k)
    {
        if (isKeyword(k)) {
            pos_++;
            return true;
        }
        return false;
    }

    void
    expectKeyword(const std::string &k)
    {
        if (!acceptKeyword(k))
            err("expected keyword '" + k + "'");
    }

    std::string
    expectIdent()
    {
        if (cur().kind != TokKind::Ident || kKeywords.count(cur().text))
            err("expected identifier");
        std::string s = cur().text;
        pos_++;
        return s;
    }

    // --- expressions ---
    ExprP
    mkExpr(Expr::Kind kind)
    {
        auto e = std::make_shared<Expr>();
        e->kind = kind;
        e->line = cur().line;
        return e;
    }

    ExprP
    parseExpr()
    {
        return parseTernary();
    }

    ExprP
    parseTernary()
    {
        ExprP c = parseBinary(0);
        if (acceptPunct("?")) {
            auto e = mkExpr(Expr::Kind::Ternary);
            e->cond = c;
            e->lhs = parseTernary();
            expectPunct(":");
            e->rhs = parseTernary();
            return e;
        }
        return c;
    }

    /** Binary-operator precedence levels, loosest first. */
    int
    binLevel(const std::string &op) const
    {
        if (op == "||") return 1;
        if (op == "&&") return 2;
        if (op == "|") return 3;
        if (op == "^" || op == "~^") return 4;
        if (op == "&") return 5;
        if (op == "==" || op == "!=") return 6;
        if (op == "<" || op == "<=" || op == ">" || op == ">=") return 7;
        if (op == "<<" || op == ">>" || op == ">>>") return 8;
        if (op == "+" || op == "-") return 9;
        if (op == "*" || op == "/" || op == "%") return 10;
        return -1;
    }

    ExprP
    parseBinary(int min_level)
    {
        ExprP lhs = parseUnary();
        while (cur().kind == TokKind::Punct) {
            int level = binLevel(cur().text);
            if (level < 0 || level < min_level)
                break;
            std::string op = cur().text;
            pos_++;
            ExprP rhs = parseBinary(level + 1);
            auto e = mkExpr(Expr::Kind::Binary);
            e->op = op;
            e->lhs = lhs;
            e->rhs = rhs;
            lhs = e;
        }
        return lhs;
    }

    ExprP
    parseUnary()
    {
        static const char *unops[] = {"!", "~", "-", "&", "|", "^",
                                      "~|", "~&", "+"};
        for (const char *op : unops) {
            if (isPunct(op)) {
                std::string o = cur().text;
                pos_++;
                auto e = mkExpr(Expr::Kind::Unary);
                e->op = o;
                e->lhs = parseUnary();
                return e;
            }
        }
        return parsePrimary();
    }

    ExprP
    parsePrimary()
    {
        if (cur().kind == TokKind::Number) {
            auto e = mkExpr(Expr::Kind::Number);
            e->number = cur().number;
            e->sized = cur().sized;
            pos_++;
            return e;
        }
        if (cur().kind == TokKind::SysIdent) {
            std::string fn = cur().text;
            pos_++;
            if (fn != "$signed" && fn != "$unsigned")
                err("unsupported system function " + fn);
            expectPunct("(");
            auto e = mkExpr(Expr::Kind::SignCast);
            e->op = fn.substr(1);
            e->elems.push_back(parseExpr());
            expectPunct(")");
            return e;
        }
        if (acceptPunct("(")) {
            ExprP e = parseExpr();
            expectPunct(")");
            return e;
        }
        if (isPunct("{")) {
            return parseConcat();
        }
        if (cur().kind == TokKind::Ident && !kKeywords.count(cur().text)) {
            std::string name = parseHierName();
            if (isPunct("[")) {
                pos_++;
                ExprP first = parseExpr();
                if (acceptPunct(":")) {
                    auto e = mkExpr(Expr::Kind::Range);
                    e->name = name;
                    e->msb = first;
                    e->lsb = parseExpr();
                    expectPunct("]");
                    return e;
                }
                expectPunct("]");
                auto e = mkExpr(Expr::Kind::Index);
                e->name = name;
                e->lhs = first;
                return e;
            }
            auto e = mkExpr(Expr::Kind::Ident);
            e->name = name;
            return e;
        }
        err("expected expression");
    }

    /** Dotted hierarchical names (used only in metadata contexts). */
    std::string
    parseHierName()
    {
        std::string name = expectIdent();
        return name;
    }

    ExprP
    parseConcat()
    {
        int line = cur().line;
        expectPunct("{");
        ExprP first = parseExpr();
        if (isPunct("{")) {
            // Replication: {count{value}}
            pos_++;
            auto e = mkExpr(Expr::Kind::Repl);
            e->line = line;
            e->count = first;
            e->elems.push_back(parseExpr());
            expectPunct("}");
            expectPunct("}");
            return e;
        }
        auto e = mkExpr(Expr::Kind::Concat);
        e->line = line;
        e->elems.push_back(first);
        while (acceptPunct(","))
            e->elems.push_back(parseExpr());
        expectPunct("}");
        return e;
    }

    // --- statements ---
    StmtP
    mkStmt(Stmt::Kind kind)
    {
        auto s = std::make_shared<Stmt>();
        s->kind = kind;
        s->line = cur().line;
        return s;
    }

    StmtP
    parseStmt()
    {
        if (acceptKeyword("begin")) {
            auto s = mkStmt(Stmt::Kind::Block);
            while (!isKeyword("end"))
                s->stmts.push_back(parseStmt());
            expectKeyword("end");
            return s;
        }
        if (acceptKeyword("if")) {
            auto s = mkStmt(Stmt::Kind::If);
            expectPunct("(");
            s->cond = parseExpr();
            expectPunct(")");
            s->thenStmt = parseStmt();
            if (acceptKeyword("else"))
                s->elseStmt = parseStmt();
            return s;
        }
        if (acceptKeyword("case")) {
            auto s = mkStmt(Stmt::Kind::Case);
            expectPunct("(");
            s->cond = parseExpr();
            expectPunct(")");
            while (!isKeyword("endcase")) {
                CaseItem item;
                if (acceptKeyword("default")) {
                    item.isDefault = true;
                    acceptPunct(":");
                } else {
                    item.labels.push_back(parseExpr());
                    while (acceptPunct(","))
                        item.labels.push_back(parseExpr());
                    expectPunct(":");
                }
                item.body = parseStmt();
                s->items.push_back(std::move(item));
            }
            expectKeyword("endcase");
            return s;
        }
        // Assignment statement.
        auto s = mkStmt(Stmt::Kind::Assign);
        s->lhsName = expectIdent();
        if (acceptPunct("[")) {
            s->lhsIndex = parseExpr();
            expectPunct("]");
        }
        if (acceptPunct("=")) {
            s->nonblocking = false;
        } else if (acceptPunct("<=")) {
            s->nonblocking = true;
        } else {
            err("expected '=' or '<=' in assignment");
        }
        s->rhs = parseExpr();
        expectPunct(";");
        return s;
    }

    // --- module items ---
    PortDir
    parseDir()
    {
        if (acceptKeyword("input"))
            return PortDir::Input;
        if (acceptKeyword("output"))
            return PortDir::Output;
        return PortDir::None;
    }

    /** Parse "[msb:lsb]" into the decl if present. */
    void
    parseRange(ExprP &msb, ExprP &lsb)
    {
        if (acceptPunct("[")) {
            msb = parseExpr();
            expectPunct(":");
            lsb = parseExpr();
            expectPunct("]");
        }
    }

    std::shared_ptr<Module>
    parseModule()
    {
        auto m = std::make_shared<Module>();
        m->line = cur().line;
        m->name = expectIdent();

        // Parameter port list.
        if (acceptPunct("#")) {
            expectPunct("(");
            do {
                acceptKeyword("parameter");
                auto item = std::make_shared<ModuleItem>();
                item->kind = ModuleItem::Kind::Param;
                item->param.name = expectIdent();
                expectPunct("=");
                item->param.value = parseExpr();
                item->param.isLocal = false;
                m->items.push_back(item);
            } while (acceptPunct(","));
            expectPunct(")");
        }

        // ANSI port list.
        expectPunct("(");
        if (!isPunct(")")) {
            do {
                PortDir dir = parseDir();
                if (dir == PortDir::None)
                    err("port requires explicit input/output direction");
                bool is_reg = false;
                if (acceptKeyword("wire") || acceptKeyword("logic")) {
                } else if (acceptKeyword("reg")) {
                    is_reg = true;
                }
                auto item = std::make_shared<ModuleItem>();
                item->kind = ModuleItem::Kind::Net;
                item->net.dir = dir;
                item->net.isReg = is_reg;
                item->net.line = cur().line;
                parseRange(item->net.msb, item->net.lsb);
                item->net.name = expectIdent();
                m->portOrder.push_back(item->net.name);
                m->items.push_back(item);
            } while (acceptPunct(","));
        }
        expectPunct(")");
        expectPunct(";");

        while (!isKeyword("endmodule"))
            parseModuleItems(m->items);
        expectKeyword("endmodule");
        return m;
    }

    void
    parseModuleItems(std::vector<ModuleItemP> &out)
    {
        if (isKeyword("parameter") || isKeyword("localparam")) {
            bool is_local = cur().text == "localparam";
            pos_++;
            do {
                auto item = std::make_shared<ModuleItem>();
                item->kind = ModuleItem::Kind::Param;
                item->param.isLocal = is_local;
                item->param.name = expectIdent();
                expectPunct("=");
                item->param.value = parseExpr();
                out.push_back(item);
            } while (acceptPunct(","));
            expectPunct(";");
            return;
        }
        if (isKeyword("wire") || isKeyword("reg") || isKeyword("logic")) {
            bool is_reg = cur().text == "reg" || cur().text == "logic";
            pos_++;
            ExprP msb, lsb;
            parseRange(msb, lsb);
            do {
                auto item = std::make_shared<ModuleItem>();
                item->kind = ModuleItem::Kind::Net;
                item->net.isReg = is_reg;
                item->net.msb = msb;
                item->net.lsb = lsb;
                item->net.line = cur().line;
                item->net.name = expectIdent();
                parseRange(item->net.arrayLeft, item->net.arrayRight);
                out.push_back(item);
                // "wire name = expr;" declaration with initializer.
                if (acceptPunct("=")) {
                    auto as = std::make_shared<ModuleItem>();
                    as->kind = ModuleItem::Kind::Assign;
                    as->assign.line = cur().line;
                    as->assign.lhsName = item->net.name;
                    as->assign.rhs = parseExpr();
                    out.push_back(as);
                }
            } while (acceptPunct(","));
            expectPunct(";");
            return;
        }
        if (acceptKeyword("assign")) {
            auto item = std::make_shared<ModuleItem>();
            item->kind = ModuleItem::Kind::Assign;
            item->assign.line = cur().line;
            item->assign.lhsName = expectIdent();
            if (acceptPunct("[")) {
                item->assign.lhsIndex = parseExpr();
                expectPunct("]");
            }
            expectPunct("=");
            item->assign.rhs = parseExpr();
            expectPunct(";");
            out.push_back(item);
            return;
        }
        if (acceptKeyword("always")) {
            auto item = std::make_shared<ModuleItem>();
            item->kind = ModuleItem::Kind::Always;
            item->always.line = cur().line;
            expectPunct("@");
            expectPunct("(");
            if (acceptPunct("*")) {
                item->always.isSequential = false;
            } else if (acceptKeyword("posedge")) {
                item->always.isSequential = true;
                item->always.clock = expectIdent();
            } else {
                err("expected '*' or 'posedge' in sensitivity list");
            }
            expectPunct(")");
            item->always.body = parseStmt();
            out.push_back(item);
            return;
        }
        if (acceptKeyword("genvar")) {
            // Declaration only; the binding happens in the for header.
            expectIdent();
            while (acceptPunct(","))
                expectIdent();
            expectPunct(";");
            return;
        }
        if (acceptKeyword("generate")) {
            while (!isKeyword("endgenerate"))
                parseGenerateItem(out);
            expectKeyword("endgenerate");
            return;
        }
        if (isKeyword("for")) {
            parseGenerateItem(out);
            return;
        }
        // Module instantiation: ident [#(...)] ident ( ... ) ;
        if (cur().kind == TokKind::Ident && !kKeywords.count(cur().text)) {
            parseInstance(out);
            return;
        }
        err("unexpected module item");
    }

    void
    parseGenerateItem(std::vector<ModuleItemP> &out)
    {
        if (acceptKeyword("for")) {
            auto gf = std::make_shared<GenFor>();
            gf->line = cur().line;
            expectPunct("(");
            gf->genvar = expectIdent();
            expectPunct("=");
            gf->init = parseExpr();
            expectPunct(";");
            gf->cond = parseExpr();
            expectPunct(";");
            std::string step_var = expectIdent();
            if (step_var != gf->genvar)
                err("generate-for step must assign the genvar");
            expectPunct("=");
            gf->step = parseExpr();
            expectPunct(")");
            expectKeyword("begin");
            expectPunct(":");
            gf->blockName = expectIdent();
            while (!isKeyword("end"))
                parseModuleItems(gf->body);
            expectKeyword("end");

            auto item = std::make_shared<ModuleItem>();
            item->kind = ModuleItem::Kind::GenForItem;
            item->genFor = gf;
            out.push_back(item);
            return;
        }
        parseModuleItems(out);
    }

    void
    parseInstance(std::vector<ModuleItemP> &out)
    {
        auto item = std::make_shared<ModuleItem>();
        item->kind = ModuleItem::Kind::Inst;
        item->inst.line = cur().line;
        item->inst.moduleName = expectIdent();
        if (acceptPunct("#")) {
            expectPunct("(");
            do {
                expectPunct(".");
                std::string pname = expectIdent();
                expectPunct("(");
                ExprP v = parseExpr();
                expectPunct(")");
                item->inst.paramOverrides.emplace_back(pname, v);
            } while (acceptPunct(","));
            expectPunct(")");
        }
        item->inst.instName = expectIdent();
        expectPunct("(");
        if (!isPunct(")")) {
            do {
                expectPunct(".");
                PortConn pc;
                pc.port = expectIdent();
                expectPunct("(");
                if (!isPunct(")"))
                    pc.expr = parseExpr();
                expectPunct(")");
                item->inst.ports.push_back(std::move(pc));
            } while (acceptPunct(","));
        }
        expectPunct(")");
        expectPunct(";");
        out.push_back(item);
    }

    std::vector<Token> toks_;
    std::string file_;
    size_t pos_ = 0;
};

} // namespace

const Module *
Design::findModule(const std::string &name) const
{
    for (const auto &m : modules)
        if (m->name == name)
            return m.get();
    return nullptr;
}

Design
parseString(const std::string &src, const std::string &filename)
{
    Parser p(tokenize(src, filename), filename);
    return p.parseDesign();
}

Design
parseFiles(const std::vector<std::string> &paths)
{
    Design all;
    for (const auto &path : paths) {
        Design d = parseString(readFile(path), path);
        for (auto &m : d.modules)
            all.modules.push_back(std::move(m));
    }
    return all;
}

} // namespace r2u::vlog
