/**
 * @file
 * Tokenizer for the supported Verilog subset.
 */

#ifndef R2U_VERILOG_LEXER_HH
#define R2U_VERILOG_LEXER_HH

#include <string>
#include <vector>

#include "common/bits.hh"

namespace r2u::vlog
{

enum class TokKind {
    Eof,
    Ident,   ///< identifiers and keywords (text distinguishes)
    SysIdent,///< $signed, $unsigned, ...
    Number,  ///< numeric literal (value + width info)
    Punct    ///< operator or punctuation (text holds the spelling)
};

struct Token
{
    TokKind kind = TokKind::Eof;
    std::string text;
    Bits number;        ///< for Number tokens
    bool sized = false; ///< literal had an explicit size (e.g. 8'hff)
    int line = 1;
};

/**
 * Tokenize @p src (from @p filename, used in diagnostics). fatal()s on
 * lexical errors.
 */
std::vector<Token> tokenize(const std::string &src,
                            const std::string &filename);

} // namespace r2u::vlog

#endif // R2U_VERILOG_LEXER_HH
