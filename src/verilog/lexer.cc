#include "verilog/lexer.hh"

#include <cctype>

#include "common/logging.hh"

namespace r2u::vlog
{

namespace
{

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentChar(char c)
{
    return isIdentStart(c) || std::isdigit(static_cast<unsigned char>(c));
}

/** Parse digits of the given base into an arbitrary-width value. */
Bits
parseBaseDigits(const std::string &digits, unsigned base_bits,
                unsigned width, const std::string &filename, int line)
{
    Bits v(width);
    for (char c : digits) {
        if (c == '_')
            continue;
        unsigned d;
        if (c >= '0' && c <= '9')
            d = static_cast<unsigned>(c - '0');
        else if (c >= 'a' && c <= 'f')
            d = static_cast<unsigned>(c - 'a' + 10);
        else if (c >= 'A' && c <= 'F')
            d = static_cast<unsigned>(c - 'A' + 10);
        else
            fatal("%s:%d: bad digit '%c' in literal", filename.c_str(),
                  line, c);
        if (d >= (1u << base_bits))
            fatal("%s:%d: digit '%c' out of base range", filename.c_str(),
                  line, c);
        v = v.shl(base_bits) | Bits(width, d);
    }
    return v;
}

/** Parse a decimal digit string into a width-bit value. */
Bits
parseDecDigits(const std::string &digits, unsigned width,
               const std::string &filename, int line)
{
    Bits v(width);
    Bits ten(width, 10);
    for (char c : digits) {
        if (c == '_')
            continue;
        if (!std::isdigit(static_cast<unsigned char>(c)))
            fatal("%s:%d: bad decimal digit '%c'", filename.c_str(), line,
                  c);
        v = v * ten + Bits(width, static_cast<uint64_t>(c - '0'));
    }
    return v;
}

} // namespace

std::vector<Token>
tokenize(const std::string &src, const std::string &filename)
{
    std::vector<Token> toks;
    size_t i = 0;
    int line = 1;
    auto peek = [&](size_t k = 0) -> char {
        return i + k < src.size() ? src[i + k] : '\0';
    };

    while (i < src.size()) {
        char c = src[i];
        if (c == '\n') {
            line++;
            i++;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            i++;
            continue;
        }
        // Comments.
        if (c == '/' && peek(1) == '/') {
            while (i < src.size() && src[i] != '\n')
                i++;
            continue;
        }
        if (c == '/' && peek(1) == '*') {
            i += 2;
            while (i < src.size() &&
                   !(src[i] == '*' && peek(1) == '/')) {
                if (src[i] == '\n')
                    line++;
                i++;
            }
            if (i >= src.size())
                fatal("%s:%d: unterminated block comment",
                      filename.c_str(), line);
            i += 2;
            continue;
        }
        // Identifiers / keywords.
        if (isIdentStart(c)) {
            size_t start = i;
            while (i < src.size() && isIdentChar(src[i]))
                i++;
            Token t;
            t.kind = TokKind::Ident;
            t.text = src.substr(start, i - start);
            t.line = line;
            toks.push_back(std::move(t));
            continue;
        }
        // System identifiers.
        if (c == '$') {
            size_t start = i++;
            while (i < src.size() && isIdentChar(src[i]))
                i++;
            Token t;
            t.kind = TokKind::SysIdent;
            t.text = src.substr(start, i - start);
            t.line = line;
            toks.push_back(std::move(t));
            continue;
        }
        // Numbers (possibly sized/based).
        if (std::isdigit(static_cast<unsigned char>(c)) || c == '\'') {
            size_t start = i;
            std::string size_digits;
            while (i < src.size() &&
                   (std::isdigit(static_cast<unsigned char>(src[i])) ||
                    src[i] == '_')) {
                size_digits.push_back(src[i]);
                i++;
            }
            Token t;
            t.kind = TokKind::Number;
            t.line = line;
            if (i < src.size() && src[i] == '\'') {
                i++; // consume '
                char base = static_cast<char>(
                    std::tolower(static_cast<unsigned char>(peek())));
                unsigned width = 32;
                bool explicit_size = !size_digits.empty();
                if (explicit_size) {
                    width = static_cast<unsigned>(
                        parseDecDigits(size_digits, 32, filename, line)
                            .toUint64());
                    if (width == 0 || width > 4096)
                        fatal("%s:%d: bad literal size %u",
                              filename.c_str(), line, width);
                }
                i++; // consume base char
                std::string digits;
                while (i < src.size() &&
                       (std::isalnum(
                            static_cast<unsigned char>(src[i])) ||
                        src[i] == '_')) {
                    digits.push_back(src[i]);
                    i++;
                }
                if (digits.empty())
                    fatal("%s:%d: literal missing digits",
                          filename.c_str(), line);
                switch (base) {
                  case 'b':
                    t.number =
                        parseBaseDigits(digits, 1, width, filename, line);
                    break;
                  case 'o':
                    t.number =
                        parseBaseDigits(digits, 3, width, filename, line);
                    break;
                  case 'h':
                    t.number =
                        parseBaseDigits(digits, 4, width, filename, line);
                    break;
                  case 'd':
                    t.number =
                        parseDecDigits(digits, width, filename, line);
                    break;
                  default:
                    fatal("%s:%d: unknown literal base '%c'",
                          filename.c_str(), line, base);
                }
                t.sized = explicit_size;
            } else {
                if (size_digits.empty())
                    fatal("%s:%d: malformed number", filename.c_str(),
                          line);
                t.number = parseDecDigits(size_digits, 32, filename, line);
                t.sized = false;
            }
            t.text = src.substr(start, i - start);
            toks.push_back(std::move(t));
            continue;
        }
        // Punctuation / operators; longest match first.
        static const char *three[] = {">>>", "<<<", "===", "!=="};
        static const char *two[] = {"&&", "||", "==", "!=", "<=", ">=",
                                    "<<", ">>", "+:", "-:", "~|", "~&",
                                    "~^"};
        Token t;
        t.kind = TokKind::Punct;
        t.line = line;
        bool matched = false;
        for (const char *op : three) {
            if (src.compare(i, 3, op) == 0) {
                t.text = op;
                i += 3;
                matched = true;
                break;
            }
        }
        if (!matched) {
            for (const char *op : two) {
                if (src.compare(i, 2, op) == 0) {
                    t.text = op;
                    i += 2;
                    matched = true;
                    break;
                }
            }
        }
        if (!matched) {
            static const std::string singles = "()[]{}:;,.#?=+-*/%&|^~!<>@";
            if (singles.find(c) == std::string::npos)
                fatal("%s:%d: unexpected character '%c'",
                      filename.c_str(), line, c);
            t.text = std::string(1, c);
            i++;
        }
        toks.push_back(std::move(t));
    }

    Token eof;
    eof.kind = TokKind::Eof;
    eof.line = line;
    toks.push_back(eof);
    return toks;
}

} // namespace r2u::vlog
