/**
 * @file
 * Tseitin-style circuit-to-CNF construction on top of sat::Solver.
 *
 * The BMC engine bit-blasts word-level netlist cells through this
 * builder. Gates are structurally hashed (AIG-style) and constants are
 * folded, which keeps the unrolled formulas small — the property
 * localization that makes rtl2uspec's SVAs cheap shows up here as tiny
 * cone-of-influence CNFs.
 *
 * Words are little-endian vectors of literals (index 0 = LSB).
 */

#ifndef R2U_SAT_CNF_HH
#define R2U_SAT_CNF_HH

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/bits.hh"
#include "sat/solver.hh"

namespace r2u::sat
{

using Word = std::vector<Lit>;

class CnfBuilder
{
  public:
    explicit CnfBuilder(Solver &solver);

    Solver &solver() { return solver_; }

    /** Literal that is constrained true (its negation is false). */
    Lit trueLit() const { return true_lit_; }
    Lit falseLit() const { return ~true_lit_; }

    /** Fresh unconstrained literal. */
    Lit freshLit();

    bool isTrue(Lit l) const { return l == true_lit_; }
    bool isFalse(Lit l) const { return l == ~true_lit_; }
    bool isConst(Lit l) const { return isTrue(l) || isFalse(l); }

    // --- bit-level gates ---
    Lit mkAnd(Lit a, Lit b);
    Lit mkOr(Lit a, Lit b) { return ~mkAnd(~a, ~b); }
    Lit mkXor(Lit a, Lit b);
    Lit mkEq(Lit a, Lit b) { return ~mkXor(a, b); }
    Lit mkMux(Lit sel, Lit t, Lit f);
    Lit mkImplies(Lit a, Lit b) { return mkOr(~a, b); }
    Lit mkAndN(const std::vector<Lit> &ls);
    Lit mkOrN(const std::vector<Lit> &ls);

    /**
     * Balanced OR over a set of literals. Same function as mkOrN but
     * tree-shaped (depth log n instead of n), the right shape for wide
     * memory select terms.
     */
    Lit mkOrTree(std::vector<Lit> ls);

    /**
     * One-hot address decode: result[i] is true iff a == i, for all
     * 2^|a| indices. Built by serial expansion (doubling the vector
     * per address bit), so common prefixes are shared across the
     * outputs — and, via the gate cache, across every decode of the
     * same address word.
     */
    std::vector<Lit> mkDecodeW(const Word &a);

    /**
     * One-hot select: the word picked by the single true line of
     * `onehot`, with lines beyond words.size() (and an all-false
     * onehot) reading as zero. Precondition: exactly one line of
     * `onehot` is true in every assignment — i.e. a complete
     * mkDecodeW output. Clause-encoded: one fresh variable per output
     * bit and two clauses per line, instead of a per-line AND/OR tree
     * (~2x depth auxiliary variables per bit).
     */
    Word mkSelectW(const std::vector<Lit> &onehot,
                   const std::vector<Word> &words, unsigned width);

    // --- word-level operations (operand widths must match) ---
    Word constWord(const Bits &value);
    Word constWord(unsigned width, uint64_t value);
    Word freshWord(unsigned width);

    Word mkAddW(const Word &a, const Word &b);
    Word mkSubW(const Word &a, const Word &b);
    Word mkAndW(const Word &a, const Word &b);
    Word mkOrW(const Word &a, const Word &b);
    Word mkXorW(const Word &a, const Word &b);
    Word mkNotW(const Word &a);
    Word mkMuxW(Lit sel, const Word &t, const Word &f);
    Word mkNegW(const Word &a);

    Lit mkEqW(const Word &a, const Word &b);
    Lit mkUltW(const Word &a, const Word &b);
    Lit mkSltW(const Word &a, const Word &b);
    Lit mkRedOrW(const Word &a);
    Lit mkRedAndW(const Word &a);

    /** Barrel shifters; shift amount is a word. Result width = a. */
    Word mkShlW(const Word &a, const Word &sh);
    Word mkLshrW(const Word &a, const Word &sh);
    Word mkAshrW(const Word &a, const Word &sh);

    static Word zextW(const Word &a, unsigned width, Lit false_lit);
    static Word sextW(const Word &a, unsigned width);
    static Word sliceW(const Word &a, unsigned lo, unsigned width);
    static Word concatW(const Word &hi, const Word &lo);

    /**
     * Adopt another builder's structural-hash caches and true
     * literal. Only meaningful right after Solver::cloneFrom() of the
     * other builder's solver (identical variable numbering): future
     * gate constructions then hit the donor's cache instead of
     * re-encoding shared structure.
     */
    void adoptState(const CnfBuilder &other)
    {
        true_lit_ = other.true_lit_;
        and_cache_ = other.and_cache_;
        xor_cache_ = other.xor_cache_;
        mux_cache_ = other.mux_cache_;
    }

    /** Assert a literal at the root level. */
    void assertLit(Lit l) { solver_.addClause(l); }

    /** Evaluate a word in the solver's current model. */
    Bits modelWord(const Word &w) const;

    size_t numGates() const { return and_cache_.size(); }

  private:
    struct PairHash
    {
        size_t
        operator()(const std::pair<int, int> &p) const
        {
            return std::hash<int64_t>{}(
                (static_cast<int64_t>(p.first) << 32) ^
                static_cast<uint32_t>(p.second));
        }
    };

    struct TripleHash
    {
        size_t
        operator()(const std::array<int, 3> &k) const
        {
            uint64_t h = 1469598103934665603ull;
            for (int v : k) {
                h ^= static_cast<uint32_t>(v);
                h *= 1099511628211ull;
            }
            return static_cast<size_t>(h);
        }
    };

    Solver &solver_;
    Lit true_lit_;
    std::unordered_map<std::pair<int, int>, Lit, PairHash> and_cache_;
    std::unordered_map<std::pair<int, int>, Lit, PairHash> xor_cache_;
    std::unordered_map<std::array<int, 3>, Lit, TripleHash> mux_cache_;
};

} // namespace r2u::sat

#endif // R2U_SAT_CNF_HH
