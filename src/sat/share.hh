/**
 * @file
 * Shared learnt-clause pool for portfolio solving.
 *
 * When the BMC engine races diversified solver configurations on one
 * query (--portfolio), each racer exports its low-LBD learnt clauses
 * here as it learns them and imports everybody else's at its restart
 * boundaries (Solver::setShare / SolverConfig::shareLbdMax). The pool
 * is append-only with a per-consumer cursor, so one mutex-protected
 * append/scan is all the synchronization there is: producers never
 * block each other on clause construction, and a consumer only copies
 * the entries that arrived since its previous collect().
 *
 * Capacity is bounded; once full, further publishes are counted as
 * dropped instead of growing without limit. Entries are never
 * reordered or removed, which keeps import order deterministic for a
 * fixed interleaving of publishes.
 */

#ifndef R2U_SAT_SHARE_HH
#define R2U_SAT_SHARE_HH

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "sat/solver.hh"

namespace r2u::sat
{

class ClausePool
{
  public:
    struct Entry
    {
        unsigned producer;
        uint32_t lbd;
        std::vector<Lit> lits;
    };

    /**
     * @param consumers  number of racers that will collect() — consumer
     *                   ids must be < consumers
     * @param capacity   maximum entries retained; publishes beyond this
     *                   are dropped (and counted)
     */
    explicit ClausePool(unsigned consumers, size_t capacity = 1u << 16);

    /**
     * Append a clause learnt by `producer`. Returns false if the pool
     * is at capacity (the clause is dropped, not an error).
     */
    bool publish(unsigned producer, uint32_t lbd,
                 const std::vector<Lit> &lits);

    /**
     * Copy every entry published by *other* producers since this
     * consumer's previous collect() into `out` (appended, in pool
     * order).
     */
    void collect(unsigned consumer, std::vector<Entry> &out);

    /** Total entries currently held. */
    size_t size() const;

    /** Publishes rejected because the pool was full. */
    size_t dropped() const;

  private:
    mutable std::mutex mu_;
    std::vector<Entry> entries_;
    std::vector<size_t> cursors_; // per consumer: next entry to read
    size_t capacity_;
    size_t dropped_ = 0;
};

} // namespace r2u::sat

#endif // R2U_SAT_SHARE_HH
