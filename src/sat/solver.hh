/**
 * @file
 * A CDCL SAT solver in the MiniSat lineage.
 *
 * This is the proof engine that stands in for the commercial property
 * verifier (JasperGold) in the paper's flow: the BMC layer (src/bmc)
 * bit-blasts netlist properties into CNF and asks this solver for a
 * model (a counterexample trace) or an UNSAT verdict (a proof at bound).
 *
 * Features: two-watched-literal propagation, VSIDS decision heuristic
 * with an indexed max-heap, phase saving, first-UIP conflict analysis
 * with local clause minimization, Luby restarts, learnt-clause database
 * reduction, and solving under assumptions (used for incremental BMC).
 *
 * A solve() can be bounded by a conflict budget, a propagation budget,
 * and a wall-clock deadline (checked periodically), and stopped
 * asynchronously from another thread via interrupt() or a shared
 * external flag — the machinery behind the BMC layer's per-query and
 * total timeouts. Every early exit returns Result::Unknown and records
 * why in stopReason().
 */

#ifndef R2U_SAT_SOLVER_HH
#define R2U_SAT_SOLVER_HH

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace r2u::sat
{

/** Variable index, 0-based. */
using Var = int;

/**
 * Literal: packed as 2*var + sign, sign bit 1 means negated.
 * Default-constructed literals are invalid (undef).
 */
struct Lit
{
    int x = -2;

    bool operator==(const Lit &o) const { return x == o.x; }
    bool operator!=(const Lit &o) const { return x != o.x; }
    bool operator<(const Lit &o) const { return x < o.x; }
};

inline Lit
mkLit(Var v, bool neg = false)
{
    return Lit{2 * v + (neg ? 1 : 0)};
}

inline Lit operator~(Lit l) { return Lit{l.x ^ 1}; }
inline bool sign(Lit l) { return l.x & 1; }
inline Var var(Lit l) { return l.x >> 1; }

constexpr Lit kLitUndef{-2};

/** Tri-state assignment value. */
enum class LBool : int8_t { False = -1, Undef = 0, True = 1 };

inline LBool
operator^(LBool v, bool neg)
{
    return neg ? static_cast<LBool>(-static_cast<int8_t>(v)) : v;
}

enum class Result { Sat, Unsat, Unknown };

/** Why a solve() gave up with Result::Unknown (None otherwise). */
enum class StopReason : uint8_t {
    None,              ///< ran to completion (Sat or Unsat)
    ConflictBudget,    ///< conflict budget exhausted
    PropagationBudget, ///< propagation budget exhausted
    Deadline,          ///< wall-clock deadline passed
    Interrupt,         ///< interrupt() or the external flag fired
};

const char *stopReasonName(StopReason reason);

/** Aggregate search statistics, exposed for benches and logging. */
struct SolverStats
{
    uint64_t conflicts = 0;
    uint64_t decisions = 0;
    uint64_t propagations = 0;
    uint64_t restarts = 0;
    uint64_t learntLiterals = 0;
    uint64_t removedClauses = 0;
};

class Solver
{
  public:
    Solver();

    /** Create a fresh variable and return its index. */
    Var newVar();

    int numVars() const { return static_cast<int>(assigns_.size()); }

    /**
     * Problem clauses submitted via addClause (learnt clauses are not
     * counted). Used by the BMC layer to report per-query CNF growth.
     */
    uint64_t numClauses() const { return added_clauses_; }

    /**
     * Add a clause (disjunction of literals). Returns false if the
     * solver became trivially UNSAT (empty clause / conflicting units).
     */
    bool addClause(std::vector<Lit> lits);

    bool addClause(Lit a) { return addClause(std::vector<Lit>{a}); }
    bool addClause(Lit a, Lit b) { return addClause({a, b}); }
    bool addClause(Lit a, Lit b, Lit c) { return addClause({a, b, c}); }

    /**
     * Solve under the given assumptions. Returns Sat, Unsat, or Unknown
     * if the conflict budget was exhausted.
     */
    Result solve(const std::vector<Lit> &assumptions = {});

    /** Model value of a variable after a Sat result. */
    bool modelValue(Var v) const;
    bool modelValue(Lit l) const { return modelValue(var(l)) ^ sign(l); }

    /**
     * After an Unsat result under assumptions, the subset of assumptions
     * used in the final conflict (analogous to MiniSat's conflict core).
     */
    const std::vector<Lit> &conflictCore() const { return conflict_core_; }

    /** Limit total conflicts for one solve() call; <0 means no limit. */
    void setConflictBudget(int64_t budget) { conflict_budget_ = budget; }

    /** Limit total propagations for one solve(); <0 means no limit. */
    void setPropagationBudget(int64_t budget)
    {
        propagation_budget_ = budget;
    }

    /**
     * Wall-clock deadline for one solve(), in seconds from the start
     * of the call; <0 disables. Checked periodically during search,
     * so a solve may overshoot by a small amount of work.
     */
    void setDeadline(double seconds) { deadline_seconds_ = seconds; }

    /**
     * Request an asynchronous stop of the current (or next) solve().
     * Safe to call from another thread; sticky until clearInterrupt().
     */
    void interrupt() { interrupt_.store(true, std::memory_order_relaxed); }

    void clearInterrupt()
    {
        interrupt_.store(false, std::memory_order_relaxed);
    }

    /**
     * Register a shared stop flag polled alongside the solver's own
     * interrupt bit — one flag can stop a whole fleet of solvers (the
     * BMC engine's total-timeout / drain cancellation). The pointee
     * must outlive the solver or be cleared with nullptr.
     */
    void setExternalInterrupt(const std::atomic<bool> *flag)
    {
        ext_interrupt_ = flag;
    }

    /** Why the last solve() returned Unknown (None if it completed). */
    StopReason stopReason() const { return stop_reason_; }

    const SolverStats &stats() const { return stats_; }

    bool okay() const { return ok_; }

  private:
    struct Clause
    {
        bool learnt = false;
        double activity = 0.0;
        std::vector<Lit> lits;
    };

    struct Watcher
    {
        int cref;
        Lit blocker;
    };

    // --- search core ---
    LBool value(Var v) const { return assigns_[v]; }
    LBool value(Lit l) const { return assigns_[var(l)] ^ sign(l); }

    void attachClause(int cref);
    void uncheckedEnqueue(Lit l, int reason);
    int propagate(); // returns conflicting clause ref or -1
    void analyze(int confl, std::vector<Lit> &out_learnt,
                 int &out_btlevel);
    void analyzeFinal(Lit p);
    bool litRedundant(Lit l, uint32_t abstract_levels);
    void cancelUntil(int level);
    Lit pickBranchLit();
    Result search(int64_t conflicts_before_restart);
    void reduceDB();

    // --- VSIDS heap ---
    void heapInsert(Var v);
    void heapDecrease(Var v); // activity increased -> sift up
    Var heapRemoveMax();
    bool heapEmpty() const { return heap_.empty(); }
    void siftUp(int i);
    void siftDown(int i);
    void varBumpActivity(Var v);
    void varDecayActivity() { var_inc_ /= var_decay_; }
    void claBumpActivity(Clause &c);

    static int64_t luby(int64_t x);

    /**
     * Poll every stop condition. The deadline clock is only read every
     * kStopCheckInterval calls (steady_clock::now() is too expensive
     * for every search iteration); the interrupt flags and budgets are
     * checked on every call.
     */
    StopReason stopCheck();

    // --- state ---
    bool ok_ = true;
    std::vector<Clause> clauses_;
    std::vector<int> learnts_; // indices into clauses_
    std::vector<std::vector<Watcher>> watches_; // indexed by Lit.x
    std::vector<LBool> assigns_;
    std::vector<bool> polarity_; // saved phase (true = last was false)
    std::vector<double> activity_;
    std::vector<int> heap_;     // binary max-heap of vars
    std::vector<int> heap_pos_; // var -> index in heap_, -1 if absent
    std::vector<Lit> trail_;
    std::vector<int> trail_lim_;
    std::vector<int> reason_; // var -> clause ref or -1
    std::vector<int> level_;  // var -> decision level
    size_t qhead_ = 0;

    std::vector<Lit> assumptions_;
    std::vector<Lit> conflict_core_;
    std::vector<LBool> model_;

    // analyze scratch
    std::vector<uint8_t> seen_;
    std::vector<Lit> analyze_stack_;
    std::vector<Lit> analyze_toclear_;

    double var_inc_ = 1.0;
    double var_decay_ = 0.95;
    double cla_inc_ = 1.0;
    double cla_decay_ = 0.999;
    double max_learnts_ = 0;

    int64_t conflict_budget_ = -1;
    int64_t conflicts_this_solve_ = 0;
    int64_t propagation_budget_ = -1;
    int64_t propagations_this_solve_ = 0;
    double deadline_seconds_ = -1.0;
    bool has_deadline_ = false;
    std::chrono::steady_clock::time_point deadline_point_;
    int stop_check_countdown_ = 0;
    std::atomic<bool> interrupt_{false};
    const std::atomic<bool> *ext_interrupt_ = nullptr;
    StopReason stop_reason_ = StopReason::None;
    uint64_t added_clauses_ = 0;

    SolverStats stats_;

    int decisionLevel() const
    {
        return static_cast<int>(trail_lim_.size());
    }
};

} // namespace r2u::sat

#endif // R2U_SAT_SOLVER_HH
