/**
 * @file
 * A CDCL SAT solver in the MiniSat/Glucose lineage.
 *
 * This is the proof engine that stands in for the commercial property
 * verifier (JasperGold) in the paper's flow: the BMC layer (src/bmc)
 * bit-blasts netlist properties into CNF and asks this solver for a
 * model (a counterexample trace) or an UNSAT verdict (a proof at bound).
 *
 * Features: two-watched-literal propagation, VSIDS decision heuristic
 * with an indexed max-heap, phase saving, first-UIP conflict analysis
 * with local clause minimization, Luby or Glucose (LBD-driven)
 * restarts, learnt-clause database reduction ranked by LBD/glue,
 * level-0 clause-database inprocessing between restarts, SatELite-style
 * CNF preprocessing (bounded variable elimination + subsumption, see
 * sat/simplify.hh) with full model reconstruction, and solving under
 * assumptions (used for incremental BMC).
 *
 * For the BMC engine's portfolio mode, diversified solver
 * configurations (SolverConfig: restart policy, polarity, random seed)
 * race on one query and exchange low-LBD learnt clauses through a
 * ClausePool (sat/share.hh): clauses are exported as they are learnt
 * and imported at restart boundaries, optionally guarded by a literal
 * so that clauses learnt under a query's activation assumption never
 * contaminate an incremental context's shared prefix.
 *
 * A solve() can be bounded by a conflict budget, a propagation budget,
 * and a wall-clock deadline (checked periodically), and stopped
 * asynchronously from another thread via interrupt() or a shared
 * external flag — the machinery behind the BMC layer's per-query and
 * total timeouts. Every early exit returns Result::Unknown and records
 * why in stopReason().
 */

#ifndef R2U_SAT_SOLVER_HH
#define R2U_SAT_SOLVER_HH

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

namespace r2u::sat
{

/** Variable index, 0-based. */
using Var = int;

/**
 * Literal: packed as 2*var + sign, sign bit 1 means negated.
 * Default-constructed literals are invalid (undef).
 */
struct Lit
{
    int x = -2;

    bool operator==(const Lit &o) const { return x == o.x; }
    bool operator!=(const Lit &o) const { return x != o.x; }
    bool operator<(const Lit &o) const { return x < o.x; }
};

inline Lit
mkLit(Var v, bool neg = false)
{
    return Lit{2 * v + (neg ? 1 : 0)};
}

inline Lit operator~(Lit l) { return Lit{l.x ^ 1}; }
inline bool sign(Lit l) { return l.x & 1; }
inline Var var(Lit l) { return l.x >> 1; }

constexpr Lit kLitUndef{-2};

/** Tri-state assignment value. */
enum class LBool : int8_t { False = -1, Undef = 0, True = 1 };

inline LBool
operator^(LBool v, bool neg)
{
    return neg ? static_cast<LBool>(-static_cast<int8_t>(v)) : v;
}

enum class Result { Sat, Unsat, Unknown };

/** Why a solve() gave up with Result::Unknown (None otherwise). */
enum class StopReason : uint8_t {
    None,              ///< ran to completion (Sat or Unsat)
    ConflictBudget,    ///< conflict budget exhausted
    PropagationBudget, ///< propagation budget exhausted
    Deadline,          ///< wall-clock deadline passed
    Interrupt,         ///< interrupt() or the external flag fired
};

const char *stopReasonName(StopReason reason);

/**
 * Per-solver search configuration. The default is the tuned
 * single-solver configuration; the BMC portfolio diversifies these
 * knobs across racers (restart policy, phase, random seed), and
 * --no-inprocess zeroes inprocessPeriod.
 */
struct SolverConfig
{
    enum class Restart : uint8_t {
        Luby,   ///< classic Luby sequence scaled by lubyUnit
        Glucose ///< dynamic: restart when recent LBDs run hot
    };
    enum class Polarity : uint8_t {
        Saved, ///< phase saving (default-false before first flip)
        False, ///< always decide false first
        True,  ///< always decide true first
        Rand   ///< random initial phase from `seed`, then saved
    };

    // Luby restarts with activity-ranked reduction are the robust
    // baseline (measured over interrupted-then-resumed pigeonhole
    // instances, LBD-ranked reduction inflates conflict counts by an
    // order of magnitude on such combinatorial cores); the Glucose
    // restart + LBD-reduction pairing stays available as a portfolio
    // diversification.
    Restart restart = Restart::Luby;
    /** Luby policy: conflicts per restart = luby(i) * lubyUnit. */
    int64_t lubyUnit = 100;
    /**
     * Glucose policy: restart once the sliding window of the last
     * glucoseWindow conflict LBDs averages more than glucoseMargin
     * times the all-time average.
     */
    unsigned glucoseWindow = 50;
    double glucoseMargin = 1.25;

    Polarity polarity = Polarity::Saved;
    /** Seed for the xorshift RNG behind Rand polarity / randomFreq. */
    uint64_t seed = 0;
    /** Fraction of decisions taken on a random variable (0 = off). */
    double randomFreq = 0.0;

    /** Learnt clauses with lbd <= glueLbd are never deleted. */
    uint32_t glueLbd = 2;
    /**
     * Rank reduceDB() victims by LBD (glue) with activity as the
     * tie-break; false restores the legacy activity-only ranking.
     *
     * LBD mode also switches the reduction *trigger* from the fixed
     * learnt-count cap to Glucose's growing conflict interval
     * (reduceFirst + reduceInc * reductions-so-far), which lets the
     * database expand as the proof deepens instead of churning every
     * few hundred conflicts at the initial cap.
     */
    bool lbdReduce = false;
    /** Conflicts before the first LBD-mode reduction. */
    int64_t reduceFirst = 2000;
    /** Extra conflicts added to the interval per reduction. */
    int64_t reduceInc = 300;

    /**
     * Run simplifyDB() — remove level-0-satisfied clauses and strip
     * level-0-false literals, rebuilding the watch lists — every this
     * many restarts (0 disables inprocessing).
     */
    unsigned inprocessPeriod = 8;

    /**
     * Export learnt clauses with lbd <= shareLbdMax to the attached
     * ClausePool (0 disables export; sharing also needs setShare()).
     */
    uint32_t shareLbdMax = 4;

    /** Test seam: fixed learnt-clause cap (0 = automatic sizing). */
    double maxLearntsOverride = 0.0;

    double varDecay = 0.95;
    double claDecay = 0.999;
};

class ClausePool;
class Simplifier;
struct SimplifyOptions;

/** Aggregate search statistics, exposed for benches and logging. */
struct SolverStats
{
    uint64_t conflicts = 0;
    uint64_t decisions = 0;
    uint64_t propagations = 0;
    uint64_t restarts = 0;
    uint64_t learntLiterals = 0;
    uint64_t removedClauses = 0;

    /** Sum of learnt-clause LBDs (mean glue = lbdSum / conflicts). */
    uint64_t lbdSum = 0;
    /** Learnt clauses with lbd <= glueLbd (kept forever). */
    uint64_t glueClauses = 0;
    uint64_t randomDecisions = 0;

    // --- inprocessing (simplifyDB) ---
    uint64_t simplifyRuns = 0;
    uint64_t simplifyClausesRemoved = 0;
    uint64_t simplifyLitsRemoved = 0;

    // --- preprocessing (sat/simplify.hh) ---
    uint64_t preprocessRuns = 0;
    uint64_t preprocessVarsEliminated = 0;
    uint64_t preprocessClausesRemoved = 0;
    double preprocessSeconds = 0.0;

    // --- portfolio clause sharing ---
    uint64_t sharedExported = 0;
    uint64_t sharedImported = 0;
    uint64_t sharedImportedUnits = 0;
};

class Solver
{
  public:
    Solver();
    ~Solver();

    Solver(const Solver &) = delete;
    Solver &operator=(const Solver &) = delete;

    /**
     * Replace the search configuration. Must not be called mid-solve;
     * typically set once right after construction.
     */
    void setConfig(const SolverConfig &config) { cfg_ = config; }
    const SolverConfig &config() const { return cfg_; }

    /** Create a fresh variable and return its index. */
    Var newVar();

    int numVars() const { return static_cast<int>(assigns_.size()); }

    /**
     * Problem clauses submitted via addClause (learnt clauses are not
     * counted). Used by the BMC layer to report per-query CNF growth.
     */
    uint64_t numClauses() const { return added_clauses_; }

    /**
     * Add a clause (disjunction of literals). Returns false if the
     * solver became trivially UNSAT (empty clause / conflicting units).
     */
    bool addClause(std::vector<Lit> lits);

    bool addClause(Lit a) { return addClause(std::vector<Lit>{a}); }
    bool addClause(Lit a, Lit b) { return addClause({a, b}); }
    bool addClause(Lit a, Lit b, Lit c) { return addClause({a, b, c}); }

    /**
     * Solve under the given assumptions. Returns Sat, Unsat, or Unknown
     * if the conflict budget was exhausted.
     */
    Result solve(const std::vector<Lit> &assumptions = {});

    /** Model value of a variable after a Sat result. */
    bool modelValue(Var v) const;
    bool modelValue(Lit l) const { return modelValue(var(l)) ^ sign(l); }

    /**
     * The complete model after a Sat result (empty otherwise). Every
     * variable has a concrete value, including variables the
     * preprocessor eliminated (reconstructed before solve() returns).
     */
    const std::vector<LBool> &model() const { return model_; }

    /**
     * Install a full model produced by another solver over the same
     * variable space (a portfolio racer that won with Sat). The
     * vector must cover numVars() variables.
     */
    void adoptModel(std::vector<LBool> model);

    /**
     * After an Unsat result under assumptions, the subset of assumptions
     * used in the final conflict (analogous to MiniSat's conflict core).
     */
    const std::vector<Lit> &conflictCore() const { return conflict_core_; }

    /** Limit total conflicts for one solve() call; <0 means no limit. */
    void setConflictBudget(int64_t budget) { conflict_budget_ = budget; }

    /** Limit total propagations for one solve(); <0 means no limit. */
    void setPropagationBudget(int64_t budget)
    {
        propagation_budget_ = budget;
    }

    /**
     * Wall-clock deadline for one solve(), in seconds from the start
     * of the call; <0 disables. Checked periodically during search,
     * so a solve may overshoot by a small amount of work.
     */
    void setDeadline(double seconds) { deadline_seconds_ = seconds; }

    /**
     * Request an asynchronous stop of the current (or next) solve().
     * Safe to call from another thread; sticky until clearInterrupt().
     */
    void interrupt() { interrupt_.store(true, std::memory_order_relaxed); }

    void clearInterrupt()
    {
        interrupt_.store(false, std::memory_order_relaxed);
    }

    /**
     * Register a shared stop flag polled alongside the solver's own
     * interrupt bit — one flag can stop a whole fleet of solvers (the
     * BMC engine's total-timeout / drain cancellation). The pointee
     * must outlive the solver or be cleared with nullptr.
     */
    void setExternalInterrupt(const std::atomic<bool> *flag)
    {
        ext_interrupt_ = flag;
    }

    /**
     * Attach this solver to a portfolio clause pool as producer
     * `self`. Learnt clauses with lbd <= config().shareLbdMax are
     * exported; other producers' clauses are imported at restart
     * boundaries. When `import_guard` is a real literal, every
     * imported clause c is added as (import_guard OR c) — the BMC
     * engine passes ~activation so that clauses a racer learnt under
     * the query's activation assumption stay sound in the incremental
     * context once the query retires. nullptr pool detaches.
     */
    void setShare(ClausePool *pool, unsigned self,
                  Lit import_guard = kLitUndef);

    /**
     * SatELite-style preprocessing of the current clause database at
     * level 0: unit propagation, subsumption + self-subsuming
     * resolution, pure-literal and bounded variable elimination.
     * Learnt clauses are dropped. Eliminated variables become
     * undecidable but their model values are reconstructed on every
     * Sat answer, so modelValue() stays complete.
     *
     * Only sound while the clause database is final: addClause() of a
     * clause mentioning an eliminated variable afterwards is a checked
     * error, and `frozen` lists variables that must survive (e.g.
     * future assumption literals). Returns false if preprocessing
     * proved the formula UNSAT.
     */
    bool preprocess(const SimplifyOptions &options,
                    const std::vector<Var> &frozen = {});

    bool isEliminated(Var v) const
    {
        return v < static_cast<int>(eliminated_.size()) &&
               eliminated_[v] != 0;
    }

    /**
     * Copy the clause database — level-0 facts, problem clauses, and
     * (optionally) learnt clauses — into `out` as one clause per
     * entry. The BMC portfolio uses this to seed racer solvers over
     * the identical variable numbering.
     */
    void exportCnf(std::vector<std::vector<Lit>> &out,
                   bool include_learnts = true) const;

    /**
     * Become a copy of `other`: clause database (learnts included),
     * variable numbering, watch lists, level-0 trail, saved phases and
     * activities — everything but the transient per-solve state
     * (budgets, deadline, interrupt wiring, shared pool, statistics).
     * Orders of magnitude cheaper than re-adding the clauses one by
     * one because the watcher and heap structures are copied instead
     * of rebuilt. `other` must be idle at decision level 0 (between
     * solve() calls). The BMC engine uses this to warm-start sibling
     * incremental contexts from one bit-blasted transition relation.
     */
    void cloneFrom(const Solver &other);

    /** Why the last solve() returned Unknown (None if it completed). */
    StopReason stopReason() const { return stop_reason_; }

    const SolverStats &stats() const { return stats_; }

    bool okay() const { return ok_; }

  private:
    // --- clause arena ---
    // Every clause lives in one flat word buffer (arena_); a clause
    // reference (cref) is the word offset of its header:
    //   word 0   size << 3 | locked << 2 | deleted << 1 | learnt
    //   word 1   lbd
    //   word 2   activity (float, bit-punned)
    //   word 3+  literals
    // Keeping header and literals contiguous — instead of one heap
    // vector per clause — is what makes propagate() cache-friendly
    // (one line fetch for short clauses), and lets cloneFrom() copy
    // the whole database as a single flat memcpy. Deleted clauses are
    // tombstoned in place and reclaimed when simplifyDB() compacts
    // the arena (it rebuilds all watch lists anyway, so remapping
    // crefs there is free).
    static constexpr uint32_t kClauseHeader = 3;
    static constexpr uint32_t kFlagLearnt = 1;
    static constexpr uint32_t kFlagDeleted = 2;
    static constexpr uint32_t kFlagLocked = 4;

    /** Unowned view of one arena clause; invalidated by allocClause. */
    struct Clause
    {
        uint32_t *p;

        uint32_t size() const { return p[0] >> 3; }
        bool learnt() const { return (p[0] & kFlagLearnt) != 0; }
        bool deleted() const { return (p[0] & kFlagDeleted) != 0; }
        void markDeleted() { p[0] |= kFlagDeleted; }
        bool locked() const { return (p[0] & kFlagLocked) != 0; }
        void setLocked(bool on)
        {
            p[0] = on ? (p[0] | kFlagLocked) : (p[0] & ~kFlagLocked);
        }
        /** Drop trailing literals (space reclaimed at compaction). */
        void shrink(uint32_t n) { p[0] = (n << 3) | (p[0] & 7u); }
        uint32_t lbd() const { return p[1]; }
        void setLbd(uint32_t l) { p[1] = l; }
        float activity() const
        {
            float a;
            std::memcpy(&a, &p[2], sizeof a);
            return a;
        }
        void setActivity(float a) { std::memcpy(&p[2], &a, sizeof a); }
        Lit *lits() { return reinterpret_cast<Lit *>(p + kClauseHeader); }
        const Lit *lits() const
        {
            return reinterpret_cast<const Lit *>(p + kClauseHeader);
        }
        Lit &operator[](uint32_t i) { return lits()[i]; }
        Lit operator[](uint32_t i) const { return lits()[i]; }
        Lit *begin() { return lits(); }
        Lit *end() { return lits() + size(); }
        const Lit *begin() const { return lits(); }
        const Lit *end() const { return lits() + size(); }
    };

    Clause clause(int cref) const
    {
        return Clause{const_cast<uint32_t *>(arena_.data()) + cref};
    }

    int allocClause(const Lit *lits, uint32_t size, bool learnt,
                    uint32_t lbd, float activity);

    struct Watcher
    {
        int cref;
        Lit blocker;
    };

    // --- search core ---
    LBool value(Var v) const { return assigns_[v]; }
    LBool value(Lit l) const { return assigns_[var(l)] ^ sign(l); }

    void attachClause(int cref);
    void detachClause(int cref);
    void uncheckedEnqueue(Lit l, int reason);
    int propagate(); // returns conflicting clause ref or -1
    void analyze(int confl, std::vector<Lit> &out_learnt,
                 int &out_btlevel, uint32_t &out_lbd);
    void analyzeFinal(Lit p);
    bool litRedundant(Lit l, uint32_t abstract_levels);
    void cancelUntil(int level);
    Lit pickBranchLit();
    Result search(int64_t conflicts_before_restart);
    bool restartDue(int64_t conflicts_here,
                    int64_t conflicts_before_restart) const;
    void reduceDB();
    uint32_t computeLbd(const Lit *lits, uint32_t n);
    uint32_t computeLbd(const std::vector<Lit> &lits)
    {
        return computeLbd(lits.data(),
                          static_cast<uint32_t>(lits.size()));
    }
    void simplifyDB();
    /** Compact the arena, dropping tombstones (level 0 only; callers
     *  must rebuild watch lists — crefs are remapped). */
    void garbageCollect();
    /** Pool import at a restart point; false on level-0 conflict. */
    bool exchangeClauses();
    bool importClause(const std::vector<Lit> &lits, uint32_t lbd);
    uint64_t nextRandom();

    // --- VSIDS heap ---
    void heapInsert(Var v);
    void heapDecrease(Var v); // activity increased -> sift up
    Var heapRemoveMax();
    bool heapEmpty() const { return heap_.empty(); }
    void siftUp(int i);
    void siftDown(int i);
    void varBumpActivity(Var v);
    void varDecayActivity() { var_inc_ /= cfg_.varDecay; }
    void claBumpActivity(Clause c);

    static int64_t luby(int64_t x);

    /**
     * Poll every stop condition. The deadline clock is only read every
     * kStopCheckInterval calls (steady_clock::now() is too expensive
     * for every search iteration); the interrupt flags and budgets are
     * checked on every call.
     */
    StopReason stopCheck();

    // --- state ---
    bool ok_ = true;
    SolverConfig cfg_;
    std::vector<uint32_t> arena_; // flat clause storage (see Clause)
    std::vector<int> crefs_;      // all clauses, allocation order
    std::vector<int> learnts_;    // learnt-clause crefs
    std::vector<std::vector<Watcher>> watches_; // indexed by Lit.x
    std::vector<LBool> assigns_;
    std::vector<bool> polarity_; // saved phase (true = last was false)
    std::vector<double> activity_;
    std::vector<int> heap_;     // binary max-heap of vars
    std::vector<int> heap_pos_; // var -> index in heap_, -1 if absent
    std::vector<Lit> trail_;
    std::vector<int> trail_lim_;
    std::vector<int> reason_; // var -> clause ref or -1
    std::vector<int> level_;  // var -> decision level
    std::vector<uint8_t> eliminated_; // var eliminated by preprocess()
    size_t qhead_ = 0;

    std::vector<Lit> assumptions_;
    std::vector<Lit> conflict_core_;
    std::vector<LBool> model_;

    // analyze scratch
    std::vector<uint8_t> seen_;
    std::vector<Lit> analyze_stack_;
    std::vector<Lit> analyze_toclear_;
    std::vector<uint64_t> lbd_stamp_; // per-level stamp for computeLbd
    uint64_t lbd_stamp_gen_ = 0;

    // Glucose restart state: sliding window + all-time LBD average.
    std::vector<uint32_t> lbd_window_;
    size_t lbd_window_next_ = 0;
    uint64_t lbd_window_filled_ = 0;
    uint64_t lbd_window_sum_ = 0;
    uint64_t lbd_total_sum_ = 0;
    uint64_t lbd_total_count_ = 0;

    uint64_t rng_state_ = 0;

    double var_inc_ = 1.0;
    double cla_inc_ = 1.0;
    double max_learnts_ = 0;
    // Glucose-style reduction schedule (LBD mode), reset per solve().
    int64_t reduces_this_solve_ = 0;
    int64_t conflicts_at_last_reduce_ = 0;

    int64_t conflict_budget_ = -1;
    int64_t conflicts_this_solve_ = 0;
    int64_t propagation_budget_ = -1;
    int64_t propagations_this_solve_ = 0;
    double deadline_seconds_ = -1.0;
    bool has_deadline_ = false;
    std::chrono::steady_clock::time_point deadline_point_;
    int stop_check_countdown_ = 0;
    std::atomic<bool> interrupt_{false};
    const std::atomic<bool> *ext_interrupt_ = nullptr;
    StopReason stop_reason_ = StopReason::None;
    uint64_t added_clauses_ = 0;
    uint64_t restarts_since_simplify_ = 0;
    /** Level-0 trail size when simplifyDB() last ran (solve-entry
     *  trigger: new root facts mean satisfied clauses to collect). */
    size_t trail_at_last_simplify_ = 0;

    ClausePool *share_pool_ = nullptr;
    unsigned share_self_ = 0;
    Lit share_guard_ = kLitUndef;

    /** Reconstruction stack for preprocess()-eliminated variables. */
    std::unique_ptr<Simplifier> reconstruction_;

    SolverStats stats_;

    int decisionLevel() const
    {
        return static_cast<int>(trail_lim_.size());
    }
};

} // namespace r2u::sat

#endif // R2U_SAT_SOLVER_HH
