/**
 * @file
 * SatELite-style CNF preprocessing with full model reconstruction.
 *
 * The BMC layer's sliced queries still carry tens of thousands of
 * variables whose definitions are pure plumbing (gate outputs feeding
 * exactly one consumer, constant cones the slicer kept conservatively,
 * ...). Before handing such a CNF to the search loop, the Simplifier
 * shrinks it with the classic preprocessing portfolio:
 *
 *  - unit propagation (clauses satisfied at root are dropped, false
 *    literals stripped),
 *  - backward subsumption and self-subsuming resolution
 *    (strengthening), accelerated by 64-bit variable signatures and
 *    occurrence lists,
 *  - bounded variable elimination (BVE): resolve a variable away when
 *    the non-tautological resolvents do not outnumber the clauses they
 *    replace; pure literals fall out as the zero-resolvent case.
 *
 * Elimination loses models, and this repo's verification flow consumes
 * complete models — counterexample replay through the reference
 * simulator and `--validate` read every materialized wire — so every
 * elimination pushes reconstruction records (the MiniSat elimclauses
 * scheme): the *smaller* occurrence side's clauses, pivot literal
 * first, followed by a unit record of the opposite pivot polarity.
 * extendModel() walks the records in reverse push order — the unit
 * sets the default that satisfies the larger (unstored) side, then any
 * stored clause whose other literals are all false flips the pivot —
 * yielding an assignment of the *original* formula from a model of the
 * simplified one.
 *
 * Soundness note for incremental use: preprocessing assumes the clause
 * database is final. The BMC engine therefore only preprocesses fresh
 * per-query (portfolio racer) solvers, never the long-lived
 * incremental contexts that keep growing clauses over existing
 * variables. Variables that must survive (future assumption literals
 * such as query activation guards) are frozen.
 */

#ifndef R2U_SAT_SIMPLIFY_HH
#define R2U_SAT_SIMPLIFY_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sat/solver.hh"

namespace r2u::sat
{

/** Effort bounds for one Simplifier::run(). */
struct SimplifyOptions
{
    bool subsume = true; ///< backward subsumption + strengthening
    bool varElim = true; ///< bounded variable elimination

    /** Skip BVE of variables occurring in more clauses than this. */
    unsigned maxOccurrences = 30;
    /** Abort a variable's BVE if some resolvent grows longer. */
    unsigned maxResolventSize = 24;
    /** Resolvents may exceed the replaced clause count by this much. */
    unsigned maxGrowth = 0;
    /** Simplification rounds (propagate / subsume / eliminate). */
    unsigned maxRounds = 3;
    /** Skip backward subsumption through occurrence lists longer. */
    size_t subsumeOccLimit = 1000;
};

struct SimplifyStats
{
    uint64_t unitsPropagated = 0;
    uint64_t pureLiterals = 0;
    uint64_t varsEliminated = 0; ///< includes pure literals
    uint64_t clausesSubsumed = 0;
    uint64_t litsStrengthened = 0;
    uint64_t resolventsAdded = 0;
    /** Clauses removed for any reason (satisfied/subsumed/resolved). */
    uint64_t clausesRemoved = 0;
};

class Simplifier
{
  public:
    /**
     * One model-reconstruction record. clause[0] is the pivot literal;
     * a record with only the pivot is the default-polarity unit.
     */
    struct ElimRecord
    {
        std::vector<Lit> clause;
    };

    /** Empty record store: only absorb()/records()/extendModel(). */
    Simplifier();

    Simplifier(int num_vars, const SimplifyOptions &opts);

    /** Protect a variable from elimination (assumption literals). */
    void freeze(Var v);

    /**
     * Add an input clause. May be called only before run(). Clauses
     * are deduplicated per-clause; tautologies are dropped.
     */
    void addClause(std::vector<Lit> lits);

    /** Run simplification to a fixpoint or the configured effort
     *  bounds. Returns false iff the formula was proved UNSAT. */
    bool run();

    /**
     * The simplified CNF: unit facts first, then the surviving
     * clauses, in deterministic order.
     */
    std::vector<std::vector<Lit>> result() const;

    bool isEliminated(Var v) const
    {
        return v >= 0 && v < static_cast<Var>(eliminated_.size()) &&
               eliminated_[static_cast<size_t>(v)] != 0;
    }

    const SimplifyStats &stats() const { return stats_; }

    const std::vector<ElimRecord> &records() const { return records_; }

    std::vector<ElimRecord> takeRecords()
    {
        return std::move(records_);
    }

    /** Append reconstruction records (from a later run over the
     *  already-simplified CNF; reverse-order extension stays valid). */
    void absorb(std::vector<ElimRecord> recs);

    /**
     * Complete `model` (indexed by Var) over eliminated variables.
     * Walks `records` in reverse push order; each record whose
     * non-pivot literals are all false under the evolving model sets
     * its pivot to satisfy the record. The result satisfies every
     * clause of the original, pre-elimination formula.
     */
    static void extendModel(std::vector<LBool> &model,
                            const std::vector<ElimRecord> &records);

  private:
    bool enqueueUnit(Lit l);
    bool addClauseInternal(std::vector<Lit> lits);
    void removeClause(int idx);
    bool strengthenClause(int idx, Lit l);
    bool propagateUnits();
    bool subsumeAll();
    bool eliminateVars();
    bool eliminateVar(Var v);
    static uint64_t signature(const std::vector<Lit> &lits);
    /**
     * Does `a` subsume `b` (return -1), almost-subsume it modulo one
     * literal negated in `b` (return that literal's .x in b, >= 0 —
     * self-subsuming resolution strengthens `b` by dropping it), or
     * neither (return -2)? Both clauses must be sorted.
     */
    static int subsumes(const std::vector<Lit> &a,
                        const std::vector<Lit> &b);
    void pushToQueue(int idx);
    /** Live clause indices containing l, compacting occ_[l.x]. */
    std::vector<int> occurrences(Lit l);

    SimplifyOptions opts_;
    int num_vars_ = 0;
    bool ok_ = true;
    bool ran_ = false;

    std::vector<std::vector<Lit>> clauses_; // empty = deleted
    std::vector<uint64_t> sigs_;
    std::vector<std::vector<int>> occ_; // by Lit.x; lazily compacted
    std::vector<LBool> assigns_;
    std::vector<Lit> units_; // assignment order
    size_t qhead_ = 0;
    std::vector<uint8_t> frozen_;
    std::vector<uint8_t> eliminated_;
    std::vector<int> queue_; // subsumption worklist
    std::vector<uint8_t> in_queue_;

    std::vector<ElimRecord> records_;
    SimplifyStats stats_;
};

} // namespace r2u::sat

#endif // R2U_SAT_SIMPLIFY_HH
