#include "sat/share.hh"

#include "common/logging.hh"

namespace r2u::sat
{

ClausePool::ClausePool(unsigned consumers, size_t capacity)
    : cursors_(consumers, 0), capacity_(capacity)
{
    entries_.reserve(std::min<size_t>(capacity, 1024));
}

bool
ClausePool::publish(unsigned producer, uint32_t lbd,
                    const std::vector<Lit> &lits)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (entries_.size() >= capacity_) {
        dropped_++;
        return false;
    }
    entries_.push_back(Entry{producer, lbd, lits});
    return true;
}

void
ClausePool::collect(unsigned consumer, std::vector<Entry> &out)
{
    std::lock_guard<std::mutex> lock(mu_);
    R2U_ASSERT(consumer < cursors_.size(), "unknown pool consumer %u",
               consumer);
    for (size_t i = cursors_[consumer]; i < entries_.size(); i++)
        if (entries_[i].producer != consumer)
            out.push_back(entries_[i]);
    cursors_[consumer] = entries_.size();
}

size_t
ClausePool::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
}

size_t
ClausePool::dropped() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return dropped_;
}

} // namespace r2u::sat
