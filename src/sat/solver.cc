#include "sat/solver.hh"

#include <algorithm>

#include "common/logging.hh"

namespace r2u::sat
{

const char *
stopReasonName(StopReason reason)
{
    switch (reason) {
      case StopReason::None: return "none";
      case StopReason::ConflictBudget: return "conflict-budget";
      case StopReason::PropagationBudget: return "propagation-budget";
      case StopReason::Deadline: return "deadline";
      case StopReason::Interrupt: return "interrupt";
    }
    return "?";
}

Solver::Solver()
{
    watches_.clear();
}

Var
Solver::newVar()
{
    Var v = numVars();
    assigns_.push_back(LBool::Undef);
    polarity_.push_back(true); // default phase: assign false first
    activity_.push_back(0.0);
    heap_pos_.push_back(-1);
    reason_.push_back(-1);
    level_.push_back(0);
    seen_.push_back(0);
    watches_.emplace_back();
    watches_.emplace_back();
    heapInsert(v);
    return v;
}

bool
Solver::addClause(std::vector<Lit> lits)
{
    if (!ok_)
        return false;
    R2U_ASSERT(decisionLevel() == 0, "addClause above root level");
    added_clauses_++;

    // Sort, dedup, drop false literals, detect tautologies/satisfied.
    std::sort(lits.begin(), lits.end());
    std::vector<Lit> out;
    Lit prev = kLitUndef;
    for (Lit l : lits) {
        R2U_ASSERT(var(l) >= 0 && var(l) < numVars(), "bad literal");
        if (value(l) == LBool::True || l == ~prev)
            return true; // satisfied or tautology
        if (value(l) != LBool::False && l != prev) {
            out.push_back(l);
            prev = l;
        }
    }

    if (out.empty()) {
        ok_ = false;
        return false;
    }
    if (out.size() == 1) {
        uncheckedEnqueue(out[0], -1);
        ok_ = (propagate() == -1);
        return ok_;
    }

    int cref = static_cast<int>(clauses_.size());
    clauses_.push_back(Clause{false, 0.0, std::move(out)});
    attachClause(cref);
    return true;
}

void
Solver::attachClause(int cref)
{
    const Clause &c = clauses_[cref];
    R2U_ASSERT(c.lits.size() >= 2, "attach of short clause");
    watches_[(~c.lits[0]).x].push_back(Watcher{cref, c.lits[1]});
    watches_[(~c.lits[1]).x].push_back(Watcher{cref, c.lits[0]});
}

void
Solver::uncheckedEnqueue(Lit l, int reason)
{
    R2U_ASSERT(value(l) == LBool::Undef, "enqueue of assigned literal");
    assigns_[var(l)] = sign(l) ? LBool::False : LBool::True;
    polarity_[var(l)] = sign(l);
    reason_[var(l)] = reason;
    level_[var(l)] = decisionLevel();
    trail_.push_back(l);
}

int
Solver::propagate()
{
    int confl = -1;
    while (qhead_ < trail_.size()) {
        Lit p = trail_[qhead_++];
        stats_.propagations++;
        propagations_this_solve_++;
        std::vector<Watcher> &ws = watches_[p.x];
        size_t i = 0, j = 0;
        while (i < ws.size()) {
            Watcher w = ws[i];
            if (value(w.blocker) == LBool::True) {
                ws[j++] = ws[i++];
                continue;
            }
            Clause &c = clauses_[w.cref];
            Lit false_lit = ~p;
            if (c.lits[0] == false_lit)
                std::swap(c.lits[0], c.lits[1]);
            i++;

            Lit first = c.lits[0];
            if (first != w.blocker && value(first) == LBool::True) {
                ws[j++] = Watcher{w.cref, first};
                continue;
            }

            // Look for a new watch.
            bool found = false;
            for (size_t k = 2; k < c.lits.size(); k++) {
                if (value(c.lits[k]) != LBool::False) {
                    std::swap(c.lits[1], c.lits[k]);
                    watches_[(~c.lits[1]).x].push_back(
                        Watcher{w.cref, first});
                    found = true;
                    break;
                }
            }
            if (found)
                continue;

            // Unit or conflicting.
            ws[j++] = Watcher{w.cref, first};
            if (value(first) == LBool::False) {
                confl = w.cref;
                qhead_ = trail_.size();
                while (i < ws.size())
                    ws[j++] = ws[i++];
            } else {
                uncheckedEnqueue(first, w.cref);
            }
        }
        ws.resize(j);
        if (confl != -1)
            break;
    }
    return confl;
}

void
Solver::varBumpActivity(Var v)
{
    activity_[v] += var_inc_;
    if (activity_[v] > 1e100) {
        for (auto &a : activity_)
            a *= 1e-100;
        var_inc_ *= 1e-100;
    }
    if (heap_pos_[v] >= 0)
        siftUp(heap_pos_[v]);
}

void
Solver::claBumpActivity(Clause &c)
{
    c.activity += cla_inc_;
    if (c.activity > 1e20) {
        for (int idx : learnts_)
            clauses_[idx].activity *= 1e-20;
        cla_inc_ *= 1e-20;
    }
}

void
Solver::analyze(int confl, std::vector<Lit> &out_learnt, int &out_btlevel)
{
    int pathC = 0;
    Lit p = kLitUndef;
    out_learnt.clear();
    out_learnt.push_back(kLitUndef); // slot for the asserting literal
    int index = static_cast<int>(trail_.size()) - 1;

    do {
        R2U_ASSERT(confl != -1, "no reason in analyze");
        Clause &c = clauses_[confl];
        if (c.learnt)
            claBumpActivity(c);
        for (size_t j = (p == kLitUndef) ? 0 : 1; j < c.lits.size(); j++) {
            Lit q = c.lits[j];
            if (!seen_[var(q)] && level_[var(q)] > 0) {
                varBumpActivity(var(q));
                seen_[var(q)] = 1;
                if (level_[var(q)] >= decisionLevel())
                    pathC++;
                else
                    out_learnt.push_back(q);
            }
        }
        while (!seen_[var(trail_[index--])]) {
        }
        p = trail_[index + 1];
        confl = reason_[var(p)];
        seen_[var(p)] = 0;
        pathC--;
    } while (pathC > 0);
    out_learnt[0] = ~p;

    // Conflict-clause minimization (deep).
    analyze_toclear_ = out_learnt;
    uint32_t abstract_levels = 0;
    for (size_t i = 1; i < out_learnt.size(); i++)
        abstract_levels |= 1u << (level_[var(out_learnt[i])] & 31);
    size_t j = 1;
    for (size_t i = 1; i < out_learnt.size(); i++) {
        Lit l = out_learnt[i];
        if (reason_[var(l)] == -1 || !litRedundant(l, abstract_levels))
            out_learnt[j++] = l;
    }
    out_learnt.resize(j);
    stats_.learntLiterals += out_learnt.size();

    // Find the backtrack level (second-highest level in the clause).
    if (out_learnt.size() == 1) {
        out_btlevel = 0;
    } else {
        size_t max_i = 1;
        for (size_t i = 2; i < out_learnt.size(); i++)
            if (level_[var(out_learnt[i])] >
                level_[var(out_learnt[max_i])])
                max_i = i;
        std::swap(out_learnt[1], out_learnt[max_i]);
        out_btlevel = level_[var(out_learnt[1])];
    }

    for (Lit l : analyze_toclear_)
        seen_[var(l)] = 0;
    analyze_toclear_.clear();
}

bool
Solver::litRedundant(Lit p, uint32_t abstract_levels)
{
    analyze_stack_.clear();
    analyze_stack_.push_back(p);
    size_t top = analyze_toclear_.size();
    while (!analyze_stack_.empty()) {
        Lit q = analyze_stack_.back();
        analyze_stack_.pop_back();
        R2U_ASSERT(reason_[var(q)] != -1, "decision in litRedundant");
        const Clause &c = clauses_[reason_[var(q)]];
        for (size_t i = 1; i < c.lits.size(); i++) {
            Lit l = c.lits[i];
            if (!seen_[var(l)] && level_[var(l)] > 0) {
                uint32_t abst = 1u << (level_[var(l)] & 31);
                if (reason_[var(l)] != -1 &&
                    (abst & abstract_levels) != 0) {
                    seen_[var(l)] = 1;
                    analyze_stack_.push_back(l);
                    analyze_toclear_.push_back(l);
                } else {
                    for (size_t k = top; k < analyze_toclear_.size(); k++)
                        seen_[var(analyze_toclear_[k])] = 0;
                    analyze_toclear_.resize(top);
                    return false;
                }
            }
        }
    }
    return true;
}

void
Solver::analyzeFinal(Lit p)
{
    conflict_core_.clear();
    conflict_core_.push_back(~p);
    if (decisionLevel() == 0)
        return;
    seen_[var(p)] = 1;
    for (int i = static_cast<int>(trail_.size()) - 1;
         i >= trail_lim_[0]; i--) {
        Var x = var(trail_[i]);
        if (!seen_[x])
            continue;
        if (reason_[x] == -1) {
            R2U_ASSERT(level_[x] > 0, "root decision in analyzeFinal");
            conflict_core_.push_back(~trail_[i]);
        } else {
            const Clause &c = clauses_[reason_[x]];
            for (size_t j = 1; j < c.lits.size(); j++)
                if (level_[var(c.lits[j])] > 0)
                    seen_[var(c.lits[j])] = 1;
        }
        seen_[x] = 0;
    }
    seen_[var(p)] = 0;
}

void
Solver::cancelUntil(int level)
{
    if (decisionLevel() <= level)
        return;
    for (int i = static_cast<int>(trail_.size()) - 1;
         i >= trail_lim_[level]; i--) {
        Var x = var(trail_[i]);
        assigns_[x] = LBool::Undef;
        if (heap_pos_[x] < 0)
            heapInsert(x);
    }
    qhead_ = static_cast<size_t>(trail_lim_[level]);
    trail_.resize(static_cast<size_t>(trail_lim_[level]));
    trail_lim_.resize(static_cast<size_t>(level));
}

// --- indexed binary max-heap on activity ---

void
Solver::heapInsert(Var v)
{
    heap_pos_[v] = static_cast<int>(heap_.size());
    heap_.push_back(v);
    siftUp(heap_pos_[v]);
}

void
Solver::siftUp(int i)
{
    Var v = heap_[i];
    while (i > 0) {
        int parent = (i - 1) / 2;
        if (activity_[heap_[parent]] >= activity_[v])
            break;
        heap_[i] = heap_[parent];
        heap_pos_[heap_[i]] = i;
        i = parent;
    }
    heap_[i] = v;
    heap_pos_[v] = i;
}

void
Solver::siftDown(int i)
{
    Var v = heap_[i];
    int n = static_cast<int>(heap_.size());
    while (true) {
        int child = 2 * i + 1;
        if (child >= n)
            break;
        if (child + 1 < n &&
            activity_[heap_[child + 1]] > activity_[heap_[child]])
            child++;
        if (activity_[heap_[child]] <= activity_[v])
            break;
        heap_[i] = heap_[child];
        heap_pos_[heap_[i]] = i;
        i = child;
    }
    heap_[i] = v;
    heap_pos_[v] = i;
}

Var
Solver::heapRemoveMax()
{
    Var v = heap_[0];
    heap_pos_[v] = -1;
    Var last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
        heap_[0] = last;
        heap_pos_[last] = 0;
        siftDown(0);
    }
    return v;
}

Lit
Solver::pickBranchLit()
{
    while (!heapEmpty()) {
        Var v = heapRemoveMax();
        if (value(v) == LBool::Undef)
            return mkLit(v, polarity_[v]);
    }
    return kLitUndef;
}

void
Solver::reduceDB()
{
    std::sort(learnts_.begin(), learnts_.end(), [&](int a, int b) {
        return clauses_[a].activity < clauses_[b].activity;
    });
    size_t keep_from = learnts_.size() / 2;
    std::vector<int> kept;
    for (size_t i = 0; i < learnts_.size(); i++) {
        int cref = learnts_[i];
        Clause &c = clauses_[cref];
        bool locked = value(c.lits[0]) == LBool::True &&
                      reason_[var(c.lits[0])] == cref;
        if (i >= keep_from || c.lits.size() <= 2 || locked) {
            kept.push_back(cref);
            continue;
        }
        // Detach the two watchers.
        for (int w = 0; w < 2; w++) {
            auto &ws = watches_[(~c.lits[w]).x];
            for (size_t k = 0; k < ws.size(); k++) {
                if (ws[k].cref == cref) {
                    ws[k] = ws.back();
                    ws.pop_back();
                    break;
                }
            }
        }
        c.lits.clear();
        c.lits.shrink_to_fit();
        stats_.removedClauses++;
    }
    learnts_ = std::move(kept);
}

int64_t
Solver::luby(int64_t x)
{
    // Luby sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
    int64_t size = 1, seq = 0;
    while (size < x + 1) {
        seq++;
        size = 2 * size + 1;
    }
    while (size - 1 != x) {
        size = (size - 1) / 2;
        seq--;
        x = x % size;
    }
    return 1ll << seq;
}

Result
Solver::search(int64_t conflicts_before_restart)
{
    int64_t conflicts_here = 0;
    std::vector<Lit> learnt;
    while (true) {
        int confl = propagate();
        if (confl != -1) {
            stats_.conflicts++;
            conflicts_this_solve_++;
            conflicts_here++;
            if (decisionLevel() == 0) {
                ok_ = false;
                conflict_core_.clear();
                return Result::Unsat;
            }
            int btlevel;
            analyze(confl, learnt, btlevel);
            cancelUntil(btlevel);
            if (learnt.size() == 1) {
                uncheckedEnqueue(learnt[0], -1);
            } else {
                int cref = static_cast<int>(clauses_.size());
                clauses_.push_back(Clause{true, cla_inc_, learnt});
                learnts_.push_back(cref);
                attachClause(cref);
                uncheckedEnqueue(learnt[0], cref);
            }
            varDecayActivity();
            cla_inc_ /= cla_decay_;
        } else {
            if (conflicts_here >= conflicts_before_restart) {
                cancelUntil(0);
                stats_.restarts++;
                return Result::Unknown;
            }
            StopReason stop = stopCheck();
            if (stop != StopReason::None) {
                stop_reason_ = stop;
                cancelUntil(0);
                return Result::Unknown;
            }
            if (static_cast<double>(learnts_.size()) >= max_learnts_)
                reduceDB();

            // Establish assumptions, then decide.
            Lit next = kLitUndef;
            while (decisionLevel() <
                   static_cast<int>(assumptions_.size())) {
                Lit p = assumptions_[decisionLevel()];
                if (value(p) == LBool::True) {
                    trail_lim_.push_back(
                        static_cast<int>(trail_.size()));
                } else if (value(p) == LBool::False) {
                    analyzeFinal(~p);
                    return Result::Unsat;
                } else {
                    next = p;
                    break;
                }
            }
            if (next == kLitUndef) {
                stats_.decisions++;
                next = pickBranchLit();
                if (next == kLitUndef) {
                    // All variables assigned: model found.
                    model_.assign(assigns_.begin(), assigns_.end());
                    return Result::Sat;
                }
            } else {
                stats_.decisions++;
            }
            trail_lim_.push_back(static_cast<int>(trail_.size()));
            uncheckedEnqueue(next, -1);
        }
    }
}

StopReason
Solver::stopCheck()
{
    if (interrupt_.load(std::memory_order_relaxed) ||
        (ext_interrupt_ &&
         ext_interrupt_->load(std::memory_order_relaxed)))
        return StopReason::Interrupt;
    if (conflict_budget_ >= 0 &&
        conflicts_this_solve_ >= conflict_budget_)
        return StopReason::ConflictBudget;
    if (propagation_budget_ >= 0 &&
        propagations_this_solve_ >= propagation_budget_)
        return StopReason::PropagationBudget;
    if (has_deadline_ && --stop_check_countdown_ <= 0) {
        constexpr int kStopCheckInterval = 256;
        stop_check_countdown_ = kStopCheckInterval;
        if (std::chrono::steady_clock::now() >= deadline_point_)
            return StopReason::Deadline;
    }
    return StopReason::None;
}

Result
Solver::solve(const std::vector<Lit> &assumptions)
{
    conflict_core_.clear();
    // Invalidate the previous call's model up front: a non-Sat result
    // must not leave a stale (satisfying-looking) assignment around
    // for modelValue() to read.
    model_.clear();
    stop_reason_ = StopReason::None;
    if (!ok_)
        return Result::Unsat;
    assumptions_ = assumptions;
    conflicts_this_solve_ = 0;
    propagations_this_solve_ = 0;
    has_deadline_ = deadline_seconds_ >= 0.0;
    if (has_deadline_) {
        deadline_point_ =
            std::chrono::steady_clock::now() +
            std::chrono::duration_cast<
                std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(deadline_seconds_));
    }
    stop_check_countdown_ = 1; // read the clock on the first check
    max_learnts_ = std::max<double>(
        static_cast<double>(clauses_.size()) / 3.0, 1000.0);

    Result status = Result::Unknown;
    int64_t restart = 0;
    while (status == Result::Unknown) {
        status = search(luby(restart++) * 100);
        if (status == Result::Unknown &&
            stop_reason_ != StopReason::None)
            break;
    }
    cancelUntil(0);
    assumptions_.clear();
    return status;
}

bool
Solver::modelValue(Var v) const
{
    R2U_ASSERT(v >= 0 && v < static_cast<int>(model_.size()),
               "modelValue of unknown var %d", v);
    return model_[v] == LBool::True;
}

} // namespace r2u::sat
